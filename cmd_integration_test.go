package lfi

// End-to-end tests of the command-line tools: build each binary with the
// Go toolchain, then drive the paper's artifact workflow —
// rewrite -> assemble -> verify -> disassemble -> run — through real
// processes and files.

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// buildTools compiles the cmd/ binaries once into a temp dir.
func buildTools(t *testing.T, names ...string) map[string]string {
	t.Helper()
	dir := t.TempDir()
	out := make(map[string]string, len(names))
	for _, n := range names {
		bin := filepath.Join(dir, n)
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+n)
		cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod")
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", n, err, b)
		}
		out[n] = bin
	}
	return out
}

const toolProgram = `
.globl _start
_start:
	mov x0, #1
	adrp x1, msg
	add x1, x1, :lo12:msg
	ldrb w3, [x1]              // needs a guard
	mov x2, #13
	ldr x30, [x21, #8]
	blr x30
	mov x0, #7
	ldr x30, [x21, #0]
	blr x30
.rodata
msg:
	.ascii "tool pipeline"
`

func TestCommandLinePipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	tools := buildTools(t, "lfi-rewrite", "lfi-asm", "lfi-verify", "lfi-run", "lfi-disasm")
	dir := t.TempDir()
	src := filepath.Join(dir, "prog.s")
	if err := os.WriteFile(src, []byte(toolProgram), 0o644); err != nil {
		t.Fatal(err)
	}

	// lfi-rewrite prog.s -> guarded assembly
	rw := exec.Command(tools["lfi-rewrite"], "-O", "2", "-stats", src)
	guarded, err := rw.Output()
	if err != nil {
		t.Fatalf("lfi-rewrite: %v", err)
	}
	if !strings.Contains(string(guarded), "uxtw") {
		t.Fatalf("no guards in rewritten output:\n%s", guarded)
	}
	guardedPath := filepath.Join(dir, "prog.lfi.s")
	if err := os.WriteFile(guardedPath, guarded, 0o644); err != nil {
		t.Fatal(err)
	}

	// lfi-asm -> ELF
	elfPath := filepath.Join(dir, "prog.elf")
	if out, err := exec.Command(tools["lfi-asm"], "-o", elfPath, guardedPath).CombinedOutput(); err != nil {
		t.Fatalf("lfi-asm: %v\n%s", err, out)
	}

	// lfi-verify accepts it.
	out, err := exec.Command(tools["lfi-verify"], elfPath).CombinedOutput()
	if err != nil {
		t.Fatalf("lfi-verify: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "OK") {
		t.Fatalf("lfi-verify output: %s", out)
	}

	// lfi-disasm annotates the runtime call.
	out, err = exec.Command(tools["lfi-disasm"], elfPath).CombinedOutput()
	if err != nil {
		t.Fatalf("lfi-disasm: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "LFI runtime call") {
		t.Fatalf("lfi-disasm did not annotate the runtime call:\n%s", out)
	}

	// lfi-run executes it; exit status propagates; stdout is forwarded.
	run := exec.Command(tools["lfi-run"], "-machine", "m1", "-report", elfPath)
	stdout, err := run.Output()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 7 {
		t.Fatalf("lfi-run exit: %v (stdout %q)", err, stdout)
	}
	if string(stdout) != "tool pipeline" {
		t.Fatalf("lfi-run stdout = %q", stdout)
	}
	if !strings.Contains(string(ee.Stderr), "runtime calls") {
		t.Fatalf("lfi-run -report missing: %s", ee.Stderr)
	}

	// An unguarded binary must be rejected by both lfi-verify and lfi-run.
	nat, err := CompileNative("_start:\n\tldr x0, [x1]\n\tret\n")
	if err != nil {
		t.Fatal(err)
	}
	badPath := filepath.Join(dir, "bad.elf")
	if err := os.WriteFile(badPath, nat.ELF, 0o644); err != nil {
		t.Fatal(err)
	}
	if out, err := exec.Command(tools["lfi-verify"], badPath).CombinedOutput(); err == nil {
		t.Fatalf("lfi-verify accepted an unguarded binary:\n%s", out)
	}
	if out, err := exec.Command(tools["lfi-run"], badPath).CombinedOutput(); err == nil {
		t.Fatalf("lfi-run loaded an unguarded binary:\n%s", out)
	}
	// ... unless explicitly told not to verify (and then the svc-free
	// program faults inside its sandbox, status 139).
	cmd := exec.Command(tools["lfi-run"], "-unverified", badPath)
	if err := cmd.Run(); cmd.ProcessState.ExitCode() != 139 {
		t.Fatalf("unverified run exit = %d, err %v", cmd.ProcessState.ExitCode(), err)
	}
}

func TestRewriteStdinStdout(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	tools := buildTools(t, "lfi-rewrite")
	cmd := exec.Command(tools["lfi-rewrite"], "-O", "0")
	cmd.Stdin = strings.NewReader("_start:\n\tldr x0, [x1, #8]\n\tret\n")
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("lfi-rewrite: %v", err)
	}
	if !strings.Contains(string(out), "add x18, x21, w1, uxtw") {
		t.Fatalf("O0 guard missing:\n%s", out)
	}
	// Bad input produces a diagnostic and nonzero exit.
	cmd = exec.Command(tools["lfi-rewrite"])
	cmd.Stdin = strings.NewReader("_start:\n\tmov x21, #0\n")
	if out, err := cmd.CombinedOutput(); err == nil {
		t.Fatalf("reserved-register input accepted:\n%s", out)
	}
}

// TestServeHTTPEndpoints runs the real lfi-serve binary with -http :0
// and scrapes /metrics and /statusz after its demo batch completes.
func TestServeHTTPEndpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	tools := buildTools(t, "lfi-serve")
	cmd := exec.Command(tools["lfi-serve"], "-http", "127.0.0.1:0", "-jobs", "8", "-workers", "2", "-linger")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	// Parse the announced address, then wait for the batch to finish so
	// the counters are settled.
	var base string
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		line := sc.Text()
		if m := regexp.MustCompile(`metrics on (http://\S+)/metrics`).FindStringSubmatch(line); m != nil {
			base = m[1]
		}
		if strings.Contains(line, "batch done") {
			break
		}
	}
	if base == "" {
		t.Fatal("lfi-serve never announced its http address")
	}

	get := func(path string) []byte {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s %v", path, resp.Status, err)
		}
		return b
	}

	var metrics struct {
		Counters   map[string]uint64 `json:"counters"`
		Histograms map[string]struct {
			Count uint64 `json:"count"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(get("/metrics"), &metrics); err != nil {
		t.Fatal(err)
	}
	// 8 demo jobs: the runaway tenant is deadline-killed, the rest complete.
	if metrics.Counters["pool.jobs.completed"] != 8 {
		t.Errorf("pool.jobs.completed = %d, want 8", metrics.Counters["pool.jobs.completed"])
	}
	if metrics.Counters["pool.warm.hits"]+metrics.Counters["pool.warm.misses"] == 0 {
		t.Error("no warm-pool activity recorded")
	}
	if metrics.Histograms["pool.latency.run_ns"].Count == 0 {
		t.Error("run-latency histogram empty")
	}

	var status struct {
		Stats struct {
			Completed uint64 `json:"completed"`
			Workers   []struct {
				Jobs uint64 `json:"jobs"`
			} `json:"workers"`
		} `json:"stats"`
		Spans []struct {
			RunNS   int64 `json:"run_ns"`
			TotalNS int64 `json:"total_ns"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(get("/statusz"), &status); err != nil {
		t.Fatal(err)
	}
	if status.Stats.Completed != 8 || len(status.Stats.Workers) != 2 {
		t.Errorf("statusz stats: completed=%d workers=%d", status.Stats.Completed, len(status.Stats.Workers))
	}
	if len(status.Spans) != 8 {
		t.Fatalf("statusz spans = %d, want 8", len(status.Spans))
	}
	for i, s := range status.Spans {
		if s.TotalNS < s.RunNS || s.TotalNS <= 0 {
			t.Errorf("span %d: run=%d total=%d", i, s.RunNS, s.TotalNS)
		}
	}
}
