package lfi

import (
	"context"
	"errors"
	"testing"
	"time"
)

const helloSrc = `
_start:
	mov x0, #1
	adrp x1, msg
	add x1, x1, :lo12:msg
	mov x2, #6
` + "\tldr x30, [x21, #8]\n\tblr x30\n" + `
	mov x0, #0
	ldr x30, [x21, #0]
	blr x30
.rodata
msg:
	.ascii "hello\n"
`

const spinForever = `
_start:
spin:
	b spin
`

// TestExecuteCtxCancel proves the facade-level acceptance criterion:
// canceling the context of an in-flight job kills the spinning sandbox
// and the error satisfies errors.Is(err, ErrCanceled).
func TestExecuteCtxCancel(t *testing.T) {
	p := NewPool(PoolConfig{Workers: 1})
	defer p.Close()
	img, err := p.BuildImage(spinForever, CompileOptions{Opt: O2})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	res, err := p.ExecuteCtx(ctx, Job{Image: img, Budget: 1 << 60})
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("errors.Is(err, ErrCanceled) = false: %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("errors.Is(err, context.Canceled) = false: %v", err)
	}
	if res == nil || !errors.Is(res.Err, ErrCanceled) {
		t.Errorf("result = %+v, want Err matching ErrCanceled", res)
	}
}

// TestPoolMetricsAndSpans exercises Pool.Metrics / Spans / Events.
func TestPoolMetricsAndSpans(t *testing.T) {
	p := NewPool(PoolConfig{Workers: 1})
	defer p.Close()
	img, err := p.BuildImage(helloSrc, CompileOptions{Opt: O2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		res, err := p.ExecuteCtx(context.Background(), Job{Image: img})
		if err != nil || res.Err != nil {
			t.Fatal(err, res)
		}
	}

	snap := p.Metrics()
	if snap.Counters["pool.jobs.completed"] != 2 {
		t.Errorf("pool.jobs.completed = %d, want 2", snap.Counters["pool.jobs.completed"])
	}
	if snap.Counters["pool.warm.hits"] != 1 || snap.Counters["pool.warm.misses"] != 1 {
		t.Errorf("warm hits/misses = %d/%d, want 1/1",
			snap.Counters["pool.warm.hits"], snap.Counters["pool.warm.misses"])
	}
	if len(p.Spans()) != 2 || len(p.Events()) == 0 {
		t.Errorf("spans = %d events = %d", len(p.Spans()), len(p.Events()))
	}
	st := p.Stats()
	if len(st.Workers) != 1 || st.Workers[0].Jobs != 2 {
		t.Errorf("per-worker stats = %+v", st.Workers)
	}
}

// TestRuntimeMetricsOption checks the standalone-runtime metrics switch
// and the RuntimeStats struct API (plus the deprecated tuple wrapper).
func TestRuntimeMetricsOption(t *testing.T) {
	res, err := Compile(helloSrc, CompileOptions{Opt: O2})
	if err != nil {
		t.Fatal(err)
	}

	// Disabled: Stats still works, Metrics is an empty snapshot.
	off := NewRuntime(RuntimeConfig{})
	proc, err := off.Load(res.ELF)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := off.RunProcess(proc); err != nil {
		t.Fatal(err)
	}
	st := off.Stats()
	if st.HostCalls != 2 || st.Instrs == 0 {
		t.Errorf("Stats() = %+v", st)
	}
	if len(off.Metrics().Counters) != 0 || off.Events() != nil {
		t.Error("metrics recorded without RuntimeConfig.Metrics")
	}

	// Enabled: registry counters and trace events appear.
	on := NewRuntime(RuntimeConfig{Metrics: true})
	proc, err = on.Load(res.ELF)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := on.RunProcess(proc); err != nil {
		t.Fatal(err)
	}
	snap := on.Metrics()
	if snap.Counters["rt.host_calls"] != 2 || snap.Counters["rt.verifies"] != 1 {
		t.Errorf("metrics snapshot = %+v", snap.Counters)
	}
	if len(on.Events()) == 0 {
		t.Error("no trace events with RuntimeConfig.Metrics")
	}
}

// TestErrVerifyTaxonomy checks that verification failures match the
// ErrVerify sentinel from both the Verify helper and sandbox loads.
func TestErrVerifyTaxonomy(t *testing.T) {
	res, err := CompileNative("_start:\n\tldr x0, [x1]\n\tret\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(res.ELF); !errors.Is(err, ErrVerify) {
		t.Errorf("Verify error = %v, want ErrVerify", err)
	}
	rt := NewRuntime(RuntimeConfig{})
	if _, err := rt.Load(res.ELF); !errors.Is(err, ErrVerify) {
		t.Errorf("Load error = %v, want ErrVerify", err)
	}
	p := NewPool(PoolConfig{Workers: 1})
	defer p.Close()
	if _, err := p.ImageFromELF(res.ELF); !errors.Is(err, ErrVerify) {
		t.Errorf("ImageFromELF error = %v, want ErrVerify", err)
	}
}
