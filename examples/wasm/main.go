// Wasm: compile a WebAssembly module through the wasmfront pipeline into
// a sandboxed executable, verify it, and run it. The translator emits the
// same guarded-assembly dialect native programs use, so the rewriter and
// verifier apply unchanged — the Wasm toolchain is not in the TCB.
//
//	go run ./examples/wasm
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"lfi"
	"lfi/internal/wasmfront"
)

func main() {
	// A built-in sample module: recursive fib plus indirect-call dispatch
	// through a function table, iterated 1000 times. Any MVP integer-subset
	// module works here (lfi-wasm -sample calls -o mod.wasm dumps this one).
	wasm := wasmfront.SampleCalls(1000)
	fmt.Printf("module: %d bytes of Wasm\n", len(wasm))

	// 1. Translate + compile: wasmfront lowers the module to assembly
	// (value stack in registers, linear memory behind bounds checks and
	// sandbox guards), then the ordinary rewrite→assemble path runs.
	res, err := lfi.CompileWasm(wasm, lfi.CompileOptions{Opt: lfi.O2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled: %d bytes of machine code, %d bytes of ELF\n",
		res.TextSize, res.FileSize)

	// 2. Verify: the same machine-code verifier as native programs — it
	// never sees Wasm, only guarded AArch64.
	st, err := lfi.Verify(res.ELF)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verified: %d instructions, %d guard instructions\n", st.Insts, st.Guards)

	// 3. Run: the entry function's result comes back as an 8-byte
	// little-endian checksum on stdout. Wasm traps (div-zero, OOB, bad
	// indirect call, ...) surface as distinct exit statuses.
	rt := lfi.NewRuntime(lfi.RuntimeConfig{})
	p, err := rt.Load(res.ELF)
	if err != nil {
		log.Fatal(err)
	}
	status, err := rt.RunProcess(p)
	if err != nil {
		log.Fatal(err)
	}
	if trap, ok := wasmfront.TrapFromStatus(status); ok {
		log.Fatalf("module trapped: %v", trap)
	}
	out := rt.Stdout()
	if status != 0 || len(out) != 8 {
		log.Fatalf("unexpected exit: status %d, %d stdout bytes", status, len(out))
	}
	fmt.Printf("result checksum: %#x\n", binary.LittleEndian.Uint64(out))
}
