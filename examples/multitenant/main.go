// multitenant demonstrates the security story: many tenants share one
// address space; a malicious binary is rejected by the verifier before it
// ever runs; a buggy tenant that dereferences a wild pointer is killed by
// its guard regions without disturbing its neighbors.
//
//	go run ./examples/multitenant
package main

import (
	"fmt"
	"log"
	"strings"

	"lfi"
)

func tenant(id int) string {
	return fmt.Sprintf(`
.globl _start
_start:
	mov x0, #1
	adrp x1, msg
	add x1, x1, :lo12:msg
	mov x2, #9
%s	mov x0, #0
%s
.rodata
msg:
	.ascii "tenant %d\n"
`, lfi.CallSequence(lfi.CallWrite), lfi.CallSequence(lfi.CallExit), id)
}

// buggy dereferences an uninitialized "pointer". The guard forces the
// access into its own sandbox, where the unmapped page traps.
const buggy = `
.globl _start
_start:
	movz x1, #0x4B1D, lsl #16  // wild pointer
	ldr x0, [x1]
	mov x0, #0
`

// malicious was built without guards (imagine a hand-crafted escape
// attempt); the verifier must reject it at load time.
const malicious = `
.globl _start
_start:
	movz x1, #0xdead, lsl #32  // another sandbox's address
	ldr x0, [x1]               // unguarded load: never verifiable
	str x0, [x1, #8]
	ret
`

func main() {
	rt := lfi.NewRuntime(lfi.RuntimeConfig{MaxSandboxes: 16})

	// Load five healthy tenants.
	var procs []*lfi.Process
	for i := 1; i <= 5; i++ {
		res, err := lfi.Compile(tenant(i), lfi.CompileOptions{Opt: lfi.O2})
		if err != nil {
			log.Fatal(err)
		}
		p, err := rt.Load(res.ELF)
		if err != nil {
			log.Fatal(err)
		}
		procs = append(procs, p)
	}

	// The buggy tenant compiles and verifies (guards make it safe), but
	// will crash at runtime — inside its own sandbox.
	bres, err := lfi.Compile(buggy+lfi.CallSequence(lfi.CallExit), lfi.CompileOptions{Opt: lfi.O2})
	if err != nil {
		log.Fatal(err)
	}
	bp, err := rt.Load(bres.ELF)
	if err != nil {
		log.Fatal(err)
	}

	// The malicious binary is assembled without guards: the verifier
	// rejects it before it can run a single instruction.
	mres, err := lfi.CompileNative(malicious)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := rt.Load(mres.ELF); err != nil {
		fmt.Printf("malicious tenant rejected at load time:\n  %v\n\n", err)
	} else {
		log.Fatal("malicious tenant was loaded!")
	}

	if err := rt.Run(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("buggy tenant killed with status %d (SIGSEGV-style), neighbors unaffected:\n",
		bp.ExitStatus())
	for i, p := range procs {
		fmt.Printf("  tenant %d exit status: %d\n", i+1, p.ExitStatus())
	}
	// Each process captures its own fd 1/2, so one tenant's output is
	// attributable without untangling the interleaved runtime-wide log.
	fmt.Println("per-tenant captured output:")
	for i, p := range procs {
		fmt.Printf("  tenant %d wrote %q\n", i+1, strings.TrimSuffix(string(p.Stdout()), "\n"))
	}
	lines := strings.Count(string(rt.Stdout()), "\n")
	fmt.Printf("combined runtime log has all %d lines:\n%s", lines, rt.Stdout())
}
