// ipc-yield demonstrates the microkernel-style IPC of §5.3: two sandboxes
// call each other directly with the fast yield runtime call, which
// switches isolation domains without any hardware context switch. On the
// simulated Apple M1 model this costs tens of nanoseconds — the Table 5
// result — where a Linux pipe round trip costs microseconds.
//
//	go run ./examples/ipc-yield
package main

import (
	"fmt"
	"log"

	"lfi"
)

const rounds = 2000

// pinger yields to its peer `rounds` times. Each yield is a direct
// cross-sandbox call; the peer's yield back returns control here.
func peer(peerPID int) string {
	return fmt.Sprintf(`
.globl _start
_start:
	mov x25, #%d               // peer pid
	movz x20, #%d
	movk x20, #%d, lsl #16     // round count
loop:
	mov x0, x25
%s	subs x20, x20, #1
	b.ne loop
	mov x0, #0
%s`, peerPID, rounds&0xffff, (rounds>>16)&0xffff,
		lfi.CallSequence(lfi.CallYield), lfi.CallSequence(lfi.CallExit))
}

func main() {
	rt := lfi.NewRuntime(lfi.RuntimeConfig{Machine: lfi.MachineM1})

	// The first loaded sandbox gets pid 1, the second pid 2.
	a, err := lfi.Compile(peer(2), lfi.CompileOptions{Opt: lfi.O2})
	if err != nil {
		log.Fatal(err)
	}
	b, err := lfi.Compile(peer(1), lfi.CompileOptions{Opt: lfi.O2})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := rt.Load(a.ELF); err != nil {
		log.Fatal(err)
	}
	if _, err := rt.Load(b.ELF); err != nil {
		log.Fatal(err)
	}

	if err := rt.Run(); err != nil {
		log.Fatal(err)
	}

	calls := float64(2 * rounds)
	fmt.Printf("%d cross-sandbox calls in %.0f simulated cycles\n",
		2*rounds, rt.Cycles())
	fmt.Printf("per yield: %.1f ns on the M1 model (paper, Table 5: 17ns)\n",
		rt.Nanoseconds()/calls)
	fmt.Printf("a Linux pipe round trip costs ~1.5us; hardware-protection\n" +
		"IPC bottoms out around 400 cycles (~125ns) per the L4 literature\n")
}
