// forkserver demonstrates single-address-space fork (§5.3): because LFI
// guards replace the top 32 bits of every pointer at each access, a
// child's memory image works unmodified at a different sandbox base —
// pointers are effectively 32-bit offsets. The parent forks one worker
// per job; each worker computes over its inherited memory and reports
// through its exit status; the parent reaps them with wait.
//
//	go run ./examples/forkserver
package main

import (
	"fmt"
	"log"

	"lfi"
)

const workers = 4

var program = fmt.Sprintf(`
.globl _start
_start:
	// Fill a shared table before forking; children inherit a copy.
	adrp x25, table
	add x25, x25, :lo12:table
	mov x26, #0
	mov x10, #1
fill:
	str x10, [x25, x26, lsl #3]
	add x10, x10, #3
	add x26, x26, #1
	cmp x26, #256
	b.ne fill

	mov x27, #0                // worker index
spawn:
%s	cbz x0, worker
	add x27, x27, #1
	cmp x27, #%d
	b.ne spawn

	// Parent: reap all workers, summing their exit statuses.
	mov x28, #0                // sum of statuses
	mov x27, #0
reap:
	adrp x0, status
	add x0, x0, :lo12:status
%s	adrp x1, status
	add x1, x1, :lo12:status
	ldr w2, [x1]
	add x28, x28, x2
	add x27, x27, #1
	cmp x27, #%d
	b.ne reap
	mov x0, x28
%s

worker:
	// Each worker sums a 64-entry slice of the inherited table, selected
	// by its creation order (x27), and exits with (sum & 0x3f).
	lsl x9, x27, #6            // slice start = index * 64
	mov x10, #0                // accumulator
	mov x11, #0
wloop:
	add x12, x9, x11
	ldr x13, [x25, x12, lsl #3]
	add x10, x10, x13
	add x11, x11, #1
	cmp x11, #64
	b.ne wloop
	and x0, x10, #0x3f
%s
.bss
table:
	.space 2048
status:
	.space 8
`, lfi.CallSequence(lfi.CallFork), workers,
	lfi.CallSequence(lfi.CallWait), workers,
	lfi.CallSequence(lfi.CallExit),
	lfi.CallSequence(lfi.CallExit))

func main() {
	res, err := lfi.Compile(program, lfi.CompileOptions{Opt: lfi.O2})
	if err != nil {
		log.Fatal(err)
	}
	rt := lfi.NewRuntime(lfi.RuntimeConfig{MaxSandboxes: workers + 2})
	parent, err := rt.Load(res.ELF)
	if err != nil {
		log.Fatal(err)
	}
	status, err := rt.RunProcess(parent)
	if err != nil {
		log.Fatal(err)
	}

	// Check against the same computation done host-side.
	table := make([]uint64, 256)
	v := uint64(1)
	for i := range table {
		table[i] = v
		v += 3
	}
	want := 0
	for w := 0; w < workers; w++ {
		sum := uint64(0)
		for i := 0; i < 64; i++ {
			sum += table[w*64+i]
		}
		want += int(sum & 0x3f)
	}

	fmt.Printf("forked %d workers in separate 4GiB slots of one address space\n", workers)
	fmt.Printf("parent aggregated exit statuses: %d (expected %d)\n", status, want)
	if status != want {
		log.Fatal("mismatch!")
	}
	fmt.Println("fork-in-one-address-space works: pointers are 32-bit offsets")
}
