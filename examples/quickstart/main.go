// Quickstart: compile an assembly program into a sandboxed executable,
// verify it, run it, and inspect what the rewriter did.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"lfi"
)

// A hosted "hello world": programs talk to the outside world only through
// the runtime-call table at the bottom of their sandbox (x21).
var program = `
.globl _start
_start:
	mov x0, #1                 // fd 1 (stdout)
	adrp x1, msg
	add x1, x1, :lo12:msg      // buffer
	mov x2, #21                // length
` + lfi.CallSequence(lfi.CallWrite) + `
	mov x0, #0
` + lfi.CallSequence(lfi.CallExit) + `
.rodata
msg:
	.ascii "hello from a sandbox\n"
`

func main() {
	// 1. Compile: the rewriter inserts guards, the assembler produces a
	// genuine AArch64 ELF executable.
	res, err := lfi.Compile(program, lfi.CompileOptions{Opt: lfi.O2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled: %d bytes of machine code, %d bytes of ELF\n",
		res.TextSize, res.FileSize)
	fmt.Printf("rewriter: %d -> %d instructions (%d guards folded into addressing modes)\n",
		res.Stats.InputInsts, res.Stats.OutputInsts, res.Stats.GuardsFolded)

	// 2. Verify: a single linear pass over the machine code proves the
	// program cannot escape its 4GiB sandbox. The compiler (step 1) is
	// not trusted.
	st, err := lfi.Verify(res.ELF)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verified: %d instructions, %d guard instructions\n", st.Insts, st.Guards)

	// 3. Run: the runtime loads the ELF into a sandbox slot and mediates
	// its runtime calls.
	rt := lfi.NewRuntime(lfi.RuntimeConfig{})
	p, err := rt.Load(res.ELF)
	if err != nil {
		log.Fatal(err)
	}
	status, err := rt.RunProcess(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sandbox wrote: %q (exit status %d)\n", rt.Stdout(), status)
}
