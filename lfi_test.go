package lfi

import (
	"strings"
	"testing"
)

const helloProgram = `
.globl _start
_start:
	mov x0, #1
	adrp x1, msg
	add x1, x1, :lo12:msg
	mov x2, #6
` + "\tldr x30, [x21, #8]\n\tblr x30\n" + `
	mov x0, #0
` + "\tldr x30, [x21, #0]\n\tblr x30\n" + `
.rodata
msg:
	.ascii "hello\n"
`

func TestCompileVerifyRun(t *testing.T) {
	res, err := Compile(helloProgram, CompileOptions{Opt: O2})
	if err != nil {
		t.Fatal(err)
	}
	if st, err := Verify(res.ELF); err != nil {
		t.Fatalf("verify: %v (%+v)", err, st)
	}
	rt := NewRuntime(RuntimeConfig{})
	p, err := rt.Load(res.ELF)
	if err != nil {
		t.Fatal(err)
	}
	status, err := rt.RunProcess(p)
	if err != nil || status != 0 {
		t.Fatalf("status=%d err=%v", status, err)
	}
	if got := string(rt.Stdout()); got != "hello\n" {
		t.Errorf("stdout = %q", got)
	}
}

func TestRewriteTextInterface(t *testing.T) {
	out, stats, err := Rewrite("_start:\n\tldr x0, [x1, #8]\n\tret\n", CompileOptions{Opt: O1})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "uxtw") {
		t.Errorf("no guard in output:\n%s", out)
	}
	if stats.GuardsSingle != 1 {
		t.Errorf("stats = %+v", stats)
	}
	// The output must itself be valid input.
	if _, _, err := Rewrite(out, CompileOptions{Opt: O1}); err == nil {
		// Re-rewriting guarded code touches reserved registers and is
		// expected to fail; both outcomes are fine as long as no panic.
		_ = err
	}
}

func TestVerifyRejectsNative(t *testing.T) {
	res, err := CompileNative("_start:\n\tldr x0, [x1]\n\tret\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(res.ELF); err == nil {
		t.Fatal("unguarded binary verified")
	}
	rt := NewRuntime(RuntimeConfig{})
	if _, err := rt.Load(res.ELF); err == nil {
		t.Fatal("unguarded binary loaded")
	}
	// Baseline runtimes may opt out explicitly.
	rt2 := NewRuntime(RuntimeConfig{DisableVerification: true})
	if _, err := rt2.Load(res.ELF); err != nil {
		t.Fatalf("baseline load failed: %v", err)
	}
}

func TestTimedRuntime(t *testing.T) {
	res, err := Compile(helloProgram, CompileOptions{Opt: O2})
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime(RuntimeConfig{Machine: MachineM1})
	p, err := rt.Load(res.ELF)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.RunProcess(p); err != nil {
		t.Fatal(err)
	}
	if rt.Cycles() <= 0 || rt.Nanoseconds() <= 0 || rt.Instructions() == 0 {
		t.Error("timing not collected")
	}
	if got := rt.Stats().HostCalls; got != 2 {
		t.Errorf("host calls = %d, want 2", got)
	}
}

func TestFilesystemPolicy(t *testing.T) {
	rt := NewRuntime(RuntimeConfig{})
	rt.WriteFile("/data/ok.txt", []byte("fine"))
	rt.DenyPathPrefix("/secret")
	src := `
.globl _start
_start:
	adrp x0, path
	add x0, x0, :lo12:path
	mov x1, #0
` + CallSequence(CallOpen) + `
	neg x0, x0
` + CallSequence(CallExit) + `
.rodata
path:
	.asciz "/secret/x"
`
	res, err := Compile(src, CompileOptions{Opt: O2})
	if err != nil {
		t.Fatal(err)
	}
	p, err := rt.Load(res.ELF)
	if err != nil {
		t.Fatal(err)
	}
	status, err := rt.RunProcess(p)
	if err != nil {
		t.Fatal(err)
	}
	if status != 13 { // EACCES
		t.Errorf("status = %d, want EACCES(13)", status)
	}
	if _, ok := rt.ReadFile("/data/ok.txt"); !ok {
		t.Error("host file lost")
	}
}

func TestCallSequence(t *testing.T) {
	s := CallSequence(CallYield)
	if !strings.Contains(s, "[x21, #80]") || !strings.Contains(s, "blr x30") {
		t.Errorf("CallSequence = %q", s)
	}
}

func TestCompileOptionsMatrix(t *testing.T) {
	src := "_start:\n\tldr x0, [x1, #8]\n\tstr x0, [x1, #16]\n\tret\n"
	for _, opts := range []CompileOptions{
		{Opt: O0}, {Opt: O1}, {Opt: O2},
		{Opt: O2, NoLoads: true},
		{Opt: O2, DisableSPOpts: true},
	} {
		res, err := Compile(src, opts)
		if err != nil {
			t.Errorf("%+v: %v", opts, err)
			continue
		}
		if res.TextSize == 0 || res.FileSize <= res.TextSize {
			t.Errorf("%+v: sizes %d/%d", opts, res.TextSize, res.FileSize)
		}
	}
}

func TestTraceAndProfile(t *testing.T) {
	res, err := Compile(helloProgram, CompileOptions{Opt: O2})
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime(RuntimeConfig{Machine: MachineM1})
	var buf strings.Builder
	rt.TraceInstructions(&buf, 5)
	if err := rt.EnableProfile(); err != nil {
		t.Fatal(err)
	}
	p, err := rt.Load(res.ELF)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.RunProcess(p); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(buf.String(), "\n")
	if lines != 5 {
		t.Errorf("trace emitted %d lines, want 5 (limit)", lines)
	}
	if !strings.Contains(buf.String(), "movz x0, #1") {
		t.Errorf("trace missing first instruction:\n%s", buf.String())
	}
	prof := rt.Profile(3)
	if len(prof) == 0 || len(prof) > 3 {
		t.Fatalf("profile = %v", prof)
	}
	for _, line := range prof {
		if !strings.Contains(line, " ") {
			t.Errorf("unformatted profile line %q", line)
		}
	}
	// Profiling without a timing model is an error.
	rt2 := NewRuntime(RuntimeConfig{})
	if err := rt2.EnableProfile(); err == nil {
		t.Error("EnableProfile without a machine model must fail")
	}
	if rt2.Profile(3) != nil {
		t.Error("Profile without timing must be nil")
	}
}
