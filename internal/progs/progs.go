// Package progs builds sandbox executables from assembly source through
// the full LFI pipeline: parse -> rewrite (guard insertion) -> assemble ->
// ELF. It is shared by the runtime tests, the workloads, the examples, and
// the benchmark harness.
package progs

import (
	"fmt"

	"lfi/internal/arm64"
	"lfi/internal/core"
	"lfi/internal/elfobj"
	"lfi/internal/rewrite"
)

// BuildResult carries the built binary along with size information for
// the code-size evaluation (§6.3).
type BuildResult struct {
	ELF      []byte
	TextSize int
	FileSize int
	Stats    rewrite.Stats
}

// Build rewrites src with opts, assembles it at the standard sandbox code
// offset, and packages it as an ELF executable.
func Build(src string, opts core.Options) (*BuildResult, error) {
	f, err := arm64.ParseFile(src)
	if err != nil {
		return nil, fmt.Errorf("progs: %w", err)
	}
	nf, stats, err := rewrite.Rewrite(f, opts)
	if err != nil {
		return nil, fmt.Errorf("progs: %w", err)
	}
	b, err := assemble(nf)
	if err != nil {
		return nil, err
	}
	b.Stats = stats
	return b, nil
}

// BuildNative assembles src without inserting guards. The result does not
// verify; it reproduces the paper's "native code running within the LFI
// environment" baseline (§6.1), loaded with verification disabled.
func BuildNative(src string) (*BuildResult, error) {
	f, err := arm64.ParseFile(src)
	if err != nil {
		return nil, fmt.Errorf("progs: %w", err)
	}
	return assemble(f)
}

func assemble(f *arm64.File) (*BuildResult, error) {
	img, err := arm64.Assemble(f, arm64.Layout{
		TextBase: core.MinCodeOffset,
		PageSize: 16 * 1024,
	})
	if err != nil {
		return nil, fmt.Errorf("progs: %w", err)
	}
	exe := elfobj.FromImage(img)
	elfBytes, err := exe.Marshal()
	if err != nil {
		return nil, fmt.Errorf("progs: %w", err)
	}
	return &BuildResult{
		ELF:      elfBytes,
		TextSize: len(img.Text),
		FileSize: len(elfBytes),
	}, nil
}

// RTCall returns the assembly for invoking runtime call rc (§4.4):
//
//	ldr x30, [x21, #8*rc]
//	blr x30
//
// Arguments go in x0..x5 beforehand; the result arrives in x0.
func RTCall(rc core.RuntimeCall) string {
	return fmt.Sprintf("\tldr x30, [x21, #%d]\n\tblr x30\n", rc.TableOffset())
}

// Exit returns assembly that terminates the sandbox with the status held
// in x0.
func Exit() string { return RTCall(core.RTExit) }

// ExitCode returns assembly that terminates with a constant status.
func ExitCode(status int) string {
	return fmt.Sprintf("\tmov x0, #%d\n%s", status, Exit())
}
