package progs

import (
	"strings"
	"testing"

	"lfi/internal/core"
	"lfi/internal/elfobj"
)

func TestBuildProducesLoadableELF(t *testing.T) {
	res, err := Build("_start:\n\tldr x0, [x1]\n"+ExitCode(0), core.Options{Opt: core.O2})
	if err != nil {
		t.Fatal(err)
	}
	exe, err := elfobj.Unmarshal(res.ELF)
	if err != nil {
		t.Fatal(err)
	}
	text, err := exe.TextSegment()
	if err != nil {
		t.Fatal(err)
	}
	if text.Vaddr != core.MinCodeOffset {
		t.Errorf("text at %#x, want the standard code offset %#x", text.Vaddr, core.MinCodeOffset)
	}
	if res.TextSize != len(text.Data) {
		t.Errorf("TextSize %d != segment %d", res.TextSize, len(text.Data))
	}
	if res.FileSize != len(res.ELF) {
		t.Errorf("FileSize %d != %d", res.FileSize, len(res.ELF))
	}
	if res.Stats.GuardsFolded == 0 {
		t.Error("stats not propagated")
	}
}

func TestBuildNativeSkipsGuards(t *testing.T) {
	src := "_start:\n\tldr x0, [x1]\n" + ExitCode(0)
	nat, err := BuildNative(src)
	if err != nil {
		t.Fatal(err)
	}
	lfi, err := Build(src, core.Options{Opt: core.O0})
	if err != nil {
		t.Fatal(err)
	}
	if nat.TextSize >= lfi.TextSize {
		t.Errorf("native text (%d) not smaller than guarded (%d)", nat.TextSize, lfi.TextSize)
	}
}

func TestBuildRejectsBadSource(t *testing.T) {
	if _, err := Build("_start:\n\tbogus x0\n", core.Options{}); err == nil {
		t.Error("bad mnemonic accepted")
	}
	if _, err := Build("_start:\n\tmov x21, #0\n", core.Options{}); err == nil {
		t.Error("reserved register write accepted")
	}
	if _, err := BuildNative("_start:\n\tb nowhere\n"); err == nil {
		t.Error("undefined label accepted")
	}
}

func TestRTCallText(t *testing.T) {
	s := RTCall(core.RTWrite)
	if !strings.Contains(s, "ldr x30, [x21, #8]") || !strings.Contains(s, "blr x30") {
		t.Errorf("RTCall = %q", s)
	}
	if !strings.Contains(Exit(), "[x21, #0]") {
		t.Errorf("Exit = %q", Exit())
	}
	if !strings.Contains(ExitCode(9), "mov x0, #9") {
		t.Errorf("ExitCode = %q", ExitCode(9))
	}
}
