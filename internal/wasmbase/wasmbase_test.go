package wasmbase

import (
	"strings"
	"testing"

	"lfi/internal/arm64"
	"lfi/internal/lfirt"
	"lfi/internal/progs"
	"lfi/internal/workloads"
)

// runSrc assembles (optionally transformed) source and runs it unverified.
func runSrc(t *testing.T, src string) (string, uint64) {
	t.Helper()
	res, err := progs.BuildNative(src)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	cfg := lfirt.DefaultConfig()
	cfg.Verify = false
	rt := lfirt.New(cfg)
	p, err := rt.Load(res.ELF)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	status, err := rt.RunProc(p)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if status != 0 {
		t.Fatalf("exit status %d", status)
	}
	return string(rt.Stdout()), rt.CPU.Instrs
}

func transform(t *testing.T, sys *System, src string) string {
	t.Helper()
	f, err := arm64.ParseFile(src)
	if err != nil {
		t.Fatal(err)
	}
	nf, err := sys.Transform(f)
	if err != nil {
		t.Fatalf("%s: transform: %v", sys.Name, err)
	}
	return nf.String()
}

// TestSystemsPreserveResults checks that every engine model computes the
// same checksums as native code on every Wasm-subset kernel.
func TestSystemsPreserveResults(t *testing.T) {
	for _, w := range workloads.WasmSubset() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			src := w.Source(0.06)
			native, nInstrs := runSrc(t, src)
			for _, sys := range Systems() {
				got, gInstrs := runSrc(t, transform(t, sys, src))
				if got != native {
					t.Errorf("%s: checksum mismatch", sys.Name)
				}
				if gInstrs < nInstrs {
					t.Errorf("%s: fewer instructions than native (%d < %d)",
						sys.Name, gInstrs, nInstrs)
				}
			}
		})
	}
}

// TestInstrumentationOrdering: per-access reloading must execute more
// instructions than per-block, which must exceed pinned.
func TestInstrumentationOrdering(t *testing.T) {
	w, _ := workloads.Get("519.lbm")
	src := w.Source(0.06)
	counts := map[ReloadPolicy]uint64{}
	for _, sys := range Systems() {
		_, n := runSrc(t, transform(t, sys, src))
		if old, ok := counts[sys.HeapReload]; !ok || n < old {
			counts[sys.HeapReload] = n
		}
	}
	if !(counts[ReloadPerAccess] > counts[ReloadPerBlock]) {
		t.Errorf("per-access (%d) not above per-block (%d)",
			counts[ReloadPerAccess], counts[ReloadPerBlock])
	}
	if !(counts[ReloadPerBlock] >= counts[ReloadPinned]) {
		t.Errorf("per-block (%d) below pinned (%d)",
			counts[ReloadPerBlock], counts[ReloadPinned])
	}
}

func TestIndirectCheckEmitted(t *testing.T) {
	src := `
_start:
	adr x1, target
	blr x1
	mov x0, #0
` + progs.Exit() + `
target:
	ret
`
	sys, _ := Get("Wasm2c")
	text := transform(t, sys, src)
	if !strings.Contains(text, ".Lwasmtrap") {
		t.Errorf("no indirect-call check emitted:\n%s", text)
	}
	// The program must still run correctly.
	out, _ := runSrc(t, text)
	_ = out
}

func TestRuntimeCallsPassThrough(t *testing.T) {
	src := "_start:\n" + progs.ExitCode(3)
	for _, sys := range Systems() {
		text := transform(t, sys, src)
		if !strings.Contains(text, "ldr x30, [x21]") {
			t.Errorf("%s mangled the runtime-call sequence:\n%s", sys.Name, text)
		}
	}
}

func TestSystemsRegistry(t *testing.T) {
	if len(Systems()) != 5 {
		t.Fatalf("systems = %d, want 5", len(Systems()))
	}
	for _, s := range Systems() {
		if s.CodegenFactor < 1.0 {
			t.Errorf("%s codegen factor %v < 1", s.Name, s.CodegenFactor)
		}
	}
	if _, ok := Get("Wasmtime"); !ok {
		t.Error("Get(Wasmtime) failed")
	}
	if _, ok := Get("nope"); ok {
		t.Error("Get(nope) succeeded")
	}
}
