package wasmbase

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestValidateGeneratedModules(t *testing.T) {
	for _, cfg := range []struct{ funcs, body int }{
		{1, 64}, {4, 256}, {16, 1024}, {2, 16384},
	} {
		m := GenModule(cfg.funcs, cfg.body)
		n, err := ValidateModule(m)
		if err != nil {
			t.Errorf("GenModule(%d,%d): %v", cfg.funcs, cfg.body, err)
		}
		if n != len(m) {
			t.Errorf("validated %d of %d bytes", n, len(m))
		}
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func([]byte) []byte
		sub    string
	}{
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }, "magic"},
		{"truncated", func(b []byte) []byte { return b[:len(b)-3] }, ""},
		{"bad opcode", func(b []byte) []byte { b[len(b)-2] = 0xfe; return b }, ""},
	}
	for _, c := range cases {
		m := c.mutate(GenModule(2, 128))
		_, err := ValidateModule(m)
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if c.sub != "" && !strings.Contains(err.Error(), c.sub) {
			t.Errorf("%s: error %q lacks %q", c.name, err, c.sub)
		}
	}
	if _, err := ValidateModule(nil); err == nil {
		t.Error("empty module accepted")
	}
}

func TestValidateTypeErrors(t *testing.T) {
	// Hand-built module: body pops i32 from an i64 (local.get of i64 then
	// i32.add) must be rejected.
	m := GenModule(1, 32)
	// Corrupt: change a local.get 0 (i32) target to an out-of-range local.
	idx := strings.Index(string(m), "\x20\x00\x41")
	if idx < 0 {
		t.Fatal("pattern not found")
	}
	m[idx+1] = 0x63 // local 99: out of range
	if _, err := ValidateModule(m); err == nil {
		t.Error("out-of-range local accepted")
	}
}

// TestValidateMalformedEncodings covers the structural-decoding edge
// cases that historically disagreed with the wasmfront decoder: lebs cut
// off mid-value, section lengths running past the buffer, and function
// bodies whose declared size crosses the code-section boundary.
func TestValidateMalformedEncodings(t *testing.T) {
	header := []byte("\x00asm\x01\x00\x00\x00")

	t.Run("truncated-leb-section-size", func(t *testing.T) {
		// Section id 1 followed by a leb with the continuation bit set and
		// no further bytes.
		m := append(append([]byte{}, header...), 0x01, 0x85)
		if _, err := ValidateModule(m); err == nil {
			t.Error("truncated section-size leb accepted")
		}
	})

	t.Run("truncated-leb-count", func(t *testing.T) {
		// Type section of length 1 whose count leb is cut off.
		m := append(append([]byte{}, header...), 0x01, 0x01, 0x80)
		if _, err := ValidateModule(m); err == nil {
			t.Error("truncated count leb accepted")
		}
	})

	t.Run("leb-u32-nonzero-high-bits", func(t *testing.T) {
		// 5-byte leb whose final byte sets bits above bit 31 — must be
		// rejected as a malformed u32, not silently truncated.
		m := append(append([]byte{}, header...), 0x01, 0x85, 0x80, 0x80, 0x80, 0x78)
		if _, err := ValidateModule(m); err == nil {
			t.Error("u32 leb with high bits accepted")
		}
	})

	t.Run("section-length-overflow", func(t *testing.T) {
		// Section claims 0xffffffff bytes but the buffer ends immediately.
		m := append(append([]byte{}, header...), 0x01, 0xff, 0xff, 0xff, 0xff, 0x0f)
		if _, err := ValidateModule(m); err == nil {
			t.Error("section length past buffer accepted")
		}
	})

	t.Run("section-length-short", func(t *testing.T) {
		// Section payload longer than declared: contents must be read
		// against the declared end, and the mismatch rejected.
		m := GenModule(1, 32)
		// Inflate the first section's declared length by swapping its
		// single-byte leb for a larger value still inside the buffer.
		m[9]++ // first section's size byte (id at 8, size at 9)
		if _, err := ValidateModule(m); err == nil {
			t.Error("section payload/length mismatch accepted")
		}
	})

	t.Run("cumulative-locals-overflow", func(t *testing.T) {
		// Two locals groups of 65535 entries each: every group is under
		// the per-group cap, but the cumulative 131070 locals must be
		// rejected before the locals slice is grown.
		m := append(append([]byte{}, header...),
			0x01, 0x04, 0x01, 0x60, 0x00, 0x00, // type section: () -> ()
			0x03, 0x02, 0x01, 0x00, // function section: func 0 has type 0
			0x0a, 0x0c, 0x01, 0x0a, // code section: 1 body of 10 bytes
			0x02,                   // 2 locals groups
			0xff, 0xff, 0x03, 0x7f, // 65535 x i32
			0xff, 0xff, 0x03, 0x7f, // 65535 x i32
			0x0b, // end
		)
		if _, err := ValidateModule(m); err == nil {
			t.Error("cumulative locals over 2^16 accepted")
		}
	})

	t.Run("body-length-past-section-end", func(t *testing.T) {
		m := GenModule(1, 32)
		// Find the code section and inflate the first body's size leb so
		// the body would run past the section end into trailing bytes.
		idx := -1
		for i := 8; i < len(m)-2; i++ {
			if m[i] == 0x0a { // section id 10
				idx = i
				break
			}
		}
		if idx < 0 {
			t.Fatal("no code section found")
		}
		// Layout for GenModule output: id, size (leb), count=1, bodySize (leb).
		// Walk past the section-size leb.
		j := idx + 1
		for m[j]&0x80 != 0 {
			j++
		}
		j += 2 // past final size byte and the count byte
		m[j] += 40
		if _, err := ValidateModule(m); err == nil {
			t.Error("body length past section end accepted")
		}
	})
}

// TestValidatorNeverPanics fuzzes the validator with random mutations of a
// valid module.
func TestValidatorNeverPanics(t *testing.T) {
	base := GenModule(3, 512)
	f := func(pos uint16, val byte) bool {
		m := append([]byte(nil), base...)
		m[int(pos)%len(m)] = val
		_, _ = ValidateModule(m) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}
