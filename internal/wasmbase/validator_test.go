package wasmbase

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestValidateGeneratedModules(t *testing.T) {
	for _, cfg := range []struct{ funcs, body int }{
		{1, 64}, {4, 256}, {16, 1024}, {2, 16384},
	} {
		m := GenModule(cfg.funcs, cfg.body)
		n, err := ValidateModule(m)
		if err != nil {
			t.Errorf("GenModule(%d,%d): %v", cfg.funcs, cfg.body, err)
		}
		if n != len(m) {
			t.Errorf("validated %d of %d bytes", n, len(m))
		}
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func([]byte) []byte
		sub    string
	}{
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }, "magic"},
		{"truncated", func(b []byte) []byte { return b[:len(b)-3] }, ""},
		{"bad opcode", func(b []byte) []byte { b[len(b)-2] = 0xfe; return b }, ""},
	}
	for _, c := range cases {
		m := c.mutate(GenModule(2, 128))
		_, err := ValidateModule(m)
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if c.sub != "" && !strings.Contains(err.Error(), c.sub) {
			t.Errorf("%s: error %q lacks %q", c.name, err, c.sub)
		}
	}
	if _, err := ValidateModule(nil); err == nil {
		t.Error("empty module accepted")
	}
}

func TestValidateTypeErrors(t *testing.T) {
	// Hand-built module: body pops i32 from an i64 (local.get of i64 then
	// i32.add) must be rejected.
	m := GenModule(1, 32)
	// Corrupt: change a local.get 0 (i32) target to an out-of-range local.
	idx := strings.Index(string(m), "\x20\x00\x41")
	if idx < 0 {
		t.Fatal("pattern not found")
	}
	m[idx+1] = 0x63 // local 99: out of range
	if _, err := ValidateModule(m); err == nil {
		t.Error("out-of-range local accepted")
	}
}

// TestValidatorNeverPanics fuzzes the validator with random mutations of a
// valid module.
func TestValidatorNeverPanics(t *testing.T) {
	base := GenModule(3, 512)
	f := func(pos uint16, val byte) bool {
		m := append([]byte(nil), base...)
		m[int(pos)%len(m)] = val
		_, _ = ValidateModule(m) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}
