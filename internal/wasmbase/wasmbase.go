// Package wasmbase models the WebAssembly engines the paper compares
// against (§6.2) as sandboxing strategies applied to the same workloads on
// the same timing model. Each engine's overhead comes from concrete,
// documented mechanisms:
//
//   - non-pinned engines reload the linear-memory base from the module
//     context before accesses (Wasm2c's struct field; the "compiler
//     barrier" forces the reload on *every* access, removing it lets the
//     compiler hoist one load per basic block);
//   - a pinned heap register removes the loads entirely (the paper's
//     Wasm2c modification);
//   - indirect calls check the table entry's type signature;
//   - the engine's compiler quality appears as a codegen factor (Cranelift
//     and the Wasm->C->machine-code pipeline lose scheduling and
//     vectorization quality relative to direct LLVM; we apply the factor
//     to computed cycles and report it in EXPERIMENTS.md).
//
// The instrumented programs run with load-time verification disabled:
// they are baselines, not LFI binaries.
package wasmbase

import (
	"fmt"

	"lfi/internal/arm64"
	"lfi/internal/core"
	"lfi/internal/rewrite"
)

// System describes one engine configuration from Figure 4.
type System struct {
	// Name as in the paper's figures.
	Name string
	// HeapReload says when the linear-memory base is loaded from the
	// context struct.
	HeapReload ReloadPolicy
	// IndirectChecks adds the type-signature check on indirect calls.
	IndirectChecks bool
	// CodegenFactor multiplies computed cycles to model compiler quality.
	CodegenFactor float64
}

// ReloadPolicy says how often the heap base is (re)loaded.
type ReloadPolicy int

const (
	// ReloadPinned: the base lives in a reserved register (x21); accesses
	// fold the guard like LFI's O1.
	ReloadPinned ReloadPolicy = iota
	// ReloadPerBlock: one context load per basic block (what LLVM achieves
	// without the compiler barrier).
	ReloadPerBlock
	// ReloadPerAccess: one context load per memory access (the strictly
	// spec-conforming Wasm2c configuration with the barrier).
	ReloadPerAccess
)

// Systems returns the five engine configurations of Figure 4 and Table 4.
func Systems() []*System {
	return []*System{
		{Name: "Wasmtime", HeapReload: ReloadPerBlock, IndirectChecks: true, CodegenFactor: 1.42},
		{Name: "Wasm2c", HeapReload: ReloadPerAccess, IndirectChecks: true, CodegenFactor: 1.12},
		{Name: "Wasm2c (no barrier)", HeapReload: ReloadPerBlock, IndirectChecks: true, CodegenFactor: 1.12},
		{Name: "Wasm2c (pinned register)", HeapReload: ReloadPinned, IndirectChecks: true, CodegenFactor: 1.08},
		{Name: "WAMR", HeapReload: ReloadPerBlock, IndirectChecks: true, CodegenFactor: 1.12},
	}
}

// Get returns the named system.
func Get(name string) (*System, bool) {
	for _, s := range Systems() {
		if s.Name == name {
			return s, true
		}
	}
	return nil, false
}

// heapReg holds the reloaded linear-memory base; scratch regs stage
// addresses. These are the LFI reserved registers, free in any program
// compiled with -ffixed flags.
var (
	heapReg    = arm64.X24
	stageReg   = arm64.X22
	addrReg    = arm64.X18
	typeReg    = arm64.X23
	trapLabel  = ".Lwasmtrap"
	ctxHeapOff = int32(core.CtxHeapBaseOff)
	ctxTypeOff = int32(core.CtxTypeTagOff)
)

// Transform instruments the file according to the system's strategy.
func (s *System) Transform(f *arm64.File) (*arm64.File, error) {
	if s.HeapReload == ReloadPinned {
		// Pinned register: identical mechanics to LFI O1 plus indirect
		// call checks.
		nf, _, err := rewrite.Rewrite(f, core.Options{Opt: core.O1})
		if err != nil {
			return nil, err
		}
		if s.IndirectChecks {
			return addIndirectChecks(nf)
		}
		return nf, nil
	}

	w := &wasmifier{sys: s}
	for idx := range f.Items {
		it := &f.Items[idx]
		switch it.Kind {
		case arm64.ItemLabel:
			// LLVM hoists the context load across loop back-edges when the
			// barrier is absent, so labels do not invalidate it; calls do
			// (the callee may clobber the register).
			w.out = append(w.out, *it)
		case arm64.ItemDirective:
			w.out = append(w.out, *it)
		case arm64.ItemInst:
			if err := w.inst(f, idx); err != nil {
				return nil, err
			}
			switch it.Inst.Op {
			case arm64.BL, arm64.BLR, arm64.RET, arm64.BR:
				w.blockLoaded = false
			}
		}
	}
	nf := &arm64.File{Items: w.out}
	if s.IndirectChecks {
		return addIndirectChecks(nf)
	}
	return nf, nil
}

type wasmifier struct {
	sys         *System
	out         []arm64.Item
	blockLoaded bool // heap base valid in heapReg for this basic block
	skipNext    bool
}

func (w *wasmifier) emit(inst arm64.Inst, line int) {
	w.out = append(w.out, arm64.Item{Kind: arm64.ItemInst, Inst: inst, LineNo: line})
}

// loadHeapBase emits "ldr x24, [x21, #ctx]" per the reload policy.
func (w *wasmifier) loadHeapBase(line int) {
	if w.sys.HeapReload == ReloadPerBlock && w.blockLoaded {
		return
	}
	w.emit(arm64.Inst{
		Op: arm64.LDR, Rd: heapReg,
		Rn: arm64.RegNone, Rm: arm64.RegNone, Ra: arm64.RegNone, Amount: -1,
		Mem: arm64.Mem{Mode: arm64.AddrImm, Base: core.RegBase, Imm: ctxHeapOff, Amount: -1},
	}, line)
	w.blockLoaded = true
}

func (w *wasmifier) inst(f *arm64.File, idx int) error {
	it := &f.Items[idx]
	inst := it.Inst
	line := it.LineNo
	if w.skipNext {
		w.skipNext = false
		w.emit(inst, line)
		return nil
	}

	if !inst.Op.IsMemory() {
		w.emit(inst, line)
		return nil
	}
	m := inst.Mem
	// Runtime-call idiom and literal loads pass through.
	if m.Mode == arm64.AddrLiteral || m.Base == core.RegBase {
		w.emit(inst, line)
		if m.Base == core.RegBase {
			w.skipNext = true // the following blr x30
		}
		return nil
	}
	// Stack accesses: Wasm keeps its shadow stack in linear memory, which
	// costs the same base-relative addressing; sp-based accesses with
	// immediates stay as they are (the comparison is then conservative in
	// Wasm's favour).
	base := m.Base
	switch inst.Op {
	case arm64.LDXR, arm64.LDAXR, arm64.STXR, arm64.STLXR, arm64.LDAR, arm64.STLR:
		base = inst.Rn
	}
	if base.IsSP() && !m.IsRegOffset() {
		w.emit(inst, line)
		return nil
	}

	// Rebase the access onto the reloaded heap base. Without the barrier
	// the compiler folds the index into the addressing mode ("mem[idx]"
	// becomes [base, w, uxtw]); with it every access recomputes the sum.
	w.loadHeapBase(line)
	stage, err := stageAddress(&inst, w.sys.HeapReload == ReloadPerBlock)
	if err != nil {
		return fmt.Errorf("wasmbase: line %d: %v", line, err)
	}
	for _, st := range stage.pre {
		w.emit(st, line)
	}
	w.emit(stage.access, line)
	for _, st := range stage.post {
		w.emit(st, line)
	}
	return nil
}

type staged struct {
	pre    []arm64.Inst
	access arm64.Inst
	post   []arm64.Inst
}

// stageAddress lowers any addressing mode onto the reloaded heap base.
// When folded, the access uses the [x24, w22, uxtw] addressing mode (free,
// like LFI's zero-instruction guard); otherwise an explicit add computes
// the sum into x18 first.
func stageAddress(inst *arm64.Inst, folded bool) (staged, error) {
	var s staged
	m := inst.Mem
	w22 := stageReg.W()
	none := arm64.RegNone

	movToW22 := func(src arm64.Reg) arm64.Inst {
		// mov w22, wN == orr w22, wzr, wN
		return arm64.Inst{Op: arm64.ORR, Rd: w22, Rn: arm64.WZR, Rm: src.W(), Ra: none, Amount: -1}
	}
	addImm := func(dst, src arm64.Reg, imm int64) arm64.Inst {
		op := arm64.ADD
		if imm < 0 {
			op, imm = arm64.SUB, -imm
		}
		return arm64.Inst{Op: op, Rd: dst, Rn: src, Rm: none, Ra: none, Imm: imm, Amount: -1}
	}
	sum := arm64.Inst{Op: arm64.ADD, Rd: addrReg, Rn: heapReg, Rm: stageReg, Ra: none, Amount: -1}

	access := *inst
	switch inst.Op {
	case arm64.LDXR, arm64.LDAXR, arm64.STXR, arm64.STLXR, arm64.LDAR, arm64.STLR:
		// Exclusives have no register-offset form; always compute the sum.
		s.pre = append(s.pre, movToW22(inst.Rn), sum)
		access.Rn = addrReg
		s.access = access
		return s, nil
	case arm64.LDP, arm64.STP:
		folded = false // pairs have no register-offset form either
	}
	if folded {
		foldedMem := arm64.Mem{Mode: arm64.AddrRegUXTW, Base: heapReg, Index: w22, Amount: -1}
		switch m.Mode {
		case arm64.AddrBase:
			access.Mem = arm64.Mem{Mode: arm64.AddrRegUXTW, Base: heapReg, Index: m.Base.W(), Amount: -1}
		case arm64.AddrImm:
			if m.Imm >= -4095 && m.Imm <= 4095 {
				s.pre = append(s.pre, addImm(w22, m.Base.W(), int64(m.Imm)))
				access.Mem = foldedMem
			} else {
				s.pre = append(s.pre, movToW22(m.Base), sum)
				access.Mem = arm64.Mem{Mode: arm64.AddrImm, Base: addrReg, Imm: m.Imm, Amount: -1}
			}
		case arm64.AddrPre:
			s.pre = append(s.pre, addImm(m.Base, m.Base, int64(m.Imm)))
			access.Mem = arm64.Mem{Mode: arm64.AddrRegUXTW, Base: heapReg, Index: m.Base.W(), Amount: -1}
		case arm64.AddrPost:
			access.Mem = arm64.Mem{Mode: arm64.AddrRegUXTW, Base: heapReg, Index: m.Base.W(), Amount: -1}
			s.post = append(s.post, addImm(m.Base, m.Base, int64(m.Imm)))
		case arm64.AddrReg, arm64.AddrRegUXTW, arm64.AddrRegSXTW:
			st := arm64.Inst{Op: arm64.ADD, Rd: w22, Rn: m.Base.W(), Rm: m.Index.W(), Ra: none, Amount: m.Amount}
			switch m.Mode {
			case arm64.AddrReg:
				st.Ext = arm64.ExtLSL
				if m.Amount <= 0 {
					st.Ext, st.Amount = arm64.ExtNone, -1
				}
			case arm64.AddrRegUXTW:
				st.Ext = arm64.ExtUXTW
			case arm64.AddrRegSXTW:
				st.Ext = arm64.ExtSXTW
			}
			s.pre = append(s.pre, st)
			access.Mem = foldedMem
		default:
			return s, fmt.Errorf("unsupported addressing mode %v", m.Mode)
		}
		s.access = access
		return s, nil
	}

	switch m.Mode {
	case arm64.AddrBase:
		s.pre = append(s.pre, movToW22(m.Base), sum)
	case arm64.AddrImm:
		if m.Imm >= -4095 && m.Imm <= 4095 {
			s.pre = append(s.pre, addImm(w22, m.Base.W(), int64(m.Imm)), sum)
		} else {
			s.pre = append(s.pre, movToW22(m.Base), sum)
			access.Mem = arm64.Mem{Mode: arm64.AddrImm, Base: addrReg, Imm: m.Imm, Amount: -1}
			s.access = access
			return s, nil
		}
	case arm64.AddrPre:
		s.pre = append(s.pre,
			addImm(m.Base, m.Base, int64(m.Imm)),
			movToW22(m.Base), sum)
	case arm64.AddrPost:
		s.pre = append(s.pre, movToW22(m.Base), sum)
		s.post = append(s.post, addImm(m.Base, m.Base, int64(m.Imm)))
	case arm64.AddrReg, arm64.AddrRegUXTW, arm64.AddrRegSXTW:
		st := arm64.Inst{Op: arm64.ADD, Rd: w22, Rn: m.Base.W(), Rm: m.Index.W(), Ra: none, Amount: m.Amount}
		switch m.Mode {
		case arm64.AddrReg:
			st.Ext = arm64.ExtLSL
			if m.Amount <= 0 {
				st.Ext, st.Amount = arm64.ExtNone, -1
			}
		case arm64.AddrRegUXTW:
			st.Ext = arm64.ExtUXTW
		case arm64.AddrRegSXTW:
			st.Ext = arm64.ExtSXTW
		}
		s.pre = append(s.pre, st, sum)
	default:
		return s, fmt.Errorf("unsupported addressing mode %v", m.Mode)
	}
	access.Mem = arm64.Mem{Mode: arm64.AddrImm, Base: addrReg, Imm: 0, Amount: -1}
	if m.WritesBack() {
		access.Mem.Imm = 0
	}
	s.access = access
	return s, nil
}

// addIndirectChecks inserts the Wasm call_indirect type check before every
// indirect branch (§6.2: "Wasm must ensure that the function being called
// is valid and has the correct type signature"). The check loads the type
// tag from the module context and traps on mismatch.
func addIndirectChecks(f *arm64.File) (*arm64.File, error) {
	var out []arm64.Item
	added := false
	skip := false
	for i := range f.Items {
		it := f.Items[i]
		if it.Kind == arm64.ItemInst {
			inst := &it.Inst
			if skip {
				skip = false
				out = append(out, it)
				continue
			}
			// Skip the runtime-call pair.
			if inst.Op == arm64.LDR && inst.Rd == arm64.X30 && inst.Mem.Base == core.RegBase {
				skip = true
				out = append(out, it)
				continue
			}
			if inst.Op == arm64.BR || inst.Op == arm64.BLR {
				line := it.LineNo
				none := arm64.RegNone
				// ldr x23, [x21, #ctxType] ; cmp x23, #7 ; b.ne trap
				out = append(out,
					arm64.Item{Kind: arm64.ItemInst, LineNo: line, Inst: arm64.Inst{
						Op: arm64.LDR, Rd: typeReg, Rn: none, Rm: none, Ra: none, Amount: -1,
						Mem: arm64.Mem{Mode: arm64.AddrImm, Base: core.RegBase, Imm: ctxTypeOff, Amount: -1},
					}},
					arm64.Item{Kind: arm64.ItemInst, LineNo: line, Inst: arm64.Inst{
						Op: arm64.SUBS, Rd: arm64.XZR, Rn: typeReg, Rm: none, Ra: none,
						Imm: int64(core.CtxTypeTag), Amount: -1,
					}},
					arm64.Item{Kind: arm64.ItemInst, LineNo: line, Inst: arm64.Inst{
						Op: arm64.BCOND, Rd: none, Rn: none, Rm: none, Ra: none,
						Cond: arm64.NE, Label: trapLabel, Amount: -1,
					}},
				)
				added = true
			}
		}
		out = append(out, it)
	}
	if added {
		out = append(out,
			arm64.Item{Kind: arm64.ItemDirective, Directive: "text"},
			arm64.Item{Kind: arm64.ItemLabel, Label: trapLabel},
			arm64.Item{Kind: arm64.ItemInst, Inst: arm64.Inst{
				Op: arm64.BRK, Rd: arm64.RegNone, Rn: arm64.RegNone,
				Rm: arm64.RegNone, Ra: arm64.RegNone, Imm: 77, Amount: -1,
			}},
		)
	}
	return &arm64.File{Items: out}, nil
}
