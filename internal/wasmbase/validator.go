package wasmbase

import (
	"encoding/binary"
	"fmt"
)

// This file implements a small WebAssembly binary validator covering the
// core integer/memory/control subset. It exists for the §5.2 comparison:
// Wasm validation must type-check every instruction against an operand
// stack and control frames, where the LFI verifier performs a single
// decode-and-check pass — which is why the paper measures ~34 MB/s for the
// LFI verifier against ~3 MB/s for WABT's validator.

// ValidationError reports an invalid module.
type ValidationError struct {
	Offset int
	Msg    string
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("wasm: invalid module at +%#x: %s", e.Offset, e.Msg)
}

type valType byte

const (
	tI32 valType = 0x7f
	tI64 valType = 0x7e
)

type funcType struct {
	params  []valType
	results []valType
}

type wasmReader struct {
	b   []byte
	pos int
}

func (r *wasmReader) err(format string, args ...any) error {
	return &ValidationError{Offset: r.pos, Msg: fmt.Sprintf(format, args...)}
}

func (r *wasmReader) byte() (byte, error) {
	if r.pos >= len(r.b) {
		return 0, r.err("unexpected end")
	}
	v := r.b[r.pos]
	r.pos++
	return v, nil
}

func (r *wasmReader) u32() (uint32, error) {
	var v uint32
	var shift uint
	for {
		b, err := r.byte()
		if err != nil {
			return 0, err
		}
		v |= uint32(b&0x7f) << shift
		if b&0x80 == 0 {
			return v, nil
		}
		shift += 7
		if shift >= 35 {
			return 0, r.err("leb128 too long")
		}
	}
}

func (r *wasmReader) s64() error { // parse and discard a signed leb128
	for i := 0; i < 10; i++ {
		b, err := r.byte()
		if err != nil {
			return err
		}
		if b&0x80 == 0 {
			return nil
		}
	}
	return r.err("leb128 too long")
}

// ValidateModule checks a Wasm binary's structure and type-checks every
// function body. It returns the number of bytes validated.
func ValidateModule(b []byte) (int, error) {
	r := &wasmReader{b: b}
	if len(b) < 8 || string(b[:4]) != "\x00asm" || binary.LittleEndian.Uint32(b[4:]) != 1 {
		return 0, &ValidationError{Msg: "bad magic or version"}
	}
	r.pos = 8

	var types []funcType
	var funcs []uint32 // type index per function
	codeSeen := false

	for r.pos < len(b) {
		id, err := r.byte()
		if err != nil {
			return 0, err
		}
		size, err := r.u32()
		if err != nil {
			return 0, err
		}
		end := r.pos + int(size)
		if end > len(b) {
			return 0, r.err("section overruns module")
		}
		switch id {
		case 1: // type section
			n, err := r.u32()
			if err != nil {
				return 0, err
			}
			for i := uint32(0); i < n; i++ {
				form, err := r.byte()
				if err != nil {
					return 0, err
				}
				if form != 0x60 {
					return 0, r.err("bad functype form %#x", form)
				}
				var ft funcType
				np, err := r.u32()
				if err != nil {
					return 0, err
				}
				for j := uint32(0); j < np; j++ {
					t, err := r.byte()
					if err != nil {
						return 0, err
					}
					if valType(t) != tI32 && valType(t) != tI64 {
						return 0, r.err("unsupported value type %#x", t)
					}
					ft.params = append(ft.params, valType(t))
				}
				nr, err := r.u32()
				if err != nil {
					return 0, err
				}
				if nr > 1 {
					return 0, r.err("multi-value results unsupported")
				}
				for j := uint32(0); j < nr; j++ {
					t, err := r.byte()
					if err != nil {
						return 0, err
					}
					ft.results = append(ft.results, valType(t))
				}
				types = append(types, ft)
			}
		case 3: // function section
			n, err := r.u32()
			if err != nil {
				return 0, err
			}
			for i := uint32(0); i < n; i++ {
				ti, err := r.u32()
				if err != nil {
					return 0, err
				}
				if int(ti) >= len(types) {
					return 0, r.err("function type index %d out of range", ti)
				}
				funcs = append(funcs, ti)
			}
		case 10: // code section
			codeSeen = true
			n, err := r.u32()
			if err != nil {
				return 0, err
			}
			if int(n) != len(funcs) {
				return 0, r.err("code count %d != function count %d", n, len(funcs))
			}
			for i := uint32(0); i < n; i++ {
				bodySize, err := r.u32()
				if err != nil {
					return 0, err
				}
				bodyEnd := r.pos + int(bodySize)
				if bodyEnd > len(b) {
					return 0, r.err("body overruns module")
				}
				if err := validateBody(r, bodyEnd, types, funcs, int(i)); err != nil {
					return 0, err
				}
				if r.pos != bodyEnd {
					return 0, r.err("body has trailing bytes")
				}
			}
		default:
			r.pos = end // skip custom/memory/export sections structurally
			continue
		}
		if r.pos != end {
			return 0, r.err("section size mismatch (section %d)", id)
		}
	}
	if len(funcs) > 0 && !codeSeen {
		return 0, r.err("missing code section")
	}
	return len(b), nil
}

type ctrlFrame struct {
	opcode     byte // block/loop/function
	stackDepth int
	result     []valType
}

// validateBody type-checks one function body against its declared type.
func validateBody(r *wasmReader, end int, types []funcType, funcs []uint32, fidx int) error {
	ft := types[funcs[fidx]]
	var locals []valType
	locals = append(locals, ft.params...)
	nGroups, err := r.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < nGroups; i++ {
		count, err := r.u32()
		if err != nil {
			return err
		}
		t, err := r.byte()
		if err != nil {
			return err
		}
		if valType(t) != tI32 && valType(t) != tI64 {
			return r.err("unsupported local type %#x", t)
		}
		if count > 1<<16 {
			return r.err("too many locals")
		}
		for j := uint32(0); j < count; j++ {
			locals = append(locals, valType(t))
		}
	}

	var stack []valType
	ctrl := []ctrlFrame{{opcode: 0, result: ft.results}}

	pop := func(want valType) error {
		if len(stack) <= ctrl[len(ctrl)-1].stackDepth {
			return r.err("stack underflow")
		}
		got := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if got != want {
			return r.err("type mismatch: have %#x want %#x", got, want)
		}
		return nil
	}
	push := func(t valType) { stack = append(stack, t) }

	for r.pos < end {
		op, err := r.byte()
		if err != nil {
			return err
		}
		switch op {
		case 0x00, 0x01: // unreachable, nop
		case 0x02, 0x03: // block, loop
			bt, err := r.byte()
			if err != nil {
				return err
			}
			var res []valType
			switch {
			case bt == 0x40: // empty
			case valType(bt) == tI32 || valType(bt) == tI64:
				res = []valType{valType(bt)}
			default:
				return r.err("unsupported block type %#x", bt)
			}
			ctrl = append(ctrl, ctrlFrame{opcode: op, stackDepth: len(stack), result: res})
		case 0x0b: // end
			f := ctrl[len(ctrl)-1]
			for _, t := range f.result {
				want := t
				if err := pop(want); err != nil {
					return err
				}
			}
			if len(stack) != f.stackDepth {
				return r.err("block leaves %d extra values", len(stack)-f.stackDepth)
			}
			ctrl = ctrl[:len(ctrl)-1]
			for _, t := range f.result {
				push(t)
			}
			if len(ctrl) == 0 {
				if r.pos != end {
					return r.err("code after function end")
				}
				return nil
			}
		case 0x0c: // br
			d, err := r.u32()
			if err != nil {
				return err
			}
			if int(d) >= len(ctrl) {
				return r.err("br depth %d out of range", d)
			}
		case 0x0d: // br_if
			d, err := r.u32()
			if err != nil {
				return err
			}
			if int(d) >= len(ctrl) {
				return r.err("br_if depth %d out of range", d)
			}
			if err := pop(tI32); err != nil {
				return err
			}
		case 0x0f: // return
			for _, t := range ft.results {
				if err := pop(t); err != nil {
					return err
				}
				push(t)
			}
		case 0x10: // call
			fi, err := r.u32()
			if err != nil {
				return err
			}
			if int(fi) >= len(funcs) {
				return r.err("call target %d out of range", fi)
			}
			ct := types[funcs[fi]]
			for i := len(ct.params) - 1; i >= 0; i-- {
				if err := pop(ct.params[i]); err != nil {
					return err
				}
			}
			for _, t := range ct.results {
				push(t)
			}
		case 0x1a: // drop
			if len(stack) <= ctrl[len(ctrl)-1].stackDepth {
				return r.err("drop on empty stack")
			}
			stack = stack[:len(stack)-1]
		case 0x20: // local.get
			li, err := r.u32()
			if err != nil {
				return err
			}
			if int(li) >= len(locals) {
				return r.err("local %d out of range", li)
			}
			push(locals[li])
		case 0x21, 0x22: // local.set, local.tee
			li, err := r.u32()
			if err != nil {
				return err
			}
			if int(li) >= len(locals) {
				return r.err("local %d out of range", li)
			}
			if err := pop(locals[li]); err != nil {
				return err
			}
			if op == 0x22 {
				push(locals[li])
			}
		case 0x28, 0x29: // i32.load, i64.load
			if _, err := r.u32(); err != nil { // align
				return err
			}
			if _, err := r.u32(); err != nil { // offset
				return err
			}
			if err := pop(tI32); err != nil {
				return err
			}
			if op == 0x28 {
				push(tI32)
			} else {
				push(tI64)
			}
		case 0x36, 0x37: // i32.store, i64.store
			if _, err := r.u32(); err != nil {
				return err
			}
			if _, err := r.u32(); err != nil {
				return err
			}
			t := tI32
			if op == 0x37 {
				t = tI64
			}
			if err := pop(t); err != nil {
				return err
			}
			if err := pop(tI32); err != nil {
				return err
			}
		case 0x41: // i32.const
			if err := r.s64(); err != nil {
				return err
			}
			push(tI32)
		case 0x42: // i64.const
			if err := r.s64(); err != nil {
				return err
			}
			push(tI64)
		case 0x45: // i32.eqz
			if err := pop(tI32); err != nil {
				return err
			}
			push(tI32)
		case 0x46, 0x47, 0x48, 0x49, 0x4a, 0x4b, 0x4c, 0x4d, 0x4e, 0x4f: // i32 comparisons
			if err := pop(tI32); err != nil {
				return err
			}
			if err := pop(tI32); err != nil {
				return err
			}
			push(tI32)
		case 0x6a, 0x6b, 0x6c, 0x6d, 0x6e, 0x6f, 0x70, 0x71, 0x72, 0x73, 0x74, 0x75, 0x76, 0x77, 0x78: // i32 alu
			if err := pop(tI32); err != nil {
				return err
			}
			if err := pop(tI32); err != nil {
				return err
			}
			push(tI32)
		case 0x7c, 0x7d, 0x7e, 0x7f, 0x80, 0x81, 0x82, 0x83, 0x84, 0x85, 0x86, 0x87, 0x88, 0x89, 0x8a: // i64 alu
			if err := pop(tI64); err != nil {
				return err
			}
			if err := pop(tI64); err != nil {
				return err
			}
			push(tI64)
		case 0xa7: // i32.wrap_i64
			if err := pop(tI64); err != nil {
				return err
			}
			push(tI32)
		case 0xad: // i64.extend_i32_u
			if err := pop(tI32); err != nil {
				return err
			}
			push(tI64)
		default:
			return r.err("unsupported opcode %#x", op)
		}
	}
	return r.err("function body not terminated by end")
}
