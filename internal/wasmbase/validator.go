package wasmbase

import (
	"encoding/binary"
	"fmt"
)

// This file implements a WebAssembly binary validator covering the core
// integer/memory/control subset. It exists for the §5.2 comparison: Wasm
// validation must type-check every instruction against an operand stack
// and control frames, where the LFI verifier performs a single
// decode-and-check pass — which is why the paper measures ~34 MB/s for the
// LFI verifier against ~3 MB/s for WABT's validator.
//
// It is also the gatekeeper for internal/wasmfront: the translator runs
// ValidateModule before decoding, so the structural rules here (leb128
// strictness, section layout, body bounds) are mirrored exactly by the
// wasmfront decoder, and the type discipline here is what makes the
// translator's static stack bookkeeping total on accepted inputs.

// ValidationError reports an invalid module.
type ValidationError struct {
	Offset int
	Msg    string
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("wasm: invalid module at +%#x: %s", e.Offset, e.Msg)
}

type valType byte

const (
	tI32 valType = 0x7f
	tI64 valType = 0x7e
	// tAny matches any type when popped from an unreachable frame.
	tAny valType = 0
)

type funcType struct {
	params  []valType
	results []valType
}

type globalType struct {
	t   valType
	mut bool
}

type wasmReader struct {
	b   []byte
	pos int
}

func (r *wasmReader) err(format string, args ...any) error {
	return &ValidationError{Offset: r.pos, Msg: fmt.Sprintf(format, args...)}
}

func (r *wasmReader) byte() (byte, error) {
	if r.pos >= len(r.b) {
		return 0, r.err("unexpected end")
	}
	v := r.b[r.pos]
	r.pos++
	return v, nil
}

// u32 decodes an unsigned leb128 u32; bits at and above 32 must be zero.
func (r *wasmReader) u32() (uint32, error) {
	var v uint32
	var shift uint
	for {
		b, err := r.byte()
		if err != nil {
			return 0, err
		}
		if shift == 28 && b&0x70 != 0 {
			return 0, r.err("leb128 u32 overflow")
		}
		v |= uint32(b&0x7f) << shift
		if b&0x80 == 0 {
			return v, nil
		}
		shift += 7
		if shift >= 35 {
			return 0, r.err("leb128 too long")
		}
	}
}

func (r *wasmReader) s64() error { // parse and discard a signed leb128
	_, err := r.s64val()
	return err
}

func (r *wasmReader) s64val() (int64, error) {
	var v uint64
	var shift uint
	for i := 0; i < 10; i++ {
		b, err := r.byte()
		if err != nil {
			return 0, err
		}
		v |= uint64(b&0x7f) << shift
		shift += 7
		if b&0x80 == 0 {
			if shift < 64 && b&0x40 != 0 {
				v |= ^uint64(0) << shift
			}
			return int64(v), nil
		}
	}
	return 0, r.err("leb128 too long")
}

func (r *wasmReader) valtype() (valType, error) {
	t, err := r.byte()
	if err != nil {
		return 0, err
	}
	if valType(t) != tI32 && valType(t) != tI64 {
		return 0, r.err("unsupported value type %#x", t)
	}
	return valType(t), nil
}

// constExpr parses an i32.const/i64.const initializer terminated by end,
// returning the value and the const's type.
func (r *wasmReader) constExpr() (int64, valType, error) {
	op, err := r.byte()
	if err != nil {
		return 0, 0, err
	}
	var t valType
	switch op {
	case 0x41:
		t = tI32
	case 0x42:
		t = tI64
	default:
		return 0, 0, r.err("unsupported init expression opcode %#x", op)
	}
	v, err := r.s64val()
	if err != nil {
		return 0, 0, err
	}
	endOp, err := r.byte()
	if err != nil {
		return 0, 0, err
	}
	if endOp != 0x0b {
		return 0, 0, r.err("init expression not terminated by end")
	}
	if t == tI32 {
		v = int64(uint32(v))
	}
	return v, t, nil
}

func (r *wasmReader) limits() (min, max uint32, err error) {
	flag, err := r.byte()
	if err != nil {
		return 0, 0, err
	}
	if flag > 1 {
		return 0, 0, r.err("bad limits flag %#x", flag)
	}
	min, err = r.u32()
	if err != nil {
		return 0, 0, err
	}
	max = min
	if flag == 1 {
		max, err = r.u32()
		if err != nil {
			return 0, 0, err
		}
		if max < min {
			return 0, 0, r.err("limits max %d < min %d", max, min)
		}
	}
	return min, max, nil
}

// modState accumulates the declarations the body validator needs.
type modState struct {
	types     []funcType
	funcs     []uint32 // type index per function
	globals   []globalType
	hasTable  bool
	tableSize uint32
	hasMem    bool
	memPages  uint32
}

// ValidateModule checks a Wasm binary's structure and type-checks every
// function body. It returns the number of bytes validated.
func ValidateModule(b []byte) (int, error) {
	r := &wasmReader{b: b}
	if len(b) < 8 || string(b[:4]) != "\x00asm" || binary.LittleEndian.Uint32(b[4:]) != 1 {
		return 0, &ValidationError{Msg: "bad magic or version"}
	}
	r.pos = 8

	var m modState
	codeSeen := false

	for r.pos < len(b) {
		id, err := r.byte()
		if err != nil {
			return 0, err
		}
		size, err := r.u32()
		if err != nil {
			return 0, err
		}
		end := r.pos + int(size)
		if end > len(b) || end < r.pos {
			return 0, r.err("section overruns module")
		}
		switch id {
		case 1:
			err = r.typeSection(&m)
		case 2:
			err = r.importSection()
		case 3:
			err = r.funcSection(&m)
		case 4:
			err = r.tableSection(&m)
		case 5:
			err = r.memorySection(&m)
		case 6:
			err = r.globalSection(&m)
		case 7:
			err = r.exportSection(&m)
		case 8:
			err = r.startSection(&m)
		case 9:
			err = r.elemSection(&m)
		case 10:
			codeSeen = true
			err = r.codeSection(&m, end)
		case 11:
			err = r.dataSection(&m)
		default:
			r.pos = end // custom/unknown sections are skipped structurally
			continue
		}
		if err != nil {
			return 0, err
		}
		if r.pos != end {
			return 0, r.err("section size mismatch (section %d)", id)
		}
	}
	if len(m.funcs) > 0 && !codeSeen {
		return 0, r.err("missing code section")
	}
	return len(b), nil
}

func (r *wasmReader) typeSection(m *modState) error {
	n, err := r.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		form, err := r.byte()
		if err != nil {
			return err
		}
		if form != 0x60 {
			return r.err("bad functype form %#x", form)
		}
		var ft funcType
		np, err := r.u32()
		if err != nil {
			return err
		}
		for j := uint32(0); j < np; j++ {
			t, err := r.valtype()
			if err != nil {
				return err
			}
			ft.params = append(ft.params, t)
		}
		nr, err := r.u32()
		if err != nil {
			return err
		}
		if nr > 1 {
			return r.err("multi-value results unsupported")
		}
		for j := uint32(0); j < nr; j++ {
			t, err := r.valtype()
			if err != nil {
				return err
			}
			ft.results = append(ft.results, t)
		}
		m.types = append(m.types, ft)
	}
	return nil
}

func (r *wasmReader) importSection() error {
	n, err := r.u32()
	if err != nil {
		return err
	}
	if n > 0 {
		return r.err("imports unsupported")
	}
	return nil
}

func (r *wasmReader) funcSection(m *modState) error {
	n, err := r.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		ti, err := r.u32()
		if err != nil {
			return err
		}
		if int(ti) >= len(m.types) {
			return r.err("function type index %d out of range", ti)
		}
		m.funcs = append(m.funcs, ti)
	}
	return nil
}

func (r *wasmReader) tableSection(m *modState) error {
	n, err := r.u32()
	if err != nil {
		return err
	}
	if n > 1 {
		return r.err("at most one table")
	}
	for i := uint32(0); i < n; i++ {
		et, err := r.byte()
		if err != nil {
			return err
		}
		if et != 0x70 { // funcref
			return r.err("unsupported table element type %#x", et)
		}
		min, _, err := r.limits()
		if err != nil {
			return err
		}
		m.hasTable = true
		m.tableSize = min
	}
	return nil
}

func (r *wasmReader) memorySection(m *modState) error {
	n, err := r.u32()
	if err != nil {
		return err
	}
	if n > 1 {
		return r.err("at most one memory")
	}
	for i := uint32(0); i < n; i++ {
		min, _, err := r.limits()
		if err != nil {
			return err
		}
		if min > 1<<16 {
			return r.err("memory min %d pages exceeds 4GiB", min)
		}
		m.hasMem = true
		m.memPages = min
	}
	return nil
}

func (r *wasmReader) globalSection(m *modState) error {
	n, err := r.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		t, err := r.valtype()
		if err != nil {
			return err
		}
		mut, err := r.byte()
		if err != nil {
			return err
		}
		if mut > 1 {
			return r.err("bad global mutability %#x", mut)
		}
		_, vt, err := r.constExpr()
		if err != nil {
			return err
		}
		if vt != t {
			return r.err("global init type %#x != declared %#x", byte(vt), byte(t))
		}
		m.globals = append(m.globals, globalType{t: t, mut: mut == 1})
	}
	return nil
}

func (r *wasmReader) exportSection(m *modState) error {
	n, err := r.u32()
	if err != nil {
		return err
	}
	seen := map[string]bool{}
	for i := uint32(0); i < n; i++ {
		nameLen, err := r.u32()
		if err != nil {
			return err
		}
		if r.pos+int(nameLen) > len(r.b) {
			return r.err("name overruns module")
		}
		name := string(r.b[r.pos : r.pos+int(nameLen)])
		r.pos += int(nameLen)
		kind, err := r.byte()
		if err != nil {
			return err
		}
		idx, err := r.u32()
		if err != nil {
			return err
		}
		switch kind {
		case 0:
			if int(idx) >= len(m.funcs) {
				return r.err("export %q: function %d out of range", name, idx)
			}
			if seen[name] {
				return r.err("duplicate export %q", name)
			}
			seen[name] = true
		case 1, 2, 3: // table/memory/global exports: allowed, not checked further
		default:
			return r.err("bad export kind %#x", kind)
		}
	}
	return nil
}

func (r *wasmReader) startSection(m *modState) error {
	idx, err := r.u32()
	if err != nil {
		return err
	}
	if int(idx) >= len(m.funcs) {
		return r.err("start function %d out of range", idx)
	}
	ft := m.types[m.funcs[idx]]
	if len(ft.params) != 0 || len(ft.results) != 0 {
		return r.err("start function must have type [] -> []")
	}
	return nil
}

func (r *wasmReader) elemSection(m *modState) error {
	n, err := r.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		ti, err := r.u32()
		if err != nil {
			return err
		}
		if ti != 0 || !m.hasTable {
			return r.err("element segment table %d out of range", ti)
		}
		off, t, err := r.constExpr()
		if err != nil {
			return err
		}
		if t != tI32 {
			return r.err("element offset must be i32")
		}
		cnt, err := r.u32()
		if err != nil {
			return err
		}
		if uint64(off)+uint64(cnt) > uint64(m.tableSize) {
			return r.err("element segment [%d,%d) exceeds table size %d", off, uint64(off)+uint64(cnt), m.tableSize)
		}
		for j := uint32(0); j < cnt; j++ {
			fi, err := r.u32()
			if err != nil {
				return err
			}
			if int(fi) >= len(m.funcs) {
				return r.err("element function %d out of range", fi)
			}
		}
	}
	return nil
}

func (r *wasmReader) dataSection(m *modState) error {
	n, err := r.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		mi, err := r.u32()
		if err != nil {
			return err
		}
		if mi != 0 || !m.hasMem {
			return r.err("data segment memory %d out of range", mi)
		}
		off, t, err := r.constExpr()
		if err != nil {
			return err
		}
		if t != tI32 {
			return r.err("data offset must be i32")
		}
		cnt, err := r.u32()
		if err != nil {
			return err
		}
		if r.pos+int(cnt) > len(r.b) {
			return r.err("data segment overruns module")
		}
		if uint64(off)+uint64(cnt) > uint64(m.memPages)*65536 {
			return r.err("data segment [%d,%d) exceeds memory size", off, uint64(off)+uint64(cnt))
		}
		r.pos += int(cnt)
	}
	return nil
}

func (r *wasmReader) codeSection(m *modState, sectionEnd int) error {
	n, err := r.u32()
	if err != nil {
		return err
	}
	if int(n) != len(m.funcs) {
		return r.err("code count %d != function count %d", n, len(m.funcs))
	}
	for i := uint32(0); i < n; i++ {
		bodySize, err := r.u32()
		if err != nil {
			return err
		}
		bodyEnd := r.pos + int(bodySize)
		if bodyEnd > sectionEnd || bodyEnd < r.pos {
			return r.err("body overruns section")
		}
		if err := validateBody(r, bodyEnd, m, int(i)); err != nil {
			return err
		}
		if r.pos != bodyEnd {
			return r.err("body has trailing bytes")
		}
	}
	return nil
}

// ctrlFrame is one control-structure frame during body validation.
type ctrlFrame struct {
	opcode      byte // 0 function, 0x02 block, 0x03 loop, 0x04 if, 0x05 else
	stackDepth  int
	result      []valType
	unreachable bool
}

// labelTypes is what a branch to this frame must provide: a loop's
// parameters (always empty in MVP) or a block/if's results.
func (f *ctrlFrame) labelTypes() []valType {
	if f.opcode == 0x03 {
		return nil
	}
	return f.result
}

// validateBody type-checks one function body against its declared type,
// using the standard unreachable-polymorphic stack discipline: code after
// an unconditional transfer is checked with a frame-local polymorphic
// stack, so branch operands are fully verified on every live path.
func validateBody(r *wasmReader, end int, m *modState, fidx int) error {
	ft := m.types[m.funcs[fidx]]
	var locals []valType
	locals = append(locals, ft.params...)
	nGroups, err := r.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < nGroups; i++ {
		count, err := r.u32()
		if err != nil {
			return err
		}
		t, err := r.valtype()
		if err != nil {
			return err
		}
		// Cap total locals across all groups, not per group: the group
		// count is attacker-controlled and each ~4-byte group could
		// otherwise grow the slice by 2^16 entries.
		if uint64(len(locals))+uint64(count) > 1<<16 {
			return r.err("too many locals")
		}
		for j := uint32(0); j < count; j++ {
			locals = append(locals, t)
		}
	}

	var stack []valType
	ctrl := []ctrlFrame{{opcode: 0, result: ft.results}}

	top := func() *ctrlFrame { return &ctrl[len(ctrl)-1] }
	pop := func(want valType) error {
		f := top()
		if len(stack) <= f.stackDepth {
			if f.unreachable {
				return nil // polymorphic
			}
			return r.err("stack underflow")
		}
		got := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if got != want && got != tAny && want != tAny {
			return r.err("type mismatch: have %#x want %#x", byte(got), byte(want))
		}
		return nil
	}
	// popAny pops any value, returning tAny under polymorphism.
	popAny := func() (valType, error) {
		f := top()
		if len(stack) <= f.stackDepth {
			if f.unreachable {
				return tAny, nil
			}
			return 0, r.err("stack underflow")
		}
		got := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return got, nil
	}
	push := func(t valType) { stack = append(stack, t) }
	setUnreachable := func() {
		f := top()
		stack = stack[:f.stackDepth]
		f.unreachable = true
	}
	// checkLabel verifies the operands a branch to relative depth d
	// needs, leaving the stack unchanged.
	checkLabel := func(d uint32) error {
		if int(d) >= len(ctrl) {
			return r.err("branch depth %d out of range", d)
		}
		lt := ctrl[len(ctrl)-1-int(d)].labelTypes()
		for i := len(lt) - 1; i >= 0; i-- {
			if err := pop(lt[i]); err != nil {
				return err
			}
		}
		for _, t := range lt {
			push(t)
		}
		return nil
	}
	// endFrame closes the current frame: its results must be on the
	// stack and nothing else above the entry height.
	endFrame := func() (ctrlFrame, error) {
		f := *top()
		for i := len(f.result) - 1; i >= 0; i-- {
			if err := pop(f.result[i]); err != nil {
				return f, err
			}
		}
		if !f.unreachable && len(stack) != f.stackDepth {
			return f, r.err("block leaves %d extra values", len(stack)-f.stackDepth)
		}
		stack = stack[:f.stackDepth]
		ctrl = ctrl[:len(ctrl)-1]
		return f, nil
	}
	blockResult := func() ([]valType, error) {
		bt, err := r.byte()
		if err != nil {
			return nil, err
		}
		switch {
		case bt == 0x40:
			return nil, nil
		case valType(bt) == tI32 || valType(bt) == tI64:
			return []valType{valType(bt)}, nil
		default:
			return nil, r.err("unsupported block type %#x", bt)
		}
	}
	memarg := func() error {
		if _, err := r.u32(); err != nil { // align
			return err
		}
		_, err := r.u32() // offset
		return err
	}

	for r.pos < end {
		op, err := r.byte()
		if err != nil {
			return err
		}
		switch op {
		case 0x01: // nop
		case 0x00: // unreachable
			setUnreachable()
		case 0x02, 0x03: // block, loop
			res, err := blockResult()
			if err != nil {
				return err
			}
			ctrl = append(ctrl, ctrlFrame{opcode: op, stackDepth: len(stack), result: res})
		case 0x04: // if
			res, err := blockResult()
			if err != nil {
				return err
			}
			if err := pop(tI32); err != nil {
				return err
			}
			ctrl = append(ctrl, ctrlFrame{opcode: op, stackDepth: len(stack), result: res})
		case 0x05: // else
			f := top()
			if f.opcode != 0x04 {
				return r.err("else outside if")
			}
			fr, err := endFrame()
			if err != nil {
				return err
			}
			fr.opcode = 0x05
			fr.unreachable = false
			ctrl = append(ctrl, fr)
		case 0x0b: // end
			f := top()
			if f.opcode == 0x04 && len(f.result) != 0 {
				return r.err("if without else yielding a value")
			}
			fr, err := endFrame()
			if err != nil {
				return err
			}
			for _, t := range fr.result {
				push(t)
			}
			if len(ctrl) == 0 {
				if r.pos != end {
					return r.err("code after function end")
				}
				return nil
			}
		case 0x0c: // br
			d, err := r.u32()
			if err != nil {
				return err
			}
			if err := checkLabel(d); err != nil {
				return err
			}
			setUnreachable()
		case 0x0d: // br_if
			d, err := r.u32()
			if err != nil {
				return err
			}
			if err := pop(tI32); err != nil {
				return err
			}
			if err := checkLabel(d); err != nil {
				return err
			}
		case 0x0e: // br_table
			cnt, err := r.u32()
			if err != nil {
				return err
			}
			if int(cnt) > end-r.pos {
				return r.err("br_table overruns body")
			}
			if err := pop(tI32); err != nil {
				return err
			}
			var def uint32
			targets := make([]uint32, 0, cnt)
			for j := uint32(0); j <= cnt; j++ {
				d, err := r.u32()
				if err != nil {
					return err
				}
				if j == cnt {
					def = d
				} else {
					targets = append(targets, d)
				}
			}
			if err := checkLabel(def); err != nil {
				return err
			}
			// All targets must agree with the default's arity.
			want := len(ctrl[len(ctrl)-1-int(def)].labelTypes())
			for _, d := range targets {
				if int(d) >= len(ctrl) {
					return r.err("branch depth %d out of range", d)
				}
				if len(ctrl[len(ctrl)-1-int(d)].labelTypes()) != want {
					return r.err("br_table label arity mismatch")
				}
				if err := checkLabel(d); err != nil {
					return err
				}
			}
			setUnreachable()
		case 0x0f: // return
			for i := len(ft.results) - 1; i >= 0; i-- {
				if err := pop(ft.results[i]); err != nil {
					return err
				}
			}
			setUnreachable()
		case 0x10: // call
			fi, err := r.u32()
			if err != nil {
				return err
			}
			if int(fi) >= len(m.funcs) {
				return r.err("call target %d out of range", fi)
			}
			ct := m.types[m.funcs[fi]]
			for i := len(ct.params) - 1; i >= 0; i-- {
				if err := pop(ct.params[i]); err != nil {
					return err
				}
			}
			for _, t := range ct.results {
				push(t)
			}
		case 0x11: // call_indirect
			ti, err := r.u32()
			if err != nil {
				return err
			}
			tbl, err := r.byte()
			if err != nil {
				return err
			}
			if tbl != 0 || !m.hasTable {
				return r.err("call_indirect table %d out of range", tbl)
			}
			if int(ti) >= len(m.types) {
				return r.err("call_indirect type %d out of range", ti)
			}
			if err := pop(tI32); err != nil {
				return err
			}
			ct := m.types[ti]
			for i := len(ct.params) - 1; i >= 0; i-- {
				if err := pop(ct.params[i]); err != nil {
					return err
				}
			}
			for _, t := range ct.results {
				push(t)
			}
		case 0x1a: // drop
			if _, err := popAny(); err != nil {
				return err
			}
		case 0x1b: // select
			if err := pop(tI32); err != nil {
				return err
			}
			t1, err := popAny()
			if err != nil {
				return err
			}
			t2, err := popAny()
			if err != nil {
				return err
			}
			if t1 != t2 && t1 != tAny && t2 != tAny {
				return r.err("select operand types differ")
			}
			if t1 == tAny {
				t1 = t2
			}
			if t1 == tAny {
				t1 = tI32 // both polymorphic; any concrete choice is sound
			}
			push(t1)
		case 0x20: // local.get
			li, err := r.u32()
			if err != nil {
				return err
			}
			if int(li) >= len(locals) {
				return r.err("local %d out of range", li)
			}
			push(locals[li])
		case 0x21, 0x22: // local.set, local.tee
			li, err := r.u32()
			if err != nil {
				return err
			}
			if int(li) >= len(locals) {
				return r.err("local %d out of range", li)
			}
			if err := pop(locals[li]); err != nil {
				return err
			}
			if op == 0x22 {
				push(locals[li])
			}
		case 0x23: // global.get
			gi, err := r.u32()
			if err != nil {
				return err
			}
			if int(gi) >= len(m.globals) {
				return r.err("global %d out of range", gi)
			}
			push(m.globals[gi].t)
		case 0x24: // global.set
			gi, err := r.u32()
			if err != nil {
				return err
			}
			if int(gi) >= len(m.globals) {
				return r.err("global %d out of range", gi)
			}
			if !m.globals[gi].mut {
				return r.err("global %d is immutable", gi)
			}
			if err := pop(m.globals[gi].t); err != nil {
				return err
			}
		case 0x28, 0x2c, 0x2d, 0x2e, 0x2f: // i32 loads
			if err := memarg(); err != nil {
				return err
			}
			if !m.hasMem {
				return r.err("load without memory")
			}
			if err := pop(tI32); err != nil {
				return err
			}
			push(tI32)
		case 0x29, 0x30, 0x31, 0x32, 0x33, 0x34, 0x35: // i64 loads
			if err := memarg(); err != nil {
				return err
			}
			if !m.hasMem {
				return r.err("load without memory")
			}
			if err := pop(tI32); err != nil {
				return err
			}
			push(tI64)
		case 0x36, 0x3a, 0x3b: // i32 stores
			if err := memarg(); err != nil {
				return err
			}
			if !m.hasMem {
				return r.err("store without memory")
			}
			if err := pop(tI32); err != nil {
				return err
			}
			if err := pop(tI32); err != nil {
				return err
			}
		case 0x37, 0x3c, 0x3d, 0x3e: // i64 stores
			if err := memarg(); err != nil {
				return err
			}
			if !m.hasMem {
				return r.err("store without memory")
			}
			if err := pop(tI64); err != nil {
				return err
			}
			if err := pop(tI32); err != nil {
				return err
			}
		case 0x41: // i32.const
			if err := r.s64(); err != nil {
				return err
			}
			push(tI32)
		case 0x42: // i64.const
			if err := r.s64(); err != nil {
				return err
			}
			push(tI64)
		case 0x45: // i32.eqz
			if err := pop(tI32); err != nil {
				return err
			}
			push(tI32)
		case 0x50: // i64.eqz
			if err := pop(tI64); err != nil {
				return err
			}
			push(tI32)
		case 0x46, 0x47, 0x48, 0x49, 0x4a, 0x4b, 0x4c, 0x4d, 0x4e, 0x4f: // i32 comparisons
			if err := pop(tI32); err != nil {
				return err
			}
			if err := pop(tI32); err != nil {
				return err
			}
			push(tI32)
		case 0x51, 0x52, 0x53, 0x54, 0x55, 0x56, 0x57, 0x58, 0x59, 0x5a: // i64 comparisons
			if err := pop(tI64); err != nil {
				return err
			}
			if err := pop(tI64); err != nil {
				return err
			}
			push(tI32)
		case 0x6a, 0x6b, 0x6c, 0x6d, 0x6e, 0x6f, 0x70, 0x71, 0x72, 0x73, 0x74, 0x75, 0x76, 0x77, 0x78: // i32 alu
			if err := pop(tI32); err != nil {
				return err
			}
			if err := pop(tI32); err != nil {
				return err
			}
			push(tI32)
		case 0x7c, 0x7d, 0x7e, 0x7f, 0x80, 0x81, 0x82, 0x83, 0x84, 0x85, 0x86, 0x87, 0x88, 0x89, 0x8a: // i64 alu
			if err := pop(tI64); err != nil {
				return err
			}
			if err := pop(tI64); err != nil {
				return err
			}
			push(tI64)
		case 0xa7: // i32.wrap_i64
			if err := pop(tI64); err != nil {
				return err
			}
			push(tI32)
		case 0xac, 0xad: // i64.extend_i32_s, i64.extend_i32_u
			if err := pop(tI32); err != nil {
				return err
			}
			push(tI64)
		default:
			return r.err("unsupported opcode %#x", op)
		}
	}
	return r.err("function body not terminated by end")
}
