package wasmbase

import "encoding/binary"

// GenModule builds a valid WebAssembly module with nFuncs functions of
// roughly bodyBytes bytes each. It is used to benchmark the validator's
// throughput against the LFI verifier's.
func GenModule(nFuncs, bodyBytes int) []byte {
	var out []byte
	out = append(out, "\x00asm"...)
	out = binary.LittleEndian.AppendUint32(out, 1)

	leb := func(b []byte, v uint32) []byte {
		for {
			c := byte(v & 0x7f)
			v >>= 7
			if v != 0 {
				b = append(b, c|0x80)
			} else {
				return append(b, c)
			}
		}
	}
	section := func(id byte, payload []byte) {
		out = append(out, id)
		out = leb(out, uint32(len(payload)))
		out = append(out, payload...)
	}

	// Type section: one type (i32, i32) -> i32.
	var ts []byte
	ts = leb(ts, 1)
	ts = append(ts, 0x60)
	ts = leb(ts, 2)
	ts = append(ts, byte(tI32), byte(tI32))
	ts = leb(ts, 1)
	ts = append(ts, byte(tI32))
	section(1, ts)

	// Function section.
	var fs []byte
	fs = leb(fs, uint32(nFuncs))
	for i := 0; i < nFuncs; i++ {
		fs = leb(fs, 0)
	}
	section(3, fs)

	// Code section.
	var body []byte
	body = leb(body, 1) // one local group
	body = leb(body, 2) // two locals
	body = append(body, byte(tI32))
	// Repeated arithmetic: local.get 0; i32.const k; i32.add; local.tee 2;
	// local.get 1; i32.and; local.set 0  (11 bytes per round).
	round := func(b []byte, k uint32) []byte {
		b = append(b, 0x20, 0x00) // local.get 0
		b = append(b, 0x41)       // i32.const
		b = leb(b, k%64)
		b = append(b, 0x6a)       // i32.add
		b = append(b, 0x22, 0x02) // local.tee 2
		b = append(b, 0x20, 0x01) // local.get 1
		b = append(b, 0x71)       // i32.and
		b = append(b, 0x21, 0x00) // local.set 0
		return b
	}
	for len(body) < bodyBytes-4 {
		body = round(body, uint32(len(body)))
	}
	body = append(body, 0x20, 0x00) // local.get 0 (result)
	body = append(body, 0x0b)       // end

	var cs []byte
	cs = leb(cs, uint32(nFuncs))
	for i := 0; i < nFuncs; i++ {
		cs = leb(cs, uint32(len(body)))
		cs = append(cs, body...)
	}
	section(10, cs)
	return out
}
