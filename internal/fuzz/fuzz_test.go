package fuzz

import (
	"strings"
	"testing"

	"lfi/internal/arm64"
	"lfi/internal/core"
	"lfi/internal/verifier"
)

// TestHarnessSmoke replays a bounded slice of the differential harness on
// every plain `go test` run: all three oracles, zero violations.
func TestHarnessSmoke(t *testing.T) {
	iters := 30
	if testing.Short() {
		iters = 8
	}
	rep := Run(Options{Seed: 1, Iters: iters})
	for _, v := range rep.Violations {
		t.Error(v)
	}
	if rep.Configs != rep.Programs*len(optionSets) {
		t.Errorf("verified %d configs for %d programs, want %d",
			rep.Configs, rep.Programs, rep.Programs*len(optionSets))
	}
	if rep.MutantsAccepted == 0 {
		t.Error("no mutants accepted; the soundness oracle is vacuous")
	}
	if rep.MutantsRejected == 0 {
		t.Error("no mutants rejected; the verifier may be a no-op")
	}
	t.Log(rep)
}

// TestHarnessDeterministic: the same seed must replay the same run.
func TestHarnessDeterministic(t *testing.T) {
	a := Run(Options{Seed: 42, Iters: 3})
	b := Run(Options{Seed: 42, Iters: 3})
	if a.String() != b.String() {
		t.Errorf("same seed, different reports:\n%s\n%s", a, b)
	}
	if NewGen(99).Generate(20) != NewGen(99).Generate(20) {
		t.Error("generator is not deterministic for a fixed seed")
	}
}

// TestFaultInjection drives the serving layer through hostile schedules.
func TestFaultInjection(t *testing.T) {
	opts := FaultOptions{Seed: 1}
	if testing.Short() {
		opts.Rounds = 1
		opts.SnapshotTrials = 5
		opts.ServeRounds = 1
	}
	rep := InjectFaults(opts)
	for _, v := range rep.Violations {
		t.Error(v)
	}
	if rep.Submitted == 0 || rep.Resolved == 0 {
		t.Errorf("vacuous pool hammer: %s", rep)
	}
	if rep.Restores == 0 {
		t.Errorf("vacuous snapshot driver: %s", rep)
	}
	if rep.VecFaults == 0 || rep.VecDrains == 0 {
		t.Errorf("vacuous vectored ipc round: %s", rep)
	}
	if rep.SnapBatches == 0 {
		t.Errorf("vacuous batch snapshot round: %s", rep)
	}
	if rep.ServeRequests == 0 || rep.ServeTerminal == 0 {
		t.Errorf("vacuous serve round: %s", rep)
	}
	t.Log(rep)
}

// FuzzDecode: any 32-bit word that decodes must re-encode to a word that
// decodes to the same instruction, and its printed form must parse back
// to an equivalent instruction. Seeds include the generic-sysreg and
// q-register-offset regressions.
func FuzzDecode(f *testing.F) {
	f.Add(uint32(0xd53f70fc)) // mrs x28, s3_7_c7_c0_7 (generic sysreg print/parse)
	f.Add(uint32(0xd515a0aa)) // msr s2_5_c10_c0_5, x10
	f.Add(uint32(0x3dfffee0)) // ldr q0, [x23, #65520] (guard-escaping immediate)
	f.Add(uint32(0x8b2142b2)) // add x18, x21, w1, uxtw (the guard idiom)
	f.Add(uint32(0xf9400abe)) // ldr x30, [x21, #16] (runtime-call idiom)
	f.Add(uint32(0xf8604abe)) // ldr x30, [x21, w0, uxtw] (x30 reg-offset escape)
	f.Fuzz(func(t *testing.T, w uint32) {
		inst, err := arm64.Decode(w)
		if err != nil {
			return
		}
		w2, err := arm64.Encode(&inst)
		if err != nil {
			t.Fatalf("decoded %#08x -> %q but cannot re-encode: %v", w, inst.String(), err)
		}
		inst2, err := arm64.Decode(w2)
		if err != nil || inst2 != inst {
			t.Fatalf("decode fixpoint: %#08x -> %+v -> %#08x -> %+v (%v)", w, inst, w2, inst2, err)
		}
		s := inst.String()
		p, err := arm64.ParseInst(s)
		if err != nil {
			t.Fatalf("decode %#08x -> %q does not parse: %v", w, s, err)
		}
		if p != inst {
			w3, err := arm64.Encode(&p)
			if err != nil {
				t.Fatalf("parse of %q cannot encode: %v", s, err)
			}
			d3, err := arm64.Decode(w3)
			if err != nil || d3 != inst {
				t.Fatalf("print/parse divergence: %#08x (%q) reparsed to %#08x", w, s, w3)
			}
		}
	})
}

// FuzzVerify: the verifier must never panic, whatever the text bytes and
// text offset; and anything it accepts must stay accepted when re-checked
// (the pass is deterministic). Seeds include the TextOff-overflow
// regression.
func FuzzVerify(f *testing.F) {
	f.Add(uint64(core.MinCodeOffset), []byte{0xe0, 0xfe, 0xff, 0x3d}) // q-imm word at valid offset
	f.Add(^uint64(0), []byte{0x1f, 0x20, 0x03, 0xd5})                 // TextOff overflow regression
	f.Add(^uint64(0)&^uint64(3), []byte{0x1f, 0x20, 0x03, 0xd5})      // aligned hostile TextOff
	f.Add(uint64(core.MaxCodeOffset), []byte{0x1f, 0x20, 0x03, 0xd5}) // boundary
	f.Add(uint64(core.MinCodeOffset), []byte{0xb2, 0x42, 0x21, 0x8b, 0xc0, 0x03, 0x5f, 0xd6})
	// ldr x30, [x21, w0, uxtw]; ret — the reg-offset x30 load the prover
	// caught: accepted pre-fix, jumps to an arbitrary loaded address.
	f.Add(uint64(core.MinCodeOffset), []byte{0xbe, 0x4a, 0x60, 0xf8, 0xc0, 0x03, 0x5f, 0xd6})
	// sub sp, sp, #1008; str q0, [sp, #49136] — the sp drift chain the
	// old GuardSize-16 sp bound let escape past the guard band.
	f.Add(uint64(core.MinCodeOffset), []byte{0xff, 0xc3, 0x0f, 0xd1, 0xe0, 0xff, 0xaf, 0x3d})
	f.Fuzz(func(t *testing.T, textOff uint64, text []byte) {
		cfg := verifier.DefaultConfig()
		cfg.TextOff = textOff
		st1, err1 := verifier.Verify(text, cfg)
		st2, err2 := verifier.Verify(text, cfg)
		if (err1 == nil) != (err2 == nil) || st1 != st2 {
			t.Fatalf("verifier is nondeterministic: (%v, %v) vs (%v, %v)", st1, err1, st2, err2)
		}
		if err1 == nil && textOff > core.MaxCodeOffset {
			t.Fatalf("accepted text at offset %#x past the code margin", textOff)
		}
	})
}

// FuzzRewriteVerify: every generated program, rewritten at every option
// set, must pass the verifier — the native-fuzzing form of oracle 1.
func FuzzRewriteVerify(f *testing.F) {
	f.Add(int64(1), uint8(10))
	f.Add(int64(1337), uint8(30))
	f.Add(int64(-7), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, stmts uint8) {
		src := NewGen(seed).Generate(int(stmts%48) + 1)
		for _, set := range optionSets {
			img, err := buildSandboxed(src, set, core.SlotBase(1))
			if err != nil {
				// The generator only emits well-formed programs, so any
				// pipeline failure is a bug.
				t.Fatalf("%+v: %v\n%s", set, err, src)
			}
			cfg := verifier.DefaultConfig()
			cfg.TextOff = core.MinCodeOffset
			cfg.NoLoads = set.NoLoads
			if _, err := verifier.Verify(img.Text, cfg); err != nil {
				t.Fatalf("%+v: verifier rejected rewriter output: %v\n%s", set, err, src)
			}
		}
	})
}

// TestGeneratorCoversRegressions pins generator coverage of the paths
// behind past bugs: oversized q-register immediates must keep appearing
// in the program stream, or the corpus silently loses the regression.
func TestGeneratorCoversRegressions(t *testing.T) {
	found := false
	for seed := int64(0); seed < 50 && !found; seed++ {
		src := NewGen(seed).Generate(40)
		if strings.Contains(src, "str q0, [x11, #49") ||
			strings.Contains(src, "ldr q1, [x11, #49") {
			found = true
		}
	}
	if !found {
		t.Error("generator never emitted an oversized q-register immediate in 50 seeds")
	}
}
