package fuzz

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"time"

	"lfi/internal/core"
	"lfi/internal/pool"
	"lfi/internal/progs"
	"lfi/internal/serve"
)

// serveKinds is the complete terminal vocabulary of the wire protocol; a
// response classified outside it is a taxonomy violation.
var serveKinds = map[string]bool{
	"ok": true, "deadline": true, "quota": true, "overloaded": true,
	"canceled": true, "verify": true, "unknown_image": true,
	"closed": true, "queue_full": true, "bad_request": true,
	"internal": true, "unknown_job": true,
}

// serveRound hammers a network serving front-end through real sockets
// while hostile events fire underneath: clients cancel mid-flight
// (dropping the HTTP request), async jobs are canceled via DELETE, a
// rate-limited tenant runs hot to force 429s, and the server is closed
// at a random point with work queued and running. Invariants: every
// request that gets a response gets one from the documented taxonomy
// (with quota mapped to 429), every async job reaches a terminal state,
// and after Close every shard has drained (queue depth zero, submitted
// equals completed).
func serveRound(seed int64, rep *FaultReport) {
	rng := rand.New(rand.NewSource(seed))

	var mu sync.Mutex
	var violations []string
	report := func(format string, args ...any) {
		mu.Lock()
		violations = append(violations, fmt.Sprintf("serve: "+format, args...))
		mu.Unlock()
	}

	s := serve.New(serve.Config{
		Shards: 2,
		Pool:   pool.Config{Workers: 2, QueueDepth: 4, Budget: 300_000},
		Tenants: []serve.TenantConfig{
			{Name: "limited", Rate: 20, Burst: 4},
			{Name: "bulk", Weight: 4},
		},
		MaxPending: 8,
	})
	if _, err := s.BuildImage("quick", faultTenant+progs.ExitCode(7), core.Options{Opt: core.O2}); err != nil {
		report("build quick: %v", err)
		s.Close()
		return
	}
	if _, err := s.BuildImage("spin", faultSpin, core.Options{Opt: core.O2}); err != nil {
		report("build spin: %v", err)
		s.Close()
		return
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		report("listen: %v", err)
		s.Close()
		return
	}
	srv := &http.Server{Handler: s.Mux()}
	go srv.Serve(ln)
	base := "http://" + ln.Addr().String()
	client := &http.Client{Timeout: 30 * time.Second}

	const submitters = 4
	const perSubmitter = 25
	requests, terminal := 0, 0
	closeAfter := 1 + rng.Intn(submitters*perSubmitter)
	var closeOnce sync.Once
	var wg sync.WaitGroup
	count := func() {
		mu.Lock()
		requests++
		n := requests
		mu.Unlock()
		if n == closeAfter {
			closeOnce.Do(func() {
				wg.Add(1)
				go func() {
					defer wg.Done()
					s.Close()
				}()
			})
		}
	}
	resolved := func() {
		mu.Lock()
		terminal++
		mu.Unlock()
	}

	for w := 0; w < submitters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			srng := rand.New(rand.NewSource(seed ^ int64(w+1)))
			for i := 0; i < perSubmitter; i++ {
				req := map[string]any{"image": "quick"}
				switch srng.Intn(3) {
				case 0:
					req["tenant"] = "limited"
				case 1:
					req["tenant"] = "bulk"
				}
				if srng.Intn(4) == 0 {
					req["image"] = "spin"
					req["budget"] = 50_000
				}
				count()
				if srng.Intn(3) == 0 {
					serveAsyncProbe(client, base, req, srng, report)
					resolved()
					continue
				}
				kind, canceled := serveSyncProbe(client, base, req, srng, report)
				if canceled {
					resolved() // client walked away; server-side drain invariants cover the job
					continue
				}
				if kind != "" {
					resolved()
				}
			}
		}(w)
	}
	wg.Wait()
	s.Close() // idempotent; ensures drain when closeAfter was never reached

	// Post-close invariants: nothing queued, everything the pools
	// admitted has completed, and no async job is still pending.
	st := s.Status()
	if !st.Draining {
		report("status not draining after close")
	}
	for _, ts := range st.Tenants {
		if ts.Queued != 0 {
			report("tenant %s still has %d queued after close", ts.Name, ts.Queued)
		}
	}
	for _, sh := range st.Shards {
		if sh.Queued != 0 || sh.Pool.QueueDepth != 0 {
			report("shard %d queues not drained: router %d, pool %d", sh.Shard, sh.Queued, sh.Pool.QueueDepth)
		}
		if sh.Pool.Submitted != sh.Pool.Completed {
			report("shard %d: submitted %d != completed %d after close", sh.Shard, sh.Pool.Submitted, sh.Pool.Completed)
		}
	}
	if st.AsyncActive != 0 {
		report("%d async jobs still pending after close", st.AsyncActive)
	}

	// The drained server answers with the closed taxonomy error, not a
	// hang or a transport failure.
	if kind, _ := serveSyncProbe(client, base, map[string]any{"image": "quick"}, rng, report); kind != "closed" {
		report("post-close submit classified %q, want closed", kind)
	}

	srv.Close()
	ln.Close()

	mu.Lock()
	rep.ServeRequests += requests
	rep.ServeTerminal += terminal
	rep.Violations = append(rep.Violations, violations...)
	mu.Unlock()
}

// serveSyncProbe submits one sync job. It returns the response's error
// kind ("" if the response was unusable) and whether the client
// canceled the request itself — the one case where a missing response
// is legitimate.
func serveSyncProbe(client *http.Client, base string, req map[string]any, rng *rand.Rand, report func(string, ...any)) (string, bool) {
	ctx := context.Background()
	cancelMidFlight := rng.Intn(4) == 0
	var cancel context.CancelFunc
	if cancelMidFlight {
		ctx, cancel = context.WithCancel(ctx)
		delay := time.Duration(rng.Intn(2000)) * time.Microsecond
		go func() {
			time.Sleep(delay)
			cancel()
		}()
		defer cancel()
	}
	body, _ := json.Marshal(req)
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		report("new request: %v", err)
		return "", false
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(hreq)
	if err != nil {
		if cancelMidFlight {
			return "", true // our own cancel tore the request down
		}
		report("sync request failed in transport: %v", err)
		return "", false
	}
	defer resp.Body.Close()
	var doc struct {
		ErrorKind string `json:"error_kind"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		if cancelMidFlight {
			return "", true
		}
		report("sync response not JSON: %v", err)
		return "", false
	}
	if !serveKinds[doc.ErrorKind] {
		report("sync response kind %q outside taxonomy", doc.ErrorKind)
		return "", false
	}
	if doc.ErrorKind == "quota" && resp.StatusCode != http.StatusTooManyRequests {
		report("quota rejection served HTTP %d, want 429", resp.StatusCode)
	}
	return doc.ErrorKind, false
}

// serveAsyncProbe submits an async job, sometimes cancels it via
// DELETE, and polls until it reaches a terminal state. An async job
// that never terminates is reported as a violation.
func serveAsyncProbe(client *http.Client, base string, req map[string]any, rng *rand.Rand, report func(string, ...any)) {
	req["async"] = true
	body, _ := json.Marshal(req)
	resp, err := client.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		report("async submit failed in transport: %v", err)
		return
	}
	var doc struct {
		ID        string `json:"id"`
		State     string `json:"state"`
		ErrorKind string `json:"error_kind"`
	}
	err = json.NewDecoder(resp.Body).Decode(&doc)
	resp.Body.Close()
	if err != nil {
		report("async submit response not JSON: %v", err)
		return
	}
	if resp.StatusCode != http.StatusAccepted {
		// Rejected at admission (closed, quota, ...): that IS terminal.
		if !serveKinds[doc.ErrorKind] {
			report("async rejection kind %q outside taxonomy", doc.ErrorKind)
		}
		return
	}
	if rng.Intn(3) == 0 {
		dreq, _ := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+doc.ID, nil)
		if dresp, err := client.Do(dreq); err == nil {
			dresp.Body.Close()
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		gresp, err := client.Get(base + "/v1/jobs/" + doc.ID)
		if err != nil {
			report("async poll failed in transport: %v", err)
			return
		}
		var got struct {
			State     string `json:"state"`
			ErrorKind string `json:"error_kind"`
		}
		err = json.NewDecoder(gresp.Body).Decode(&got)
		gresp.Body.Close()
		if err != nil {
			report("async poll response not JSON: %v", err)
			return
		}
		if got.State == "done" {
			if !serveKinds[got.ErrorKind] {
				report("async result kind %q outside taxonomy", got.ErrorKind)
			}
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	report("async job %s never reached a terminal state", doc.ID)
}
