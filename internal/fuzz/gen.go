// Package fuzz is the differential fuzzing and fault-injection harness for
// the rewriter -> verifier -> emulator pipeline. It checks three oracles:
//
//  1. Rewriter completeness: every well-formed program, after Rewrite,
//     must pass the static verifier at every optimization level.
//  2. Verifier soundness: any text the verifier accepts — including
//     randomly corrupted text — must be unable to touch memory or branch
//     outside its sandbox when executed.
//  3. Fastpath equivalence: every accepted program must produce
//     bit-identical registers, memory, retired-instruction counts, cycle
//     counts, and traps with the emulator fast path on and off.
//
// The harness is deterministic: a (seed, iters) pair replays exactly.
package fuzz

import (
	"fmt"
	"math/rand"
	"strings"
)

// Gen builds random well-formed assembly programs over the supported
// ARM64 subset. Values live in x0..x8; x25 holds a 64KiB buffer base;
// x9-x16 are scratch. Offsets are masked into bounds, so native and
// sandboxed runs compute identical addresses modulo the sandbox base, and
// every program terminates (loops are bounded, branches only go forward).
type Gen struct {
	rng *rand.Rand
	b   strings.Builder
	n   int
}

// NewGen returns a generator producing the deterministic program stream
// for seed.
func NewGen(seed int64) *Gen {
	return &Gen{rng: rand.New(rand.NewSource(seed))}
}

func (g *Gen) line(format string, args ...any) {
	fmt.Fprintf(&g.b, "\t"+format+"\n", args...)
}

func (g *Gen) val() string { return fmt.Sprintf("x%d", g.rng.Intn(9)) }

// maskedOffset materializes an in-bounds buffer offset (0..0xff7f) in the
// given scratch register.
func (g *Gen) maskedOffset(dst string) {
	g.line("and %s, %s, #0xff00", dst, g.val())
	if g.rng.Intn(2) == 0 {
		g.line("add %s, %s, #%d", dst, dst, g.rng.Intn(128))
	}
}

func (g *Gen) stmt() {
	switch g.rng.Intn(16) {
	case 0: // plain ALU
		ops := []string{"add", "sub", "eor", "orr", "and", "mul", "udiv", "sdiv"}
		g.line("%s %s, %s, %s", ops[g.rng.Intn(len(ops))], g.val(), g.val(), g.val())
	case 1: // shifted/extended ALU
		switch g.rng.Intn(3) {
		case 0:
			g.line("add %s, %s, %s, lsl #%d", g.val(), g.val(), g.val(), g.rng.Intn(8))
		case 1:
			g.line("eor %s, %s, %s, lsr #%d", g.val(), g.val(), g.val(), 1+g.rng.Intn(31))
		case 2:
			g.line("add %s, %s, w%d, uxtw", g.val(), g.val(), g.rng.Intn(9))
		}
	case 2: // store, immediate mode
		g.maskedOffset("x9")
		g.line("add x10, x25, x9")
		g.line("str %s, [x10, #%d]", g.val(), 8*g.rng.Intn(16))
	case 3: // load, immediate mode
		g.maskedOffset("x9")
		g.line("add x10, x25, x9")
		g.line("ldr %s, [x10, #%d]", g.val(), 8*g.rng.Intn(16))
	case 4: // register-offset load (the Table 3 modes)
		g.maskedOffset("x9")
		switch g.rng.Intn(4) {
		case 0:
			g.line("ldr %s, [x25, x9]", g.val())
		case 1:
			g.line("ldr %s, [x25, w9, uxtw]", g.val())
		case 2:
			g.line("ldr %s, [x25, w9, sxtw]", g.val())
		case 3:
			g.line("lsr x11, x9, #3")
			g.line("ldr %s, [x25, x11, lsl #3]", g.val())
		}
	case 5: // byte/half accesses
		g.maskedOffset("x9")
		g.line("add x10, x25, x9")
		v := g.rng.Intn(9)
		g.line("strb w%d, [x10, #%d]", v, g.rng.Intn(64))
		g.line("ldrb w%d, [x10, #%d]", g.rng.Intn(9), g.rng.Intn(64))
		g.line("strh w%d, [x10, #%d]", v, 2*g.rng.Intn(32))
		g.line("ldrsh x%d, [x10, #%d]", g.rng.Intn(9), 2*g.rng.Intn(32))
	case 6: // pre/post index
		g.maskedOffset("x9")
		g.line("add x10, x25, x9")
		if g.rng.Intn(2) == 0 {
			g.line("str %s, [x10, #%d]!", g.val(), 8*(g.rng.Intn(8)+1))
		} else {
			g.line("ldr %s, [x10], #%d", g.val(), 8*g.rng.Intn(8))
		}
	case 7: // pairs
		g.maskedOffset("x9")
		g.line("add x10, x25, x9")
		g.line("stp x%d, x%d, [x10, #%d]", g.rng.Intn(9), g.rng.Intn(9), 16*g.rng.Intn(4))
		g.line("ldp x%d, x%d, [x10, #%d]", g.rng.Intn(9), g.rng.Intn(9), 16*g.rng.Intn(4))
	case 8: // stack traffic (exercises the §4.2 sp paths)
		amt := 16 * (g.rng.Intn(8) + 1)
		g.line("sub sp, sp, #%d", amt)
		g.line("str %s, [sp, #8]", g.val())
		g.line("ldr %s, [sp, #8]", g.val())
		g.line("add sp, sp, #%d", amt)
	case 9: // conditional select on data
		g.line("cmp %s, %s", g.val(), g.val())
		g.line("csel %s, %s, %s, %s", g.val(), g.val(), g.val(),
			[]string{"eq", "lt", "hi", "ge"}[g.rng.Intn(4)])
	case 10: // short data-dependent branch
		l1 := fmt.Sprintf(".Lf%d", g.n)
		g.n++
		g.line("tbz %s, #%d, %s", g.val(), g.rng.Intn(20), l1)
		g.line("add %s, %s, #1", g.val(), g.val())
		g.b.WriteString(l1 + ":\n")
	case 11: // call/return (exercises the x30 guards)
		g.line("bl helper")
	case 12: // FP traffic through memory
		g.maskedOffset("x9")
		g.line("add x10, x25, x9")
		g.line("ldr d0, [x10, #%d]", 8*g.rng.Intn(8))
		g.line("ldr d1, [x10, #%d]", 8*g.rng.Intn(8))
		g.line("fadd d2, d0, d1")
		g.line("str d2, [x10, #%d]", 8*g.rng.Intn(8))
		g.line("fcvtzs %s, d2", g.val())
	case 13: // q-register accesses, including oversized scaled immediates
		g.maskedOffset("x9")
		g.line("add x10, x25, x9")
		if g.rng.Intn(3) == 0 {
			// Past the 48KiB guard bound: forces the rewriter's staged
			// lowering (the regression from the q-offset soundness hole).
			g.line("add x11, x25, #0")
			g.line("str q0, [x11, #%d]", 49152+16*g.rng.Intn(8))
			g.line("ldr q1, [x11, #%d]", 49152+16*g.rng.Intn(8))
		} else {
			g.line("str q0, [x10, #%d]", 16*g.rng.Intn(8))
			g.line("ldr q1, [x10, #%d]", 16*g.rng.Intn(8))
		}
	case 14: // bitfield / move-wide edges
		switch g.rng.Intn(3) {
		case 0:
			g.line("ubfx %s, %s, #%d, #8", g.val(), g.val(), g.rng.Intn(32))
		case 1:
			g.line("movk %s, #%d, lsl #48", g.val(), g.rng.Intn(65536))
		case 2:
			g.line("extr %s, %s, %s, #%d", g.val(), g.val(), g.val(), g.rng.Intn(64))
		}
	case 15: // exclusive pair on an aligned slot (LL/SC paths)
		g.line("and x9, %s, #0xff00", g.val())
		g.line("add x10, x25, x9")
		g.line("ldxr x11, [x10]")
		g.line("add x11, x11, #1")
		g.line("stxr w12, x11, [x10]")
		g.line("eor x%d, x%d, x12", g.rng.Intn(9), g.rng.Intn(9))
	}
}

// Generate returns a complete program of roughly stmts statements with a
// deterministic checksum epilogue folding every value register and a
// memory checksum into x0, ending in brk #0.
func (g *Gen) Generate(stmts int) string {
	g.b.Reset()
	g.n = 0
	g.b.WriteString(".globl _start\n_start:\n")
	for i := 0; i < 9; i++ {
		g.line("movz x%d, #%d", i, g.rng.Intn(65536))
		g.line("movk x%d, #%d, lsl #16", i, 1+g.rng.Intn(65535))
	}
	g.line("adrp x25, buf")
	g.line("add x25, x25, :lo12:buf")
	for i := 0; i < stmts; i++ {
		g.stmt()
	}
	for i := 1; i < 9; i++ {
		g.line("eor x0, x0, x%d", i)
	}
	g.b.WriteString(`
	mov x9, #0
	mov x10, #0
cksum:
	ldr x11, [x25, x9]
	eor x10, x10, x11
	add x9, x9, #8
	cmp x9, #65536
	b.ne cksum
	eor x0, x0, x10
	brk #0
helper:
	add x7, x7, #3
	ret
.bss
buf:
	.space 131072
`)
	return g.b.String()
}
