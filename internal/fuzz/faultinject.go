package fuzz

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"lfi/internal/core"
	"lfi/internal/lfirt"
	"lfi/internal/pool"
	"lfi/internal/progs"
)

// FaultOptions parameterizes the serving-layer fault injector.
type FaultOptions struct {
	// Seed drives the random choice of hostile events.
	Seed int64
	// Rounds is the number of pool build/hammer/close cycles (0 = 3).
	Rounds int
	// SnapshotTrials is the number of kill/restore cycles against a
	// direct runtime (0 = 20).
	SnapshotTrials int
	// IPCTrials is the number of mid-IPC kill/cancel trials against an
	// echo pair over a ring channel (0 = 12).
	IPCTrials int
	// VSubmitTrials is the number of mid-batch kill/cancel trials against
	// an echo pair driven through vectored runtime calls (0 = 8).
	VSubmitTrials int
	// BatchSnapshotTrials is the number of snapshot/restore cycles against
	// a process parked mid-RTVSubmit (0 = 6).
	BatchSnapshotTrials int
	// ServeRounds is the number of network-serving rounds driven through
	// the HTTP protocol layer against a live listener (0 = 2).
	ServeRounds int
}

func (o FaultOptions) withDefaults() FaultOptions {
	if o.Rounds == 0 {
		o.Rounds = 3
	}
	if o.SnapshotTrials == 0 {
		o.SnapshotTrials = 20
	}
	if o.IPCTrials == 0 {
		o.IPCTrials = 12
	}
	if o.VSubmitTrials == 0 {
		o.VSubmitTrials = 8
	}
	if o.BatchSnapshotTrials == 0 {
		o.BatchSnapshotTrials = 6
	}
	if o.ServeRounds == 0 {
		o.ServeRounds = 2
	}
	return o
}

// FaultReport summarizes a fault-injection run.
type FaultReport struct {
	Submitted int // jobs admitted across all pool rounds
	Resolved  int // tickets that resolved with an allowed outcome
	Kills     int // processes killed mid-run in the snapshot driver
	Restores  int // snapshot restores after a kill
	IPCFaults int // echo peers killed or canceled mid-IPC
	IPCDrains int // surviving peers that drained to a clean exit

	VecFaults   int // vectored echo peers killed or canceled mid-batch
	VecDrains   int // surviving vectored peers that drained cleanly
	SnapBatches int // parked batches snapshotted and restored with -EPIPE

	ServeRequests int // HTTP jobs issued across all serve rounds
	ServeTerminal int // serve requests that reached a terminal outcome

	Violations []string
}

func (r *FaultReport) String() string {
	return fmt.Sprintf("faults: %d submitted, %d resolved, %d kills, %d restores, %d ipc faults, %d ipc drains, %d vec faults, %d vec drains, %d snap batches, %d serve reqs, %d serve terminal, %d violations",
		r.Submitted, r.Resolved, r.Kills, r.Restores, r.IPCFaults, r.IPCDrains,
		r.VecFaults, r.VecDrains, r.SnapBatches, r.ServeRequests, r.ServeTerminal, len(r.Violations))
}

const faultTenant = `
_start:
	mov x3, #0
	mov x4, #400
loop:
	add x3, x3, #1
	cmp x3, x4
	b.ne loop
` // + exit appended per-variant

const faultSpin = `
_start:
spin:
	b spin
`

// InjectFaults drives the serving layer through hostile schedules: pools
// closed while jobs are queued and running, contexts canceled at random
// points, and processes killed mid-run then restored from snapshots. The
// invariants: every admitted ticket resolves with an outcome from the
// documented failure taxonomy, and a restore after any kill replays the
// original execution exactly.
func InjectFaults(opts FaultOptions) *FaultReport {
	opts = opts.withDefaults()
	rep := &FaultReport{}
	rng := rand.New(rand.NewSource(opts.Seed))

	for round := 0; round < opts.Rounds; round++ {
		poolRound(rng.Int63(), rep)
	}
	snapshotDriver(rng.Int63(), opts.SnapshotTrials, rep)
	ipcRound(rng.Int63(), opts.IPCTrials, rep)
	vsubmitRound(rng.Int63(), opts.VSubmitTrials, rep)
	batchSnapshotRound(opts.BatchSnapshotTrials, rep)
	for round := 0; round < opts.ServeRounds; round++ {
		serveRound(rng.Int63(), rep)
	}
	return rep
}

// poolRound hammers one pool with concurrent submitters while the pool is
// closed underneath them at a random point.
func poolRound(seed int64, rep *FaultReport) {
	rng := rand.New(rand.NewSource(seed))
	p := pool.New(pool.Config{Workers: 2, QueueDepth: 4, Budget: 200_000})
	quick, err := p.BuildImage(faultTenant+progs.ExitCode(7), core.Options{Opt: core.O2})
	if err != nil {
		rep.Violations = append(rep.Violations, fmt.Sprintf("pool: build: %v", err))
		p.Close()
		return
	}
	spin, err := p.BuildImage(faultSpin, core.Options{Opt: core.O2})
	if err != nil {
		rep.Violations = append(rep.Violations, fmt.Sprintf("pool: build spin: %v", err))
		p.Close()
		return
	}

	var mu sync.Mutex
	var violations []string
	report := func(format string, args ...any) {
		mu.Lock()
		violations = append(violations, fmt.Sprintf("pool: "+format, args...))
		mu.Unlock()
	}
	submitted, resolved := 0, 0

	var wg sync.WaitGroup
	submitters := 4
	perSubmitter := 40
	closeAfter := rng.Intn(submitters * perSubmitter)
	var closeOnce sync.Once
	count := func() {
		mu.Lock()
		submitted++
		n := submitted
		mu.Unlock()
		if n == closeAfter {
			closeOnce.Do(func() {
				wg.Add(1)
				go func() {
					defer wg.Done()
					p.Close()
				}()
			})
		}
	}

	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			srng := rand.New(rand.NewSource(seed ^ int64(s)))
			for i := 0; i < perSubmitter; i++ {
				img := quick
				budget := uint64(0)
				if srng.Intn(4) == 0 {
					img, budget = spin, 50_000 // runaway job, deadline-killed
				}
				ctx, cancel := context.WithCancel(context.Background())
				tk, err := p.SubmitCtx(ctx, pool.Job{Image: img, Budget: budget})
				if err != nil {
					if !errors.Is(err, pool.ErrQueueFull) && !errors.Is(err, pool.ErrClosed) {
						report("submit: unexpected error %v", err)
					}
					cancel()
					continue
				}
				count()
				if srng.Intn(3) == 0 {
					go cancel() // cancellation racing dispatch and execution
				} else {
					defer cancel()
				}
				res := waitOrHang(tk, report)
				if res == nil {
					return
				}
				var dl *lfirt.ErrDeadline
				switch {
				case res.Err == nil,
					errors.Is(res.Err, pool.ErrClosed),
					errors.Is(res.Err, pool.ErrCanceled),
					errors.As(res.Err, &dl):
				default:
					report("result outside failure taxonomy: %v", res.Err)
				}
				if res.Err == nil && img == quick && res.Status != 7 {
					report("successful job returned status %d, want 7", res.Status)
				}
				mu.Lock()
				resolved++
				mu.Unlock()
			}
		}(s)
	}
	wg.Wait()
	p.Close() // idempotent; ensures shutdown when closeAfter was never hit

	if st := p.Stats(); st.QueueDepth != 0 {
		report("queue depth %d after close, want 0", st.QueueDepth)
	} else if st.Submitted != st.Completed {
		report("submitted %d != completed %d after close", st.Submitted, st.Completed)
	}
	if _, err := p.Submit(pool.Job{Image: quick}); !errors.Is(err, pool.ErrClosed) {
		report("submit after close: %v, want ErrClosed", err)
	}

	mu.Lock()
	rep.Submitted += submitted
	rep.Resolved += resolved
	rep.Violations = append(rep.Violations, violations...)
	mu.Unlock()
}

// waitOrHang resolves a ticket with a hang detector: a ticket that never
// resolves is the worst serving-layer bug, so it is reported rather than
// deadlocking the harness.
func waitOrHang(tk *pool.Ticket, report func(string, ...any)) *pool.Result {
	done := make(chan *pool.Result, 1)
	go func() { done <- tk.Wait() }()
	select {
	case res := <-done:
		return res
	case <-time.After(30 * time.Second):
		report("ticket did not resolve within 30s")
		return nil
	}
}

// ipcEchoServer binds a ring channel at port 3 and echoes datagram-sized
// records forever. It exits 0 when the peer disappears — EOF from recv
// or -EPIPE from send — and 95 on any other outcome, so a wrong errno
// after a mid-IPC fault is visible as a bad exit status.
var ipcEchoServer = `
_start:
	mov x0, #2
	mov x1, #64
` + progs.RTCall(core.RTSocket) + `
	mov x19, x0
	mov x0, x19
	mov x1, #3
` + progs.RTCall(core.RTBind) + `
	cbnz x0, eerr
eloop:
	mov x0, x19
	adrp x1, ebuf
	add x1, x1, :lo12:ebuf
	mov x2, #8
` + progs.RTCall(core.RTRecv) + `
	cbz x0, edone
	tbnz x0, #63, eerr
	mov x2, x0
	mov x0, x19
	adrp x1, ebuf
	add x1, x1, :lo12:ebuf
` + progs.RTCall(core.RTSend) + `
	tbnz x0, #63, esendchk
	b eloop
esendchk:
	neg x9, x0
	cmp x9, #32
	b.eq edone
	b eerr
edone:
	mov x0, #0
` + progs.Exit() + `
eerr:
	mov x0, #95
` + progs.Exit() + `
.bss
ebuf:
	.space 16
`

// ipcEchoClient connects to the echo server and ping-pongs forever (or,
// in the finite variant below, for a fixed number of rounds). Clean
// peer-death outcomes exit 0; anything else exits 94.
func ipcEchoClient(rounds int) string {
	loopTail := "\tb cloop\n"
	init := "\tmov x27, #0\n"
	if rounds > 0 {
		init = fmt.Sprintf("\tmov x27, #%d\n", rounds)
		loopTail = "\tsubs x27, x27, #1\n\tb.ne cloop\n\tmov x0, #0\n" + progs.Exit()
	}
	return `
_start:
	mov x0, #2
	mov x1, #64
` + progs.RTCall(core.RTSocket) + `
	mov x19, x0
` + init + `	movz x28, #1000           // bounded connect retries
cconn:
	mov x0, x19
	mov x1, #3
` + progs.RTCall(core.RTConnect) + `
	cbz x0, cloop
	neg x9, x0
	cmp x9, #111              // ECONNREFUSED: binder not up (yet, or ever)
	b.ne cerr
	subs x28, x28, #1
	b.eq cdone                // binder never appeared: give up cleanly
	mov x0, #0
` + progs.RTCall(core.RTYield) + `
	b cconn
cloop:
	adrp x9, cbuf
	add x9, x9, :lo12:cbuf
	mov w10, #0x41
	strb w10, [x9]
	mov x0, x19
	adrp x1, cbuf
	add x1, x1, :lo12:cbuf
	mov x2, #8
` + progs.RTCall(core.RTSend) + `
	tbnz x0, #63, csendchk
	mov x0, x19
	adrp x1, cbuf
	add x1, x1, :lo12:cbuf
	mov x2, #8
` + progs.RTCall(core.RTRecv) + `
	cbz x0, cdone
	tbnz x0, #63, cerr
` + loopTail + `
csendchk:
	neg x9, x0
	cmp x9, #32
	b.eq cdone
	b cerr
cdone:
	mov x0, #0
` + progs.Exit() + `
cerr:
	mov x0, #94
` + progs.Exit() + `
.bss
cbuf:
	.space 16
`
}

// vsubmitSlot emits initialization of submission-ring slot idx (at
// sandbox symbol vring, with the buffer at vbuf): op, fd from x19,
// buf, len, zero flags and status.
func vsubmitSlot(idx int, op uint64, length int) string {
	off := idx * int(core.VSubmitSlotSize)
	return fmt.Sprintf(`	adrp x9, vring
	add x9, x9, :lo12:vring
	adrp x10, vbuf
	add x10, x10, :lo12:vbuf
	mov x12, #%d
	str x12, [x9, #%d]
	str x19, [x9, #%d]
	str x10, [x9, #%d]
	mov x12, #%d
	str x12, [x9, #%d]
	mov x12, #0
	str x12, [x9, #%d]
	str x12, [x9, #%d]
`, op, off+int(core.VOffOp), off+int(core.VOffFD), off+int(core.VOffBuf),
		length, off+int(core.VOffLen), off+int(core.VOffFlags), off+int(core.VOffStatus))
}

// vsubmitEchoBody is the shared main loop of the vectored echo programs:
// one RTVSubmit trap per iteration with a two-op batch whose statuses are
// checked against the peer-death taxonomy. Status 0 (EOF) or -EPIPE on
// either op is a clean peer-death exit; a short batch return only happens
// for a parked batch completed from the host side (snapshot restore),
// whose unfinished ops carry the same -EPIPE contract — also clean.
// Anything else exits through the err label.
func vsubmitEchoBody(loopTail string) string {
	return `	adrp x0, vring
	add x0, x0, :lo12:vring
	mov x1, #2
` + progs.RTCall(core.RTVSubmit) + `	tbnz x0, #63, verr
	cmp x0, #2
	b.ne vdone
	adrp x9, vring
	add x9, x9, :lo12:vring
	ldr x11, [x9, #40]
	cbz x11, vdone
	tbnz x11, #63, vchk0
	ldr x11, [x9, #104]
	cbz x11, vdone
	tbnz x11, #63, vchk1
` + loopTail + `vchk0:
	neg x12, x11
	cmp x12, #32
	b.eq vdone
	b verr
vchk1:
	neg x12, x11
	cmp x12, #32
	b.eq vdone
	b verr
vdone:
	mov x0, #0
` + progs.Exit() + `
verr:
	mov x0, #93
` + progs.Exit() + `
.bss
vring:
	.space 128
vbuf:
	.space 16
`
}

// vsubmitEchoServer is ipcEchoServer rebuilt on the vectored call: it
// binds the ring channel at port 3 and echoes with one [recv, send]
// batch per trap.
var vsubmitEchoServer = `
_start:
	mov x0, #2
	mov x1, #64
` + progs.RTCall(core.RTSocket) + `
	mov x19, x0
	mov x0, x19
	mov x1, #3
` + progs.RTCall(core.RTBind) + `
	cbnz x0, verr
` + vsubmitSlot(0, core.VOpRecv, 8) + vsubmitSlot(1, core.VOpSend, 8) + `
vloop:
` + vsubmitEchoBody("\tb vloop\n")

// vsubmitEchoClient connects to the vectored echo server and ping-pongs
// with one [send, recv] batch per trap; rounds 0 means forever.
func vsubmitEchoClient(rounds int) string {
	loopTail := "\tb vloop\n"
	init := ""
	if rounds > 0 {
		init = fmt.Sprintf("\tmov x27, #%d\n", rounds)
		loopTail = "\tsubs x27, x27, #1\n\tb.ne vloop\n\tb vdone\n"
	}
	return `
_start:
	mov x0, #2
	mov x1, #64
` + progs.RTCall(core.RTSocket) + `
	mov x19, x0
` + init + `	movz x28, #1000           // bounded connect retries
vconn:
	mov x0, x19
	mov x1, #3
` + progs.RTCall(core.RTConnect) + `
	cbz x0, vinit
	neg x9, x0
	cmp x9, #111              // ECONNREFUSED: binder not up (yet, or ever)
	b.ne verr
	subs x28, x28, #1
	b.eq vdone                // binder never appeared: give up cleanly
	mov x0, #0
` + progs.RTCall(core.RTYield) + `
	b vconn
vinit:
` + vsubmitSlot(0, core.VOpSend, 8) + vsubmitSlot(1, core.VOpRecv, 8) + `
vloop:
` + vsubmitEchoBody(loopTail)
}

// ipcRound kills one side of a live echo pair mid-IPC — by instruction
// budget, by cancellation, or by direct KillProcess — and checks the
// invariants: the surviving peer drains to a clean exit (no deadlock, no
// hang, no wrong errno), the process table empties, and a fresh pair
// communicates cleanly in the same runtime afterwards (the fault must
// not leak a port binding or corrupt channel state).
func ipcRound(seed int64, trials int, rep *FaultReport) {
	echoPairRound(seed, trials, rep, "ipc", ipcEchoServer, ipcEchoClient(0), ipcEchoClient(5), false)
}

// vsubmitRound is ipcRound with the echo pair driven through vectored
// runtime calls, so every injected fault lands against a batch that is
// in flight or parked mid-submission.
func vsubmitRound(seed int64, trials int, rep *FaultReport) {
	echoPairRound(seed, trials, rep, "vsubmit",
		vsubmitEchoServer, vsubmitEchoClient(0), vsubmitEchoClient(5), true)
}

func echoPairRound(seed int64, trials int, rep *FaultReport, tag, serverSrc, clientSrc, finiteSrc string, vec bool) {
	rng := rand.New(rand.NewSource(seed))
	violation := func(format string, args ...any) {
		rep.Violations = append(rep.Violations, fmt.Sprintf(tag+" "+format, args...))
	}
	build := func(src string) []byte {
		res, err := progs.Build(src, core.Options{Opt: core.O2})
		if err != nil {
			violation("build: %v", err)
			return nil
		}
		return res.ELF
	}
	serverELF := build(serverSrc)
	clientELF := build(clientSrc)
	finiteELF := build(finiteSrc)
	spinELF := build(faultSpin)
	if serverELF == nil || clientELF == nil || finiteELF == nil || spinELF == nil {
		return
	}

	// runDrained runs the scheduler under a hang detector.
	runDrained := func(rt *lfirt.Runtime, trial int, what string) bool {
		errc := make(chan error, 1)
		go func() { errc <- rt.Run() }()
		select {
		case err := <-errc:
			if err != nil {
				violation("trial %d: %s: %v", trial, what, err)
				return false
			}
		case <-time.After(30 * time.Second):
			violation("trial %d: %s hung (>30s)", trial, what)
			return false
		}
		if n := len(rt.Procs()); n != 0 {
			violation("trial %d: %s left %d processes", trial, what, n)
			return false
		}
		return true
	}

	for trial := 0; trial < trials; trial++ {
		cfg := lfirt.DefaultConfig()
		cfg.Timeslice = uint64(500 + rng.Intn(2000))
		rt := lfirt.New(cfg)
		server, err1 := rt.Load(serverELF)
		client, err2 := rt.Load(clientELF)
		dummy, err3 := rt.Load(spinELF)
		if err1 != nil || err2 != nil || err3 != nil {
			violation("trial %d: load: %v %v %v", trial, err1, err2, err3)
			continue
		}

		// Warm-up: the spinning dummy absorbs a deadline kill while the
		// echo pair reaches steady state, so the fault below lands
		// mid-IPC, not before the rendezvous.
		var dl *lfirt.ErrDeadline
		if _, err := rt.RunProcDeadline(dummy, uint64(3000+rng.Intn(10000))); !errors.As(err, &dl) {
			violation("trial %d: warm-up: %v, want deadline", trial, err)
			continue
		}

		target, survivor := server, client
		if rng.Intn(2) == 0 {
			target, survivor = client, server
		}
		switch rng.Intn(3) {
		case 0: // instruction-budget kill
			if _, err := rt.RunProcDeadline(target, uint64(1+rng.Intn(3000))); !errors.As(err, &dl) {
				violation("trial %d: budget fault: %v, want deadline", trial, err)
			}
		case 1: // cancellation
			done := make(chan struct{})
			close(done)
			if _, err := rt.RunProcCancel(target, 0, done); !errors.Is(err, lfirt.ErrCanceled) {
				violation("trial %d: cancel fault: %v, want ErrCanceled", trial, err)
			}
		case 2: // direct host-side kill between dispatches
			rt.KillProcess(target, 137)
		}
		if vec {
			rep.VecFaults++
		} else {
			rep.IPCFaults++
		}

		if !runDrained(rt, trial, "drain after fault") {
			continue
		}
		if s := survivor.ExitStatus(); s != 0 {
			violation("trial %d: survivor exited %d, want 0 (93/94/95 = wrong errno seen)", trial, s)
			continue
		}
		if vec {
			rep.VecDrains++
		} else {
			rep.IPCDrains++
		}

		// The runtime must still serve IPC: a fresh pair on the same
		// port, with a finite client closing gracefully mid-stream.
		s2, err1 := rt.Load(serverELF)
		c2, err2 := rt.Load(finiteELF)
		if err1 != nil || err2 != nil {
			violation("trial %d: reload: %v %v", trial, err1, err2)
			continue
		}
		if !runDrained(rt, trial, "fresh pair after fault") {
			continue
		}
		if s2.ExitStatus() != 0 || c2.ExitStatus() != 0 {
			violation("trial %d: fresh pair exited %d/%d, want 0/0",
				trial, s2.ExitStatus(), c2.ExitStatus())
		}
	}
}

// snapshotDriver kills processes at hostile points — mid-run deadlines,
// pre-fired cancellations, kills at random instruction counts — and
// checks that restoring the pre-run snapshot replays the undisturbed
// execution exactly (status and output).
func snapshotDriver(seed int64, trials int, rep *FaultReport) {
	rng := rand.New(rand.NewSource(seed))
	src := faultTenant + progs.ExitCode(3)
	res, err := progs.Build(src, core.Options{Opt: core.O2})
	if err != nil {
		rep.Violations = append(rep.Violations, fmt.Sprintf("snapshot: build: %v", err))
		return
	}

	// Reference: one undisturbed run.
	ref := lfirt.New(lfirt.DefaultConfig())
	p, err := ref.Load(res.ELF)
	if err != nil {
		rep.Violations = append(rep.Violations, fmt.Sprintf("snapshot: load: %v", err))
		return
	}
	wantStatus, err := ref.RunProc(p)
	if err != nil {
		rep.Violations = append(rep.Violations, fmt.Sprintf("snapshot: reference run: %v", err))
		return
	}
	wantOut := append([]byte(nil), p.Stdout()...)

	for trial := 0; trial < trials; trial++ {
		rt := lfirt.New(lfirt.DefaultConfig())
		proc, err := rt.Load(res.ELF)
		if err != nil {
			rep.Violations = append(rep.Violations, fmt.Sprintf("snapshot trial %d: load: %v", trial, err))
			continue
		}
		snap, err := rt.Snapshot(proc)
		if err != nil {
			rep.Violations = append(rep.Violations, fmt.Sprintf("snapshot trial %d: snapshot: %v", trial, err))
			continue
		}

		// Hostile event: deadline kill, pre-fired cancel, or direct kill.
		switch rng.Intn(3) {
		case 0:
			budget := uint64(1 + rng.Intn(1500))
			_, err := rt.RunProcDeadline(proc, budget)
			var dl *lfirt.ErrDeadline
			if err != nil && !errors.As(err, &dl) {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("snapshot trial %d: deadline run: %v", trial, err))
			}
		case 1:
			done := make(chan struct{})
			close(done)
			if _, err := rt.RunProcCancel(proc, 0, done); !errors.Is(err, lfirt.ErrCanceled) {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("snapshot trial %d: canceled run: %v, want ErrCanceled", trial, err))
			}
		case 2:
			rt.KillProcess(proc, 137)
		}
		rep.Kills++

		// Restore must bring back a pristine process that replays the
		// reference execution bit-for-bit.
		re, err := rt.Restore(snap)
		if err != nil {
			rep.Violations = append(rep.Violations, fmt.Sprintf("snapshot trial %d: restore: %v", trial, err))
			continue
		}
		rep.Restores++
		rt.Start(re)
		status, err := rt.RunProc(re)
		if err != nil {
			rep.Violations = append(rep.Violations, fmt.Sprintf("snapshot trial %d: restored run: %v", trial, err))
			continue
		}
		if status != wantStatus {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("snapshot trial %d: restored status %d, want %d", trial, status, wantStatus))
		}
		if !bytes.Equal(re.Stdout(), wantOut) {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("snapshot trial %d: restored output %q, want %q", trial, re.Stdout(), wantOut))
		}
	}
}

// vsubmitParked is a guest that parks itself mid-batch: a same-process
// ring pair (x19 bound at port 3, x20 connected), then a two-op batch
// whose first op is a nop and whose second is a recv on the empty pair —
// the batch parks at index 1 and the process deadlocks. The code after
// the call runs only post-restore; it checks the -EPIPE contract exactly
// (return 1, slot0 status 0, slot1 status -EPIPE) and exits 33.
var vsubmitParked = `
_start:
	mov x0, #2
	mov x1, #64
` + progs.RTCall(core.RTSocket) + `
	mov x19, x0
	mov x0, #2
	mov x1, #64
` + progs.RTCall(core.RTSocket) + `
	mov x20, x0
	mov x0, x19
	mov x1, #3
` + progs.RTCall(core.RTBind) + `
	cbnz x0, perr
	mov x0, x20
	mov x1, #3
` + progs.RTCall(core.RTConnect) + `
	cbnz x0, perr
` + vsubmitSlot(0, core.VOpNop, 0) + vsubmitSlot(1, core.VOpRecv, 8) + `
	adrp x0, vring
	add x0, x0, :lo12:vring
	mov x1, #2
` + progs.RTCall(core.RTVSubmit) + `
	cmp x0, #1
	b.ne perr
	adrp x9, vring
	add x9, x9, :lo12:vring
	ldr x11, [x9, #40]
	cbnz x11, perr
	ldr x11, [x9, #104]
	neg x12, x11
	cmp x12, #32
	b.ne perr
	mov x0, #33
` + progs.Exit() + `
perr:
	mov x0, #96
` + progs.Exit() + `
.bss
vring:
	.space 128
vbuf:
	.space 16
`

// batchSnapshotRound snapshots a process parked mid-RTVSubmit and
// restores it — alternating between a fresh runtime and the original one
// (after killing the parked original) — checking that every restore
// completes the batch under the documented contract: the call returns
// the completed-op count with -EPIPE in each unfinished slot, verified
// by the guest itself (exit 33).
func batchSnapshotRound(trials int, rep *FaultReport) {
	violation := func(format string, args ...any) {
		rep.Violations = append(rep.Violations, fmt.Sprintf("batch-snapshot "+format, args...))
	}
	res, err := progs.Build(vsubmitParked, core.Options{Opt: core.O2})
	if err != nil {
		violation("build: %v", err)
		return
	}
	for trial := 0; trial < trials; trial++ {
		rt := lfirt.New(lfirt.DefaultConfig())
		p, err := rt.Load(res.ELF)
		if err != nil {
			violation("trial %d: load: %v", trial, err)
			continue
		}
		var dl *lfirt.ErrDeadlock
		if err := rt.Run(); !errors.As(err, &dl) {
			violation("trial %d: run: %v, want deadlock with parked batch", trial, err)
			continue
		}
		snap, err := rt.Snapshot(p)
		if err != nil {
			violation("trial %d: snapshot: %v", trial, err)
			continue
		}
		rep.Kills++
		target := rt
		if trial%2 == 0 {
			target = lfirt.New(lfirt.DefaultConfig())
		} else {
			rt.KillProcess(p, 137) // reclaim the parked original first
		}
		re, err := target.Restore(snap)
		if err != nil {
			violation("trial %d: restore: %v", trial, err)
			continue
		}
		target.Start(re)
		status, err := target.RunProc(re)
		if err != nil {
			violation("trial %d: restored run: %v", trial, err)
			continue
		}
		if status != 33 {
			violation("trial %d: restored batch exited %d, want 33 (96 = contract violated)", trial, status)
			continue
		}
		rep.SnapBatches++
	}
}
