package fuzz

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"lfi/internal/core"
	"lfi/internal/lfirt"
	"lfi/internal/pool"
	"lfi/internal/progs"
)

// FaultOptions parameterizes the serving-layer fault injector.
type FaultOptions struct {
	// Seed drives the random choice of hostile events.
	Seed int64
	// Rounds is the number of pool build/hammer/close cycles (0 = 3).
	Rounds int
	// SnapshotTrials is the number of kill/restore cycles against a
	// direct runtime (0 = 20).
	SnapshotTrials int
}

func (o FaultOptions) withDefaults() FaultOptions {
	if o.Rounds == 0 {
		o.Rounds = 3
	}
	if o.SnapshotTrials == 0 {
		o.SnapshotTrials = 20
	}
	return o
}

// FaultReport summarizes a fault-injection run.
type FaultReport struct {
	Submitted  int // jobs admitted across all pool rounds
	Resolved   int // tickets that resolved with an allowed outcome
	Kills      int // processes killed mid-run in the snapshot driver
	Restores   int // snapshot restores after a kill
	Violations []string
}

func (r *FaultReport) String() string {
	return fmt.Sprintf("faults: %d submitted, %d resolved, %d kills, %d restores, %d violations",
		r.Submitted, r.Resolved, r.Kills, r.Restores, len(r.Violations))
}

const faultTenant = `
_start:
	mov x3, #0
	mov x4, #400
loop:
	add x3, x3, #1
	cmp x3, x4
	b.ne loop
` // + exit appended per-variant

const faultSpin = `
_start:
spin:
	b spin
`

// InjectFaults drives the serving layer through hostile schedules: pools
// closed while jobs are queued and running, contexts canceled at random
// points, and processes killed mid-run then restored from snapshots. The
// invariants: every admitted ticket resolves with an outcome from the
// documented failure taxonomy, and a restore after any kill replays the
// original execution exactly.
func InjectFaults(opts FaultOptions) *FaultReport {
	opts = opts.withDefaults()
	rep := &FaultReport{}
	rng := rand.New(rand.NewSource(opts.Seed))

	for round := 0; round < opts.Rounds; round++ {
		poolRound(rng.Int63(), rep)
	}
	snapshotDriver(rng.Int63(), opts.SnapshotTrials, rep)
	return rep
}

// poolRound hammers one pool with concurrent submitters while the pool is
// closed underneath them at a random point.
func poolRound(seed int64, rep *FaultReport) {
	rng := rand.New(rand.NewSource(seed))
	p := pool.New(pool.Config{Workers: 2, QueueDepth: 4, Budget: 200_000})
	quick, err := p.BuildImage(faultTenant+progs.ExitCode(7), core.Options{Opt: core.O2})
	if err != nil {
		rep.Violations = append(rep.Violations, fmt.Sprintf("pool: build: %v", err))
		p.Close()
		return
	}
	spin, err := p.BuildImage(faultSpin, core.Options{Opt: core.O2})
	if err != nil {
		rep.Violations = append(rep.Violations, fmt.Sprintf("pool: build spin: %v", err))
		p.Close()
		return
	}

	var mu sync.Mutex
	var violations []string
	report := func(format string, args ...any) {
		mu.Lock()
		violations = append(violations, fmt.Sprintf("pool: "+format, args...))
		mu.Unlock()
	}
	submitted, resolved := 0, 0

	var wg sync.WaitGroup
	submitters := 4
	perSubmitter := 40
	closeAfter := rng.Intn(submitters * perSubmitter)
	var closeOnce sync.Once
	count := func() {
		mu.Lock()
		submitted++
		n := submitted
		mu.Unlock()
		if n == closeAfter {
			closeOnce.Do(func() {
				wg.Add(1)
				go func() {
					defer wg.Done()
					p.Close()
				}()
			})
		}
	}

	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			srng := rand.New(rand.NewSource(seed ^ int64(s)))
			for i := 0; i < perSubmitter; i++ {
				img := quick
				budget := uint64(0)
				if srng.Intn(4) == 0 {
					img, budget = spin, 50_000 // runaway job, deadline-killed
				}
				ctx, cancel := context.WithCancel(context.Background())
				tk, err := p.SubmitCtx(ctx, pool.Job{Image: img, Budget: budget})
				if err != nil {
					if !errors.Is(err, pool.ErrQueueFull) && !errors.Is(err, pool.ErrClosed) {
						report("submit: unexpected error %v", err)
					}
					cancel()
					continue
				}
				count()
				if srng.Intn(3) == 0 {
					go cancel() // cancellation racing dispatch and execution
				} else {
					defer cancel()
				}
				res := waitOrHang(tk, report)
				if res == nil {
					return
				}
				var dl *lfirt.ErrDeadline
				switch {
				case res.Err == nil,
					errors.Is(res.Err, pool.ErrClosed),
					errors.Is(res.Err, pool.ErrCanceled),
					errors.As(res.Err, &dl):
				default:
					report("result outside failure taxonomy: %v", res.Err)
				}
				if res.Err == nil && img == quick && res.Status != 7 {
					report("successful job returned status %d, want 7", res.Status)
				}
				mu.Lock()
				resolved++
				mu.Unlock()
			}
		}(s)
	}
	wg.Wait()
	p.Close() // idempotent; ensures shutdown when closeAfter was never hit

	if st := p.Stats(); st.QueueDepth != 0 {
		report("queue depth %d after close, want 0", st.QueueDepth)
	} else if st.Submitted != st.Completed {
		report("submitted %d != completed %d after close", st.Submitted, st.Completed)
	}
	if _, err := p.Submit(pool.Job{Image: quick}); !errors.Is(err, pool.ErrClosed) {
		report("submit after close: %v, want ErrClosed", err)
	}

	mu.Lock()
	rep.Submitted += submitted
	rep.Resolved += resolved
	rep.Violations = append(rep.Violations, violations...)
	mu.Unlock()
}

// waitOrHang resolves a ticket with a hang detector: a ticket that never
// resolves is the worst serving-layer bug, so it is reported rather than
// deadlocking the harness.
func waitOrHang(tk *pool.Ticket, report func(string, ...any)) *pool.Result {
	done := make(chan *pool.Result, 1)
	go func() { done <- tk.Wait() }()
	select {
	case res := <-done:
		return res
	case <-time.After(30 * time.Second):
		report("ticket did not resolve within 30s")
		return nil
	}
}

// snapshotDriver kills processes at hostile points — mid-run deadlines,
// pre-fired cancellations, kills at random instruction counts — and
// checks that restoring the pre-run snapshot replays the undisturbed
// execution exactly (status and output).
func snapshotDriver(seed int64, trials int, rep *FaultReport) {
	rng := rand.New(rand.NewSource(seed))
	src := faultTenant + progs.ExitCode(3)
	res, err := progs.Build(src, core.Options{Opt: core.O2})
	if err != nil {
		rep.Violations = append(rep.Violations, fmt.Sprintf("snapshot: build: %v", err))
		return
	}

	// Reference: one undisturbed run.
	ref := lfirt.New(lfirt.DefaultConfig())
	p, err := ref.Load(res.ELF)
	if err != nil {
		rep.Violations = append(rep.Violations, fmt.Sprintf("snapshot: load: %v", err))
		return
	}
	wantStatus, err := ref.RunProc(p)
	if err != nil {
		rep.Violations = append(rep.Violations, fmt.Sprintf("snapshot: reference run: %v", err))
		return
	}
	wantOut := append([]byte(nil), p.Stdout()...)

	for trial := 0; trial < trials; trial++ {
		rt := lfirt.New(lfirt.DefaultConfig())
		proc, err := rt.Load(res.ELF)
		if err != nil {
			rep.Violations = append(rep.Violations, fmt.Sprintf("snapshot trial %d: load: %v", trial, err))
			continue
		}
		snap, err := rt.Snapshot(proc)
		if err != nil {
			rep.Violations = append(rep.Violations, fmt.Sprintf("snapshot trial %d: snapshot: %v", trial, err))
			continue
		}

		// Hostile event: deadline kill, pre-fired cancel, or direct kill.
		switch rng.Intn(3) {
		case 0:
			budget := uint64(1 + rng.Intn(1500))
			_, err := rt.RunProcDeadline(proc, budget)
			var dl *lfirt.ErrDeadline
			if err != nil && !errors.As(err, &dl) {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("snapshot trial %d: deadline run: %v", trial, err))
			}
		case 1:
			done := make(chan struct{})
			close(done)
			if _, err := rt.RunProcCancel(proc, 0, done); !errors.Is(err, lfirt.ErrCanceled) {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("snapshot trial %d: canceled run: %v, want ErrCanceled", trial, err))
			}
		case 2:
			rt.KillProcess(proc, 137)
		}
		rep.Kills++

		// Restore must bring back a pristine process that replays the
		// reference execution bit-for-bit.
		re, err := rt.Restore(snap)
		if err != nil {
			rep.Violations = append(rep.Violations, fmt.Sprintf("snapshot trial %d: restore: %v", trial, err))
			continue
		}
		rep.Restores++
		rt.Start(re)
		status, err := rt.RunProc(re)
		if err != nil {
			rep.Violations = append(rep.Violations, fmt.Sprintf("snapshot trial %d: restored run: %v", trial, err))
			continue
		}
		if status != wantStatus {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("snapshot trial %d: restored status %d, want %d", trial, status, wantStatus))
		}
		if !bytes.Equal(re.Stdout(), wantOut) {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("snapshot trial %d: restored output %q, want %q", trial, re.Stdout(), wantOut))
		}
	}
}
