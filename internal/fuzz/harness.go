package fuzz

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"lfi/internal/arm64"
	"lfi/internal/core"
	"lfi/internal/rewrite"
	"lfi/internal/verifier"
)

// Options parameterizes one harness run.
type Options struct {
	// Seed makes the whole run deterministic; the same (Seed, Iters,
	// Stmts) triple replays exactly.
	Seed int64
	// Iters is the number of generated programs to push through the
	// oracles.
	Iters int
	// Stmts is the approximate statement count per program (0 = 30).
	Stmts int
	// MutantsPerProgram is how many corrupted variants of each program
	// are offered to the verifier (0 = 4).
	MutantsPerProgram int
	// Budget bounds each lockstep execution in instructions (0 = 300k).
	Budget uint64
}

func (o Options) withDefaults() Options {
	if o.Stmts == 0 {
		o.Stmts = 30
	}
	if o.MutantsPerProgram == 0 {
		o.MutantsPerProgram = 4
	}
	if o.Budget == 0 {
		o.Budget = 300_000
	}
	return o
}

// Violation is one oracle failure with enough context to reproduce it.
type Violation struct {
	// Oracle names the failed property: "rewriter-completeness",
	// "verifier-soundness", or "fastpath-equivalence".
	Oracle string
	// Iter is the generator iteration that produced the program.
	Iter int
	// Detail describes the failure.
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("[%s] iter %d: %s", v.Oracle, v.Iter, v.Detail)
}

// Report summarizes a harness run.
type Report struct {
	Iters           int
	Programs        int // programs generated and rewritten
	Configs         int // (program, option-set) pairs verified
	LockstepRuns    int // clean programs executed slow/fast
	MutantsAccepted int // corrupted texts the verifier accepted (and ran)
	MutantsRejected int // corrupted texts the verifier rejected
	Violations      []Violation
}

func (r *Report) String() string {
	return fmt.Sprintf("fuzz: %d programs, %d verified configs, %d lockstep runs, mutants %d accepted / %d rejected, %d violations",
		r.Programs, r.Configs, r.LockstepRuns, r.MutantsAccepted, r.MutantsRejected, len(r.Violations))
}

// optionSets are the rewriter configurations oracle 1 checks. Every set
// must produce verifier-clean output for every well-formed input.
var optionSets = []core.Options{
	{Opt: core.O0},
	{Opt: core.O1},
	{Opt: core.O2},
	{Opt: core.O2, NoLoads: true},
	{Opt: core.O1, DisableSPOpts: true},
}

// Run executes the differential harness: Iters random programs, each
// pushed through every rewriter configuration and the verifier (oracle
// 1), executed slow/fast in lockstep (oracle 3), and corrupted into
// verifier-checked mutants which, when accepted, also run under the
// watchdog (oracles 2+3).
func Run(opts Options) *Report {
	opts = opts.withDefaults()
	rep := &Report{Iters: opts.Iters}
	rng := rand.New(rand.NewSource(opts.Seed))
	slot := core.SlotBase(1)

	for iter := 0; iter < opts.Iters; iter++ {
		src := NewGen(rng.Int63()).Generate(opts.Stmts)
		rep.Programs++

		// Oracle 1: rewriter completeness at every option set.
		var o2img *arm64.Image
		ok := true
		for _, set := range optionSets {
			img, err := buildSandboxed(src, set, slot)
			if err != nil {
				rep.Violations = append(rep.Violations, Violation{
					Oracle: "rewriter-completeness", Iter: iter,
					Detail: fmt.Sprintf("%+v: %v\n%s", set, err, src),
				})
				ok = false
				continue
			}
			cfg := verifier.DefaultConfig()
			cfg.TextOff = core.MinCodeOffset
			cfg.NoLoads = set.NoLoads
			if _, err := verifier.Verify(img.Text, cfg); err != nil {
				rep.Violations = append(rep.Violations, Violation{
					Oracle: "rewriter-completeness", Iter: iter,
					Detail: fmt.Sprintf("%+v: verifier rejected rewriter output: %v\n%s", set, err, src),
				})
				ok = false
				continue
			}
			rep.Configs++
			if set.Opt == core.O2 && !set.NoLoads {
				o2img = img
			}
		}
		if !ok || o2img == nil {
			continue
		}

		// Oracle 3 on the clean program: slow/fast lockstep.
		rep.LockstepRuns++
		for _, v := range runLockstep(o2img, o2img.Text, slot, opts.Budget) {
			rep.Violations = append(rep.Violations, Violation{
				Oracle: "fastpath-equivalence", Iter: iter, Detail: v + "\n" + src,
			})
		}

		// Oracles 2+3 on mutants: corrupt the text, and if the verifier
		// accepts the corruption, it must still be contained and
		// fastpath-equivalent.
		for m := 0; m < opts.MutantsPerProgram; m++ {
			text := mutate(rng, o2img.Text)
			cfg := verifier.DefaultConfig()
			cfg.TextOff = core.MinCodeOffset
			if _, err := verifier.Verify(text, cfg); err != nil {
				rep.MutantsRejected++
				continue
			}
			rep.MutantsAccepted++
			for _, v := range runLockstep(o2img, text, slot, opts.Budget) {
				rep.Violations = append(rep.Violations, Violation{
					Oracle: "verifier-soundness", Iter: iter,
					Detail: fmt.Sprintf("mutant %d: %s", m, v),
				})
			}
		}
	}
	return rep
}

// buildSandboxed rewrites src with the given options and assembles it at
// the sandbox code offset of slot.
func buildSandboxed(src string, opts core.Options, slot uint64) (*arm64.Image, error) {
	f, err := arm64.ParseFile(src)
	if err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	nf, _, err := rewrite.Rewrite(f, opts)
	if err != nil {
		return nil, fmt.Errorf("rewrite: %w", err)
	}
	img, err := arm64.Assemble(nf, arm64.Layout{
		TextBase: slot + core.MinCodeOffset,
		PageSize: pageSize,
	})
	if err != nil {
		return nil, fmt.Errorf("assemble: %w", err)
	}
	return img, nil
}

// mutate returns a copy of text with one or two random bit flips in one
// or two random instruction words.
func mutate(rng *rand.Rand, text []byte) []byte {
	out := append([]byte(nil), text...)
	flips := 1 + rng.Intn(2)
	for i := 0; i < flips; i++ {
		word := rng.Intn(len(out) / 4)
		w := binary.LittleEndian.Uint32(out[word*4:])
		w ^= 1 << uint(rng.Intn(32))
		binary.LittleEndian.PutUint32(out[word*4:], w)
	}
	return out
}
