package fuzz

import (
	"errors"
	"testing"

	"lfi/internal/core"
	"lfi/internal/verifier"
	"lfi/internal/wasmbase"
	"lfi/internal/wasmfront"
)

// wasmOptLevels are the rewriter levels every translated module must
// verify under.
var wasmOptLevels = []core.OptLevel{core.O0, core.O1, core.O2}

// checkWasmOracle enforces the two-frontend agreement contract:
//
//  1. wasmbase.ValidateModule rejects ⇒ wasmfront.Translate rejects.
//  2. ValidateModule accepts ⇒ Translate succeeds or returns a
//     *wasmfront.LimitError (valid Wasm beyond an implementation limit).
//  3. Translate succeeds ⇒ the emitted assembly builds and passes the
//     machine-code verifier at O0, O1, and O2.
//
// Direction 1 is the dangerous one: a module the validator rejects must
// never reach code generation.
func checkWasmOracle(t *testing.T, wasm []byte) {
	_, vErr := wasmbase.ValidateModule(wasm)
	asm, _, tErr := wasmfront.Translate(wasm)

	if vErr != nil {
		if tErr == nil {
			t.Fatalf("validator rejected (%v) but Translate accepted", vErr)
		}
		return
	}
	if tErr != nil {
		var le *wasmfront.LimitError
		if !errors.As(tErr, &le) {
			t.Fatalf("validator accepted but Translate failed with %T: %v", tErr, tErr)
		}
		return
	}
	for _, opt := range wasmOptLevels {
		img, err := buildSandboxed(asm, core.Options{Opt: opt}, core.SlotBase(1))
		if err != nil {
			t.Fatalf("O%d: translated module does not build: %v\nasm:\n%s", opt, err, asm)
		}
		cfg := verifier.DefaultConfig()
		cfg.TextOff = core.MinCodeOffset
		if _, err := verifier.Verify(img.Text, cfg); err != nil {
			t.Fatalf("O%d: verifier rejected translated module: %v\nasm:\n%s", opt, err, asm)
		}
	}
}

// FuzzWasmTranslate fuzzes the module-level agreement between the
// wasmbase validator and the wasmfront translator. The input is tried
// both as raw module bytes and as the body of a generated one-function
// module, so body-level mutations hit the code-section deep path without
// having to re-derive the module framing.
func FuzzWasmTranslate(f *testing.F) {
	f.Add(wasmfront.SampleArithLoop(3))
	f.Add(wasmfront.SampleMemFill(3))
	f.Add(wasmfront.SampleCalls(3))
	f.Add([]byte("\x00asm\x01\x00\x00\x00"))
	f.Add([]byte{0x41, 0x2a, 0x1a, 0x0b})       // i32.const 42; drop; end (as body)
	f.Add([]byte{0x02, 0x40, 0x0c, 0x00, 0x0b}) // block; br 0; end (as body)
	f.Fuzz(func(t *testing.T, b []byte) {
		checkWasmOracle(t, b)

		// Reinterpret the input as a function body in an otherwise valid
		// module with a memory, a global, and a table to dispatch into.
		mb := wasmfront.NewModBuilder()
		mb.Memory(1)
		tv := mb.Type(nil, nil)
		mb.Global(wasmfront.I32, true, 7)
		var helper wasmfront.Code
		helper.End()
		hf := mb.Func(tv, nil, helper.Bytes())
		mb.Table(2)
		mb.Elem(0, hf)
		body := append(append([]byte{}, b...), 0x0b) // ensure a trailing end
		mf := mb.Func(tv, []wasmfront.ValType{wasmfront.I32, wasmfront.I64}, body)
		mb.Export("main", mf)
		checkWasmOracle(t, mb.Bytes())
	})
}
