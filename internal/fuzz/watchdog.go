package fuzz

import (
	"encoding/binary"
	"fmt"
	"reflect"

	"lfi/internal/arm64"
	"lfi/internal/core"
	"lfi/internal/emu"
	"lfi/internal/mem"
)

const (
	pageSize = core.DefaultPageSize
	// hostBase is where the watchdog pretends the runtime's host-call
	// region lives. Any out-of-slot address works (the watchdog never
	// executes host code); the entry stride and region size are the
	// runtime's real ones so the call-table contents match in shape.
	hostBase = uint64(0x7000_0000_0000)
)

// watchdog is one sandboxed machine whose memory layout mirrors the
// runtime's: call table (read-only, host pointers), text, data/bss, and a
// stack near slot+512MiB, all inside a 4GiB slot. It is the execution
// environment for the verifier-soundness oracle: any verifier-accepted
// text runs here and every fault is checked against the containment
// windows.
type watchdog struct {
	cpu  *emu.CPU
	slot uint64
}

func pageUp(v uint64) uint64 { return (v + pageSize - 1) &^ (pageSize - 1) }

// wdMode selects which emulator dispatch generation a watchdog runs.
type wdMode int

const (
	wdSlow    wdMode = iota // per-step reference interpreter
	wdFast                  // predecoded blocks only (PR-2 fast path)
	wdChained               // blocks + chaining + superblocks + fusion
)

// newWatchdog builds a machine around text placed per img's layout. The
// text may differ from img.Text (mutants); only its placement is reused.
func newWatchdog(img *arm64.Image, text []byte, slot uint64, mode wdMode) (*watchdog, error) {
	as := mem.NewAddrSpace(pageSize)
	if err := as.Map(slot, core.CallTableSize, mem.PermRead); err != nil {
		return nil, err
	}
	for rc := core.RuntimeCall(0); rc < core.NumRuntimeCalls; rc++ {
		b := make([]byte, 8)
		binary.LittleEndian.PutUint64(b, hostBase+uint64(rc)*core.HostCallStride)
		as.WriteForce(b, slot+uint64(rc.TableOffset()))
	}
	if err := as.Map(img.TextAddr, pageUp(uint64(len(text))), mem.PermRX); err != nil {
		return nil, err
	}
	as.WriteForce(text, img.TextAddr)
	if len(img.ROData) > 0 {
		if err := as.Map(img.RODataAddr, pageUp(uint64(len(img.ROData))), mem.PermRead); err != nil {
			return nil, err
		}
		as.WriteForce(img.ROData, img.RODataAddr)
	}
	dataEnd := pageUp(img.BSSAddr + img.BSSSize)
	if dataEnd > img.DataAddr {
		if err := as.Map(img.DataAddr, dataEnd-img.DataAddr, mem.PermRW); err != nil {
			return nil, err
		}
		as.WriteForce(img.Data, img.DataAddr)
	}
	stackTop := slot + 512*1024*1024
	if err := as.Map(stackTop-1024*1024, 1024*1024, mem.PermRW); err != nil {
		return nil, err
	}

	c := emu.New(as)
	chained := mode == wdChained
	c.Apply(emu.Options{
		Fastpath: mode != wdSlow,
		Chaining: chained,
		Tracing:  chained,
		Fusion:   chained,
		// Fuzz programs are short; stitch superblocks almost immediately so
		// the trace machinery is actually exercised within a run.
		TraceThreshold: 2,
	})
	c.SetHostCallRegion(hostBase, core.HostCallRegionSize)
	c.Timing = emu.NewTiming(emu.ModelM1())
	c.PC = img.Entry
	c.SP = stackTop
	c.X[21] = slot
	c.X[18] = slot + core.MinCodeOffset
	c.X[23] = slot + core.MinCodeOffset
	c.X[24] = slot + core.MinCodeOffset
	c.X[30] = slot + core.MinCodeOffset
	return &watchdog{cpu: c, slot: slot}, nil
}

// contain checks one trap against the containment windows. Data accesses
// may reach the slot's 4GiB plus the guard bands on either side (signed
// immediate offsets from a base at the slot edge land there; the bands
// are unmapped, so the access faults harmlessly). Instruction fetches may
// additionally reach up to 128MiB below the slot, where the code margin
// guarantees nothing executable lives. Returns a violation description,
// or "" if contained.
func (w *watchdog) contain(tr *emu.Trap) string {
	switch tr.Kind {
	case emu.TrapSVC:
		return fmt.Sprintf("svc executed in verified code at pc=%#x", tr.PC)
	case emu.TrapMemFault:
		if tr.Fault == nil {
			return "memory fault with no fault record"
		}
		if tr.Fault.Access == mem.AccessExec {
			lo, hi := core.ExecWindow(w.slot)
			if tr.Fault.Addr < lo || tr.Fault.Addr >= hi {
				return fmt.Sprintf("pc escaped sandbox: fetch at %#x", tr.Fault.Addr)
			}
		} else {
			lo, hi := core.DataWindow(w.slot)
			if tr.Fault.Addr < lo || tr.Fault.Addr >= hi {
				return fmt.Sprintf("data access escaped sandbox: %v at %#x", tr.Fault.Access, tr.Fault.Addr)
			}
		}
	}
	return ""
}

// invariants checks the register invariants that must hold at every
// instruction boundary of verified code: x21 is never written, and the
// always-valid registers only ever hold in-slot addresses.
func (w *watchdog) invariants() string {
	c := w.cpu
	if c.X[21] != w.slot {
		return fmt.Sprintf("x21 clobbered: %#x", c.X[21])
	}
	for _, r := range []int{18, 23, 24} {
		if c.X[r]>>32 != w.slot>>32 {
			return fmt.Sprintf("x%d outside sandbox: %#x", r, c.X[r])
		}
	}
	return ""
}

// diverged compares the complete architectural state of the slow and fast
// machines and returns a description of the first difference, or "".
func diverged(slow, fast *emu.CPU) string {
	if slow.X != fast.X {
		return fmt.Sprintf("X registers diverge:\nslow=%#x\nfast=%#x", slow.X, fast.X)
	}
	if slow.SP != fast.SP {
		return fmt.Sprintf("SP diverges: slow=%#x fast=%#x", slow.SP, fast.SP)
	}
	if slow.V != fast.V {
		return "V registers diverge"
	}
	if slow.FlagN != fast.FlagN || slow.FlagZ != fast.FlagZ ||
		slow.FlagC != fast.FlagC || slow.FlagV != fast.FlagV {
		return "flags diverge"
	}
	if slow.PC != fast.PC {
		return fmt.Sprintf("PC diverges: slow=%#x fast=%#x", slow.PC, fast.PC)
	}
	if slow.Instrs != fast.Instrs {
		return fmt.Sprintf("Instrs diverge: slow=%d fast=%d", slow.Instrs, fast.Instrs)
	}
	if sc, fc := slow.Timing.Cycles(), fast.Timing.Cycles(); sc != fc {
		return fmt.Sprintf("cycles diverge: slow=%v fast=%v", sc, fc)
	}
	return ""
}

func trapsDiffer(slow, fast *emu.Trap) string {
	if (slow == nil) != (fast == nil) {
		return fmt.Sprintf("trap presence diverges: slow=%v fast=%v", slow, fast)
	}
	if slow == nil {
		return ""
	}
	if slow.Kind != fast.Kind || slow.PC != fast.PC || slow.Imm != fast.Imm {
		return fmt.Sprintf("traps diverge: slow=%v fast=%v", slow, fast)
	}
	if (slow.Fault == nil) != (fast.Fault == nil) ||
		(slow.Fault != nil && *slow.Fault != *fast.Fault) {
		return fmt.Sprintf("faults diverge: slow=%v fast=%v", slow.Fault, fast.Fault)
	}
	return ""
}

// lockstepSlices defeats any alignment between budget expiry and block
// boundaries in the fast path.
var lockstepSlices = []uint64{1, 2, 3, 5, 7, 11, 13, 17, 23, 97, 251, 1021, 4099}

// runLockstep executes text on three watchdog machines — per-step
// reference, predecoded blocks, and the full chained/traced/fused
// configuration — comparing complete state (registers, memory, flags,
// Instrs, cycles) after every slice, checking containment and register
// invariants on every trap, and comparing the final memory images. It
// serves oracles 2 and 3 in a single run: any escape, invariant break, or
// divergence between dispatch generations is a violation.
func runLockstep(img *arm64.Image, text []byte, slot, budget uint64) []string {
	slow, err := newWatchdog(img, text, slot, wdSlow)
	if err != nil {
		return []string{fmt.Sprintf("watchdog setup: %v", err)}
	}
	fast, err := newWatchdog(img, text, slot, wdFast)
	if err != nil {
		return []string{fmt.Sprintf("watchdog setup: %v", err)}
	}
	chained, err := newWatchdog(img, text, slot, wdChained)
	if err != nil {
		return []string{fmt.Sprintf("watchdog setup: %v", err)}
	}

	var violations []string
	report := func(msg string) {
		violations = append(violations, msg)
	}

	spent := uint64(0)
	for i := 0; spent < budget; i++ {
		n := lockstepSlices[i%len(lockstepSlices)]
		spent += n
		str := slow.cpu.Run(n)
		ftr := fast.cpu.Run(n)
		ctr := chained.cpu.Run(n)
		if d := trapsDiffer(str, ftr); d != "" {
			report("fastpath: " + d)
			return violations
		}
		if d := trapsDiffer(str, ctr); d != "" {
			report("chained: " + d)
			return violations
		}
		if d := diverged(slow.cpu, fast.cpu); d != "" {
			report("fastpath: " + d)
			return violations
		}
		if d := diverged(slow.cpu, chained.cpu); d != "" {
			report("chained: " + d)
			return violations
		}
		if str == nil {
			report("run returned nil trap")
			return violations
		}
		if v := slow.contain(str); v != "" {
			report("containment: " + v)
		}
		if v := slow.invariants(); v != "" {
			report("invariant: " + v)
		}
		switch str.Kind {
		case emu.TrapBudget:
			continue
		case emu.TrapHostCall:
			// The runtime would service the call and return to x30; the
			// verifier guarantees x30 holds an in-sandbox address here.
			if slow.cpu.X[30]>>32 != slot>>32 {
				report(fmt.Sprintf("containment: runtime call with x30 outside sandbox: %#x", slow.cpu.X[30]))
				return violations
			}
			slow.cpu.PC = slow.cpu.X[30]
			fast.cpu.PC = fast.cpu.X[30]
			chained.cpu.PC = chained.cpu.X[30]
			continue
		}
		// Terminal trap (brk, fault, undefined, svc): compare memory.
		sm, err1 := slow.cpu.Mem.SnapshotRange(slot, slot+512*1024*1024)
		fm, err2 := fast.cpu.Mem.SnapshotRange(slot, slot+512*1024*1024)
		cm, err3 := chained.cpu.Mem.SnapshotRange(slot, slot+512*1024*1024)
		if err1 != nil || err2 != nil || err3 != nil {
			report(fmt.Sprintf("memory snapshot: %v / %v / %v", err1, err2, err3))
		} else {
			if !reflect.DeepEqual(sm, fm) {
				report("fastpath: final memory snapshots diverge")
			}
			if !reflect.DeepEqual(sm, cm) {
				report("chained: final memory snapshots diverge")
			}
		}
		return violations
	}
	// Budget exhausted without a terminal trap: fine for mutants (they
	// may loop); the per-slice comparisons above already did the work.
	return violations
}
