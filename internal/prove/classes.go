package prove

import (
	"fmt"

	"lfi/internal/arm64"
	"lfi/internal/core"
)

// Register subsets for the sweeps. Smoke runs cover every register whose
// identity the verifier's checks can depend on (the reserved registers,
// the always-valid bases, sp/zr, and one plain register); full runs
// widen the incidental dimensions.

func (p *prover) baseRegs() []uint32 {
	if p.opts.Full {
		return allRegs()
	}
	return []uint32{0, 18, 21, 22, 23, 24, 25, 30, 31}
}

func allRegs() []uint32 {
	rs := make([]uint32, 32)
	for i := range rs {
		rs[i] = uint32(i)
	}
	return rs
}

// reservedDsts are the destination registers whose writes the verifier
// must police: the five reserved registers, the link register, and
// sp/zr (encoding 31).
var reservedDsts = []uint32{18, 21, 22, 23, 24, 30, 31}

// sweepMem pushes one load/store-region word through the verifier and
// checks any acceptance against the layout model.
func (p *prover) sweepMem(w uint32, sp *spStats) {
	p.cur.Swept++
	inst, ctx, ok := p.probe(w)
	if !ok {
		return
	}
	p.cur.Accepted++
	if !inst.Op.IsMemory() {
		p.ce([]uint32{w}, 0, "non-memory word accepted in a memory sweep")
		return
	}
	p.checkMem(w, &inst, ctx, sp)
	p.checkAcceptedWrites(w, &inst, ctx)
}

// checkMem bounds the byte interval an accepted access can touch.
func (p *prover) checkMem(w uint32, inst *arm64.Inst, ctx int, sp *spStats) {
	m := &inst.Mem
	switch m.Mode {
	case arm64.AddrReg, arm64.AddrRegUXTW, arm64.AddrRegSXTW, arm64.AddrRegSXTX:
		p.checkMemRegOff(w, inst)
	case arm64.AddrLiteral:
		p.checkMemLiteralAt(p.cfg.TextOff, w, inst)
	case arm64.AddrNone:
		// Exclusives and acquire/release address through Rn, offsetless.
		p.checkMemBareBase(w, inst, sp)
	default:
		p.checkMemImmLike(w, inst, ctx, sp)
	}
}

// checkMemBareBase handles offsetless accesses (exclusives): the base
// register is Rn and every touched byte is within the access extent.
func (p *prover) checkMemBareBase(w uint32, inst *arm64.Inst, sp *spStats) {
	ext := extentOf(inst)
	base := inst.Rn
	if base.IsSP() {
		if sp != nil {
			sp.record(w, 0, ext)
		}
		return
	}
	if base == core.RegBase {
		p.ce([]uint32{w}, 0, "x21 used as an exclusive-access base")
		return
	}
	iv, ok := regInterval(base)
	if !ok {
		p.ce([]uint32{w}, 0, fmt.Sprintf("exclusive access through unconstrained base %v", base))
		return
	}
	reach := interval{iv.lo, iv.hi + ext - 1}
	if !reach.within(dataWin) {
		p.ce([]uint32{w}, 0, fmt.Sprintf("exclusive reach %v escapes the data window %v", reach, dataWin))
	}
}

// checkMemImmLike handles base, immediate, writeback, and exclusive
// addressing: a known base interval displaced by a constant.
func (p *prover) checkMemImmLike(w uint32, inst *arm64.Inst, ctx int, sp *spStats) {
	m := &inst.Mem
	ext := extentOf(inst)
	imm := int64(m.Imm)
	off := imm
	if m.Mode == arm64.AddrPost || m.Mode == arm64.AddrBase {
		off = 0 // writeback applies after the access; plain base has no offset
	}
	switch {
	case m.Base.IsSP():
		if sp != nil {
			sp.record(w, off, ext)
		}
		if m.WritesBack() && (imm > wbMax || imm < -wbMax) {
			p.ce([]uint32{w}, 0, fmt.Sprintf("sp writeback %d exceeds the claimed ±%d drift bound", imm, wbMax))
		}
	case m.Base == core.RegBase:
		p.checkRTCallLoad(w, inst, ctx)
	default:
		if m.WritesBack() {
			// Post-index writeback moves the base to an unmapped-unchecked
			// value, voiding the always-valid invariant for later accesses.
			p.ce([]uint32{w}, 0, "writeback accepted through a protected base register")
			return
		}
		iv, ok := regInterval(m.Base)
		if !ok {
			p.ce([]uint32{w}, 0, fmt.Sprintf("access through unconstrained base %v", m.Base))
			return
		}
		reach := interval{iv.lo + off, iv.hi + off + ext - 1}
		if !reach.within(dataWin) {
			p.ce([]uint32{w}, 0, fmt.Sprintf("reach %v escapes the data window %v", reach, dataWin))
		}
	}
}

// checkMemRegOff handles register-offset addressing: the only sound
// accepted shape is the guard itself folded into the access, a 32-bit
// zero-extended index on the x21 base.
func (p *prover) checkMemRegOff(w uint32, inst *arm64.Inst) {
	m := &inst.Mem
	ext := extentOf(inst)
	base, ok := regInterval(m.Base)
	if !ok {
		p.ce([]uint32{w}, 0, fmt.Sprintf("register-offset access through unconstrained base %v", m.Base))
		return
	}
	var idx interval
	switch {
	case m.Mode == arm64.AddrRegUXTW:
		idx = interval{0, slotMax}
	case m.Mode == arm64.AddrRegSXTW:
		idx = interval{-(1 << 31), 1<<31 - 1}
	default: // 64-bit index (lsl or sxtx)
		var iok bool
		idx, iok = regInterval(m.Index)
		if !iok {
			p.ce([]uint32{w}, 0, fmt.Sprintf("register-offset access with unconstrained index %v", m.Index))
			return
		}
	}
	if m.Amount > 0 {
		idx = interval{idx.lo << m.Amount, idx.hi << m.Amount}
	}
	reach := interval{base.lo + idx.lo, base.hi + idx.hi + ext - 1}
	if !reach.within(dataWin) {
		p.ce([]uint32{w}, 0, fmt.Sprintf("register-offset reach %v escapes the data window %v", reach, dataWin))
	}
}

// checkMemLiteralAt handles pc-relative literal loads: the word is at
// offset textOff, so the access window is textOff plus the displacement.
func (p *prover) checkMemLiteralAt(textOff uint64, w uint32, inst *arm64.Inst) {
	ext := extentOf(inst)
	target := int64(textOff) + int64(inst.Mem.Imm)
	reach := interval{target, target + ext - 1}
	if !reach.within(dataWin) {
		p.ceAt(textOff, []uint32{w}, 0, fmt.Sprintf("literal reach %v escapes the data window %v", reach, dataWin))
	}
}

// checkRTCallLoad polices the only accepted use of x21 as a base: the
// runtime-call table load ldr x30, [x21, #8k] immediately followed by
// blr x30. A standalone acceptance would leave a host pointer in x30
// with the sandbox still running.
func (p *prover) checkRTCallLoad(w uint32, inst *arm64.Inst, ctx int) {
	m := &inst.Mem
	if ctx != ctxBLR || inst.Op != arm64.LDR || inst.Rd != arm64.X30 ||
		(m.Mode != arm64.AddrImm && m.Mode != arm64.AddrBase) {
		p.ce([]uint32{w}, 0, "x21-based access accepted outside the runtime-call idiom")
		return
	}
	imm := int64(m.Imm)
	if imm < 0 || imm%8 != 0 || imm >= core.MaxTableOffset {
		p.ce([]uint32{w, p.blr}, 0, fmt.Sprintf("call-table offset %d outside the table [0, %d)", imm, core.MaxTableOffset))
		return
	}
	if imm+7 >= int64(core.CallTableSize) {
		p.ce([]uint32{w, p.blr}, 0, "call-table load reaches past the table page")
	}
}

// checkAcceptedWrites polices property 2: every accepted write to a
// protected register must provably preserve its invariant, either by
// computing an in-range value under the register model or by being
// immediately reguarded by the accepting context.
func (p *prover) checkAcceptedWrites(w uint32, inst *arm64.Inst, ctx int) {
	var dsts [4]arm64.Reg
	for _, d := range inst.DestRegs(dsts[:0]) {
		if d.IsSP() && d.Is64() {
			p.checkSPWrite(w, inst, ctx)
			continue
		}
		if !d.IsGP() {
			continue
		}
		switch d.X() {
		case core.RegBase:
			p.ce([]uint32{w}, 0, "accepted write to x21 (sandbox base)")
		case core.RegScratch, core.RegHoist1, core.RegHoist2:
			if !d.Is64() {
				p.ce([]uint32{w}, 0, fmt.Sprintf("32-bit write truncates always-valid register %v", d.X()))
				continue
			}
			if iv, ok := p.valueInterval(inst); !ok || !iv.within(slotIv) {
				p.ce([]uint32{w}, 0, fmt.Sprintf("write to %v leaves the always-valid range", d))
			}
		case arm64.X30:
			if !d.Is64() {
				p.ce([]uint32{w}, 0, "32-bit write truncates the link register")
				continue
			}
			switch {
			case ctx == ctxGuardX30:
				// dirty x30 immediately reguarded into the slot
			case inst.Op == arm64.BL || inst.Op == arm64.BLR:
				// hardware link value: the next pc, inside the code region
			case inst.Op.IsLoad() && ctx == ctxBLR:
				// runtime-call table load, validated by checkRTCallLoad
			default:
				if iv, ok := p.valueInterval(inst); !ok || !iv.within(slotIv) {
					p.ce([]uint32{w}, 0, "unguarded write to x30 leaves the always-valid range")
				}
			}
		case core.RegAddr32:
			if !d.Is64() {
				continue // w22 writes zero-extend, preserving the invariant
			}
			if iv, ok := p.valueInterval(inst); !ok || !iv.within(slotIv) {
				p.ce([]uint32{w}, 0, "64-bit write to x22 may set upper bits")
			}
		}
	}
}

// checkSPWrite polices sp writes: reguarded by the following pair,
// an elidable add/sub within the drift budget, a guard-shaped compute
// landing in the slot, or memory writeback (checked in checkMemImmLike).
func (p *prover) checkSPWrite(w uint32, inst *arm64.Inst, ctx int) {
	if inst.Op.IsMemory() {
		return // writeback drift is bounded by the wbMax check
	}
	switch ctx {
	case ctxSPGuardPair:
		// sp is truncated and rebased before any use
	case ctxSPAccess:
		if (inst.Op == arm64.ADD || inst.Op == arm64.SUB) &&
			inst.Rm == arm64.RegNone && inst.Rn.IsSP() &&
			inst.Imm >= 0 && inst.Imm <= elideMax {
			return // elided adjustment, within the claimed drift budget
		}
		p.ce([]uint32{w, p.strSP}, 0, "un-reguarded sp write exceeds the elision budget")
	default:
		if iv, ok := p.valueInterval(inst); !ok || !iv.within(slotIv) {
			p.ce([]uint32{w}, 0, "standalone sp write leaves the slot")
		}
	}
}

// valueInterval bounds the value an accepted add/sub computes under the
// register model. Anything it cannot bound returns ok=false; an accepted
// protected-register write the model cannot bound is a counterexample.
func (p *prover) valueInterval(inst *arm64.Inst) (interval, bool) {
	if inst.Op != arm64.ADD && inst.Op != arm64.SUB {
		return interval{}, false
	}
	rn, ok := regInterval(inst.Rn)
	if !ok {
		return interval{}, false
	}
	if inst.Rm == arm64.RegNone {
		d := inst.Imm
		if inst.Op == arm64.SUB {
			d = -d
		}
		return rn.add(d), true
	}
	var rm interval
	switch {
	case inst.Ext == arm64.ExtUXTW:
		rm = interval{0, slotMax}
	case inst.Ext == arm64.ExtSXTW:
		rm = interval{-(1 << 31), 1<<31 - 1}
	default:
		if rm, ok = regInterval(inst.Rm); !ok {
			return interval{}, false
		}
	}
	if inst.Amount > 0 {
		rm = interval{rm.lo << inst.Amount, rm.hi << inst.Amount}
	}
	if inst.Op == arm64.SUB {
		return interval{rn.lo - rm.hi, rn.hi - rm.lo}, true
	}
	return interval{rn.lo + rm.lo, rn.hi + rm.hi}, true
}

// --- class sweeps ---

// classMemImm sweeps the single-register and pair load/store families
// exhaustively over their immediate, mode, size, and base fields, then
// closes the sp drift fixpoint over the accepted sp offsets.
func (p *prover) classMemImm() {
	var sp spStats
	bases := p.baseRegs()
	rts := []uint32{0}
	if p.opts.Full {
		rts = []uint32{0, 1, 18, 21, 22, 23, 24, 30, 31}
	}
	// Single-register: size(2) 111 V(1) 0 b24 opc(2) low12 Rn Rt. low12
	// covers the scaled imm12 field and the imm9+mode and register-offset
	// subfamilies (the latter are classified by decode and checked by the
	// register-offset rules).
	for _, rt := range rts {
		for size := uint32(0); size < 4; size++ {
			for v := uint32(0); v < 2; v++ {
				for b24 := uint32(0); b24 < 2; b24++ {
					for opc := uint32(0); opc < 4; opc++ {
						for low := uint32(0); low < 1<<12; low++ {
							for _, rn := range bases {
								w := size<<30 | 0x7<<27 | v<<26 | b24<<24 | opc<<22 | low<<10 | rn<<5 | rt
								p.sweepMem(w, &sp)
							}
						}
					}
				}
			}
		}
	}
	// Pairs: opc(2) 101 V(1) 0 mode(2) L imm7 Rt2 Rn Rt.
	for _, rt := range rts {
		for opc := uint32(0); opc < 4; opc++ {
			for v := uint32(0); v < 2; v++ {
				for mode := uint32(0); mode < 4; mode++ {
					for l := uint32(0); l < 2; l++ {
						for imm7 := uint32(0); imm7 < 1<<7; imm7++ {
							for _, rn := range bases {
								w := opc<<30 | 0x5<<27 | v<<26 | mode<<23 | l<<22 | imm7<<15 | 1<<10 | rn<<5 | rt
								p.sweepMem(w, &sp)
							}
						}
					}
				}
			}
		}
	}
	sp.check(p)
	p.fact("always-valid bases bounded to %v + accepted offsets stay within %v", slotIv, dataWin)
}

// classMemRegOffset sweeps the register-offset family exhaustively over
// size, extend option, shift, index, and base fields.
func (p *prover) classMemRegOffset() {
	bases := p.baseRegs()
	for size := uint32(0); size < 4; size++ {
		for v := uint32(0); v < 2; v++ {
			for opc := uint32(0); opc < 4; opc++ {
				for rm := uint32(0); rm < 32; rm++ {
					for opt := uint32(0); opt < 8; opt++ {
						for s := uint32(0); s < 2; s++ {
							for _, rn := range bases {
								w := size<<30 | 0x7<<27 | v<<26 | opc<<22 | 1<<21 | rm<<16 | opt<<13 | s<<12 | 2<<10 | rn<<5 | 0
								p.sweepMem(w, nil)
							}
						}
					}
				}
			}
		}
	}
	p.fact("accepted register-offset accesses are zero-extended 32-bit indexes off x21: reach within %v", dataWin)
}

// classMemLiteral sweeps pc-relative literal loads over the full imm19
// displacement at both ends of the code region (plus every opc/V combo
// at the displacement boundaries).
func (p *prover) classMemLiteral() {
	offs := []uint64{core.MinCodeOffset, core.MaxCodeOffset - 4}
	type combo struct{ opc, v uint32 }
	combos := []combo{{1, 0}, {2, 1}} // ldr xN, lit / ldr qN, lit
	full19 := true
	if p.opts.Full {
		combos = nil
		for opc := uint32(0); opc < 4; opc++ {
			for v := uint32(0); v < 2; v++ {
				combos = append(combos, combo{opc, v})
			}
		}
	}
	boundary := []uint32{0, 1, 2, 1<<18 - 1, 1 << 18, 1<<19 - 1, 1<<19 - 2}
	for _, off := range offs {
		for _, c := range combos {
			sweep := func(imm19 uint32) {
				w := c.opc<<30 | 0x3<<27 | c.v<<26 | imm19<<5 | 0
				p.cur.Swept++
				inst, err := arm64.Decode(w)
				if err != nil {
					return
				}
				if !p.acceptsAt(off, w) {
					return
				}
				p.cur.Accepted++
				p.checkMemLiteralAt(off, w, &inst)
			}
			if full19 {
				for imm19 := uint32(0); imm19 < 1<<19; imm19++ {
					sweep(imm19)
				}
			}
			for _, imm19 := range boundary {
				sweep(imm19)
			}
		}
	}
	p.fact("literal loads swept at textoff %#x and %#x: accepted targets within %v", offs[0], offs[1], dataWin)
}

// classMemExclusive sweeps the load/store-exclusive and acquire/release
// family exhaustively over its option bits and base field.
func (p *prover) classMemExclusive() {
	bases := p.baseRegs()
	for size := uint32(0); size < 4; size++ {
		for o2 := uint32(0); o2 < 2; o2++ {
			for l := uint32(0); l < 2; l++ {
				for o1 := uint32(0); o1 < 2; o1++ {
					for o0 := uint32(0); o0 < 2; o0++ {
						for _, rs := range []uint32{0, 31} {
							for _, rn := range bases {
								w := size<<30 | 0x08<<24 | o2<<23 | l<<22 | o1<<21 | rs<<16 | o0<<15 | 0x1f<<10 | rn<<5 | 0
								p.sweepMem(w, nil)
							}
						}
					}
				}
			}
		}
	}
	p.fact("exclusives are offsetless: accepted bases always-valid, reach within %v", dataWin)
}

// sweepDP probes one data-processing word and checks accepted writes.
func (p *prover) sweepDP(w uint32) {
	p.cur.Swept++
	inst, ctx, ok := p.probe(w)
	if !ok {
		return
	}
	p.cur.Accepted++
	p.checkAcceptedWrites(w, &inst, ctx)
}

// classReservedWrites sweeps every data-processing family that can name
// a protected destination register, exhaustively over operand registers
// and immediate subfields, plus loads targeting protected registers.
func (p *prover) classReservedWrites() {
	// add/sub extended register (the guard family): full Rm/option/shift/Rn.
	for sfops := uint32(0); sfops < 8; sfops++ {
		for rm := uint32(0); rm < 32; rm++ {
			for opt := uint32(0); opt < 8; opt++ {
				for imm3 := uint32(0); imm3 < 8; imm3++ {
					for rn := uint32(0); rn < 32; rn++ {
						for _, rd := range reservedDsts {
							w := sfops<<29 | 0x0b<<24 | 1<<21 | rm<<16 | opt<<13 | imm3<<10 | rn<<5 | rd
							p.sweepDP(w)
						}
					}
				}
			}
		}
	}
	// add/sub immediate: full sh+imm12.
	for sfops := uint32(0); sfops < 8; sfops++ {
		for hi := uint32(0); hi < 1<<14; hi++ {
			for _, rn := range []uint32{31, 21, 18, 0} {
				for _, rd := range reservedDsts {
					w := sfops<<29 | 0x11<<24 | hi<<10 | rn<<5 | rd
					p.sweepDP(w)
				}
			}
		}
	}
	// logical immediate: full N/immr/imms.
	for sfopc := uint32(0); sfopc < 8; sfopc++ {
		for nrs := uint32(0); nrs < 1<<13; nrs++ {
			for _, rd := range reservedDsts {
				w := sfopc<<29 | 0x24<<23 | nrs<<10 | 0<<5 | rd
				p.sweepDP(w)
			}
		}
	}
	// logical shifted register.
	for sfopc := uint32(0); sfopc < 8; sfopc++ {
		for shiftN := uint32(0); shiftN < 8; shiftN++ {
			for _, rm := range []uint32{0, 21, 31} {
				for _, imm6 := range []uint32{0, 1, 31, 63} {
					for _, rd := range reservedDsts {
						w := sfopc<<29 | 0x0a<<24 | shiftN<<21 | rm<<16 | imm6<<10 | 0<<5 | rd
						p.sweepDP(w)
					}
				}
			}
		}
	}
	// move wide (movn/movz/movk).
	imm16s := []uint32{0, 1, 0x7fff, 0x8000, 0xffff}
	if p.opts.Full {
		imm16s = nil
		for i := uint32(0); i < 1<<16; i++ {
			imm16s = append(imm16s, i)
		}
	}
	for sfopc := uint32(0); sfopc < 8; sfopc++ {
		for hw := uint32(0); hw < 4; hw++ {
			for _, imm16 := range imm16s {
				for _, rd := range reservedDsts {
					w := sfopc<<29 | 0x25<<23 | hw<<21 | imm16<<5 | rd
					p.sweepDP(w)
				}
			}
		}
	}
	// bitfield: full N/immr/imms.
	for sfopc := uint32(0); sfopc < 8; sfopc++ {
		for nrs := uint32(0); nrs < 1<<13; nrs++ {
			for _, rd := range reservedDsts {
				w := sfopc<<29 | 0x26<<23 | nrs<<10 | 0<<5 | rd
				p.sweepDP(w)
			}
		}
	}
	// extract (extr).
	for sf := uint32(0); sf < 2; sf++ {
		for n := uint32(0); n < 2; n++ {
			for imms := uint32(0); imms < 64; imms++ {
				for _, rd := range reservedDsts {
					w := sf<<31 | 0x27<<23 | n<<22 | 0<<16 | imms<<10 | 0<<5 | rd
					p.sweepDP(w)
				}
			}
		}
	}
	// data-processing 1- and 2-source: full opcode space.
	for sf := uint32(0); sf < 2; sf++ {
		for one := uint32(0); one < 2; one++ {
			for s := uint32(0); s < 2; s++ {
				for op := uint32(0); op < 1<<11; op++ {
					for _, rd := range reservedDsts {
						w := sf<<31 | one<<30 | s<<29 | 0xd6<<21 | op<<10 | 0<<5 | rd
						p.sweepDP(w)
					}
				}
			}
		}
	}
	// conditional select.
	for sfops := uint32(0); sfops < 8; sfops++ {
		for _, rm := range []uint32{0, 31} {
			for cond := uint32(0); cond < 16; cond++ {
				for op2 := uint32(0); op2 < 4; op2++ {
					for _, rd := range reservedDsts {
						w := sfops<<29 | 0xd4<<21 | rm<<16 | cond<<12 | op2<<10 | 0<<5 | rd
						p.sweepDP(w)
					}
				}
			}
		}
	}
	// 3-source (madd family).
	for sf := uint32(0); sf < 2; sf++ {
		for op := uint32(0); op < 8; op++ {
			for o0 := uint32(0); o0 < 2; o0++ {
				for _, ra := range []uint32{0, 18, 31} {
					for _, rd := range reservedDsts {
						w := sf<<31 | 0x1b<<24 | op<<21 | 0<<16 | o0<<15 | ra<<10 | 0<<5 | rd
						p.sweepDP(w)
					}
				}
			}
		}
	}
	// adr/adrp.
	for op := uint32(0); op < 2; op++ {
		for immlo := uint32(0); immlo < 4; immlo++ {
			for _, immhi := range []uint32{0, 1, 1<<19 - 1} {
				for _, rd := range reservedDsts {
					w := op<<31 | immlo<<29 | 0x10<<24 | immhi<<5 | rd
					p.sweepDP(w)
				}
			}
		}
	}
	// fp/int moves and conversions writing a general register.
	for sf := uint32(0); sf < 2; sf++ {
		for ftype := uint32(0); ftype < 4; ftype++ {
			for rmode := uint32(0); rmode < 4; rmode++ {
				for op := uint32(0); op < 8; op++ {
					for _, rd := range reservedDsts {
						w := sf<<31 | 0x1e<<24 | ftype<<22 | 1<<21 | rmode<<19 | op<<16 | 0<<5 | rd
						p.sweepDP(w)
					}
				}
			}
		}
	}
	// loads targeting protected registers (full imm/mode fields).
	for _, rn := range []uint32{18, 21} {
		for size := uint32(0); size < 4; size++ {
			for v := uint32(0); v < 2; v++ {
				for b24 := uint32(0); b24 < 2; b24++ {
					for opc := uint32(0); opc < 4; opc++ {
						for low := uint32(0); low < 1<<12; low++ {
							for _, rt := range reservedDsts {
								w := size<<30 | 0x7<<27 | v<<26 | b24<<24 | opc<<22 | low<<10 | rn<<5 | rt
								p.sweepMem(w, nil)
							}
						}
					}
				}
			}
		}
	}
	p.fact("accepted protected-register writes are guard-shaped: value within %v or reguarded by context", slotIv)
}

// classSPWrites sweeps sp-targeted arithmetic in each accepting context
// and verifies the elision drift budget the fixpoint model claims.
func (p *prover) classSPWrites() {
	maxDelta := int64(0)
	var exDelta uint32
	// add/sub sp, Rn, #imm over the full sh+imm12 field.
	for sfops := uint32(0); sfops < 8; sfops++ {
		for hi := uint32(0); hi < 1<<14; hi++ {
			for _, rn := range []uint32{31, 21, 18, 0} {
				w := sfops<<29 | 0x11<<24 | hi<<10 | rn<<5 | 31
				p.cur.Swept++
				inst, ctx, ok := p.probe(w)
				if !ok {
					continue
				}
				p.cur.Accepted++
				var dsts [4]arm64.Reg
				spDst := false
				for _, d := range inst.DestRegs(dsts[:0]) {
					if d.IsSP() && d.Is64() {
						spDst = true
					}
				}
				if spDst && ctx == ctxSPAccess && inst.Imm > maxDelta {
					maxDelta, exDelta = inst.Imm, w
				}
				p.checkAcceptedWrites(w, &inst, ctx)
			}
		}
	}
	// add sp, Rn, Rm extended (the sp guard shape) over full fields.
	for sfops := uint32(0); sfops < 8; sfops++ {
		for rm := uint32(0); rm < 32; rm++ {
			for opt := uint32(0); opt < 8; opt++ {
				for imm3 := uint32(0); imm3 < 8; imm3++ {
					for rn := uint32(0); rn < 32; rn++ {
						w := sfops<<29 | 0x0b<<24 | 1<<21 | rm<<16 | opt<<13 | imm3<<10 | rn<<5 | 31
						p.sweepDP(w)
					}
				}
			}
		}
	}
	if maxDelta > elideMax {
		p.ce([]uint32{exDelta, p.strSP}, 0, fmt.Sprintf("accepted un-reguarded sp delta %d exceeds the claimed elision budget %d", maxDelta, elideMax))
	}
	p.fact("max accepted un-reguarded sp delta %d within the claimed elision budget %d", maxDelta, elideMax)
}

// classBranches establishes the direct-branch containment argument
// symbolically from the layout constants, sweeps displacement boundaries
// through the verifier, and sweeps the indirect-branch family.
func (p *prover) classBranches() {
	// Symbolic: a direct branch from anywhere in [MinCodeOffset,
	// MaxCodeOffset) lands inside the exec window; fetch faults in the
	// code margin are contained.
	maxB := int64(core.MaxCodeOffset) - 4 + (1<<27 - 4) // B/BL: +((2^25-1)*4)
	minB := int64(core.MinCodeOffset) - 1<<27
	if maxB > execWin.hi || minB < execWin.lo {
		p.ce([]uint32{0x15ffffff}, 0, fmt.Sprintf("direct-branch reach [%#x, %#x] escapes the exec window %v", minB, maxB, execWin))
	}
	p.fact("direct-branch reach [%#x, %#x] within the exec window %v", minB, maxB, execWin)

	offs := []uint64{core.MinCodeOffset, core.MaxCodeOffset - 4}
	checkDirect := func(off uint64, w uint32) {
		p.cur.Swept++
		inst, err := arm64.Decode(w)
		if err != nil || !p.acceptsAt(off, w) {
			return
		}
		p.cur.Accepted++
		target := int64(off) + inst.Imm
		if target < execWin.lo || target > execWin.hi {
			p.ceAt(off, []uint32{w}, 0, fmt.Sprintf("branch target %#x escapes the exec window %v", target, execWin))
		}
	}
	// B/BL imm26: boundaries plus a stride sweep (full: every value).
	stride := uint32(4099)
	if p.opts.Full {
		stride = 1
	}
	for _, off := range offs {
		for _, op := range []uint32{0x05, 0x25} {
			for imm26 := uint32(0); imm26 < 1<<26; imm26 += stride {
				checkDirect(off, op<<26|imm26)
			}
			for _, imm26 := range []uint32{0, 1, 1<<25 - 1, 1 << 25, 1<<26 - 1} {
				checkDirect(off, op<<26|imm26)
			}
		}
	}
	// b.cond imm19, cbz/cbnz imm19, tbz/tbnz imm14 at the boundaries.
	for _, off := range offs {
		for _, imm19 := range []uint32{0, 1, 1<<18 - 1, 1 << 18, 1<<19 - 1} {
			for cond := uint32(0); cond < 16; cond++ {
				checkDirect(off, 0x54<<24|imm19<<5|cond)
			}
			for sf := uint32(0); sf < 2; sf++ {
				for op := uint32(0); op < 2; op++ {
					checkDirect(off, sf<<31|0x1a<<25|op<<24|imm19<<5|0)
				}
			}
		}
		for _, imm14 := range []uint32{0, 1, 1<<13 - 1, 1 << 13, 1<<14 - 1} {
			for b5 := uint32(0); b5 < 2; b5++ {
				for op := uint32(0); op < 2; op++ {
					checkDirect(off, b5<<31|0x1b<<25|op<<24|imm14<<5|0)
				}
			}
		}
	}
	// Indirect: br/blr/ret over the full op and Rn fields.
	for op := uint32(0); op < 16; op++ {
		for rn := uint32(0); rn < 32; rn++ {
			w := 0x6b<<25 | op<<21 | 0x1f<<16 | rn<<5
			p.cur.Swept++
			inst, ctx, ok := p.probe(w)
			if !ok {
				continue
			}
			p.cur.Accepted++
			iv, rok := regInterval(inst.Rn)
			if !rok || !iv.within(interval{execWin.lo, execWin.hi}) {
				p.ce([]uint32{w}, 0, fmt.Sprintf("indirect branch through %v not bounded to the exec window", inst.Rn))
			}
			p.checkAcceptedWrites(w, &inst, ctx)
		}
	}
	p.fact("accepted indirect branches go through always-valid registers: targets within %v", execWin)
}

// classRuntimeCalls sweeps every x21-based load encoding over the full
// imm12 field with both a bare and a blr-following context.
func (p *prover) classRuntimeCalls() {
	accepted := map[int64]bool{}
	for size := uint32(0); size < 4; size++ {
		for v := uint32(0); v < 2; v++ {
			for b24 := uint32(0); b24 < 2; b24++ {
				for opc := uint32(0); opc < 4; opc++ {
					for low := uint32(0); low < 1<<12; low++ {
						for _, rt := range []uint32{30, 0} {
							w := size<<30 | 0x7<<27 | v<<26 | b24<<24 | opc<<22 | low<<10 | 21<<5 | rt
							p.cur.Swept++
							inst, ctx, ok := p.probe(w)
							if !ok {
								continue
							}
							p.cur.Accepted++
							if inst.Op.IsMemory() && inst.Mem.Base == core.RegBase &&
								(inst.Mem.Mode == arm64.AddrImm || inst.Mem.Mode == arm64.AddrBase) {
								before := len(p.cur.CEs)
								p.checkRTCallLoad(w, &inst, ctx)
								if len(p.cur.CEs) == before {
									accepted[int64(inst.Mem.Imm)] = true
								}
							} else {
								p.checkMem(w, &inst, ctx, nil)
							}
							p.checkAcceptedWrites(w, &inst, ctx)
						}
					}
				}
			}
		}
	}
	if int64(len(accepted)) != int64(core.NumRuntimeCalls) {
		p.fact("NOTE: %d distinct accepted table offsets, runtime defines %d calls", len(accepted), core.NumRuntimeCalls)
	} else {
		p.fact("accepted table offsets: exactly %d (8-byte stride over [0, %d)), each entry within the host-call region model", len(accepted), core.MaxTableOffset)
	}
}

// classSysregs sweeps the full 15-bit system-register space for both mrs
// and msr (the PR-4 scan, now a standing prover class).
func (p *prover) classSysregs() {
	const (
		sysTPIDR  = 1<<14 | 3<<11 | 13<<7 | 0<<3 | 2
		sysCNTVCT = 1<<14 | 3<<11 | 14<<7 | 0<<3 | 2
	)
	for _, rt := range []uint32{0, 18, 30} {
		for imm := uint32(0); imm < 1<<15; imm++ {
			for _, mrs := range []bool{true, false} {
				var w uint32
				if mrs {
					w = 0xd53<<20 | imm<<5 | rt
				} else {
					w = 0xd51<<20 | imm<<5 | rt
				}
				p.cur.Swept++
				inst, ctx, ok := p.probe(w)
				if !ok {
					continue
				}
				p.cur.Accepted++
				if mrs {
					if imm != sysTPIDR && imm != sysCNTVCT {
						p.ce([]uint32{w}, 0, fmt.Sprintf("read of system register %#x outside the allowlist", imm))
					}
				} else if imm != sysTPIDR {
					p.ce([]uint32{w}, 0, fmt.Sprintf("write of system register %#x outside the allowlist", imm))
				}
				p.checkAcceptedWrites(w, &inst, ctx)
			}
		}
	}
	p.fact("system-register allowlist: mrs {tpidr_el0, cntvct_el0}, msr {tpidr_el0}")
}
