package prove

import (
	"os"
	"testing"

	"lfi/internal/arm64"
)

// TestSmokeNoCounterexamples is the headline property: every class sweep
// finds zero accepted encodings whose worst case escapes the layout
// model. LFI_PROVE_FULL=1 widens to the full register/displacement
// dimensions (minutes).
func TestSmokeNoCounterexamples(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps millions of encodings")
	}
	rep, err := Run(Options{Full: os.Getenv("LFI_PROVE_FULL") != ""})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Classes) < 5 {
		t.Errorf("only %d classes enumerated, want >= 5", len(rep.Classes))
	}
	for _, c := range rep.Classes {
		if c.Swept == 0 {
			t.Errorf("class %s swept nothing", c.Name)
		}
		if c.Accepted == 0 {
			t.Errorf("class %s accepted nothing: sweep is vacuous", c.Name)
		}
	}
	if n := rep.Counterexamples(); n != 0 {
		t.Errorf("%d counterexamples found", n)
	}
	t.Logf("\n%s", rep.String())
}

// The meta-tests below feed the model synthetic acceptances that the
// verifier rejects at head, proving the checkers are not vacuous: each
// must flag the encoding the corresponding fixed bug used to accept.

func mustParse(t *testing.T, line string) arm64.Inst {
	t.Helper()
	inst, err := arm64.ParseInst(line)
	if err != nil {
		t.Fatalf("parsing %q: %v", line, err)
	}
	return inst
}

func testProver(t *testing.T) *prover {
	t.Helper()
	p := newProver(Options{})
	p.cur = &ClassResult{Name: "synthetic"}
	return p
}

// The pre-fix sp bound (GuardSize-16) combined with elision drift let
// str q0, [sp, #49136] reach past the data window. The fixpoint check
// must flag that offset.
func TestModelCatchesSPDriftEscape(t *testing.T) {
	p := testProver(t)
	var sp spStats
	inst := mustParse(t, "str q0, [sp, #49136]")
	w, err := arm64.Encode(&inst)
	if err != nil {
		t.Fatal(err)
	}
	sp.record(w, 49136, 16)
	sp.check(p)
	if len(p.cur.CEs) == 0 {
		t.Fatal("sp fixpoint accepted the pre-fix 49136 offset")
	}
	t.Logf("flagged: %s", p.cur.CEs[0])
}

// The current sp bound must pass the same check.
func TestModelAcceptsSPBound(t *testing.T) {
	p := testProver(t)
	var sp spStats
	sp.record(0, 47088, 16)
	sp.record(0, -1024, 32)
	sp.check(p)
	for _, ce := range p.cur.CEs {
		t.Errorf("in-bound sp offset flagged: %s", ce)
	}
}

// A non-sp immediate one past the guard bound must be flagged.
func TestModelCatchesGuardEscape(t *testing.T) {
	p := testProver(t)
	inst := mustParse(t, "ldr x0, [x18]")
	inst.Mem.Mode = arm64.AddrImm
	inst.Mem.Imm = 49152 // GuardSize: last byte lands one page past the window
	p.checkMemImmLike(0, &inst, ctxNone, nil)
	if len(p.cur.CEs) == 0 {
		t.Fatal("model accepted a GuardSize immediate on an always-valid base")
	}
	// The exact boundary must pass: 49136+15 is the window's last byte.
	p.cur.CEs = nil
	inst = mustParse(t, "ldr q0, [x18]")
	inst.Mem.Mode = arm64.AddrImm
	inst.Mem.Imm = 49136
	p.checkMemImmLike(0, &inst, ctxNone, nil)
	for _, ce := range p.cur.CEs {
		t.Errorf("boundary immediate flagged: %s", ce)
	}
}

// A scaled register-offset access (index shifted past 32 bits of reach)
// must be flagged even on the x21 base.
func TestModelCatchesScaledIndex(t *testing.T) {
	p := testProver(t)
	inst := mustParse(t, "ldr x0, [x21, w2, uxtw]")
	inst.Mem.Amount = 3
	p.checkMemRegOff(0, &inst)
	if len(p.cur.CEs) == 0 {
		t.Fatal("model accepted a scaled guarded index")
	}
}

// A literal whose displacement leaves the data window must be flagged.
func TestModelCatchesLiteralEscape(t *testing.T) {
	p := testProver(t)
	inst := mustParse(t, "ldr x0, lit")
	inst.Mem.Imm = -(1 << 20)
	p.checkMemLiteralAt(65536, 0, &inst)
	if len(p.cur.CEs) == 0 {
		t.Fatal("model accepted a literal reaching below the sandbox")
	}
}

// An x21-based load outside the call-table idiom must be flagged.
func TestModelCatchesTableEscape(t *testing.T) {
	p := testProver(t)
	inst := mustParse(t, "ldr x30, [x21, #176]") // MaxTableOffset
	p.checkRTCallLoad(0, &inst, ctxBLR)
	if len(p.cur.CEs) == 0 {
		t.Fatal("model accepted a load one entry past the call table")
	}
	p.cur.CEs = nil
	inst = mustParse(t, "ldr x30, [x21, #168]")
	p.checkRTCallLoad(0, &inst, ctxBLR)
	for _, ce := range p.cur.CEs {
		t.Errorf("last table entry flagged: %s", ce)
	}
}

// Writes to protected registers that are not guard-shaped must be
// flagged: the model cannot bound their value.
func TestModelCatchesReservedWrite(t *testing.T) {
	p := testProver(t)
	inst := mustParse(t, "add x18, x18, #8")
	p.checkAcceptedWrites(0, &inst, ctxNone)
	if len(p.cur.CEs) == 0 {
		t.Fatal("model accepted an unguarded x18 increment")
	}
	p.cur.CEs = nil
	inst = mustParse(t, "add x18, x21, w3, uxtw")
	p.checkAcceptedWrites(0, &inst, ctxNone)
	for _, ce := range p.cur.CEs {
		t.Errorf("canonical guard flagged: %s", ce)
	}
}

func TestRegIntervals(t *testing.T) {
	for _, c := range []struct {
		reg arm64.Reg
		lo  int64
		hi  int64
	}{
		{arm64.X21, 0, 0},
		{arm64.X18, 0, slotMax},
		{arm64.X23, 0, slotMax},
		{arm64.X24, 0, slotMax},
		{arm64.X30, 0, slotMax},
		{arm64.X22, 0, slotMax},
	} {
		iv, ok := regInterval(c.reg)
		if !ok || iv.lo != c.lo || iv.hi != c.hi {
			t.Errorf("regInterval(%v) = %v, %v; want [%#x, %#x]", c.reg, iv, ok, c.lo, c.hi)
		}
	}
	if _, ok := regInterval(arm64.X5); ok {
		t.Error("x5 should be unconstrained")
	}
	if _, ok := regInterval(arm64.SP); ok {
		t.Error("sp must route through the drift envelope, not regInterval")
	}
}
