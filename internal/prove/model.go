package prove

import (
	"fmt"

	"lfi/internal/arm64"
	"lfi/internal/core"
)

// The abstract domain: inclusive intervals of slot-relative values. The
// verifier's invariants give every register the code can form an address
// from a guaranteed interval, and an accepted instruction is sound when
// the interval of every byte it can touch stays inside the layout window
// from internal/core.

// interval is an inclusive range of slot-relative addresses or values.
type interval struct{ lo, hi int64 }

func (iv interval) add(d int64) interval   { return interval{iv.lo + d, iv.hi + d} }
func (iv interval) within(o interval) bool { return iv.lo >= o.lo && iv.hi <= o.hi }
func (iv interval) String() string         { return fmt.Sprintf("[%#x, %#x]", iv.lo, iv.hi) }

const slotMax = int64(core.SandboxSize) - 1

// Claimed drift constants, cross-checked by the sweeps: the sp-writes
// class verifies no accepted un-guarded sp adjustment exceeds elideMax,
// and the memory classes verify no accepted sp writeback exceeds wbMax.
const (
	elideMax = 1023 // verifier accepts add/sub sp, sp, #imm only for imm < 1024
	wbMax    = 1024 // widest encodable pre/post-index immediate (q-pair imm7)
)

// dataWin and execWin are the slot-relative, inclusive containment
// windows derived from the shared layout model.
var (
	dataWin = interval{-int64(core.GuardSize), int64(core.SandboxSize) + int64(core.GuardSize) - 1}
	execWin = interval{-int64(core.CodeMargin), slotMax}
)

// slotIv is the interval of an always-valid sandbox address.
var slotIv = interval{0, slotMax}

// regInterval returns the value interval the verifier's invariants
// guarantee for reads of r at any instruction boundary, or ok=false if
// the register is unconstrained. sp is handled separately (spStats).
func regInterval(r arm64.Reg) (interval, bool) {
	if r.IsSP() {
		return interval{}, false // callers must use the sp drift envelope
	}
	if !r.Is64() {
		if r.IsGP() && !r.IsZR() {
			// Any w-register read is zero-extended into 32 bits.
			return interval{0, slotMax}, true
		}
		if r.IsZR() {
			return interval{0, 0}, true
		}
		return interval{}, false
	}
	switch r {
	case core.RegBase:
		return interval{0, 0}, true // bottom 32 bits of the base are zero
	case core.RegScratch, core.RegHoist1, core.RegHoist2, arm64.X30:
		return slotIv, true
	case core.RegAddr32:
		return interval{0, slotMax}, true // upper 32 bits always zero
	}
	return interval{}, false
}

// extentOf returns the number of bytes the access touches.
func extentOf(inst *arm64.Inst) int64 {
	switch inst.Op {
	case arm64.LDRB, arm64.STRB, arm64.LDRSB:
		return 1
	case arm64.LDRH, arm64.STRH, arm64.LDRSH:
		return 2
	case arm64.LDRSW:
		return 4
	case arm64.LDP, arm64.STP:
		return 2 * regBytes(inst.Rd)
	default: // LDR, STR, exclusives, acquire/release
		return regBytes(inst.Rd)
	}
}

func regBytes(r arm64.Reg) int64 {
	if r.IsFP() {
		return int64(r.FPBits() / 8)
	}
	if r.Is64() {
		return 8
	}
	return 4
}

// spStats accumulates the accepted sp-based offsets seen by a sweep and
// computes the resulting stack-pointer drift fixpoint. sp is not
// confined to the slot: one elided add/sub sp (|delta| <= elideMax) may
// be outstanding, writeback moves sp by up to wbMax, and chains of
// elided adjustments interleaved with mapped accesses drag sp as far as
// the accepted offsets reach (an access retires, letting the chain
// continue, only if sp+offset lands in the mapped slot).
type spStats struct {
	offPos  int64 // largest accepted positive sp offset
	offNeg  int64 // largest magnitude accepted negative sp offset
	reachHi int64 // largest accepted sp offset+extent-1

	exOffPos, exOffNeg, exReachHi uint32 // exemplar encodings
}

func (s *spStats) record(word uint32, off, ext int64) {
	if off > s.offPos {
		s.offPos, s.exOffPos = off, word
	}
	if off < 0 && -off > s.offNeg {
		s.offNeg, s.exOffNeg = -off, word
	}
	if off+ext-1 > s.reachHi {
		s.reachHi, s.exReachHi = off+ext-1, word
	}
}

// envelope returns the at-access sp interval implied by the recorded
// offsets:
//
//	lo = -(offPos + elideMax)            mapped access at +offPos, then one more elided sub
//	hi = slotMax + max(offNeg, wbMax) + elideMax
func (s *spStats) envelope() interval {
	return interval{
		lo: -(s.offPos + elideMax),
		hi: slotMax + max(s.offNeg, wbMax) + elideMax,
	}
}

// check closes the fixpoint: every accepted sp-based access, issued from
// anywhere in the envelope, must stay inside the data window. Violations
// are attributed to the exemplar encodings that set the extreme bounds.
func (s *spStats) check(p *prover) {
	env := s.envelope()
	p.fact("sp offsets swept: [-%d, +%d], max reach +%d; at-access envelope %v",
		s.offNeg, s.offPos, s.reachHi, env)
	if worst := env.lo - s.offNeg; worst < dataWin.lo {
		p.ce([]uint32{s.exOffNeg}, 0, fmt.Sprintf(
			"sp low reach %#x escapes the data window %v (envelope %v)", worst, dataWin, env))
	}
	if worst := env.hi + s.reachHi; worst > dataWin.hi {
		p.ce([]uint32{s.exReachHi}, 0, fmt.Sprintf(
			"sp high reach %#x escapes the data window %v (envelope %v)", worst, dataWin, env))
	}
}
