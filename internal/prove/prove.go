// Package prove machine-checks the verifier's acceptance conditions
// against the shared runtime memory-layout model in internal/core.
//
// Where the fuzzing oracle (internal/fuzz) samples behaviors, this
// package enumerates the verifier's accepted instruction classes and
// bounds every accepted encoding's worst-case effect with a small
// abstract interpretation over slot-relative intervals:
//
//	x21 (base)       [0, 0]          bottom 32 bits of the base are zero
//	x18/x23/x24/x30  [0, 2^32-1]     always-valid sandbox addresses
//	x22 / wN reads   [0, 2^32-1]     zero-extended 32-bit values
//	sp               drift fixpoint computed from the sweep itself
//
// Each class pushes real encodings through the real verifier
// (internal/verifier.Verify), in minimal context programs where the
// class needs one (a guard after an x30 write, an sp access after an
// elidable sp adjustment, a blr after a runtime-call load, the sp guard
// pair after an arbitrary sp write). Every accepted word's reachable
// byte interval is then checked against core.DataWindow/ExecWindow and
// the register invariants; an accepted word whose worst case escapes is
// emitted as a disassembled counterexample.
//
// Classes whose fields are small are swept exhaustively. The memory and
// reserved-register classes are swept exhaustively over their immediate
// and base/operand register fields with the transfer register fixed to
// representative values; Options.Full (LFI_PROVE_FULL=1) additionally
// sweeps the entire 2^30 load/store region and the full imm26 direct
// branch displacement field.
package prove

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"lfi/internal/arm64"
	"lfi/internal/core"
	"lfi/internal/verifier"
)

// Options configures a prover run.
type Options struct {
	// Full sweeps the large register/transfer dimensions too (the whole
	// load/store region, all imm26 branch displacements). Minutes, not
	// seconds; gate behind LFI_PROVE_FULL.
	Full bool

	// Classes restricts the run to the named classes (nil = all).
	Classes []string
}

// A Counterexample is a program the verifier accepts whose worst-case
// effect under the layout model escapes the sandbox invariants.
type Counterexample struct {
	Words   []uint32 // the accepted program
	Idx     int      // offending word
	TextOff uint64
	Asm     string // disassembly of the offending word
	Reason  string
}

func (c Counterexample) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "textoff=%#x:", c.TextOff)
	for i, w := range c.Words {
		mark := " "
		if i == c.Idx {
			mark = "*"
		}
		fmt.Fprintf(&sb, "%s%#08x", mark, w)
	}
	fmt.Fprintf(&sb, " (%s): %s", c.Asm, c.Reason)
	return sb.String()
}

// ClassResult reports one instruction class.
type ClassResult struct {
	Name     string
	Swept    uint64 // encodings pushed through the verifier
	Accepted uint64 // encodings the verifier accepted (in some context)
	Facts    []string
	CEs      []Counterexample
}

// Report is the result of a prover run.
type Report struct {
	Full    bool
	Classes []ClassResult
}

// Counterexamples returns the total number of counterexamples found.
func (r *Report) Counterexamples() int {
	n := 0
	for _, c := range r.Classes {
		n += len(c.CEs)
	}
	return n
}

func (r *Report) String() string {
	var sb strings.Builder
	mode := "smoke"
	if r.Full {
		mode = "full"
	}
	fmt.Fprintf(&sb, "soundness prover (%s sweep)\n", mode)
	fmt.Fprintf(&sb, "%-16s %12s %12s %6s\n", "class", "swept", "accepted", "ce")
	var swept, accepted uint64
	for _, c := range r.Classes {
		fmt.Fprintf(&sb, "%-16s %12d %12d %6d\n", c.Name, c.Swept, c.Accepted, len(c.CEs))
		swept += c.Swept
		accepted += c.Accepted
	}
	fmt.Fprintf(&sb, "%-16s %12d %12d %6d\n", "total", swept, accepted, r.Counterexamples())
	for _, c := range r.Classes {
		for _, f := range c.Facts {
			fmt.Fprintf(&sb, "  [%s] %s\n", c.Name, f)
		}
	}
	for _, c := range r.Classes {
		for _, ce := range c.CEs {
			fmt.Fprintf(&sb, "  [%s] COUNTEREXAMPLE %s\n", c.Name, ce)
		}
	}
	return sb.String()
}

// Context kinds: the minimal accepting context a probed word needed.
const (
	ctxNone        = iota // the word alone
	ctxGuardX30           // followed by add x30, x21, w30, uxtw
	ctxSPAccess           // followed by str x0, [sp]
	ctxBLR                // followed by blr x30
	ctxSPGuardPair        // followed by mov w22, wsp; add sp, x21, x22
)

type prover struct {
	opts Options
	cfg  verifier.Config
	buf  []byte

	guardX30 uint32
	strSP    uint32
	blr      uint32
	spGuard  [2]uint32

	cur *ClassResult
}

func newProver(opts Options) *prover {
	p := &prover{opts: opts, cfg: verifier.DefaultConfig()}
	p.cfg.TextOff = core.MinCodeOffset
	enc := func(inst arm64.Inst) uint32 {
		w, err := arm64.Encode(&inst)
		if err != nil {
			panic(fmt.Sprintf("prove: encoding context word %v: %v", &inst, err))
		}
		return w
	}
	p.guardX30 = enc(core.GuardInto(arm64.X30, arm64.X30))
	p.strSP = enc(arm64.Inst{
		Op: arm64.STR, Rd: arm64.X0, Ra: arm64.RegNone, Amount: -1,
		Mem: arm64.Mem{Mode: arm64.AddrImm, Base: arm64.SP},
	})
	p.blr = enc(arm64.Inst{Op: arm64.BLR, Rn: arm64.X30, Ra: arm64.RegNone, Amount: -1})
	sg := core.SPGuard()
	p.spGuard[0], p.spGuard[1] = enc(sg[0]), enc(sg[1])
	return p
}

// accepts reports whether the verifier accepts the program words at the
// prover's text offset.
func (p *prover) accepts(words ...uint32) bool {
	return p.acceptsAt(p.cfg.TextOff, words...)
}

func (p *prover) acceptsAt(textOff uint64, words ...uint32) bool {
	if cap(p.buf) < 4*len(words) {
		p.buf = make([]byte, 4*len(words))
	}
	buf := p.buf[:4*len(words)]
	for i, w := range words {
		binary.LittleEndian.PutUint32(buf[4*i:], w)
	}
	cfg := p.cfg
	cfg.TextOff = textOff
	_, err := verifier.Verify(buf, cfg)
	return err == nil
}

// probe finds the minimal context that makes the verifier accept word w,
// trying only the contexts the decoded instruction could need. Undecodable
// words are rejected outright (the verifier rejects them too, but skipping
// the call keeps the big sweeps fast).
func (p *prover) probe(w uint32) (inst arm64.Inst, ctx int, ok bool) {
	inst, err := arm64.Decode(w)
	if err != nil {
		return inst, 0, false
	}
	if p.accepts(w) {
		return inst, ctxNone, true
	}
	var dsts [4]arm64.Reg
	for _, d := range inst.DestRegs(dsts[:0]) {
		switch {
		case d == arm64.X30:
			if p.accepts(w, p.guardX30) {
				return inst, ctxGuardX30, true
			}
			if inst.Op.IsLoad() && p.accepts(w, p.blr) {
				return inst, ctxBLR, true
			}
		case d.IsSP() && d.Is64():
			if p.accepts(w, p.strSP) {
				return inst, ctxSPAccess, true
			}
			if p.accepts(w, p.spGuard[0], p.spGuard[1]) {
				return inst, ctxSPGuardPair, true
			}
		}
	}
	return inst, 0, false
}

// fact records a machine-checked fact on the current class.
func (p *prover) fact(format string, args ...any) {
	p.cur.Facts = append(p.cur.Facts, fmt.Sprintf(format, args...))
}

// ce records a counterexample: words is the accepted program, idx the
// offending word.
func (p *prover) ce(words []uint32, idx int, reason string) {
	p.ceAt(p.cfg.TextOff, words, idx, reason)
}

func (p *prover) ceAt(textOff uint64, words []uint32, idx int, reason string) {
	asm := fmt.Sprintf("%#08x", words[idx])
	if inst, err := arm64.Decode(words[idx]); err == nil {
		asm = inst.String()
	}
	p.cur.CEs = append(p.cur.CEs, Counterexample{
		Words: words, Idx: idx, TextOff: textOff, Asm: asm, Reason: reason,
	})
}

// classes is the registry; order matters only for reporting.
var classes = []struct {
	name string
	fn   func(*prover)
}{
	{"mem-imm", (*prover).classMemImm},
	{"mem-regoffset", (*prover).classMemRegOffset},
	{"mem-literal", (*prover).classMemLiteral},
	{"mem-exclusive", (*prover).classMemExclusive},
	{"reserved-writes", (*prover).classReservedWrites},
	{"sp-writes", (*prover).classSPWrites},
	{"branches", (*prover).classBranches},
	{"runtime-calls", (*prover).classRuntimeCalls},
	{"sysregs", (*prover).classSysregs},
}

// ClassNames returns the available class names.
func ClassNames() []string {
	names := make([]string, len(classes))
	for i, c := range classes {
		names[i] = c.name
	}
	return names
}

// Run enumerates the configured classes and returns the report.
func Run(opts Options) (*Report, error) {
	want := map[string]bool{}
	for _, n := range opts.Classes {
		found := false
		for _, c := range classes {
			if c.name == n {
				found = true
			}
		}
		if !found {
			known := ClassNames()
			sort.Strings(known)
			return nil, fmt.Errorf("prove: unknown class %q (have %s)", n, strings.Join(known, ", "))
		}
		want[n] = true
	}
	rep := &Report{Full: opts.Full}
	for _, c := range classes {
		if len(want) > 0 && !want[c.name] {
			continue
		}
		p := newProver(opts)
		p.cur = &ClassResult{Name: c.name}
		c.fn(p)
		rep.Classes = append(rep.Classes, *p.cur)
	}
	return rep, nil
}
