package workloads

import "fmt"

// Floating-point kernels. FP checksums are accumulated in d8 and moved
// bit-exactly into x19 at the end (identical operation sequences produce
// identical bits in native and sandboxed runs).

const fpFinish = `
	fmov x19, d8
	b finish
`

// fillDoubles emits a loop filling `bytes` bytes at the symbol in x25 with
// small positive doubles derived from the LCG (value = (bits&1023)+1
// converted via scvtf).
func fillDoubles(label string, bytes int) string {
	return fmt.Sprintf(`
	mov x26, #0
	mov x10, #77
%s:
%s	and x11, x10, #1023
	add x11, x11, #1
	scvtf d0, x11
	str d0, [x25, x26]
	add x26, x26, #8
	cmp x26, #%d
	b.ne %s
`, label, lcgStep("x10", "x10"), bytes, label)
}

// srcNAMD models 508.namd: the pairwise force inner loop — three gathers,
// fused multiply-adds, no divides.
func srcNAMD(scale float64) string {
	n := iters(scale, 7000)
	return fmt.Sprintf(`
// 508.namd model: pairwise-force fmadd kernel.
.globl _start
_start:
	mov x19, #0
	fmov d8, xzr
	adrp x25, coords
	add x25, x25, :lo12:coords
%s
	movz x20, #%d
	movk x20, #%d, lsl #16
	mov x27, #0              // particle cursor
pair:
	// Load (x,y,z) of two particles: one at the cursor, one offset by a
	// fixed stride (wrapped into the filled region).
	add x11, x27, #3000
	and x11, x11, #0x3ff8
	ldr d0, [x25, x27]
	ldr d1, [x25, x11]
	add x12, x27, #8
	add x13, x11, #8
	ldr d2, [x25, x12]
	ldr d3, [x25, x13]
	add x12, x12, #8
	add x13, x13, #8
	ldr d4, [x25, x12]
	ldr d5, [x25, x13]
	// dx,dy,dz and r2 = dx*dx + dy*dy + dz*dz
	fsub d0, d0, d1
	fsub d2, d2, d3
	fsub d4, d4, d5
	fmul d6, d0, d0
	fmadd d6, d2, d2, d6
	fmadd d6, d4, d4, d6
	// force term: f = r2 * 0.5 + 1.0; acc += f * dx
	fmov d7, #0.5
	fmul d6, d6, d7
	fmov d7, #1.0
	fadd d6, d6, d7
	fmadd d8, d6, d0, d8
	add x27, x27, #16
	and x27, x27, #0x3ff0
	subs x20, x20, #1
	b.ne pair
%s
%s
.bss
coords:
	.space 32768
`, fillDoubles("fillc", 16384), n&0xffff, (n>>16)&0xffff, fpFinish, epilogue)
}

// srcParest models 510.parest: sparse matrix-vector products — indexed
// gathers through an index array (uxtw addressing).
func srcParest(scale float64) string {
	n := iters(scale, 6500)
	return fmt.Sprintf(`
// 510.parest model: CSR sparse matrix-vector product.
.globl _start
_start:
	mov x19, #0
	fmov d8, xzr
	adrp x25, vals
	add x25, x25, :lo12:vals
%s
	// Column indices: pseudo-random 0..2047.
	adrp x27, cols
	add x27, x27, :lo12:cols
	mov x26, #0
	mov x10, #55
fillidx:
%s	and x11, x10, #2047
	str w11, [x27, x26, lsl #2]
	add x26, x26, #1
	cmp x26, #2048
	b.ne fillidx
	adrp x28, vec
	add x28, x28, :lo12:vec
	mov x26, #0
	fmov d1, #1.0
fillvec:
	str d1, [x28, x26, lsl #3]
	fmov d2, #0.25
	fadd d1, d1, d2
	add x26, x26, #1
	cmp x26, #2048
	b.ne fillvec

	movz x20, #%d
	movk x20, #%d, lsl #16
	mov x26, #0
spmv:
	// y += A[k] * x[col[k]], 4-wide unrolled row segment.
	ldr w11, [x27, x26, lsl #2]
	ldr d0, [x25, x26, lsl #3]
	ldr d1, [x28, w11, uxtw #3]
	fmadd d8, d0, d1, d8
	add x12, x26, #1
	and x12, x12, #2047
	ldr w11, [x27, x12, lsl #2]
	ldr d0, [x25, x12, lsl #3]
	ldr d1, [x28, w11, uxtw #3]
	fmadd d8, d0, d1, d8
	add x26, x26, #2
	and x26, x26, #2047
	subs x20, x20, #1
	b.ne spmv
%s
%s
.bss
vals:
	.space 16384
cols:
	.space 8192
vec:
	.space 16384
`, fillDoubles("fillv", 16384), lcgStep("x10", "x10"), n&0xffff, (n>>16)&0xffff, fpFinish, epilogue)
}

// srcPovray models 511.povray: ray-sphere intersections — FP compares and
// data-dependent branches with square roots on the hit path.
func srcPovray(scale float64) string {
	n := iters(scale, 6000)
	return fmt.Sprintf(`
// 511.povray model: ray-sphere intersection tests.
.globl _start
_start:
	mov x19, #0
	fmov d8, xzr
	adrp x25, spheres
	add x25, x25, :lo12:spheres
%s
	movz x20, #%d
	movk x20, #%d, lsl #16
	mov x26, #0
ray:
	// b and c coefficients from the table; disc = b*b - 4c.
	ldr d0, [x25, x26]
	add x11, x26, #8
	ldr d1, [x25, x11]
	fmul d2, d0, d0
	fmov d3, #4.0
	fmsub d2, d1, d3, d2     // d2 = d0*d0 - 4*d1... fmsub computes a - n*m
	fcmp d2, #0.0
	b.lt miss
	fsqrt d4, d2
	fsub d5, d4, d0
	fmov d6, #0.5
	fmul d5, d5, d6          // t = (sqrt(disc) - b) / 2
	fadd d8, d8, d5
	add x19, x19, #1
	b nextray
miss:
	fmov d7, #1.0
	fadd d8, d8, d7
nextray:
	add x26, x26, #16
	and x26, x26, #0x3ff0
	subs x20, x20, #1
	b.ne ray
%s
%s
.bss
spheres:
	.space 16400
`, fillDoubles("fills", 16384), n&0xffff, (n>>16)&0xffff, fpFinish, epilogue)
}

// srcLBM models 519.lbm: a streaming stencil sweep over doubles — long
// sequential load/store runs that benefit from guard hoisting.
func srcLBM(scale float64) string {
	passes := iters(scale, 22)
	return fmt.Sprintf(`
// 519.lbm model: 1D lattice stencil, streaming.
.globl _start
_start:
	mov x19, #0
	fmov d8, xzr
	adrp x25, gridA
	add x25, x25, :lo12:gridA
%s
	adrp x27, gridB
	add x27, x27, :lo12:gridB
	mov x20, #%d
	fmov d4, #0.25
	fmov d5, #0.5
sweep:
	// Pointer-increment sweep, as compilers emit for streaming loops:
	// three neighbour loads off one cursor, one store off another.
	add x11, x25, #8
	add x12, x27, #8
	mov x26, #8
	movz x28, #16376
cell:
	ldr d0, [x11, #-8]
	ldr d1, [x11]
	ldr d2, [x11, #8]
	fmul d3, d0, d4
	fmadd d3, d1, d5, d3
	fmadd d3, d2, d4, d3
	str d3, [x12]
	add x11, x11, #8
	add x12, x12, #8
	add x26, x26, #8
	cmp x26, x28
	b.ne cell
	// Swap grids.
	mov x11, x25
	mov x25, x27
	mov x27, x11
	subs x20, x20, #1
	b.ne sweep
	ldr d8, [x25, #8192]
%s
%s
.bss
gridA:
	.space 16384
gridB:
	.space 16384
`, fillDoubles("fillg", 16384), passes, fpFinish, epilogue)
}

// srcNAB models 544.nab: distance-based force evaluation with divides and
// square roots in the loop.
func srcNAB(scale float64) string {
	n := iters(scale, 5200)
	return fmt.Sprintf(`
// 544.nab model: nonbonded force kernel with div/sqrt.
.globl _start
_start:
	mov x19, #0
	fmov d8, xzr
	adrp x25, pos
	add x25, x25, :lo12:pos
%s
	movz x20, #%d
	movk x20, #%d, lsl #16
	mov x26, #0
force:
	ldr d0, [x25, x26]
	add x11, x26, #8
	ldr d1, [x25, x11]
	fsub d2, d0, d1
	fmadd d3, d2, d2, d2     // r2-ish, always positive enough
	fabs d3, d3
	fmov d4, #1.0
	fadd d3, d3, d4          // avoid zero
	fsqrt d5, d3             // r
	fdiv d6, d4, d5          // 1/r
	fmul d6, d6, d6          // 1/r2
	fmadd d8, d6, d2, d8
	add x26, x26, #16
	and x26, x26, #0x3ff0
	subs x20, x20, #1
	b.ne force
%s
%s
.bss
pos:
	.space 16400
`, fillDoubles("fillp", 16384), n&0xffff, (n>>16)&0xffff, fpFinish, epilogue)
}
