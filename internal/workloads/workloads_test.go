package workloads

import (
	"testing"

	"lfi/internal/core"
	"lfi/internal/lfirt"
	"lfi/internal/progs"
)

// runKernel executes a workload under the runtime with the given build
// mode and returns its stdout (the 8-byte checksum) and instruction count.
func runKernel(t *testing.T, src string, opts *core.Options) (string, uint64) {
	t.Helper()
	var elf []byte
	cfg := lfirt.DefaultConfig()
	if opts == nil {
		res, err := progs.BuildNative(src)
		if err != nil {
			t.Fatalf("build native: %v", err)
		}
		elf = res.ELF
		cfg.Verify = false
	} else {
		res, err := progs.Build(src, *opts)
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		elf = res.ELF
		// no-loads builds verify under the matching relaxed policy.
		cfg.VerifierCfg.NoLoads = opts.NoLoads
	}
	rt := lfirt.New(cfg)
	p, err := rt.Load(elf)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	status, err := rt.RunProc(p)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if status != 0 {
		t.Fatalf("exit status %d", status)
	}
	out := string(rt.Stdout())
	if len(out) != 8 {
		t.Fatalf("checksum output is %d bytes", len(out))
	}
	return out, rt.CPU.Instrs
}

// TestKernelsMatchNative is the key correctness property: every kernel
// computes the same checksum natively and under every LFI mode, and its
// LFI build passes the verifier (enforced by the loading path).
func TestKernelsMatchNative(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			src := w.Source(0.08) // small inputs for the test suite
			native, nInstrs := runKernel(t, src, nil)
			for _, opt := range []core.OptLevel{core.O0, core.O1, core.O2} {
				got, gInstrs := runKernel(t, src, &core.Options{Opt: opt})
				if got != native {
					t.Errorf("%v checksum mismatch: %x vs native %x", opt, got, native)
				}
				if gInstrs < nInstrs {
					t.Errorf("%v executed fewer instructions (%d) than native (%d)",
						opt, gInstrs, nInstrs)
				}
			}
			// no-loads mode must also preserve results.
			got, _ := runKernel(t, src, &core.Options{Opt: core.O2, NoLoads: true})
			if got != native {
				t.Errorf("no-loads checksum mismatch")
			}
		})
	}
}

func TestWorkloadRegistry(t *testing.T) {
	all := All()
	if len(all) != 14 {
		t.Fatalf("have %d workloads, want 14", len(all))
	}
	if len(WasmSubset()) != 7 {
		t.Fatalf("wasm subset = %d, want 7", len(WasmSubset()))
	}
	seen := map[string]bool{}
	for _, w := range all {
		if seen[w.Name] {
			t.Errorf("duplicate %s", w.Name)
		}
		seen[w.Name] = true
		if w.Behaviour == "" {
			t.Errorf("%s has no behaviour description", w.Name)
		}
	}
	if _, ok := Get("505.mcf"); !ok {
		t.Error("Get(505.mcf) failed")
	}
	if _, ok := Get("nope"); ok {
		t.Error("Get(nope) succeeded")
	}
}

func TestScaleChangesWork(t *testing.T) {
	w, _ := Get("541.leela")
	_, small := runKernel(t, w.Source(0.05), &core.Options{Opt: core.O2})
	_, large := runKernel(t, w.Source(0.2), &core.Options{Opt: core.O2})
	if large < small*2 {
		t.Errorf("scale knob ineffective: %d vs %d instructions", small, large)
	}
}

func TestMicroSyscallLoop(t *testing.T) {
	rt := lfirt.New(lfirt.DefaultConfig())
	res, err := progs.Build(SyscallLoop(100), core.Options{Opt: core.O2})
	if err != nil {
		t.Fatal(err)
	}
	p, err := rt.Load(res.ELF)
	if err != nil {
		t.Fatal(err)
	}
	if status, err := rt.RunProc(p); err != nil || status != 0 {
		t.Fatalf("status=%d err=%v", status, err)
	}
	if rt.HostCalls < 100 {
		t.Errorf("host calls = %d, want >= 100", rt.HostCalls)
	}
}

func TestMicroPipePing(t *testing.T) {
	rt := lfirt.New(lfirt.DefaultConfig())
	res, err := progs.Build(PipePing(50), core.Options{Opt: core.O2})
	if err != nil {
		t.Fatal(err)
	}
	p, err := rt.Load(res.ELF)
	if err != nil {
		t.Fatal(err)
	}
	status, err := rt.RunProc(p)
	if err != nil {
		t.Fatal(err)
	}
	if status != 0 {
		t.Fatalf("status=%d", status)
	}
	if err := rt.Run(); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func TestMicroYieldPing(t *testing.T) {
	rt := lfirt.New(lfirt.DefaultConfig())
	b1, err := progs.Build(YieldPing(40, 2), core.Options{Opt: core.O2})
	if err != nil {
		t.Fatal(err)
	}
	b2, err := progs.Build(YieldPing(40, 1), core.Options{Opt: core.O2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Load(b1.ELF); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Load(b2.ELF); err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCoreMarkMatchesNative(t *testing.T) {
	src := CoreMark(0.3)
	native, _ := runKernel(t, src, nil)
	for _, opt := range []core.OptLevel{core.O0, core.O1, core.O2} {
		got, _ := runKernel(t, src, &core.Options{Opt: opt})
		if got != native {
			t.Errorf("%v: coremark checksum mismatch", opt)
		}
	}
}
