package workloads

import "fmt"

// Integer kernels. Every kernel accumulates a checksum in x19 and falls
// through to the shared epilogue, which writes it to stdout and exits.
// Reserved registers (x18, x21-x24) are never used, matching code built
// with the -ffixed-reg flags of §5.1.

// srcGCC models 502.gcc: a bytecode interpreter dispatching through a
// jump table — indirect branches, table loads, and branchy handlers.
func srcGCC(scale float64) string {
	n := iters(scale, 12000)
	return fmt.Sprintf(`
// 502.gcc model: jump-table interpreter.
.globl _start
_start:
	mov x19, #0
	// Fill the bytecode buffer with pseudo-random opcodes 0..7.
	adrp x25, code
	add x25, x25, :lo12:code
	mov x26, #0          // index
	mov x10, #12345
fill:
%s	and x11, x10, #7
	strb w11, [x25, x26]
	add x26, x26, #1
	cmp x26, #1024
	b.ne fill

	// Build the dispatch table position-independently (compilers emit
	// offset-based jump tables; adr keeps this loadable at any base).
	adrp x27, handlers
	add x27, x27, :lo12:handlers
	adr x11, op_add
	str x11, [x27]
	adr x11, op_sub
	str x11, [x27, #8]
	adr x11, op_mul
	str x11, [x27, #16]
	adr x11, op_ldst
	str x11, [x27, #24]
	adr x11, op_branch
	str x11, [x27, #32]
	adr x11, op_shift
	str x11, [x27, #40]
	adr x11, op_cmp
	str x11, [x27, #48]
	adr x11, op_acc
	str x11, [x27, #56]
	adrp x28, regs
	add x28, x28, :lo12:regs
	mov x26, #0          // pc
	movz x20, #%d        // instruction budget
	movk x20, #%d, lsl #16
interp:
	ldrb w11, [x25, x26]
	add x26, x26, #1
	and x26, x26, #1023
	ldr x12, [x27, x11, lsl #3]
	br x12
op_add:
	ldr x13, [x28]
	ldr x14, [x28, #8]
	add x13, x13, x14
	str x13, [x28]
	b next
op_sub:
	ldr x13, [x28, #8]
	ldr x14, [x28, #16]
	sub x13, x13, x14
	str x13, [x28, #8]
	b next
op_mul:
	ldr x13, [x28, #16]
	ldr x14, [x28]
	mul x13, x13, x14
	add x13, x13, #1
	str x13, [x28, #16]
	b next
op_ldst:
	ldr x13, [x28, #24]
	add x13, x13, x26
	str x13, [x28, #24]
	b next
op_branch:
	ldr x13, [x28]
	tbz x13, #3, next
	add x26, x26, #7
	and x26, x26, #1023
	b next
op_shift:
	ldr x13, [x28, #8]
	lsl x14, x13, #3
	eor x13, x13, x14
	str x13, [x28, #8]
	b next
op_cmp:
	ldr x13, [x28]
	ldr x14, [x28, #16]
	cmp x13, x14
	csel x13, x13, x14, lt
	str x13, [x28, #32]
	b next
op_acc:
	ldr x13, [x28, #32]
	add x19, x19, x13
	b next
next:
	subs x20, x20, #1
	b.ne interp
	ldr x13, [x28]
	add x19, x19, x13
	b finish
%s
.data
handlers:
	.space 64
regs:
	.space 64
.bss
code:
	.space 1024
`, lcgStep("x10", "x10"), n&0xffff, (n>>16)&0xffff, epilogue)
}

// srcMCF models 505.mcf: dependent pointer chasing over a pool large
// enough to thrash the TLB. Nodes hold 32-bit offsets, so the chase is
// position independent (and fork-safe), as §5.3 describes.
func srcMCF(scale float64) string {
	steps := iters(scale, 30000)
	return fmt.Sprintf(`
// 505.mcf model: pointer chasing, 4MiB footprint.
.globl _start
_start:
	mov x19, #0
	adrp x25, pool
	add x25, x25, :lo12:pool
	// Build a strided cycle: node i -> node (i*2654435761+12345) mod 8192,
	// nodes 512 bytes apart.
	mov x26, #0
	movz x10, #0x9e37, lsl #16
	movk x10, #0x79b1           // 2654435761
init:
	mul x11, x26, x10
	add x11, x11, #2053
	and x11, x11, #8191
	lsl x12, x11, #9            // *512: next node offset
	lsl x13, x26, #9
	str w12, [x25, x13]         // store 32-bit next offset
	add x26, x26, #1
	cmp x26, #8192
	b.ne init

	mov x26, #0                 // current offset
	movz x20, #%d
	movk x20, #%d, lsl #16
chase:
	ldr w26, [x25, x26]         // load next offset (dependent)
	add x19, x19, x26
	subs x20, x20, #1
	b.ne chase
	b finish
%s
.bss
pool:
	.space 4194304
`, steps&0xffff, (steps>>16)&0xffff, epilogue)
}

// srcOmnetpp models 520.omnetpp: a binary-heap event queue with pushes
// and pops — compare-and-swap loops over memory.
func srcOmnetpp(scale float64) string {
	events := iters(scale, 9000)
	return fmt.Sprintf(`
// 520.omnetpp model: binary heap event queue.
.globl _start
_start:
	mov x19, #0
	adrp x25, heap
	add x25, x25, :lo12:heap
	mov x26, #0            // heap size
	mov x10, #9876
	movz x20, #%d
	movk x20, #%d, lsl #16
loop:
	// Push a pseudo-random event time.
%s	and x11, x10, #0xffff
	// sift-up from index x26
	mov x12, x26
	add x26, x26, #1
	str x11, [x25, x12, lsl #3]
siftup:
	cbz x12, pushed
	sub x13, x12, #1
	lsr x13, x13, #1       // parent
	ldr x14, [x25, x13, lsl #3]
	ldr x15, [x25, x12, lsl #3]
	cmp x15, x14
	b.ge pushed
	str x15, [x25, x13, lsl #3]
	str x14, [x25, x12, lsl #3]
	mov x12, x13
	b siftup
pushed:
	// Pop when the heap has 64 events: take min, move last to root,
	// sift down.
	cmp x26, #64
	b.lt next
	ldr x14, [x25]
	add x19, x19, x14
	sub x26, x26, #1
	ldr x14, [x25, x26, lsl #3]
	str x14, [x25]
	mov x12, #0
siftdown:
	lsl x13, x12, #1
	add x13, x13, #1       // left child
	cmp x13, x26
	b.ge next
	add x15, x13, #1       // right child
	cmp x15, x26
	b.ge pickleft
	ldr x16, [x25, x13, lsl #3]
	ldr x17, [x25, x15, lsl #3]
	cmp x17, x16
	csel x13, x15, x13, lt
pickleft:
	ldr x16, [x25, x13, lsl #3]
	ldr x17, [x25, x12, lsl #3]
	cmp x16, x17
	b.ge next
	str x16, [x25, x12, lsl #3]
	str x17, [x25, x13, lsl #3]
	mov x12, x13
	b siftdown
next:
	subs x20, x20, #1
	b.ne loop
	add x19, x19, x26
	b finish
%s
.bss
heap:
	.space 2048
`, events&0xffff, (events>>16)&0xffff, lcgStep("x10", "x10"), epilogue)
}

// srcXalanc models 523.xalancbmk: string hashing and open-addressed table
// probing — byte loads, short dependent loops.
func srcXalanc(scale float64) string {
	n := iters(scale, 5500)
	return fmt.Sprintf(`
// 523.xalancbmk model: string hashing and table probing.
.globl _start
_start:
	mov x19, #0
	adrp x25, strings
	add x25, x25, :lo12:strings
	adrp x27, table
	add x27, x27, :lo12:table
	// Fill 8KiB of string bytes.
	mov x26, #0
	mov x10, #42
fill:
%s	str x10, [x25, x26]
	add x26, x26, #8
	cmp x26, #8192
	b.ne fill

	movz x20, #%d
	movk x20, #%d, lsl #16
	mov x26, #0            // string cursor
outer:
	// djb2 hash of the 24-byte string at the cursor.
	add x15, x25, x26
	movz x11, #5381
	mov x12, #0
hash:
	ldrb w13, [x15, x12]
	add x14, x11, x11, lsl #5
	add x11, x14, x13
	add x12, x12, #1
	cmp x12, #24
	b.ne hash
	// probe the 512-entry table
	and x12, x11, #511
probe:
	ldr x13, [x27, x12, lsl #3]
	cbz x13, insert
	cmp x13, x11
	b.eq hit
	add x12, x12, #1
	and x12, x12, #511
	b probe
insert:
	str x11, [x27, x12, lsl #3]
	b advance
hit:
	add x19, x19, #1
advance:
	add x19, x19, x11
	add x26, x26, #8
	and x26, x26, #0x1fc0   // keep the 24-byte read inside the buffer
	subs x20, x20, #1
	b.ne outer
	b finish
%s
.bss
strings:
	.space 8256
table:
	.space 4096
`, lcgStep("x10", "x10"), n&0xffff, (n>>16)&0xffff, epilogue)
}

// srcX264 models 525.x264: sum of absolute differences over pixel rows,
// plus a q-register copy loop (SIMD loads/stores use the standard
// addressing modes, §2).
func srcX264(scale float64) string {
	n := iters(scale, 2600)
	return fmt.Sprintf(`
// 525.x264 model: SAD over pixel blocks + vector copies.
.globl _start
_start:
	mov x19, #0
	adrp x25, frame_a
	add x25, x25, :lo12:frame_a
	adrp x26, frame_b
	add x26, x26, :lo12:frame_b
	// Init both frames.
	mov x27, #0
	mov x10, #7
	mov x11, #13
fillf:
%s	str x10, [x25, x27]
%s	str x11, [x26, x27]
	add x27, x27, #8
	cmp x27, #4096
	b.ne fillf

	movz x20, #%d
	movk x20, #%d, lsl #16
block:
	// SAD of one 16-byte row (byte-wise).
	and x12, x20, #0xff0    // row offset
	mov x13, #0             // byte index
	mov x14, #0             // row sad
sad:
	ldrb w15, [x25, x12]
	ldrb w16, [x26, x12]
	subs w17, w15, w16
	cneg w17, w17, mi
	add x14, x14, x17
	add x12, x12, #1
	add x13, x13, #1
	cmp x13, #16
	b.ne sad
	add x19, x19, x14
	// Motion-compensation style 16-byte copy through a vector register.
	and x12, x20, #0xff0
	ldr q0, [x26, x12]
	str q0, [x25, x12]
	subs x20, x20, #1
	b.ne block
	b finish
%s
.bss
frame_a:
	.space 4112
frame_b:
	.space 4112
`, lcgStep("x10", "x10"), lcgStep("x11", "x11"), n&0xffff, (n>>16)&0xffff, epilogue)
}

// srcDeepsjeng models 531.deepsjeng: bitboard scanning with bit tricks
// and data-dependent branches.
func srcDeepsjeng(scale float64) string {
	n := iters(scale, 11000)
	return fmt.Sprintf(`
// 531.deepsjeng model: bitboard scanning.
.globl _start
_start:
	mov x19, #0
	adrp x25, score
	add x25, x25, :lo12:score
	// Piece-square table.
	mov x26, #0
	mov x10, #3
fillt:
%s	and x11, x10, #255
	str x11, [x25, x26, lsl #3]
	add x26, x26, #1
	cmp x26, #64
	b.ne fillt

	mov x10, #0x1234
	movz x20, #%d
	movk x20, #%d, lsl #16
search:
%s	mov x11, x10            // bitboard
scan:
	cbz x11, donebb
	rbit x12, x11
	clz x12, x12            // index of lowest set bit
	ldr x13, [x25, x12, lsl #3]
	tbz x13, #2, skipbonus
	add x19, x19, x13
skipbonus:
	add x19, x19, x12
	sub x14, x11, #1
	and x11, x11, x14       // clear lowest bit
	b scan
donebb:
	subs x20, x20, #1
	b.ne search
	b finish
%s
.bss
score:
	.space 512
`, lcgStep("x10", "x10"), n&0xffff, (n>>16)&0xffff, lcgStep("x10", "x10"), epilogue)
}

// srcImagick models 538.imagick: integer convolution over a byte image.
func srcImagick(scale float64) string {
	passes := iters(scale, 9)
	return fmt.Sprintf(`
// 538.imagick model: 1D convolution over a 32KiB image.
.globl _start
_start:
	mov x19, #0
	adrp x25, image
	add x25, x25, :lo12:image
	adrp x26, out
	add x26, x26, :lo12:out
	mov x27, #0
	mov x10, #99
fill:
%s	str x10, [x25, x27]
	add x27, x27, #8
	cmp x27, #32768
	b.ne fill

	mov x20, #%d
pass:
	// Pointer-increment convolution: three taps off the input cursor,
	// one store off the output cursor.
	add x9, x25, #1
	add x16, x26, #1
	mov x27, #1
conv:
	ldrb w12, [x9, #-1]
	ldrb w13, [x9]
	ldrb w14, [x9, #1]
	mov x15, #3
	mul x12, x12, x15
	mov x15, #5
	madd x12, x13, x15, x12
	mov x15, #3
	madd x12, x14, x15, x12
	lsr x12, x12, #3
	strb w12, [x16]
	add x19, x19, x12
	add x9, x9, #1
	add x16, x16, #1
	add x27, x27, #1
	cmp x27, #28672
	b.ne conv
	subs x20, x20, #1
	b.ne pass
	b finish
%s
.bss
image:
	.space 32768
out:
	.space 32768
`, lcgStep("x10", "x10"), passes, epilogue)
}

// srcLeela models 541.leela: unpredictable tree descent with loads on
// every decision — the paper's worst case for LFI (17%% on M1).
func srcLeela(scale float64) string {
	n := iters(scale, 16000)
	return fmt.Sprintf(`
// 541.leela model: branchy MCTS-style descent.
.globl _start
_start:
	mov x19, #0
	adrp x25, tree
	add x25, x25, :lo12:tree
	// Node i holds a pseudo-random value used for the descend decision.
	mov x26, #0
	mov x10, #31337
fill:
%s	str x10, [x25, x26, lsl #3]
	add x26, x26, #1
	cmp x26, #4096
	b.ne fill

	mov x10, #1
	movz x20, #%d
	movk x20, #%d, lsl #16
playout:
	mov x11, #1             // node index (1-based heap layout)
descend:
	cmp x11, #2048
	b.ge leaf
	ldr x12, [x25, x11, lsl #3]
	eor x10, x10, x12
	eor x13, x10, x10, lsr #7
	lsl x11, x11, #1
	tbz x13, #0, left
	add x11, x11, #1        // right child (data dependent!)
	add x19, x19, #1
left:
	ldr x14, [x25, x11, lsl #3]
	cmp x14, x12
	b.lt descend
	add x19, x19, x14
	b descend
leaf:
	add x19, x19, x11
	subs x20, x20, #1
	b.ne playout
	b finish
%s
.bss
tree:
	.space 32768
`, lcgStep("x10", "x10"), n&0xffff, (n>>16)&0xffff, epilogue)
}

// srcXZ models 557.xz: an LZ77 match finder with a hash head table and
// byte-compare loops.
func srcXZ(scale float64) string {
	n := iters(scale, 9000)
	return fmt.Sprintf(`
// 557.xz model: LZ match finder.
.globl _start
_start:
	mov x19, #0
	adrp x25, input
	add x25, x25, :lo12:input
	adrp x26, heads
	add x26, x26, :lo12:heads
	// Compressible pseudo-random input: low entropy via masking.
	mov x27, #0
	mov x10, #5
fill:
%s	and x11, x10, #0x0f0f0f0f0f0f0f0f
	str x11, [x25, x27]
	add x27, x27, #8
	cmp x27, #16384
	b.ne fill

	mov x27, #0             // position
	movz x20, #%d
	movk x20, #%d, lsl #16
find:
	// Hash the 4 bytes at the cursor.
	ldr w11, [x25, x27]
	movz x12, #0x9e37, lsl #16
	movk x12, #0x79b1
	mul w11, w11, w12
	lsr w11, w11, #20       // 12-bit hash
	// Look up and replace the chain head.
	ldr w13, [x26, x11, lsl #2]
	str w27, [x26, x11, lsl #2]
	// Compare up to 16 bytes with the candidate.
	mov x14, #0
match:
	ldrb w15, [x25, x13]
	add x16, x27, x14
	and x16, x16, #16383
	ldrb w17, [x25, x16]
	cmp w15, w17
	b.ne matched
	add x13, x13, #1
	and x13, x13, #16383
	add x14, x14, #1
	cmp x14, #16
	b.ne match
matched:
	add x19, x19, x14
	add x27, x27, #3
	and x27, x27, #16383
	subs x20, x20, #1
	b.ne find
	b finish
%s
.bss
input:
	.space 16388
heads:
	.space 16384
`, lcgStep("x10", "x10"), n&0xffff, (n>>16)&0xffff, epilogue)
}
