// Package workloads provides the benchmark programs for the evaluation:
// fourteen kernels named after the SPEC CPU2017 benchmarks the paper uses,
// each hand-written in compiler-style AArch64 assembly to model the
// dominant behaviour of its namesake (pointer chasing for mcf, stencils
// for lbm, SAD loops for x264, …), plus the Table 5 microbenchmark
// programs. Real SPEC sources and inputs are licensed and unavailable
// here; these kernels reproduce the *instruction mix* each benchmark
// stresses, which is what determines SFI overhead.
package workloads

import (
	"fmt"
	"strings"

	"lfi/internal/core"
	"lfi/internal/progs"
)

// Workload is one benchmark program.
type Workload struct {
	// Name matches the SPEC benchmark it models, e.g. "505.mcf".
	Name string
	// Behaviour is a one-line description of the modeled kernel.
	Behaviour string
	// WasmSubset marks the 7 benchmarks that the paper could also run
	// under WebAssembly (Figure 4).
	WasmSubset bool
	// source generates the assembly at a given scale (iteration
	// multiplier; 1.0 is the default benchmark size).
	source func(scale float64) string
}

// Source returns the assembly text at the given scale (0 means 1.0).
func (w *Workload) Source(scale float64) string {
	if scale <= 0 {
		scale = 1
	}
	return w.source(scale)
}

// All returns the fourteen kernels in SPEC numbering order.
func All() []*Workload {
	return []*Workload{
		{Name: "502.gcc", Behaviour: "jump-table bytecode interpreter over synthetic IR", source: srcGCC},
		{Name: "505.mcf", Behaviour: "pointer chasing across a multi-MiB node pool", WasmSubset: true, source: srcMCF},
		{Name: "508.namd", Behaviour: "FP pairwise-force inner loop (fmadd-heavy)", WasmSubset: true, source: srcNAMD},
		{Name: "510.parest", Behaviour: "sparse matrix-vector products with indexed gathers", source: srcParest},
		{Name: "511.povray", Behaviour: "ray-sphere intersection with FP branches", source: srcPovray},
		{Name: "519.lbm", Behaviour: "streaming 1D lattice stencil over doubles", WasmSubset: true, source: srcLBM},
		{Name: "520.omnetpp", Behaviour: "binary-heap event queue simulation", source: srcOmnetpp},
		{Name: "523.xalancbmk", Behaviour: "string hashing and table probing (byte loads)", source: srcXalanc},
		{Name: "525.x264", Behaviour: "sum-of-absolute-differences over pixel blocks", WasmSubset: true, source: srcX264},
		{Name: "531.deepsjeng", Behaviour: "bitboard search with alpha-beta style branching", WasmSubset: true, source: srcDeepsjeng},
		{Name: "538.imagick", Behaviour: "integer convolution over an image buffer", source: srcImagick},
		{Name: "541.leela", Behaviour: "branchy MCTS-style tree descent (LFI worst case)", source: srcLeela},
		{Name: "544.nab", Behaviour: "FP distance/force kernel with div and sqrt", WasmSubset: true, source: srcNAB},
		{Name: "557.xz", Behaviour: "LZ match finder with hash chains and byte compares", WasmSubset: true, source: srcXZ},
	}
}

// Get returns the named workload.
func Get(name string) (*Workload, bool) {
	for _, w := range All() {
		if w.Name == name {
			return w, true
		}
	}
	return nil, false
}

// WasmSubset returns the 7 kernels used in the WebAssembly comparison.
func WasmSubset() []*Workload {
	var out []*Workload
	for _, w := range All() {
		if w.WasmSubset {
			out = append(out, w)
		}
	}
	return out
}

func iters(scale float64, base int) int {
	n := int(float64(base) * scale)
	if n < 1 {
		n = 1
	}
	return n
}

// prologue/epilogue shared by all kernels: the checksum accumulated in x19
// is stored and written to stdout (8 bytes) so the harness can compare
// results across systems, then the sandbox exits cleanly.
const epilogue = `
finish:
	adrp x1, result
	add x1, x1, :lo12:result
	str x19, [x1]
	mov x0, #1
	mov x2, #8
` + "\tldr x30, [x21, #8]\n\tblr x30\n" + `
	mov x0, #0
` + "\tldr x30, [x21, #0]\n\tblr x30\n" + `
.data
result:
	.quad 0
`

// lcgStep emits xDst = xSrc * A + C for the splitmix-style generator used
// to produce deterministic pseudo-random data in every kernel.
func lcgStep(dst, src string) string {
	return fmt.Sprintf(`	movz x9, #0x4c95, lsl #48
	movk x9, #0x7f2d, lsl #32
	movk x9, #0x4c95, lsl #16
	movk x9, #0x7f2d
	mul %[1]s, %[2]s, x9
	movz x9, #0x1405, lsl #48
	movk x9, #0x7cb0, lsl #32
	movk x9, #0x9fd4, lsl #16
	movk x9, #0x7ab1
	add %[1]s, %[1]s, x9
`, dst, src)
}

var _ = strings.Repeat
var _ = progs.RTCall
var _ = core.RTWrite
