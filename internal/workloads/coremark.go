package workloads

import "fmt"

// CoreMark models the openly available benchmark the paper's artifact
// offers to users without a SPEC license (Appendix A.6.3). Like the real
// CoreMark it mixes the three classic kernels — linked-list processing,
// matrix multiply-accumulate, and a state machine over input bytes — and
// folds a CRC-style checksum over everything.
func CoreMark(scale float64) string {
	n := iters(scale, 14)
	return fmt.Sprintf(`
// CoreMark-like kernel: list + matrix + state machine, CRC-folded.
.globl _start
_start:
	mov x19, #0
	// ---- setup: a 128-node linked list (32-bit next offsets), an 8x8
	// matrix of small ints, and 4KiB of state-machine input.
	adrp x25, list
	add x25, x25, :lo12:list
	mov x26, #0
	mov x10, #11
mklist:
	add x11, x26, #1
	and x11, x11, #127
	lsl x12, x11, #4
	lsl x13, x26, #4
	str w12, [x25, x13]              // next offset
%s	and x11, x10, #0xffff
	lsl x13, x26, #4
	add x13, x13, #8
	str x11, [x25, x13]              // node value
	add x26, x26, #1
	cmp x26, #128
	b.ne mklist

	adrp x27, matrix
	add x27, x27, :lo12:matrix
	mov x26, #0
mkmat:
%s	and x11, x10, #31
	str x11, [x27, x26, lsl #3]
	add x26, x26, #1
	cmp x26, #128
	b.ne mkmat

	adrp x28, input
	add x28, x28, :lo12:input
	mov x26, #0
mkin:
%s	str x10, [x28, x26]
	add x26, x26, #8
	cmp x26, #4096
	b.ne mkin

	mov x20, #%d                     // outer iterations
outer:
	// ---- list run: walk the list, summing values of even nodes.
	mov x9, #0                       // offset of node 0
	mov x12, #0                      // hop count
walk:
	ldr w11, [x25, x9]               // next
	add x13, x9, #8
	ldr x14, [x25, x13]              // value
	tbz x14, #0, evens
	add x19, x19, x14
	b walked
evens:
	eor x19, x19, x14
walked:
	mov x9, x11
	add x12, x12, #1
	cmp x12, #128
	b.ne walk

	// ---- matrix run: one row times one column, accumulate.
	mov x12, #0                      // k
	mov x14, #0                      // acc
matmul:
	ldr x15, [x27, x12, lsl #3]      // A[0][k]
	lsl x16, x12, #3
	add x16, x16, #64
	and x16, x16, #1023
	lsr x17, x16, #3
	ldr x16, [x27, x17, lsl #3]      // B[k][0]-ish
	madd x14, x15, x16, x14
	add x12, x12, #1
	cmp x12, #8
	b.ne matmul
	add x19, x19, x14

	// ---- state machine over 64 input bytes: 4 states on digit/alpha/
	// other classes, CRC-folding the transitions.
	mov x12, #0                      // position
	and x15, x20, #0xfc0             // window start depends on iteration
	mov x16, #0                      // state
smloop:
	add x17, x15, x12
	and x17, x17, #4095
	ldrb w9, [x28, x17]
	and x9, x9, #0x7f
	cmp x9, #0x30
	b.lt sm_other
	cmp x9, #0x3a
	b.lt sm_digit
	cmp x9, #0x41
	b.lt sm_other
	mov x16, #2                      // alpha
	b sm_next
sm_digit:
	mov x16, #1
	b sm_next
sm_other:
	eor x16, x16, #3
sm_next:
	// CRC fold: crc = (crc << 1) ^ state ^ byte, with bit 63 wrap.
	lsr x11, x19, #63
	lsl x19, x19, #1
	eor x19, x19, x11
	eor x19, x19, x16
	eor x19, x19, x9
	add x12, x12, #1
	cmp x12, #64
	b.ne smloop

	subs x20, x20, #1
	b.ne outer
	b finish
%s
.bss
list:
	.space 2048
matrix:
	.space 1024
input:
	.space 4160
`, lcgStep("x10", "x10"), lcgStep("x10", "x10"), lcgStep("x10", "x10"), n, epilogue)
}
