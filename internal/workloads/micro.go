package workloads

import (
	"fmt"

	"lfi/internal/core"
	"lfi/internal/progs"
)

// Microbenchmark programs for Table 5. Each performs N operations in a
// tight loop; the harness divides elapsed virtual time by N.

// SyscallLoop issues n getpid runtime calls.
func SyscallLoop(n int) string {
	return fmt.Sprintf(`
.globl _start
_start:
	movz x20, #%d
	movk x20, #%d, lsl #16
loop:
%s	subs x20, x20, #1
	b.ne loop
	mov x0, #0
%s`, n&0xffff, (n>>16)&0xffff, progs.RTCall(core.RTGetPID), progs.Exit())
}

// PipePing forks a child and ping-pongs one byte over two pipes n times
// (the parent's round-trip count is n). The parent exits with status 0
// after reaping the child.
func PipePing(n int) string {
	return fmt.Sprintf(`
.globl _start
_start:
	// pipe A: parent -> child; pipe B: child -> parent
	adrp x0, fdsA
	add x0, x0, :lo12:fdsA
%s	adrp x0, fdsB
	add x0, x0, :lo12:fdsB
%s	adrp x25, fdsA
	add x25, x25, :lo12:fdsA
	ldr w26, [x25]          // A read end
	ldr w27, [x25, #4]      // A write end
	ldr w28, [x25, #8]      // B read end
	ldr w29, [x25, #12]     // B write end
%s	cbz x0, child
	// parent: close the ends it does not use
	mov x0, x26
%s	mov x0, x29
%s	movz x20, #%d
	movk x20, #%d, lsl #16
ploop:
	mov x0, x27
	adrp x1, buf
	add x1, x1, :lo12:buf
	mov x2, #1
%s	mov x0, x28
	adrp x1, buf
	add x1, x1, :lo12:buf
	mov x2, #1
%s	subs x20, x20, #1
	b.ne ploop
	// close the write end so the child sees EOF and exits
	mov x0, x27
%s	adrp x0, status
	add x0, x0, :lo12:status
%s	mov x0, #0
%s
child:
	mov x0, x27
%s	mov x0, x28
%s	movz x20, #%d
	movk x20, #%d, lsl #16
cloop:
	mov x0, x26
	adrp x1, buf
	add x1, x1, :lo12:buf
	mov x2, #1
%s	cbz x0, cdone           // EOF: parent closed
	mov x0, x29
	adrp x1, buf
	add x1, x1, :lo12:buf
	mov x2, #1
%s	b cloop
cdone:
	mov x0, #0
%s
.bss
fdsA:
	.space 8
fdsB:
	.space 8
buf:
	.space 8
status:
	.space 8
`,
		progs.RTCall(core.RTPipe), progs.RTCall(core.RTPipe),
		progs.RTCall(core.RTFork),
		progs.RTCall(core.RTClose), progs.RTCall(core.RTClose),
		n&0xffff, (n>>16)&0xffff,
		progs.RTCall(core.RTWrite), progs.RTCall(core.RTRead),
		progs.RTCall(core.RTClose), progs.RTCall(core.RTWait), progs.Exit(),
		progs.RTCall(core.RTClose), progs.RTCall(core.RTClose),
		n&0xffff, (n>>16)&0xffff,
		progs.RTCall(core.RTRead), progs.RTCall(core.RTWrite), progs.Exit())
}

// YieldPing yields to the peer pid n times, then exits. Two instances of
// this program (with each other's pids) implement the Table 5 "yield"
// microbenchmark: a direct cross-sandbox call.
func YieldPing(n, peer int) string {
	return fmt.Sprintf(`
.globl _start
_start:
	mov x25, #%d
	movz x20, #%d
	movk x20, #%d, lsl #16
loop:
	mov x0, x25
%s	subs x20, x20, #1
	b.ne loop
	mov x0, #0
%s`, peer, n&0xffff, (n>>16)&0xffff, progs.RTCall(core.RTYield), progs.Exit())
}

// RingPingPassive binds a ring channel on port 5 and echoes n one-byte
// messages back to the sender. Together with RingPingActive it measures
// the cross-sandbox IPC round trip: each hop is a send whose payload is
// handed directly to the blocked receiver (a yield plus channel
// bookkeeping). Load the passive side first so the port is bound before
// the active side connects.
func RingPingPassive(n int) string {
	return fmt.Sprintf(`
.globl _start
_start:
	mov x0, #2
	mov x1, #0
%s	mov x19, x0
	mov x0, x19
	mov x1, #5
%s	movz x20, #%d
	movk x20, #%d, lsl #16
loop:
	mov x0, x19
	adrp x1, buf
	add x1, x1, :lo12:buf
	mov x2, #1
%s	mov x0, x19
	adrp x1, buf
	add x1, x1, :lo12:buf
	mov x2, #1
%s	subs x20, x20, #1
	b.ne loop
	mov x0, #0
%s
.bss
buf:
	.space 8
`, progs.RTCall(core.RTSocket), progs.RTCall(core.RTBind),
		n&0xffff, (n>>16)&0xffff,
		progs.RTCall(core.RTRecv), progs.RTCall(core.RTSend), progs.Exit())
}

// VSubmitPing measures the vectored transition path (Table 5 "direct
// handoff" at batch 1, "vectored ipc" at batch 8): each iteration traps
// once with an RTVSubmit batch of 2*batch one-byte ops over a ring
// channel on port 5 — the active side batch sends then batch recvs, the
// passive side the reverse. Slots are initialized once outside the
// measured loop (the runtime only writes status words back), so the
// steady-state cost is one trap plus per-op dispatch for 2*batch
// operations, with send→recv handoffs replacing scheduler passes. Exits
// 0 on success, 86 if a batch completes short. Load the passive side
// first so the port is bound before the active side connects.
func VSubmitPing(n, batch int, active bool) string {
	slots := 2 * batch
	setup := progs.RTCall(core.RTBind)
	firstOp, secondOp := core.VOpRecv, core.VOpSend
	if active {
		setup = progs.RTCall(core.RTConnect)
		firstOp, secondOp = core.VOpSend, core.VOpRecv
	}
	// initGroup emits one slot-initialization loop: count slots starting
	// at the running slot pointer (x9) and buffer pointer (x10), all with
	// the same op code. Slot layout: op, fd, buf, len=1, flags=0, status=0.
	initGroup := func(label string, op uint64, count int) string {
		return fmt.Sprintf(`	mov x12, #%d
	mov x11, #%d
%s:
	str x12, [x9, #0]
	str x19, [x9, #8]
	str x10, [x9, #16]
	mov x13, #1
	str x13, [x9, #24]
	mov x14, #0
	str x14, [x9, #32]
	str x14, [x9, #40]
	add x9, x9, #64
	add x10, x10, #1
	subs x11, x11, #1
	b.ne %s
`, op, count, label, label)
	}
	return fmt.Sprintf(`
.globl _start
_start:
	mov x0, #2
	mov x1, #1024
%s	mov x19, x0
	mov x0, x19
	mov x1, #5
%s	adrp x9, vring
	add x9, x9, :lo12:vring
	adrp x10, vbuf
	add x10, x10, :lo12:vbuf
%s%s	movz x20, #%d
	movk x20, #%d, lsl #16
loop:
	adrp x0, vring
	add x0, x0, :lo12:vring
	mov x1, #%d
%s	cmp x0, #%d
	b.ne fail
	subs x20, x20, #1
	b.ne loop
	mov x0, #0
%s
fail:
	mov x0, #86
%s
.bss
vring:
	.space %d
vbuf:
	.space %d
`, progs.RTCall(core.RTSocket), setup,
		initGroup("initg1", firstOp, batch), initGroup("initg2", secondOp, batch),
		n&0xffff, (n>>16)&0xffff,
		slots, progs.RTCall(core.RTVSubmit), slots,
		progs.Exit(), progs.Exit(),
		slots*64, slots)
}

// RingPingActive connects to the ring channel on port 5 and ping-pongs
// one byte n times: the peer of RingPingPassive.
func RingPingActive(n int) string {
	return fmt.Sprintf(`
.globl _start
_start:
	mov x0, #2
	mov x1, #0
%s	mov x19, x0
	mov x0, x19
	mov x1, #5
%s	movz x20, #%d
	movk x20, #%d, lsl #16
loop:
	mov x0, x19
	adrp x1, buf
	add x1, x1, :lo12:buf
	mov x2, #1
%s	mov x0, x19
	adrp x1, buf
	add x1, x1, :lo12:buf
	mov x2, #1
%s	subs x20, x20, #1
	b.ne loop
	mov x0, #0
%s
.bss
buf:
	.space 8
`, progs.RTCall(core.RTSocket), progs.RTCall(core.RTConnect),
		n&0xffff, (n>>16)&0xffff,
		progs.RTCall(core.RTSend), progs.RTCall(core.RTRecv), progs.Exit())
}
