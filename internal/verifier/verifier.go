// Package verifier implements the LFI static verifier (§5.2): a single
// linear pass over the text segment of a binary that proves the machine
// code cannot escape its sandbox. Nothing upstream — not the compiler, not
// the rewriter, not the assembler — is trusted; every security property is
// checked directly on the encoded instructions.
//
// The verifier enforces three properties:
//
//  1. Loads, stores, and indirect branches only go through registers that
//     always hold valid sandbox addresses (x18, x23, x24, sp, x30), or use
//     the guarded addressing mode [x21, wN, uxtw].
//  2. Reserved registers are only written by invariant-preserving
//     instructions: x21 never, x18/x23/x24 only by the canonical guard,
//     x22 only through its 32-bit view, sp and x30 only by guarded or
//     self-limiting sequences.
//  3. Only instructions from the safe-instruction allowlist appear (no
//     svc, no writes to system registers other than the thread pointer).
package verifier

import (
	"encoding/binary"
	"fmt"

	"lfi/internal/arm64"
	"lfi/internal/core"
)

// Config parameterizes verification.
type Config struct {
	// TextOff is the byte offset of the text segment within its sandbox;
	// it is needed to bounds-check PC-relative literal loads.
	TextOff uint64

	// AllowLLSC permits the load-linked/store-conditional instructions.
	// §7.1 describes disallowing them to close the S2C timerless
	// side channel on Apple cores.
	AllowLLSC bool

	// AllowTLS permits mrs/msr of tpidr_el0 (thread-local storage base).
	AllowTLS bool

	// NoLoads verifies the weaker "fault isolation" property of §6.1:
	// stores and control flow are still fully checked, but loads that do
	// not write protected registers may use any addressing mode. Sandboxes
	// verified this way can read (but not modify or disturb) their
	// neighbors.
	NoLoads bool
}

// DefaultConfig matches the paper's default deployment.
func DefaultConfig() Config {
	return Config{AllowLLSC: true, AllowTLS: true}
}

// Error reports a verification failure at a specific instruction.
type Error struct {
	Offset uint64 // byte offset within the text segment
	Word   uint32
	Inst   string // disassembly if decodable
	Msg    string
}

func (e *Error) Error() string {
	if e.Inst != "" {
		return fmt.Sprintf("verifier: +%#x: %q: %s", e.Offset, e.Inst, e.Msg)
	}
	return fmt.Sprintf("verifier: +%#x: word %#08x: %s", e.Offset, e.Word, e.Msg)
}

// Stats summarizes a successful verification, for throughput reporting.
type Stats struct {
	Bytes  int
	Insts  int
	Guards int // canonical guard instructions seen
}

// Verify checks the text segment. It returns nil exactly when every
// instruction satisfies the LFI invariants.
func Verify(text []byte, cfg Config) (Stats, error) {
	var st Stats
	if len(text)%4 != 0 {
		return st, &Error{Offset: uint64(len(text) &^ 3), Msg: "text size not a multiple of 4"}
	}
	// Check TextOff against the margin before adding the length: the sum
	// cfg.TextOff+len(text) can wrap for a hostile TextOff near 2^64,
	// making oversized text appear to fit.
	if cfg.TextOff > core.MaxCodeOffset || uint64(len(text)) > core.MaxCodeOffset-cfg.TextOff {
		return st, &Error{Msg: fmt.Sprintf("text extends past the 128MiB code margin (%#x)", core.MaxCodeOffset)}
	}
	if cfg.TextOff < core.MinCodeOffset {
		return st, &Error{Msg: fmt.Sprintf("text begins before the code region (%#x)", core.MinCodeOffset)}
	}
	n := len(text) / 4

	// Decode pass. BAD entries fail immediately: every reachable byte
	// must decode because any instruction can be a jump target.
	insts := make([]arm64.Inst, n)
	for i := 0; i < n; i++ {
		w := binary.LittleEndian.Uint32(text[i*4:])
		inst, err := arm64.Decode(w)
		if err != nil {
			return st, &Error{Offset: uint64(i * 4), Word: w, Msg: "undecodable instruction"}
		}
		insts[i] = inst
	}
	st.Bytes = len(text)
	st.Insts = n

	v := &verify{cfg: cfg, insts: insts}
	for i := 0; i < n; i++ {
		if err := v.check(i); err != nil {
			err.Offset = uint64(i * 4)
			err.Inst = insts[i].String()
			return st, err
		}
	}
	st.Guards = v.guards
	return st, nil
}

type verify struct {
	cfg    Config
	insts  []arm64.Inst
	guards int
}

func vErr(format string, args ...any) *Error {
	return &Error{Msg: fmt.Sprintf(format, args...)}
}

// validAddrReg reports whether reads of r always see a valid sandbox
// address.
func validAddrReg(r arm64.Reg) bool {
	switch r {
	case core.RegScratch, core.RegHoist1, core.RegHoist2, arm64.SP, arm64.X30:
		return true
	}
	return false
}

func (v *verify) check(i int) *Error {
	inst := &v.insts[i]

	// Property 3: allowlist.
	if err := v.allowlisted(inst); err != nil {
		return err
	}

	// Property 1: memory accesses and indirect branches.
	if inst.Op.IsMemory() {
		if err := v.checkMemory(i); err != nil {
			return err
		}
	}
	switch inst.Op {
	case arm64.BR, arm64.BLR:
		if !validAddrReg(inst.Rn) {
			return vErr("indirect branch through unguarded register %v", inst.Rn)
		}
	case arm64.RET:
		if !validAddrReg(inst.Rn) {
			return vErr("return through unguarded register %v", inst.Rn)
		}
	}

	// Property 2: writes to protected registers.
	return v.checkWrites(i)
}

func (v *verify) allowlisted(inst *arm64.Inst) *Error {
	switch inst.Op {
	case arm64.SVC:
		return vErr("system calls are forbidden; use the runtime-call table")
	case arm64.LDXR, arm64.LDAXR, arm64.STXR, arm64.STLXR:
		if !v.cfg.AllowLLSC {
			return vErr("ll/sc instructions disabled by configuration (S2C side channel)")
		}
	case arm64.MRS:
		switch inst.Imm {
		case sysTPIDR:
			if !v.cfg.AllowTLS {
				return vErr("tls access disabled by configuration")
			}
		case sysCNTVCT:
			// Virtual counter reads are safe.
		default:
			return vErr("read of system register %#x", inst.Imm)
		}
	case arm64.MSR:
		if inst.Imm != sysTPIDR || !v.cfg.AllowTLS {
			return vErr("write to system register %#x", inst.Imm)
		}
	case arm64.BAD:
		return vErr("undecodable instruction")
	}
	return nil
}

const (
	sysTPIDR  = 1<<14 | 3<<11 | 13<<7 | 0<<3 | 2
	sysCNTVCT = 1<<14 | 3<<11 | 14<<7 | 0<<3 | 2
)

// checkMemory enforces property 1 for the load/store at index i.
func (v *verify) checkMemory(i int) *Error {
	inst := &v.insts[i]

	// Under the no-loads policy, plain loads are exempt from address
	// checks; loads that write x30 or use writeback on protected
	// registers still go through the full rules below.
	if v.cfg.NoLoads && inst.Op.IsLoad() && !inst.Mem.WritesBack() {
		x30Dest := inst.Rd.X() == arm64.X30 ||
			(inst.Op == arm64.LDP && inst.Rm.X() == arm64.X30)
		if !x30Dest {
			return nil
		}
	}

	// Exclusives address through Rn with no offset.
	switch inst.Op {
	case arm64.LDXR, arm64.LDAXR, arm64.STXR, arm64.STLXR, arm64.LDAR, arm64.STLR:
		if !validAddrReg(inst.Rn) {
			return vErr("exclusive access through unguarded register %v", inst.Rn)
		}
		return nil
	}

	m := inst.Mem
	switch m.Mode {
	case arm64.AddrLiteral:
		// PC-relative: the target must stay inside this sandbox. Derived
		// in uint64 with explicit wrap guards (the same style as the
		// Verify entry check): summing in int64 could wrap for a hostile
		// TextOff combined with a large displacement and sneak an
		// escaping target past the bound.
		pc := v.cfg.TextOff + uint64(i)*4 // cannot wrap: both bounded by MaxCodeOffset
		target := pc + uint64(inst.Imm)   // two's-complement; wrap checked below
		if inst.Imm >= 0 && target < pc {
			return vErr("literal load displacement wraps the address space")
		}
		if inst.Imm < 0 && target > pc {
			return vErr("literal load reaches below the sandbox")
		}
		if target >= core.SandboxSize {
			return vErr("literal load escapes the sandbox (target offset %#x)", target)
		}
		return nil

	case arm64.AddrBase, arm64.AddrImm, arm64.AddrPre, arm64.AddrPost:
		if m.Base == core.RegBase {
			// Only the runtime-call idiom may address off x21.
			return v.checkRuntimeCall(i)
		}
		if !validAddrReg(m.Base) {
			return vErr("access through unguarded base %v", m.Base)
		}
		// Most immediate offsets are bounded by their encodings to at most
		// 32760 bytes — well within the 48KiB guard regions — but the
		// q-register scaled form reaches 65520, past the guard and into the
		// neighboring slot. Bound the reach explicitly: from the worst-case
		// base (one byte below the slot end) a 16-byte access at offset
		// GuardSize-16 still ends inside the guard.
		immHi, immLo := int64(core.GuardSize)-16, -int64(core.GuardSize)
		if m.Base.IsSP() {
			// sp is not confined to the slot the way x18/x23/x24/x30 are:
			// the §4.2 elisions let it drift by up to SPMaxDrift (one
			// un-reguarded add/sub plus index writeback) at the moment an
			// access executes. Shrink the immediate bounds by that drift
			// so the worst-case access still lands inside the guard bands.
			immHi -= int64(core.SPMaxDrift)
			immLo += int64(core.SPMaxDrift)
		}
		if int64(m.Imm) > immHi || int64(m.Imm) < immLo {
			return vErr("immediate offset %d reaches past the guard region", m.Imm)
		}
		if m.WritesBack() {
			// Writeback modifies the base: only sp self-limits (§4.2);
			// the reserved always-valid registers must not drift.
			if !m.Base.IsSP() {
				return vErr("writeback through protected register %v", m.Base)
			}
		}
		return nil

	case arm64.AddrRegUXTW:
		if m.Base != core.RegBase {
			return vErr("guarded addressing requires base x21, got %v", m.Base)
		}
		if !m.Index.Is32() || m.Index.IsSP() {
			return vErr("guarded addressing requires a w-register index")
		}
		// Any shift amount keeps the zero-extended index below 2^36 —
		// still within... no: a shifted 32-bit index can exceed 4GiB.
		// The paper's guarded mode uses no shift; allow the hardware
		// forms only when the scaled offset cannot escape the guard
		// region, i.e. never — so reject nonzero shifts.
		if m.Amount > 0 {
			return vErr("guarded addressing must not scale the index")
		}
		return nil

	default:
		return vErr("unsafe addressing mode %v", m.Mode)
	}
}

// checkRuntimeCall validates "ldr x30, [x21, #n]" immediately followed by
// "blr x30" (§4.4).
func (v *verify) checkRuntimeCall(i int) *Error {
	inst := &v.insts[i]
	if inst.Op != arm64.LDR || inst.Rd != arm64.X30 {
		return vErr("only the runtime-call load may address off x21")
	}
	m := inst.Mem
	if m.Mode != arm64.AddrImm && m.Mode != arm64.AddrBase {
		return vErr("runtime-call load must use immediate addressing")
	}
	if m.Imm < 0 || int64(m.Imm) >= core.MaxTableOffset || m.Imm%8 != 0 {
		return vErr("runtime-call table offset %d out of range", m.Imm)
	}
	if i+1 >= len(v.insts) {
		return vErr("runtime-call load at end of text")
	}
	next := &v.insts[i+1]
	if next.Op != arm64.BLR || next.Rn != arm64.X30 {
		return vErr("runtime-call load must be followed by blr x30")
	}
	return nil
}

// checkWrites enforces property 2 for the instruction at index i.
func (v *verify) checkWrites(i int) *Error {
	inst := &v.insts[i]
	var dsts [4]arm64.Reg
	for _, d := range inst.DestRegs(dsts[:0]) {
		switch {
		case d.X() == core.RegBase:
			return vErr("write to x21 (sandbox base)")

		case d == core.RegScratch || d == core.RegHoist1 || d == core.RegHoist2:
			if !core.IsGuard(inst, d) {
				return vErr("%v written by a non-guard instruction", d)
			}
			v.guards++

		case d.IsGP() && core.IsReserved(d) && d.Is32():
			// w18/w23/w24 writes would break the valid-address invariant.
			if d.X() != core.RegAddr32 {
				return vErr("32-bit write to reserved register %v", d)
			}
			// w22 writes are always fine (they zero-extend).

		case d == core.RegAddr32:
			// 64-bit writes to x22 could set high bits; only the exact
			// zero-extending forms are allowed. The rewriter never emits
			// one, so reject.
			return vErr("64-bit write to x22")

		case d.X() == arm64.X30:
			if err := v.checkX30Write(i, d); err != nil {
				return err
			}

		case d.IsSP():
			if err := v.checkSPWrite(i); err != nil {
				return err
			}
		}
	}
	return nil
}

// checkX30Write allows: bl/blr (hardware-written return address), the
// canonical guard add x30, x21, wN, uxtw, and the runtime-call load
// (validated by checkMemory).
func (v *verify) checkX30Write(i int, d arm64.Reg) *Error {
	inst := &v.insts[i]
	if d.Is32() {
		return vErr("32-bit write to w30")
	}
	switch inst.Op {
	case arm64.BL, arm64.BLR:
		return nil
	case arm64.LDR:
		// Only the immediate-mode runtime-call idiom is exempt: that
		// shape is fully validated by checkRuntimeCall (table-bounded
		// offset, followed by blr x30). A guarded register-offset load
		// (ldr x30, [x21, wN, uxtw]) also has base x21 but reads
		// arbitrary sandbox memory into x30, which ret would then trust;
		// it must fall through to the re-guard requirement below.
		if inst.Mem.Base == core.RegBase &&
			(inst.Mem.Mode == arm64.AddrImm || inst.Mem.Mode == arm64.AddrBase) {
			return nil // runtime-call idiom, checked by checkMemory
		}
	}
	if core.IsGuard(inst, arm64.X30) {
		v.guards++
		return nil
	}
	// Any other write (load or arithmetic) is permitted only when the very
	// next instruction re-guards x30 (§4.2): the dirty value is confined
	// to the fall-through path, which immediately passes the guard.
	if i+1 < len(v.insts) && core.IsGuard(&v.insts[i+1], arm64.X30) {
		return nil
	}
	return vErr("x30 written without an immediately following guard")
}

// checkSPWrite allows: the sp guard (add sp, x21, x22), writeback from
// sp-based accesses (checked in checkMemory), small add/sub sp, sp, #imm
// followed linearly by an sp access (§4.2), and any sp write immediately
// followed by the two-instruction guard sequence.
func (v *verify) checkSPWrite(i int) *Error {
	inst := &v.insts[i]

	// Writeback on an sp-based access was validated by checkMemory.
	if inst.Op.IsMemory() && inst.Mem.WritesBack() && inst.Mem.Base.IsSP() {
		return nil
	}

	// The guard itself: add sp, x21, x22 (x22 always has 32 zero top bits).
	if isSPGuardAdd(inst) {
		return nil
	}

	// add/sub sp, sp, #imm with imm < 2^10 and a guaranteed sp access
	// before the next branch or sp write (§4.2). This elision is only
	// sound for the 64-bit form: "add wsp, wsp, #imm" would zero the top
	// 32 bits of sp and escape downward.
	if (inst.Op == arm64.ADD || inst.Op == arm64.SUB) &&
		inst.Rm == arm64.RegNone && inst.Rn == arm64.SP && inst.Rd == arm64.SP &&
		inst.Imm >= 0 && inst.Imm < 1024 {
		if v.spAccessBeforeEscape(i + 1) {
			return nil
		}
	}

	// Any other sp write must be followed immediately by the guard pair.
	if i+2 < len(v.insts) && isSPGuardMov(&v.insts[i+1]) && isSPGuardAdd(&v.insts[i+2]) {
		return nil
	}
	return vErr("sp written without a guard")
}

// isSPGuardMov matches "mov w22, wsp" (add w22, wsp, #0).
func isSPGuardMov(inst *arm64.Inst) bool {
	return inst.Op == arm64.ADD && inst.Rd == core.RegAddr32.W() &&
		inst.Rn == arm64.WSP && inst.Rm == arm64.RegNone && inst.Imm == 0
}

// isSPGuardAdd matches "add sp, x21, x22".
func isSPGuardAdd(inst *arm64.Inst) bool {
	return inst.Op == arm64.ADD && inst.Rd == arm64.SP &&
		inst.Rn == core.RegBase && inst.Rm == core.RegAddr32 &&
		(inst.Ext == arm64.ExtNone || inst.Ext == arm64.ExtUXTX || inst.Ext == arm64.ExtLSL) &&
		inst.Amount <= 0
}

// spAccessBeforeEscape scans forward from index j for a memory access
// based on sp, failing if a branch, another sp write, or the end of text
// intervenes.
func (v *verify) spAccessBeforeEscape(j int) bool {
	for ; j < len(v.insts); j++ {
		inst := &v.insts[j]
		if inst.Op.IsBranch() {
			return false
		}
		if inst.Op.IsMemory() {
			base := inst.Mem.Base
			switch inst.Op {
			case arm64.LDXR, arm64.LDAXR, arm64.STXR, arm64.STLXR, arm64.LDAR, arm64.STLR:
				base = inst.Rn
			}
			if base.IsSP() {
				return true
			}
		}
		var dsts [4]arm64.Reg
		for _, d := range inst.DestRegs(dsts[:0]) {
			if d.IsSP() {
				return false
			}
		}
	}
	return false
}
