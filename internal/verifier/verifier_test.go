package verifier

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"testing"

	"lfi/internal/arm64"
	"lfi/internal/core"
	"lfi/internal/emu"
	"lfi/internal/mem"
	"lfi/internal/rewrite"
)

const pageSize = 16 * 1024

// asmText assembles raw assembly and returns just the text bytes.
func asmText(t *testing.T, src string) []byte {
	t.Helper()
	f, err := arm64.ParseFile(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	img, err := arm64.Assemble(f, arm64.Layout{
		TextBase: core.SlotBase(1) + core.MinCodeOffset,
		PageSize: pageSize,
	})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return img.Text
}

func verifySrc(t *testing.T, src string) error {
	t.Helper()
	cfg := DefaultConfig()
	cfg.TextOff = core.MinCodeOffset
	_, err := Verify(asmText(t, src), cfg)
	return err
}

// rewriteAndVerify runs the full pipeline: rewrite -> assemble -> verify.
func rewriteAndVerify(t *testing.T, src string, opts core.Options) error {
	t.Helper()
	f, err := arm64.ParseFile(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	nf, _, err := rewrite.Rewrite(f, opts)
	if err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	cfg := DefaultConfig()
	cfg.TextOff = core.MinCodeOffset
	_, err = Verify(asmText(t, nf.String()), cfg)
	if err != nil {
		t.Logf("rewritten assembly:\n%s", nf.String())
	}
	return err
}

// workload exercises every transformation class.
const workload = `
_start:
	adrp x1, buf
	add x1, x1, :lo12:buf
	ldr x0, [x1]
	ldr x2, [x1, #8]
	str x0, [x1, #16]
	str x0, [x1, #24]
	str x0, [x1, #32]
	mov x9, #1
	ldr x3, [x1, x9, lsl #3]
	ldr x4, [x1, w9, uxtw #3]
	ldr x5, [x1, w9, sxtw #3]
	stp x29, x30, [sp, #-32]!
	sub sp, sp, #64
	str x0, [sp, #8]
	ldr x6, [sp, #8]
	add sp, sp, #64
	ldr x6, [sp]
	bl helper
	ldp x29, x30, [sp], #32
	adrp x7, table
	add x7, x7, :lo12:table
	ldr x8, [x7]
	blr x8
	ldr x30, [x21, #16]
	blr x30
	mov x10, #4096
	ldr x11, [x1, #2048]
retry:
	ldxr x12, [x1]
	add x12, x12, #1
	stxr w13, x12, [x1]
	cbnz w13, retry
	ldr d0, [x1, #8]
	fadd d1, d0, d0
	str d1, [x1, #40]
	brk #0
helper:
	sub sp, sp, #4096
	str x0, [sp]
	add sp, sp, #4096
	ret
leaf:
	mov x0, #1
	ret
.data
table:
	.quad leaf
buf:
	.space 128
`

func TestPipelineVerifies(t *testing.T) {
	for _, opts := range []core.Options{
		{Opt: core.O0},
		{Opt: core.O1},
		{Opt: core.O2},
		{Opt: core.O2, NoLoads: false},
		{Opt: core.O1, DisableSPOpts: true},
	} {
		if err := rewriteAndVerify(t, workload, opts); err != nil {
			t.Errorf("%+v: %v", opts, err)
		}
	}
}

func TestNoLoadsPipelineVerifiesWithRelaxedChecker(t *testing.T) {
	// no-loads output intentionally leaves loads unguarded, so the strict
	// verifier must reject it — that mode trades the full-isolation
	// property away (§6.1).
	err := rewriteAndVerify(t, workload, core.Options{Opt: core.O2, NoLoads: true})
	if err == nil {
		t.Error("strict verifier accepted no-loads output")
	}
	// The matching relaxed policy accepts it while still checking stores
	// and control flow.
	f, err := arm64.ParseFile(workload)
	if err != nil {
		t.Fatal(err)
	}
	nf, _, err := rewrite.Rewrite(f, core.Options{Opt: core.O2, NoLoads: true})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.TextOff = core.MinCodeOffset
	cfg.NoLoads = true
	if _, err := Verify(asmText(t, nf.String()), cfg); err != nil {
		t.Errorf("relaxed verifier rejected no-loads output: %v", err)
	}
	// Stores must still be caught under the relaxed policy.
	if _, err := Verify(asmText(t, "_start:\n\tstr x0, [x1]\n\tret\n"), cfg); err == nil {
		t.Error("relaxed verifier accepted an unguarded store")
	}
}

func TestRejectsUnsafePatterns(t *testing.T) {
	cases := []struct {
		name string
		src  string
		sub  string
	}{
		{"raw load", "\tldr x0, [x1]", "unguarded base"},
		{"raw store", "\tstr x0, [x1, #8]", "unguarded base"},
		{"raw store regoff", "\tstr x0, [x1, x2]", "unsafe addressing"},
		{"svc", "\tsvc #0", "system calls are forbidden"},
		{"write x21", "\tmov x21, x0", "write to x21"},
		{"write x21 arith", "\tadd x21, x21, #1", "write to x21"},
		{"write x18 arith", "\tadd x18, x18, #8", "non-guard"},
		{"write w18", "\tmov w18, w0", "32-bit write"},
		{"write x22 64bit", "\tmov x22, x0", "64-bit write to x22"},
		{"write x23 load", "\tldr x23, [sp]", "non-guard"},
		{"br unguarded", "\tbr x1", "unguarded register"},
		{"blr unguarded", "\tblr x1", "unguarded register"},
		{"ret unguarded", "\tret x1", "unguarded register"},
		{"x30 load unguarded", "\tldr x30, [sp]\n\tnop", "x30"},
		{"x30 mov unguarded", "\tmov x30, x1\n\tnop", "x30"},
		{"sp mov unguarded", "\tmov sp, x1\n\tnop\n\tnop", "sp written"},
		{"sp big sub unguarded", "\tsub sp, sp, #4095\n\tstr x0, [sp]", "sp written"},
		{"sp small sub no access", "\tsub sp, sp, #16\n\tb 8", "sp written"},
		{"guarded addr with shift", "\tldr x0, [x21, w1, uxtw #3]", "must not scale"},
		{"x21 base non-idiom", "\tldr x0, [x21, #8]", "runtime-call"},
		{"rtcall bad offset", "\tldr x30, [x21, #124]\n\tblr x30", "table offset"},
		{"rtcall huge offset", "\tldr x30, [x21, #4096]\n\tblr x30", "table offset"},
		{"rtcall no blr", "\tldr x30, [x21, #16]\n\tnop", "followed by blr"},
		{"writeback on x18", "\tldr x0, [x18, #8]!", "writeback through protected"},
		{"writeback on x30", "\tstr x0, [x30], #8", "writeback through protected"},
		{"mrs forbidden", "\tmrs x0, fpcr", "system register"},
		{"msr forbidden", "\tmsr fpsr, x0", "system register"},
		// A q-register scaled immediate reaches up to 65520 bytes — past the
		// 48KiB guard region and into the neighboring sandbox.
		{"q imm past guard", "\tldr q0, [x23, #65520]", "past the guard"},
		{"q imm past guard store", "\tstr q0, [x18, #49152]", "past the guard"},
	}
	for _, c := range cases {
		err := verifySrc(t, "_start:\n"+c.src+"\n\tret\n")
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.sub) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.sub)
		}
	}
}

func TestAcceptsSafePatterns(t *testing.T) {
	cases := []string{
		"\tldr x0, [sp, #8]",
		"\tstr x0, [sp, #-16]!\n\tldr x0, [sp], #16",
		"\tldr x0, [x18]",
		"\tldr x0, [x23, #32760]",
		"\tldr q0, [x23, #32752]",
		"\tldr q0, [x18, #49136]",
		"\tstr x0, [x24, #8]",
		"\tldr x0, [x21, w1, uxtw]",
		"\tstr q0, [x21, w5, uxtw]",
		"\tadd x18, x21, w1, uxtw\n\tldr x0, [x18]",
		"\tadd x23, x21, w9, uxtw",
		"\tadd x30, x21, w30, uxtw\n\tret",
		"\tldr x30, [x21, #16]\n\tblr x30",
		"\tsub sp, sp, #16\n\tstr x0, [sp]",
		"\tsub sp, sp, #4096\n\tmov w22, wsp\n\tadd sp, x21, x22",
		"\tmov w22, w1",
		"\tadd w22, w1, #22",
		"\tbr x18",
		"\tblr x23",
		"\tret",
		"\tbl 8",
		"\tmrs x0, tpidr_el0\n\tmsr tpidr_el0, x0",
		"\tdmb ish\n\tisb\n\tnop",
		"\tldxr x0, [x18]\n\tstxr w1, x0, [x18]",
		"\tldr x0, 8",
	}
	for _, src := range cases {
		if err := verifySrc(t, "_start:\n"+src+"\n\tret\n"); err != nil {
			t.Errorf("%q rejected: %v", src, err)
		}
	}
}

func TestLiteralBounds(t *testing.T) {
	// A literal load reaching before the sandbox start must be rejected.
	// TextOff is MinCodeOffset = 64KiB; a -128KiB literal escapes.
	err := verifySrc(t, "_start:\n\tldr x0, -131072\n\tret\n")
	if err == nil || !strings.Contains(err.Error(), "literal") {
		t.Errorf("escaping literal: %v", err)
	}
}

func TestTextPlacementBounds(t *testing.T) {
	text := asmText(t, "_start:\n\tret\n")
	cfg := DefaultConfig()
	cfg.TextOff = 0
	if _, err := Verify(text, cfg); err == nil {
		t.Error("text below the code region accepted")
	}
	cfg.TextOff = core.MaxCodeOffset
	if _, err := Verify(text, cfg); err == nil {
		t.Error("text inside the 128MiB margin accepted")
	}
	cfg.TextOff = core.MinCodeOffset
	if _, err := Verify(text, cfg); err != nil {
		t.Errorf("valid placement rejected: %v", err)
	}
}

// TestTextOffOverflow is the regression test for the bounds-check overflow:
// cfg.TextOff+len(text) wraps for TextOff near 2^64, so the old check
// ("sum > MaxCodeOffset") concluded the text fit inside the code region.
func TestTextOffOverflow(t *testing.T) {
	text := asmText(t, "_start:\n\tret\n\tnop\n")
	for _, off := range []uint64{
		^uint64(0),                         // max: any length wraps
		^uint64(0) - uint64(len(text)) + 1, // sum wraps to exactly 0
		^uint64(0) - uint64(len(text)),     // sum wraps to ^uint64(0)... -1
		^uint64(0) &^ 3,                    // aligned max
		core.MaxCodeOffset + 4,             // just past the margin, no wrap
	} {
		cfg := DefaultConfig()
		cfg.TextOff = off
		if _, err := Verify(text, cfg); err == nil {
			t.Errorf("TextOff=%#x accepted; overflow check defeated", off)
		}
	}
	// The margin boundary itself must still work: text ending exactly at
	// MaxCodeOffset is legal.
	cfg := DefaultConfig()
	cfg.TextOff = core.MaxCodeOffset - uint64(len(text))
	if _, err := Verify(text, cfg); err != nil {
		t.Errorf("text ending exactly at the margin rejected: %v", err)
	}
}

// errOffset verifies src and requires rejection by a *verifier.Error with
// the exact byte offset and message substring.
func errOffset(t *testing.T, name, src string, cfg Config, wantOff uint64, sub string) {
	t.Helper()
	f, err := arm64.ParseFile(src)
	if err != nil {
		t.Fatalf("%s: parse: %v", name, err)
	}
	img, err := arm64.Assemble(f, arm64.Layout{
		TextBase: core.SlotBase(1) + core.MinCodeOffset,
		PageSize: pageSize,
	})
	if err != nil {
		t.Fatalf("%s: assemble: %v", name, err)
	}
	_, err = Verify(img.Text, cfg)
	if err == nil {
		t.Errorf("%s: accepted", name)
		return
	}
	verr, ok := err.(*Error)
	if !ok {
		t.Errorf("%s: error is %T, not *verifier.Error", name, err)
		return
	}
	if verr.Offset != wantOff {
		t.Errorf("%s: rejected at +%#x, want +%#x (%v)", name, verr.Offset, wantOff, verr)
	}
	if !strings.Contains(verr.Msg, sub) {
		t.Errorf("%s: message %q does not mention %q", name, verr.Msg, sub)
	}
}

// TestAdversarialRejections covers the attack shapes a linear-pass verifier
// must reject precisely because control flow can land anywhere: a guard
// staged through a non-reserved register (a jump target between the guard
// and its access would skip the guard), protected-register writes that look
// dead because a branch hops over them, and stores under the NoLoads
// policy. Each must fail with a *verifier.Error at the exact instruction.
func TestAdversarialRejections(t *testing.T) {
	strict := DefaultConfig()
	strict.TextOff = core.MinCodeOffset
	noLoads := strict
	noLoads.NoLoads = true

	// A "guard" into x9 does not protect the access at +8: any jump target
	// between them (here the explicit label mid) lets an attacker enter
	// with an arbitrary x9. The verifier must reject the access itself.
	errOffset(t, "guard into non-reserved register",
		"_start:\n\tadd x9, x21, w0, uxtw\nmid:\n\tldr x0, [x9]\n\tret\n",
		strict, 4, "unguarded base")

	// Same shape for a store, reached around the guard by a real branch:
	// cbz jumps straight to mid, skipping the staging add entirely.
	errOffset(t, "store through non-reserved staged guard",
		"_start:\n\tcbz x0, mid\n\tadd x9, x21, w0, uxtw\nmid:\n\tstr x2, [x9]\n\tret\n",
		strict, 8, "unguarded base")

	// A non-guard write to a reserved register is rejected even when a
	// branch appears to jump over it: the linear pass assumes every
	// instruction is reachable, so the write at +4 is the finding.
	errOffset(t, "reserved-register write hopped by branch",
		"_start:\n\tcbz x0, over\n\tadd x18, x18, #8\nover:\n\tstr x2, [x18]\n\tret\n",
		strict, 4, "non-guard")

	// The store stays rejected when it is only reachable via the branch:
	// mid-sequence control flow does not launder an unguarded store.
	errOffset(t, "unguarded store reachable via branch",
		"_start:\n\tcbz x0, deep\n\tret\ndeep:\n\tstr x2, [x1, #16]\n\tret\n",
		strict, 8, "unguarded base")

	// NoLoads mode exempts loads but never stores.
	errOffset(t, "noloads store",
		"_start:\n\tldr x0, [x1]\n\tstr x0, [x1, #8]\n\tret\n",
		noLoads, 4, "unguarded base")

	// NoLoads also keeps checking loads that write x30 (control flow) and
	// loads with writeback on protected registers.
	errOffset(t, "noloads x30 load",
		"_start:\n\tldr x30, [x1]\n\tnop\n\tret\n",
		noLoads, 0, "unguarded base")
	errOffset(t, "noloads writeback on x23",
		"_start:\n\tldr x0, [x23, #8]!\n\tret\n",
		noLoads, 0, "writeback through protected")
}

func TestConfigKnobs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TextOff = core.MinCodeOffset
	cfg.AllowLLSC = false
	if _, err := Verify(asmText(t, "_start:\n\tldxr x0, [x18]\n\tret\n"), cfg); err == nil {
		t.Error("ll/sc accepted with AllowLLSC=false")
	}
	cfg = DefaultConfig()
	cfg.TextOff = core.MinCodeOffset
	cfg.AllowTLS = false
	if _, err := Verify(asmText(t, "_start:\n\tmrs x0, tpidr_el0\n\tret\n"), cfg); err == nil {
		t.Error("tls accepted with AllowTLS=false")
	}
}

func TestVerifyStats(t *testing.T) {
	text := asmText(t, "_start:\n\tadd x18, x21, w1, uxtw\n\tldr x0, [x18]\n\tret\n")
	cfg := DefaultConfig()
	cfg.TextOff = core.MinCodeOffset
	st, err := Verify(text, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Insts != 3 || st.Bytes != 12 || st.Guards != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestMutationContainment is the soundness property behind the whole
// system: any text the verifier accepts — including randomly corrupted
// ones — must be unable to touch memory outside its sandbox when run.
func TestMutationContainment(t *testing.T) {
	f, err := arm64.ParseFile(workload)
	if err != nil {
		t.Fatal(err)
	}
	nf, _, err := rewrite.Rewrite(f, core.Options{Opt: core.O2})
	if err != nil {
		t.Fatal(err)
	}
	slot := core.SlotBase(1)
	img, err := arm64.Assemble(nf, arm64.Layout{
		TextBase: slot + core.MinCodeOffset,
		PageSize: pageSize,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.TextOff = core.MinCodeOffset

	if _, err := Verify(img.Text, cfg); err != nil {
		t.Fatalf("baseline does not verify: %v", err)
	}

	hostBase := uint64(0x7000_0000_0000)
	rng := rand.New(rand.NewSource(12345))
	trials := 400
	if testing.Short() {
		trials = 100
	} else if os.Getenv("LFI_MUTATION_TRIALS") != "" {
		fmt.Sscanf(os.Getenv("LFI_MUTATION_TRIALS"), "%d", &trials)
	}
	accepted, rejected := 0, 0
	for trial := 0; trial < trials; trial++ {
		text := append([]byte(nil), img.Text...)
		// Flip one or two random bits in one random instruction word.
		word := rng.Intn(len(text) / 4)
		bit := uint(rng.Intn(32))
		w := binary.LittleEndian.Uint32(text[word*4:])
		w ^= 1 << bit
		if trial%3 == 0 {
			w ^= 1 << uint(rng.Intn(32))
		}
		binary.LittleEndian.PutUint32(text[word*4:], w)

		if _, err := Verify(text, cfg); err != nil {
			rejected++
			continue
		}
		accepted++

		// The verifier accepted the mutant: run it and check containment.
		as := mem.NewAddrSpace(pageSize)
		up := func(v uint64) uint64 { return (v + pageSize - 1) &^ (pageSize - 1) }
		if err := as.Map(slot, core.CallTableSize, mem.PermRead); err != nil {
			t.Fatal(err)
		}
		for rc := core.RuntimeCall(0); rc < core.NumRuntimeCalls; rc++ {
			as.WriteForce(le64(hostBase+uint64(rc)*16), slot+uint64(rc.TableOffset()))
		}
		if err := as.Map(img.TextAddr, up(uint64(len(text))), mem.PermRX); err != nil {
			t.Fatal(err)
		}
		as.WriteForce(text, img.TextAddr)
		dataEnd := up(img.BSSAddr + img.BSSSize)
		if dataEnd > img.DataAddr {
			if err := as.Map(img.DataAddr, dataEnd-img.DataAddr, mem.PermRW); err != nil {
				t.Fatal(err)
			}
			as.WriteForce(img.Data, img.DataAddr)
		}
		if len(img.ROData) > 0 {
			if err := as.Map(img.RODataAddr, up(uint64(len(img.ROData))), mem.PermRead); err != nil {
				t.Fatal(err)
			}
			as.WriteForce(img.ROData, img.RODataAddr)
		}
		stackTop := slot + 512*1024*1024
		if err := as.Map(stackTop-1024*1024, 1024*1024, mem.PermRW); err != nil {
			t.Fatal(err)
		}

		c := emu.New(as)
		c.SetHostCallRegion(hostBase, 4096)
		c.PC = img.Entry
		c.SP = stackTop
		c.X[21] = slot
		c.X[18] = slot + core.MinCodeOffset
		c.X[23] = slot + core.MinCodeOffset
		c.X[24] = slot + core.MinCodeOffset
		c.X[30] = slot + core.MinCodeOffset

		for steps := 0; steps < 3; steps++ { // allow a few host-call resumes
			tr := c.Run(200_000)
			if tr == nil {
				t.Fatal("run returned nil trap")
			}
			switch tr.Kind {
			case emu.TrapHostCall:
				// Runtime would handle it; emulate a return.
				c.PC = c.X[30]
				if c.PC>>32 != slot>>32 {
					t.Fatalf("trial %d: runtime call with x30 outside sandbox: %#x", trial, c.PC)
				}
				continue
			case emu.TrapMemFault:
				if tr.Fault.Access == mem.AccessExec {
					// Direct branches can reach up to 128MiB past the
					// sandbox, where §3's code margin guarantees nothing
					// executable lives: the fetch traps harmlessly. Data
					// accesses, however, must never leave the slot.
					lo, hi := slot-core.CodeMargin, slot+core.SandboxSize
					if tr.Fault.Addr < lo || tr.Fault.Addr >= hi {
						t.Fatalf("trial %d (word %d bit %d): pc escaped to %#x\n%v",
							trial, word, bit, tr.Fault.Addr, tr)
					}
				} else if tr.Fault.Addr>>32 != slot>>32 {
					t.Fatalf("trial %d (word %d bit %d): escaped to %#x\n%v",
						trial, word, bit, tr.Fault.Addr, tr)
				}
			case emu.TrapSVC:
				t.Fatalf("trial %d: svc executed in verified code", trial)
			}
			break
		}
	}
	if accepted == 0 {
		t.Error("no mutants were accepted; mutation test is vacuous")
	}
	if rejected == 0 {
		t.Error("no mutants were rejected; verifier may be a no-op")
	}
	t.Logf("mutants: %d accepted, %d rejected", accepted, rejected)
}

func le64(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

// TestX30RegOffsetLoadEscape is the regression test for the soundness
// hole the internal/prove sweep found: checkX30Write exempted every LDR
// whose base is x21, assuming the runtime-call idiom, but the idiom is
// immediate-mode only. A guarded register-offset load into x30
// (ldr x30, [x21, wN, uxtw]) reads attacker-chosen sandbox memory, and a
// following ret would then jump to an arbitrary host address.
func TestX30RegOffsetLoadEscape(t *testing.T) {
	for _, src := range []string{
		"\tldr x30, [x21, w0, uxtw]\n\tret",
		"\tldr x30, [x21, w0, uxtw]\n\tnop",
	} {
		err := verifySrc(t, "_start:\n"+src+"\n")
		if err == nil {
			t.Errorf("%q accepted: arbitrary host jump", src)
		} else if !strings.Contains(err.Error(), "x30") {
			t.Errorf("%q: error %q does not mention x30", src, err)
		}
	}
	// The rewriter's actual output stays legal: x30-loading accesses get
	// an immediate re-guard, confining the dirty value to fall-through.
	if err := verifySrc(t, "_start:\n\tldr x30, [x21, w0, uxtw]\n\tadd x30, x21, w30, uxtw\n\tret\n"); err != nil {
		t.Errorf("re-guarded x30 load rejected: %v", err)
	}
	// The immediate-mode runtime-call idiom is untouched by the fix.
	if err := verifySrc(t, "_start:\n\tldr x30, [x21, #16]\n\tblr x30\n\tret\n"); err != nil {
		t.Errorf("runtime-call idiom rejected: %v", err)
	}
}

// checkImm runs checkMemory on a synthetic immediate-mode access. The
// interesting boundary offsets are not all encodable (q-form immediates
// step by 16, so GuardSize-15 ... GuardSize-1 have no concrete word),
// but the bound must hold for any decoded Imm value.
func checkImm(t *testing.T, src string, imm int64) *Error {
	t.Helper()
	inst, err := arm64.ParseInst(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	inst.Mem.Mode = arm64.AddrImm
	inst.Mem.Imm = int32(imm)
	cfg := DefaultConfig()
	cfg.TextOff = core.MinCodeOffset
	v := &verify{cfg: cfg, insts: []arm64.Inst{inst}}
	return v.checkMemory(0)
}

// TestGuardImmediateEdges pins the immediate-offset bounds at their
// exact edges, both the encodable ones (through the assembler) and the
// synthetic in-between values: accepted at GuardSize-16, rejected at
// GuardSize-12, with the mirrored negative bound, and the sp bounds
// shrunk by SPMaxDrift on both sides.
func TestGuardImmediateEdges(t *testing.T) {
	guard := int64(core.GuardSize)
	drift := int64(core.SPMaxDrift)

	// Encodable edges, end to end through the assembler.
	accepts := []string{
		"\tldr q0, [x18, #49136]",    // GuardSize-16: last byte is the window's last
		"\tstr q0, [x23, #49136]",    // mirrored on the other hoisted base
		"\tstr q0, [sp, #47088]",     // GuardSize-16-SPMaxDrift
		"\tldur x0, [x18, #-256]",    // widest encodable negative unscaled
		"\tldp q0, q1, [sp, #-1024]", // widest encodable negative pair
	}
	for _, src := range accepts {
		if err := verifySrc(t, "_start:\n"+src+"\n\tret\n"); err != nil {
			t.Errorf("%q rejected: %v", src, err)
		}
	}
	rejects := []string{
		"\tldr q0, [x18, #49152]", // GuardSize: one step past
		"\tstr q0, [x24, #49152]",
		"\tstr q0, [sp, #47104]", // sp bound + 16: one q step past
		"\tstr q0, [sp, #49136]", // the pre-fix sp bound (drift escape)
	}
	for _, src := range rejects {
		if err := verifySrc(t, "_start:\n"+src+"\n\tret\n"); err == nil {
			t.Errorf("%q accepted", src)
		}
	}

	// Synthetic non-encodable boundaries: the bound is exact, not
	// rounded to the nearest encoding.
	cases := []struct {
		src  string
		imm  int64
		want bool // accepted?
	}{
		{"ldr q0, [x18]", guard - 16, true},
		{"ldr q0, [x18]", guard - 12, false}, // GuardSize-12: reaches 3 bytes past
		{"ldr x0, [x18]", guard - 16, true},  // bound is per-offset, not per-extent
		{"ldr x0, [x18]", guard - 15, false},
		{"ldr x0, [x18]", -guard, true}, // mirrored negative bound
		{"ldr x0, [x18]", -guard - 1, false},
		{"str q0, [sp]", guard - 16 - drift, true},
		{"str q0, [sp]", guard - 12 - drift, false},
		{"str q0, [sp]", -(guard - drift), true}, // mirrored sp bound
		{"str q0, [sp]", -(guard - drift) - 1, false},
	}
	for _, c := range cases {
		err := checkImm(t, c.src, c.imm)
		if c.want && err != nil {
			t.Errorf("%s imm=%d rejected: %v", c.src, c.imm, err)
		}
		if !c.want && err == nil {
			t.Errorf("%s imm=%d accepted", c.src, c.imm)
		}
	}
}

// TestSPDriftRepro replays the drift-escape chain the old GuardSize-16
// sp bound permitted: an elided sub leaves sp below the slot, and a
// maximal q store then reached past the guard band. The shrunk bound
// rejects the store; the same chain at the new bound stays legal.
func TestSPDriftRepro(t *testing.T) {
	if err := verifySrc(t, "_start:\n\tsub sp, sp, #1008\n\tstr q0, [sp, #49136]\n\tret\n"); err == nil {
		t.Error("pre-fix drift chain accepted")
	}
	if err := verifySrc(t, "_start:\n\tsub sp, sp, #1008\n\tstr q0, [sp, #47088]\n\tret\n"); err != nil {
		t.Errorf("in-bound drift chain rejected: %v", err)
	}
}
