package arm64

import "fmt"

// DecodeError reports an undecodable instruction word.
type DecodeError struct {
	Word uint32
}

func (e *DecodeError) Error() string {
	return fmt.Sprintf("arm64: cannot decode %#08x", e.Word)
}

func bit(w uint32, n uint) uint32        { return (w >> n) & 1 }
func field(w uint32, hi, lo uint) uint32 { return (w >> lo) & ((1 << (hi - lo + 1)) - 1) }

func signExtend(v uint32, bits uint) int64 {
	shift := 64 - bits
	return int64(uint64(v)<<shift) >> shift
}

func gpReg(n uint32, is64 bool, spOK bool) Reg {
	if n == 31 {
		if spOK {
			if is64 {
				return SP
			}
			return WSP
		}
		if is64 {
			return XZR
		}
		return WZR
	}
	if is64 {
		return XReg(int(n))
	}
	return WReg(int(n))
}

func fpRegBits(n uint32, b int) Reg {
	switch b {
	case 8:
		return BReg(int(n))
	case 16:
		return HReg(int(n))
	case 32:
		return SReg(int(n))
	case 64:
		return DReg(int(n))
	default:
		return QReg(int(n))
	}
}

func fpRegType(n, ftype uint32) (Reg, bool) {
	switch ftype {
	case 0:
		return SReg(int(n)), true
	case 1:
		return DReg(int(n)), true
	case 3:
		return HReg(int(n)), true
	}
	return RegNone, false
}

// Decode decodes one 4-byte instruction word. Branch targets come back as
// byte offsets in Imm (Label is left empty).
func Decode(w uint32) (Inst, error) {
	var i Inst
	i.Rd, i.Rn, i.Rm, i.Ra = RegNone, RegNone, RegNone, RegNone
	i.Amount = -1
	bad := func() (Inst, error) { return Inst{Op: BAD}, &DecodeError{Word: w} }

	switch {
	case field(w, 28, 24) == 0x10: // ADR/ADRP
		imm := signExtend(field(w, 23, 5)<<2|field(w, 30, 29), 21)
		if bit(w, 31) == 1 {
			i.Op = ADRP
			imm <<= 12
		} else {
			i.Op = ADR
		}
		i.Rd = gpReg(field(w, 4, 0), true, false)
		i.Imm = imm
		return i, nil

	case field(w, 28, 24) == 0x11: // add/sub immediate
		op, s := bit(w, 30), bit(w, 29)
		is64 := bit(w, 31) == 1
		sh := field(w, 23, 22)
		if sh > 1 {
			return bad()
		}
		imm := int64(field(w, 21, 10))
		if sh == 1 {
			imm <<= 12
		}
		i.Op = [4]Op{ADD, ADDS, SUB, SUBS}[op<<1|s]
		i.Rd = gpReg(field(w, 4, 0), is64, s == 0)
		i.Rn = gpReg(field(w, 9, 5), is64, true)
		i.Imm = imm
		i.Ext = ExtNone
		return i, nil

	case field(w, 28, 23) == 0x24: // logical immediate
		opc := field(w, 30, 29)
		is64 := bit(w, 31) == 1
		n, immr, imms := bit(w, 22), field(w, 21, 16), field(w, 15, 10)
		if !is64 && n == 1 {
			return bad()
		}
		v, ok := DecodeBitmask(n, immr, imms, is64)
		if !ok {
			return bad()
		}
		i.Op = [4]Op{AND, ORR, EOR, ANDS}[opc]
		i.Rd = gpReg(field(w, 4, 0), is64, opc != 3)
		i.Rn = gpReg(field(w, 9, 5), is64, false)
		i.Imm = int64(v)
		return i, nil

	case field(w, 28, 23) == 0x25: // move wide
		opc := field(w, 30, 29)
		is64 := bit(w, 31) == 1
		hw := field(w, 22, 21)
		if opc == 1 || (!is64 && hw > 1) {
			return bad()
		}
		i.Op = [4]Op{MOVN, BAD, MOVZ, MOVK}[opc]
		i.Rd = gpReg(field(w, 4, 0), is64, false)
		i.Imm = int64(field(w, 20, 5))
		i.Amount = int8(hw * 16)
		return i, nil

	case field(w, 28, 23) == 0x26: // bitfield
		opc := field(w, 30, 29)
		is64 := bit(w, 31) == 1
		if opc == 3 || bit(w, 22) != bit(w, 31) {
			return bad()
		}
		if !is64 && (bit(w, 21) == 1 || bit(w, 15) == 1) {
			return bad() // 32-bit immr/imms must be < 32
		}
		i.Op = [3]Op{SBFM, BFM, UBFM}[opc]
		i.Rd = gpReg(field(w, 4, 0), is64, false)
		i.Rn = gpReg(field(w, 9, 5), is64, false)
		i.Imm = int64(field(w, 21, 16))
		i.Amount = int8(field(w, 15, 10))
		return i, nil

	case field(w, 28, 23) == 0x27: // extract
		is64 := bit(w, 31) == 1
		if bit(w, 30) != 0 || bit(w, 29) != 0 || bit(w, 21) != 0 ||
			bit(w, 22) != bit(w, 31) || (!is64 && bit(w, 15) == 1) {
			return bad()
		}
		i.Op = EXTR
		i.Rd = gpReg(field(w, 4, 0), is64, false)
		i.Rn = gpReg(field(w, 9, 5), is64, false)
		i.Rm = gpReg(field(w, 20, 16), is64, false)
		i.Imm = int64(field(w, 15, 10))
		return i, nil

	case field(w, 30, 26) == 0x05: // B/BL
		if bit(w, 31) == 1 {
			i.Op = BL
		} else {
			i.Op = B
		}
		i.Imm = signExtend(field(w, 25, 0), 26) * 4
		return i, nil

	case field(w, 31, 24) == 0x54: // B.cond
		if bit(w, 4) == 1 {
			return bad()
		}
		i.Op = BCOND
		i.Cond = Cond(field(w, 3, 0))
		i.Imm = signExtend(field(w, 23, 5), 19) * 4
		return i, nil

	case field(w, 30, 25) == 0x1a: // CBZ/CBNZ
		is64 := bit(w, 31) == 1
		if bit(w, 24) == 1 {
			i.Op = CBNZ
		} else {
			i.Op = CBZ
		}
		i.Rd = gpReg(field(w, 4, 0), is64, false)
		i.Imm = signExtend(field(w, 23, 5), 19) * 4
		return i, nil

	case field(w, 30, 25) == 0x1b: // TBZ/TBNZ
		if bit(w, 24) == 1 {
			i.Op = TBNZ
		} else {
			i.Op = TBZ
		}
		b := bit(w, 31)<<5 | field(w, 23, 19)
		i.Rd = gpReg(field(w, 4, 0), b > 31, false)
		i.Amount = int8(b)
		i.Imm = signExtend(field(w, 18, 5), 14) * 4
		return i, nil

	case field(w, 31, 25) == 0x6b: // BR/BLR/RET
		if field(w, 4, 0) != 0 || field(w, 15, 10) != 0 || field(w, 20, 16) != 0x1f {
			return bad()
		}
		switch field(w, 24, 21) {
		case 0:
			i.Op = BR
		case 1:
			i.Op = BLR
		case 2:
			i.Op = RET
		default:
			return bad()
		}
		i.Rn = gpReg(field(w, 9, 5), true, false)
		return i, nil

	case field(w, 31, 24) == 0xd4: // SVC/BRK
		switch {
		case field(w, 23, 21) == 0 && field(w, 4, 0) == 1:
			i.Op = SVC
		case field(w, 23, 21) == 1 && field(w, 4, 0) == 0:
			i.Op = BRK
		default:
			return bad()
		}
		i.Imm = int64(field(w, 20, 5))
		return i, nil

	case field(w, 31, 22) == 0x354: // system
		switch {
		case w == 0xd503201f:
			i.Op = NOP
			return i, nil
		case w&0xfffff0ff == 0xd50330bf:
			i.Op = DMB
			i.Imm = int64(field(w, 11, 8))
			return i, nil
		case w&0xfffff0ff == 0xd503309f:
			i.Op = DSB
			i.Imm = int64(field(w, 11, 8))
			return i, nil
		case w&0xfffff0ff == 0xd50330df:
			i.Op = ISB
			return i, nil
		case field(w, 31, 20) == 0xd53: // MRS
			i.Op = MRS
			i.Rd = gpReg(field(w, 4, 0), true, false)
			i.Imm = int64(field(w, 19, 5))
			return i, nil
		case field(w, 31, 20) == 0xd51: // MSR
			i.Op = MSR
			i.Rd = gpReg(field(w, 4, 0), true, false)
			i.Imm = int64(field(w, 19, 5))
			return i, nil
		}
		return bad()
	}

	// Loads and stores: bit27==1 && bit25==0.
	if bit(w, 27) == 1 && bit(w, 25) == 0 {
		return decodeLoadStore(w)
	}

	// Data processing, register: bits[27:25] == 101.
	if field(w, 27, 25) == 0x5 {
		return decodeDPReg(w)
	}

	// Scalar floating point: bits[28:25] == 1111 with bits[31:30] either 00
	// (most FP ops) or sf:0 for the int<->fp conversions.
	if bit(w, 30) == 0 && field(w, 28, 24)&0x1e == 0x1e {
		return decodeFP(w)
	}

	return Inst{Op: BAD}, &DecodeError{Word: w}
}

func decodeLoadStore(w uint32) (Inst, error) {
	var i Inst
	i.Rd, i.Rn, i.Rm, i.Ra = RegNone, RegNone, RegNone, RegNone
	i.Amount = -1
	bad := func() (Inst, error) { return Inst{Op: BAD}, &DecodeError{Word: w} }
	v := bit(w, 26)

	switch {
	case field(w, 29, 24) == 0x08: // exclusives
		size := field(w, 31, 30)
		if size < 2 {
			return bad()
		}
		is64 := size == 3
		o2, l, o1, o0 := bit(w, 23), bit(w, 22), bit(w, 21), bit(w, 15)
		if o1 != 0 || field(w, 14, 10) != 0x1f {
			return bad()
		}
		if l == 1 && field(w, 20, 16) != 0x1f {
			return bad() // loads have Rs == 11111
		}
		if l == 0 && o2 == 1 && field(w, 20, 16) != 0x1f {
			return bad() // stlr has Rs == 11111
		}
		switch {
		case o2 == 0 && l == 1 && o0 == 0:
			i.Op = LDXR
		case o2 == 0 && l == 1 && o0 == 1:
			i.Op = LDAXR
		case o2 == 0 && l == 0 && o0 == 0:
			i.Op = STXR
		case o2 == 0 && l == 0 && o0 == 1:
			i.Op = STLXR
		case o2 == 1 && l == 1 && o0 == 1:
			i.Op = LDAR
		case o2 == 1 && l == 0 && o0 == 1:
			i.Op = STLR
		default:
			return bad()
		}
		i.Rd = gpReg(field(w, 4, 0), is64, false)
		i.Rn = gpReg(field(w, 9, 5), true, true)
		if i.Op == STXR || i.Op == STLXR {
			i.Rm = gpReg(field(w, 20, 16), false, false) // status is a W reg
		}
		return i, nil

	case field(w, 29, 27) == 0x3 && field(w, 25, 24) == 0: // literal
		opc := field(w, 31, 30)
		i.Op = LDR
		if v == 1 {
			switch opc {
			case 0:
				i.Rd = SReg(int(field(w, 4, 0)))
			case 1:
				i.Rd = DReg(int(field(w, 4, 0)))
			case 2:
				i.Rd = QReg(int(field(w, 4, 0)))
			default:
				return bad()
			}
		} else {
			switch opc {
			case 0:
				i.Rd = gpReg(field(w, 4, 0), false, false)
			case 1:
				i.Rd = gpReg(field(w, 4, 0), true, false)
			case 2:
				i.Op = LDRSW
				i.Rd = gpReg(field(w, 4, 0), true, false)
			default:
				return bad()
			}
		}
		i.Mem = Mem{Mode: AddrLiteral}
		i.Imm = signExtend(field(w, 23, 5), 19) * 4
		return i, nil

	case field(w, 29, 27) == 0x5: // pairs
		opc := field(w, 31, 30)
		mode := field(w, 25, 23)
		l := bit(w, 22)
		var scale uint
		var mk func(n uint32) Reg
		switch {
		case v == 1 && opc == 0:
			scale, mk = 2, func(n uint32) Reg { return SReg(int(n)) }
		case v == 1 && opc == 1:
			scale, mk = 3, func(n uint32) Reg { return DReg(int(n)) }
		case v == 1 && opc == 2:
			scale, mk = 4, func(n uint32) Reg { return QReg(int(n)) }
		case v == 0 && opc == 0:
			scale, mk = 2, func(n uint32) Reg { return gpReg(n, false, false) }
		case v == 0 && opc == 2:
			scale, mk = 3, func(n uint32) Reg { return gpReg(n, true, false) }
		default:
			return bad()
		}
		if l == 1 {
			i.Op = LDP
		} else {
			i.Op = STP
		}
		var am AddrMode
		switch mode {
		case 1:
			am = AddrPost
		case 2:
			am = AddrImm
		case 3:
			am = AddrPre
		default:
			return bad()
		}
		i.Rd = mk(field(w, 4, 0))
		i.Rm = mk(field(w, 14, 10))
		i.Mem = Mem{
			Mode: am,
			Base: gpReg(field(w, 9, 5), true, true),
			Imm:  int32(signExtend(field(w, 21, 15), 7) << scale),
		}
		return i, nil

	case field(w, 29, 27) == 0x7: // single register
		size := field(w, 31, 30)
		opc := field(w, 23, 22)
		op, rt, scale, ok := lsOpReg(size, v, opc, field(w, 4, 0))
		if !ok {
			return bad()
		}
		i.Op = op
		i.Rd = rt
		base := gpReg(field(w, 9, 5), true, true)
		if bit(w, 24) == 1 { // unsigned scaled immediate
			i.Mem = Mem{Mode: AddrImm, Base: base, Imm: int32(field(w, 21, 10) << scale)}
			return i, nil
		}
		if bit(w, 21) == 1 { // register offset
			if field(w, 11, 10) != 2 {
				return bad()
			}
			opt := field(w, 15, 13)
			sbit := bit(w, 12)
			amt := int8(-1)
			if sbit == 1 && scale > 0 {
				amt = int8(scale)
			}
			m := Mem{Base: base, Amount: amt}
			switch opt {
			case 2:
				m.Mode = AddrRegUXTW
				m.Index = gpReg(field(w, 20, 16), false, false)
			case 3:
				m.Mode = AddrReg
				m.Index = gpReg(field(w, 20, 16), true, false)
				if m.Amount < 0 {
					m.Amount = 0 // plain [xN, xM] is canonically amount 0
				}
			case 6:
				m.Mode = AddrRegSXTW
				m.Index = gpReg(field(w, 20, 16), false, false)
			case 7:
				m.Mode = AddrRegSXTX
				m.Index = gpReg(field(w, 20, 16), true, false)
			default:
				return bad()
			}
			i.Mem = m
			return i, nil
		}
		imm9 := int32(signExtend(field(w, 20, 12), 9))
		switch field(w, 11, 10) {
		case 0: // unscaled
			i.Mem = Mem{Mode: AddrImm, Base: base, Imm: imm9}
		case 1:
			i.Mem = Mem{Mode: AddrPost, Base: base, Imm: imm9}
		case 3:
			i.Mem = Mem{Mode: AddrPre, Base: base, Imm: imm9}
		default:
			return bad()
		}
		return i, nil
	}
	return bad()
}

// lsOpReg maps (size, V, opc) to the canonical op, transfer register view
// and scale for single-register loads/stores.
func lsOpReg(size, v, opc, rt uint32) (Op, Reg, uint, bool) {
	if v == 1 {
		switch {
		case opc == 0 || opc == 1: // 8..64-bit scalar
			var r Reg
			var sc uint
			switch size {
			case 0:
				r, sc = BReg(int(rt)), 0
			case 1:
				r, sc = HReg(int(rt)), 1
			case 2:
				r, sc = SReg(int(rt)), 2
			default:
				r, sc = DReg(int(rt)), 3
			}
			if opc == 1 {
				return LDR, r, sc, true
			}
			return STR, r, sc, true
		case size == 0 && opc == 3:
			return LDR, QReg(int(rt)), 4, true
		case size == 0 && opc == 2:
			return STR, QReg(int(rt)), 4, true
		}
		return BAD, RegNone, 0, false
	}
	switch size {
	case 0:
		switch opc {
		case 0:
			return STRB, gpReg(rt, false, false), 0, true
		case 1:
			return LDRB, gpReg(rt, false, false), 0, true
		case 2:
			return LDRSB, gpReg(rt, true, false), 0, true
		case 3:
			return LDRSB, gpReg(rt, false, false), 0, true
		}
	case 1:
		switch opc {
		case 0:
			return STRH, gpReg(rt, false, false), 1, true
		case 1:
			return LDRH, gpReg(rt, false, false), 1, true
		case 2:
			return LDRSH, gpReg(rt, true, false), 1, true
		case 3:
			return LDRSH, gpReg(rt, false, false), 1, true
		}
	case 2:
		switch opc {
		case 0:
			return STR, gpReg(rt, false, false), 2, true
		case 1:
			return LDR, gpReg(rt, false, false), 2, true
		case 2:
			return LDRSW, gpReg(rt, true, false), 2, true
		}
	case 3:
		switch opc {
		case 0:
			return STR, gpReg(rt, true, false), 3, true
		case 1:
			return LDR, gpReg(rt, true, false), 3, true
		}
	}
	return BAD, RegNone, 0, false
}

func decodeDPReg(w uint32) (Inst, error) {
	var i Inst
	i.Rd, i.Rn, i.Rm, i.Ra = RegNone, RegNone, RegNone, RegNone
	i.Amount = -1
	bad := func() (Inst, error) { return Inst{Op: BAD}, &DecodeError{Word: w} }
	is64 := bit(w, 31) == 1

	switch {
	case field(w, 28, 24) == 0x0a: // logical shifted register
		opc := field(w, 30, 29)
		n := bit(w, 21)
		ops := [8]Op{AND, BIC, ORR, ORN, EOR, EON, ANDS, BICS}
		i.Op = ops[opc<<1|n]
		i.Rd = gpReg(field(w, 4, 0), is64, false)
		i.Rn = gpReg(field(w, 9, 5), is64, false)
		i.Rm = gpReg(field(w, 20, 16), is64, false)
		i.Ext = [4]Extend{ExtLSL, ExtLSR, ExtASR, ExtROR}[field(w, 23, 22)]
		i.Amount = int8(field(w, 15, 10))
		if !is64 && i.Amount > 31 {
			return bad()
		}
		if i.Amount == 0 && i.Ext == ExtLSL {
			i.Ext = ExtNone
			i.Amount = -1
		}
		return i, nil

	case field(w, 28, 24) == 0x0b && bit(w, 21) == 0: // add/sub shifted
		op, s := bit(w, 30), bit(w, 29)
		if field(w, 23, 22) == 3 {
			return bad()
		}
		i.Op = [4]Op{ADD, ADDS, SUB, SUBS}[op<<1|s]
		i.Rd = gpReg(field(w, 4, 0), is64, false)
		i.Rn = gpReg(field(w, 9, 5), is64, false)
		i.Rm = gpReg(field(w, 20, 16), is64, false)
		i.Ext = [3]Extend{ExtLSL, ExtLSR, ExtASR}[field(w, 23, 22)]
		i.Amount = int8(field(w, 15, 10))
		if !is64 && i.Amount > 31 {
			return bad()
		}
		if i.Amount == 0 && i.Ext == ExtLSL {
			i.Ext = ExtNone
			i.Amount = -1
		}
		return i, nil

	case field(w, 28, 24) == 0x0b && bit(w, 21) == 1: // add/sub extended
		op, s := bit(w, 30), bit(w, 29)
		if field(w, 23, 22) != 0 {
			return bad()
		}
		i.Op = [4]Op{ADD, ADDS, SUB, SUBS}[op<<1|s]
		i.Rd = gpReg(field(w, 4, 0), is64, s == 0)
		i.Rn = gpReg(field(w, 9, 5), is64, true)
		opt := field(w, 15, 13)
		rmIs64 := is64 && (opt&3) == 3
		i.Rm = gpReg(field(w, 20, 16), rmIs64, false)
		i.Ext = extendFromOption(opt, is64)
		i.Amount = int8(field(w, 12, 10))
		if i.Amount > 4 {
			return bad()
		}
		if i.Amount == 0 {
			i.Amount = -1 // "uxtw" and "uxtw #0" are the same encoding
		}
		return i, nil

	case field(w, 28, 21) == 0xd4: // conditional select
		op, op2 := bit(w, 30), field(w, 11, 10)
		if op2 > 1 || bit(w, 29) == 1 {
			return bad()
		}
		i.Op = [4]Op{CSEL, CSINC, CSINV, CSNEG}[op<<1|op2]
		i.Rd = gpReg(field(w, 4, 0), is64, false)
		i.Rn = gpReg(field(w, 9, 5), is64, false)
		i.Rm = gpReg(field(w, 20, 16), is64, false)
		i.Cond = Cond(field(w, 15, 12))
		return i, nil

	case field(w, 28, 21) == 0xd2 && bit(w, 29) == 1: // cond compare
		if bit(w, 10) != 0 || bit(w, 4) != 0 {
			return bad()
		}
		if bit(w, 30) == 1 {
			i.Op = CCMP
		} else {
			i.Op = CCMN
		}
		i.Rn = gpReg(field(w, 9, 5), is64, false)
		i.Cond = Cond(field(w, 15, 12))
		i.Amount = int8(field(w, 3, 0))
		if bit(w, 11) == 1 {
			i.Imm = int64(field(w, 20, 16))
		} else {
			i.Rm = gpReg(field(w, 20, 16), is64, false)
		}
		return i, nil

	case field(w, 28, 21) == 0xd6 && bit(w, 30) == 0: // 2-source
		var op Op
		switch field(w, 15, 10) {
		case 0x2:
			op = UDIV
		case 0x3:
			op = SDIV
		case 0x8:
			op = LSLV
		case 0x9:
			op = LSRV
		case 0xa:
			op = ASRV
		case 0xb:
			op = RORV
		default:
			return bad()
		}
		i.Op = op
		i.Rd = gpReg(field(w, 4, 0), is64, false)
		i.Rn = gpReg(field(w, 9, 5), is64, false)
		i.Rm = gpReg(field(w, 20, 16), is64, false)
		return i, nil

	case field(w, 28, 21) == 0xd6 && bit(w, 30) == 1: // 1-source
		if field(w, 20, 16) != 0 || bit(w, 29) != 0 {
			return bad()
		}
		var op Op
		switch field(w, 15, 10) {
		case 0:
			op = RBIT
		case 1:
			op = REV16
		case 2:
			if is64 {
				op = REV32
			} else {
				op = REV
			}
		case 3:
			if !is64 {
				return bad()
			}
			op = REV
		case 4:
			op = CLZ
		case 5:
			op = CLS
		default:
			return bad()
		}
		i.Op = op
		i.Rd = gpReg(field(w, 4, 0), is64, false)
		i.Rn = gpReg(field(w, 9, 5), is64, false)
		return i, nil

	case field(w, 28, 24) == 0x1b: // 3-source
		if field(w, 30, 29) != 0 {
			return bad()
		}
		op31, o0 := field(w, 23, 21), bit(w, 15)
		i.Rd = gpReg(field(w, 4, 0), is64, false)
		i.Rm = gpReg(field(w, 20, 16), is64, false)
		i.Rn = gpReg(field(w, 9, 5), is64, false)
		i.Ra = gpReg(field(w, 14, 10), is64, false)
		switch {
		case op31 == 0 && o0 == 0:
			i.Op = MADD
		case op31 == 0 && o0 == 1:
			i.Op = MSUB
		case op31 == 1 && o0 == 0 && is64:
			i.Op = SMADDL
			i.Rn = gpReg(field(w, 9, 5), false, false)
			i.Rm = gpReg(field(w, 20, 16), false, false)
		case op31 == 5 && o0 == 0 && is64:
			i.Op = UMADDL
			i.Rn = gpReg(field(w, 9, 5), false, false)
			i.Rm = gpReg(field(w, 20, 16), false, false)
		case op31 == 2 && o0 == 0 && is64:
			i.Op = SMULH
			i.Ra = RegNone
		case op31 == 6 && o0 == 0 && is64:
			i.Op = UMULH
			i.Ra = RegNone
		default:
			return bad()
		}
		return i, nil
	}
	return bad()
}

func decodeFP(w uint32) (Inst, error) {
	var i Inst
	i.Rd, i.Rn, i.Rm, i.Ra = RegNone, RegNone, RegNone, RegNone
	i.Amount = -1
	bad := func() (Inst, error) { return Inst{Op: BAD}, &DecodeError{Word: w} }
	ftype := field(w, 23, 22)

	if field(w, 28, 24) == 0x1f { // FMADD/FMSUB
		rd, ok := fpRegType(field(w, 4, 0), ftype)
		if !ok {
			return bad()
		}
		rn, _ := fpRegType(field(w, 9, 5), ftype)
		rm, _ := fpRegType(field(w, 20, 16), ftype)
		ra, _ := fpRegType(field(w, 14, 10), ftype)
		if bit(w, 21) == 1 {
			return bad()
		}
		if bit(w, 15) == 1 {
			i.Op = FMSUB
		} else {
			i.Op = FMADD
		}
		i.Rd, i.Rn, i.Rm, i.Ra = rd, rn, rm, ra
		return i, nil
	}
	if field(w, 28, 24) != 0x1e || bit(w, 21) != 1 {
		return bad()
	}

	switch {
	case field(w, 11, 10) == 2: // 2-source: fmul/fdiv/fadd/fsub
		if field(w, 15, 12) > 3 {
			return bad()
		}
		rd, ok := fpRegType(field(w, 4, 0), ftype)
		if !ok {
			return bad()
		}
		rn, _ := fpRegType(field(w, 9, 5), ftype)
		rm, _ := fpRegType(field(w, 20, 16), ftype)
		i.Op = [4]Op{FMUL, FDIV, FADD, FSUB}[field(w, 15, 12)]
		i.Rd, i.Rn, i.Rm = rd, rn, rm
		return i, nil

	case field(w, 11, 10) == 3: // FCSEL
		rd, ok := fpRegType(field(w, 4, 0), ftype)
		if !ok {
			return bad()
		}
		rn, _ := fpRegType(field(w, 9, 5), ftype)
		rm, _ := fpRegType(field(w, 20, 16), ftype)
		i.Op = FCSEL
		i.Rd, i.Rn, i.Rm = rd, rn, rm
		i.Cond = Cond(field(w, 15, 12))
		return i, nil

	case field(w, 12, 10) == 4: // FMOV immediate
		rd, ok := fpRegType(field(w, 4, 0), ftype)
		if !ok {
			return bad()
		}
		if field(w, 9, 5) != 0 {
			return bad()
		}
		i.Op = FMOV
		i.Rd = rd
		i.Imm = int64(vfpExpandImm8(field(w, 20, 13)))
		return i, nil

	case field(w, 13, 10) == 8: // FCMP
		rn, ok := fpRegType(field(w, 9, 5), ftype)
		if !ok {
			return bad()
		}
		i.Op = FCMP
		i.Rn = rn
		if field(w, 4, 0) == 8 {
			i.Rm = RegNone // compare with 0.0
		} else if field(w, 4, 0) == 0 {
			i.Rm, _ = fpRegType(field(w, 20, 16), ftype)
		} else {
			return bad()
		}
		return i, nil

	case field(w, 14, 10) == 0x10: // 1-source
		opcode := field(w, 20, 15)
		rn, ok := fpRegType(field(w, 9, 5), ftype)
		if !ok {
			return bad()
		}
		switch opcode {
		case 0:
			i.Op = FMOV
			i.Rd, _ = fpRegType(field(w, 4, 0), ftype)
		case 1:
			i.Op = FABS
			i.Rd, _ = fpRegType(field(w, 4, 0), ftype)
		case 2:
			i.Op = FNEG
			i.Rd, _ = fpRegType(field(w, 4, 0), ftype)
		case 3:
			i.Op = FSQRT
			i.Rd, _ = fpRegType(field(w, 4, 0), ftype)
		case 4, 5, 7:
			i.Op = FCVT
			i.Rd, ok = fpRegType(field(w, 4, 0), opcode&3)
			if !ok {
				return bad()
			}
		default:
			return bad()
		}
		i.Rn = rn
		return i, nil

	case field(w, 15, 10) == 0: // int <-> fp
		is64 := bit(w, 31) == 1
		rmode, opcode := field(w, 20, 19), field(w, 18, 16)
		switch {
		case rmode == 0 && opcode == 2: // SCVTF
			i.Op = SCVTF
			i.Rd, _ = fpRegType(field(w, 4, 0), ftype)
			i.Rn = gpReg(field(w, 9, 5), is64, false)
		case rmode == 0 && opcode == 3: // UCVTF
			i.Op = UCVTF
			i.Rd, _ = fpRegType(field(w, 4, 0), ftype)
			i.Rn = gpReg(field(w, 9, 5), is64, false)
		case rmode == 3 && opcode == 0:
			i.Op = FCVTZS
			i.Rd = gpReg(field(w, 4, 0), is64, false)
			i.Rn, _ = fpRegType(field(w, 9, 5), ftype)
		case rmode == 3 && opcode == 1:
			i.Op = FCVTZU
			i.Rd = gpReg(field(w, 4, 0), is64, false)
			i.Rn, _ = fpRegType(field(w, 9, 5), ftype)
		case rmode == 0 && opcode == 6: // FMOV fp -> gpr
			i.Op = FMOV
			i.Rd = gpReg(field(w, 4, 0), is64, false)
			i.Rn, _ = fpRegType(field(w, 9, 5), ftype)
		case rmode == 0 && opcode == 7: // FMOV gpr -> fp
			i.Op = FMOV
			i.Rd, _ = fpRegType(field(w, 4, 0), ftype)
			i.Rn = gpReg(field(w, 9, 5), is64, false)
		default:
			return bad()
		}
		if i.Rd == RegNone || i.Rn == RegNone {
			return bad()
		}
		return i, nil
	}
	return bad()
}
