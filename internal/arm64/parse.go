package arm64

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ParseError reports an unparseable instruction line.
type ParseError struct {
	Line string
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("arm64: cannot parse %q: %s", e.Line, e.Msg)
}

// operand is one comma-separated piece of an instruction after the
// mnemonic, with memory operands kept intact ("[x0, #8]!").
func splitOperands(s string) []string {
	var out []string
	depth := 0
	start := 0
	inStr := false
	for i := 0; i < len(s); i++ {
		if inStr {
			if s[i] == '\\' {
				i++
			} else if s[i] == '"' {
				inStr = false
			}
			continue
		}
		switch s[i] {
		case '"':
			inStr = true
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	last := strings.TrimSpace(s[start:])
	if last != "" || len(out) > 0 {
		out = append(out, last)
	}
	return out
}

func parseImmVal(s string) (int64, bool) {
	s = strings.TrimPrefix(s, "#")
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	var v uint64
	var err error
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		v, err = strconv.ParseUint(s[2:], 16, 64)
	} else {
		v, err = strconv.ParseUint(s, 10, 64)
	}
	if err != nil {
		return 0, false
	}
	r := int64(v)
	if neg {
		r = -r
	}
	return r, true
}

func isImm(s string) bool {
	if s == "" {
		return false
	}
	if s[0] == '#' {
		return true
	}
	c := s[0]
	return c == '-' || (c >= '0' && c <= '9')
}

// barrier option names for DMB/DSB.
var barrierOpts = map[string]int64{
	"oshld": 1, "oshst": 2, "osh": 3,
	"nshld": 5, "nshst": 6, "nsh": 7,
	"ishld": 9, "ishst": 10, "ish": 11,
	"ld": 13, "st": 14, "sy": 15,
}

// A few system registers, packed as op0:op1:CRn:CRm:op2 (15 bits, with op0
// encoded as its low bit the way MRS/MSR instructions carry it).
var sysRegs = map[string]int64{
	"tpidr_el0":   1<<14 | 3<<11 | 13<<7 | 0<<3 | 2,
	"scxtnum_el0": 1<<14 | 3<<11 | 13<<7 | 0<<3 | 7,
	"nzcv":        1<<14 | 3<<11 | 4<<7 | 2<<3 | 0,
	"fpcr":        1<<14 | 3<<11 | 4<<7 | 4<<3 | 0,
	"fpsr":        1<<14 | 3<<11 | 4<<7 | 4<<3 | 1,
	"cntvct_el0":  1<<14 | 3<<11 | 14<<7 | 0<<3 | 2,
}

func sysRegName(v int64) string {
	for k, sv := range sysRegs {
		if sv == v {
			return k
		}
	}
	return fmt.Sprintf("s%d_%d_c%d_c%d_%d", 2+(v>>14)&1, (v>>11)&7, (v>>7)&15, (v>>3)&15, v&7)
}

// parseSysReg resolves a system register operand: either one of the named
// registers above, or the generic s<op0>_<op1>_c<CRn>_c<CRm>_<op2> spelling
// that sysRegName falls back to for registers it has no name for.
func parseSysReg(s string) (int64, bool) {
	s = strings.ToLower(s)
	if v, ok := sysRegs[s]; ok {
		return v, true
	}
	var op0, op1, crn, crm, op2 int64
	if n, err := fmt.Sscanf(s, "s%d_%d_c%d_c%d_%d", &op0, &op1, &crn, &crm, &op2); n != 5 || err != nil {
		return 0, false
	}
	if op0 < 2 || op0 > 3 || op1 > 7 || crn > 15 || crm > 15 || op2 > 7 ||
		op1 < 0 || crn < 0 || crm < 0 || op2 < 0 {
		return 0, false
	}
	return (op0&1)<<14 | op1<<11 | crn<<7 | crm<<3 | op2, true
}

func parseMem(s string) (Mem, string, bool) {
	// Returns the Mem and any trailing text after ']' ("!" for pre-index).
	if !strings.HasPrefix(s, "[") {
		return Mem{}, "", false
	}
	close := strings.LastIndexByte(s, ']')
	if close < 0 {
		return Mem{}, "", false
	}
	inner := s[1:close]
	trail := strings.TrimSpace(s[close+1:])
	parts := splitOperands(inner)
	if len(parts) == 0 {
		return Mem{}, "", false
	}
	base, ok := ParseReg(parts[0])
	if !ok || !base.Is64() {
		return Mem{}, "", false
	}
	m := Mem{Base: base, Amount: -1}
	switch len(parts) {
	case 1:
		m.Mode = AddrBase
		m.Imm = 0
		if trail == "" {
			// plain [xN]; normalize to AddrImm with 0 for uniform handling
			m.Mode = AddrImm
		}
		return m, trail, true
	case 2:
		if isImm(parts[1]) {
			v, ok := parseImmVal(parts[1])
			if !ok {
				return Mem{}, "", false
			}
			m.Imm = int32(v)
			if trail == "!" {
				m.Mode = AddrPre
			} else {
				m.Mode = AddrImm
			}
			return m, trail, true
		}
		idx, ok := ParseReg(parts[1])
		if !ok {
			return Mem{}, "", false
		}
		m.Index = idx
		m.Mode = AddrReg
		m.Amount = 0
		return m, trail, true
	case 3:
		idx, ok := ParseReg(parts[1])
		if !ok {
			return Mem{}, "", false
		}
		m.Index = idx
		fields := strings.Fields(parts[2])
		if len(fields) == 0 {
			return Mem{}, "", false
		}
		ext, ok := ParseExtend(strings.ToLower(fields[0]))
		if !ok {
			return Mem{}, "", false
		}
		amt := int8(-1)
		if len(fields) == 2 {
			v, ok := parseImmVal(fields[1])
			if !ok || v < 0 || v > 4 {
				return Mem{}, "", false
			}
			amt = int8(v)
		}
		switch ext {
		case ExtLSL:
			m.Mode = AddrReg
			if amt < 0 {
				amt = 0
			}
		case ExtUXTW:
			m.Mode = AddrRegUXTW
		case ExtSXTW:
			m.Mode = AddrRegSXTW
		case ExtSXTX:
			m.Mode = AddrRegSXTX
		default:
			return Mem{}, "", false
		}
		m.Amount = amt
		return m, trail, true
	}
	return Mem{}, "", false
}

// ParseInst parses one instruction in GNU assembly syntax, resolving
// aliases (mov, cmp, lsl #imm, cset, …) to canonical operations. Branch
// targets may be symbolic labels (returned in Label) or numeric offsets.
func ParseInst(line string) (Inst, error) {
	line = strings.TrimSpace(line)
	perr := func(format string, args ...any) (Inst, error) {
		return Inst{Op: BAD}, &ParseError{Line: line, Msg: fmt.Sprintf(format, args...)}
	}
	sp := strings.IndexAny(line, " \t")
	mnem := line
	rest := ""
	if sp >= 0 {
		mnem = line[:sp]
		rest = strings.TrimSpace(line[sp+1:])
	}
	mnem = strings.ToLower(mnem)
	ops := splitOperands(rest)

	var i Inst
	i.Rd, i.Rn, i.Rm, i.Ra = RegNone, RegNone, RegNone, RegNone
	i.Amount = -1

	reg := func(s string) (Reg, bool) { return ParseReg(strings.ToLower(s)) }
	needReg := func(s string) (Reg, error) {
		r, ok := reg(s)
		if !ok {
			return RegNone, &ParseError{Line: line, Msg: fmt.Sprintf("bad register %q", s)}
		}
		return r, nil
	}
	labelOrOfs := func(s string) {
		if isImm(s) {
			v, _ := parseImmVal(s)
			i.Imm = v
		} else {
			i.Label = s
		}
	}

	// Condition-suffixed branch: b.eq, b.lt, ...
	if strings.HasPrefix(mnem, "b.") {
		c, ok := ParseCond(mnem[2:])
		if !ok {
			return perr("bad condition %q", mnem[2:])
		}
		if len(ops) != 1 {
			return perr("b.cond needs one operand")
		}
		i.Op = BCOND
		i.Cond = c
		labelOrOfs(ops[0])
		return i, nil
	}

	// Shift/extend helper for trailing "lsl #3" style operands.
	parseShiftOp := func(s string) (Extend, int8, bool) {
		f := strings.Fields(s)
		ext, ok := ParseExtend(strings.ToLower(f[0]))
		if !ok {
			return ExtNone, -1, false
		}
		if len(f) == 1 {
			return ext, -1, true
		}
		v, ok := parseImmVal(f[1])
		if !ok {
			return ExtNone, -1, false
		}
		return ext, int8(v), true
	}

	// Fill Rm/Imm/Ext from an "operand 2" (register with optional shift, or
	// immediate with optional shift).
	fillOp2 := func(op2 []string) error {
		if strings.HasPrefix(op2[0], ":lo12:") {
			// Relocation-style symbolic immediate (adrp/add pairs); the
			// assembler resolves it to sym & 0xfff.
			i.Label = op2[0]
			return nil
		}
		if isImm(op2[0]) {
			v, ok := parseImmVal(op2[0])
			if !ok {
				return &ParseError{Line: line, Msg: "bad immediate"}
			}
			i.Imm = v
			if len(op2) == 2 {
				ext, amt, ok := parseShiftOp(op2[1])
				if !ok {
					return &ParseError{Line: line, Msg: "bad shift"}
				}
				i.Ext, i.Amount = ext, amt
			}
			return nil
		}
		r, ok := reg(op2[0])
		if !ok {
			return &ParseError{Line: line, Msg: fmt.Sprintf("bad operand %q", op2[0])}
		}
		i.Rm = r
		if len(op2) == 2 {
			ext, amt, ok := parseShiftOp(op2[1])
			if !ok {
				return &ParseError{Line: line, Msg: "bad shift"}
			}
			i.Ext, i.Amount = ext, amt
		}
		return nil
	}

	switch mnem {
	case "mov":
		if len(ops) != 2 {
			return perr("mov needs 2 operands")
		}
		rd, err := needReg(ops[0])
		if err != nil {
			return i, err
		}
		i.Rd = rd
		if isImm(ops[1]) {
			v, ok := parseImmVal(ops[1])
			if !ok {
				return perr("bad immediate")
			}
			return movImmInst(rd, v, line)
		}
		rm, err := needReg(ops[1])
		if err != nil {
			return i, err
		}
		if rd.IsSP() || rm.IsSP() {
			i.Op = ADD
			i.Rn = rm
			i.Imm = 0
			return i, nil
		}
		i.Op = ORR
		i.Rn = rd.X().W() // placeholder, fixed below
		if rd.Is64() {
			i.Rn = XZR
		} else {
			i.Rn = WZR
		}
		i.Rm = rm
		return i, nil

	case "cmp", "cmn":
		if len(ops) < 2 {
			return perr("cmp needs 2 operands")
		}
		rn, err := needReg(ops[0])
		if err != nil {
			return i, err
		}
		i.Rn = rn
		if rn.Is64() {
			i.Rd = XZR
		} else {
			i.Rd = WZR
		}
		if mnem == "cmp" {
			i.Op = SUBS
		} else {
			i.Op = ADDS
		}
		if err := fillOp2(ops[1:]); err != nil {
			return i, err
		}
		return i, nil

	case "tst":
		if len(ops) < 2 {
			return perr("tst needs 2 operands")
		}
		rn, err := needReg(ops[0])
		if err != nil {
			return i, err
		}
		i.Op = ANDS
		i.Rn = rn
		if rn.Is64() {
			i.Rd = XZR
		} else {
			i.Rd = WZR
		}
		if err := fillOp2(ops[1:]); err != nil {
			return i, err
		}
		return i, nil

	case "neg", "negs":
		if len(ops) < 2 {
			return perr("neg needs 2 operands")
		}
		rd, err := needReg(ops[0])
		if err != nil {
			return i, err
		}
		i.Rd = rd
		if rd.Is64() {
			i.Rn = XZR
		} else {
			i.Rn = WZR
		}
		i.Op = SUB
		if mnem == "negs" {
			i.Op = SUBS
		}
		if err := fillOp2(ops[1:]); err != nil {
			return i, err
		}
		return i, nil

	case "mvn":
		if len(ops) < 2 {
			return perr("mvn needs 2 operands")
		}
		rd, err := needReg(ops[0])
		if err != nil {
			return i, err
		}
		i.Op = ORN
		i.Rd = rd
		if rd.Is64() {
			i.Rn = XZR
		} else {
			i.Rn = WZR
		}
		if err := fillOp2(ops[1:]); err != nil {
			return i, err
		}
		return i, nil

	case "mul", "mneg", "smull", "umull":
		if len(ops) != 3 {
			return perr("%s needs 3 operands", mnem)
		}
		rd, err := needReg(ops[0])
		if err != nil {
			return i, err
		}
		rn, err := needReg(ops[1])
		if err != nil {
			return i, err
		}
		rm, err := needReg(ops[2])
		if err != nil {
			return i, err
		}
		i.Rd, i.Rn, i.Rm = rd, rn, rm
		switch mnem {
		case "mul":
			i.Op = MADD
		case "mneg":
			i.Op = MSUB
		case "smull":
			i.Op = SMADDL
		case "umull":
			i.Op = UMADDL
		}
		if rd.Is64() {
			i.Ra = XZR
		} else {
			i.Ra = WZR
		}
		return i, nil

	case "lsl", "lsr", "asr", "ror":
		if len(ops) != 3 {
			return perr("%s needs 3 operands", mnem)
		}
		rd, err := needReg(ops[0])
		if err != nil {
			return i, err
		}
		rn, err := needReg(ops[1])
		if err != nil {
			return i, err
		}
		i.Rd, i.Rn = rd, rn
		if !isImm(ops[2]) {
			rm, err := needReg(ops[2])
			if err != nil {
				return i, err
			}
			i.Rm = rm
			switch mnem {
			case "lsl":
				i.Op = LSLV
			case "lsr":
				i.Op = LSRV
			case "asr":
				i.Op = ASRV
			case "ror":
				i.Op = RORV
			}
			return i, nil
		}
		sh, ok := parseImmVal(ops[2])
		if !ok {
			return perr("bad shift immediate")
		}
		size := int64(32)
		if rd.Is64() {
			size = 64
		}
		if sh < 0 || sh >= size {
			return perr("shift out of range")
		}
		switch mnem {
		case "lsl":
			i.Op = UBFM
			i.Imm = (size - sh) % size
			i.Amount = int8(size - 1 - sh)
		case "lsr":
			i.Op = UBFM
			i.Imm = sh
			i.Amount = int8(size - 1)
		case "asr":
			i.Op = SBFM
			i.Imm = sh
			i.Amount = int8(size - 1)
		case "ror":
			i.Op = EXTR
			i.Rm = rn
			i.Imm = sh
		}
		return i, nil

	case "sxtb", "sxth", "sxtw", "uxtb", "uxth":
		if len(ops) != 2 {
			return perr("%s needs 2 operands", mnem)
		}
		rd, err := needReg(ops[0])
		if err != nil {
			return i, err
		}
		rn, err := needReg(ops[1])
		if err != nil {
			return i, err
		}
		i.Rd, i.Rn = rd, rn
		if strings.HasPrefix(mnem, "s") {
			i.Op = SBFM
		} else {
			i.Op = UBFM
		}
		i.Imm = 0
		switch mnem[3] {
		case 'b':
			i.Amount = 7
		case 'h':
			i.Amount = 15
		case 'w':
			i.Amount = 31
		}
		// Source of the extension is read as a W register; destination
		// width chooses sf. sxtw requires a 64-bit destination.
		if mnem == "sxtw" && !rd.Is64() {
			return perr("sxtw needs a 64-bit destination")
		}
		if rd.Is64() {
			i.Rn = rn.X()
		}
		return i, nil

	case "ubfx", "ubfiz", "sbfx", "sbfiz", "bfi", "bfxil":
		if len(ops) != 4 {
			return perr("%s needs 4 operands", mnem)
		}
		rd, err := needReg(ops[0])
		if err != nil {
			return i, err
		}
		rn, err := needReg(ops[1])
		if err != nil {
			return i, err
		}
		lsb, ok1 := parseImmVal(ops[2])
		width, ok2 := parseImmVal(ops[3])
		if !ok1 || !ok2 || width < 1 {
			return perr("bad bitfield immediates")
		}
		size := int64(32)
		if rd.Is64() {
			size = 64
		}
		i.Rd, i.Rn = rd, rn
		switch mnem {
		case "ubfx":
			i.Op, i.Imm, i.Amount = UBFM, lsb, int8(lsb+width-1)
		case "sbfx":
			i.Op, i.Imm, i.Amount = SBFM, lsb, int8(lsb+width-1)
		case "ubfiz":
			i.Op, i.Imm, i.Amount = UBFM, (size-lsb)%size, int8(width-1)
		case "sbfiz":
			i.Op, i.Imm, i.Amount = SBFM, (size-lsb)%size, int8(width-1)
		case "bfi":
			i.Op, i.Imm, i.Amount = BFM, (size-lsb)%size, int8(width-1)
		case "bfxil":
			i.Op, i.Imm, i.Amount = BFM, lsb, int8(lsb+width-1)
		}
		return i, nil

	case "cset", "csetm":
		if len(ops) != 2 {
			return perr("%s needs 2 operands", mnem)
		}
		rd, err := needReg(ops[0])
		if err != nil {
			return i, err
		}
		c, ok := ParseCond(strings.ToLower(ops[1]))
		if !ok {
			return perr("bad condition")
		}
		zr := XZR
		if !rd.Is64() {
			zr = WZR
		}
		i.Rd, i.Rn, i.Rm = rd, zr, zr
		i.Cond = c.Invert()
		if mnem == "cset" {
			i.Op = CSINC
		} else {
			i.Op = CSINV
		}
		return i, nil

	case "cinc", "cinv", "cneg":
		if len(ops) != 3 {
			return perr("%s needs 3 operands", mnem)
		}
		rd, err := needReg(ops[0])
		if err != nil {
			return i, err
		}
		rn, err := needReg(ops[1])
		if err != nil {
			return i, err
		}
		c, ok := ParseCond(strings.ToLower(ops[2]))
		if !ok {
			return perr("bad condition")
		}
		i.Rd, i.Rn, i.Rm = rd, rn, rn
		i.Cond = c.Invert()
		switch mnem {
		case "cinc":
			i.Op = CSINC
		case "cinv":
			i.Op = CSINV
		case "cneg":
			i.Op = CSNEG
		}
		return i, nil
	}

	op, ok := opByName[mnem]
	if !ok {
		return perr("unknown mnemonic %q", mnem)
	}
	i.Op = op

	switch op.shape() {
	case shapeNone:
		return i, nil

	case shapeAdr:
		if len(ops) != 2 {
			return perr("adr needs 2 operands")
		}
		rd, err := needReg(ops[0])
		if err != nil {
			return i, err
		}
		i.Rd = rd
		labelOrOfs(ops[1])
		return i, nil

	case shapeAddSub, shapeLogical:
		if len(ops) < 3 {
			return perr("%s needs at least 3 operands", mnem)
		}
		rd, err := needReg(ops[0])
		if err != nil {
			return i, err
		}
		rn, err := needReg(ops[1])
		if err != nil {
			return i, err
		}
		i.Rd, i.Rn = rd, rn
		if err := fillOp2(ops[2:]); err != nil {
			return i, err
		}
		return i, nil

	case shapeMovWide:
		if len(ops) < 2 {
			return perr("%s needs 2 operands", mnem)
		}
		rd, err := needReg(ops[0])
		if err != nil {
			return i, err
		}
		v, ok := parseImmVal(ops[1])
		if !ok {
			return perr("bad imm16")
		}
		i.Rd, i.Imm, i.Amount = rd, v, 0
		if len(ops) == 3 {
			ext, amt, ok := parseShiftOp(ops[2])
			if !ok || ext != ExtLSL {
				return perr("bad move-wide shift")
			}
			i.Amount = amt
			i.Ext = ExtNone
		}
		return i, nil

	case shapeBitfield:
		if len(ops) != 4 {
			return perr("%s needs 4 operands", mnem)
		}
		rd, err := needReg(ops[0])
		if err != nil {
			return i, err
		}
		rn, err := needReg(ops[1])
		if err != nil {
			return i, err
		}
		immr, ok1 := parseImmVal(ops[2])
		imms, ok2 := parseImmVal(ops[3])
		if !ok1 || !ok2 {
			return perr("bad bitfield immediates")
		}
		i.Rd, i.Rn, i.Imm, i.Amount = rd, rn, immr, int8(imms)
		return i, nil

	case shapeExtr:
		if len(ops) != 4 {
			return perr("extr needs 4 operands")
		}
		rd, err := needReg(ops[0])
		if err != nil {
			return i, err
		}
		rn, err := needReg(ops[1])
		if err != nil {
			return i, err
		}
		rm, err := needReg(ops[2])
		if err != nil {
			return i, err
		}
		lsb, ok := parseImmVal(ops[3])
		if !ok {
			return perr("bad lsb")
		}
		i.Rd, i.Rn, i.Rm, i.Imm = rd, rn, rm, lsb
		return i, nil

	case shapeRRR:
		if len(ops) != 3 {
			return perr("%s needs 3 operands", mnem)
		}
		rd, err := needReg(ops[0])
		if err != nil {
			return i, err
		}
		rn, err := needReg(ops[1])
		if err != nil {
			return i, err
		}
		rm, err := needReg(ops[2])
		if err != nil {
			return i, err
		}
		i.Rd, i.Rn, i.Rm = rd, rn, rm
		return i, nil

	case shapeRRRR:
		if len(ops) != 4 {
			return perr("%s needs 4 operands", mnem)
		}
		rd, err := needReg(ops[0])
		if err != nil {
			return i, err
		}
		rn, err := needReg(ops[1])
		if err != nil {
			return i, err
		}
		rm, err := needReg(ops[2])
		if err != nil {
			return i, err
		}
		ra, err := needReg(ops[3])
		if err != nil {
			return i, err
		}
		i.Rd, i.Rn, i.Rm, i.Ra = rd, rn, rm, ra
		return i, nil

	case shapeRR:
		if len(ops) != 2 {
			return perr("%s needs 2 operands", mnem)
		}
		rd, err := needReg(ops[0])
		if err != nil {
			return i, err
		}
		i.Rd = rd
		if op == FMOV && isImm(ops[1]) {
			s := strings.TrimPrefix(ops[1], "#")
			f, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return perr("bad fmov immediate")
			}
			i.Imm = int64(math.Float64bits(f))
			return i, nil
		}
		rn, err := needReg(ops[1])
		if err != nil {
			return i, err
		}
		i.Rn = rn
		return i, nil

	case shapeCSel:
		if len(ops) != 4 {
			return perr("%s needs 4 operands", mnem)
		}
		rd, err := needReg(ops[0])
		if err != nil {
			return i, err
		}
		rn, err := needReg(ops[1])
		if err != nil {
			return i, err
		}
		rm, err := needReg(ops[2])
		if err != nil {
			return i, err
		}
		c, ok := ParseCond(strings.ToLower(ops[3]))
		if !ok {
			return perr("bad condition")
		}
		i.Rd, i.Rn, i.Rm, i.Cond = rd, rn, rm, c
		return i, nil

	case shapeCCmp:
		if len(ops) != 4 {
			return perr("%s needs 4 operands", mnem)
		}
		rn, err := needReg(ops[0])
		if err != nil {
			return i, err
		}
		i.Rn = rn
		if isImm(ops[1]) {
			v, ok := parseImmVal(ops[1])
			if !ok {
				return perr("bad imm5")
			}
			i.Imm = v
		} else {
			rm, err := needReg(ops[1])
			if err != nil {
				return i, err
			}
			i.Rm = rm
		}
		nzcv, ok := parseImmVal(ops[2])
		if !ok || nzcv < 0 || nzcv > 15 {
			return perr("bad nzcv")
		}
		i.Amount = int8(nzcv)
		c, ok := ParseCond(strings.ToLower(ops[3]))
		if !ok {
			return perr("bad condition")
		}
		i.Cond = c
		return i, nil

	case shapeBranch:
		if len(ops) != 1 {
			return perr("%s needs 1 operand", mnem)
		}
		labelOrOfs(ops[0])
		return i, nil

	case shapeCB:
		if len(ops) != 2 {
			return perr("%s needs 2 operands", mnem)
		}
		rt, err := needReg(ops[0])
		if err != nil {
			return i, err
		}
		i.Rd = rt
		labelOrOfs(ops[1])
		return i, nil

	case shapeTB:
		if len(ops) != 3 {
			return perr("%s needs 3 operands", mnem)
		}
		rt, err := needReg(ops[0])
		if err != nil {
			return i, err
		}
		b, ok := parseImmVal(ops[1])
		if !ok || b < 0 || b > 63 {
			return perr("bad bit number")
		}
		i.Rd = rt
		i.Amount = int8(b)
		labelOrOfs(ops[2])
		return i, nil

	case shapeBReg:
		if len(ops) != 1 {
			return perr("%s needs 1 operand", mnem)
		}
		rn, err := needReg(ops[0])
		if err != nil {
			return i, err
		}
		i.Rn = rn
		return i, nil

	case shapeRet:
		if len(ops) == 0 {
			i.Rn = X30
			return i, nil
		}
		rn, err := needReg(ops[0])
		if err != nil {
			return i, err
		}
		i.Rn = rn
		return i, nil

	case shapeMem:
		if len(ops) < 2 {
			return perr("%s needs 2 operands", mnem)
		}
		rt, err := needReg(ops[0])
		if err != nil {
			return i, err
		}
		i.Rd = rt
		if !strings.HasPrefix(ops[1], "[") {
			// Literal (label) load.
			if !op.IsLoad() {
				return perr("store cannot use a literal")
			}
			i.Mem = Mem{Mode: AddrLiteral}
			labelOrOfs(ops[1])
			return i, nil
		}
		m, trail, ok := parseMem(ops[1])
		if !ok {
			return perr("bad memory operand %q", ops[1])
		}
		if len(ops) == 3 { // post-index: ldr x0, [x1], #8
			v, ok := parseImmVal(ops[2])
			if !ok || m.WritesBack() || m.IsRegOffset() || m.Imm != 0 {
				return perr("bad post-index")
			}
			m.Mode = AddrPost
			m.Imm = int32(v)
		} else if trail == "!" && m.Mode != AddrPre {
			return perr("bad pre-index")
		}
		i.Mem = m
		return i, nil

	case shapeMemPair:
		if len(ops) < 3 {
			return perr("%s needs 3 operands", mnem)
		}
		rt, err := needReg(ops[0])
		if err != nil {
			return i, err
		}
		rt2, err := needReg(ops[1])
		if err != nil {
			return i, err
		}
		i.Rd, i.Rm = rt, rt2
		m, trail, ok := parseMem(ops[2])
		if !ok {
			return perr("bad memory operand")
		}
		if len(ops) == 4 {
			v, ok := parseImmVal(ops[3])
			if !ok || m.WritesBack() || m.Imm != 0 {
				return perr("bad post-index")
			}
			m.Mode = AddrPost
			m.Imm = int32(v)
		} else if trail == "!" && m.Mode != AddrPre {
			return perr("bad pre-index")
		}
		i.Mem = m
		return i, nil

	case shapeMemEx:
		// ldxr rt, [rn] / stxr rs, rt, [rn]
		isStX := op == STXR || op == STLXR
		want := 2
		if isStX {
			want = 3
		}
		if len(ops) != want {
			return perr("%s needs %d operands", mnem, want)
		}
		k := 0
		if isStX {
			rs, err := needReg(ops[0])
			if err != nil {
				return i, err
			}
			i.Rm = rs
			k = 1
		}
		rt, err := needReg(ops[k])
		if err != nil {
			return i, err
		}
		i.Rd = rt
		m, _, ok := parseMem(ops[k+1])
		if !ok || (m.Mode != AddrImm && m.Mode != AddrBase) || m.Imm != 0 {
			return perr("exclusive ops take [rn] only")
		}
		i.Rn = m.Base
		return i, nil

	case shapeFPCmp:
		if len(ops) != 2 {
			return perr("fcmp needs 2 operands")
		}
		rn, err := needReg(ops[0])
		if err != nil {
			return i, err
		}
		i.Rn = rn
		if isImm(ops[1]) {
			i.Rm = RegNone // fcmp dN, #0.0
			return i, nil
		}
		rm, err := needReg(ops[1])
		if err != nil {
			return i, err
		}
		i.Rm = rm
		return i, nil

	case shapeSys:
		switch op {
		case SVC, BRK:
			if len(ops) != 1 {
				return perr("%s needs 1 operand", mnem)
			}
			v, ok := parseImmVal(ops[0])
			if !ok {
				return perr("bad immediate")
			}
			i.Imm = v
			return i, nil
		case DMB, DSB:
			if len(ops) != 1 {
				return perr("%s needs 1 operand", mnem)
			}
			v, ok := barrierOpts[strings.ToLower(ops[0])]
			if !ok {
				return perr("bad barrier option %q", ops[0])
			}
			i.Imm = v
			return i, nil
		case MRS:
			if len(ops) != 2 {
				return perr("mrs needs 2 operands")
			}
			rt, err := needReg(ops[0])
			if err != nil {
				return i, err
			}
			v, ok := parseSysReg(ops[1])
			if !ok {
				return perr("unknown system register %q", ops[1])
			}
			i.Rd, i.Imm = rt, v
			return i, nil
		case MSR:
			if len(ops) != 2 {
				return perr("msr needs 2 operands")
			}
			v, ok := parseSysReg(ops[0])
			if !ok {
				return perr("unknown system register %q", ops[0])
			}
			rt, err := needReg(ops[1])
			if err != nil {
				return i, err
			}
			i.Rd, i.Imm = rt, v
			return i, nil
		}
	}
	return perr("unhandled shape for %q", mnem)
}

// movImmInst lowers "mov rd, #imm" to movz/movn/orr-immediate.
func movImmInst(rd Reg, v int64, line string) (Inst, error) {
	i := Inst{Rd: rd, Rn: RegNone, Rm: RegNone, Ra: RegNone, Amount: 0}
	u := uint64(v)
	if !rd.Is64() {
		u &= 0xffffffff
	}
	shifts := 4
	if !rd.Is64() {
		shifts = 2
	}
	// movz: single non-zero 16-bit chunk.
	for s := 0; s < shifts; s++ {
		if u&^(uint64(0xffff)<<(16*s)) == 0 {
			i.Op = MOVZ
			i.Imm = int64(u >> (16 * s))
			i.Amount = int8(16 * s)
			return i, nil
		}
	}
	// movn: single non-ones 16-bit chunk.
	inv := ^u
	if !rd.Is64() {
		inv &= 0xffffffff
	}
	for s := 0; s < shifts; s++ {
		if inv&^(uint64(0xffff)<<(16*s)) == 0 {
			i.Op = MOVN
			i.Imm = int64(inv >> (16 * s))
			i.Amount = int8(16 * s)
			return i, nil
		}
	}
	// Bitmask immediate via ORR.
	if _, _, _, ok := EncodeBitmask(u, rd.Is64()); ok {
		i.Op = ORR
		if rd.Is64() {
			i.Rn = XZR
		} else {
			i.Rn = WZR
		}
		i.Imm = int64(u)
		i.Amount = -1
		return i, nil
	}
	return Inst{Op: BAD}, &ParseError{Line: line, Msg: fmt.Sprintf("mov immediate %#x needs multiple instructions", u)}
}
