package arm64

// Op is a canonical opcode. Assembly aliases (mov, cmp, lsl #imm, cset, …)
// are normalized to these canonical operations by the parser.
type Op uint16

const (
	BAD Op = iota

	// PC-relative address generation.
	ADR
	ADRP

	// Add/subtract (immediate, shifted register, extended register — the
	// form is chosen from the operands).
	ADD
	ADDS
	SUB
	SUBS

	// Logical (shifted register or bitmask immediate).
	AND
	ANDS
	ORR
	ORN
	EOR
	EON
	BIC
	BICS

	// Move wide.
	MOVZ
	MOVN
	MOVK

	// Bitfield and extract.
	SBFM
	BFM
	UBFM
	EXTR

	// Data processing, 2-source.
	UDIV
	SDIV
	LSLV
	LSRV
	ASRV
	RORV

	// Data processing, 3-source.
	MADD
	MSUB
	SMADDL
	UMADDL
	SMULH
	UMULH

	// Data processing, 1-source.
	CLZ
	CLS
	RBIT
	REV
	REV16
	REV32

	// Conditional select and compare.
	CSEL
	CSINC
	CSINV
	CSNEG
	CCMP
	CCMN

	// Branches.
	B
	BL
	BCOND
	CBZ
	CBNZ
	TBZ
	TBNZ
	BR
	BLR
	RET

	// Loads and stores. Width and signedness of LDR/STR come from the
	// transfer register view (w/x/b/h/s/d/q); the B/H/SB/SH/SW ops are the
	// sub-word integer forms.
	LDR
	LDRB
	LDRH
	LDRSB
	LDRSH
	LDRSW
	STR
	STRB
	STRH
	LDP
	STP

	// Exclusive and acquire/release.
	LDXR
	STXR
	LDAXR
	STLXR
	LDAR
	STLR

	// Floating point.
	FMOV
	FADD
	FSUB
	FMUL
	FDIV
	FNEG
	FABS
	FSQRT
	FMADD
	FMSUB
	FCMP
	FCSEL
	FCVT
	SCVTF
	UCVTF
	FCVTZS
	FCVTZU

	// System.
	NOP
	SVC
	BRK
	DMB
	DSB
	ISB
	MRS
	MSR

	NumOps
)

// opShape describes the operand arrangement for parsing and printing.
type opShape uint8

const (
	shapeNone     opShape = iota // nop, isb
	shapeAdr                     // adr rd, label
	shapeAddSub                  // add rd, rn, (#imm | rm {,shift/ext #amt})
	shapeLogical                 // and rd, rn, (#bitmask | rm {,shift #amt})
	shapeMovWide                 // movz rd, #imm16 {, lsl #hw}
	shapeBitfield                // ubfm rd, rn, #immr, #imms
	shapeExtr                    // extr rd, rn, rm, #lsb
	shapeRRR                     // udiv rd, rn, rm
	shapeRRRR                    // madd rd, rn, rm, ra
	shapeRR                      // clz rd, rn
	shapeCSel                    // csel rd, rn, rm, cond
	shapeCCmp                    // ccmp rn, (rm|#imm), #nzcv, cond
	shapeBranch                  // b label
	shapeCB                      // cbz rt, label
	shapeTB                      // tbz rt, #bit, label
	shapeBReg                    // br rn
	shapeRet                     // ret {rn}
	shapeMem                     // ldr rt, [mem]
	shapeMemPair                 // ldp rt, rt2, [mem]
	shapeMemEx                   // ldxr rt, [rn] / stxr rs, rt, [rn]
	shapeFPCmp                   // fcmp rn, (rm|#0.0)
	shapeSys                     // svc #imm / dmb ish / mrs rt, sysreg
)

type opProps struct {
	name    string
	shape   opShape
	load    bool // reads memory
	store   bool // writes memory
	branch  bool // can change PC
	setsFlg bool // writes NZCV
	rdsFlg  bool // reads NZCV
}

var opTab = [NumOps]opProps{
	BAD:    {name: "<bad>"},
	ADR:    {name: "adr", shape: shapeAdr},
	ADRP:   {name: "adrp", shape: shapeAdr},
	ADD:    {name: "add", shape: shapeAddSub},
	ADDS:   {name: "adds", shape: shapeAddSub, setsFlg: true},
	SUB:    {name: "sub", shape: shapeAddSub},
	SUBS:   {name: "subs", shape: shapeAddSub, setsFlg: true},
	AND:    {name: "and", shape: shapeLogical},
	ANDS:   {name: "ands", shape: shapeLogical, setsFlg: true},
	ORR:    {name: "orr", shape: shapeLogical},
	ORN:    {name: "orn", shape: shapeLogical},
	EOR:    {name: "eor", shape: shapeLogical},
	EON:    {name: "eon", shape: shapeLogical},
	BIC:    {name: "bic", shape: shapeLogical},
	BICS:   {name: "bics", shape: shapeLogical, setsFlg: true},
	MOVZ:   {name: "movz", shape: shapeMovWide},
	MOVN:   {name: "movn", shape: shapeMovWide},
	MOVK:   {name: "movk", shape: shapeMovWide},
	SBFM:   {name: "sbfm", shape: shapeBitfield},
	BFM:    {name: "bfm", shape: shapeBitfield},
	UBFM:   {name: "ubfm", shape: shapeBitfield},
	EXTR:   {name: "extr", shape: shapeExtr},
	UDIV:   {name: "udiv", shape: shapeRRR},
	SDIV:   {name: "sdiv", shape: shapeRRR},
	LSLV:   {name: "lsl", shape: shapeRRR},
	LSRV:   {name: "lsr", shape: shapeRRR},
	ASRV:   {name: "asr", shape: shapeRRR},
	RORV:   {name: "ror", shape: shapeRRR},
	MADD:   {name: "madd", shape: shapeRRRR},
	MSUB:   {name: "msub", shape: shapeRRRR},
	SMADDL: {name: "smaddl", shape: shapeRRRR},
	UMADDL: {name: "umaddl", shape: shapeRRRR},
	SMULH:  {name: "smulh", shape: shapeRRR},
	UMULH:  {name: "umulh", shape: shapeRRR},
	CLZ:    {name: "clz", shape: shapeRR},
	CLS:    {name: "cls", shape: shapeRR},
	RBIT:   {name: "rbit", shape: shapeRR},
	REV:    {name: "rev", shape: shapeRR},
	REV16:  {name: "rev16", shape: shapeRR},
	REV32:  {name: "rev32", shape: shapeRR},
	CSEL:   {name: "csel", shape: shapeCSel, rdsFlg: true},
	CSINC:  {name: "csinc", shape: shapeCSel, rdsFlg: true},
	CSINV:  {name: "csinv", shape: shapeCSel, rdsFlg: true},
	CSNEG:  {name: "csneg", shape: shapeCSel, rdsFlg: true},
	CCMP:   {name: "ccmp", shape: shapeCCmp, setsFlg: true, rdsFlg: true},
	CCMN:   {name: "ccmn", shape: shapeCCmp, setsFlg: true, rdsFlg: true},
	B:      {name: "b", shape: shapeBranch, branch: true},
	BL:     {name: "bl", shape: shapeBranch, branch: true},
	BCOND:  {name: "b.", shape: shapeBranch, branch: true, rdsFlg: true},
	CBZ:    {name: "cbz", shape: shapeCB, branch: true},
	CBNZ:   {name: "cbnz", shape: shapeCB, branch: true},
	TBZ:    {name: "tbz", shape: shapeTB, branch: true},
	TBNZ:   {name: "tbnz", shape: shapeTB, branch: true},
	BR:     {name: "br", shape: shapeBReg, branch: true},
	BLR:    {name: "blr", shape: shapeBReg, branch: true},
	RET:    {name: "ret", shape: shapeRet, branch: true},
	LDR:    {name: "ldr", shape: shapeMem, load: true},
	LDRB:   {name: "ldrb", shape: shapeMem, load: true},
	LDRH:   {name: "ldrh", shape: shapeMem, load: true},
	LDRSB:  {name: "ldrsb", shape: shapeMem, load: true},
	LDRSH:  {name: "ldrsh", shape: shapeMem, load: true},
	LDRSW:  {name: "ldrsw", shape: shapeMem, load: true},
	STR:    {name: "str", shape: shapeMem, store: true},
	STRB:   {name: "strb", shape: shapeMem, store: true},
	STRH:   {name: "strh", shape: shapeMem, store: true},
	LDP:    {name: "ldp", shape: shapeMemPair, load: true},
	STP:    {name: "stp", shape: shapeMemPair, store: true},
	LDXR:   {name: "ldxr", shape: shapeMemEx, load: true},
	STXR:   {name: "stxr", shape: shapeMemEx, store: true},
	LDAXR:  {name: "ldaxr", shape: shapeMemEx, load: true},
	STLXR:  {name: "stlxr", shape: shapeMemEx, store: true},
	LDAR:   {name: "ldar", shape: shapeMemEx, load: true},
	STLR:   {name: "stlr", shape: shapeMemEx, store: true},
	FMOV:   {name: "fmov", shape: shapeRR},
	FADD:   {name: "fadd", shape: shapeRRR},
	FSUB:   {name: "fsub", shape: shapeRRR},
	FMUL:   {name: "fmul", shape: shapeRRR},
	FDIV:   {name: "fdiv", shape: shapeRRR},
	FNEG:   {name: "fneg", shape: shapeRR},
	FABS:   {name: "fabs", shape: shapeRR},
	FSQRT:  {name: "fsqrt", shape: shapeRR},
	FMADD:  {name: "fmadd", shape: shapeRRRR},
	FMSUB:  {name: "fmsub", shape: shapeRRRR},
	FCMP:   {name: "fcmp", shape: shapeFPCmp, setsFlg: true},
	FCSEL:  {name: "fcsel", shape: shapeCSel, rdsFlg: true},
	FCVT:   {name: "fcvt", shape: shapeRR},
	SCVTF:  {name: "scvtf", shape: shapeRR},
	UCVTF:  {name: "ucvtf", shape: shapeRR},
	FCVTZS: {name: "fcvtzs", shape: shapeRR},
	FCVTZU: {name: "fcvtzu", shape: shapeRR},
	NOP:    {name: "nop", shape: shapeNone},
	SVC:    {name: "svc", shape: shapeSys},
	BRK:    {name: "brk", shape: shapeSys},
	DMB:    {name: "dmb", shape: shapeSys},
	DSB:    {name: "dsb", shape: shapeSys},
	ISB:    {name: "isb", shape: shapeNone},
	MRS:    {name: "mrs", shape: shapeSys},
	MSR:    {name: "msr", shape: shapeSys},
}

// Name returns the canonical mnemonic.
func (o Op) Name() string {
	if o < NumOps {
		return opTab[o].name
	}
	return "<bad>"
}

func (o Op) String() string { return o.Name() }

// IsLoad reports whether the op reads memory.
func (o Op) IsLoad() bool { return o < NumOps && opTab[o].load }

// IsStore reports whether the op writes memory.
func (o Op) IsStore() bool { return o < NumOps && opTab[o].store }

// IsMemory reports whether the op accesses memory.
func (o Op) IsMemory() bool { return o.IsLoad() || o.IsStore() }

// IsBranch reports whether the op can change the PC.
func (o Op) IsBranch() bool { return o < NumOps && opTab[o].branch }

// IsIndirectBranch reports whether the op jumps to a register value.
func (o Op) IsIndirectBranch() bool { return o == BR || o == BLR || o == RET }

// SetsFlags reports whether the op writes NZCV.
func (o Op) SetsFlags() bool { return o < NumOps && opTab[o].setsFlg }

// ReadsFlags reports whether the op reads NZCV.
func (o Op) ReadsFlags() bool { return o < NumOps && opTab[o].rdsFlg }

func (o Op) shape() opShape {
	if o < NumOps {
		return opTab[o].shape
	}
	return shapeNone
}

// DestRegs appends to dst the registers written by the instruction,
// including writeback bases and the link register for BL/BLR. The zero
// register is never included.
func (i *Inst) DestRegs(dst []Reg) []Reg {
	add := func(r Reg) {
		if r != RegNone && !r.IsZR() {
			dst = append(dst, r)
		}
	}
	switch i.Op {
	case BL, BLR:
		add(X30)
		return dst
	case B, BCOND, CBZ, CBNZ, TBZ, TBNZ, BR, RET, NOP, SVC, BRK, DMB, DSB, ISB, MSR:
		return dst
	case FCMP:
		return dst
	case CCMP, CCMN:
		return dst
	case STR, STRB, STRH, STLR:
		if i.Mem.WritesBack() {
			add(i.Mem.Base)
		}
		return dst
	case STP:
		if i.Mem.WritesBack() {
			add(i.Mem.Base)
		}
		return dst
	case STXR, STLXR:
		add(i.Rm) // status register
		return dst
	case LDP:
		add(i.Rd)
		add(i.Rm)
		if i.Mem.WritesBack() {
			add(i.Mem.Base)
		}
		return dst
	}
	add(i.Rd)
	if i.Op.IsMemory() && i.Mem.WritesBack() {
		add(i.Mem.Base)
	}
	return dst
}

// SrcRegs appends to dst the registers read by the instruction (register
// operands, memory base/index, stored data). The zero register is skipped.
func (i *Inst) SrcRegs(dst []Reg) []Reg {
	add := func(r Reg) {
		if r != RegNone && !r.IsZR() {
			dst = append(dst, r)
		}
	}
	switch i.Op.shape() {
	case shapeMem:
		if i.Op.IsStore() {
			add(i.Rd)
		}
		add(i.Mem.Base)
		if i.Mem.IsRegOffset() {
			add(i.Mem.Index)
		}
		return dst
	case shapeMemPair:
		if i.Op.IsStore() {
			add(i.Rd)
			add(i.Rm)
		}
		add(i.Mem.Base)
		return dst
	case shapeMemEx:
		if i.Op.IsStore() {
			add(i.Rd)
		}
		add(i.Rn)
		return dst
	}
	add(i.Rn)
	add(i.Rm)
	add(i.Ra)
	return dst
}

var opByName map[string]Op

func init() {
	opByName = make(map[string]Op, NumOps)
	for op := Op(1); op < NumOps; op++ {
		opByName[opTab[op].name] = op
	}
	// ldur/stur spell the unscaled forms of the same canonical ops.
	opByName["ldur"] = LDR
	opByName["stur"] = STR
	opByName["ldurb"] = LDRB
	opByName["sturb"] = STRB
	opByName["ldurh"] = LDRH
	opByName["sturh"] = STRH
	opByName["ldursb"] = LDRSB
	opByName["ldursh"] = LDRSH
	opByName["ldursw"] = LDRSW
	delete(opByName, "b.") // handled specially (condition suffix)
	// lsl/lsr/asr/ror map to the V forms; immediate forms are aliases
	// resolved by the parser.
}
