package arm64

import (
	"fmt"
	"math"
)

// printInst renders i in GNU assembly syntax that ParseInst accepts back.
func printInst(i *Inst) string {
	target := func() string {
		if i.Label != "" {
			return i.Label
		}
		return fmt.Sprintf("%d", i.Imm)
	}
	shiftSuffix := func() string {
		if i.Ext == ExtNone {
			return ""
		}
		if i.Amount < 0 {
			return ", " + i.Ext.String()
		}
		return fmt.Sprintf(", %s #%d", i.Ext, i.Amount)
	}

	switch i.Op {
	case BAD:
		return "<bad>"
	case BCOND:
		return fmt.Sprintf("b.%s %s", i.Cond, target())
	case NOP, ISB:
		return i.Op.Name()
	case SVC, BRK:
		return fmt.Sprintf("%s #%d", i.Op, i.Imm)
	case DMB, DSB:
		opt := "sy"
		for k, v := range barrierOpts {
			if v == i.Imm {
				opt = k
				break
			}
		}
		return fmt.Sprintf("%s %s", i.Op, opt)
	case MRS:
		return fmt.Sprintf("mrs %s, %s", i.Rd, sysRegName(i.Imm))
	case MSR:
		return fmt.Sprintf("msr %s, %s", sysRegName(i.Imm), i.Rd)
	}

	switch i.Op.shape() {
	case shapeAdr:
		return fmt.Sprintf("%s %s, %s", i.Op, i.Rd, target())

	case shapeAddSub:
		if i.Rm == RegNone {
			if i.Label != "" {
				return fmt.Sprintf("%s %s, %s, %s", i.Op, i.Rd, i.Rn, i.Label)
			}
			s := fmt.Sprintf("%s %s, %s, #%d", i.Op, i.Rd, i.Rn, i.Imm)
			if i.Ext == ExtLSL && i.Amount == 12 {
				s += ", lsl #12"
			}
			return s
		}
		return fmt.Sprintf("%s %s, %s, %s%s", i.Op, i.Rd, i.Rn, i.Rm, shiftSuffix())

	case shapeLogical:
		if i.Rm == RegNone {
			return fmt.Sprintf("%s %s, %s, #%#x", i.Op, i.Rd, i.Rn, uint64(i.Imm))
		}
		return fmt.Sprintf("%s %s, %s, %s%s", i.Op, i.Rd, i.Rn, i.Rm, shiftSuffix())

	case shapeMovWide:
		if i.Amount > 0 {
			return fmt.Sprintf("%s %s, #%d, lsl #%d", i.Op, i.Rd, i.Imm, i.Amount)
		}
		return fmt.Sprintf("%s %s, #%d", i.Op, i.Rd, i.Imm)

	case shapeBitfield:
		return fmt.Sprintf("%s %s, %s, #%d, #%d", i.Op, i.Rd, i.Rn, i.Imm, i.Amount)

	case shapeExtr:
		return fmt.Sprintf("extr %s, %s, %s, #%d", i.Rd, i.Rn, i.Rm, i.Imm)

	case shapeRRR:
		return fmt.Sprintf("%s %s, %s, %s", i.Op, i.Rd, i.Rn, i.Rm)

	case shapeRRRR:
		return fmt.Sprintf("%s %s, %s, %s, %s", i.Op, i.Rd, i.Rn, i.Rm, i.Ra)

	case shapeRR:
		if i.Op == FMOV && i.Rn == RegNone {
			return fmt.Sprintf("fmov %s, #%g", i.Rd, math.Float64frombits(uint64(i.Imm)))
		}
		return fmt.Sprintf("%s %s, %s", i.Op, i.Rd, i.Rn)

	case shapeCSel:
		return fmt.Sprintf("%s %s, %s, %s, %s", i.Op, i.Rd, i.Rn, i.Rm, i.Cond)

	case shapeCCmp:
		if i.Rm == RegNone {
			return fmt.Sprintf("%s %s, #%d, #%d, %s", i.Op, i.Rn, i.Imm, i.Amount, i.Cond)
		}
		return fmt.Sprintf("%s %s, %s, #%d, %s", i.Op, i.Rn, i.Rm, i.Amount, i.Cond)

	case shapeBranch:
		return fmt.Sprintf("%s %s", i.Op, target())

	case shapeCB:
		return fmt.Sprintf("%s %s, %s", i.Op, i.Rd, target())

	case shapeTB:
		return fmt.Sprintf("%s %s, #%d, %s", i.Op, i.Rd, i.Amount, target())

	case shapeBReg:
		return fmt.Sprintf("%s %s", i.Op, i.Rn)

	case shapeRet:
		if i.Rn == X30 || i.Rn == RegNone {
			return "ret"
		}
		return fmt.Sprintf("ret %s", i.Rn)

	case shapeMem:
		if i.Mem.Mode == AddrLiteral {
			return fmt.Sprintf("%s %s, %s", i.Op, i.Rd, target())
		}
		return fmt.Sprintf("%s %s, %s", i.Op, i.Rd, i.Mem)

	case shapeMemPair:
		return fmt.Sprintf("%s %s, %s, %s", i.Op, i.Rd, i.Rm, i.Mem)

	case shapeMemEx:
		if i.Op == STXR || i.Op == STLXR {
			return fmt.Sprintf("%s %s, %s, [%s]", i.Op, i.Rm, i.Rd, i.Rn)
		}
		return fmt.Sprintf("%s %s, [%s]", i.Op, i.Rd, i.Rn)

	case shapeFPCmp:
		if i.Rm == RegNone {
			return fmt.Sprintf("fcmp %s, #0.0", i.Rn)
		}
		return fmt.Sprintf("fcmp %s, %s", i.Rn, i.Rm)
	}
	return fmt.Sprintf("<unprintable %s>", i.Op)
}
