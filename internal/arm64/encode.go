package arm64

import (
	"fmt"
	"math"
)

// Field packing conventions used by Inst for immediate-heavy shapes:
//
//   - bitfield ops (SBFM/BFM/UBFM): Imm = immr, Amount = imms
//   - TBZ/TBNZ: Amount = bit number, Imm = branch byte offset
//   - CCMP/CCMN: Imm = imm5 (imm form; Rm==RegNone), Amount = nzcv
//   - MOVZ/MOVN/MOVK: Imm = imm16, Amount = left shift (0/16/32/48)
//   - FMOV with immediate: Imm = float64 bit pattern, Rn = RegNone
//   - DMB/DSB: Imm = CRm barrier option; MRS/MSR: Imm = packed sysreg
//
// Branch offsets (B/BL/B.cond/CBZ/CBNZ and the TBZ Imm) are signed byte
// offsets from the instruction's own address.

// EncodeError describes an instruction that cannot be encoded.
type EncodeError struct {
	Inst *Inst
	Msg  string
}

func (e *EncodeError) Error() string {
	return fmt.Sprintf("arm64: cannot encode %q: %s", e.Inst.String(), e.Msg)
}

func encErr(i *Inst, format string, args ...any) (uint32, error) {
	return 0, &EncodeError{Inst: i, Msg: fmt.Sprintf(format, args...)}
}

func sfBit(r Reg) uint32 {
	if r.Is64() {
		return 1
	}
	return 0
}

func fitsSigned(v int64, bits uint) bool {
	return v >= -(1<<(bits-1)) && v < 1<<(bits-1)
}

// Encode produces the 4-byte machine encoding of i. Branch labels must
// already be resolved to byte offsets.
func Encode(i *Inst) (uint32, error) {
	switch i.Op {
	case ADR, ADRP:
		imm := i.Imm
		if i.Op == ADRP {
			if imm&0xfff != 0 {
				return encErr(i, "adrp offset %d not page aligned", imm)
			}
			imm >>= 12
		}
		if !fitsSigned(imm, 21) {
			return encErr(i, "adr offset out of range")
		}
		op := uint32(0)
		if i.Op == ADRP {
			op = 1
		}
		u := uint32(imm) & 0x1fffff
		return op<<31 | (u&3)<<29 | 0x10<<24 | (u>>2)<<5 | i.Rd.EncNum(), nil

	case ADD, ADDS, SUB, SUBS:
		return encodeAddSub(i)

	case AND, ANDS, ORR, ORN, EOR, EON, BIC, BICS:
		return encodeLogical(i)

	case MOVZ, MOVN, MOVK:
		var opc uint32
		switch i.Op {
		case MOVN:
			opc = 0
		case MOVZ:
			opc = 2
		case MOVK:
			opc = 3
		}
		if i.Imm < 0 || i.Imm > 0xffff {
			return encErr(i, "imm16 out of range")
		}
		hw := uint32(i.Amount) / 16
		if i.Amount%16 != 0 || hw > 3 || (!i.Rd.Is64() && hw > 1) {
			return encErr(i, "bad move-wide shift %d", i.Amount)
		}
		return sfBit(i.Rd)<<31 | opc<<29 | 0x25<<23 | hw<<21 | uint32(i.Imm)<<5 | i.Rd.EncNum(), nil

	case SBFM, BFM, UBFM:
		var opc uint32
		switch i.Op {
		case SBFM:
			opc = 0
		case BFM:
			opc = 1
		case UBFM:
			opc = 2
		}
		sf := sfBit(i.Rd)
		n := sf
		maxv := int64(31)
		if sf == 1 {
			maxv = 63
		}
		if i.Imm < 0 || i.Imm > maxv || int64(i.Amount) < 0 || int64(i.Amount) > maxv {
			return encErr(i, "bitfield immediate out of range")
		}
		return sf<<31 | opc<<29 | 0x26<<23 | n<<22 | uint32(i.Imm)<<16 | uint32(i.Amount)<<10 | i.Rn.EncNum()<<5 | i.Rd.EncNum(), nil

	case EXTR:
		sf := sfBit(i.Rd)
		maxv := int64(31)
		if sf == 1 {
			maxv = 63
		}
		if i.Imm < 0 || i.Imm > maxv {
			return encErr(i, "extr lsb out of range")
		}
		return sf<<31 | 0x27<<23 | sf<<22 | i.Rm.EncNum()<<16 | uint32(i.Imm)<<10 | i.Rn.EncNum()<<5 | i.Rd.EncNum(), nil

	case UDIV, SDIV, LSLV, LSRV, ASRV, RORV:
		var opcode uint32
		switch i.Op {
		case UDIV:
			opcode = 0x2
		case SDIV:
			opcode = 0x3
		case LSLV:
			opcode = 0x8
		case LSRV:
			opcode = 0x9
		case ASRV:
			opcode = 0xa
		case RORV:
			opcode = 0xb
		}
		return sfBit(i.Rd)<<31 | 0xd6<<21 | i.Rm.EncNum()<<16 | opcode<<10 | i.Rn.EncNum()<<5 | i.Rd.EncNum(), nil

	case MADD, MSUB, SMADDL, UMADDL, SMULH, UMULH:
		var op31, o0, sf uint32
		ra := i.Ra
		sf = sfBit(i.Rd)
		switch i.Op {
		case MADD:
			op31, o0 = 0, 0
		case MSUB:
			op31, o0 = 0, 1
		case SMADDL:
			op31, o0, sf = 1, 0, 1
		case UMADDL:
			op31, o0, sf = 5, 0, 1
		case SMULH:
			op31, o0, sf = 2, 0, 1
			ra = XZR
		case UMULH:
			op31, o0, sf = 6, 0, 1
			ra = XZR
		}
		return sf<<31 | 0x1b<<24 | op31<<21 | i.Rm.EncNum()<<16 | o0<<15 | ra.EncNum()<<10 | i.Rn.EncNum()<<5 | i.Rd.EncNum(), nil

	case CLZ, CLS, RBIT, REV, REV16, REV32:
		sf := sfBit(i.Rd)
		var opcode uint32
		switch i.Op {
		case RBIT:
			opcode = 0
		case REV16:
			opcode = 1
		case REV32:
			if sf == 0 {
				return encErr(i, "rev32 requires 64-bit registers")
			}
			opcode = 2
		case REV:
			opcode = 2 + sf
		case CLZ:
			opcode = 4
		case CLS:
			opcode = 5
		}
		return sf<<31 | 1<<30 | 0xd6<<21 | opcode<<10 | i.Rn.EncNum()<<5 | i.Rd.EncNum(), nil

	case CSEL, CSINC, CSINV, CSNEG:
		var op, op2 uint32
		switch i.Op {
		case CSEL:
			op, op2 = 0, 0
		case CSINC:
			op, op2 = 0, 1
		case CSINV:
			op, op2 = 1, 0
		case CSNEG:
			op, op2 = 1, 1
		}
		return sfBit(i.Rd)<<31 | op<<30 | 0xd4<<21 | i.Rm.EncNum()<<16 | uint32(i.Cond)<<12 | op2<<10 | i.Rn.EncNum()<<5 | i.Rd.EncNum(), nil

	case CCMP, CCMN:
		op := uint32(1)
		if i.Op == CCMN {
			op = 0
		}
		nzcv := uint32(i.Amount) & 0xf
		base := sfBit(i.Rn)<<31 | op<<30 | 1<<29 | 0xd2<<21 | uint32(i.Cond)<<12 | i.Rn.EncNum()<<5 | nzcv
		if i.Rm == RegNone {
			if i.Imm < 0 || i.Imm > 31 {
				return encErr(i, "ccmp imm5 out of range")
			}
			return base | uint32(i.Imm)<<16 | 1<<11, nil
		}
		return base | i.Rm.EncNum()<<16, nil

	case B, BL:
		if i.Imm%4 != 0 || !fitsSigned(i.Imm/4, 26) {
			return encErr(i, "branch offset %d out of range", i.Imm)
		}
		op := uint32(0)
		if i.Op == BL {
			op = 1
		}
		return op<<31 | 0x5<<26 | uint32(i.Imm/4)&0x3ffffff, nil

	case BCOND:
		if i.Imm%4 != 0 || !fitsSigned(i.Imm/4, 19) {
			return encErr(i, "b.cond offset out of range")
		}
		return 0x54<<24 | (uint32(i.Imm/4)&0x7ffff)<<5 | uint32(i.Cond), nil

	case CBZ, CBNZ:
		if i.Imm%4 != 0 || !fitsSigned(i.Imm/4, 19) {
			return encErr(i, "cbz offset out of range")
		}
		op := uint32(0)
		if i.Op == CBNZ {
			op = 1
		}
		return sfBit(i.Rd)<<31 | 0x1a<<25 | op<<24 | (uint32(i.Imm/4)&0x7ffff)<<5 | i.Rd.EncNum(), nil

	case TBZ, TBNZ:
		if i.Imm%4 != 0 || !fitsSigned(i.Imm/4, 14) {
			return encErr(i, "tbz offset out of range")
		}
		bit := uint32(i.Amount)
		if bit > 63 || (bit > 31 && !i.Rd.Is64()) {
			return encErr(i, "tbz bit number out of range")
		}
		op := uint32(0)
		if i.Op == TBNZ {
			op = 1
		}
		return (bit>>5)<<31 | 0x1b<<25 | op<<24 | (bit&0x1f)<<19 | (uint32(i.Imm/4)&0x3fff)<<5 | i.Rd.EncNum(), nil

	case BR:
		return 0xd61f0000 | i.Rn.EncNum()<<5, nil
	case BLR:
		return 0xd63f0000 | i.Rn.EncNum()<<5, nil
	case RET:
		rn := i.Rn
		if rn == RegNone {
			rn = X30
		}
		return 0xd65f0000 | rn.EncNum()<<5, nil

	case LDR, LDRB, LDRH, LDRSB, LDRSH, LDRSW, STR, STRB, STRH:
		return encodeLoadStore(i)

	case LDP, STP:
		return encodeLoadStorePair(i)

	case LDXR, STXR, LDAXR, STLXR, LDAR, STLR:
		return encodeExclusive(i)

	case FMOV, FADD, FSUB, FMUL, FDIV, FNEG, FABS, FSQRT, FMADD, FMSUB,
		FCMP, FCSEL, FCVT, SCVTF, UCVTF, FCVTZS, FCVTZU:
		return encodeFP(i)

	case NOP:
		return 0xd503201f, nil
	case SVC:
		if i.Imm < 0 || i.Imm > 0xffff {
			return encErr(i, "svc imm16 out of range")
		}
		return 0xd4000001 | uint32(i.Imm)<<5, nil
	case BRK:
		if i.Imm < 0 || i.Imm > 0xffff {
			return encErr(i, "brk imm16 out of range")
		}
		return 0xd4200000 | uint32(i.Imm)<<5, nil
	case DMB:
		return 0xd50330bf | (uint32(i.Imm)&0xf)<<8, nil
	case DSB:
		return 0xd503309f | (uint32(i.Imm)&0xf)<<8, nil
	case ISB:
		return 0xd5033fdf, nil
	case MRS:
		return 0xd5300000 | (uint32(i.Imm)&0x7fff)<<5 | i.Rd.EncNum(), nil
	case MSR:
		return 0xd5100000 | (uint32(i.Imm)&0x7fff)<<5 | i.Rd.EncNum(), nil
	}
	return encErr(i, "unsupported op")
}

func encodeAddSub(i *Inst) (uint32, error) {
	var op uint32
	if i.Op == SUB || i.Op == SUBS {
		op = 1
	}
	var s uint32
	if i.Op == ADDS || i.Op == SUBS {
		s = 1
	}
	sf := sfBit(i.Rd)
	if i.Rd.IsZR() { // cmp/cmn use the source width
		sf = sfBit(i.Rn)
	}
	if i.Rm == RegNone {
		// Immediate form. Register 31 here means SP, so the zero register
		// cannot be written or read by this encoding.
		if i.Rn.IsZR() || (i.Rd.IsZR() && s == 0) {
			return encErr(i, "zero register is not encodable in add/sub immediate (31 means sp)")
		}
		imm := i.Imm
		var sh uint32
		if i.Ext == ExtLSL && i.Amount == 12 {
			sh = 1
		} else if imm >= 0 && imm < 4096 {
			sh = 0
		} else if imm > 0 && imm&0xfff == 0 && imm>>12 < 4096 {
			sh = 1
			imm >>= 12
		}
		if imm < 0 || imm > 4095 {
			return encErr(i, "add/sub immediate %d out of range", i.Imm)
		}
		return sf<<31 | op<<30 | s<<29 | 0x11<<24 | sh<<22 | uint32(imm)<<10 | i.Rn.EncNum()<<5 | i.Rd.EncNum(), nil
	}
	extended := false
	switch i.Ext {
	case ExtUXTB, ExtUXTH, ExtUXTW, ExtUXTX, ExtSXTB, ExtSXTH, ExtSXTW, ExtSXTX:
		extended = true
	case ExtNone, ExtLSL:
		// SP operands force the extended form (LSL means UXTX there).
		if i.Rn.IsSP() || i.Rd.IsSP() {
			extended = true
		}
	}
	if extended {
		ext := i.Ext
		if ext == ExtNone || ext == ExtLSL {
			ext = ExtUXTX
		}
		opt, ok := ext.option()
		if !ok {
			return encErr(i, "bad extend %v", i.Ext)
		}
		amt := uint32(0)
		if i.Amount > 0 {
			amt = uint32(i.Amount)
		}
		if amt > 4 {
			return encErr(i, "extend amount %d out of range", amt)
		}
		return sf<<31 | op<<30 | s<<29 | 0xb<<24 | 1<<21 | i.Rm.EncNum()<<16 | opt<<13 | amt<<10 | i.Rn.EncNum()<<5 | i.Rd.EncNum(), nil
	}
	// Shifted register form.
	var shift uint32
	switch i.Ext {
	case ExtNone, ExtLSL:
		shift = 0
	case ExtLSR:
		shift = 1
	case ExtASR:
		shift = 2
	default:
		return encErr(i, "bad shift %v for add/sub", i.Ext)
	}
	amt := uint32(i.Amount)
	if i.Amount < 0 {
		amt = 0
	}
	if amt > 63 || (sf == 0 && amt > 31) {
		return encErr(i, "shift amount out of range")
	}
	return sf<<31 | op<<30 | s<<29 | 0xb<<24 | shift<<22 | i.Rm.EncNum()<<16 | amt<<10 | i.Rn.EncNum()<<5 | i.Rd.EncNum(), nil
}

func encodeLogical(i *Inst) (uint32, error) {
	var opc, n uint32
	switch i.Op {
	case AND:
		opc = 0
	case ORR:
		opc = 1
	case EOR:
		opc = 2
	case ANDS:
		opc = 3
	case BIC:
		opc, n = 0, 1
	case ORN:
		opc, n = 1, 1
	case EON:
		opc, n = 2, 1
	case BICS:
		opc, n = 3, 1
	}
	sf := sfBit(i.Rd)
	if i.Rd.IsZR() {
		sf = sfBit(i.Rn)
	}
	if i.Rm == RegNone {
		if n == 1 {
			return encErr(i, "no immediate form")
		}
		nn, immr, imms, ok := EncodeBitmask(uint64(i.Imm), sf == 1)
		if !ok {
			return encErr(i, "value %#x is not a valid bitmask immediate", uint64(i.Imm))
		}
		return sf<<31 | opc<<29 | 0x24<<23 | nn<<22 | immr<<16 | imms<<10 | i.Rn.EncNum()<<5 | i.Rd.EncNum(), nil
	}
	var shift uint32
	switch i.Ext {
	case ExtNone, ExtLSL:
		shift = 0
	case ExtLSR:
		shift = 1
	case ExtASR:
		shift = 2
	case ExtROR:
		shift = 3
	default:
		return encErr(i, "bad shift %v for logical op", i.Ext)
	}
	amt := uint32(i.Amount)
	if i.Amount < 0 {
		amt = 0
	}
	if amt > 63 || (sf == 0 && amt > 31) {
		return encErr(i, "shift amount out of range")
	}
	return sf<<31 | opc<<29 | 0xa<<24 | shift<<22 | n<<21 | i.Rm.EncNum()<<16 | amt<<10 | i.Rn.EncNum()<<5 | i.Rd.EncNum(), nil
}

// memSizeOpc returns (size, V, opc, scale) for a single-register load/store.
func memSizeOpc(i *Inst) (size, v, opc uint32, scale uint, err error) {
	rt := i.Rd
	if rt.IsFP() {
		v = 1
		switch rt.FPBits() {
		case 8:
			size, scale = 0, 0
		case 16:
			size, scale = 1, 1
		case 32:
			size, scale = 2, 2
		case 64:
			size, scale = 3, 3
		case 128:
			size, scale = 0, 4
		}
		if i.Op == LDR {
			opc = 1
		} else {
			opc = 0
		}
		if rt.FPBits() == 128 {
			opc |= 2
		}
		return
	}
	switch i.Op {
	case LDRB, STRB:
		size, scale = 0, 0
	case LDRH, STRH:
		size, scale = 1, 1
	case LDRSB:
		size, scale = 0, 0
	case LDRSH:
		size, scale = 1, 1
	case LDRSW:
		size, scale = 2, 2
	case LDR, STR:
		if rt.Is64() {
			size, scale = 3, 3
		} else {
			size, scale = 2, 2
		}
	}
	switch i.Op {
	case STR, STRB, STRH:
		opc = 0
	case LDR, LDRB, LDRH:
		opc = 1
	case LDRSW:
		opc = 2
	case LDRSB, LDRSH:
		if rt.Is64() {
			opc = 2
		} else {
			opc = 3
		}
	}
	return
}

func encodeLoadStore(i *Inst) (uint32, error) {
	size, v, opc, scale, err := memSizeOpc(i)
	if err != nil {
		return 0, err
	}
	rt := i.Rd.EncNum()
	rn := i.Mem.Base.EncNum()
	base := size<<30 | 0x7<<27 | v<<26
	switch i.Mem.Mode {
	case AddrLiteral:
		// LDR (literal)
		if !i.Op.IsLoad() {
			return encErr(i, "literal addressing requires a load")
		}
		var lopc uint32
		switch {
		case v == 1 && scale == 2:
			lopc = 0
		case v == 1 && scale == 3:
			lopc = 1
		case v == 1 && scale == 4:
			lopc = 2
		case i.Op == LDRSW:
			lopc = 2
		case i.Op == LDR && i.Rd.Is64():
			lopc = 1
		case i.Op == LDR:
			lopc = 0
		default:
			return encErr(i, "op has no literal form")
		}
		if i.Imm%4 != 0 || !fitsSigned(i.Imm/4, 19) {
			return encErr(i, "literal offset out of range")
		}
		return lopc<<30 | 0x3<<27 | v<<26 | (uint32(i.Imm/4)&0x7ffff)<<5 | rt, nil

	case AddrBase, AddrImm:
		imm := int64(i.Mem.Imm)
		if imm >= 0 && imm%(1<<scale) == 0 && imm>>scale < 4096 {
			// Unsigned scaled offset.
			return base | 1<<24 | opc<<22 | uint32(imm>>scale)<<10 | rn<<5 | rt, nil
		}
		if !fitsSigned(imm, 9) {
			return encErr(i, "load/store offset %d out of range", imm)
		}
		// Unscaled signed (LDUR/STUR).
		return base | opc<<22 | (uint32(imm)&0x1ff)<<12 | rn<<5 | rt, nil

	case AddrPre, AddrPost:
		imm := int64(i.Mem.Imm)
		if !fitsSigned(imm, 9) {
			return encErr(i, "pre/post index offset %d out of range", imm)
		}
		idx := uint32(1) // post
		if i.Mem.Mode == AddrPre {
			idx = 3
		}
		return base | opc<<22 | (uint32(imm)&0x1ff)<<12 | idx<<10 | rn<<5 | rt, nil

	case AddrReg, AddrRegUXTW, AddrRegSXTW, AddrRegSXTX:
		var opt uint32
		switch i.Mem.Mode {
		case AddrReg:
			opt = 3 // LSL
		case AddrRegUXTW:
			opt = 2
		case AddrRegSXTW:
			opt = 6
		case AddrRegSXTX:
			opt = 7
		}
		var sbit uint32
		switch {
		case i.Mem.Amount <= 0:
			sbit = 0
		case uint(i.Mem.Amount) == scale:
			sbit = 1
		default:
			return encErr(i, "register-offset shift %d must be 0 or %d", i.Mem.Amount, scale)
		}
		return base | opc<<22 | 1<<21 | i.Mem.Index.EncNum()<<16 | opt<<13 | sbit<<12 | 2<<10 | rn<<5 | rt, nil
	}
	return encErr(i, "bad addressing mode")
}

func encodeLoadStorePair(i *Inst) (uint32, error) {
	var opc, v uint32
	var scale uint
	rt := i.Rd
	switch {
	case rt.IsFP() && rt.FPBits() == 32:
		opc, v, scale = 0, 1, 2
	case rt.IsFP() && rt.FPBits() == 64:
		opc, v, scale = 1, 1, 3
	case rt.IsFP() && rt.FPBits() == 128:
		opc, v, scale = 2, 1, 4
	case rt.Is64():
		opc, v, scale = 2, 0, 3
	default:
		opc, v, scale = 0, 0, 2
	}
	l := uint32(0)
	if i.Op == LDP {
		l = 1
	}
	var mode uint32
	switch i.Mem.Mode {
	case AddrBase, AddrImm:
		mode = 2
	case AddrPost:
		mode = 1
	case AddrPre:
		mode = 3
	default:
		return encErr(i, "bad pair addressing mode")
	}
	imm := int64(i.Mem.Imm)
	if imm%(1<<scale) != 0 || !fitsSigned(imm>>scale, 7) {
		return encErr(i, "pair offset %d out of range", imm)
	}
	imm7 := uint32(imm>>scale) & 0x7f
	return opc<<30 | 0x5<<27 | v<<26 | mode<<23 | l<<22 | imm7<<15 | i.Rm.EncNum()<<10 | i.Mem.Base.EncNum()<<5 | i.Rd.EncNum(), nil
}

func encodeExclusive(i *Inst) (uint32, error) {
	size := uint32(3)
	if !i.Rd.Is64() {
		size = 2
	}
	var o2, l, o1, o0 uint32
	rs := uint32(31)
	rt2 := uint32(31)
	rn := i.Rn.EncNum()
	rt := i.Rd.EncNum()
	switch i.Op {
	case LDXR:
		o2, l, o0 = 0, 1, 0
	case LDAXR:
		o2, l, o0 = 0, 1, 1
	case STXR, STLXR:
		o2, l = 0, 0
		if i.Op == STLXR {
			o0 = 1
		}
		rs = i.Rm.EncNum() // status register
		if !i.Rd.Is64() {
			size = 2
		} else {
			size = 3
		}
	case LDAR:
		o2, l, o0 = 1, 1, 1
	case STLR:
		o2, l, o0 = 1, 0, 1
	}
	return size<<30 | 0x8<<24 | o2<<23 | l<<22 | o1<<21 | rs<<16 | o0<<15 | rt2<<10 | rn<<5 | rt, nil
}

func fpType(r Reg) (uint32, error) {
	switch r.FPBits() {
	case 32:
		return 0, nil
	case 64:
		return 1, nil
	case 16:
		return 3, nil
	}
	return 0, fmt.Errorf("register %v has no fp type", r)
}

func encodeFP(i *Inst) (uint32, error) {
	switch i.Op {
	case FADD, FSUB, FMUL, FDIV:
		ft, err := fpType(i.Rd)
		if err != nil {
			return encErr(i, "%v", err)
		}
		var opcode uint32
		switch i.Op {
		case FMUL:
			opcode = 0
		case FDIV:
			opcode = 1
		case FADD:
			opcode = 2
		case FSUB:
			opcode = 3
		}
		return 0x1e<<24 | ft<<22 | 1<<21 | i.Rm.EncNum()<<16 | opcode<<12 | 2<<10 | i.Rn.EncNum()<<5 | i.Rd.EncNum(), nil

	case FMADD, FMSUB:
		ft, err := fpType(i.Rd)
		if err != nil {
			return encErr(i, "%v", err)
		}
		o0 := uint32(0)
		if i.Op == FMSUB {
			o0 = 1
		}
		return 0x1f<<24 | ft<<22 | i.Rm.EncNum()<<16 | o0<<15 | i.Ra.EncNum()<<10 | i.Rn.EncNum()<<5 | i.Rd.EncNum(), nil

	case FNEG, FABS, FSQRT, FCVT:
		ft, err := fpType(i.Rn)
		if err != nil {
			return encErr(i, "%v", err)
		}
		var opcode uint32
		switch i.Op {
		case FABS:
			opcode = 1
		case FNEG:
			opcode = 2
		case FSQRT:
			opcode = 3
		case FCVT:
			dt, err := fpType(i.Rd)
			if err != nil {
				return encErr(i, "%v", err)
			}
			opcode = 0x4 | dt
		}
		return 0x1e<<24 | ft<<22 | 1<<21 | opcode<<15 | 1<<14 | i.Rn.EncNum()<<5 | i.Rd.EncNum(), nil

	case FCMP:
		ft, err := fpType(i.Rn)
		if err != nil {
			return encErr(i, "%v", err)
		}
		opcode2 := uint32(0)
		rm := uint32(0)
		if i.Rm == RegNone {
			opcode2 = 8 // compare with 0.0
		} else {
			rm = i.Rm.EncNum()
		}
		return 0x1e<<24 | ft<<22 | 1<<21 | rm<<16 | 1<<13 | i.Rn.EncNum()<<5 | opcode2, nil

	case FCSEL:
		ft, err := fpType(i.Rd)
		if err != nil {
			return encErr(i, "%v", err)
		}
		return 0x1e<<24 | ft<<22 | 1<<21 | i.Rm.EncNum()<<16 | uint32(i.Cond)<<12 | 3<<10 | i.Rn.EncNum()<<5 | i.Rd.EncNum(), nil

	case SCVTF, UCVTF, FCVTZS, FCVTZU:
		var rmode, opcode uint32
		var gpr, fpr Reg
		switch i.Op {
		case SCVTF:
			rmode, opcode = 0, 2
			gpr, fpr = i.Rn, i.Rd
		case UCVTF:
			rmode, opcode = 0, 3
			gpr, fpr = i.Rn, i.Rd
		case FCVTZS:
			rmode, opcode = 3, 0
			gpr, fpr = i.Rd, i.Rn
		case FCVTZU:
			rmode, opcode = 3, 1
			gpr, fpr = i.Rd, i.Rn
		}
		ft, err := fpType(fpr)
		if err != nil {
			return encErr(i, "%v", err)
		}
		sf := sfBit(gpr)
		return sf<<31 | 0x1e<<24 | ft<<22 | 1<<21 | rmode<<19 | opcode<<16 | i.Rn.EncNum()<<5 | i.Rd.EncNum(), nil

	case FMOV:
		switch {
		case i.Rn == RegNone:
			// Immediate form.
			ft, err := fpType(i.Rd)
			if err != nil {
				return encErr(i, "%v", err)
			}
			imm8, ok := encodeFPImm8(uint64(i.Imm))
			if !ok {
				f := math.Float64frombits(uint64(i.Imm))
				return encErr(i, "%v is not an fmov immediate", f)
			}
			return 0x1e<<24 | ft<<22 | 1<<21 | imm8<<13 | 1<<12 | i.Rd.EncNum(), nil
		case i.Rd.IsFP() && i.Rn.IsFP():
			ft, err := fpType(i.Rd)
			if err != nil {
				return encErr(i, "%v", err)
			}
			return 0x1e<<24 | ft<<22 | 1<<21 | 1<<14 | i.Rn.EncNum()<<5 | i.Rd.EncNum(), nil
		case i.Rd.IsGP(): // fp -> gpr
			ft, err := fpType(i.Rn)
			if err != nil {
				return encErr(i, "%v", err)
			}
			sf := sfBit(i.Rd)
			return sf<<31 | 0x1e<<24 | ft<<22 | 1<<21 | 6<<16 | i.Rn.EncNum()<<5 | i.Rd.EncNum(), nil
		default: // gpr -> fp
			ft, err := fpType(i.Rd)
			if err != nil {
				return encErr(i, "%v", err)
			}
			sf := sfBit(i.Rn)
			return sf<<31 | 0x1e<<24 | ft<<22 | 1<<21 | 7<<16 | i.Rn.EncNum()<<5 | i.Rd.EncNum(), nil
		}
	}
	return encErr(i, "unsupported fp op")
}
