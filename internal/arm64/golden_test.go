package arm64

import "testing"

// Golden encodings: well-known AArch64 instruction words (as produced by
// binutils/LLVM and seen in every disassembly listing), checked against
// our encoder. This pins the implementation to the real ISA rather than
// just to itself.
func TestGoldenEncodings(t *testing.T) {
	golden := []struct {
		asm  string
		word uint32
	}{
		{"nop", 0xd503201f},
		{"ret", 0xd65f03c0},
		{"ret x1", 0xd65f0020},
		{"br x1", 0xd61f0020},
		{"br x16", 0xd61f0200},
		{"blr x1", 0xd63f0020},
		{"svc #0", 0xd4000001},
		{"brk #0", 0xd4200000},
		{"b 0", 0x14000000},
		{"b 4", 0x14000001},
		{"bl 0", 0x94000000},
		{"b.eq 4", 0x54000020},
		{"b.ne 4", 0x54000021},
		{"cbz x0, 8", 0xb4000040},
		{"cbnz w0, 8", 0x35000040},
		{"tbz x0, #0, 8", 0x36000040},
		{"mov x0, #1", 0xd2800020}, // movz x0, #1
		{"mov w0, #1", 0x52800020}, // movz w0, #1
		{"movk x0, #1, lsl #16", 0xf2a00020},
		{"movn x0, #0", 0x92800000},
		{"mov x0, x1", 0xaa0103e0}, // orr x0, xzr, x1
		{"mov w0, w1", 0x2a0103e0},
		{"mov x29, sp", 0x910003fd}, // add x29, sp, #0
		{"mov sp, x29", 0x910003bf}, // add sp, x29, #0
		{"add x0, x1, #16", 0x91004020},
		{"add x0, x1, #1, lsl #12", 0x91400420},
		{"sub sp, sp, #32", 0xd10083ff},
		{"add sp, sp, #32", 0x910083ff},
		{"add x0, x1, x2", 0x8b020020},
		{"add w0, w1, w2", 0x0b020020},
		{"sub x0, x1, x2", 0xcb020020},
		{"add x0, x1, x2, lsl #3", 0x8b020c20},
		{"adds x0, x1, x2", 0xab020020},
		{"subs x0, x1, x2", 0xeb020020},
		{"cmp x0, #0", 0xf100001f}, // subs xzr, x0, #0
		{"cmp w0, w1", 0x6b01001f},
		{"and x0, x1, x2", 0x8a020020},
		{"orr x0, x1, x2", 0xaa020020},
		{"eor x0, x1, x2", 0xca020020},
		{"and x0, x1, #0xff", 0x92401c20},
		{"and w0, w1, #0xff", 0x12001c20},
		{"lsl x0, x1, #1", 0xd37ff820}, // ubfm x0, x1, #63, #62
		{"lsr x0, x1, #1", 0xd341fc20}, // ubfm x0, x1, #1, #63
		{"mul x0, x1, x2", 0x9b027c20}, // madd x0, x1, x2, xzr
		{"udiv x0, x1, x2", 0x9ac20820},
		{"sdiv x0, x1, x2", 0x9ac20c20},
		{"ldr x0, [x1]", 0xf9400020},
		{"ldr w0, [x1]", 0xb9400020},
		{"ldr x0, [x1, #8]", 0xf9400420},
		{"ldrb w0, [x1]", 0x39400020},
		{"strb w0, [x1]", 0x39000020},
		{"ldrh w0, [x1]", 0x79400020},
		{"str x0, [x1]", 0xf9000020},
		{"str x0, [sp, #-16]!", 0xf81f0fe0},
		{"ldr x0, [sp], #16", 0xf84107e0},
		{"ldr x0, [x1, x2]", 0xf8626820},
		{"ldr x0, [x1, x2, lsl #3]", 0xf8627820},
		{"stp x29, x30, [sp, #-16]!", 0xa9bf7bfd},
		{"ldp x29, x30, [sp], #16", 0xa8c17bfd},
		{"stp x19, x20, [sp, #16]", 0xa90153f3},
		{"adr x0, 0", 0x10000000},
		{"adrp x0, 0", 0x90000000},
		{"csel x0, x1, x2, eq", 0x9a820020},
		{"cset x0, eq", 0x9a9f17e0}, // csinc x0, xzr, xzr, ne
		{"clz x0, x1", 0xdac01020},
		{"rbit x0, x1", 0xdac00020},
		{"rev x0, x1", 0xdac00c20},
		{"sxtw x0, w1", 0x93407c20}, // sbfm x0, x1, #0, #31
		{"ldxr x0, [x1]", 0xc85f7c20},
		{"stxr w2, x0, [x1]", 0xc8027c20},
		{"ldar x0, [x1]", 0xc8dffc20},
		{"stlr x0, [x1]", 0xc89ffc20},
		{"fadd d0, d1, d2", 0x1e622820},
		{"fmul d0, d1, d2", 0x1e620820},
		{"fdiv d0, d1, d2", 0x1e621820},
		{"fmov d0, d1", 0x1e604020},
		{"fmov d0, x1", 0x9e670020},
		{"fmov x0, d1", 0x9e660020},
		{"scvtf d0, x1", 0x9e620020},
		{"fcvtzs x0, d1", 0x9e780020},
		{"fsqrt d0, d1", 0x1e61c020},
		{"fcmp d0, d1", 0x1e612000},
		{"ldr d0, [x1]", 0xfd400020},
		{"str d0, [x1]", 0xfd000020},
		{"ldr q0, [x1]", 0x3dc00020},
		{"str q0, [x1]", 0x3d800020},
		{"ldr s0, [x1]", 0xbd400020},
		{"dmb ish", 0xd5033bbf},
		{"isb", 0xd5033fdf},
	}
	for _, g := range golden {
		inst, err := ParseInst(g.asm)
		if err != nil {
			t.Errorf("parse %q: %v", g.asm, err)
			continue
		}
		w, err := Encode(&inst)
		if err != nil {
			t.Errorf("encode %q: %v", g.asm, err)
			continue
		}
		if w != g.word {
			t.Errorf("%-32q = %#08x, golden %#08x", g.asm, w, g.word)
		}
		// The golden word must also decode back to an equivalent form.
		dec, err := Decode(g.word)
		if err != nil {
			t.Errorf("decode golden %#08x (%q): %v", g.word, g.asm, err)
			continue
		}
		w2, err := Encode(&dec)
		if err != nil || w2 != g.word {
			t.Errorf("golden %q round trip: %#08x -> %q -> %#08x (%v)",
				g.asm, g.word, dec.String(), w2, err)
		}
	}
}
