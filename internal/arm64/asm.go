package arm64

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"
)

// ItemKind distinguishes the pieces of a parsed assembly file.
type ItemKind uint8

const (
	ItemInst ItemKind = iota
	ItemLabel
	ItemDirective
)

// Item is one element of an assembly file: an instruction, a label
// definition, or a directive.
type Item struct {
	Kind      ItemKind
	Inst      Inst     // ItemInst
	Label     string   // ItemLabel
	Directive string   // ItemDirective, without the leading dot
	Args      []string // directive arguments
	LineNo    int      // 1-based source line
}

// File is a parsed assembly source file.
type File struct {
	Items []Item
}

// stripComment removes //, @ and ; comments (not inside string literals).
func stripComment(line string) string {
	inStr := false
	for i := 0; i < len(line); i++ {
		c := line[i]
		if c == '"' {
			inStr = !inStr
			continue
		}
		if inStr {
			if c == '\\' {
				i++
			}
			continue
		}
		if c == ';' || c == '@' {
			return line[:i]
		}
		if c == '/' && i+1 < len(line) && line[i+1] == '/' {
			return line[:i]
		}
	}
	return line
}

// stripBlockComments removes /* ... */ comments (which may span lines),
// preserving newlines so line numbers in diagnostics stay accurate.
// String literals are respected.
func stripBlockComments(src string) string {
	var b strings.Builder
	b.Grow(len(src))
	inStr, inComment := false, false
	for i := 0; i < len(src); i++ {
		c := src[i]
		switch {
		case inComment:
			if c == '\n' {
				b.WriteByte('\n')
			}
			if c == '*' && i+1 < len(src) && src[i+1] == '/' {
				inComment = false
				i++
			}
		case inStr:
			b.WriteByte(c)
			if c == '\\' && i+1 < len(src) {
				i++
				b.WriteByte(src[i])
			} else if c == '"' {
				inStr = false
			}
		case c == '"':
			inStr = true
			b.WriteByte(c)
		case c == '/' && i+1 < len(src) && src[i+1] == '*':
			inComment = true
			i++
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// ParseFile parses GNU-syntax assembly source into items.
func ParseFile(src string) (*File, error) {
	f := &File{}
	src = stripBlockComments(src)
	for no, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(stripComment(line))
		if line == "" {
			continue
		}
		// A line may start with one or more labels.
		for {
			colon := strings.IndexByte(line, ':')
			if colon < 0 {
				break
			}
			name := strings.TrimSpace(line[:colon])
			if !isSymbolName(name) {
				break
			}
			f.Items = append(f.Items, Item{Kind: ItemLabel, Label: name, LineNo: no + 1})
			line = strings.TrimSpace(line[colon+1:])
			if line == "" {
				break
			}
		}
		if line == "" {
			continue
		}
		if line[0] == '.' {
			sp := strings.IndexAny(line, " \t")
			dir := line
			rest := ""
			if sp >= 0 {
				dir = line[:sp]
				rest = strings.TrimSpace(line[sp+1:])
			}
			var args []string
			if rest != "" {
				args = splitOperands(rest)
			}
			f.Items = append(f.Items, Item{
				Kind:      ItemDirective,
				Directive: strings.TrimPrefix(dir, "."),
				Args:      args,
				LineNo:    no + 1,
			})
			continue
		}
		inst, err := ParseInst(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", no+1, err)
		}
		f.Items = append(f.Items, Item{Kind: ItemInst, Inst: inst, LineNo: no + 1})
	}
	return f, nil
}

func isSymbolName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == '.' || c == '$' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// String renders the file back to assembly text.
func (f *File) String() string {
	var b strings.Builder
	for _, it := range f.Items {
		switch it.Kind {
		case ItemLabel:
			b.WriteString(it.Label)
			b.WriteString(":\n")
		case ItemDirective:
			b.WriteByte('.')
			b.WriteString(it.Directive)
			if len(it.Args) > 0 {
				b.WriteByte(' ')
				b.WriteString(strings.Join(it.Args, ", "))
			}
			b.WriteByte('\n')
		case ItemInst:
			b.WriteByte('\t')
			b.WriteString(it.Inst.String())
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Layout tells the assembler where each section will live in the target
// address space.
type Layout struct {
	TextBase   uint64
	RODataBase uint64 // 0: placed after text, page aligned
	DataBase   uint64 // 0: placed after rodata, page aligned
	PageSize   uint64 // 0: 16KiB
}

// Image is a fully resolved program image.
type Image struct {
	TextAddr   uint64
	Text       []byte
	RODataAddr uint64
	ROData     []byte
	DataAddr   uint64
	Data       []byte
	BSSAddr    uint64
	BSSSize    uint64
	Symbols    map[string]uint64
	Globals    map[string]bool
	Entry      uint64 // address of _start, main, or text base
}

type section int

const (
	secText section = iota
	secROData
	secData
	secBSS
	numSections
)

func alignUp(v, a uint64) uint64 {
	if a == 0 {
		return v
	}
	return (v + a - 1) &^ (a - 1)
}

// AssembleError decorates assembly failures with a line number.
type AssembleError struct {
	LineNo int
	Err    error
}

func (e *AssembleError) Error() string {
	return fmt.Sprintf("line %d: %v", e.LineNo, e.Err)
}

func (e *AssembleError) Unwrap() error { return e.Err }

// Assemble lays out and encodes the file into a linked image.
func Assemble(f *File, layout Layout) (*Image, error) {
	if layout.PageSize == 0 {
		layout.PageSize = 16 * 1024
	}

	// Pass 1: compute section sizes and symbol offsets.
	cur := secText
	var size [numSections]uint64
	type symdef struct {
		sec section
		off uint64
	}
	syms := make(map[string]symdef)
	globals := make(map[string]bool)

	sizeOf := func(it *Item) (uint64, error) {
		switch it.Directive {
		case "quad", "xword", "dword", "8byte":
			return uint64(8 * len(it.Args)), nil
		case "word", "long", "4byte":
			return uint64(4 * len(it.Args)), nil
		case "hword", "short", "2byte":
			return uint64(2 * len(it.Args)), nil
		case "byte":
			return uint64(len(it.Args)), nil
		case "ascii", "asciz", "string":
			n := uint64(0)
			for _, a := range it.Args {
				s, err := parseStringLit(a)
				if err != nil {
					return 0, err
				}
				n += uint64(len(s))
				if it.Directive != "ascii" {
					n++
				}
			}
			return n, nil
		case "space", "skip", "zero":
			if len(it.Args) < 1 {
				return 0, fmt.Errorf(".space needs a size")
			}
			v, ok := parseImmVal(it.Args[0])
			if !ok || v < 0 {
				return 0, fmt.Errorf("bad .space size %q", it.Args[0])
			}
			return uint64(v), nil
		}
		return 0, nil
	}

	for idx := range f.Items {
		it := &f.Items[idx]
		switch it.Kind {
		case ItemLabel:
			if _, dup := syms[it.Label]; dup {
				return nil, &AssembleError{it.LineNo, fmt.Errorf("duplicate symbol %q", it.Label)}
			}
			syms[it.Label] = symdef{cur, size[cur]}
		case ItemInst:
			if cur != secText {
				return nil, &AssembleError{it.LineNo, fmt.Errorf("instruction outside .text")}
			}
			size[cur] += 4
		case ItemDirective:
			switch it.Directive {
			case "text":
				cur = secText
			case "data":
				cur = secData
			case "bss":
				cur = secBSS
			case "rodata":
				cur = secROData
			case "section":
				if len(it.Args) > 0 {
					switch {
					case strings.HasPrefix(it.Args[0], ".text"):
						cur = secText
					case strings.HasPrefix(it.Args[0], ".rodata"):
						cur = secROData
					case strings.HasPrefix(it.Args[0], ".bss"):
						cur = secBSS
					default:
						cur = secData
					}
				}
			case "globl", "global":
				for _, a := range it.Args {
					globals[a] = true
				}
			case "align", "p2align":
				if len(it.Args) >= 1 {
					v, ok := parseImmVal(it.Args[0])
					if !ok || v < 0 || v > 16 {
						return nil, &AssembleError{it.LineNo, fmt.Errorf("bad alignment")}
					}
					size[cur] = alignUp(size[cur], 1<<uint(v))
				}
			case "balign":
				if len(it.Args) >= 1 {
					v, ok := parseImmVal(it.Args[0])
					if !ok || v <= 0 {
						return nil, &AssembleError{it.LineNo, fmt.Errorf("bad alignment")}
					}
					size[cur] = alignUp(size[cur], uint64(v))
				}
			default:
				n, err := sizeOf(it)
				if err != nil {
					return nil, &AssembleError{it.LineNo, err}
				}
				size[cur] += n
			}
		}
	}

	// Section base addresses.
	var base [numSections]uint64
	base[secText] = layout.TextBase
	base[secROData] = layout.RODataBase
	if base[secROData] == 0 {
		base[secROData] = alignUp(base[secText]+size[secText], layout.PageSize)
	}
	base[secData] = layout.DataBase
	if base[secData] == 0 {
		base[secData] = alignUp(base[secROData]+size[secROData], layout.PageSize)
	}
	base[secBSS] = alignUp(base[secData]+size[secData], layout.PageSize)

	symAddr := make(map[string]uint64, len(syms))
	for name, d := range syms {
		symAddr[name] = base[d.sec] + d.off
	}

	resolve := func(label string, lineNo int) (uint64, error) {
		a, ok := symAddr[label]
		if !ok {
			return 0, &AssembleError{lineNo, fmt.Errorf("undefined symbol %q", label)}
		}
		return a, nil
	}

	// Pass 2: emit bytes.
	var buf [numSections][]byte
	cur = secText
	emit := func(sec section, b ...byte) { buf[sec] = append(buf[sec], b...) }

	for idx := range f.Items {
		it := &f.Items[idx]
		switch it.Kind {
		case ItemInst:
			pc := base[secText] + uint64(len(buf[secText]))
			inst := it.Inst
			if inst.Label != "" {
				if strings.HasPrefix(inst.Label, ":lo12:") {
					a, err := resolve(inst.Label[len(":lo12:"):], it.LineNo)
					if err != nil {
						return nil, err
					}
					inst.Imm = int64(a & 0xfff)
				} else {
					a, err := resolve(inst.Label, it.LineNo)
					if err != nil {
						return nil, err
					}
					switch inst.Op {
					case ADRP:
						inst.Imm = int64(a&^0xfff) - int64(pc&^0xfff)
					case ADR, B, BL, BCOND, CBZ, CBNZ, TBZ, TBNZ:
						inst.Imm = int64(a) - int64(pc)
					default:
						if inst.Mem.Mode == AddrLiteral {
							inst.Imm = int64(a) - int64(pc)
						} else {
							inst.Imm = int64(a)
						}
					}
				}
				inst.Label = ""
			}
			w, err := Encode(&inst)
			if err != nil {
				return nil, &AssembleError{it.LineNo, err}
			}
			var b [4]byte
			binary.LittleEndian.PutUint32(b[:], w)
			emit(secText, b[:]...)

		case ItemDirective:
			switch it.Directive {
			case "text":
				cur = secText
			case "data":
				cur = secData
			case "bss":
				cur = secBSS
			case "rodata":
				cur = secROData
			case "section":
				if len(it.Args) > 0 {
					switch {
					case strings.HasPrefix(it.Args[0], ".text"):
						cur = secText
					case strings.HasPrefix(it.Args[0], ".rodata"):
						cur = secROData
					case strings.HasPrefix(it.Args[0], ".bss"):
						cur = secBSS
					default:
						cur = secData
					}
				}
			case "align", "p2align", "balign":
				if len(it.Args) >= 1 {
					v, _ := parseImmVal(it.Args[0])
					a := uint64(1) << uint(v)
					if it.Directive == "balign" {
						a = uint64(v)
					}
					for uint64(len(buf[cur]))%a != 0 {
						if cur == secText {
							var b [4]byte
							binary.LittleEndian.PutUint32(b[:], 0xd503201f) // nop
							if uint64(len(buf[cur]))%4 == 0 && a >= 4 {
								emit(cur, b[:]...)
								continue
							}
						}
						emit(cur, 0)
					}
				}
			case "quad", "xword", "dword", "8byte":
				for _, a := range it.Args {
					var v uint64
					if isImm(a) {
						sv, _ := parseImmVal(a)
						v = uint64(sv)
					} else {
						addr, err := resolve(a, it.LineNo)
						if err != nil {
							return nil, err
						}
						v = addr
					}
					var b [8]byte
					binary.LittleEndian.PutUint64(b[:], v)
					emit(cur, b[:]...)
				}
			case "word", "long", "4byte":
				for _, a := range it.Args {
					var v uint64
					if isImm(a) {
						sv, _ := parseImmVal(a)
						v = uint64(sv)
					} else {
						addr, err := resolve(a, it.LineNo)
						if err != nil {
							return nil, err
						}
						v = addr
					}
					var b [4]byte
					binary.LittleEndian.PutUint32(b[:], uint32(v))
					emit(cur, b[:]...)
				}
			case "hword", "short", "2byte":
				for _, a := range it.Args {
					sv, _ := parseImmVal(a)
					emit(cur, byte(sv), byte(sv>>8))
				}
			case "byte":
				for _, a := range it.Args {
					sv, _ := parseImmVal(a)
					emit(cur, byte(sv))
				}
			case "ascii", "asciz", "string":
				for _, a := range it.Args {
					s, err := parseStringLit(a)
					if err != nil {
						return nil, &AssembleError{it.LineNo, err}
					}
					emit(cur, []byte(s)...)
					if it.Directive != "ascii" {
						emit(cur, 0)
					}
				}
			case "space", "skip", "zero":
				v, _ := parseImmVal(it.Args[0])
				emit(cur, make([]byte, v)...)
			}
		}
	}

	img := &Image{
		TextAddr:   base[secText],
		Text:       buf[secText],
		RODataAddr: base[secROData],
		ROData:     buf[secROData],
		DataAddr:   base[secData],
		Data:       buf[secData],
		BSSAddr:    base[secBSS],
		BSSSize:    size[secBSS],
		Symbols:    symAddr,
		Globals:    globals,
		Entry:      base[secText],
	}
	if a, ok := symAddr["_start"]; ok {
		img.Entry = a
	} else if a, ok := symAddr["main"]; ok {
		img.Entry = a
	}
	return img, nil
}

func parseStringLit(s string) (string, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
		return "", fmt.Errorf("bad string literal %s", s)
	}
	out, err := strconv.Unquote(s)
	if err != nil {
		return "", fmt.Errorf("bad string literal %s: %v", s, err)
	}
	return out, nil
}
