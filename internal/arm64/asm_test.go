package arm64

import (
	"encoding/binary"
	"strings"
	"testing"
)

const helloSrc = `
// A tiny program exercising labels, sections, and data directives.
.text
.globl _start
_start:
	adrp x0, msg
	add x0, x0, :lo12:msg
	mov x1, #14
	bl compute
	cbz x0, done
loop:
	sub x0, x0, #1
	cbnz x0, loop
done:
	ret

compute:
	add x0, x1, #1
	ret

.data
counter:
	.quad 0
table:
	.quad _start, done
	.word 42, 43
	.byte 1, 2, 3
.align 3
aligned8:
	.quad 7

.rodata
msg:
	.asciz "hello, world\n"

.bss
buf:
	.space 64
`

func TestAssembleProgram(t *testing.T) {
	f, err := ParseFile(helloSrc)
	if err != nil {
		t.Fatal(err)
	}
	img, err := Assemble(f, Layout{TextBase: 0x100000})
	if err != nil {
		t.Fatal(err)
	}
	if img.TextAddr != 0x100000 {
		t.Errorf("text base = %#x", img.TextAddr)
	}
	if len(img.Text) != 10*4 {
		t.Errorf("text size = %d, want 40", len(img.Text))
	}
	if img.Entry != img.Symbols["_start"] {
		t.Errorf("entry = %#x, want _start %#x", img.Entry, img.Symbols["_start"])
	}
	if !img.Globals["_start"] {
		t.Error("_start not global")
	}
	// Branch to compute must point at the compute label.
	blWord := binary.LittleEndian.Uint32(img.Text[3*4:])
	bl, err := Decode(blWord)
	if err != nil || bl.Op != BL {
		t.Fatalf("word 3 is %v (%v), want bl", bl.Op, err)
	}
	blTarget := img.TextAddr + 3*4 + uint64(bl.Imm)
	if blTarget != img.Symbols["compute"] {
		t.Errorf("bl target %#x, want compute %#x", blTarget, img.Symbols["compute"])
	}
	// Data: .quad _start must hold the absolute address.
	tblOff := img.Symbols["table"] - img.DataAddr
	got := binary.LittleEndian.Uint64(img.Data[tblOff:])
	if got != img.Symbols["_start"] {
		t.Errorf(".quad _start = %#x, want %#x", got, img.Symbols["_start"])
	}
	// rodata content.
	msgOff := img.Symbols["msg"] - img.RODataAddr
	if s := string(img.ROData[msgOff : msgOff+13]); s != "hello, world\n" {
		t.Errorf("msg = %q", s)
	}
	// .align 3 must make aligned8 8-byte aligned.
	if img.Symbols["aligned8"]%8 != 0 {
		t.Errorf("aligned8 at %#x not aligned", img.Symbols["aligned8"])
	}
	// BSS is after data, page aligned, 64 bytes.
	if img.BSSSize != 64 {
		t.Errorf("bss size %d", img.BSSSize)
	}
	// adrp/lo12 pair must compute the address of msg.
	w0 := binary.LittleEndian.Uint32(img.Text[0:])
	adrp, _ := Decode(w0)
	w1 := binary.LittleEndian.Uint32(img.Text[4:])
	addlo, _ := Decode(w1)
	if adrp.Op != ADRP || addlo.Op != ADD {
		t.Fatalf("prologue ops: %v %v", adrp.Op, addlo.Op)
	}
	page := (img.TextAddr &^ 0xfff) + uint64(adrp.Imm)
	if page+uint64(addlo.Imm) != img.Symbols["msg"] {
		t.Errorf("adrp+lo12 = %#x, want msg %#x", page+uint64(addlo.Imm), img.Symbols["msg"])
	}
}

func TestFileStringRoundTrip(t *testing.T) {
	f, err := ParseFile(helloSrc)
	if err != nil {
		t.Fatal(err)
	}
	text := f.String()
	f2, err := ParseFile(text)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	img1, err := Assemble(f, Layout{TextBase: 0x100000})
	if err != nil {
		t.Fatal(err)
	}
	img2, err := Assemble(f2, Layout{TextBase: 0x100000})
	if err != nil {
		t.Fatal(err)
	}
	if string(img1.Text) != string(img2.Text) || string(img1.Data) != string(img2.Data) {
		t.Error("reassembled image differs")
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		src string
		sub string
	}{
		{"dup:\ndup:\n\tret", "duplicate symbol"},
		{"\tb nowhere", "undefined symbol"},
		{".data\n\tadd x0, x1, #1", "outside .text"},
		{"x:\n\tldr x0, [x1, #99999]", "out of range"},
	}
	for _, c := range cases {
		f, err := ParseFile(c.src)
		if err == nil {
			_, err = Assemble(f, Layout{TextBase: 0x100000})
		}
		if err == nil || !strings.Contains(err.Error(), c.sub) {
			t.Errorf("src %q: err = %v, want substring %q", c.src, err, c.sub)
		}
	}
}

func TestStripComment(t *testing.T) {
	cases := map[string]string{
		"add x0, x1, #1 // comment":     "add x0, x1, #1 ",
		"add x0, x1, #1 ; tail":         "add x0, x1, #1 ",
		`.asciz "a // not a comment"`:   `.asciz "a // not a comment"`,
		"mov x0, #2 @ arm style":        "mov x0, #2 ",
		`.asciz "quote \" inside" // c`: `.asciz "quote \" inside" `,
	}
	for in, want := range cases {
		if got := stripComment(in); got != want {
			t.Errorf("stripComment(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestDestSrcRegs(t *testing.T) {
	cases := []struct {
		src  string
		dst  []Reg
		srcs []Reg
	}{
		{"add x0, x1, x2", []Reg{X0}, []Reg{X1, X2}},
		{"ldr x0, [x1, x2]", []Reg{X0}, []Reg{X1, X2}},
		{"str x0, [x1], #8", []Reg{X1}, []Reg{X0, X1}},
		{"ldp x0, x1, [sp], #16", []Reg{X0, X1, SP}, []Reg{SP}},
		{"stp x29, x30, [sp, #-32]!", []Reg{SP}, []Reg{X29, X30, SP}},
		{"bl 16", []Reg{X30}, nil},
		{"blr x5", []Reg{X30}, []Reg{X5}},
		{"ret", nil, []Reg{X30}},
		{"cmp x0, x1", nil, []Reg{X0, X1}},
		{"stxr w2, x0, [x1]", []Reg{W2}, []Reg{X0, X1}},
		{"madd x0, x1, x2, x3", []Reg{X0}, []Reg{X1, X2, X3}},
	}
	eq := func(a, b []Reg) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	for _, c := range cases {
		inst, err := ParseInst(c.src)
		if err != nil {
			t.Fatalf("parse %q: %v", c.src, err)
		}
		if got := inst.DestRegs(nil); !eq(got, c.dst) {
			t.Errorf("%q DestRegs = %v, want %v", c.src, got, c.dst)
		}
		if got := inst.SrcRegs(nil); !eq(got, c.srcs) {
			t.Errorf("%q SrcRegs = %v, want %v", c.src, got, c.srcs)
		}
	}
}
