package arm64

import (
	"math/bits"
	"testing"
	"testing/quick"
)

// corpus is a broad set of instructions in GNU syntax covering every shape
// and addressing mode the package supports.
var corpus = []string{
	"add x0, x1, #42",
	"add x0, x1, #4095",
	"add x0, x1, #8192",
	"add sp, sp, #16",
	"sub sp, sp, #32",
	"add x0, x1, x2",
	"add w0, w1, w2",
	"add x0, x1, x2, lsl #3",
	"sub x3, x4, x5, lsr #7",
	"adds x0, x1, x2, asr #1",
	"subs x0, x1, #12",
	"add x18, x21, w1, uxtw",
	"add x0, x1, w2, sxtw #2",
	"add x0, x1, x2, sxtx #3",
	"add x0, sp, x2",
	"add sp, x21, x22",
	"and x0, x1, x2",
	"orr x0, x1, x2, lsl #12",
	"eor w0, w1, w2, ror #3",
	"bic x0, x1, x2",
	"orn x0, x1, x2",
	"eon x0, x1, x2, lsr #2",
	"ands x0, x1, x2",
	"bics w0, w1, w2",
	"and x0, x1, #0xff",
	"orr x0, x1, #0x3f0",
	"eor x0, x1, #0xf0f0f0f0f0f0f0f0",
	"ands x0, x1, #0x7fffffff",
	"and w0, w1, #0x1",
	"movz x0, #123",
	"movz x0, #1, lsl #16",
	"movz x0, #65535, lsl #48",
	"movn x0, #0",
	"movk x0, #52, lsl #32",
	"movz w0, #99",
	"sbfm x0, x1, #4, #11",
	"ubfm x0, x1, #0, #31",
	"bfm x0, x1, #8, #15",
	"ubfm w0, w1, #3, #5",
	"extr x0, x1, x2, #17",
	"extr w0, w1, w2, #3",
	"udiv x0, x1, x2",
	"sdiv w0, w1, w2",
	"lsl x0, x1, x2",
	"lsr x0, x1, x2",
	"asr w0, w1, w2",
	"ror x0, x1, x2",
	"madd x0, x1, x2, x3",
	"msub x0, x1, x2, x3",
	"smaddl x0, w1, w2, x3",
	"umaddl x0, w1, w2, x3",
	"smulh x0, x1, x2",
	"umulh x0, x1, x2",
	"clz x0, x1",
	"cls w0, w1",
	"rbit x0, x1",
	"rev x0, x1",
	"rev w0, w1",
	"rev16 x0, x1",
	"rev32 x0, x1",
	"csel x0, x1, x2, eq",
	"csinc x0, x1, x2, ne",
	"csinv w0, w1, w2, lt",
	"csneg x0, x1, x2, ge",
	"ccmp x0, x1, #4, ne",
	"ccmp x0, #12, #0, eq",
	"ccmn w0, w1, #15, hi",
	"b 64",
	"b -1024",
	"bl 4096",
	"b.eq 32",
	"b.lt -32",
	"b.hi 1028",
	"cbz x0, 16",
	"cbnz w3, -64",
	"tbz x5, #33, 256",
	"tbnz w5, #3, -256",
	"br x7",
	"blr x30",
	"ret",
	"ret x3",
	"ldr x0, [x1]",
	"ldr x0, [x1, #8]",
	"ldr x0, [x1, #32760]",
	"ldr w0, [x1, #-5]",
	"ldr x0, [sp, #16]",
	"str x0, [x1, #8]",
	"str w0, [x1, #-256]",
	"ldr x0, [x1, #8]!",
	"ldr x0, [x1], #8",
	"str x0, [sp, #-16]!",
	"ldr x0, [x1, x2]",
	"ldr x0, [x1, x2, lsl #3]",
	"ldr w0, [x1, x2, lsl #2]",
	"ldr x0, [x21, w2, uxtw]",
	"ldr x0, [x21, w2, uxtw #3]",
	"str x0, [x21, w2, uxtw]",
	"ldr x0, [x1, w2, sxtw]",
	"ldr x0, [x1, w2, sxtw #3]",
	"ldr x0, [x1, x2, sxtx]",
	"ldrb w0, [x1, #3]",
	"strb w0, [x1]",
	"ldrh w0, [x1, #2]",
	"strh w0, [x1, #4]",
	"ldrsb x0, [x1]",
	"ldrsb w0, [x1, #1]",
	"ldrsh x0, [x1, #2]",
	"ldrsh w0, [x1]",
	"ldrsw x0, [x1, #4]",
	"ldrsw x0, [x1, w2, uxtw #2]",
	"ldrb w0, [x21, w2, uxtw]",
	"ldp x0, x1, [sp, #16]",
	"ldp w0, w1, [x2]",
	"stp x29, x30, [sp, #-32]!",
	"ldp x29, x30, [sp], #32",
	"stp x0, x1, [x2, #64]",
	"ldxr x0, [x1]",
	"ldxr w0, [x1]",
	"stxr w2, x0, [x1]",
	"stlxr w2, w0, [x1]",
	"ldaxr x0, [x1]",
	"ldar x0, [x1]",
	"stlr w0, [x1]",
	"ldr d0, [x1, #8]",
	"str d0, [x1, x2, lsl #3]",
	"ldr s1, [x2]",
	"str s1, [x2, #4]",
	"ldr q2, [x3, #16]",
	"str q2, [x3, w4, uxtw #4]",
	"ldr b3, [x1]",
	"ldr h3, [x1, #2]",
	"ldp d0, d1, [x2, #16]",
	"stp q0, q1, [x2]",
	"ldp s0, s1, [sp], #8",
	"fmov d0, d1",
	"fmov s0, s1",
	"fmov x0, d1",
	"fmov d1, x0",
	"fmov w0, s1",
	"fmov s1, w0",
	"fmov d0, #1.0",
	"fmov d0, #-2.5",
	"fmov s0, #0.5",
	"fadd d0, d1, d2",
	"fsub s0, s1, s2",
	"fmul d0, d1, d2",
	"fdiv d0, d1, d2",
	"fneg d0, d1",
	"fabs s0, s1",
	"fsqrt d0, d1",
	"fmadd d0, d1, d2, d3",
	"fmsub s0, s1, s2, s3",
	"fcmp d0, d1",
	"fcmp d0, #0.0",
	"fcmp s3, s4",
	"fcsel d0, d1, d2, gt",
	"fcvt d0, s1",
	"fcvt s0, d1",
	"scvtf d0, x1",
	"scvtf s0, w1",
	"ucvtf d0, x1",
	"fcvtzs x0, d1",
	"fcvtzs w0, s1",
	"fcvtzu x0, d1",
	"nop",
	"svc #0",
	"svc #123",
	"brk #1",
	"dmb ish",
	"dmb sy",
	"dsb ishst",
	"isb",
	"mrs x0, tpidr_el0",
	"msr tpidr_el0, x0",
	"adr x0, 1024",
	"adr x0, -16",
	"adrp x0, 65536",
	"ldr x0, 1048",
	"ldrsw x0, -32",
	"ldr d0, 2000",
	// Immediate and shift-amount edges.
	"ldr q0, [x1, #65520]",
	"str q7, [sp, #65520]",
	"ldr w1, [x2, #16380]",
	"ldrh w0, [x1, #8190]",
	"ldrb w0, [x1, #4095]",
	"ldp x0, x1, [x2, #504]",
	"stp x0, x1, [x2, #-512]",
	"stp q0, q1, [x2, #1008]",
	"add x0, x1, #16773120",
	"add x0, x1, x2, lsl #63",
	"eor w0, w1, w2, ror #31",
	"movk x0, #65535, lsl #48",
	"movn x0, #65535, lsl #48",
	"extr x0, x1, x2, #63",
	"sbfm x0, x1, #63, #63",
	"tbz x1, #63, 32764",
	"tbnz w2, #31, -32768",
	"cbz x0, 1048572",
	"adrp x1, 4294963200",
	"adrp x1, -4294967296",
	// Generic (unnamed) system registers, as printed by sysRegName.
	"mrs x28, s3_7_c7_c0_7",
	"msr s2_5_c10_c0_5, x10",
}

// aliases maps alias spellings to the canonical form they should parse to.
var aliases = map[string]string{
	"mov x0, x1":           "orr x0, xzr, x1",
	"mov w0, w1":           "orr w0, wzr, w1",
	"mov sp, x1":           "add sp, x1, #0",
	"mov x1, sp":           "add x1, sp, #0",
	"mov x0, #7":           "movz x0, #7",
	"mov x0, #-1":          "movn x0, #0",
	"mov x0, #0xff00":      "movz x0, #0xff00",
	"mov x0, #0xff":        "movz x0, #255",
	"mov w0, #0x55555555":  "orr w0, wzr, #0x55555555",
	"cmp x0, x1":           "subs xzr, x0, x1",
	"cmp w0, #3":           "subs wzr, w0, #3",
	"cmn x0, x1":           "adds xzr, x0, x1",
	"tst x0, #0xf":         "ands xzr, x0, #0xf",
	"tst w1, w2":           "ands wzr, w1, w2",
	"neg x0, x1":           "sub x0, xzr, x1",
	"negs w0, w1":          "subs w0, wzr, w1",
	"mvn x0, x1":           "orn x0, xzr, x1",
	"mul x0, x1, x2":       "madd x0, x1, x2, xzr",
	"mneg x0, x1, x2":      "msub x0, x1, x2, xzr",
	"smull x0, w1, w2":     "smaddl x0, w1, w2, xzr",
	"umull x0, w1, w2":     "umaddl x0, w1, w2, xzr",
	"lsl x0, x1, #3":       "ubfm x0, x1, #61, #60",
	"lsr x0, x1, #3":       "ubfm x0, x1, #3, #63",
	"asr w0, w1, #5":       "sbfm w0, w1, #5, #31",
	"ror x0, x1, #9":       "extr x0, x1, x1, #9",
	"sxtw x0, w1":          "sbfm x0, x1, #0, #31",
	"sxth w0, w1":          "sbfm w0, w1, #0, #15",
	"sxtb x0, w1":          "sbfm x0, x1, #0, #7",
	"uxth w0, w1":          "ubfm w0, w1, #0, #15",
	"uxtb w0, w1":          "ubfm w0, w1, #0, #7",
	"ubfx x0, x1, #8, #16": "ubfm x0, x1, #8, #23",
	"sbfx w0, w1, #2, #3":  "sbfm w0, w1, #2, #4",
	"ubfiz x0, x1, #8, #4": "ubfm x0, x1, #56, #3",
	"bfi x0, x1, #16, #8":  "bfm x0, x1, #48, #7",
	"bfxil x0, x1, #4, #4": "bfm x0, x1, #4, #7",
	"cset x0, eq":          "csinc x0, xzr, xzr, ne",
	"csetm w0, lt":         "csinv w0, wzr, wzr, ge",
	"cinc x0, x1, eq":      "csinc x0, x1, x1, ne",
	"cinv x0, x1, hi":      "csinv x0, x1, x1, ls",
	"cneg x0, x1, mi":      "csneg x0, x1, x1, pl",
	"ldur x0, [x1, #-3]":   "ldr x0, [x1, #-3]",
	"stur w0, [x1, #-9]":   "str w0, [x1, #-9]",
	"mov w22, wsp":         "add w22, wsp, #0",
}

func TestParsePrintRoundTrip(t *testing.T) {
	for _, src := range corpus {
		inst, err := ParseInst(src)
		if err != nil {
			t.Errorf("parse %q: %v", src, err)
			continue
		}
		printed := inst.String()
		inst2, err := ParseInst(printed)
		if err != nil {
			t.Errorf("reparse of %q -> %q: %v", src, printed, err)
			continue
		}
		if inst != inst2 {
			t.Errorf("round trip %q -> %q: %+v != %+v", src, printed, inst, inst2)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, src := range corpus {
		inst, err := ParseInst(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		w, err := Encode(&inst)
		if err != nil {
			t.Errorf("encode %q: %v", src, err)
			continue
		}
		dec, err := Decode(w)
		if err != nil {
			t.Errorf("decode %q (%#08x): %v", src, w, err)
			continue
		}
		w2, err := Encode(&dec)
		if err != nil {
			t.Errorf("re-encode %q: decoded %q: %v", src, dec.String(), err)
			continue
		}
		if w != w2 {
			t.Errorf("encode/decode %q: %#08x -> %q -> %#08x", src, w, dec.String(), w2)
		}
	}
}

// TestDecodeMatchesSemantics checks a few fields of decoded instructions
// instead of relying purely on re-encoding.
func TestDecodeSelected(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"add x18, x21, w1, uxtw", "add x18, x21, w1, uxtw"},
		{"ldr x0, [x21, w2, uxtw]", "ldr x0, [x21, w2, uxtw]"},
		{"mov x0, x1", "orr x0, xzr, x1"},
		{"cmp x0, #3", "subs xzr, x0, #3"},
		{"ret", "ret"},
		{"stp x29, x30, [sp, #-32]!", "stp x29, x30, [sp, #-32]!"},
	}
	for _, c := range cases {
		inst, err := ParseInst(c.src)
		if err != nil {
			t.Fatalf("parse %q: %v", c.src, err)
		}
		w, err := Encode(&inst)
		if err != nil {
			t.Fatalf("encode %q: %v", c.src, err)
		}
		dec, err := Decode(w)
		if err != nil {
			t.Fatalf("decode %q: %v", c.src, err)
		}
		if got := dec.String(); got != c.want {
			t.Errorf("%q: decoded %q, want %q", c.src, got, c.want)
		}
	}
}

func TestAliases(t *testing.T) {
	for alias, canon := range aliases {
		a, err := ParseInst(alias)
		if err != nil {
			t.Errorf("parse alias %q: %v", alias, err)
			continue
		}
		c, err := ParseInst(canon)
		if err != nil {
			t.Errorf("parse canonical %q: %v", canon, err)
			continue
		}
		if a != c {
			t.Errorf("alias %q != canonical %q:\n  %+v\n  %+v", alias, canon, a, c)
		}
	}
}

func TestParseRejects(t *testing.T) {
	bad := []string{
		"frobnicate x0",
		"add x0",
		"add x0, x1",
		"ldr x0, [x99]",
		"ldr x0, [w1]",
		"b.zz 4",
		"mov x0, #0x123456789", // needs multiple instructions
		"tbz x0, #64, 8",
		"ccmp x0, x1, #16, eq",
	}
	for _, src := range bad {
		if _, err := ParseInst(src); err == nil {
			t.Errorf("parse %q: expected error", src)
		}
	}
}

func TestEncodeRejects(t *testing.T) {
	bad := []string{
		"add x0, x1, #123456789",
		"and x0, x1, #0",
		"b 3",         // not a multiple of 4
		"b 536870912", // out of ±128MiB
		"ldr x0, [x1, #65536]",
		"ldp x0, x1, [x2, #1024]", // imm7*8 max 504
	}
	for _, src := range bad {
		inst, err := ParseInst(src)
		if err != nil {
			t.Fatalf("parse %q unexpectedly failed: %v", src, err)
		}
		if _, err := Encode(&inst); err == nil {
			t.Errorf("encode %q: expected error", src)
		}
	}
}

func TestBitmaskRoundTripQuick(t *testing.T) {
	f := func(v uint64) bool {
		n, immr, imms, ok := EncodeBitmask(v, true)
		if !ok {
			return true // not encodable is fine
		}
		got, ok := DecodeBitmask(n, immr, imms, true)
		return ok && got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// TestBitmaskAllDecodable enumerates every (N, immr, imms) and checks that
// decodable patterns re-encode to an encoding that decodes identically.
func TestBitmaskAllDecodable(t *testing.T) {
	seen := 0
	for n := uint32(0); n <= 1; n++ {
		for immr := uint32(0); immr < 64; immr++ {
			for imms := uint32(0); imms < 64; imms++ {
				v, ok := DecodeBitmask(n, immr, imms, true)
				if !ok {
					continue
				}
				seen++
				n2, immr2, imms2, ok := EncodeBitmask(v, true)
				if !ok {
					t.Fatalf("decoded %#x from (%d,%d,%d) but cannot re-encode", v, n, immr, imms)
				}
				v2, ok := DecodeBitmask(n2, immr2, imms2, true)
				if !ok || v2 != v {
					t.Fatalf("re-encode mismatch for %#x", v)
				}
			}
		}
	}
	// There are 64-bit patterns for element sizes 2..64; expect thousands.
	if seen < 2000 {
		t.Errorf("only %d decodable bitmask encodings; expected thousands", seen)
	}
}

func TestBitmaskKnownValues(t *testing.T) {
	known := []uint64{
		0xff, 0xff00, 0xffff, 0x5555555555555555, 0xaaaaaaaaaaaaaaaa,
		0x0f0f0f0f0f0f0f0f, 0x3, 0x7fffffffffffffff, 0xfffffffffffffffe,
		0x00000000ffffffff, 0xffffffff00000000, 0x8000000000000001,
	}
	for _, v := range known {
		n, immr, imms, ok := EncodeBitmask(v, true)
		if !ok {
			t.Errorf("EncodeBitmask(%#x) failed", v)
			continue
		}
		got, ok := DecodeBitmask(n, immr, imms, true)
		if !ok || got != v {
			t.Errorf("DecodeBitmask(EncodeBitmask(%#x)) = %#x", v, got)
		}
	}
	for _, v := range []uint64{0, ^uint64(0), 0x123456789abcdef0} {
		if _, _, _, ok := EncodeBitmask(v, true); ok {
			if bits.OnesCount64(v) != 0 && v != ^uint64(0) {
				// 0x123456789abcdef0 genuinely is not a bitmask immediate.
				t.Errorf("EncodeBitmask(%#x) unexpectedly succeeded", v)
			} else {
				t.Errorf("EncodeBitmask(%#x) must fail", v)
			}
		}
	}
}

// TestDecodeFuzzNoCrash makes sure arbitrary words never panic the decoder
// and that anything decoded re-encodes to an instruction that decodes back
// to the same Inst (the encoder may pick a different but equivalent
// encoding, e.g. scaled vs unscaled immediates).
func TestDecodeFuzzNoCrash(t *testing.T) {
	f := func(w uint32) bool {
		inst, err := Decode(w)
		if err != nil {
			return true
		}
		w2, err := Encode(&inst)
		if err != nil {
			t.Logf("decoded %#08x -> %q but cannot re-encode: %v", w, inst.String(), err)
			return false
		}
		inst2, err := Decode(w2)
		if err != nil {
			t.Logf("re-encoded %#08x -> %q -> %#08x does not decode: %v", w, inst.String(), w2, err)
			return false
		}
		if inst != inst2 {
			t.Logf("decode fixpoint mismatch: %#08x -> %+v -> %#08x -> %+v", w, inst, w2, inst2)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

func TestRegisters(t *testing.T) {
	cases := []struct {
		s    string
		r    Reg
		is64 bool
	}{
		{"x0", X0, true}, {"x30", X30, true}, {"xzr", XZR, true},
		{"sp", SP, true}, {"w5", W5, false}, {"wzr", WZR, false},
		{"lr", X30, true}, {"fp", X29, true},
	}
	for _, c := range cases {
		r, ok := ParseReg(c.s)
		if !ok || r != c.r {
			t.Errorf("ParseReg(%q) = %v, %v", c.s, r, ok)
		}
		if r.Is64() != c.is64 {
			t.Errorf("%q Is64 = %v", c.s, r.Is64())
		}
	}
	if SP.W() != WSP || WZR.X() != XZR || X7.W() != W7 {
		t.Error("register view conversion broken")
	}
	if !SP.IsSP() || !WSP.IsSP() || X0.IsSP() {
		t.Error("IsSP broken")
	}
	if !XZR.IsZR() || X30.IsZR() {
		t.Error("IsZR broken")
	}
	if d := DReg(3); d.FPBits() != 64 || d.String() != "d3" {
		t.Error("FP register view broken")
	}
	for _, s := range []string{"x31", "w31", "z0", "x32", "q32", ""} {
		if r, ok := ParseReg(s); ok {
			t.Errorf("ParseReg(%q) = %v, expected failure", s, r)
		}
	}
}
