package arm64

import (
	"encoding/binary"
	"testing"
)

// Directive and layout edge cases for the file-level assembler.

func mustAssemble(t *testing.T, src string) *Image {
	t.Helper()
	f, err := ParseFile(src)
	if err != nil {
		t.Fatal(err)
	}
	img, err := Assemble(f, Layout{TextBase: 0x100000, PageSize: 16384})
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestAlignPadsTextWithNops(t *testing.T) {
	img := mustAssemble(t, `
_start:
	ret
.p2align 4
aligned:
	nop
`)
	if img.Symbols["aligned"]%16 != 0 {
		t.Fatalf("aligned at %#x", img.Symbols["aligned"])
	}
	// Padding between ret and aligned must be nops, not zeros.
	for off := uint64(4); off < img.Symbols["aligned"]-img.TextAddr; off += 4 {
		w := binary.LittleEndian.Uint32(img.Text[off:])
		if w != 0xd503201f {
			t.Fatalf("padding word at +%#x is %#08x, want nop", off, w)
		}
	}
}

func TestBalignBytes(t *testing.T) {
	img := mustAssemble(t, `
.data
a:
	.byte 1
.balign 32
b:
	.byte 2
`)
	if img.Symbols["b"]%32 != 0 {
		t.Errorf("b at %#x, want 32-byte alignment", img.Symbols["b"])
	}
}

func TestLabelOnInstructionLine(t *testing.T) {
	img := mustAssemble(t, "_start: ret\nsecond: nop\n")
	if img.Symbols["_start"] != img.TextAddr || img.Symbols["second"] != img.TextAddr+4 {
		t.Errorf("labels: %#x %#x", img.Symbols["_start"], img.Symbols["second"])
	}
}

func TestDataDirectiveWidths(t *testing.T) {
	img := mustAssemble(t, `
_start:
	ret
.data
v:
	.byte 0x11, 0x22
	.hword 0x3344
	.word 0x55667788
	.quad 0x99aabbccddeeff00
`)
	off := img.Symbols["v"] - img.DataAddr
	d := img.Data[off:]
	if d[0] != 0x11 || d[1] != 0x22 {
		t.Error(".byte broken")
	}
	if binary.LittleEndian.Uint16(d[2:]) != 0x3344 {
		t.Error(".hword broken")
	}
	if binary.LittleEndian.Uint32(d[4:]) != 0x55667788 {
		t.Error(".word broken")
	}
	if binary.LittleEndian.Uint64(d[8:]) != 0x99aabbccddeeff00 {
		t.Error(".quad broken")
	}
}

func TestStringEscapes(t *testing.T) {
	img := mustAssemble(t, `
_start:
	ret
.rodata
s:
	.asciz "tab\there\nquote\"end"
`)
	off := img.Symbols["s"] - img.RODataAddr
	want := "tab\there\nquote\"end\x00"
	if got := string(img.ROData[off : off+uint64(len(want))]); got != want {
		t.Errorf("string = %q, want %q", got, want)
	}
}

func TestCommentsEverywhere(t *testing.T) {
	img := mustAssemble(t, `
// leading comment
_start:            // trailing after label
	mov x0, #1     // trailing after inst
	/* no block comments needed; semicolons work too */ ; anyway
	ret            @ arm-style
`)
	if len(img.Text) != 8+4 { // mov, ret, plus the ';'-introduced blank? no: 2 insts
		// mov + ret = 8 bytes; the block-comment line parses as an inst? It
		// must not: the line starts with '/', which is rejected unless the
		// comment stripper removed it.
		if len(img.Text) != 8 {
			t.Errorf("text = %d bytes", len(img.Text))
		}
	}
}

func TestEmptySections(t *testing.T) {
	img := mustAssemble(t, "_start:\n\tret\n.data\n.bss\n.text\nafter:\n\tnop\n")
	if img.Symbols["after"] != img.TextAddr+4 {
		t.Errorf("section round trip broke text layout: %#x", img.Symbols["after"])
	}
	if len(img.Data) != 0 || img.BSSSize != 0 {
		t.Errorf("phantom data: %d/%d", len(img.Data), img.BSSSize)
	}
}

func TestLiteralLoadResolvesLabel(t *testing.T) {
	img := mustAssemble(t, `
_start:
	ldr x0, lit
	ret
.p2align 3
lit:
	.quad 0x1234
`)
	w := binary.LittleEndian.Uint32(img.Text[0:])
	inst, err := Decode(w)
	if err != nil || inst.Op != LDR || inst.Mem.Mode != AddrLiteral {
		t.Fatalf("first word %#08x: %v %v", w, inst.Op, err)
	}
	target := img.TextAddr + uint64(inst.Imm)
	if target != img.Symbols["lit"] {
		t.Errorf("literal resolves to %#x, want %#x", target, img.Symbols["lit"])
	}
}
