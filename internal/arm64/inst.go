package arm64

import "fmt"

// Cond is an ARM64 condition code.
type Cond uint8

const (
	EQ Cond = iota // equal
	NE             // not equal
	CS             // carry set / unsigned higher or same (HS)
	CC             // carry clear / unsigned lower (LO)
	MI             // minus / negative
	PL             // plus / positive or zero
	VS             // overflow
	VC             // no overflow
	HI             // unsigned higher
	LS             // unsigned lower or same
	GE             // signed greater or equal
	LT             // signed less than
	GT             // signed greater than
	LE             // signed less or equal
	AL             // always
	NV             // always (encoding 1111)
)

var condNames = [...]string{
	"eq", "ne", "hs", "lo", "mi", "pl", "vs", "vc",
	"hi", "ls", "ge", "lt", "gt", "le", "al", "nv",
}

func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("<bad cond %d>", uint8(c))
}

// Invert returns the logically inverted condition (EQ<->NE and so on).
func (c Cond) Invert() Cond { return c ^ 1 }

// ParseCond parses a condition-code suffix.
func ParseCond(s string) (Cond, bool) {
	switch s {
	case "cs":
		return CS, true
	case "cc":
		return CC, true
	}
	for i, n := range condNames {
		if n == s {
			return Cond(i), true
		}
	}
	return 0, false
}

// Extend is a register extension/shift modifier used by extended-register
// ADD/SUB and register-offset addressing modes.
type Extend uint8

const (
	ExtNone Extend = iota
	ExtUXTB
	ExtUXTH
	ExtUXTW
	ExtUXTX // same as LSL for addressing
	ExtSXTB
	ExtSXTH
	ExtSXTW
	ExtSXTX
	ExtLSL // plain shift (shifted-register forms, or LSL in addressing)
	ExtLSR
	ExtASR
	ExtROR
)

var extendNames = [...]string{
	"", "uxtb", "uxth", "uxtw", "uxtx", "sxtb", "sxth", "sxtw", "sxtx",
	"lsl", "lsr", "asr", "ror",
}

func (e Extend) String() string {
	if int(e) < len(extendNames) {
		return extendNames[e]
	}
	return fmt.Sprintf("<bad extend %d>", uint8(e))
}

// ParseExtend parses an extend/shift keyword.
func ParseExtend(s string) (Extend, bool) {
	for i := 1; i < len(extendNames); i++ {
		if extendNames[i] == s {
			return Extend(i), true
		}
	}
	return ExtNone, false
}

// option returns the 3-bit "option" field for extended-register encodings.
func (e Extend) option() (uint32, bool) {
	switch e {
	case ExtUXTB:
		return 0, true
	case ExtUXTH:
		return 1, true
	case ExtUXTW:
		return 2, true
	case ExtUXTX, ExtLSL:
		return 3, true
	case ExtSXTB:
		return 4, true
	case ExtSXTH:
		return 5, true
	case ExtSXTW:
		return 6, true
	case ExtSXTX:
		return 7, true
	}
	return 0, false
}

func extendFromOption(opt uint32, is64 bool) Extend {
	switch opt {
	case 0:
		return ExtUXTB
	case 1:
		return ExtUXTH
	case 2:
		return ExtUXTW
	case 3:
		_ = is64
		return ExtUXTX
	case 4:
		return ExtSXTB
	case 5:
		return ExtSXTH
	case 6:
		return ExtSXTW
	default:
		return ExtSXTX
	}
}

// AddrMode identifies a load/store addressing mode (Table 1 in the paper).
type AddrMode uint8

const (
	AddrNone    AddrMode = iota
	AddrBase             // [xN]           addr = xN
	AddrImm              // [xN, #i]       addr = xN + i (scaled unsigned or unscaled signed)
	AddrPre              // [xN, #i]!      addr = xN + i; xN = addr
	AddrPost             // [xN], #i       addr = xN;     xN += i
	AddrReg              // [xN, xM{, lsl #i}]        addr = xN + (xM << i)
	AddrRegUXTW          // [xN, wM, uxtw {#i}]       addr = xN + (zx(wM) << i)
	AddrRegSXTW          // [xN, wM, sxtw {#i}]       addr = xN + (sx(wM) << i)
	AddrRegSXTX          // [xN, xM, sxtx {#i}]       addr = xN + (xM << i)
	AddrLiteral          // label (PC-relative literal load)
)

// Mem is a memory operand.
type Mem struct {
	Mode   AddrMode
	Base   Reg   // base register (x or sp)
	Index  Reg   // index register for register-offset modes
	Imm    int32 // immediate offset for imm/pre/post modes
	Amount int8  // shift amount for register-offset modes (-1: extend without amount)
}

// WritesBack reports whether the addressing mode modifies the base register.
func (m Mem) WritesBack() bool { return m.Mode == AddrPre || m.Mode == AddrPost }

// IsRegOffset reports whether the mode adds an index register.
func (m Mem) IsRegOffset() bool {
	return m.Mode == AddrReg || m.Mode == AddrRegUXTW || m.Mode == AddrRegSXTW || m.Mode == AddrRegSXTX
}

func (m Mem) String() string {
	switch m.Mode {
	case AddrBase:
		return fmt.Sprintf("[%s]", m.Base)
	case AddrImm:
		if m.Imm == 0 {
			return fmt.Sprintf("[%s]", m.Base)
		}
		return fmt.Sprintf("[%s, #%d]", m.Base, m.Imm)
	case AddrPre:
		return fmt.Sprintf("[%s, #%d]!", m.Base, m.Imm)
	case AddrPost:
		return fmt.Sprintf("[%s], #%d", m.Base, m.Imm)
	case AddrReg:
		if m.Amount <= 0 {
			return fmt.Sprintf("[%s, %s]", m.Base, m.Index)
		}
		return fmt.Sprintf("[%s, %s, lsl #%d]", m.Base, m.Index, m.Amount)
	case AddrRegUXTW, AddrRegSXTW, AddrRegSXTX:
		ext := "uxtw"
		if m.Mode == AddrRegSXTW {
			ext = "sxtw"
		} else if m.Mode == AddrRegSXTX {
			ext = "sxtx"
		}
		if m.Amount < 0 {
			return fmt.Sprintf("[%s, %s, %s]", m.Base, m.Index, ext)
		}
		return fmt.Sprintf("[%s, %s, %s #%d]", m.Base, m.Index, ext, m.Amount)
	}
	return "<bad mem>"
}

// Inst is one decoded or parsed instruction. Fields that do not apply to a
// given Op are zero (registers: RegNone).
type Inst struct {
	Op Op

	Rd Reg // destination (or transfer register Rt for loads/stores)
	Rn Reg // first source / base
	Rm Reg // second source / Rt2 for pairs / Rs status for stxr
	Ra Reg // third source (madd/msub)

	Imm int64 // immediate operand (shift amount, imm16, nzcv, sys, ...)

	Ext    Extend // extend/shift modifier for Rm
	Amount int8   // extend/shift amount (-1 means "no amount written")

	Cond Cond // condition for b.cond, csel, ccmp

	Mem Mem // memory operand for loads/stores

	// Branch / literal target. At assembly level branches carry a symbolic
	// label; after encoding/decoding they carry a byte offset in Imm.
	Label string
}

// String renders the instruction in GNU assembly syntax.
func (i Inst) String() string { return printInst(&i) }
