// Package arm64 models the subset of the ARMv8.0-A AArch64 ISA needed by
// LFI: an instruction representation, a GNU-syntax assembly parser and
// printer, and a binary encoder and decoder following the ARMv8-A reference
// encodings. The same tables drive the assembler, the disassembler, the
// static verifier, and the emulator, so every component agrees on exactly
// which instructions exist and what they do.
package arm64

import "fmt"

// Reg identifies an architectural register together with the width or view
// under which an instruction names it (x5 vs w5, d0 vs q0).
type Reg uint16

// regKindStride separates register kinds in the Reg value layout
// (kind*regKindStride + number).
const regKindStride = 40

// Register kinds.
const (
	kindX Reg = iota // 64-bit general purpose (number 31 = XZR, 32 = SP)
	kindW            // 32-bit view          (number 31 = WZR, 32 = WSP)
	kindB            // 8-bit scalar FP/SIMD view
	kindH            // 16-bit scalar FP/SIMD view
	kindS            // 32-bit scalar FP/SIMD view
	kindD            // 64-bit scalar FP/SIMD view
	kindQ            // 128-bit scalar FP/SIMD view
	kindV            // full vector register (arrangement held by the op)
	numRegKinds
)

// RegNone marks an unused register slot in an Inst.
const RegNone Reg = 0xffff

// General-purpose registers.
const (
	X0 Reg = Reg(kindX)*regKindStride + iota
	X1
	X2
	X3
	X4
	X5
	X6
	X7
	X8
	X9
	X10
	X11
	X12
	X13
	X14
	X15
	X16
	X17
	X18
	X19
	X20
	X21
	X22
	X23
	X24
	X25
	X26
	X27
	X28
	X29
	X30
	XZR
	SP
)

// 32-bit views.
const (
	W0 Reg = Reg(kindW)*regKindStride + iota
	W1
	W2
	W3
	W4
	W5
	W6
	W7
	W8
	W9
	W10
	W11
	W12
	W13
	W14
	W15
	W16
	W17
	W18
	W19
	W20
	W21
	W22
	W23
	W24
	W25
	W26
	W27
	W28
	W29
	W30
	WZR
	WSP
)

// Scalar FP and vector registers are constructed with BReg..QReg and VReg.

// XReg returns the 64-bit general-purpose register n (0..30), XZR for 31.
func XReg(n int) Reg { return Reg(kindX)*regKindStride + Reg(n) }

// WReg returns the 32-bit view of register n (0..30), WZR for 31.
func WReg(n int) Reg { return Reg(kindW)*regKindStride + Reg(n) }

// BReg..QReg return scalar FP/SIMD views of vector register n (0..31).
func BReg(n int) Reg { return Reg(kindB)*regKindStride + Reg(n) }
func HReg(n int) Reg { return Reg(kindH)*regKindStride + Reg(n) }
func SReg(n int) Reg { return Reg(kindS)*regKindStride + Reg(n) }
func DReg(n int) Reg { return Reg(kindD)*regKindStride + Reg(n) }
func QReg(n int) Reg { return Reg(kindQ)*regKindStride + Reg(n) }

// VReg returns vector register n (0..31) without a width view.
func VReg(n int) Reg { return Reg(kindV)*regKindStride + Reg(n) }

func (r Reg) kind() Reg { return r / regKindStride }

// Num returns the architectural register number: 0..30 for x/w (31 for
// xzr/wzr, 32 for sp/wsp), 0..31 for FP/SIMD views.
func (r Reg) Num() int { return int(r % regKindStride) }

// EncNum returns the 5-bit field value used in machine encodings. SP and
// the zero register both encode as 31; which one an encoding means is
// determined by the instruction class.
func (r Reg) EncNum() uint32 {
	n := r.Num()
	if n >= 31 {
		return 31
	}
	return uint32(n)
}

// IsGP reports whether r is a general-purpose register view (x or w),
// including xzr/wzr and sp/wsp.
func (r Reg) IsGP() bool { return r.kind() == kindX || r.kind() == kindW }

// Is64 reports whether r is a 64-bit integer view (x registers, xzr, sp).
func (r Reg) Is64() bool { return r.kind() == kindX }

// Is32 reports whether r is a 32-bit integer view (w registers, wzr, wsp).
func (r Reg) Is32() bool { return r.kind() == kindW }

// IsFP reports whether r is an FP/SIMD register view of any width.
func (r Reg) IsFP() bool { return r.kind() >= kindB && r.kind() <= kindV }

// IsSP reports whether r is the stack pointer under either view.
func (r Reg) IsSP() bool { return r == SP || r == WSP }

// IsZR reports whether r is the zero register under either view.
func (r Reg) IsZR() bool { return r == XZR || r == WZR }

// X returns the 64-bit view of the same architectural register. FP
// registers are returned unchanged.
func (r Reg) X() Reg {
	if r.IsGP() {
		return Reg(kindX)*regKindStride + Reg(r.Num())
	}
	return r
}

// W returns the 32-bit view of the same architectural register. FP
// registers are returned unchanged.
func (r Reg) W() Reg {
	if r.IsGP() {
		return Reg(kindW)*regKindStride + Reg(r.Num())
	}
	return r
}

// FPBits returns the width in bits of an FP/SIMD view (8..128), or 0 for
// integer registers.
func (r Reg) FPBits() int {
	switch r.kind() {
	case kindB:
		return 8
	case kindH:
		return 16
	case kindS:
		return 32
	case kindD:
		return 64
	case kindQ, kindV:
		return 128
	}
	return 0
}

var regKindPrefix = [numRegKinds]byte{'x', 'w', 'b', 'h', 's', 'd', 'q', 'v'}

// String returns the GNU assembly spelling of the register.
func (r Reg) String() string {
	if r == RegNone {
		return "<none>"
	}
	k, n := r.kind(), r.Num()
	if k >= numRegKinds {
		return fmt.Sprintf("<bad reg %d>", uint16(r))
	}
	if k == kindX || k == kindW {
		switch n {
		case 31:
			if k == kindX {
				return "xzr"
			}
			return "wzr"
		case 32:
			if k == kindX {
				return "sp"
			}
			return "wsp"
		}
	}
	return fmt.Sprintf("%c%d", regKindPrefix[k], n)
}

// ParseReg parses a register name ("x0", "wzr", "sp", "d12", ...). It
// returns RegNone and false if s is not a register.
func ParseReg(s string) (Reg, bool) {
	switch s {
	case "sp":
		return SP, true
	case "wsp":
		return WSP, true
	case "xzr":
		return XZR, true
	case "wzr":
		return WZR, true
	case "lr":
		return X30, true
	case "fp":
		return X29, true
	}
	if len(s) < 2 {
		return RegNone, false
	}
	var kind Reg
	switch s[0] {
	case 'x':
		kind = kindX
	case 'w':
		kind = kindW
	case 'b':
		kind = kindB
	case 'h':
		kind = kindH
	case 's':
		kind = kindS
	case 'd':
		kind = kindD
	case 'q':
		kind = kindQ
	case 'v':
		kind = kindV
	default:
		return RegNone, false
	}
	n := 0
	for i := 1; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return RegNone, false
		}
		n = n*10 + int(c-'0')
		if n > 31 {
			return RegNone, false
		}
	}
	max := 31
	if kind == kindX || kind == kindW {
		max = 30
	}
	if n > max {
		return RegNone, false
	}
	return kind*regKindStride + Reg(n), true
}
