package arm64

import "math/bits"

// Logical (bitmask) immediates. ARM64 logical-immediate encodings describe
// a bit pattern as an element of size 2/4/8/16/32/64 bits containing a
// rotated run of ones, replicated across the register width. The fields are
// N (element size 64), immr (rotation) and imms (element size + run length).

func ror(v uint64, r, size uint) uint64 {
	r %= size
	mask := onesMask(size)
	v &= mask
	return ((v >> r) | (v << (size - r))) & mask
}

func onesMask(n uint) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << n) - 1
}

// EncodeBitmask encodes v as a logical immediate for a 64-bit (is64) or
// 32-bit operation. It reports ok=false for values that have no encoding
// (0 and all-ones, among others).
func EncodeBitmask(v uint64, is64 bool) (n, immr, imms uint32, ok bool) {
	width := uint(64)
	if !is64 {
		if v>>32 != 0 && v>>32 != 0xffffffff {
			return 0, 0, 0, false
		}
		v &= 0xffffffff
		width = 32
	}
	if v == 0 || v == onesMask(width) {
		return 0, 0, 0, false
	}
	// Find the smallest replicating element size.
	size := width
	for size > 2 {
		half := size / 2
		mask := onesMask(half)
		if v&mask != (v>>half)&mask {
			break
		}
		size = half
		v &= mask
	}
	elem := v & onesMask(size)
	ones := uint(bits.OnesCount64(elem))
	if ones == 0 || ones == size {
		return 0, 0, 0, false
	}
	welem := onesMask(ones)
	rot := uint(0)
	found := false
	for r := uint(0); r < size; r++ {
		if ror(welem, r, size) == elem {
			rot, found = r, true
			break
		}
	}
	if !found {
		return 0, 0, 0, false
	}
	if size == 64 {
		n = 1
		imms = uint32(ones - 1)
	} else {
		n = 0
		imms = uint32((0x3f &^ (size*2 - 1)) | (ones - 1))
	}
	immr = uint32(rot)
	return n, immr, imms, true
}

// DecodeBitmask expands a logical-immediate encoding into its value. The
// result is truncated to 32 bits when is64 is false.
func DecodeBitmask(n, immr, imms uint32, is64 bool) (uint64, bool) {
	// len = index of highest set bit of n:NOT(imms)<5:0>
	combined := (n << 6) | (^imms & 0x3f)
	if combined == 0 {
		return 0, false
	}
	length := uint(bits.Len32(combined)) - 1
	if length < 1 {
		return 0, false
	}
	size := uint(1) << length
	if size > 64 || (size == 64 && !is64) {
		return 0, false
	}
	levels := uint32(size - 1)
	s := imms & levels
	r := immr & levels
	if s == levels {
		return 0, false
	}
	welem := onesMask(uint(s) + 1)
	elem := ror(welem, uint(r), size)
	// Replicate across the register width.
	v := elem
	for sz := size; sz < 64; sz *= 2 {
		v |= v << sz
	}
	if !is64 {
		v &= 0xffffffff
	}
	return v, true
}

// vfpExpandImm8 expands the 8-bit FMOV immediate encoding to a float64 bit
// pattern (the float32 pattern is derived by conversion in the emulator).
func vfpExpandImm8(imm8 uint32) uint64 {
	// double = a : NOT(b) : Replicate(b,8) : cd : efgh : Zeros(48)
	a := uint64(imm8>>7) & 1
	b := uint64(imm8>>6) & 1
	cd := uint64(imm8>>4) & 3
	efgh := uint64(imm8) & 0xf
	v := a<<63 | (b^1)<<62 | cd<<52 | efgh<<48
	if b == 1 {
		v |= 0xff << 54
	}
	return v
}

// encodeFPImm8 finds the 8-bit encoding for a float64 bit pattern, if any.
func encodeFPImm8(bitsval uint64) (uint32, bool) {
	for imm := uint32(0); imm < 256; imm++ {
		if vfpExpandImm8(imm) == bitsval {
			return imm, true
		}
	}
	return 0, false
}
