package rewrite

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"lfi/internal/arm64"
	"lfi/internal/core"
	"lfi/internal/emu"
	"lfi/internal/verifier"
)

// Differential fuzzing: generate random (but well-defined) programs that
// hammer memory through every addressing mode, run them natively and
// under every rewriter configuration, and require identical results. This
// is the strongest statement of the rewriter's correctness contract: the
// transformation is semantics-preserving for in-sandbox programs.

// progGen builds a random program over a 64KiB buffer. Values live in
// x0..x8; x25 holds the buffer base; x9-x16 are scratch. All offsets are
// masked into bounds, so native and sandboxed runs see identical
// addresses modulo the sandbox base.
type progGen struct {
	rng *rand.Rand
	b   strings.Builder
	n   int
}

func (g *progGen) line(format string, args ...any) {
	fmt.Fprintf(&g.b, "\t"+format+"\n", args...)
}

func (g *progGen) val() string { return fmt.Sprintf("x%d", g.rng.Intn(9)) }

// maskedOffset materializes an in-bounds offset (0..0xff00) in the given
// scratch register, derived from a random value register.
func (g *progGen) maskedOffset(dst string) {
	g.line("and %s, %s, #0xff00", dst, g.val())
	if g.rng.Intn(2) == 0 {
		g.line("add %s, %s, #%d", dst, dst, g.rng.Intn(128))
	}
}

func (g *progGen) stmt() {
	switch g.rng.Intn(12) {
	case 0: // plain ALU
		ops := []string{"add", "sub", "eor", "orr", "and", "mul"}
		g.line("%s %s, %s, %s", ops[g.rng.Intn(len(ops))], g.val(), g.val(), g.val())
	case 1: // shifted ALU
		g.line("add %s, %s, %s, lsl #%d", g.val(), g.val(), g.val(), g.rng.Intn(8))
	case 2: // store, immediate mode
		g.maskedOffset("x9")
		g.line("add x10, x25, x9")
		g.line("str %s, [x10, #%d]", g.val(), 8*g.rng.Intn(16))
	case 3: // load, immediate mode
		g.maskedOffset("x9")
		g.line("add x10, x25, x9")
		g.line("ldr %s, [x10, #%d]", g.val(), 8*g.rng.Intn(16))
	case 4: // register-offset load (the Table 3 modes)
		g.maskedOffset("x9")
		switch g.rng.Intn(3) {
		case 0:
			g.line("ldr %s, [x25, x9]", g.val())
		case 1:
			g.line("ldr %s, [x25, w9, uxtw]", g.val())
		case 2:
			g.line("lsr x11, x9, #3")
			g.line("ldr %s, [x25, x11, lsl #3]", g.val())
		}
	case 5: // byte/half accesses
		g.maskedOffset("x9")
		g.line("add x10, x25, x9")
		v := g.rng.Intn(9)
		g.line("strb w%d, [x10, #%d]", v, g.rng.Intn(64))
		g.line("ldrb w%d, [x10, #%d]", g.rng.Intn(9), g.rng.Intn(64))
		g.line("strh w%d, [x10, #%d]", v, 2*g.rng.Intn(32))
	case 6: // pre/post index
		g.maskedOffset("x9")
		g.line("add x10, x25, x9")
		if g.rng.Intn(2) == 0 {
			g.line("str %s, [x10, #%d]!", g.val(), 8*(g.rng.Intn(8)+1))
		} else {
			g.line("ldr %s, [x10], #%d", g.val(), 8*g.rng.Intn(8))
		}
	case 7: // pairs
		g.maskedOffset("x9")
		g.line("add x10, x25, x9")
		g.line("stp x%d, x%d, [x10, #%d]", g.rng.Intn(9), g.rng.Intn(9), 16*g.rng.Intn(4))
		g.line("ldp x%d, x%d, [x10, #%d]", g.rng.Intn(9), g.rng.Intn(9), 16*g.rng.Intn(4))
	case 8: // stack traffic (exercises §4.2 paths)
		amt := 16 * (g.rng.Intn(8) + 1)
		g.line("sub sp, sp, #%d", amt)
		g.line("str %s, [sp, #8]", g.val())
		g.line("ldr %s, [sp, #8]", g.val())
		g.line("add sp, sp, #%d", amt)
		g.line("sub sp, sp, #4096")
		g.line("str %s, [sp]", g.val())
		g.line("add sp, sp, #4096")
	case 9: // conditional select on data
		g.line("cmp %s, %s", g.val(), g.val())
		g.line("csel %s, %s, %s, %s", g.val(), g.val(), g.val(),
			[]string{"eq", "lt", "hi", "ge"}[g.rng.Intn(4)])
	case 10: // short data-dependent branch
		l1 := fmt.Sprintf(".Lf%d", g.n)
		g.n++
		g.line("tbz %s, #%d, %s", g.val(), g.rng.Intn(20), l1)
		g.line("add %s, %s, #1", g.val(), g.val())
		g.b.WriteString(l1 + ":\n")
	case 11: // call/return (exercises x30 guards)
		g.line("bl helper")
	}
}

func (g *progGen) generate(stmts int) string {
	g.b.WriteString(".globl _start\n_start:\n")
	// Seed the value registers deterministically.
	for i := 0; i < 9; i++ {
		g.line("movz x%d, #%d", i, g.rng.Intn(65536))
		g.line("movk x%d, #%d, lsl #16", i, g.rng.Intn(65536))
	}
	g.line("adrp x25, buf")
	g.line("add x25, x25, :lo12:buf")
	// Zero-fill is implicit (.bss).
	for i := 0; i < stmts; i++ {
		g.stmt()
	}
	// Fold all value registers into x0.
	for i := 1; i < 9; i++ {
		g.line("eor x0, x0, x%d", i)
	}
	// Mix in a memory checksum.
	g.b.WriteString(`
	mov x9, #0
	mov x10, #0
cksum:
	ldr x11, [x25, x9]
	eor x10, x10, x11
	add x9, x9, #8
	cmp x9, #65536
	b.ne cksum
	eor x0, x0, x10
	brk #0
helper:
	add x7, x7, #3
	ret
.bss
buf:
	.space 66560
`)
	return g.b.String()
}

func TestDifferentialFuzz(t *testing.T) {
	const trials = 25
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		g := &progGen{rng: rng}
		src := g.generate(40)

		f := parse(t, src)
		native := runNative(t, f)

		for _, opts := range []core.Options{
			{Opt: core.O0},
			{Opt: core.O1},
			{Opt: core.O2},
			{Opt: core.O2, NoLoads: true},
			{Opt: core.O1, DisableSPOpts: true},
		} {
			nf, _, err := Rewrite(parse(t, src), opts)
			if err != nil {
				t.Fatalf("trial %d %+v: rewrite: %v\n%s", trial, opts, err, src)
			}
			c, tr := runSandboxed(t, nf)
			if tr.Kind != emu.TrapBRK {
				t.Fatalf("trial %d %+v: trap %v\n%s", trial, opts, tr, src)
			}
			if c.X[0] != native.X[0] {
				t.Fatalf("trial %d %+v: checksum %#x != native %#x\n%s",
					trial, opts, c.X[0], native.X[0], src)
			}
		}
	}
}

// TestFuzzedProgramsVerify runs the same generator through the full
// build-and-verify pipeline: every random program rewritten at O0/O1/O2
// must pass the static verifier after assembly.
func TestFuzzedProgramsVerify(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(int64(7000 + trial)))
		g := &progGen{rng: rng}
		src := g.generate(30)
		for _, opt := range []core.OptLevel{core.O0, core.O1, core.O2} {
			nf, _, err := Rewrite(parse(t, src), core.Options{Opt: opt})
			if err != nil {
				t.Fatalf("trial %d %v: %v", trial, opt, err)
			}
			img, err := arm64.Assemble(nf, arm64.Layout{
				TextBase: core.SlotBase(1) + core.MinCodeOffset, PageSize: pageSize})
			if err != nil {
				t.Fatalf("trial %d %v: assemble: %v", trial, opt, err)
			}
			cfg := verifier.DefaultConfig()
			cfg.TextOff = core.MinCodeOffset
			if _, err := verifier.Verify(img.Text, cfg); err != nil {
				t.Fatalf("trial %d %v: verifier rejected rewriter output: %v\n%s",
					trial, opt, err, nf.String())
			}
		}
	}
}
