package rewrite

import (
	"fmt"

	"lfi/internal/arm64"
	"lfi/internal/core"
)

// memOp rewrites one load/store according to the optimization level.
func (r *rewriter) memOp(f *arm64.File, idx int) error {
	it := &f.Items[idx]
	inst := it.Inst
	m := inst.Mem
	line := it.LineNo

	// PC-relative literal loads stay within the code region and cannot
	// escape the sandbox (the verifier checks the final offset).
	if m.Mode == arm64.AddrLiteral {
		r.emit(inst, line)
		r.guardLoadedDests(&inst, line)
		return nil
	}

	// Runtime-call idiom (§4.4): "ldr x30, [x21, #n]; blr x30" passes
	// through as a unit.
	if r.isRuntimeCallPair(f, idx) {
		r.emit(inst, line)
		r.emit(f.Items[nextInstIdx(f, idx)].Inst, line)
		r.skipNext = true
		return nil
	}

	base := memBase(&inst)
	if base.X() == core.RegBase {
		return &Error{line, "input addresses [x21, ...] outside the runtime-call idiom"}
	}
	if core.IsReserved(base) {
		return &Error{line, fmt.Sprintf("input uses reserved register %v as a base", base)}
	}
	if idxReg := m.Index; m.IsRegOffset() && core.IsReserved(idxReg) {
		return &Error{line, fmt.Sprintf("input uses reserved register %v as an index", idxReg)}
	}

	// Stack-pointer-based accesses with immediate addressing are safe:
	// sp always holds a sandbox address and immediates cannot cross the
	// guard regions (§4.2). x30-based accesses get the same treatment.
	if core.AlwaysValidAddr(base.X()) || base.X() == arm64.X30 {
		if !m.IsRegOffset() {
			bound := guardImmBound
			if base.IsSP() {
				bound = spImmBound
			}
			if m.Mode == arm64.AddrImm && int64(m.Imm) > bound {
				r.oversizedImm(&inst, line)
				return nil
			}
			r.emit(inst, line)
			r.guardLoadedDests(&inst, line)
			return nil
		}
		// Register-offset from sp: stage sp through w22 first.
		return r.spRegOffset(&inst, line)
	}

	// no-loads mode: loads run unguarded unless they define x30 or write
	// back to their base — the verifier's exemption covers only plain
	// loads, so writeback forms go through the normal guarded lowering.
	if r.opts.NoLoads && inst.Op.IsLoad() && !loadsX30(&inst) && !m.WritesBack() {
		r.emit(inst, line)
		return nil
	}

	switch inst.Op {
	case arm64.LDP, arm64.STP, arm64.LDXR, arm64.LDAXR, arm64.STXR,
		arm64.STLXR, arm64.LDAR, arm64.STLR:
		return r.baseTechnique(f, idx, &inst, line)
	}

	if r.opts.Opt == core.O0 {
		return r.o0Guard(&inst, line)
	}
	return r.table3(f, idx, &inst, line)
}

// memBase returns the base register of any memory op (exclusives keep it
// in Rn rather than Mem.Base).
func memBase(inst *arm64.Inst) arm64.Reg {
	switch inst.Op {
	case arm64.LDXR, arm64.LDAXR, arm64.STXR, arm64.STLXR, arm64.LDAR, arm64.STLR:
		return inst.Rn
	}
	return inst.Mem.Base
}

func loadsX30(inst *arm64.Inst) bool {
	if !inst.Op.IsLoad() {
		return false
	}
	if inst.Rd.X() == arm64.X30 {
		return true
	}
	return inst.Op == arm64.LDP && inst.Rm.X() == arm64.X30
}

// guardLoadedDests re-establishes the x30 invariant after a load that
// wrote the link register (§4.2: guards are inserted when x30 is loaded).
func (r *rewriter) guardLoadedDests(inst *arm64.Inst, line int) {
	if loadsX30(inst) {
		r.emit(core.GuardInto(arm64.X30, arm64.X30), line)
		r.stats.RetGuards++
	}
}

// isRuntimeCallPair recognizes "ldr x30, [x21, #n]" followed immediately
// by "blr x30".
func (r *rewriter) isRuntimeCallPair(f *arm64.File, idx int) bool {
	inst := &f.Items[idx].Inst
	if inst.Op != arm64.LDR || inst.Rd != arm64.X30 {
		return false
	}
	m := inst.Mem
	if m.Base != core.RegBase || (m.Mode != arm64.AddrImm && m.Mode != arm64.AddrBase) {
		return false
	}
	if m.Imm < 0 || int64(m.Imm) >= core.MaxTableOffset || m.Imm%8 != 0 {
		return false
	}
	j := nextInstIdx(f, idx)
	if j < 0 {
		return false
	}
	n := &f.Items[j].Inst
	return n.Op == arm64.BLR && n.Rn == arm64.X30
}

// nextInstIdx returns the index of the next instruction item with no label
// or directive in between, or -1.
func nextInstIdx(f *arm64.File, idx int) int {
	if idx+1 < len(f.Items) && f.Items[idx+1].Kind == arm64.ItemInst {
		return idx + 1
	}
	return -1
}

// spRegOffset lowers a register-offset access based on sp.
func (r *rewriter) spRegOffset(inst *arm64.Inst, line int) error {
	m := inst.Mem
	// mov w22, wsp
	r.emit(arm64.Inst{Op: arm64.ADD, Rd: core.RegAddr32.W(), Rn: arm64.WSP,
		Rm: arm64.RegNone, Ra: arm64.RegNone, Amount: -1}, line)
	// add w22, w22, <index with original extend>
	st, err := stageIndexAdd(core.RegAddr32.W(), core.RegAddr32.W(), m)
	if err != nil {
		return &Error{line, err.Error()}
	}
	r.emit(st, line)
	r.stats.GuardsSingle++
	out := *inst
	out.Mem = arm64.Mem{Mode: arm64.AddrRegUXTW, Base: core.RegBase,
		Index: core.RegAddr32.W(), Amount: -1}
	r.emit(out, line)
	r.guardLoadedDests(inst, line)
	return nil
}

// stageIndexAdd builds "add dst, src, <index per addressing mode>".
func stageIndexAdd(dst, src arm64.Reg, m arm64.Mem) (arm64.Inst, error) {
	st := arm64.Inst{Op: arm64.ADD, Rd: dst, Rn: src, Ra: arm64.RegNone, Amount: m.Amount}
	switch m.Mode {
	case arm64.AddrReg:
		st.Rm = m.Index.W()
		st.Ext = arm64.ExtLSL
		if m.Amount <= 0 {
			st.Ext = arm64.ExtNone
			st.Amount = -1
		}
	case arm64.AddrRegUXTW:
		st.Rm = m.Index
		st.Ext = arm64.ExtUXTW
	case arm64.AddrRegSXTW:
		st.Rm = m.Index
		st.Ext = arm64.ExtSXTW
	default:
		return st, fmt.Errorf("addressing mode %v cannot be staged in 32 bits", m.Mode)
	}
	return st, nil
}

// o0Guard applies the basic two-cycle guard (§3) to a single-register
// load/store: the address is forced into x18 and the access goes through
// x18.
func (r *rewriter) o0Guard(inst *arm64.Inst, line int) error {
	m := inst.Mem
	line4 := line
	access := *inst

	switch m.Mode {
	case arm64.AddrBase, arm64.AddrImm:
		if int64(m.Imm) > guardImmBound {
			r.oversizedImm(inst, line)
			return nil
		}
		// add x18, x21, wN, uxtw ; op rt, [x18, #imm]
		r.emit(core.GuardInto(core.RegScratch, m.Base), line4)
		r.stats.GuardsBase++
		access.Mem = arm64.Mem{Mode: arm64.AddrImm, Base: core.RegScratch, Imm: m.Imm, Amount: -1}
		r.emit(access, line4)

	case arm64.AddrPre:
		// add xN, xN, #imm ; guard ; op rt, [x18]
		r.emit(addImm(m.Base, m.Base, int64(m.Imm)), line4)
		r.emit(core.GuardInto(core.RegScratch, m.Base), line4)
		r.stats.GuardsBase++
		access.Mem = arm64.Mem{Mode: arm64.AddrImm, Base: core.RegScratch, Amount: -1}
		r.emit(access, line4)

	case arm64.AddrPost:
		// guard ; op rt, [x18] ; add xN, xN, #imm
		r.emit(core.GuardInto(core.RegScratch, m.Base), line4)
		r.stats.GuardsBase++
		access.Mem = arm64.Mem{Mode: arm64.AddrImm, Base: core.RegScratch, Amount: -1}
		r.emit(access, line4)
		r.emit(addImm(m.Base, m.Base, int64(m.Imm)), line4)

	default:
		// Register offset: stage the 32-bit sum in w22, guard into x18.
		st, err := stageIndexAdd(core.RegAddr32.W(), m.Base.W(), m)
		if err != nil {
			return r.sxtxFallback(inst, line)
		}
		r.emit(st, line4)
		r.emit(core.GuardInto(core.RegScratch, core.RegAddr32), line4)
		r.stats.GuardsBase++
		access.Mem = arm64.Mem{Mode: arm64.AddrImm, Base: core.RegScratch, Amount: -1}
		r.emit(access, line4)
	}
	r.guardLoadedDests(inst, line)
	return nil
}

// guardImmBound is the largest immediate offset that stays inside the
// 48KiB guard region from any in-sandbox base (worst case: base one byte
// below the slot end, 16-byte access). The verifier enforces the same
// bound; only q-register scaled immediates (up to 65520) can exceed it.
const guardImmBound = int64(core.GuardSize) - 16

// spImmBound is the tighter bound for sp-based immediates: sp can drift
// up to SPMaxDrift past the slot when the §4.2 elisions are in play, so
// the immediate must leave that much headroom inside the guard. The
// verifier enforces the same split.
const spImmBound = guardImmBound - int64(core.SPMaxDrift)

// oversizedImm lowers an immediate-offset access whose offset reaches past
// the guard region: the full 32-bit address is staged in w22 and the
// access goes through the guarded addressing mode. The immediate is split
// into two add-immediates (low 12 bits, then the 4KiB-aligned remainder).
func (r *rewriter) oversizedImm(inst *arm64.Inst, line int) {
	m := inst.Mem
	lo := int64(m.Imm) & 0xfff
	hi := int64(m.Imm) &^ 0xfff
	r.emit(addImm(core.RegAddr32.W(), m.Base.W(), lo), line)
	if hi != 0 {
		r.emit(addImm(core.RegAddr32.W(), core.RegAddr32.W(), hi), line)
	}
	r.stats.GuardsSingle++
	access := *inst
	access.Mem = arm64.Mem{Mode: arm64.AddrRegUXTW, Base: core.RegBase,
		Index: core.RegAddr32.W(), Amount: -1}
	r.emit(access, line)
	r.guardLoadedDests(inst, line)
}

func addImm(dst, src arm64.Reg, imm int64) arm64.Inst {
	op := arm64.ADD
	if imm < 0 {
		op = arm64.SUB
		imm = -imm
	}
	return arm64.Inst{Op: op, Rd: dst, Rn: src, Rm: arm64.RegNone,
		Ra: arm64.RegNone, Imm: imm, Amount: -1}
}

// sxtxFallback handles the [xN, xM, sxtx] mode, which has no 32-bit
// staging form: compute the 64-bit sum into w22's full register? No —
// stage through x22 is forbidden (x22 must keep 32 zero top bits), so
// compute into the scratch register via the base technique:
//
//	add w22, wN, wM   (32-bit sum; sxtx on in-sandbox values degenerates)
//
// is not semantics-preserving for out-of-sandbox addresses, which is
// acceptable (SFI redirects them anyway), and for in-sandbox addresses the
// low 32 bits agree. The emitted form matches stageIndexAdd for AddrReg.
func (r *rewriter) sxtxFallback(inst *arm64.Inst, line int) error {
	m := inst.Mem
	st := arm64.Inst{Op: arm64.ADD, Rd: core.RegAddr32.W(), Rn: m.Base.W(),
		Rm: m.Index.W(), Ra: arm64.RegNone, Ext: arm64.ExtLSL, Amount: m.Amount}
	if m.Amount <= 0 {
		st.Ext = arm64.ExtNone
		st.Amount = -1
	}
	r.emit(st, line)
	r.emit(core.GuardInto(core.RegScratch, core.RegAddr32), line)
	r.stats.GuardsBase++
	access := *inst
	access.Mem = arm64.Mem{Mode: arm64.AddrImm, Base: core.RegScratch, Amount: -1}
	r.emit(access, line)
	r.guardLoadedDests(inst, line)
	return nil
}

// table3 applies the zero-instruction-guard transformations of Table 3 to
// a single-register load/store (O1), with redundant guard elimination on
// top at O2 (§4.3).
func (r *rewriter) table3(f *arm64.File, idx int, inst *arm64.Inst, line int) error {
	m := inst.Mem
	access := *inst

	guardedMem := func(index arm64.Reg) arm64.Mem {
		return arm64.Mem{Mode: arm64.AddrRegUXTW, Base: core.RegBase, Index: index.W(), Amount: -1}
	}

	switch m.Mode {
	case arm64.AddrBase:
		access.Mem = guardedMem(m.Base)
		r.emit(access, line)
		r.stats.GuardsFolded++

	case arm64.AddrImm:
		if m.Imm == 0 {
			access.Mem = guardedMem(m.Base)
			r.emit(access, line)
			r.stats.GuardsFolded++
			break
		}
		if int64(m.Imm) > guardImmBound {
			r.oversizedImm(inst, line)
			return nil
		}
		// O2: serve from (or allocate) a hoisting register.
		if r.opts.Opt >= core.O2 {
			if h := r.hoistFor(f, idx, m.Base); h != arm64.RegNone {
				access.Mem = arm64.Mem{Mode: arm64.AddrImm, Base: h, Imm: m.Imm, Amount: -1}
				r.emit(access, line)
				r.stats.GuardsHoisted++
				break
			}
		}
		if m.Imm >= -4095 && m.Imm <= 4095 {
			// add w22, wN, #imm ; op rt, [x21, w22, uxtw]
			r.emit(addImm(core.RegAddr32.W(), m.Base.W(), int64(m.Imm)), line)
			access.Mem = guardedMem(core.RegAddr32)
			r.emit(access, line)
			r.stats.GuardsSingle++
		} else {
			// Large scaled immediates: fall back to the base technique;
			// the offset still lands inside the guard region.
			r.emit(core.GuardInto(core.RegScratch, m.Base), line)
			access.Mem = arm64.Mem{Mode: arm64.AddrImm, Base: core.RegScratch, Imm: m.Imm, Amount: -1}
			r.emit(access, line)
			r.stats.GuardsBase++
		}

	case arm64.AddrPre:
		// add xN, xN, #imm ; op rt, [x21, wN, uxtw]
		r.emit(addImm(m.Base, m.Base, int64(m.Imm)), line)
		access.Mem = guardedMem(m.Base)
		r.emit(access, line)
		r.stats.GuardsSingle++

	case arm64.AddrPost:
		// op rt, [x21, wN, uxtw] ; add xN, xN, #imm
		access.Mem = guardedMem(m.Base)
		r.emit(access, line)
		r.emit(addImm(m.Base, m.Base, int64(m.Imm)), line)
		r.stats.GuardsSingle++

	case arm64.AddrReg, arm64.AddrRegUXTW, arm64.AddrRegSXTW:
		st, err := stageIndexAdd(core.RegAddr32.W(), m.Base.W(), m)
		if err != nil {
			return &Error{line, err.Error()}
		}
		r.emit(st, line)
		access.Mem = guardedMem(core.RegAddr32)
		r.emit(access, line)
		r.stats.GuardsSingle++

	case arm64.AddrRegSXTX:
		return r.sxtxFallback(inst, line)
	}
	r.guardLoadedDests(inst, line)
	return nil
}

// baseTechnique guards pair/exclusive accesses, which have no guarded
// addressing mode (§4.1 end): the base is forced into x18 (or served from
// a hoisting register at O2).
func (r *rewriter) baseTechnique(f *arm64.File, idx int, inst *arm64.Inst, line int) error {
	access := *inst
	switch inst.Op {
	case arm64.LDXR, arm64.LDAXR, arm64.STXR, arm64.STLXR, arm64.LDAR, arm64.STLR:
		r.emit(core.GuardInto(core.RegScratch, inst.Rn), line)
		r.stats.GuardsBase++
		access.Rn = core.RegScratch
		r.emit(access, line)
		r.guardLoadedDests(inst, line)
		return nil
	}

	m := inst.Mem
	// ldp xN, xM, [xN], #i style writeback where a destination is also the
	// base is constrained-unpredictable on hardware; reject it.
	if m.WritesBack() && inst.Op == arm64.LDP &&
		(inst.Rd.X() == m.Base.X() || inst.Rm.X() == m.Base.X()) {
		return &Error{line, "ldp writeback with base in destination list"}
	}

	switch m.Mode {
	case arm64.AddrBase, arm64.AddrImm:
		if r.opts.Opt >= core.O2 {
			if h := r.hoistFor(f, idx, m.Base); h != arm64.RegNone {
				access.Mem = arm64.Mem{Mode: arm64.AddrImm, Base: h, Imm: m.Imm, Amount: -1}
				r.emit(access, line)
				r.stats.GuardsHoisted++
				r.guardLoadedDests(inst, line)
				return nil
			}
		}
		r.emit(core.GuardInto(core.RegScratch, m.Base), line)
		r.stats.GuardsBase++
		access.Mem = arm64.Mem{Mode: arm64.AddrImm, Base: core.RegScratch, Imm: m.Imm, Amount: -1}
		r.emit(access, line)

	case arm64.AddrPre:
		r.emit(addImm(m.Base, m.Base, int64(m.Imm)), line)
		r.emit(core.GuardInto(core.RegScratch, m.Base), line)
		r.stats.GuardsBase++
		access.Mem = arm64.Mem{Mode: arm64.AddrImm, Base: core.RegScratch, Amount: -1}
		r.emit(access, line)

	case arm64.AddrPost:
		r.emit(core.GuardInto(core.RegScratch, m.Base), line)
		r.stats.GuardsBase++
		access.Mem = arm64.Mem{Mode: arm64.AddrImm, Base: core.RegScratch, Amount: -1}
		r.emit(access, line)
		r.emit(addImm(m.Base, m.Base, int64(m.Imm)), line)

	default:
		return &Error{line, "pair access with register-offset addressing"}
	}
	r.guardLoadedDests(inst, line)
	return nil
}

// hoistFor returns a hoisting register currently guarding base, or
// allocates one if at least two upcoming accesses in this basic block
// would use it (Figure 2). Returns RegNone when hoisting is not
// worthwhile.
func (r *rewriter) hoistFor(f *arm64.File, idx int, base arm64.Reg) arm64.Reg {
	for h := range r.hoistBase {
		if r.hoistBase[h] != arm64.RegNone && r.hoistBase[h].X() == base.X() {
			return hoistRegs[h]
		}
	}
	if r.countUpcoming(f, idx, base) < 2 {
		return arm64.RegNone
	}
	h := r.hoistNext
	// Prefer a free slot over round-robin eviction.
	for k := range r.hoistBase {
		if r.hoistBase[k] == arm64.RegNone {
			h = k
			break
		}
	}
	r.hoistNext = (h + 1) % len(hoistRegs)
	r.hoistBase[h] = base.X()
	r.emit(core.GuardInto(hoistRegs[h], base), f.Items[idx].LineNo)
	r.stats.HoistGuards++
	return hoistRegs[h]
}

// countUpcoming counts accesses (including the one at idx) in the current
// basic block that could be served by hoisting base, stopping at labels,
// branches, section changes, or a redefinition of base.
func (r *rewriter) countUpcoming(f *arm64.File, idx int, base arm64.Reg) int {
	count := 0
	limit := idx + 100
	for j := idx; j < len(f.Items) && j < limit; j++ {
		it := &f.Items[j]
		switch it.Kind {
		case arm64.ItemLabel:
			return count
		case arm64.ItemDirective:
			if sectionOf(it) != "" {
				return count
			}
			continue
		}
		in := &it.Inst
		if in.Op.IsMemory() {
			m := in.Mem
			usable := (m.Mode == arm64.AddrBase || m.Mode == arm64.AddrImm) &&
				m.Base.X() == base.X() &&
				!(in.Op == arm64.LDXR || in.Op == arm64.LDAXR || in.Op == arm64.STXR ||
					in.Op == arm64.STLXR || in.Op == arm64.LDAR || in.Op == arm64.STLR)
			if usable && !(r.opts.NoLoads && in.Op.IsLoad() && !loadsX30(in)) {
				count++
			}
		}
		if in.Op.IsBranch() {
			return count
		}
		var dsts [4]arm64.Reg
		for _, d := range in.DestRegs(dsts[:0]) {
			if d.X() == base.X() {
				return count
			}
		}
	}
	return count
}
