package rewrite

import (
	"strings"
	"testing"

	"lfi/internal/arm64"
	"lfi/internal/core"
	"lfi/internal/emu"
	"lfi/internal/mem"
)

const pageSize = 16 * 1024

func parse(t *testing.T, src string) *arm64.File {
	t.Helper()
	f, err := arm64.ParseFile(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f
}

func rewriteSrc(t *testing.T, src string, opts core.Options) (*arm64.File, Stats) {
	t.Helper()
	f := parse(t, src)
	nf, stats, err := Rewrite(f, opts)
	if err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	return nf, stats
}

// runNative executes the program outside any sandbox.
func runNative(t *testing.T, f *arm64.File) *emu.CPU {
	t.Helper()
	img, err := arm64.Assemble(f, arm64.Layout{TextBase: 0x10000000, PageSize: pageSize})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	as := mem.NewAddrSpace(pageSize)
	loadImage(t, as, img)
	stackTop := uint64(0x10000000 + 32*1024*1024)
	if err := as.Map(stackTop-1024*1024, 1024*1024, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	c := emu.New(as)
	c.PC = img.Entry
	c.SP = stackTop
	tr := c.Run(10_000_000)
	if tr.Kind != emu.TrapBRK {
		t.Fatalf("native run trapped: %v", tr)
	}
	return c
}

// runSandboxed executes the rewritten program inside a 4GiB slot with x21
// holding the sandbox base, mirroring the runtime's layout.
func runSandboxed(t *testing.T, f *arm64.File) (*emu.CPU, *emu.Trap) {
	t.Helper()
	slot := core.SlotBase(1)
	img, err := arm64.Assemble(f, arm64.Layout{
		TextBase: slot + core.MinCodeOffset,
		PageSize: pageSize,
	})
	if err != nil {
		t.Fatalf("assemble sandboxed: %v", err)
	}
	as := mem.NewAddrSpace(pageSize)
	loadImage(t, as, img)
	stackTop := slot + uint64(64*1024*1024)
	if err := as.Map(stackTop-1024*1024, 1024*1024, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	c := emu.New(as)
	c.PC = img.Entry
	c.SP = stackTop
	c.X[21-0] = slot // x21 = sandbox base
	c.X[18] = slot + core.MinCodeOffset
	c.X[23] = slot + core.MinCodeOffset
	c.X[24] = slot + core.MinCodeOffset
	tr := c.Run(10_000_000)
	return c, tr
}

func loadImage(t *testing.T, as *mem.AddrSpace, img *arm64.Image) {
	t.Helper()
	up := func(v uint64) uint64 { return (v + pageSize - 1) &^ (pageSize - 1) }
	if err := as.Map(img.TextAddr, up(uint64(len(img.Text))+1), mem.PermRX); err != nil {
		t.Fatal(err)
	}
	as.WriteForce(img.Text, img.TextAddr)
	if len(img.ROData) > 0 {
		if err := as.Map(img.RODataAddr, up(uint64(len(img.ROData))), mem.PermRead); err != nil {
			t.Fatal(err)
		}
		as.WriteForce(img.ROData, img.RODataAddr)
	}
	if len(img.Data) > 0 || img.BSSSize > 0 {
		end := up(img.BSSAddr + img.BSSSize)
		if end > img.DataAddr {
			if err := as.Map(img.DataAddr, end-img.DataAddr, mem.PermRW); err != nil {
				t.Fatal(err)
			}
		}
		as.WriteForce(img.Data, img.DataAddr)
	}
}

// equivalence asserts that the rewritten program computes the same results
// in the given registers as the original, at every optimization level.
// Registers holding pointers are excluded by the caller, since native and
// sandboxed runs legitimately place data at different addresses.
func equivalence(t *testing.T, src string, results ...int) {
	t.Helper()
	native := runNative(t, parse(t, src))
	for _, opts := range []core.Options{
		{Opt: core.O0},
		{Opt: core.O1},
		{Opt: core.O2},
		{Opt: core.O2, NoLoads: true},
		{Opt: core.O2, DisableSPOpts: true},
	} {
		nf, _ := rewriteSrc(t, src, opts)
		c, tr := runSandboxed(t, nf)
		if tr.Kind != emu.TrapBRK {
			t.Fatalf("%v: sandboxed run trapped: %v\n%s", opts, tr, nf.String())
		}
		for _, i := range results {
			if c.X[i] != native.X[i] {
				t.Errorf("%v: x%d = %#x, native %#x\n%s", opts, i, c.X[i], native.X[i], nf.String())
			}
		}
	}
}

func TestEquivalenceBasicLoads(t *testing.T) {
	equivalence(t, `
_start:
	adrp x1, data
	add x1, x1, :lo12:data
	ldr x0, [x1]
	ldr x2, [x1, #8]
	ldr x3, [x1, #16]
	ldrb w4, [x1, #1]
	ldrh w5, [x1, #2]
	ldrsw x6, [x1, #4]
	mov x9, #1
	ldr x7, [x1, x9, lsl #3]
	mov w10, #2
	ldr x8, [x1, w10, uxtw #3]
	brk #0
.data
data:
	.quad 0x1122334455667788
	.quad 0x99aabbccddeeff00
	.quad 42
`, 0, 2, 3, 4, 5, 6, 7, 8)
}

func TestEquivalenceStores(t *testing.T) {
	equivalence(t, `
_start:
	adrp x1, buf
	add x1, x1, :lo12:buf
	mov x0, #0xbeef
	str x0, [x1]
	str x0, [x1, #8]
	strb w0, [x1, #16]
	strh w0, [x1, #18]
	mov x9, #3
	str x0, [x1, x9, lsl #3]
	ldr x2, [x1]
	ldr x3, [x1, #8]
	ldrb w4, [x1, #16]
	ldrh w5, [x1, #18]
	ldr x6, [x1, #24]
	brk #0
.bss
buf:
	.space 64
`, 0, 2, 3, 4, 5, 6)
}

func TestEquivalenceWriteback(t *testing.T) {
	equivalence(t, `
_start:
	adrp x1, buf
	add x1, x1, :lo12:buf
	mov x0, #7
	str x0, [x1, #8]!
	sub x2, x1, #8          // x1 advanced by 8
	mov x0, #9
	str x0, [x1], #16
	ldr x3, [x2, #8]        // 7
	ldr x4, [x2, #8]
	ldr x5, [x1, #-16]      // 9? no: x1 = buf+24 now; buf+8 holds 7... use fresh
	adrp x6, buf
	add x6, x6, :lo12:buf
	ldr x7, [x6, #8]!       // 7, x6=buf+8
	sub x8, x6, x2          // 0? x2 = buf. x6 = buf+8 -> 8
	sub x8, x6, x2
	brk #0
.bss
buf:
	.space 64
`, 0, 3, 4, 5, 7, 8)
}

func TestEquivalencePairsAndCalls(t *testing.T) {
	equivalence(t, `
_start:
	mov x0, #6
	bl fib
	brk #0
fib:
	cmp x0, #2
	b.lt done
	stp x29, x30, [sp, #-32]!
	stp x19, x20, [sp, #16]
	mov x19, x0
	sub x0, x0, #1
	bl fib
	mov x20, x0
	sub x0, x19, #2
	bl fib
	add x0, x0, x20
	ldp x19, x20, [sp, #16]
	ldp x29, x30, [sp], #32
	ret
done:
	ret
`, 0)
}

func TestEquivalenceIndirect(t *testing.T) {
	equivalence(t, `
_start:
	adrp x1, table
	add x1, x1, :lo12:table
	mov x9, #1
	ldr x2, [x1, x9, lsl #3]
	blr x2
	mov x5, x0
	adr x3, third
	br x3
third:
	mov x6, #33
	brk #0
f0:
	mov x0, #10
	ret
f1:
	mov x0, #20
	ret
.data
table:
	.quad f0, f1
`, 0, 5, 6)
}

func TestEquivalenceSPManipulation(t *testing.T) {
	equivalence(t, `
_start:
	sub sp, sp, #64
	mov x0, #5
	str x0, [sp, #8]
	add sp, sp, #32
	ldr x1, [sp, #-24]
	sub sp, sp, #512
	str x0, [sp]
	ldr x2, [sp]
	add sp, sp, #512
	add sp, sp, #32
	mov x9, sp
	mov sp, x9
	str x0, [sp, #-16]!
	ldr x3, [sp], #16
	brk #0
`, 0, 1, 2, 3)
}

func TestEquivalenceExclusives(t *testing.T) {
	equivalence(t, `
_start:
	adrp x1, word
	add x1, x1, :lo12:word
retry:
	ldxr x2, [x1]
	add x2, x2, #1
	stxr w3, x2, [x1]
	cbnz w3, retry
	ldr x0, [x1]
	ldar x4, [x1]
	add x4, x4, #1
	stlr x4, [x1]
	ldr x5, [x1]
	brk #0
.data
word:
	.quad 41
`, 0, 2, 4, 5)
}

func TestEquivalenceHoisting(t *testing.T) {
	// The Figure 2 pattern: several stores off the same base.
	equivalence(t, `
_start:
	adrp x1, buf
	add x1, x1, :lo12:buf
	mov x0, #1
	str x0, [x1, #8]
	str x0, [x1, #16]
	str x0, [x1, #24]
	str x0, [x1, #32]
	adrp x2, buf2
	add x2, x2, :lo12:buf2
	str x0, [x2, #8]
	str x0, [x2, #16]
	ldr x3, [x1, #8]
	ldr x4, [x2, #16]
	ldr x5, [x1, #32]
	brk #0
.bss
buf:
	.space 64
buf2:
	.space 64
`, 0, 3, 4, 5)
}

func TestEquivalenceFP(t *testing.T) {
	equivalence(t, `
_start:
	adrp x1, vals
	add x1, x1, :lo12:vals
	ldr d0, [x1]
	ldr d1, [x1, #8]
	fadd d2, d0, d1
	fcvtzs x0, d2
	str d2, [x1, #16]
	ldr d3, [x1, #16]
	fcvtzs x2, d3
	ldr q4, [x1]
	str q4, [x1, #32]
	ldr x3, [x1, #32]
	ldp d5, d6, [x1]
	fadd d7, d5, d6
	fcvtzs x4, d7
	brk #0
.data
vals:
	.quad 0x4008000000000000   // 3.0
	.quad 0x4010000000000000   // 4.0
	.space 48
`, 0, 2, 3, 4)
}

// Oversized immediates: q-register scaled offsets reach up to 65520 bytes,
// past the 48KiB guard region, so the rewriter must stage the full address
// in w22 instead of passing the immediate through (the verifier rejects
// immediates above GuardSize-16).
func TestEquivalenceOversizedImm(t *testing.T) {
	equivalence(t, `
_start:
	adrp x1, buf
	add x1, x1, :lo12:buf
	ldr q0, [x1]
	sub sp, sp, #65536
	str q0, [sp, #65520]
	ldr q1, [sp, #65520]
	add sp, sp, #65536
	str q1, [x1, #65520]
	ldr q2, [x1, #65520]
	str q2, [x1, #32]
	ldr x0, [x1, #32]
	ldr x2, [x1, #40]
	brk #0
.data
buf:
	.quad 0x1122334455667788
	.quad 0x99aabbccddeeff00
	.space 65536
`, 0, 2)
}

// TestGuardEscape verifies the security property: a rewritten program that
// tries to access memory outside its sandbox is forced back inside (the
// access is redirected, not faulted, per §3).
func TestGuardEscape(t *testing.T) {
	src := `
_start:
	movz x1, #0x7f, lsl #32    // address far outside the sandbox
	movk x1, #0x1234
	ldr x0, [x1]               // guarded: must not fault, must stay inside
	str x0, [x1]
	brk #0
`
	for _, opt := range []core.OptLevel{core.O0, core.O1, core.O2} {
		nf, _ := rewriteSrc(t, src, core.Options{Opt: opt})
		_, tr := runSandboxed(t, nf)
		// The forced address is slot+0x1234, which is in the call-table/
		// guard area and unmapped -> memory fault *inside* the sandbox is
		// acceptable; escaping to 0x7f00001234 would also fault, so check
		// the faulting address instead.
		if tr.Kind == emu.TrapMemFault {
			if tr.Fault.Addr>>32 != core.SlotBase(1)>>32 {
				t.Errorf("%v: fault outside sandbox at %#x", opt, tr.Fault.Addr)
			}
		} else if tr.Kind != emu.TrapBRK {
			t.Errorf("%v: unexpected trap %v", opt, tr)
		}
	}
}

func TestTable3Shapes(t *testing.T) {
	// Check the exact emitted sequences for Table 3 rows at O1.
	cases := []struct {
		in   string
		want []string
	}{
		{"ldr x0, [x1]", []string{"ldr x0, [x21, w1, uxtw]"}},
		{"ldr x0, [x1, #8]", []string{"add w22, w1, #8", "ldr x0, [x21, w22, uxtw]"}},
		{"ldr x0, [x1, #8]!", []string{"add x1, x1, #8", "ldr x0, [x21, w1, uxtw]"}},
		{"ldr x0, [x1], #8", []string{"ldr x0, [x21, w1, uxtw]", "add x1, x1, #8"}},
		{"ldr x0, [x1, x2, lsl #3]", []string{"add w22, w1, w2, lsl #3", "ldr x0, [x21, w22, uxtw]"}},
		{"ldr x0, [x1, w2, uxtw #3]", []string{"add w22, w1, w2, uxtw #3", "ldr x0, [x21, w22, uxtw]"}},
		{"ldr x0, [x1, w2, sxtw #3]", []string{"add w22, w1, w2, sxtw #3", "ldr x0, [x21, w22, uxtw]"}},
		{"str x0, [x1, #-4]", []string{"sub w22, w1, #4", "str x0, [x21, w22, uxtw]"}},
		{"ldp x0, x1, [x2, #16]", []string{"add x18, x21, w2, uxtw", "ldp x0, x1, [x18, #16]"}},
		{"ldxr x0, [x1]", []string{"add x18, x21, w1, uxtw", "ldxr x0, [x18]"}},
		{"ldr x0, [sp, #8]", []string{"ldr x0, [sp, #8]"}},
	}
	for _, c := range cases {
		nf, _ := rewriteSrc(t, "_start:\n\t"+c.in+"\n\tbrk #0\n", core.Options{Opt: core.O1})
		var got []string
		for _, it := range nf.Items {
			if it.Kind == arm64.ItemInst && it.Inst.Op != arm64.BRK {
				got = append(got, it.Inst.String())
			}
		}
		if len(got) != len(c.want) {
			t.Errorf("%q -> %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%q inst %d = %q, want %q", c.in, i, got[i], c.want[i])
			}
		}
	}
}

func TestO0Shapes(t *testing.T) {
	nf, _ := rewriteSrc(t, "_start:\n\tldr x0, [x1, #8]\n\tbrk #0\n", core.Options{Opt: core.O0})
	var got []string
	for _, it := range nf.Items {
		if it.Kind == arm64.ItemInst && it.Inst.Op != arm64.BRK {
			got = append(got, it.Inst.String())
		}
	}
	want := []string{"add x18, x21, w1, uxtw", "ldr x0, [x18, #8]"}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("O0 shape = %v, want %v", got, want)
	}
}

func TestHoistingStats(t *testing.T) {
	src := `
_start:
	str x0, [x1, #8]
	str x0, [x1, #16]
	str x0, [x1, #24]
	str x0, [x1, #32]
	brk #0
`
	_, stats := rewriteSrc(t, src, core.Options{Opt: core.O2})
	if stats.HoistGuards != 1 {
		t.Errorf("hoist guards = %d, want 1", stats.HoistGuards)
	}
	if stats.GuardsHoisted != 4 {
		t.Errorf("hoisted accesses = %d, want 4", stats.GuardsHoisted)
	}
	// At O1 the same input costs one staging add per store.
	_, statsO1 := rewriteSrc(t, src, core.Options{Opt: core.O1})
	if statsO1.GuardsSingle != 4 {
		t.Errorf("O1 staging adds = %d, want 4", statsO1.GuardsSingle)
	}
	// O2 output must be smaller.
	if stats.OutputInsts >= statsO1.OutputInsts {
		t.Errorf("O2 (%d insts) not smaller than O1 (%d)", stats.OutputInsts, statsO1.OutputInsts)
	}
}

func TestSPGuardStats(t *testing.T) {
	// Small sub with later access in the same block: elided.
	_, s1 := rewriteSrc(t, "_start:\n\tsub sp, sp, #32\n\tstr x0, [sp]\n\tbrk #0\n", core.Options{Opt: core.O2})
	if s1.SPElided != 1 || s1.SPGuards != 0 {
		t.Errorf("elidable sp mod: elided=%d guards=%d", s1.SPElided, s1.SPGuards)
	}
	// Large sub: guarded.
	_, s2 := rewriteSrc(t, "_start:\n\tsub sp, sp, #4096\n\tstr x0, [sp]\n\tbrk #0\n", core.Options{Opt: core.O2})
	if s2.SPGuards != 1 {
		t.Errorf("large sp mod: guards=%d", s2.SPGuards)
	}
	// Small sub followed by a branch before any access: guarded.
	_, s3 := rewriteSrc(t, "_start:\n\tsub sp, sp, #32\n\tb next\nnext:\n\tstr x0, [sp]\n\tbrk #0\n", core.Options{Opt: core.O2})
	if s3.SPGuards != 1 {
		t.Errorf("branch-interrupted sp mod: guards=%d", s3.SPGuards)
	}
	// mov sp, xN: always guarded.
	_, s4 := rewriteSrc(t, "_start:\n\tmov x9, sp\n\tmov sp, x9\n\tstr x0, [sp]\n\tbrk #0\n", core.Options{Opt: core.O2})
	if s4.SPGuards != 1 {
		t.Errorf("mov sp: guards=%d", s4.SPGuards)
	}
	// DisableSPOpts forces the guard.
	_, s5 := rewriteSrc(t, "_start:\n\tsub sp, sp, #32\n\tstr x0, [sp]\n\tbrk #0\n",
		core.Options{Opt: core.O2, DisableSPOpts: true})
	if s5.SPGuards != 1 {
		t.Errorf("DisableSPOpts: guards=%d", s5.SPGuards)
	}
}

func TestX30Guard(t *testing.T) {
	nf, stats := rewriteSrc(t, `
_start:
	ldp x29, x30, [sp], #16
	ret
`, core.Options{Opt: core.O2})
	if stats.RetGuards != 1 {
		t.Errorf("ret guards = %d, want 1", stats.RetGuards)
	}
	text := nf.String()
	if !strings.Contains(text, "add x30, x21, w30, uxtw") {
		t.Errorf("missing x30 guard:\n%s", text)
	}
}

func TestRuntimeCallPassThrough(t *testing.T) {
	src := "_start:\n\tldr x30, [x21, #8]\n\tblr x30\n\tbrk #0\n"
	nf, stats := rewriteSrc(t, src, core.Options{Opt: core.O2})
	if stats.RetGuards != 0 || stats.GuardsBase != 0 || stats.GuardsSingle != 0 {
		t.Errorf("runtime call pair was instrumented: %+v", stats)
	}
	count := 0
	for _, it := range nf.Items {
		if it.Kind == arm64.ItemInst {
			count++
		}
	}
	if count != 3 {
		t.Errorf("output has %d insts, want 3:\n%s", count, nf.String())
	}
}

func TestRejectsReservedRegs(t *testing.T) {
	bad := []string{
		"mov x21, x0",
		"add x18, x0, #1",
		"ldr x22, [x0]",
		"ldr x0, [x23]",
		"ldr x0, [x0, x24]",
		"ldr x0, [x21, #200]", // beyond the call table without blr
	}
	for _, src := range bad {
		f := parse(t, "_start:\n\t"+src+"\n\tbrk #0\n")
		if _, _, err := Rewrite(f, core.Options{Opt: core.O2}); err == nil {
			t.Errorf("%q: expected rejection", src)
		}
	}
}

func TestTbzRangeFixup(t *testing.T) {
	var b strings.Builder
	b.WriteString("_start:\n\ttbz x0, #3, far\n")
	for i := 0; i < 9000; i++ {
		b.WriteString("\tnop\n")
	}
	b.WriteString("far:\n\tbrk #0\n")
	nf, stats := rewriteSrc(t, b.String(), core.Options{Opt: core.O2})
	if stats.RangeFixups != 1 {
		t.Fatalf("range fixups = %d, want 1", stats.RangeFixups)
	}
	// The result must assemble (tbz range respected).
	if _, err := arm64.Assemble(nf, arm64.Layout{TextBase: 0x10000000}); err != nil {
		t.Fatalf("fixed-up file does not assemble: %v", err)
	}
	// And the semantics must hold: tbz bit 3 of 0 -> branch taken.
	c, tr := runSandboxed(t, nf)
	if tr.Kind != emu.TrapBRK {
		t.Fatalf("trap: %v", tr)
	}
	_ = c
}

func TestNoLoadsMode(t *testing.T) {
	src := `
_start:
	ldr x0, [x1]
	str x0, [x1]
	brk #0
`
	nf, _ := rewriteSrc(t, src, core.Options{Opt: core.O2, NoLoads: true})
	text := nf.String()
	if !strings.Contains(text, "ldr x0, [x1]") {
		t.Errorf("load was instrumented in no-loads mode:\n%s", text)
	}
	if strings.Contains(text, "str x0, [x1]") {
		t.Errorf("store was not instrumented in no-loads mode:\n%s", text)
	}
	// Loads into x30 must still be guarded.
	nf2, stats := rewriteSrc(t, "_start:\n\tldr x30, [x1]\n\tret\n", core.Options{Opt: core.O2, NoLoads: true})
	if stats.RetGuards != 1 {
		t.Errorf("x30 load unguarded in no-loads mode:\n%s", nf2.String())
	}
	// Writeback loads are outside the verifier's no-loads exemption, so
	// they must be lowered like any other access, not passed through
	// (regression: the fuzz harness caught post-index loads emitted raw).
	for _, src := range []string{
		"_start:\n\tldr x2, [x10], #16\n\tbrk #0\n",
		"_start:\n\tldr x2, [x10, #8]!\n\tbrk #0\n",
	} {
		nf3, _ := rewriteSrc(t, src, core.Options{Opt: core.O2, NoLoads: true})
		if strings.Contains(nf3.String(), "[x10],") || strings.Contains(nf3.String(), "[x10, #8]!") {
			t.Errorf("writeback load passed through in no-loads mode:\n%s", nf3.String())
		}
	}
}

func TestCodeSizeGrowthModest(t *testing.T) {
	// A load/store heavy block should grow far less than 2x at O2.
	var b strings.Builder
	b.WriteString("_start:\n")
	for i := 0; i < 50; i++ {
		b.WriteString("\tldr x0, [x1]\n\tadd x0, x0, #1\n\tstr x0, [x1]\n")
	}
	b.WriteString("\tbrk #0\n")
	_, stats := rewriteSrc(t, b.String(), core.Options{Opt: core.O2})
	growth := float64(stats.OutputInsts) / float64(stats.InputInsts)
	if growth > 1.25 {
		t.Errorf("O2 instruction growth = %.2f, want <= 1.25", growth)
	}
	_, statsO0 := rewriteSrc(t, b.String(), core.Options{Opt: core.O0})
	growthO0 := float64(statsO0.OutputInsts) / float64(statsO0.InputInsts)
	if growthO0 <= growth {
		t.Errorf("O0 growth %.2f not larger than O2 growth %.2f", growthO0, growth)
	}
}
