// Package rewrite implements the LFI assembly transformer: it consumes
// GNU-syntax assembly produced by any compiler and inserts the guards that
// make the program verifiable (§5.1). The pass is purely assembly-to-
// assembly; the assembler and verifier downstream never trust it.
package rewrite

import (
	"fmt"

	"lfi/internal/arm64"
	"lfi/internal/core"
)

// Stats reports what the rewriter did, for the code-size evaluation (§6.3)
// and the optimization-effect figures.
type Stats struct {
	InputInsts    int
	OutputInsts   int
	GuardsFolded  int // accesses rewritten to the zero-cost addressing mode
	GuardsSingle  int // one-instruction staging adds (Table 3 rows 2+)
	GuardsBase    int // two-instruction base guards (ldp/atomics/O0)
	GuardsHoisted int // accesses served by a hoisting register (§4.3)
	HoistGuards   int // guard instructions writing a hoist register
	SPGuards      int // stack-pointer guard sequences
	SPElided      int // sp guards elided by the §4.2 optimizations
	RetGuards     int // x30 restore guards
	BranchGuards  int // indirect-branch guards
	RangeFixups   int // tbz/tbnz replaced by a two-instruction sequence
}

// Error wraps a rewriting failure with the source line.
type Error struct {
	LineNo int
	Msg    string
}

func (e *Error) Error() string { return fmt.Sprintf("rewrite: line %d: %s", e.LineNo, e.Msg) }

type rewriter struct {
	opts     core.Options
	out      []arm64.Item
	stats    Stats
	labels   int
	skipNext bool // next instruction already emitted (runtime-call pair)

	// Hoisting state (per basic block): which base register each hoist
	// register currently guards, and round-robin eviction.
	hoistBase [2]arm64.Reg // base currently guarded by x23/x24 (RegNone if none)
	hoistNext int
}

var hoistRegs = [2]arm64.Reg{core.RegHoist1, core.RegHoist2}

// Rewrite transforms the file according to opts and returns a new file.
func Rewrite(f *arm64.File, opts core.Options) (*arm64.File, Stats, error) {
	r := &rewriter{opts: opts}
	r.resetHoists()

	inText := true
	for idx := range f.Items {
		it := &f.Items[idx]
		switch it.Kind {
		case arm64.ItemLabel:
			r.resetHoists()
			r.out = append(r.out, *it)
		case arm64.ItemDirective:
			if sec := sectionOf(it); sec != "" {
				inText = sec == "text"
				r.resetHoists()
			}
			r.out = append(r.out, *it)
		case arm64.ItemInst:
			if !inText {
				return nil, r.stats, &Error{it.LineNo, "instruction outside .text"}
			}
			r.stats.InputInsts++
			if r.skipNext {
				r.skipNext = false
				continue
			}
			if err := r.inst(f, idx); err != nil {
				return nil, r.stats, err
			}
			if it.Inst.Op.IsBranch() {
				r.resetHoists()
			}
		}
	}

	nf := &arm64.File{Items: r.out}
	fixupStats := fixRanges(nf)
	r.stats.RangeFixups = fixupStats
	for _, it := range nf.Items {
		if it.Kind == arm64.ItemInst {
			r.stats.OutputInsts++
		}
	}
	// Re-resolve sp elision on the rewritten stream.
	return nf, r.stats, nil
}

func sectionOf(it *arm64.Item) string {
	switch it.Directive {
	case "text":
		return "text"
	case "data", "bss", "rodata":
		return it.Directive
	case "section":
		if len(it.Args) > 0 {
			switch {
			case len(it.Args[0]) >= 5 && it.Args[0][:5] == ".text":
				return "text"
			default:
				return "data"
			}
		}
	}
	return ""
}

func (r *rewriter) resetHoists() {
	r.hoistBase[0], r.hoistBase[1] = arm64.RegNone, arm64.RegNone
	r.hoistNext = 0
}

func (r *rewriter) emit(inst arm64.Inst, lineNo int) {
	r.out = append(r.out, arm64.Item{Kind: arm64.ItemInst, Inst: inst, LineNo: lineNo})
}

func (r *rewriter) freshLabel() string {
	r.labels++
	return fmt.Sprintf(".Llfi%d", r.labels)
}

// inst rewrites the instruction at f.Items[idx].
func (r *rewriter) inst(f *arm64.File, idx int) error {
	it := &f.Items[idx]
	inst := it.Inst

	// Reject programs that use reserved registers themselves. Compilers
	// are invoked with -ffixed-x18 etc., so this only fires on bad input.
	// Our own insertions never pass through here.
	if err := r.checkReserved(&inst, it.LineNo); err != nil {
		return err
	}

	// Invalidate hoists whose base this instruction redefines.
	defer func() {
		var dsts [4]arm64.Reg
		for _, d := range it.Inst.DestRegs(dsts[:0]) {
			for h := range r.hoistBase {
				if r.hoistBase[h] != arm64.RegNone && r.hoistBase[h].X() == d.X() {
					r.hoistBase[h] = arm64.RegNone
				}
			}
		}
	}()

	switch {
	case inst.Op.IsMemory():
		return r.memOp(f, idx)
	case inst.Op == arm64.BR, inst.Op == arm64.BLR, inst.Op == arm64.RET:
		return r.indirectBranch(f, idx)
	}

	// Arithmetic writes to sp or x30 need re-guarding.
	var dsts [4]arm64.Reg
	for _, d := range inst.DestRegs(dsts[:0]) {
		switch {
		case d.IsSP():
			return r.spWrite(f, idx)
		case d.X() == arm64.X30:
			r.emit(inst, it.LineNo)
			r.emit(core.GuardInto(arm64.X30, arm64.X30), it.LineNo)
			r.stats.RetGuards++
			return nil
		}
	}

	r.emit(inst, it.LineNo)
	return nil
}

// checkReserved rejects input that writes the reserved registers or uses
// them other than as the paper's conventions allow.
func (r *rewriter) checkReserved(inst *arm64.Inst, lineNo int) error {
	var dsts [4]arm64.Reg
	for _, d := range inst.DestRegs(dsts[:0]) {
		if core.IsReserved(d) {
			// Permit the runtime-call idiom "ldr x30, [x21, #n]" (handled
			// in memOp) — x30 is not reserved, so only the five reserved
			// registers are rejected here.
			return &Error{lineNo, fmt.Sprintf("input writes reserved register %v", d)}
		}
	}
	// Reading x21 is allowed only as a load/store base (the call table).
	return nil
}

// indirectBranch sandboxes br/blr/ret (§3).
func (r *rewriter) indirectBranch(f *arm64.File, idx int) error {
	it := &f.Items[idx]
	inst := it.Inst
	tgt := inst.Rn

	// ret through x30 is always safe: x30 maintains the valid-target
	// invariant.
	if inst.Op == arm64.RET && tgt.X() == arm64.X30 {
		r.emit(inst, it.LineNo)
		return nil
	}
	// blr x30 immediately after the call-table load is the runtime-call
	// sequence; memOp emitted the pair together, so a lone blr x30 here
	// still needs no guard: x30 always holds a valid target.
	if tgt.X() == arm64.X30 || core.AlwaysValidAddr(tgt) {
		r.emit(inst, it.LineNo)
		return nil
	}

	// Guard the target into the scratch register, then branch through it.
	r.emit(core.GuardInto(core.RegScratch, tgt), it.LineNo)
	r.stats.BranchGuards++
	g := inst
	g.Rn = core.RegScratch
	if g.Op == arm64.RET {
		g.Op = arm64.BR // ret xN is just br with return hint
	}
	r.emit(g, it.LineNo)
	return nil
}

// spWrite handles instructions whose destination is the stack pointer.
func (r *rewriter) spWrite(f *arm64.File, idx int) error {
	it := &f.Items[idx]
	inst := it.Inst

	// "mov w22, wsp; add sp, x21, x22" — but first check the elision
	// conditions of §4.2.
	r.emit(inst, it.LineNo)
	if !r.opts.DisableSPOpts && spModElidable(f, idx) {
		r.stats.SPElided++
		return nil
	}
	for _, g := range core.SPGuard() {
		r.emit(g, it.LineNo)
	}
	r.stats.SPGuards++
	return nil
}

// spModElidable implements the "later access within the same basic block"
// elision (§4.2): an add/sub sp, sp, #imm with imm < 2^10 needs no guard
// if an sp-based memory access is guaranteed to execute before the next
// branch, label, or other sp modification.
func spModElidable(f *arm64.File, idx int) bool {
	inst := &f.Items[idx].Inst
	if inst.Op != arm64.ADD && inst.Op != arm64.SUB {
		return false
	}
	if inst.Rm != arm64.RegNone || !inst.Rn.IsSP() {
		return false
	}
	if inst.Imm < 0 || inst.Imm >= 1024 {
		return false
	}
	for j := idx + 1; j < len(f.Items); j++ {
		it := &f.Items[j]
		switch it.Kind {
		case arm64.ItemLabel:
			return false
		case arm64.ItemDirective:
			if sectionOf(it) != "" {
				return false
			}
			continue
		}
		in := &it.Inst
		if in.Op.IsBranch() {
			return false
		}
		if in.Op.IsMemory() && in.Mem.Base.IsSP() &&
			(in.Mem.Mode == arm64.AddrBase || in.Mem.Mode == arm64.AddrImm ||
				in.Mem.Mode == arm64.AddrPre || in.Mem.Mode == arm64.AddrPost) {
			// An immediate past spImmBound does not qualify: memOp lowers
			// it to the staged [x21, w22, uxtw] form, so the emitted code
			// has no sp-based access here and the elided add would be
			// unverifiable (and unsound — the big offset could carry the
			// drifted sp past the guard band).
			if in.Mem.Mode != arm64.AddrImm || int64(in.Mem.Imm) <= spImmBound {
				return true // this access traps if sp strayed into a guard page
			}
		}
		// Another sp write before any access: cannot elide.
		var dsts [4]arm64.Reg
		for _, d := range in.DestRegs(dsts[:0]) {
			if d.IsSP() {
				return false
			}
		}
	}
	return false
}

// spElisionMap is kept for the ablation bench: it answers, per index,
// whether §4.2 would elide the guard. (The main pass calls spModElidable
// directly; this exists so tests can inspect the decision.)
func spElisionMap(f *arm64.File, opts core.Options) []bool {
	m := make([]bool, len(f.Items))
	if opts.DisableSPOpts {
		return m
	}
	for i := range f.Items {
		it := &f.Items[i]
		if it.Kind != arm64.ItemInst {
			continue
		}
		var dsts [4]arm64.Reg
		for _, d := range it.Inst.DestRegs(dsts[:0]) {
			if d.IsSP() {
				m[i] = spModElidable(f, i)
			}
		}
	}
	return m
}

// fixRanges replaces tbz/tbnz whose (conservatively estimated) target is
// out of the ±32KiB encoding range with an inverted-condition trampoline
// (§5.1 "Difficulties").
func fixRanges(f *arm64.File) int {
	// First pass: approximate byte offset of every item and label.
	labelOff := make(map[string]int)
	off := 0
	offs := make([]int, len(f.Items))
	for i := range f.Items {
		it := &f.Items[i]
		offs[i] = off
		switch it.Kind {
		case arm64.ItemLabel:
			labelOff[it.Label] = off
		case arm64.ItemInst:
			off += 4
		case arm64.ItemDirective:
			off += 16 // conservative allowance for data/align directives
		}
	}
	const margin = 1 << 12 // safety margin under the 2^15 limit
	fixed := 0
	var out []arm64.Item
	seq := 0
	for i := range f.Items {
		it := f.Items[i]
		if it.Kind == arm64.ItemInst && (it.Inst.Op == arm64.TBZ || it.Inst.Op == arm64.TBNZ) && it.Inst.Label != "" {
			tgt, ok := labelOff[it.Inst.Label]
			if ok {
				d := tgt - offs[i]
				if d > (1<<15)-margin || d < -(1<<15)+margin {
					// tbz xN, #b, far  =>  tbnz xN, #b, near; b far; near:
					seq++
					skip := fmt.Sprintf(".Llfirange%d", seq)
					inv := it.Inst
					if inv.Op == arm64.TBZ {
						inv.Op = arm64.TBNZ
					} else {
						inv.Op = arm64.TBZ
					}
					inv.Label = skip
					out = append(out, arm64.Item{Kind: arm64.ItemInst, Inst: inv, LineNo: it.LineNo})
					out = append(out, arm64.Item{Kind: arm64.ItemInst, LineNo: it.LineNo,
						Inst: arm64.Inst{Op: arm64.B, Rd: arm64.RegNone, Rn: arm64.RegNone,
							Rm: arm64.RegNone, Ra: arm64.RegNone, Amount: -1, Label: it.Inst.Label}})
					out = append(out, arm64.Item{Kind: arm64.ItemLabel, Label: skip, LineNo: it.LineNo})
					fixed++
					continue
				}
			}
		}
		out = append(out, it)
	}
	f.Items = out
	return fixed
}
