package elfobj

import (
	"debug/elf"
	"testing"

	"lfi/internal/arm64"
)

func buildImage(t *testing.T) *arm64.Image {
	t.Helper()
	src := `
_start:
	mov x0, #1
	ret
.data
v:
	.quad 7
.bss
b:
	.space 32
.rodata
r:
	.asciz "ro"
`
	f, err := arm64.ParseFile(src)
	if err != nil {
		t.Fatal(err)
	}
	img, err := arm64.Assemble(f, arm64.Layout{TextBase: 0x10000, PageSize: 16384})
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	img := buildImage(t)
	exe := FromImage(img)
	if len(exe.Segments) != 3 {
		t.Fatalf("segments = %d, want 3", len(exe.Segments))
	}
	b, err := exe.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Entry != exe.Entry {
		t.Errorf("entry = %#x, want %#x", got.Entry, exe.Entry)
	}
	if len(got.Segments) != len(exe.Segments) {
		t.Fatalf("segments = %d, want %d", len(got.Segments), len(exe.Segments))
	}
	for i := range exe.Segments {
		w, g := exe.Segments[i], got.Segments[i]
		if g.Vaddr != w.Vaddr || g.MemSize != w.MemSize || g.Flags != w.Flags {
			t.Errorf("segment %d header mismatch: %+v vs %+v", i, g, w)
		}
		if string(g.Data) != string(w.Data) {
			t.Errorf("segment %d data mismatch", i)
		}
	}
}

func TestReadableByDebugELF(t *testing.T) {
	exe := FromImage(buildImage(t))
	b, err := exe.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	f, err := elf.NewFile(readerAt(b))
	if err != nil {
		t.Fatalf("debug/elf rejects our output: %v", err)
	}
	defer f.Close()
	if f.Machine != elf.EM_AARCH64 || f.Class != elf.ELFCLASS64 {
		t.Errorf("header: %v %v", f.Machine, f.Class)
	}
}

func TestBSSExtension(t *testing.T) {
	exe := FromImage(buildImage(t))
	b, _ := exe.Marshal()
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	var data *Segment
	for i := range got.Segments {
		s := &got.Segments[i]
		if s.Flags == elf.PF_R|elf.PF_W {
			data = s
		}
	}
	if data == nil {
		t.Fatal("no rw segment")
	}
	if data.MemSize <= uint64(len(data.Data)) {
		t.Errorf("rw segment has no bss extension: mem %d file %d", data.MemSize, len(data.Data))
	}
}

func TestTextSegment(t *testing.T) {
	exe := FromImage(buildImage(t))
	text, err := exe.TextSegment()
	if err != nil {
		t.Fatal(err)
	}
	if text.Flags&elf.PF_X == 0 || len(text.Data) != 8 {
		t.Errorf("text = %+v", text)
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := Unmarshal([]byte("not an elf at all, sorry")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Unmarshal(nil); err == nil {
		t.Error("empty accepted")
	}
}

type byteReaderAt []byte

func (b byteReaderAt) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(b)) {
		return 0, nil
	}
	return copy(p, b[off:]), nil
}

func readerAt(b []byte) byteReaderAt { return byteReaderAt(b) }
