// Package elfobj writes and reads the minimal ELF64 executables that the
// LFI runtime loads: little-endian AArch64 ET_EXEC images whose program
// headers carry sandbox-relative virtual addresses. The reader uses the
// standard library's debug/elf so that the loader consumes genuine ELF.
package elfobj

import (
	"bytes"
	"debug/elf"
	"encoding/binary"
	"fmt"

	"lfi/internal/arm64"
)

// Segment is one loadable program segment.
type Segment struct {
	Vaddr uint64 // sandbox-relative virtual address
	Data  []byte
	// MemSize >= len(Data); the loader zero-fills the rest (BSS).
	MemSize uint64
	Flags   elf.ProgFlag
}

// Executable is a loadable program.
type Executable struct {
	Entry    uint64 // sandbox-relative entry point
	Segments []Segment
	Symbols  map[string]uint64
}

// FromImage converts an assembled image into an executable with the
// standard text/rodata/data+bss segments.
func FromImage(img *arm64.Image) *Executable {
	e := &Executable{Entry: img.Entry, Symbols: img.Symbols}
	if len(img.Text) > 0 {
		e.Segments = append(e.Segments, Segment{
			Vaddr: img.TextAddr, Data: img.Text,
			MemSize: uint64(len(img.Text)), Flags: elf.PF_R | elf.PF_X,
		})
	}
	if len(img.ROData) > 0 {
		e.Segments = append(e.Segments, Segment{
			Vaddr: img.RODataAddr, Data: img.ROData,
			MemSize: uint64(len(img.ROData)), Flags: elf.PF_R,
		})
	}
	dataSize := uint64(len(img.Data))
	memSize := dataSize
	if img.BSSSize > 0 {
		memSize = img.BSSAddr + img.BSSSize - img.DataAddr
	}
	if memSize > 0 {
		e.Segments = append(e.Segments, Segment{
			Vaddr: img.DataAddr, Data: img.Data,
			MemSize: memSize, Flags: elf.PF_R | elf.PF_W,
		})
	}
	return e
}

const (
	ehSize = 64
	phSize = 56
)

// Marshal serializes the executable as an ELF64 binary.
func (e *Executable) Marshal() ([]byte, error) {
	var buf bytes.Buffer
	n := len(e.Segments)
	// File layout: ehdr, phdrs, then segment data back to back (8-aligned).
	offs := make([]uint64, n)
	pos := uint64(ehSize + n*phSize)
	for i, s := range e.Segments {
		pos = (pos + 7) &^ 7
		offs[i] = pos
		pos += uint64(len(s.Data))
	}

	// ELF header.
	var ident [16]byte
	copy(ident[:], elf.ELFMAG)
	ident[elf.EI_CLASS] = byte(elf.ELFCLASS64)
	ident[elf.EI_DATA] = byte(elf.ELFDATA2LSB)
	ident[elf.EI_VERSION] = byte(elf.EV_CURRENT)
	buf.Write(ident[:])
	le := binary.LittleEndian
	w16 := func(v uint16) { _ = binary.Write(&buf, le, v) }
	w32 := func(v uint32) { _ = binary.Write(&buf, le, v) }
	w64 := func(v uint64) { _ = binary.Write(&buf, le, v) }
	w16(uint16(elf.ET_EXEC))
	w16(uint16(elf.EM_AARCH64))
	w32(uint32(elf.EV_CURRENT))
	w64(e.Entry)
	w64(ehSize) // phoff
	w64(0)      // shoff
	w32(0)      // flags
	w16(ehSize)
	w16(phSize)
	w16(uint16(n))
	w16(0) // shentsize
	w16(0) // shnum
	w16(0) // shstrndx

	for i, s := range e.Segments {
		if s.MemSize < uint64(len(s.Data)) {
			return nil, fmt.Errorf("elfobj: segment %d memsize < filesize", i)
		}
		w32(uint32(elf.PT_LOAD))
		w32(uint32(s.Flags))
		w64(offs[i])
		w64(s.Vaddr)
		w64(s.Vaddr) // paddr
		w64(uint64(len(s.Data)))
		w64(s.MemSize)
		w64(8) // align
	}
	for i, s := range e.Segments {
		for uint64(buf.Len()) < offs[i] {
			buf.WriteByte(0)
		}
		buf.Write(s.Data)
	}
	return buf.Bytes(), nil
}

// Unmarshal parses an ELF binary produced by Marshal (or any simple
// static AArch64 ELF executable).
func Unmarshal(b []byte) (*Executable, error) {
	f, err := elf.NewFile(bytes.NewReader(b))
	if err != nil {
		return nil, fmt.Errorf("elfobj: %w", err)
	}
	defer f.Close()
	if f.Machine != elf.EM_AARCH64 {
		return nil, fmt.Errorf("elfobj: not an AArch64 binary (machine %v)", f.Machine)
	}
	if f.Type != elf.ET_EXEC {
		return nil, fmt.Errorf("elfobj: not an executable (type %v)", f.Type)
	}
	e := &Executable{Entry: f.Entry}
	for _, p := range f.Progs {
		if p.Type != elf.PT_LOAD {
			continue
		}
		var data []byte
		if p.Filesz > 0 {
			data = make([]byte, p.Filesz)
			if _, err := p.ReadAt(data, 0); err != nil {
				return nil, fmt.Errorf("elfobj: reading segment: %w", err)
			}
		}
		e.Segments = append(e.Segments, Segment{
			Vaddr:   p.Vaddr,
			Data:    data,
			MemSize: p.Memsz,
			Flags:   p.Flags,
		})
	}
	if len(e.Segments) == 0 {
		return nil, fmt.Errorf("elfobj: no loadable segments")
	}
	return e, nil
}

// TextSegment returns the executable segment (there must be exactly one).
func (e *Executable) TextSegment() (*Segment, error) {
	var text *Segment
	for i := range e.Segments {
		if e.Segments[i].Flags&elf.PF_X != 0 {
			if text != nil {
				return nil, fmt.Errorf("elfobj: multiple executable segments")
			}
			text = &e.Segments[i]
		}
	}
	if text == nil {
		return nil, fmt.Errorf("elfobj: no executable segment")
	}
	return text, nil
}
