package bench

import (
	"encoding/json"
	"os"
	"time"

	"lfi/internal/core"
	"lfi/internal/emu"
	"lfi/internal/lfirt"
	"lfi/internal/progs"
	"lfi/internal/workloads"
)

// EmuRow is one workload's raw simulator throughput — how fast the host
// executes emulated instructions, which bounds every downstream result.
type EmuRow struct {
	Workload     string  `json:"workload"`
	Instrs       uint64  `json:"instrs"`
	Cycles       float64 `json:"cycles"`
	WallNS       int64   `json:"wall_ns"`
	InstrsPerSec float64 `json:"instrs_per_sec"`
	CyclesPerSec float64 `json:"cycles_per_sec"`
	NSPerInstr   float64 `json:"ns_per_instr"`
}

// EmuReport is the BENCH_emu.json document.
type EmuReport struct {
	Machine   string   `json:"machine"`
	Scale     float64  `json:"scale"`
	Fastpath  bool     `json:"fastpath"`
	Chaining  bool     `json:"chaining"`
	Tracing   bool     `json:"tracing"`
	Fusion    bool     `json:"fusion"`
	Workloads []EmuRow `json:"workloads"`
	Total     EmuRow   `json:"total"`
	// Emu aggregates the emulator's cache/dispatch counters across all
	// workloads (block-cache and translation-cache hit rates, chain and
	// superblock activity, fastpath vs slowpath dispatches).
	Emu emu.Stats `json:"emu"`
}

func emuRow(name string, instrs uint64, cycles float64, wall time.Duration) EmuRow {
	sec := wall.Seconds()
	r := EmuRow{
		Workload: name,
		Instrs:   instrs,
		Cycles:   cycles,
		WallNS:   wall.Nanoseconds(),
	}
	if sec > 0 {
		r.InstrsPerSec = float64(instrs) / sec
		r.CyclesPerSec = cycles / sec
	}
	if instrs > 0 {
		r.NSPerInstr = float64(wall.Nanoseconds()) / float64(instrs)
	}
	return r
}

// EmuOptions selects which dispatch layers an EmuThroughput run enables.
// The zero value means "everything off"; Default() is the production
// configuration.
type EmuOptions struct {
	Fastpath bool // predecoded-block loop vs per-step interpreter
	Chaining bool // direct block chaining
	Tracing  bool // hot-trace superblocks
	Fusion   bool // guard-idiom fusion
}

// DefaultEmuOptions is the production configuration: all layers on.
func DefaultEmuOptions() EmuOptions {
	return EmuOptions{Fastpath: true, Chaining: true, Tracing: true, Fusion: true}
}

// emuReps is how many times each workload runs per measurement; the
// fastest repetition is reported.
const emuReps = 5

// EmuThroughput runs every workload once under a timed runtime and
// measures the simulator's own execution rate. fastpath selects the
// predecoded-block loop (with all second-generation layers enabled) or
// the per-step reference interpreter.
func EmuThroughput(machine string, model *emu.CoreModel, scale float64, fastpath bool) (*EmuReport, error) {
	opts := DefaultEmuOptions()
	opts.Fastpath = fastpath
	return EmuThroughputOpts(machine, model, scale, opts)
}

// EmuThroughputOpts is EmuThroughput with per-layer control, for ablation
// runs (chaining alone, +superblocks, +fusion).
func EmuThroughputOpts(machine string, model *emu.CoreModel, scale float64, opts EmuOptions) (*EmuReport, error) {
	rep := &EmuReport{
		Machine:  machine,
		Scale:    scale,
		Fastpath: opts.Fastpath,
		Chaining: opts.Chaining,
		Tracing:  opts.Tracing,
		Fusion:   opts.Fusion,
	}
	var totInstrs uint64
	var totCycles float64
	var totWall time.Duration
	for _, w := range workloads.All() {
		res, err := progs.Build(w.Source(scale), core.Options{Opt: core.O2})
		if err != nil {
			return nil, err
		}
		// Each workload runs emuReps times in a fresh runtime and the
		// fastest run is reported. Workloads are deterministic — instrs
		// and cycles are identical across repetitions — so only wall time
		// varies, and the minimum is the measurement least polluted by
		// host noise (GC, scheduling, cold caches on shared CI machines).
		var instrs uint64
		var cycles float64
		var wall time.Duration
		for r := 0; r < emuReps; r++ {
			cfg := lfirt.DefaultConfig()
			cfg.Model = model
			rt := lfirt.New(cfg)
			eo := emu.DefaultOptions()
			eo.Fastpath = opts.Fastpath
			eo.Chaining = opts.Chaining
			eo.Tracing = opts.Tracing
			eo.Fusion = opts.Fusion
			rt.CPU.Apply(eo)
			p, err := rt.Load(res.ELF)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			if _, err := rt.RunProc(p); err != nil {
				return nil, err
			}
			w := time.Since(start)
			if r == 0 {
				instrs, cycles, wall = rt.CPU.Instrs, rt.CPU.Timing.Cycles(), w
				rep.Emu.Add(rt.CPU.Stat)
			} else if w < wall {
				wall = w
			}
		}
		rep.Workloads = append(rep.Workloads, emuRow(w.Name, instrs, cycles, wall))
		totInstrs += instrs
		totCycles += cycles
		totWall += wall
	}
	rep.Total = emuRow("total", totInstrs, totCycles, totWall)
	return rep, nil
}

// WriteJSON writes the report to path.
func (r *EmuReport) WriteJSON(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
