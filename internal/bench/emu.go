package bench

import (
	"encoding/json"
	"os"
	"time"

	"lfi/internal/core"
	"lfi/internal/emu"
	"lfi/internal/lfirt"
	"lfi/internal/progs"
	"lfi/internal/workloads"
)

// EmuRow is one workload's raw simulator throughput — how fast the host
// executes emulated instructions, which bounds every downstream result.
type EmuRow struct {
	Workload     string  `json:"workload"`
	Instrs       uint64  `json:"instrs"`
	Cycles       float64 `json:"cycles"`
	WallNS       int64   `json:"wall_ns"`
	InstrsPerSec float64 `json:"instrs_per_sec"`
	CyclesPerSec float64 `json:"cycles_per_sec"`
	NSPerInstr   float64 `json:"ns_per_instr"`
}

// EmuReport is the BENCH_emu.json document.
type EmuReport struct {
	Machine   string   `json:"machine"`
	Scale     float64  `json:"scale"`
	Fastpath  bool     `json:"fastpath"`
	Workloads []EmuRow `json:"workloads"`
	Total     EmuRow   `json:"total"`
	// Emu aggregates the emulator's cache/dispatch counters across all
	// workloads (block-cache and translation-cache hit rates, fastpath
	// vs slowpath dispatches).
	Emu emu.Stats `json:"emu"`
}

func emuRow(name string, instrs uint64, cycles float64, wall time.Duration) EmuRow {
	sec := wall.Seconds()
	r := EmuRow{
		Workload: name,
		Instrs:   instrs,
		Cycles:   cycles,
		WallNS:   wall.Nanoseconds(),
	}
	if sec > 0 {
		r.InstrsPerSec = float64(instrs) / sec
		r.CyclesPerSec = cycles / sec
	}
	if instrs > 0 {
		r.NSPerInstr = float64(wall.Nanoseconds()) / float64(instrs)
	}
	return r
}

// EmuThroughput runs every workload once under a timed runtime and
// measures the simulator's own execution rate. fastpath selects the
// predecoded-block loop or the per-step reference interpreter.
func EmuThroughput(machine string, model *emu.CoreModel, scale float64, fastpath bool) (*EmuReport, error) {
	rep := &EmuReport{Machine: machine, Scale: scale, Fastpath: fastpath}
	var totInstrs uint64
	var totCycles float64
	var totWall time.Duration
	for _, w := range workloads.All() {
		res, err := progs.Build(w.Source(scale), core.Options{Opt: core.O2})
		if err != nil {
			return nil, err
		}
		cfg := lfirt.DefaultConfig()
		cfg.Model = model
		rt := lfirt.New(cfg)
		rt.CPU.SetFastpath(fastpath)
		p, err := rt.Load(res.ELF)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if _, err := rt.RunProc(p); err != nil {
			return nil, err
		}
		wall := time.Since(start)
		instrs, cycles := rt.CPU.Instrs, rt.CPU.Timing.Cycles()
		rep.Workloads = append(rep.Workloads, emuRow(w.Name, instrs, cycles, wall))
		rep.Emu.Add(rt.CPU.Stat)
		totInstrs += instrs
		totCycles += cycles
		totWall += wall
	}
	rep.Total = emuRow("total", totInstrs, totCycles, totWall)
	return rep, nil
}

// WriteJSON writes the report to path.
func (r *EmuReport) WriteJSON(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
