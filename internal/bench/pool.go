package bench

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"lfi/internal/core"
	"lfi/internal/obs"
	"lfi/internal/pool"
	"lfi/internal/progs"
)

// PoolResult compares serving a stream of sandbox executions with a full
// ELF load per request (cold) against snapshot-restore per request (warm).
type PoolResult struct {
	Workers int
	Jobs    int
	// Per-job wall time and aggregate throughput for each mode.
	ColdNSPerJob   float64
	WarmNSPerJob   float64
	ColdJobsPerSec float64
	WarmJobsPerSec float64
	// Speedup is cold/warm per-job time (≥1 means restore wins).
	Speedup float64
	// WarmHitRate is the fraction of warm-mode jobs served from a
	// pre-restored sandbox.
	WarmHitRate float64
	// Metrics is the warm run's registry snapshot (latency histograms,
	// warm-pool and runtime counters) for -metrics reporting.
	Metrics *obs.Snapshot
}

// servingSrc is a request-handler stand-in: a short compute loop followed
// by a response write. filler pads .text with never-executed instructions
// so the cold path pays a realistic per-request parse+verify cost — real
// handlers are far larger than a ten-instruction demo.
func servingSrc(filler int) string {
	var pad strings.Builder
	for i := 0; i < filler; i++ {
		fmt.Fprintf(&pad, "\tadd x9, x9, #%d\n\teor x10, x10, x9\n\tstr x10, [x25]\n", i%1024)
	}
	return fmt.Sprintf(`
_start:
	mov x9, #0
	mov x10, #64
loop:
	add x9, x9, #1
	cmp x9, x10
	b.lt loop
	mov x0, #1
	adrp x1, msg
	add x1, x1, :lo12:msg
	mov x2, #6
%s%s
	b done
%s
done:
.rodata
msg:
	.ascii "serve\n"
`, progs.RTCall(core.RTWrite), progs.ExitCode(0), pad.String())
}

// PoolThroughput runs the same job stream through a serving pool twice —
// cold loads, then snapshot restores — and reports per-job latency,
// aggregate throughput, and the restore speedup.
func PoolThroughput(workers, jobs int) (PoolResult, error) {
	src := servingSrc(1500)

	var warmSnap *obs.Snapshot
	run := func(cold bool) (perJob float64, hitRate float64, err error) {
		p := pool.New(pool.Config{Workers: workers, QueueDepth: 4 * workers})
		defer p.Close()
		img, err := p.BuildImage(src, core.Options{Opt: core.O2})
		if err != nil {
			return 0, 0, err
		}
		// Prime every worker's caches (and, warm mode, its parked clones).
		for i := 0; i < workers; i++ {
			if _, err := p.Do(pool.Job{Image: img, Cold: cold}); err != nil {
				return 0, 0, err
			}
		}

		var (
			wg       sync.WaitGroup
			mu       sync.Mutex
			firstErr error
		)
		per := jobs / workers
		start := time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < per; i++ {
					for {
						res, err := p.Do(pool.Job{Image: img, Cold: cold})
						if err == pool.ErrQueueFull {
							continue // admission control: back off and retry
						}
						if err == nil && res.Err != nil {
							err = res.Err
						}
						if err != nil {
							mu.Lock()
							if firstErr == nil {
								firstErr = err
							}
							mu.Unlock()
							return
						}
						break
					}
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)
		if firstErr != nil {
			return 0, 0, firstErr
		}
		st := p.Stats()
		done := per * workers
		if st.Completed > 0 {
			hitRate = float64(st.WarmHits) / float64(st.Completed)
		}
		if !cold {
			warmSnap = p.Metrics()
		}
		return float64(elapsed.Nanoseconds()) / float64(done), hitRate, nil
	}

	coldNS, _, err := run(true)
	if err != nil {
		return PoolResult{}, err
	}
	warmNS, hitRate, err := run(false)
	if err != nil {
		return PoolResult{}, err
	}
	return PoolResult{
		Workers:        workers,
		Jobs:           jobs / workers * workers,
		ColdNSPerJob:   coldNS,
		WarmNSPerJob:   warmNS,
		ColdJobsPerSec: 1e9 / coldNS,
		WarmJobsPerSec: 1e9 / warmNS,
		Speedup:        coldNS / warmNS,
		WarmHitRate:    hitRate,
		Metrics:        warmSnap,
	}, nil
}
