package bench

import (
	"testing"

	"lfi/internal/emu"
	"lfi/internal/hwmodel"
)

const testScale = 0.05

func TestFig3Shape(t *testing.T) {
	r := &Runner{Model: emu.ModelM1(), Scale: testScale}
	rows, err := r.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 14 {
		t.Fatalf("rows = %d, want 14", len(rows))
	}
	o0 := Geomean(rows, "LFI O0")
	o1 := Geomean(rows, "LFI O1")
	o2 := Geomean(rows, "LFI O2")
	nl := Geomean(rows, "LFI O2, no loads")
	t.Logf("geomeans: O0=%.1f%% O1=%.1f%% O2=%.1f%% no-loads=%.1f%%", o0, o1, o2, nl)
	// The paper's shape: O0 >> O1 >= O2 > no-loads; O2 in the mid-single
	// digits; no-loads around 1%.
	if !(o0 > o1 && o1 >= o2 && o2 > nl) {
		t.Errorf("optimization ordering violated: O0=%.1f O1=%.1f O2=%.1f nl=%.1f", o0, o1, o2, nl)
	}
	if o2 < 2 || o2 > 15 {
		t.Errorf("O2 geomean %.1f%% outside the plausible 2-15%% band", o2)
	}
	if nl > 5 {
		t.Errorf("no-loads geomean %.1f%% too high", nl)
	}
	if o0 < 2*o2 {
		t.Errorf("O0 (%.1f%%) should far exceed O2 (%.1f%%)", o0, o2)
	}
}

func TestFig4Shape(t *testing.T) {
	r := &Runner{Model: emu.ModelM1(), Scale: testScale}
	rows, err := r.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(rows))
	}
	g := map[string]float64{}
	for _, sys := range Fig4Systems() {
		g[sys] = Geomean(rows, sys)
		t.Logf("%-26s %.1f%%", sys, g[sys])
	}
	// Table 4's ordering: LFI beats every Wasm configuration; Wasmtime is
	// the slowest; the pinned-register Wasm2c is the best Wasm entry.
	if g["LFI"] >= g["Wasm2c (pinned register)"] {
		t.Errorf("LFI (%.1f%%) not below pinned Wasm2c (%.1f%%)",
			g["LFI"], g["Wasm2c (pinned register)"])
	}
	if g["Wasmtime"] <= g["Wasm2c (no barrier)"] {
		t.Errorf("Wasmtime (%.1f%%) not above no-barrier Wasm2c (%.1f%%)",
			g["Wasmtime"], g["Wasm2c (no barrier)"])
	}
	if g["Wasm2c"] <= g["Wasm2c (no barrier)"] {
		t.Errorf("barrier (%.1f%%) not above no-barrier (%.1f%%)",
			g["Wasm2c"], g["Wasm2c (no barrier)"])
	}
	// LFI should have less than half the overhead of the best mainline
	// Wasm engine (paper: "less than half the overhead of Wasm").
	if g["LFI"]*2 > g["WAMR"] {
		t.Errorf("LFI (%.1f%%) not under half of WAMR (%.1f%%)", g["LFI"], g["WAMR"])
	}
}

func TestFig5Shape(t *testing.T) {
	r := &Runner{Model: emu.ModelM1(), Scale: testScale}
	rows, err := r.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	kvm := Geomean(rows, "QEMU KVM")
	lfi := Geomean(rows, "LFI")
	t.Logf("KVM=%.1f%% LFI=%.1f%%", kvm, lfi)
	if kvm <= 0 {
		t.Errorf("KVM overhead %.1f%% should be positive", kvm)
	}
	// mcf (TLB-heavy) must show the largest KVM overhead of all rows.
	var mcfKVM, maxOther float64
	for _, row := range rows {
		if row.Workload == "505.mcf" {
			mcfKVM = row.Overheads["QEMU KVM"]
		} else if v := row.Overheads["QEMU KVM"]; v > maxOther {
			maxOther = v
		}
	}
	if mcfKVM < maxOther {
		t.Errorf("mcf KVM overhead %.1f%% not the largest (max other %.1f%%)", mcfKVM, maxOther)
	}
}

func TestCodeSizeShape(t *testing.T) {
	rows, err := CodeSize(testScale)
	if err != nil {
		t.Fatal(err)
	}
	text, file, wasm := GeomeanCodeSize(rows)
	t.Logf("text=%.1f%% file=%.1f%% wasm=%.1f%%", text, file, wasm)
	// §6.3: text +12.9%, binary +8.3%, WAMR +22% — check bands.
	if text < 3 || text > 30 {
		t.Errorf("text growth %.1f%% outside band", text)
	}
	if file > text {
		t.Errorf("file growth %.1f%% should be below text growth %.1f%%", file, text)
	}
	if wasm <= file {
		t.Errorf("wasm artifact growth %.1f%% should exceed LFI growth %.1f%%", wasm, file)
	}
}

func TestTable5Shape(t *testing.T) {
	rows, err := Table5(emu.ModelM1(), hwmodel.M1(), 400)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]MicroRow{}
	for _, r := range rows {
		byName[r.Benchmark] = r
		t.Logf("%-8s LFI=%.0fns Linux=%.0fns gVisor=%.0fns", r.Benchmark, r.LFInS, r.LinuxNS, r.GVisorNS)
	}
	sys := byName["syscall"]
	if sys.LFInS <= 0 || sys.LFInS >= sys.LinuxNS/3 {
		t.Errorf("LFI syscall %.0fns not well below Linux %.0fns", sys.LFInS, sys.LinuxNS)
	}
	pipe := byName["pipe"]
	if pipe.LFInS >= pipe.LinuxNS/5 {
		t.Errorf("LFI pipe %.0fns not far below Linux %.0fns", pipe.LFInS, pipe.LinuxNS)
	}
	y := byName["yield"]
	if y.LFInS <= 0 || y.LFInS > sys.LFInS*2 {
		t.Errorf("yield %.0fns should be in the syscall regime (%.0fns)", y.LFInS, sys.LFInS)
	}
	ipc := byName["ipc"]
	if ipc.LFInS <= y.LFInS {
		t.Errorf("ipc %.0fns should cost more than a bare yield %.0fns", ipc.LFInS, y.LFInS)
	}
	if ipc.LFInS >= ipc.LinuxNS/3 {
		t.Errorf("LFI ipc %.0fns not well below a Linux pipe round trip %.0fns", ipc.LFInS, ipc.LinuxNS)
	}
}

func TestThroughputShape(t *testing.T) {
	lfiMBps, wasmMBps, err := Throughput()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("verifier %.1f MB/s, wasm validator %.1f MB/s", lfiMBps, wasmMBps)
	if lfiMBps <= 0 || wasmMBps <= 0 {
		t.Fatal("throughput not measured")
	}
}

func TestGeomeanMath(t *testing.T) {
	rows := []OverheadRow{
		{Workload: "a", Overheads: map[string]float64{"s": 10}},
		{Workload: "b", Overheads: map[string]float64{"s": 21}},
	}
	g := Geomean(rows, "s")
	// sqrt(1.10*1.21) - 1 = 15.36%
	if g < 15.3 || g > 15.5 {
		t.Errorf("geomean = %.2f, want ~15.4", g)
	}
	if Geomean(rows, "missing") != 0 {
		t.Error("missing system should give 0")
	}
}

func TestCoreMarkShape(t *testing.T) {
	r := &Runner{Model: emu.ModelM1(), Scale: 0.3}
	rows, err := r.CoreMark()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	o0 := rows[0].Overheads["LFI O0"]
	o2 := rows[0].Overheads["LFI O2"]
	t.Logf("coremark O0=%.1f%% O2=%.1f%%", o0, o2)
	if !(o0 > o2 && o2 >= 0) {
		t.Errorf("coremark ordering broken: O0=%.1f O2=%.1f", o0, o2)
	}
}
