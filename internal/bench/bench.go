// Package bench is the harness that regenerates every table and figure in
// the paper's evaluation (§6): it builds each workload for each system,
// runs it on the timed simulator, verifies that all systems compute the
// same results, and reports percent overheads over native code running in
// the LFI environment — exactly the paper's methodology (§6.1).
package bench

import (
	"fmt"
	"math"
	"sort"
	"time"

	"lfi/internal/arm64"
	"lfi/internal/core"
	"lfi/internal/elfobj"
	"lfi/internal/emu"
	"lfi/internal/hwmodel"
	"lfi/internal/lfirt"
	"lfi/internal/progs"
	"lfi/internal/verifier"
	"lfi/internal/wasmbase"
	"lfi/internal/workloads"
)

// Runner executes built programs on a timed runtime instance.
type Runner struct {
	Model *emu.CoreModel
	// Scale multiplies workload iteration counts (1.0 = full size).
	Scale float64
	// NestedPaging doubles TLB walk costs (the KVM configuration).
	NestedPaging bool
}

// RunOutcome is one timed execution.
type RunOutcome struct {
	Cycles   float64
	Instrs   uint64
	Checksum string
}

// runELF loads and runs one binary to completion under a fresh runtime.
func (r *Runner) runELF(elf []byte, verify, noLoads bool) (*RunOutcome, error) {
	model := *r.Model
	model.NestedPaging = r.NestedPaging
	cfg := lfirt.DefaultConfig()
	cfg.Model = &model
	cfg.Verify = verify
	cfg.VerifierCfg.NoLoads = noLoads
	rt := lfirt.New(cfg)
	p, err := rt.Load(elf)
	if err != nil {
		return nil, err
	}
	status, err := rt.RunProc(p)
	if err != nil {
		return nil, err
	}
	if status != 0 {
		return nil, fmt.Errorf("bench: exit status %d", status)
	}
	return &RunOutcome{
		Cycles:   rt.Tim.Cycles(),
		Instrs:   rt.CPU.Instrs,
		Checksum: string(rt.Stdout()),
	}, nil
}

// runNative builds and runs the unguarded baseline.
func (r *Runner) runNative(src string) (*RunOutcome, error) {
	res, err := progs.BuildNative(src)
	if err != nil {
		return nil, err
	}
	return r.runELF(res.ELF, false, false)
}

// runLFI builds, verifies, and runs an LFI configuration.
func (r *Runner) runLFI(src string, opts core.Options) (*RunOutcome, error) {
	res, err := progs.Build(src, opts)
	if err != nil {
		return nil, err
	}
	return r.runELF(res.ELF, true, opts.NoLoads)
}

// runWasm transforms, runs, and applies the codegen factor of a Wasm
// engine model.
func (r *Runner) runWasm(src string, sys *wasmbase.System) (*RunOutcome, error) {
	f, err := arm64.ParseFile(src)
	if err != nil {
		return nil, err
	}
	nf, err := sys.Transform(f)
	if err != nil {
		return nil, err
	}
	res, err := progs.BuildNative(nf.String())
	if err != nil {
		return nil, err
	}
	out, err := r.runELF(res.ELF, false, false)
	if err != nil {
		return nil, err
	}
	out.Cycles *= sys.CodegenFactor
	return out, nil
}

// OverheadRow is one benchmark's percent-over-native numbers, keyed by
// system name.
type OverheadRow struct {
	Workload  string
	Overheads map[string]float64
}

func pct(sys, native float64) float64 { return (sys/native - 1) * 100 }

// Geomean computes the geometric mean of the named column across rows.
func Geomean(rows []OverheadRow, system string) float64 {
	prod := 1.0
	n := 0
	for _, row := range rows {
		if v, ok := row.Overheads[system]; ok {
			prod *= 1 + v/100
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return (math.Pow(prod, 1/float64(n)) - 1) * 100
}

// Fig3Systems are the configurations of Figure 3, in legend order.
var Fig3Systems = []string{"LFI O0", "LFI O1", "LFI O2", "LFI O2, no loads"}

// Fig3 measures the optimization-level overheads of Figure 3 on the
// runner's machine model, for every workload.
func (r *Runner) Fig3() ([]OverheadRow, error) {
	var rows []OverheadRow
	for _, w := range workloads.All() {
		src := w.Source(r.Scale)
		native, err := r.runNative(src)
		if err != nil {
			return nil, fmt.Errorf("%s native: %w", w.Name, err)
		}
		row := OverheadRow{Workload: w.Name, Overheads: map[string]float64{}}
		for _, cfg := range []struct {
			name string
			opts core.Options
		}{
			{"LFI O0", core.Options{Opt: core.O0}},
			{"LFI O1", core.Options{Opt: core.O1}},
			{"LFI O2", core.Options{Opt: core.O2}},
			{"LFI O2, no loads", core.Options{Opt: core.O2, NoLoads: true}},
		} {
			out, err := r.runLFI(src, cfg.opts)
			if err != nil {
				return nil, fmt.Errorf("%s %s: %w", w.Name, cfg.name, err)
			}
			if out.Checksum != native.Checksum {
				return nil, fmt.Errorf("%s %s: checksum mismatch", w.Name, cfg.name)
			}
			row.Overheads[cfg.name] = pct(out.Cycles, native.Cycles)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig4Systems are the configurations of Figure 4, in legend order.
func Fig4Systems() []string {
	var names []string
	for _, s := range wasmbase.Systems() {
		names = append(names, s.Name)
	}
	return append(names, "LFI")
}

// Fig4 measures the WebAssembly comparison of Figure 4 (and Table 4) on
// the 7 Wasm-compatible workloads.
func (r *Runner) Fig4() ([]OverheadRow, error) {
	var rows []OverheadRow
	for _, w := range workloads.WasmSubset() {
		src := w.Source(r.Scale)
		native, err := r.runNative(src)
		if err != nil {
			return nil, fmt.Errorf("%s native: %w", w.Name, err)
		}
		row := OverheadRow{Workload: w.Name, Overheads: map[string]float64{}}
		for _, sys := range wasmbase.Systems() {
			out, err := r.runWasm(src, sys)
			if err != nil {
				return nil, fmt.Errorf("%s %s: %w", w.Name, sys.Name, err)
			}
			if out.Checksum != native.Checksum {
				return nil, fmt.Errorf("%s %s: checksum mismatch", w.Name, sys.Name)
			}
			row.Overheads[sys.Name] = pct(out.Cycles, native.Cycles)
		}
		lfi, err := r.runLFI(src, core.Options{Opt: core.O2})
		if err != nil {
			return nil, err
		}
		if lfi.Checksum != native.Checksum {
			return nil, fmt.Errorf("%s LFI: checksum mismatch", w.Name)
		}
		row.Overheads["LFI"] = pct(lfi.Cycles, native.Cycles)
		rows = append(rows, row)
	}
	return rows, nil
}

// CoreMark measures the artifact's SPEC-free fallback kernel (Appendix
// A.6.3) under the Figure 3 configurations.
func (r *Runner) CoreMark() ([]OverheadRow, error) {
	src := workloads.CoreMark(r.Scale)
	native, err := r.runNative(src)
	if err != nil {
		return nil, err
	}
	row := OverheadRow{Workload: "coremark", Overheads: map[string]float64{}}
	for _, cfg := range []struct {
		name string
		opts core.Options
	}{
		{"LFI O0", core.Options{Opt: core.O0}},
		{"LFI O1", core.Options{Opt: core.O1}},
		{"LFI O2", core.Options{Opt: core.O2}},
		{"LFI O2, no loads", core.Options{Opt: core.O2, NoLoads: true}},
	} {
		out, err := r.runLFI(src, cfg.opts)
		if err != nil {
			return nil, fmt.Errorf("coremark %s: %w", cfg.name, err)
		}
		if out.Checksum != native.Checksum {
			return nil, fmt.Errorf("coremark %s: checksum mismatch", cfg.name)
		}
		row.Overheads[cfg.name] = pct(out.Cycles, native.Cycles)
	}
	return []OverheadRow{row}, nil
}

// Fig5 compares LFI O2 against KVM-style nested paging (§6.4, Figure 5):
// the virtualized configuration runs native code with doubled TLB walks.
func (r *Runner) Fig5() ([]OverheadRow, error) {
	var rows []OverheadRow
	for _, w := range workloads.All() {
		src := w.Source(r.Scale)
		native, err := r.runNative(src)
		if err != nil {
			return nil, err
		}
		kvmRunner := &Runner{Model: r.Model, Scale: r.Scale, NestedPaging: true}
		kvm, err := kvmRunner.runNative(src)
		if err != nil {
			return nil, err
		}
		lfi, err := r.runLFI(src, core.Options{Opt: core.O2})
		if err != nil {
			return nil, err
		}
		rows = append(rows, OverheadRow{
			Workload: w.Name,
			Overheads: map[string]float64{
				"QEMU KVM": pct(kvm.Cycles, native.Cycles),
				"LFI":      pct(lfi.Cycles, native.Cycles),
			},
		})
	}
	return rows, nil
}

// CodeSizeRow reports §6.3's code size overheads for one workload.
type CodeSizeRow struct {
	Workload    string
	TextPct     float64 // text segment growth, LFI O2 over native
	FilePct     float64 // whole-binary growth
	WasmFilePct float64 // WAMR-style AOT artifact growth (modeled)
}

// CodeSize measures the §6.3 code-size overheads.
func CodeSize(scale float64) ([]CodeSizeRow, error) {
	var rows []CodeSizeRow
	for _, w := range workloads.All() {
		src := w.Source(scale)
		nat, err := progs.BuildNative(src)
		if err != nil {
			return nil, err
		}
		lfi, err := progs.Build(src, core.Options{Opt: core.O2})
		if err != nil {
			return nil, err
		}
		// WAMR AOT artifacts carry Wasm-level metadata plus expanded
		// machine code; model as the per-access instrumentation growth.
		sys, _ := wasmbase.Get("WAMR")
		f, err := arm64.ParseFile(src)
		if err != nil {
			return nil, err
		}
		nf, err := sys.Transform(f)
		if err != nil {
			return nil, err
		}
		wamr, err := progs.BuildNative(nf.String())
		if err != nil {
			return nil, err
		}
		rows = append(rows, CodeSizeRow{
			Workload:    w.Name,
			TextPct:     pct(float64(lfi.TextSize), float64(nat.TextSize)),
			FilePct:     pct(float64(lfi.FileSize), float64(nat.FileSize)),
			WasmFilePct: pct(float64(wamr.FileSize)*1.08, float64(nat.FileSize)),
		})
	}
	return rows, nil
}

// GeomeanCodeSize averages the code-size columns.
func GeomeanCodeSize(rows []CodeSizeRow) (text, file, wasm float64) {
	pt, pf, pw := 1.0, 1.0, 1.0
	for _, r := range rows {
		pt *= 1 + r.TextPct/100
		pf *= 1 + r.FilePct/100
		pw *= 1 + r.WasmFilePct/100
	}
	n := float64(len(rows))
	return (math.Pow(pt, 1/n) - 1) * 100,
		(math.Pow(pf, 1/n) - 1) * 100,
		(math.Pow(pw, 1/n) - 1) * 100
}

// MicroRow is one Table 5 line.
type MicroRow struct {
	Benchmark string
	LFInS     float64
	LinuxNS   float64
	GVisorNS  float64 // 0 when unsupported
}

// Table5 measures the LFI microbenchmarks in simulation and fills the
// hardware columns from the calibrated cost models.
func Table5(model *emu.CoreModel, hw *hwmodel.Machine, n int) ([]MicroRow, error) {
	if n <= 0 {
		n = 2000
	}
	perOp := func(src string, ops float64) (float64, error) {
		res, err := progs.Build(src, core.Options{Opt: core.O2})
		if err != nil {
			return 0, err
		}
		m := *model
		cfg := lfirt.DefaultConfig()
		cfg.Model = &m
		rt := lfirt.New(cfg)
		if _, err := rt.Load(res.ELF); err != nil {
			return 0, err
		}
		if err := rt.Run(); err != nil {
			return 0, err
		}
		return rt.Tim.Cycles() / ops / model.FreqGHz, nil
	}

	// pairPerOp runs two sandboxes (passive loaded first) to completion
	// in one runtime and reports cycles per op in ns. Both sides must
	// exit 0 — a short batch or failed handshake invalidates the number.
	pairPerOp := func(name, src1, src2 string, ops float64) (float64, error) {
		b1, err := progs.Build(src1, core.Options{Opt: core.O2})
		if err != nil {
			return 0, fmt.Errorf("%s bench: %w", name, err)
		}
		b2, err := progs.Build(src2, core.Options{Opt: core.O2})
		if err != nil {
			return 0, fmt.Errorf("%s bench: %w", name, err)
		}
		m := *model
		cfg := lfirt.DefaultConfig()
		cfg.Model = &m
		rt := lfirt.New(cfg)
		p1, err := rt.Load(b1.ELF)
		if err != nil {
			return 0, err
		}
		p2, err := rt.Load(b2.ELF)
		if err != nil {
			return 0, err
		}
		if err := rt.Run(); err != nil {
			return 0, fmt.Errorf("%s bench: %w", name, err)
		}
		if s1, s2 := p1.ExitStatus(), p2.ExitStatus(); s1 != 0 || s2 != 0 {
			return 0, fmt.Errorf("%s bench: exits %d/%d, want 0/0", name, s1, s2)
		}
		return rt.Tim.Cycles() / ops / model.FreqGHz, nil
	}

	syscall, err := perOp(workloads.SyscallLoop(n), float64(n))
	if err != nil {
		return nil, fmt.Errorf("syscall bench: %w", err)
	}

	// Pipe: one parent round trip = one write+read pair on each side.
	pipeSrc := workloads.PipePing(n)
	pipeRes, err := progs.Build(pipeSrc, core.Options{Opt: core.O2})
	if err != nil {
		return nil, err
	}
	m := *model
	cfg := lfirt.DefaultConfig()
	cfg.Model = &m
	rt := lfirt.New(cfg)
	if _, err := rt.Load(pipeRes.ELF); err != nil {
		return nil, err
	}
	if err := rt.Run(); err != nil {
		return nil, fmt.Errorf("pipe bench: %w", err)
	}
	pipe := rt.Tim.Cycles() / float64(2*n) / model.FreqGHz

	// Yield: two sandboxes ping-ponging directly.
	yield, err := pairPerOp("yield", workloads.YieldPing(n, 2), workloads.YieldPing(n, 1), float64(2*n))
	if err != nil {
		return nil, err
	}

	// IPC: a ring-channel ping-pong between two sandboxes. Each of the
	// 2n hops is a send handed directly to the blocked receiver, so the
	// delta over the yield row is the channel bookkeeping per message.
	ipc, err := pairPerOp("ipc", workloads.RingPingPassive(n), workloads.RingPingActive(n), float64(2*n))
	if err != nil {
		return nil, err
	}

	// Direct handoff: the same ping-pong through RTVSubmit at batch 1 —
	// one trap per message instead of one per send plus one per recv,
	// with the send→recv handoff and blocked-side hand-back replacing
	// every scheduler pass.
	handoff, err := pairPerOp("direct handoff",
		workloads.VSubmitPing(n, 1, false), workloads.VSubmitPing(n, 1, true), float64(2*n))
	if err != nil {
		return nil, err
	}

	// Vectored IPC: batch 8 — 16 messages per trap, amortizing the
	// transition cost across the batch. The denominator counts messages
	// (a send plus its matching recv), like the scalar ipc row.
	const vbatch = 8
	vectored, err := pairPerOp("vectored ipc",
		workloads.VSubmitPing(n, vbatch, false), workloads.VSubmitPing(n, vbatch, true),
		float64(2*vbatch*n))
	if err != nil {
		return nil, err
	}

	rows := []MicroRow{
		{Benchmark: "syscall", LFInS: syscall, LinuxNS: hw.LinuxSyscallNS()},
		{Benchmark: "pipe", LFInS: pipe, LinuxNS: hw.LinuxPipeNS()},
		{Benchmark: "yield", LFInS: yield},
		{Benchmark: "ipc", LFInS: ipc, LinuxNS: hw.LinuxPipeNS()},
		{Benchmark: "direct handoff", LFInS: handoff},
		{Benchmark: "vectored ipc", LFInS: vectored},
	}
	if g, ok := hw.GVisorSyscallNS(); ok {
		rows[0].GVisorNS = g
		rows[1].GVisorNS, _ = hw.GVisorPipeNS()
	}
	return rows, nil
}

// Throughput measures the LFI verifier and the Wasm validator on
// comparably sized inputs, in MB/s of real wall-clock time.
func Throughput() (lfiMBps, wasmMBps float64, err error) {
	// A large verified LFI text segment: repeat a workload body.
	w, _ := workloads.Get("502.gcc")
	res, err := progs.Build(w.Source(1), core.Options{Opt: core.O2})
	if err != nil {
		return 0, 0, err
	}
	// Concatenate the text many times over to get a multi-MB segment.
	exeText, err := extractText(res.ELF)
	if err != nil {
		return 0, 0, err
	}
	big := make([]byte, 0, 4<<20)
	for len(big) < 4<<20 {
		big = append(big, exeText...)
	}
	cfg := verifier.DefaultConfig()
	cfg.TextOff = core.MinCodeOffset
	start := time.Now()
	if _, err := verifier.Verify(big, cfg); err != nil {
		return 0, 0, fmt.Errorf("verifier rejected benchmark input: %w", err)
	}
	lfiMBps = float64(len(big)) / time.Since(start).Seconds() / 1e6

	mod := wasmbase.GenModule(64, 64<<10)
	start = time.Now()
	if _, err := wasmbase.ValidateModule(mod); err != nil {
		return 0, 0, fmt.Errorf("validator rejected benchmark input: %w", err)
	}
	wasmMBps = float64(len(mod)) / time.Since(start).Seconds() / 1e6
	return lfiMBps, wasmMBps, nil
}

func extractText(elfBytes []byte) ([]byte, error) {
	exe, err := elfobj.Unmarshal(elfBytes)
	if err != nil {
		return nil, err
	}
	seg, err := exe.TextSegment()
	if err != nil {
		return nil, err
	}
	return seg.Data, nil
}

// SortRows orders rows by SPEC number (they are generated in order, but
// callers may merge sets).
func SortRows(rows []OverheadRow) {
	sort.Slice(rows, func(i, j int) bool { return rows[i].Workload < rows[j].Workload })
}
