package bench

import (
	"testing"

	"lfi/internal/emu"
	"lfi/internal/hwmodel"
)

// TestTransitionRatios is the committed transition-cost gate (run by
// check.sh in smoke mode): the near-zero-cost transition work pins the
// IPC ping-pong to at most 1.5× a bare yield on the direct-handoff path,
// with the vectored batch amortizing below that. A regression in the
// handoff, hand-back, or wake-coalescing machinery shows up here as a
// ratio blowout before it shows up in EXPERIMENTS.md.
func TestTransitionRatios(t *testing.T) {
	rows, err := Table5(emu.ModelM1(), hwmodel.M1(), 400)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]float64{}
	for _, r := range rows {
		byName[r.Benchmark] = r.LFInS
	}
	yield := byName["yield"]
	if yield <= 0 {
		t.Fatal("yield row missing or non-positive")
	}
	for _, g := range []struct {
		name string
		max  float64 // ceiling as a multiple of bare yield
	}{
		// The headline target: one message per trap with direct
		// send→recv handoff must land within 1.5× a bare yield.
		{"direct handoff", 1.5},
		// Scalar send+recv (two traps per message) rides the same
		// handoff machinery; it improved from ~3.4x to ~2.7x with the
		// hand-back path, and must not regress past 3x.
		{"ipc", 3.0},
	} {
		ns, ok := byName[g.name]
		if !ok || ns <= 0 {
			t.Errorf("%s row missing or non-positive", g.name)
			continue
		}
		if ratio := ns / yield; ratio > g.max {
			t.Errorf("%s = %.1fns, %.2fx bare yield (%.1fns), want <= %.2fx",
				g.name, ns, ratio, yield, g.max)
		} else {
			t.Logf("%s = %.1fns (%.2fx bare yield)", g.name, ns, ratio)
		}
	}
	// Batching must amortize measurably: batch 8 beats batch 1 per
	// message, and by a real margin, not noise.
	dh, vec := byName["direct handoff"], byName["vectored ipc"]
	if vec <= 0 {
		t.Fatal("vectored ipc row missing or non-positive")
	}
	if vec >= 0.75*dh {
		t.Errorf("vectored ipc %.1fns does not amortize over direct handoff %.1fns (want < 0.75x)", vec, dh)
	} else {
		t.Logf("vectored ipc = %.1fns (%.2fx direct handoff)", vec, vec/dh)
	}
}
