package bench

import (
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"

	"lfi/internal/arm64"
	"lfi/internal/core"
	"lfi/internal/progs"
	"lfi/internal/wasmbase"
	"lfi/internal/wasmfront"
)

// WasmSystemRow is one engine's cost running one Wasm workload.
type WasmSystemRow struct {
	System string `json:"system"`
	// Cycles includes the engine's codegen factor for wasmbase models.
	Cycles      float64 `json:"cycles"`
	Instrs      uint64  `json:"instrs"`
	OverheadPct float64 `json:"overhead_pct"`
}

// WasmWorkloadRow is one workload's results across all engines.
type WasmWorkloadRow struct {
	Workload string `json:"workload"`
	Iters    uint32 `json:"iters"`
	// Checksum is the hex of the 8-byte little-endian result every engine
	// (including the reference interpreter) must produce.
	Checksum     string          `json:"checksum"`
	NativeCycles float64         `json:"native_cycles"`
	Systems      []WasmSystemRow `json:"systems"`
}

// WasmReport is the BENCH_wasm.json document: identical Wasm programs
// run through wasmfront-on-LFI and through the wasmbase engine models,
// all checked against the reference interpreter's result.
type WasmReport struct {
	Machine   string            `json:"machine"`
	Scale     float64           `json:"scale"`
	Workloads []WasmWorkloadRow `json:"workloads"`
	// Geomean maps each system to its geometric-mean overhead over the
	// unguarded translated baseline, in percent.
	Geomean map[string]float64 `json:"geomean_overhead_pct"`
}

// WasmSystems lists the compared engines in report order.
func WasmSystems() []string {
	names := []string{"LFI O0", "LFI O2"}
	for _, s := range wasmbase.Systems() {
		names = append(names, s.Name)
	}
	return names
}

// WasmCompare builds each sample Wasm module once with wasmfront, then
// runs the translated program unguarded (baseline), under LFI at O0 and
// O2, and under each wasmbase engine model. Every run's 8-byte stdout
// checksum must equal the reference interpreter's result.
func (r *Runner) WasmCompare(machine string) (*WasmReport, error) {
	rep := &WasmReport{Machine: machine, Scale: r.Scale, Geomean: map[string]float64{}}
	var rows []OverheadRow
	for _, w := range wasmfront.SampleWorkloads() {
		iters := uint32(float64(w.Iters) * r.Scale)
		if iters < 16 {
			iters = 16
		}
		wasm := w.Build(iters)

		m, err := wasmfront.Decode(wasm)
		if err != nil {
			return nil, fmt.Errorf("%s decode: %w", w.Name, err)
		}
		ref, trap, err := wasmfront.NewInterp(m).Run()
		if err != nil || trap != wasmfront.TrapNone {
			return nil, fmt.Errorf("%s interp: trap=%v err=%v", w.Name, trap, err)
		}
		want := make([]byte, 8)
		binary.LittleEndian.PutUint64(want, ref)

		asm, _, err := wasmfront.Translate(wasm)
		if err != nil {
			return nil, fmt.Errorf("%s translate: %w", w.Name, err)
		}
		check := func(sys string, out *RunOutcome) error {
			if out.Checksum != string(want) {
				return fmt.Errorf("%s %s: checksum %x, want %x (interp)",
					w.Name, sys, out.Checksum, want)
			}
			return nil
		}

		native, err := r.runNative(asm)
		if err != nil {
			return nil, fmt.Errorf("%s native: %w", w.Name, err)
		}
		if err := check("native", native); err != nil {
			return nil, err
		}

		row := WasmWorkloadRow{
			Workload:     w.Name,
			Iters:        iters,
			Checksum:     hex.EncodeToString(want),
			NativeCycles: native.Cycles,
		}
		orow := OverheadRow{Workload: w.Name, Overheads: map[string]float64{}}
		add := func(sys string, out *RunOutcome) {
			ov := pct(out.Cycles, native.Cycles)
			row.Systems = append(row.Systems, WasmSystemRow{
				System: sys, Cycles: out.Cycles, Instrs: out.Instrs, OverheadPct: ov,
			})
			orow.Overheads[sys] = ov
		}

		for _, cfg := range []struct {
			name string
			opts core.Options
		}{
			{"LFI O0", core.Options{Opt: core.O0}},
			{"LFI O2", core.Options{Opt: core.O2}},
		} {
			out, err := r.runLFI(asm, cfg.opts)
			if err != nil {
				return nil, fmt.Errorf("%s %s: %w", w.Name, cfg.name, err)
			}
			if err := check(cfg.name, out); err != nil {
				return nil, err
			}
			add(cfg.name, out)
		}
		for _, sys := range wasmbase.Systems() {
			out, err := r.runWasmModel(asm, sys)
			if err != nil {
				return nil, fmt.Errorf("%s %s: %w", w.Name, sys.Name, err)
			}
			if err := check(sys.Name, out); err != nil {
				return nil, err
			}
			add(sys.Name, out)
		}
		rep.Workloads = append(rep.Workloads, row)
		rows = append(rows, orow)
	}
	for _, sys := range WasmSystems() {
		rep.Geomean[sys] = Geomean(rows, sys)
	}
	return rep, nil
}

// runWasmModel runs asm under a wasmbase engine model: the model's
// instrumentation is inserted, the result runs unguarded, and its cycle
// count is multiplied by the engine's codegen factor.
func (r *Runner) runWasmModel(asm string, sys *wasmbase.System) (*RunOutcome, error) {
	f, err := arm64.ParseFile(asm)
	if err != nil {
		return nil, err
	}
	nf, err := sys.Transform(f)
	if err != nil {
		return nil, err
	}
	res, err := progs.BuildNative(nf.String())
	if err != nil {
		return nil, err
	}
	out, err := r.runELF(res.ELF, false, false)
	if err != nil {
		return nil, err
	}
	out.Cycles *= sys.CodegenFactor
	return out, nil
}

// Rows converts the report to OverheadRow form for the shared printer.
func (rep *WasmReport) Rows() []OverheadRow {
	var rows []OverheadRow
	for _, w := range rep.Workloads {
		row := OverheadRow{Workload: w.Workload, Overheads: map[string]float64{}}
		for _, s := range w.Systems {
			row.Overheads[s.System] = s.OverheadPct
		}
		rows = append(rows, row)
	}
	return rows
}

// WriteJSON writes the report to path.
func (rep *WasmReport) WriteJSON(path string) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
