package bench

import (
	"testing"

	"lfi/internal/emu"
)

func TestWasmCompareShape(t *testing.T) {
	r := &Runner{Model: emu.ModelM1(), Scale: 0.01}
	rep, err := r.WasmCompare("m1")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Workloads) != 3 {
		t.Fatalf("workloads = %d, want 3", len(rep.Workloads))
	}
	for _, w := range rep.Workloads {
		if len(w.Systems) != len(WasmSystems()) {
			t.Errorf("%s: %d systems, want %d", w.Workload, len(w.Systems), len(WasmSystems()))
		}
		if w.Checksum == "" || w.NativeCycles <= 0 {
			t.Errorf("%s: missing checksum or native cycles", w.Workload)
		}
	}
	o0 := rep.Geomean["LFI O0"]
	o2 := rep.Geomean["LFI O2"]
	t.Logf("geomeans: O0=%.1f%% O2=%.1f%% Wasmtime=%.1f%%", o0, o2, rep.Geomean["Wasmtime"])
	// The paper's claim (§6.2): LFI-sandboxed Wasm beats the Wasm engine
	// models, which pay both instrumentation and codegen-quality costs.
	if o2 > o0 {
		t.Errorf("O2 (%.1f%%) should not exceed O0 (%.1f%%)", o2, o0)
	}
	for _, sys := range []string{"Wasmtime", "Wasm2c", "WAMR"} {
		if rep.Geomean[sys] <= o2 {
			t.Errorf("%s geomean %.1f%% should exceed LFI O2 %.1f%%", sys, rep.Geomean[sys], o2)
		}
	}
}
