package obs

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
)

func TestNilSafety(t *testing.T) {
	// Every instrument and the registry itself must be usable as nil:
	// that is the "observability disabled" configuration.
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", DurationBounds())
	c.Add(3)
	c.Inc()
	g.Set(7)
	g.Add(-2)
	h.Observe(123)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}

	var tr *Tracer
	tr.Record(Event{Kind: EvJobStart})
	tr.RecordSpan(Span{Job: 1})
	if tr.Events() != nil || tr.Spans() != nil || tr.Dropped() != 0 {
		t.Fatal("nil tracer must read empty")
	}

	var o *Obs
	if o.Registry() != nil || o.Trace() != nil {
		t.Fatal("nil Obs accessors must return nil")
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs")
	c.Add(41)
	c.Inc()
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	if r.Counter("jobs") != c {
		t.Fatal("same name must return the same counter")
	}

	g := r.Gauge("depth")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}

	h := r.Histogram("lat", []uint64{10, 100, 1000})
	for _, v := range []uint64{5, 10, 11, 100, 5000} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 5126 {
		t.Fatalf("hist count/sum = %d/%d, want 5/5126", h.Count(), h.Sum())
	}
	hs := r.Snapshot().Histograms["lat"]
	wantBuckets := []uint64{2, 2, 0, 1} // ≤10:{5,10} ≤100:{11,100} ≤1000:{} inf:{5000}
	for i, want := range wantBuckets {
		if hs.Buckets[i].Count != want {
			t.Fatalf("bucket %d = %d, want %d", i, hs.Buckets[i].Count, want)
		}
	}
	if !hs.Buckets[3].Inf {
		t.Fatal("last bucket must be +Inf")
	}
}

func TestQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []uint64{100, 200, 400})
	for i := 0; i < 100; i++ {
		h.Observe(50) // all in the first bucket
	}
	hs := r.Snapshot().Histograms["lat"]
	if q := hs.Quantile(0.5); q == 0 || q > 100 {
		t.Fatalf("p50 = %d, want in (0, 100]", q)
	}
	empty := HistSnapshot{}
	if empty.Quantile(0.99) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
}

// TestConcurrentHammer drives the registry and tracer from many
// goroutines; run under -race this is the data-race proof for the whole
// recording surface.
func TestConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer(64, 16)
	const goroutines = 16
	const iters = 2000

	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := r.Counter("hammer.count")
			g := r.Gauge("hammer.gauge")
			h := r.Histogram("hammer.hist", DurationBounds())
			for j := 0; j < iters; j++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(uint64(j) * 1000)
				tr.Record(Event{Kind: EvHostCall, Worker: id, Arg: uint64(j)})
				if j%100 == 0 {
					tr.RecordSpan(Span{Job: uint64(j), Worker: id})
					_ = r.Snapshot()
					_ = tr.Events()
					_ = tr.Spans()
				}
			}
		}(i)
	}
	wg.Wait()

	if got := r.Counter("hammer.count").Value(); got != goroutines*iters {
		t.Fatalf("counter = %d, want %d", got, goroutines*iters)
	}
	if got := r.Histogram("hammer.hist", nil).Count(); got != goroutines*iters {
		t.Fatalf("hist count = %d, want %d", got, goroutines*iters)
	}
	if got := r.Gauge("hammer.gauge").Value(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
	if len(tr.Events()) != 64 {
		t.Fatalf("event ring holds %d, want 64", len(tr.Events()))
	}
	wantDropped := uint64(goroutines*iters - 64)
	if got := tr.Dropped(); got != wantDropped {
		t.Fatalf("dropped = %d, want %d", got, wantDropped)
	}
}

func TestTracerRingOrder(t *testing.T) {
	tr := NewTracer(4, 2)
	for i := 0; i < 7; i++ {
		tr.Record(Event{Kind: EvPreempt, Arg: uint64(i)})
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(evs))
	}
	for i, e := range evs {
		if want := uint64(3 + i); e.Arg != want {
			t.Fatalf("event %d arg = %d, want %d (chronological order)", i, e.Arg, want)
		}
	}
	if tr.Dropped() != 3 {
		t.Fatalf("dropped = %d, want 3", tr.Dropped())
	}
}

func TestMetricsHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.b").Add(9)
	srv := httptest.NewServer(MetricsHandler(func() *Snapshot { return r.Snapshot() }))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["a.b"] != 9 {
		t.Fatalf("exported counter = %d, want 9", snap.Counters["a.b"])
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Fatalf("content type = %q", ct)
	}
}
