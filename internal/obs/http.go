package obs

import (
	"encoding/json"
	"net/http"
)

// MetricsHandler serves the JSON snapshot produced by snap on every
// request — the /metrics endpoint. snap is called per request so the
// caller can merge sources (registry snapshot plus derived values).
func MetricsHandler(snap func() *Snapshot) http.Handler {
	return jsonHandler(func() any { return snap() })
}

// StatusHandler serves an arbitrary JSON-marshalable status document —
// the /statusz endpoint.
func StatusHandler(status func() any) http.Handler {
	return jsonHandler(status)
}

func jsonHandler(body func() any) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(body()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
