package obs

import (
	"sync"
	"time"
)

// EventKind classifies a traced event.
type EventKind uint8

const (
	EvNone EventKind = iota
	// Pool job lifecycle.
	EvJobEnqueue // job accepted into the submission queue
	EvJobDequeue // worker picked the job up
	EvJobStart   // sandbox acquired (restored/warm/cold) and started
	EvJobFinish  // result delivered; Arg = retired instructions
	EvJobCancel  // job canceled by its context
	// Warm-pool behavior.
	EvWarmHit  // served from a parked pre-restored sandbox
	EvWarmMiss // no parked sandbox; restored on the request path
	EvRestore  // snapshot restore (request path or replenishment)
	EvColdLoad // full ELF load (Cold jobs)
	EvEvict    // warm-pool eviction (MaxWarm pressure)
	// Pipeline and runtime events.
	EvVerify   // verifier ran over a binary; Arg = text bytes
	EvPreempt  // timeslice preemption; Arg = PID
	EvTrap     // fatal sandbox trap; Arg = exit status
	EvHostCall // runtime call; Arg = call number
	// Cross-sandbox IPC.
	EvSend // completed RTSend deposit; Arg = bytes
	EvRecv // completed RTRecv transfer; Arg = bytes
)

var eventNames = [...]string{
	EvNone:       "none",
	EvJobEnqueue: "job_enqueue",
	EvJobDequeue: "job_dequeue",
	EvJobStart:   "job_start",
	EvJobFinish:  "job_finish",
	EvJobCancel:  "job_cancel",
	EvWarmHit:    "warm_hit",
	EvWarmMiss:   "warm_miss",
	EvRestore:    "restore",
	EvColdLoad:   "cold_load",
	EvEvict:      "evict",
	EvVerify:     "verify",
	EvPreempt:    "preempt",
	EvTrap:       "trap",
	EvHostCall:   "host_call",
	EvSend:       "send",
	EvRecv:       "recv",
}

func (k EventKind) String() string {
	if int(k) < len(eventNames) {
		return eventNames[k]
	}
	return "unknown"
}

// MarshalText renders the kind as its name in JSON exports.
func (k EventKind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// Event is one traced occurrence. Job, Worker, PID, Arg and DurNS are
// kind-specific; unused fields are zero.
type Event struct {
	Seq    uint64    `json:"seq"`
	TimeNS int64     `json:"time_ns"` // unix nanoseconds
	Kind   EventKind `json:"kind"`
	Job    uint64    `json:"job,omitempty"`
	Worker int       `json:"worker,omitempty"`
	PID    int       `json:"pid,omitempty"`
	Arg    uint64    `json:"arg,omitempty"`
	DurNS  int64     `json:"dur_ns,omitempty"`
}

// Span is the end-to-end accounting of one pool job: where its latency
// went (queue wait, snapshot restore, sandbox run) and how it was served.
type Span struct {
	Job         uint64 `json:"job"`
	Image       string `json:"image,omitempty"` // image key prefix
	Worker      int    `json:"worker"`
	EnqueueNS   int64  `json:"enqueue_ns"` // unix nanoseconds
	QueueWaitNS int64  `json:"queue_wait_ns"`
	RestoreNS   int64  `json:"restore_ns"` // 0 on a warm hit
	RunNS       int64  `json:"run_ns"`
	TotalNS     int64  `json:"total_ns"`
	WarmHit     bool   `json:"warm_hit"`
	Cold        bool   `json:"cold,omitempty"`
	Canceled    bool   `json:"canceled,omitempty"`
	Instrs      uint64 `json:"instrs"`
	Err         string `json:"err,omitempty"`
	// Stages carries per-stage accounting for pipeline jobs (nil for
	// single-image jobs).
	Stages []SpanStage `json:"stages,omitempty"`
}

// SpanStage is the per-stage slice of a pipeline job's span.
type SpanStage struct {
	Image   string `json:"image,omitempty"` // image key prefix
	PID     int    `json:"pid"`
	Status  int    `json:"status"`
	WarmHit bool   `json:"warm_hit"`
}

// Tracer keeps the most recent events and job spans in bounded ring
// buffers. Recording takes one short mutex hold and never allocates once
// the rings are full; a nil Tracer discards everything.
type Tracer struct {
	mu     sync.Mutex
	events []Event
	evNext uint64 // total events ever recorded (== next seq)
	spans  []Span
	spNext uint64
	evCap  int
	spCap  int
}

// NewTracer creates a tracer keeping up to evCap events and spanCap
// spans (defaults 1024 and 256 when zero).
func NewTracer(evCap, spanCap int) *Tracer {
	if evCap <= 0 {
		evCap = 1024
	}
	if spanCap <= 0 {
		spanCap = 256
	}
	return &Tracer{
		events: make([]Event, 0, evCap),
		spans:  make([]Span, 0, spanCap),
		evCap:  evCap,
		spCap:  spanCap,
	}
}

// Record appends an event, stamping Seq and (when zero) TimeNS.
func (t *Tracer) Record(e Event) {
	if t == nil {
		return
	}
	if e.TimeNS == 0 {
		e.TimeNS = time.Now().UnixNano()
	}
	t.mu.Lock()
	e.Seq = t.evNext
	t.evNext++
	if len(t.events) < t.evCap {
		t.events = append(t.events, e)
	} else {
		t.events[int(e.Seq)%t.evCap] = e
	}
	t.mu.Unlock()
}

// RecordSpan appends a completed job span.
func (t *Tracer) RecordSpan(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.spans) < t.spCap {
		t.spans = append(t.spans, s)
	} else {
		t.spans[int(t.spNext)%t.spCap] = s
	}
	t.spNext++
	t.mu.Unlock()
}

// Events returns the retained events in chronological order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.events))
	if len(t.events) < t.evCap {
		return append(out, t.events...)
	}
	head := int(t.evNext) % t.evCap
	out = append(out, t.events[head:]...)
	return append(out, t.events[:head]...)
}

// Spans returns the retained spans in completion order.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.spans))
	if len(t.spans) < t.spCap {
		return append(out, t.spans...)
	}
	head := int(t.spNext) % t.spCap
	out = append(out, t.spans[head:]...)
	return append(out, t.spans[:head]...)
}

// Dropped reports how many events aged out of the ring.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.evNext - uint64(len(t.events))
}

// Obs bundles a registry and a tracer: the single handle components take
// to record into the observability layer. A nil *Obs (and the nil
// Registry/Tracer inside a partially filled one) disables recording.
type Obs struct {
	Reg    *Registry
	Tracer *Tracer
}

// New creates an Obs with a fresh registry and a default-capacity tracer.
func New() *Obs {
	return &Obs{Reg: NewRegistry(), Tracer: NewTracer(0, 0)}
}

// Registry returns the bundle's registry, nil-safe.
func (o *Obs) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.Reg
}

// Trace returns the bundle's tracer, nil-safe.
func (o *Obs) Trace() *Tracer {
	if o == nil {
		return nil
	}
	return o.Tracer
}
