// Package obs is the observability layer: a stdlib-only metrics registry
// (atomic counters, gauges, and fixed-bucket histograms) plus a bounded
// structured event tracer with per-job spans. The serving stack records
// into it from every layer — pool admission and latency, runtime
// scheduling, emulator cache behavior — and exports one JSON snapshot.
//
// Two properties shape the design:
//
//   - Hot-path recording is cheap: one atomic add for counters and gauges,
//     one binary search plus three atomic adds for histograms. No
//     allocations, no locks, no formatting on the record path.
//
//   - Everything is nil-safe. A nil *Registry hands out nil instruments,
//     and every method on a nil instrument is a no-op, so instrumented
//     code carries no "is observability on?" branches — disabling
//     observability costs a nil receiver check per record.
//
// Metric names are dotted paths ("pool.jobs.submitted", "rt.host_calls",
// "emu.block.hits"); the registry keeps one instrument per name, so
// concurrent lookups of the same name share storage and aggregate.
package obs

import (
	"encoding/json"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64. The zero value is ready;
// a nil Counter discards all updates.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil Counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous int64 level (queue depth, parked sandboxes).
// The zero value is ready; a nil Gauge discards all updates.
type Gauge struct{ v atomic.Int64 }

// Set stores an absolute level.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add moves the level by delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current level (0 for a nil Gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram accumulates uint64 observations into fixed buckets chosen at
// creation. Recording is lock-free: a binary search over the (immutable)
// bounds plus atomic adds. A nil Histogram discards all observations.
type Histogram struct {
	bounds []uint64 // inclusive upper bounds, ascending; +Inf implied
	counts []atomic.Uint64
	sum    atomic.Uint64
	n      atomic.Uint64
}

// DurationBounds is the default bucket layout for nanosecond latencies:
// roughly exponential from 1µs to 10s.
func DurationBounds() []uint64 {
	return []uint64{
		1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, // 1µs … 10s
	}
}

// InstrBounds is the default bucket layout for per-slice instruction
// counts: exponential from 100 to 100M.
func InstrBounds() []uint64 {
	return []uint64{100, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8}
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v; the last slot is +Inf.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.counts[lo].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// Count returns how many values have been observed (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the running sum of observed values (0 for nil).
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Registry is a named collection of instruments. Lookups are
// mutex-guarded and intended for construction time; the instruments they
// return are the lock-free hot-path handles. A nil *Registry returns nil
// instruments from every lookup, which record nothing.
type Registry struct {
	mu     sync.Mutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on
// first use. Nil-safe.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counts[name]
	if !ok {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use. Nil-safe.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket bounds on first use (later callers share the
// original bounds). Nil-safe.
func (r *Registry) Histogram(name string, bounds []uint64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		b := append([]uint64(nil), bounds...)
		sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
		h = &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
		r.hists[name] = h
	}
	return h
}

// HistBucket is one exported histogram bucket. Upper is the inclusive
// upper bound; the last bucket of a histogram has Upper 0 and Inf true.
type HistBucket struct {
	Upper uint64 `json:"le,omitempty"`
	Inf   bool   `json:"inf,omitempty"`
	Count uint64 `json:"count"`
}

// HistSnapshot is a histogram frozen for export.
type HistSnapshot struct {
	Count   uint64       `json:"count"`
	Sum     uint64       `json:"sum"`
	Mean    float64      `json:"mean"`
	Buckets []HistBucket `json:"buckets"`
}

// Quantile estimates the q-th quantile (0 < q <= 1) by linear
// interpolation inside the containing bucket. It returns 0 for an empty
// histogram and the last finite bound for values in the +Inf bucket.
func (h *HistSnapshot) Quantile(q float64) uint64 {
	if h.Count == 0 {
		return 0
	}
	rank := uint64(q * float64(h.Count))
	if rank == 0 {
		rank = 1
	}
	var seen, lower uint64
	for _, b := range h.Buckets {
		if seen+b.Count >= rank {
			if b.Inf {
				return lower
			}
			if b.Count == 0 {
				return b.Upper
			}
			frac := float64(rank-seen) / float64(b.Count)
			return lower + uint64(frac*float64(b.Upper-lower))
		}
		seen += b.Count
		if !b.Inf {
			lower = b.Upper
		}
	}
	return lower
}

// Snapshot is a point-in-time copy of every instrument in a registry,
// ready for JSON export. Counters and gauges are read individually (not
// atomically as a set), which is fine for monitoring.
type Snapshot struct {
	Counters   map[string]uint64       `json:"counters"`
	Gauges     map[string]int64        `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// Snapshot freezes the registry. A nil registry yields an empty (but
// usable) snapshot.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counts {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hs := HistSnapshot{Count: h.n.Load(), Sum: h.sum.Load()}
		if hs.Count > 0 {
			hs.Mean = float64(hs.Sum) / float64(hs.Count)
		}
		for i := range h.counts {
			b := HistBucket{Count: h.counts[i].Load()}
			if i < len(h.bounds) {
				b.Upper = h.bounds[i]
			} else {
				b.Inf = true
			}
			hs.Buckets = append(hs.Buckets, b)
		}
		s.Histograms[name] = hs
	}
	return s
}

// MarshalJSON renders the snapshot with sorted keys (encoding/json sorts
// map keys already; this method exists to pin the contract).
func (s *Snapshot) MarshalJSON() ([]byte, error) {
	type alias Snapshot // avoid recursion
	return json.Marshal((*alias)(s))
}

// Merge copies every instrument of other into s with its name prefixed —
// "shard.0." + "pool.jobs.completed" → "shard.0.pool.jobs.completed".
// A sharded server uses it to publish several registries (one per shard
// pool, plus its own) as one /metrics document. Same-name collisions
// overwrite, so callers choose distinct prefixes.
func (s *Snapshot) Merge(prefix string, other *Snapshot) {
	if other == nil {
		return
	}
	for name, v := range other.Counters {
		s.Counters[prefix+name] = v
	}
	for name, v := range other.Gauges {
		s.Gauges[prefix+name] = v
	}
	for name, h := range other.Histograms {
		s.Histograms[prefix+name] = h
	}
}
