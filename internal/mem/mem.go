// Package mem provides a sparse 48-bit virtual address space with
// page-granular permissions. It is the memory substrate underneath the
// emulated CPU: sandbox slots, guard regions, and the runtime's own
// mappings all live in one AddrSpace, exactly as LFI packs tens of
// thousands of sandboxes into a single hardware address space.
package mem

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Perm is a page permission bitmask.
type Perm uint8

const (
	PermRead Perm = 1 << iota
	PermWrite
	PermExec

	PermNone Perm = 0
	PermRW        = PermRead | PermWrite
	PermRX        = PermRead | PermExec
)

func (p Perm) String() string {
	b := []byte("---")
	if p&PermRead != 0 {
		b[0] = 'r'
	}
	if p&PermWrite != 0 {
		b[1] = 'w'
	}
	if p&PermExec != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// Access identifies the kind of memory access that faulted.
type Access uint8

const (
	AccessRead Access = iota
	AccessWrite
	AccessExec
)

func (a Access) String() string {
	switch a {
	case AccessRead:
		return "read"
	case AccessWrite:
		return "write"
	default:
		return "exec"
	}
}

// Fault describes a memory access violation. It plays the role of a
// hardware exception: the emulator converts it into a trap that kills the
// offending sandbox.
type Fault struct {
	Addr   uint64
	Access Access
	Size   int
}

func (f *Fault) Error() string {
	return fmt.Sprintf("mem: fault: %s of %d bytes at %#x", f.Access, f.Size, f.Addr)
}

// AddrWidth is the usable virtual address width (48-bit usermode space, as
// on typical ARM64 machines; the paper's sandbox count derives from it).
const AddrWidth = 48

// MaxAddr is the first address beyond the usable address space.
const MaxAddr = uint64(1) << AddrWidth

// page is one mapped page. data == nil means demand-zero: the page reads
// as zeros and gets its backing store on first access (materialized in
// lookup/WriteForce). Fresh stacks and sparse heaps therefore cost
// nothing to map, copy (fork), snapshot, or restore until touched.
type page struct {
	perm Perm
	data []byte
}

// AddrSpace is a sparse page-mapped address space.
type AddrSpace struct {
	pageSize  uint64
	pageShift uint
	pages     map[uint64]*page

	// One-entry lookup caches, split by access kind. They make the
	// emulator's hot loop independent of map performance for sequential
	// access patterns.
	lastRead  cachedPage
	lastWrite cachedPage
	lastExec  cachedPage

	// epoch counts mapping mutations (Map/Unmap/Protect/CopyRange/
	// RestoreRange). External caches keyed on page identity — the
	// emulator's decoded-block and translation caches — revalidate by
	// comparing epochs instead of being flushed explicitly.
	epoch uint64
}

type cachedPage struct {
	idx uint64
	pg  *page
}

// NewAddrSpace creates an empty address space with the given page size
// (must be a power of two; 0 selects 16KiB, the Apple ARM64 page size).
func NewAddrSpace(pageSize uint64) *AddrSpace {
	if pageSize == 0 {
		pageSize = 16 * 1024
	}
	if pageSize&(pageSize-1) != 0 {
		panic("mem: page size must be a power of two")
	}
	shift := uint(0)
	for s := pageSize; s > 1; s >>= 1 {
		shift++
	}
	return &AddrSpace{
		pageSize:  pageSize,
		pageShift: shift,
		pages:     make(map[uint64]*page),
		lastRead:  cachedPage{idx: ^uint64(0)},
		lastWrite: cachedPage{idx: ^uint64(0)},
		lastExec:  cachedPage{idx: ^uint64(0)},
	}
}

// PageSize returns the page size in bytes.
func (as *AddrSpace) PageSize() uint64 { return as.pageSize }

func (as *AddrSpace) invalidate() {
	as.lastRead = cachedPage{idx: ^uint64(0)}
	as.lastWrite = cachedPage{idx: ^uint64(0)}
	as.lastExec = cachedPage{idx: ^uint64(0)}
	as.epoch++
}

// Epoch returns the mapping-mutation counter. Any Map, Unmap, UnmapRange,
// Protect, CopyRange, or RestoreRange bumps it, as does WriteForce — the
// host-side escape hatch that can rewrite text in place under a read/exec
// mapping. Sandbox-initiated page *contents* changes (ordinary stores) do
// not: sandboxed code cannot write executable pages, so they cannot
// invalidate decoded text. A cache of page translations or decoded text is
// coherent as long as the epoch it was filled under is still current.
func (as *AddrSpace) Epoch() uint64 { return as.epoch }

// PageSlice returns the backing bytes of the mapped page containing addr,
// provided the page grants acc, materializing demand-zero pages. The slice
// aliases the page (writes through it are visible to all readers) and stays
// valid until the next epoch bump, so callers may cache it keyed by page
// index while Epoch() is unchanged.
func (as *AddrSpace) PageSlice(addr uint64, acc Access) ([]byte, *Fault) {
	pg, f := as.lookup(addr, acc)
	if f != nil {
		return nil, f
	}
	return pg.data, nil
}

func (as *AddrSpace) aligned(addr, size uint64) error {
	if addr%as.pageSize != 0 {
		return fmt.Errorf("mem: address %#x not page aligned", addr)
	}
	if size == 0 || size%as.pageSize != 0 {
		return fmt.Errorf("mem: size %#x not a positive page multiple", size)
	}
	if addr >= MaxAddr || addr+size > MaxAddr || addr+size < addr {
		return fmt.Errorf("mem: range [%#x, %#x) outside the %d-bit address space", addr, addr+size, AddrWidth)
	}
	return nil
}

// Map creates pages over [addr, addr+size) with the given permissions.
// Mapping over an existing page fails.
func (as *AddrSpace) Map(addr, size uint64, perm Perm) error {
	if err := as.aligned(addr, size); err != nil {
		return err
	}
	first := addr >> as.pageShift
	n := size >> as.pageShift
	for i := uint64(0); i < n; i++ {
		if _, ok := as.pages[first+i]; ok {
			return fmt.Errorf("mem: page %#x already mapped", (first+i)<<as.pageShift)
		}
	}
	// Back the whole mapping with one slab, sliced per page. The slab is
	// virtual until touched (the OS demand-zeroes it 4KiB at a time), so
	// sparse mappings — 8MiB stacks of which a process uses a few pages —
	// cost nothing; but the per-page allocation and 16KiB zeroing that
	// lazy materialization used to do inside the emulator's load/store
	// path now happen here, attributable to the map call that created the
	// mapping instead of to whatever emulated instruction touched the
	// page first.
	slab := make([]byte, size)
	for i := uint64(0); i < n; i++ {
		as.pages[first+i] = &page{perm: perm, data: slab[i<<as.pageShift : (i+1)<<as.pageShift : (i+1)<<as.pageShift]}
	}
	as.invalidate()
	return nil
}

// Unmap removes pages over [addr, addr+size). Unmapped pages are skipped.
func (as *AddrSpace) Unmap(addr, size uint64) error {
	if err := as.aligned(addr, size); err != nil {
		return err
	}
	first := addr >> as.pageShift
	n := size >> as.pageShift
	for i := uint64(0); i < n; i++ {
		delete(as.pages, first+i)
	}
	as.invalidate()
	return nil
}

// UnmapRange unmaps every mapped page in [addr, addr+size) with a single
// pass over the page table. Unlike Unmap it does not probe each page
// index in the range, so it is the right call for sparse ranges — e.g.
// releasing a whole 4GiB sandbox slot of which only a few hundred pages
// were ever mapped.
func (as *AddrSpace) UnmapRange(addr, size uint64) error {
	if err := as.aligned(addr, size); err != nil {
		return err
	}
	first := addr >> as.pageShift
	last := (addr + size) >> as.pageShift
	for idx := range as.pages {
		if idx >= first && idx < last {
			delete(as.pages, idx)
		}
	}
	as.invalidate()
	return nil
}

// Protect changes permissions over [addr, addr+size). All pages must be
// mapped.
func (as *AddrSpace) Protect(addr, size uint64, perm Perm) error {
	if err := as.aligned(addr, size); err != nil {
		return err
	}
	first := addr >> as.pageShift
	n := size >> as.pageShift
	for i := uint64(0); i < n; i++ {
		if _, ok := as.pages[first+i]; !ok {
			return fmt.Errorf("mem: page %#x not mapped", (first+i)<<as.pageShift)
		}
	}
	for i := uint64(0); i < n; i++ {
		as.pages[first+i].perm = perm
	}
	as.invalidate()
	return nil
}

// Mapped reports whether every page of [addr, addr+size) is mapped with at
// least the given permissions.
func (as *AddrSpace) Mapped(addr, size uint64, perm Perm) bool {
	if size == 0 {
		return true
	}
	first := addr >> as.pageShift
	last := (addr + size - 1) >> as.pageShift
	for i := first; i <= last; i++ {
		pg, ok := as.pages[i]
		if !ok || pg.perm&perm != perm {
			return false
		}
	}
	return true
}

// MappedBytes returns the total number of mapped bytes.
func (as *AddrSpace) MappedBytes() uint64 {
	return uint64(len(as.pages)) << as.pageShift
}

func (as *AddrSpace) lookup(addr uint64, acc Access) (*page, *Fault) {
	idx := addr >> as.pageShift
	var cache *cachedPage
	var need Perm
	switch acc {
	case AccessRead:
		cache, need = &as.lastRead, PermRead
	case AccessWrite:
		cache, need = &as.lastWrite, PermWrite
	default:
		cache, need = &as.lastExec, PermExec
	}
	if cache.idx == idx {
		return cache.pg, nil
	}
	pg, ok := as.pages[idx]
	if !ok || pg.perm&need == 0 {
		return nil, &Fault{Addr: addr, Access: acc, Size: 1}
	}
	if pg.data == nil {
		pg.data = make([]byte, as.pageSize) // first touch materializes
	}
	cache.idx, cache.pg = idx, pg
	return pg, nil
}

// ReadAt copies len(b) bytes from addr, honoring read permissions.
func (as *AddrSpace) ReadAt(b []byte, addr uint64) *Fault {
	return as.copyAcross(b, addr, AccessRead, func(dst, src []byte) { copy(dst, src) })
}

// WriteAt copies b to addr, honoring write permissions.
func (as *AddrSpace) WriteAt(b []byte, addr uint64) *Fault {
	return as.copyAcross(b, addr, AccessWrite, func(src, dst []byte) { copy(dst, src) })
}

// WriteForce copies b to addr ignoring permissions (loader use only; the
// pages must exist). Because it can rewrite pages mapped read/exec — the
// one way text changes without a mapping mutation — it bumps the epoch so
// decoded-block caches, chain links, and superblocks built over the old
// bytes are dropped.
func (as *AddrSpace) WriteForce(b []byte, addr uint64) *Fault {
	defer as.invalidate()
	for len(b) > 0 {
		idx := addr >> as.pageShift
		pg, ok := as.pages[idx]
		if !ok {
			return &Fault{Addr: addr, Access: AccessWrite, Size: len(b)}
		}
		if pg.data == nil {
			pg.data = make([]byte, as.pageSize)
		}
		off := addr & (as.pageSize - 1)
		n := copy(pg.data[off:], b)
		b = b[n:]
		addr += uint64(n)
	}
	return nil
}

func (as *AddrSpace) copyAcross(b []byte, addr uint64, acc Access, move func(ext, pg []byte)) *Fault {
	for len(b) > 0 {
		pg, f := as.lookup(addr, acc)
		if f != nil {
			f.Size = len(b)
			return f
		}
		off := addr & (as.pageSize - 1)
		n := int(as.pageSize - off)
		if n > len(b) {
			n = len(b)
		}
		move(b[:n], pg.data[off:off+uint64(n)])
		b = b[n:]
		addr += uint64(n)
	}
	return nil
}

// Read returns an unsigned little-endian value of size 1, 2, 4, or 8 bytes.
func (as *AddrSpace) Read(addr uint64, size int) (uint64, *Fault) {
	pg, f := as.lookup(addr, AccessRead)
	if f != nil {
		f.Size = size
		return 0, f
	}
	off := addr & (as.pageSize - 1)
	if off+uint64(size) <= as.pageSize {
		d := pg.data[off:]
		switch size {
		case 1:
			return uint64(d[0]), nil
		case 2:
			return uint64(binary.LittleEndian.Uint16(d)), nil
		case 4:
			return uint64(binary.LittleEndian.Uint32(d)), nil
		case 8:
			return binary.LittleEndian.Uint64(d), nil
		}
	}
	// Crosses a page boundary (or odd size): slow path.
	var buf [8]byte
	if f := as.ReadAt(buf[:size], addr); f != nil {
		return 0, f
	}
	return binary.LittleEndian.Uint64(buf[:]), nil
}

// Write stores an unsigned little-endian value of size 1, 2, 4, or 8 bytes.
func (as *AddrSpace) Write(addr uint64, v uint64, size int) *Fault {
	pg, f := as.lookup(addr, AccessWrite)
	if f != nil {
		f.Size = size
		return f
	}
	off := addr & (as.pageSize - 1)
	if off+uint64(size) <= as.pageSize {
		d := pg.data[off:]
		switch size {
		case 1:
			d[0] = byte(v)
			return nil
		case 2:
			binary.LittleEndian.PutUint16(d, uint16(v))
			return nil
		case 4:
			binary.LittleEndian.PutUint32(d, uint32(v))
			return nil
		case 8:
			binary.LittleEndian.PutUint64(d, v)
			return nil
		}
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	return as.WriteAt(buf[:size], addr)
}

// Fetch32 reads a 4-byte instruction word, honoring execute permission.
func (as *AddrSpace) Fetch32(addr uint64) (uint32, *Fault) {
	pg, f := as.lookup(addr, AccessExec)
	if f != nil {
		f.Size = 4
		return 0, f
	}
	off := addr & (as.pageSize - 1)
	if off+4 <= as.pageSize {
		return binary.LittleEndian.Uint32(pg.data[off:]), nil
	}
	return 0, &Fault{Addr: addr, Access: AccessExec, Size: 4}
}

// CopyRange copies size bytes of mapped content (and permissions) from
// srcBase to dstBase, mapping destination pages as needed. It implements
// the memory side of single-address-space fork: unmapped source pages stay
// unmapped at the destination.
func (as *AddrSpace) CopyRange(srcBase, dstBase, size uint64) error {
	if err := as.aligned(srcBase, size); err != nil {
		return err
	}
	if err := as.aligned(dstBase, size); err != nil {
		return err
	}
	n := size >> as.pageShift
	src := srcBase >> as.pageShift
	dst := dstBase >> as.pageShift
	for i := uint64(0); i < n; i++ {
		spg, ok := as.pages[src+i]
		if !ok {
			continue
		}
		if _, ok := as.pages[dst+i]; ok {
			return fmt.Errorf("mem: destination page %#x already mapped", (dst+i)<<as.pageShift)
		}
		npg := &page{perm: spg.perm}
		if spg.data != nil {
			npg.data = append([]byte(nil), spg.data...)
		}
		as.pages[dst+i] = npg
	}
	as.invalidate()
	return nil
}

// PageImage is one saved page of a snapshot: its offset from the snapshot
// base, its permissions, and its contents. Data is nil for an all-zero
// page, so snapshots of mostly-untouched sandboxes (fresh stacks, sparse
// heaps) stay small and restore without copying.
type PageImage struct {
	Off  uint64
	Perm Perm
	Data []byte
}

// SnapshotRange copies out every mapped page in [base, base+size) as a
// base-relative PageImage list. The result shares nothing with the address
// space: it is immutable and may be restored concurrently into other
// AddrSpaces (the memory half of sandbox snapshot/restore, which reuses
// the same single-address-space copy idea as fork).
func (as *AddrSpace) SnapshotRange(base, size uint64) ([]PageImage, error) {
	if err := as.aligned(base, size); err != nil {
		return nil, err
	}
	first := base >> as.pageShift
	n := size >> as.pageShift
	var out []PageImage
	for i := uint64(0); i < n; i++ {
		pg, ok := as.pages[first+i]
		if !ok {
			continue
		}
		pi := PageImage{Off: i << as.pageShift, Perm: pg.perm}
		if pg.data != nil && !allZero(pg.data) {
			pi.Data = append([]byte(nil), pg.data...)
		}
		out = append(out, pi)
	}
	return out, nil
}

// RestoreRange maps the snapshot's pages at base and fills their contents.
// The target pages must be unmapped; on error the address space may hold a
// partial restore (callers unmap the whole range to recover).
func (as *AddrSpace) RestoreRange(base uint64, pages []PageImage) error {
	if base%as.pageSize != 0 {
		return fmt.Errorf("mem: restore base %#x not page aligned", base)
	}
	for i := range pages {
		pi := &pages[i]
		addr := base + pi.Off
		if pi.Off%as.pageSize != 0 || addr >= MaxAddr {
			return fmt.Errorf("mem: bad snapshot page offset %#x", pi.Off)
		}
		idx := addr >> as.pageShift
		if _, ok := as.pages[idx]; ok {
			return fmt.Errorf("mem: restore target page %#x already mapped", addr)
		}
		npg := &page{perm: pi.Perm} // zero pages restore demand-zero
		if pi.Data != nil {
			npg.data = make([]byte, as.pageSize)
			copy(npg.data, pi.Data)
		}
		as.pages[idx] = npg
	}
	as.invalidate()
	return nil
}

func allZero(b []byte) bool {
	for len(b) >= 8 {
		if binary.LittleEndian.Uint64(b) != 0 {
			return false
		}
		b = b[8:]
	}
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}

// Region describes one contiguous run of identically-permissioned pages.
type Region struct {
	Addr uint64
	Size uint64
	Perm Perm
}

// Regions returns the mapped regions in address order, coalescing adjacent
// pages with equal permissions. Useful for debugging and tests.
func (as *AddrSpace) Regions() []Region {
	idxs := make([]uint64, 0, len(as.pages))
	for idx := range as.pages {
		idxs = append(idxs, idx)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	var out []Region
	for _, idx := range idxs {
		pg := as.pages[idx]
		addr := idx << as.pageShift
		if n := len(out); n > 0 && out[n-1].Addr+out[n-1].Size == addr && out[n-1].Perm == pg.perm {
			out[n-1].Size += as.pageSize
			continue
		}
		out = append(out, Region{Addr: addr, Size: as.pageSize, Perm: pg.perm})
	}
	return out
}
