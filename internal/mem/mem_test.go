package mem

import (
	"testing"
	"testing/quick"
)

func TestMapUnmapProtect(t *testing.T) {
	as := NewAddrSpace(0)
	ps := as.PageSize()
	if ps != 16*1024 {
		t.Fatalf("default page size = %d", ps)
	}
	if err := as.Map(0x100000000, 4*ps, PermRW); err != nil {
		t.Fatal(err)
	}
	if err := as.Map(0x100000000, ps, PermRW); err == nil {
		t.Error("double map must fail")
	}
	if !as.Mapped(0x100000000, 4*ps, PermRead) {
		t.Error("range should be mapped readable")
	}
	if as.Mapped(0x100000000, 4*ps, PermExec) {
		t.Error("range should not be executable")
	}
	if err := as.Protect(0x100000000, ps, PermRX); err != nil {
		t.Fatal(err)
	}
	if !as.Mapped(0x100000000, ps, PermExec) {
		t.Error("protect to rx failed")
	}
	if err := as.Unmap(0x100000000, 2*ps); err != nil {
		t.Fatal(err)
	}
	if as.Mapped(0x100000000, ps, PermRead) {
		t.Error("unmapped page still readable")
	}
	if !as.Mapped(0x100000000+2*ps, 2*ps, PermRW) {
		t.Error("later pages must remain")
	}
}

func TestAlignmentErrors(t *testing.T) {
	as := NewAddrSpace(4096)
	if err := as.Map(123, 4096, PermRW); err == nil {
		t.Error("unaligned address must fail")
	}
	if err := as.Map(4096, 100, PermRW); err == nil {
		t.Error("unaligned size must fail")
	}
	if err := as.Map(MaxAddr, 4096, PermRW); err == nil {
		t.Error("out-of-space address must fail")
	}
	if err := as.Map(MaxAddr-4096, 8192, PermRW); err == nil {
		t.Error("range extending past MaxAddr must fail")
	}
}

func TestReadWriteSizes(t *testing.T) {
	as := NewAddrSpace(4096)
	base := uint64(0x2000)
	if err := as.Map(base, 8192, PermRW); err != nil {
		t.Fatal(err)
	}
	for _, size := range []int{1, 2, 4, 8} {
		v := uint64(0x1122334455667788) & (1<<(8*size) - 1)
		if f := as.Write(base+64, v, size); f != nil {
			t.Fatalf("write size %d: %v", size, f)
		}
		got, f := as.Read(base+64, size)
		if f != nil || got != v {
			t.Fatalf("read size %d: %#x (%v), want %#x", size, got, f, v)
		}
	}
	// Cross-page access.
	split := base + 4096 - 3
	if f := as.Write(split, 0xaabbccdd11223344, 8); f != nil {
		t.Fatal(f)
	}
	got, f := as.Read(split, 8)
	if f != nil || got != 0xaabbccdd11223344 {
		t.Fatalf("cross-page read = %#x (%v)", got, f)
	}
}

func TestPermissionFaults(t *testing.T) {
	as := NewAddrSpace(4096)
	if err := as.Map(0x1000, 4096, PermRead); err != nil {
		t.Fatal(err)
	}
	if _, f := as.Read(0x1000, 8); f != nil {
		t.Errorf("read of readable page: %v", f)
	}
	f := as.Write(0x1000, 1, 8)
	if f == nil || f.Access != AccessWrite {
		t.Errorf("write to read-only page: %v", f)
	}
	if _, f := as.Fetch32(0x1000); f == nil || f.Access != AccessExec {
		t.Error("fetch from non-exec page must fault")
	}
	if _, f := as.Read(0x0, 8); f == nil {
		t.Error("read of unmapped page must fault")
	}
	if err := as.Protect(0x1000, 4096, PermRX); err != nil {
		t.Fatal(err)
	}
	if _, f := as.Fetch32(0x1000); f != nil {
		t.Errorf("fetch from rx page: %v", f)
	}
	// Fault error text is meaningful.
	if f := as.Write(0x1000, 1, 4); f == nil || f.Error() == "" {
		t.Error("fault must describe itself")
	}
}

func TestCacheInvalidation(t *testing.T) {
	as := NewAddrSpace(4096)
	if err := as.Map(0x1000, 4096, PermRW); err != nil {
		t.Fatal(err)
	}
	if f := as.Write(0x1000, 42, 8); f != nil {
		t.Fatal(f)
	}
	// Prime the read cache, then revoke and check the fault is seen.
	if _, f := as.Read(0x1000, 8); f != nil {
		t.Fatal(f)
	}
	if err := as.Protect(0x1000, 4096, PermNone); err != nil {
		t.Fatal(err)
	}
	if _, f := as.Read(0x1000, 8); f == nil {
		t.Error("stale cache: read succeeded after protect(none)")
	}
	if err := as.Unmap(0x1000, 4096); err != nil {
		t.Fatal(err)
	}
	if f := as.Write(0x1000, 1, 1); f == nil {
		t.Error("stale cache: write succeeded after unmap")
	}
}

func TestWriteForceAndReadAt(t *testing.T) {
	as := NewAddrSpace(4096)
	if err := as.Map(0x1000, 8192, PermRead); err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 5000) // crosses a page boundary
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	if f := as.WriteForce(payload, 0x1800); f != nil {
		t.Fatal(f)
	}
	got := make([]byte, 5000)
	if f := as.ReadAt(got, 0x1800); f != nil {
		t.Fatal(f)
	}
	for i := range got {
		if got[i] != payload[i] {
			t.Fatalf("byte %d = %d, want %d", i, got[i], payload[i])
		}
	}
	if f := as.WriteForce([]byte{1}, 0x100000); f == nil {
		t.Error("WriteForce to unmapped page must fail")
	}
}

func TestCopyRangeFork(t *testing.T) {
	as := NewAddrSpace(4096)
	src := uint64(0x100000)
	dst := uint64(0x200000)
	if err := as.Map(src, 4096, PermRW); err != nil {
		t.Fatal(err)
	}
	if err := as.Map(src+8192, 4096, PermRX); err != nil {
		t.Fatal(err)
	}
	if f := as.Write(src+8, 0xdead, 8); f != nil {
		t.Fatal(f)
	}
	if err := as.CopyRange(src, dst, 3*4096); err != nil {
		t.Fatal(err)
	}
	got, f := as.Read(dst+8, 8)
	if f != nil || got != 0xdead {
		t.Fatalf("copied value = %#x (%v)", got, f)
	}
	// Hole stays a hole; permissions carry over.
	if as.Mapped(dst+4096, 4096, PermRead) {
		t.Error("hole was mapped")
	}
	if !as.Mapped(dst+8192, 4096, PermExec) {
		t.Error("rx page lost exec permission")
	}
	// Writes to the copy do not affect the original.
	if f := as.Write(dst+8, 1, 8); f != nil {
		t.Fatal(f)
	}
	got, _ = as.Read(src+8, 8)
	if got != 0xdead {
		t.Error("copy aliases the original")
	}
}

func TestRegions(t *testing.T) {
	as := NewAddrSpace(4096)
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(as.Map(0x1000, 8192, PermRW))
	must(as.Map(0x3000, 4096, PermRX))
	must(as.Map(0x10000, 4096, PermRW))
	rs := as.Regions()
	want := []Region{
		{0x1000, 8192, PermRW},
		{0x3000, 4096, PermRX},
		{0x10000, 4096, PermRW},
	}
	if len(rs) != len(want) {
		t.Fatalf("regions = %+v", rs)
	}
	for i := range want {
		if rs[i] != want[i] {
			t.Errorf("region %d = %+v, want %+v", i, rs[i], want[i])
		}
	}
	if PermRW.String() != "rw-" || PermRX.String() != "r-x" || PermNone.String() != "---" {
		t.Error("Perm.String broken")
	}
}

// Property: a write followed by a read at the same address and size always
// returns the written value (masked to size), for arbitrary in-range
// offsets.
func TestReadAfterWriteQuick(t *testing.T) {
	as := NewAddrSpace(4096)
	base := uint64(0x40000)
	if err := as.Map(base, 64*1024, PermRW); err != nil {
		t.Fatal(err)
	}
	f := func(off uint16, v uint64, szSel uint8) bool {
		size := []int{1, 2, 4, 8}[szSel%4]
		addr := base + uint64(off)%((64*1024)-8)
		if fa := as.Write(addr, v, size); fa != nil {
			return false
		}
		got, fa := as.Read(addr, size)
		if fa != nil {
			return false
		}
		mask := ^uint64(0)
		if size < 8 {
			mask = 1<<(8*size) - 1
		}
		return got == v&mask
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestSnapshotRestoreRange(t *testing.T) {
	as := NewAddrSpace(4096)
	base := uint64(0x100000)
	if err := as.Map(base, 4*4096, PermRW); err != nil {
		t.Fatal(err)
	}
	if err := as.Map(base+6*4096, 4096, PermRX); err != nil {
		t.Fatal(err)
	}
	// Dirty pages 0 and 6; page 1..3 stay zero.
	as.WriteAt([]byte("hello"), base+16)
	as.WriteForce([]byte{0xde, 0xad}, base+6*4096+8)

	snap, err := as.SnapshotRange(base, 8*4096)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != 5 {
		t.Fatalf("snapshot has %d pages, want 5 (4 rw + 1 rx)", len(snap))
	}
	zeros, dirty := 0, 0
	for _, pi := range snap {
		if pi.Data == nil {
			zeros++
		} else {
			dirty++
		}
	}
	if dirty != 2 || zeros != 3 {
		t.Errorf("dirty/zero = %d/%d, want 2/3", dirty, zeros)
	}

	// Restore into a different address space at a different base.
	as2 := NewAddrSpace(4096)
	nbase := uint64(0x900000)
	if err := as2.RestoreRange(nbase, snap); err != nil {
		t.Fatal(err)
	}
	var buf [5]byte
	if f := as2.ReadAt(buf[:], nbase+16); f != nil {
		t.Fatalf("read after restore: %v", f)
	}
	if string(buf[:]) != "hello" {
		t.Errorf("restored data = %q", buf[:])
	}
	if !as2.Mapped(nbase+6*4096, 4096, PermExec) {
		t.Error("rx page lost its permissions across restore")
	}
	if as2.Mapped(nbase+4*4096, 4096, PermRead) {
		t.Error("unmapped hole was restored as mapped")
	}
	// Snapshot immutability: scribbling on the restored copy must not
	// affect a second restore.
	as2.WriteAt([]byte("XXXXX"), nbase+16)
	as3 := NewAddrSpace(4096)
	if err := as3.RestoreRange(0, snap); err != nil {
		t.Fatal(err)
	}
	if f := as3.ReadAt(buf[:], 16); f != nil {
		t.Fatal(f)
	}
	if string(buf[:]) != "hello" {
		t.Errorf("snapshot mutated by restore: %q", buf[:])
	}

	// Restoring over an existing mapping must fail.
	if err := as2.RestoreRange(nbase, snap); err == nil {
		t.Error("restore over mapped pages succeeded")
	}
}
