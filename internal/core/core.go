// Package core defines the LFI sandboxing scheme itself: the reserved
// registers, the sandbox memory layout (Figure 1 of the paper), the guard
// sequences, the runtime-call ABI, and the optimization levels. The
// rewriter inserts guards according to these definitions, the verifier
// checks machine code against them, and the runtime lays out sandboxes to
// match.
package core

import (
	"fmt"

	"lfi/internal/arm64"
)

// Reserved registers (§3). Only RegBase and RegScratch are required for
// the scheme; the other three enable optimizations.
const (
	// RegBase (x21) holds the sandbox base address. Its bottom 32 bits are
	// always zero because sandboxes are 4GiB-aligned. Never modified.
	RegBase = arm64.X21
	// RegScratch (x18) always holds a valid sandbox address; the guard
	// writes it and guarded loads/stores read it.
	RegScratch = arm64.X18
	// RegAddr32 (x22) always holds a value with 32 zero upper bits; used
	// for the two-instruction stack pointer guard and address staging.
	RegAddr32 = arm64.X22
	// RegHoist1 and RegHoist2 (x23, x24) always hold valid sandbox
	// addresses; used by redundant guard elimination (§4.3).
	RegHoist1 = arm64.X23
	RegHoist2 = arm64.X24
)

// ReservedRegs lists every register withheld from program allocation.
var ReservedRegs = []arm64.Reg{RegBase, RegScratch, RegAddr32, RegHoist1, RegHoist2}

// IsReserved reports whether r (under any width view) is one of the five
// reserved registers.
func IsReserved(r arm64.Reg) bool {
	if !r.IsGP() {
		return false
	}
	switch r.X() {
	case RegBase, RegScratch, RegAddr32, RegHoist1, RegHoist2:
		return true
	}
	return false
}

// AlwaysValidAddr reports whether r is guaranteed to hold a valid sandbox
// address at all times (so dereferencing it with a small immediate is safe).
func AlwaysValidAddr(r arm64.Reg) bool {
	if !r.Is64() {
		return false
	}
	switch r {
	case RegScratch, RegHoist1, RegHoist2, arm64.SP, arm64.X30:
		return true
	}
	return false
}

// Sandbox layout (Figure 1).
const (
	// SandboxSize is the size of one sandbox slot: 4GiB, so that a 32-bit
	// offset can never escape it.
	SandboxSize = uint64(1) << 32

	// GuardSize is the size of the unmapped guard regions at each end of
	// the sandbox: the smallest multiple of the 16KiB Apple page size
	// greater than 2^15 + 2^10 (see footnote 1 in the paper).
	GuardSize = uint64(48 * 1024)

	// CallTableSize is the one read-only page before the leading guard
	// region holding runtime-call entry addresses (§4.4).
	CallTableSize = uint64(16 * 1024)

	// CodeMargin: executable code must stay at least 128MiB away from the
	// end of the sandbox so direct branches cannot reach a neighbor (§3).
	CodeMargin = uint64(128) << 20

	// MinCodeOffset is the first offset usable for code: call-table page,
	// then the leading guard region.
	MinCodeOffset = CallTableSize + GuardSize

	// MaxCodeOffset is the first offset past the allowed code region.
	MaxCodeOffset = SandboxSize - CodeMargin
)

// AddrBits is the usable virtual address width (48-bit userspace).
const AddrBits = 48

// MaxSandboxes is the number of 4GiB slots in the 48-bit space (§3): 64Ki,
// one of which the runtime occupies.
const MaxSandboxes = int(1) << (AddrBits - 32)

// SlotBase returns the base address of sandbox slot i. Slot bases are
// 4GiB-aligned, adjacent, and start at slot 1 (slot 0 is kept unmapped so
// null-page dereferences in host code cannot alias a sandbox).
func SlotBase(i int) uint64 { return uint64(i) * SandboxSize }

// SlotIndex returns the slot containing addr.
func SlotIndex(addr uint64) int { return int(addr >> 32) }

// Runtime calls (§4.4 and §5.3). The call table is an array of 8-byte
// entries at the very start of the sandbox; entry n lives at [x21, #8*n].
// A runtime call is:
//
//	ldr x30, [x21, #8*n]
//	blr x30
//
// The loaded address points outside the sandbox into the runtime's
// host-call region; the verifier permits this exact pairing because blr
// x30 immediately transfers to the runtime, which restores the x30
// invariant before returning.
type RuntimeCall int

const (
	RTExit RuntimeCall = iota
	RTWrite
	RTRead
	RTOpen
	RTClose
	RTBrk
	RTMmap
	RTMunmap
	RTFork
	RTWait
	RTYield
	RTGetPID
	RTPipe
	RTKill
	RTUsleep
	// Cross-sandbox IPC (§5.3): runtime-mediated sockets. RTSocket creates
	// an endpoint (stream, datagram, or shared ring channel), RTBind
	// attaches it to a runtime-wide port, RTConnect/RTAccept establish
	// connections, and RTSend/RTRecv move bytes. RTRecv blocks (parking
	// the process in the scheduler) until data or EOF; RTSend hands off
	// directly to a blocked receiver on the paper's fast yield path.
	RTSocket
	RTBind
	RTConnect
	RTAccept
	RTSend
	RTRecv
	// RTVSubmit is the vectored runtime call (near-zero-cost transitions):
	// the sandbox submits a batch of I/O/IPC operations in one trap via a
	// fixed-layout submission ring in its own memory. Arguments are the
	// ring's sandbox offset and the number of slots; the ring is validated
	// once per batch against the guard windows, ops execute in order with
	// per-op status written back into each slot, and the call returns the
	// number of ops completed. Blocking ops park the whole batch (resumed
	// in place); partial failure is well-defined per slot.
	RTVSubmit
	NumRuntimeCalls
)

// BlockClass describes a runtime call's scheduling behavior: whether
// dispatching it can park the calling process or switch directly to
// another sandbox. The fuzzer and the dispatch-sync test consume this.
type BlockClass int

const (
	// BlockNever: the call always returns to the caller without parking.
	BlockNever BlockClass = iota
	// BlockMay: the call may park the caller until a wakeup (read on an
	// empty pipe, recv with no data, wait with live children, usleep).
	BlockMay
	// BlockSwitch: the call may transfer control directly to another
	// sandbox on the fast-yield/handoff path without a scheduler pass.
	BlockSwitch
	// BlockExit: the call terminates the process; it never returns.
	BlockExit
)

// CallInfo is one row of the runtime-call ABI: the call's number, its
// canonical name, how many argument registers (x0..) it consumes, and its
// blocking class. The table is the single source of truth for the ABI;
// String(), the dispatch layer, and the sync tests all derive from it.
type CallInfo struct {
	Num   RuntimeCall
	Name  string
	Args  int
	Block BlockClass
}

// CallTable is the declarative runtime-call ABI, indexed by call number.
var CallTable = [NumRuntimeCalls]CallInfo{
	RTExit:    {RTExit, "exit", 1, BlockExit},
	RTWrite:   {RTWrite, "write", 3, BlockNever},
	RTRead:    {RTRead, "read", 3, BlockMay},
	RTOpen:    {RTOpen, "open", 2, BlockNever},
	RTClose:   {RTClose, "close", 1, BlockNever},
	RTBrk:     {RTBrk, "brk", 1, BlockNever},
	RTMmap:    {RTMmap, "mmap", 2, BlockNever},
	RTMunmap:  {RTMunmap, "munmap", 2, BlockNever},
	RTFork:    {RTFork, "fork", 0, BlockNever},
	RTWait:    {RTWait, "wait", 1, BlockMay},
	RTYield:   {RTYield, "yield", 1, BlockSwitch},
	RTGetPID:  {RTGetPID, "getpid", 0, BlockNever},
	RTPipe:    {RTPipe, "pipe", 1, BlockNever},
	RTKill:    {RTKill, "kill", 1, BlockNever},
	RTUsleep:  {RTUsleep, "usleep", 1, BlockMay},
	RTSocket:  {RTSocket, "socket", 2, BlockNever},
	RTBind:    {RTBind, "bind", 2, BlockNever},
	RTConnect: {RTConnect, "connect", 2, BlockNever},
	RTAccept:  {RTAccept, "accept", 1, BlockMay},
	RTSend:    {RTSend, "send", 3, BlockSwitch},
	RTRecv:    {RTRecv, "recv", 3, BlockMay},
	RTVSubmit: {RTVSubmit, "vsubmit", 2, BlockSwitch},
}

func (rc RuntimeCall) String() string {
	if rc >= 0 && rc < NumRuntimeCalls {
		return CallTable[rc].Name
	}
	return fmt.Sprintf("rtcall(%d)", int(rc))
}

// Vectored submission ring layout (RTVSubmit). The ring is an array of
// fixed-size slots in sandbox memory; each slot is one operation. The
// runtime validates the whole ring against the sandbox bounds once per
// batch, then reads op/fd/buf/len/flags from each slot and writes the
// per-op status word back.
const (
	// VSubmitSlotSize is the byte size of one submission slot.
	VSubmitSlotSize = uint64(64)
	// VSubmitMaxOps bounds a single batch.
	VSubmitMaxOps = uint64(64)

	// Field offsets within a slot.
	VOffOp     = uint64(0)  // operation code (VOp*)
	VOffFD     = uint64(8)  // file/socket descriptor
	VOffBuf    = uint64(16) // buffer address (sandbox offset)
	VOffLen    = uint64(24) // buffer length
	VOffFlags  = uint64(32) // per-op flags (VFlag*)
	VOffStatus = uint64(40) // written back: bytes moved or -errno

	// Operation codes.
	VOpNop   = uint64(0)
	VOpSend  = uint64(1)
	VOpRecv  = uint64(2)
	VOpWrite = uint64(3)
	VOpRead  = uint64(4)

	// VFlagNonblock makes a would-block op fail with -EAGAIN in its
	// status word instead of parking the batch.
	VFlagNonblock = uint64(1)
)

// TableOffset returns the call-table byte offset of rc.
func (rc RuntimeCall) TableOffset() int64 { return int64(rc) * 8 }

// MaxTableOffset is the highest valid call-table offset (exclusive).
const MaxTableOffset = int64(NumRuntimeCalls) * 8

// Context words on the call-table page used only by the WebAssembly
// baseline instrumentation (internal/wasmbase): the sandbox ("linear
// memory") base that non-pinned Wasm engines reload from their context
// struct, and the type tag checked on indirect calls. Verified LFI code
// cannot address these (the verifier restricts [x21, #n] to the call
// table), and they contain no sandbox secrets.
const (
	CtxHeapBaseOff = uint64(2048)
	CtxTypeTagOff  = uint64(2056)
	CtxTypeTag     = uint64(7)
)

// OptLevel selects which rewriter optimizations are applied (§6.1).
type OptLevel int

const (
	// O0 uses only the basic two-cycle add guard, plus the stack pointer
	// handling that correctness requires.
	O0 OptLevel = iota
	// O1 adds zero-instruction guards: memory operations are rewritten to
	// the guarded [x21, wN, uxtw] addressing mode (Table 3).
	O1
	// O2 adds redundant guard elimination using the hoisting registers.
	O2
)

func (o OptLevel) String() string {
	switch o {
	case O0:
		return "O0"
	case O1:
		return "O1"
	case O2:
		return "O2"
	}
	return fmt.Sprintf("O%d", int(o))
}

// Options configures the rewriter.
type Options struct {
	Opt OptLevel

	// NoLoads disables sandboxing of loads ("fault isolation" of stores
	// and jumps only, ~1% overhead per §6.1).
	NoLoads bool

	// DisableSPOpts turns off the §4.2 stack-pointer guard elisions
	// (pre/post-index and same-basic-block); used by the ablation bench.
	DisableSPOpts bool
}

// Guard sequence builders, shared by the rewriter and tests.

// GuardInto returns the invariant-preserving guard that forces the value
// of src into the sandbox, leaving the result in dst:
//
//	add dst, x21, wSRC, uxtw
//
// dst must be a register for which the verifier tracks the always-valid
// invariant (x18, x23, x24) or x30-restoring sequences.
func GuardInto(dst, src arm64.Reg) arm64.Inst {
	return arm64.Inst{
		Op: arm64.ADD, Rd: dst, Rn: RegBase, Rm: src.W(),
		Ra: arm64.RegNone, Ext: arm64.ExtUXTW, Amount: -1,
	}
}

// SPGuard returns the two-instruction stack-pointer guard (§4.2):
//
//	mov w22, wsp
//	add sp, x21, x22
func SPGuard() []arm64.Inst {
	return []arm64.Inst{
		// mov w22, wsp is an alias of add w22, wsp, #0.
		{Op: arm64.ADD, Rd: RegAddr32.W(), Rn: arm64.WSP, Rm: arm64.RegNone, Ra: arm64.RegNone, Amount: -1},
		{Op: arm64.ADD, Rd: arm64.SP, Rn: RegBase, Rm: RegAddr32, Ra: arm64.RegNone, Amount: -1},
	}
}

// IsGuard reports whether inst is the canonical guard writing dst
// (add dst, x21, wN, uxtw).
func IsGuard(inst *arm64.Inst, dst arm64.Reg) bool {
	return inst.Op == arm64.ADD &&
		inst.Rd == dst &&
		inst.Rn == RegBase &&
		inst.Rm != arm64.RegNone && inst.Rm.Is32() && !inst.Rm.IsSP() &&
		inst.Ext == arm64.ExtUXTW &&
		(inst.Amount <= 0)
}
