package core

import (
	"testing"

	"lfi/internal/arm64"
)

func TestSandboxLayoutInvariants(t *testing.T) {
	// Figure 1's arithmetic.
	if SandboxSize != 1<<32 {
		t.Error("sandbox must be exactly 4GiB (32-bit offsets cannot escape)")
	}
	if GuardSize%(16*1024) != 0 {
		t.Error("guard size must be a multiple of the 16KiB page size")
	}
	// Footnote 1: the guard must cover 2^15 + 2^10 (max immediate plus
	// max pre/post drift).
	if GuardSize <= (1<<15)+(1<<10) {
		t.Errorf("guard size %d does not cover 2^15 + 2^10", GuardSize)
	}
	if MinCodeOffset != CallTableSize+GuardSize {
		t.Error("code must start after the call table and leading guard")
	}
	if MaxCodeOffset != SandboxSize-CodeMargin {
		t.Error("code must end 128MiB before the sandbox does")
	}
	if CodeMargin != 128<<20 {
		t.Error("direct branches reach ±128MiB; the margin must match")
	}
	// §3: 64Ki sandboxes in 48 bits.
	if MaxSandboxes*1 != 1<<16 {
		t.Errorf("MaxSandboxes = %d", MaxSandboxes)
	}
	if SlotBase(MaxSandboxes-1)+SandboxSize != 1<<AddrBits {
		t.Error("slots must exactly tile the 48-bit space")
	}
	for _, i := range []int{0, 1, 77, MaxSandboxes - 1} {
		if SlotBase(i)%SandboxSize != 0 {
			t.Errorf("slot %d base not 4GiB aligned", i)
		}
		if SlotIndex(SlotBase(i)) != i || SlotIndex(SlotBase(i)+SandboxSize-1) != i {
			t.Errorf("SlotIndex inconsistent for slot %d", i)
		}
	}
}

func TestReservedRegisterSet(t *testing.T) {
	if len(ReservedRegs) != 5 {
		t.Fatalf("paper reserves five registers, have %d", len(ReservedRegs))
	}
	want := map[arm64.Reg]bool{
		arm64.X18: true, arm64.X21: true, arm64.X22: true,
		arm64.X23: true, arm64.X24: true,
	}
	for _, r := range ReservedRegs {
		if !want[r] {
			t.Errorf("unexpected reserved register %v", r)
		}
		if !IsReserved(r) || !IsReserved(r.W()) {
			t.Errorf("IsReserved(%v) inconsistent across views", r)
		}
	}
	for _, r := range []arm64.Reg{arm64.X0, arm64.X17, arm64.X19, arm64.X25,
		arm64.X30, arm64.SP, arm64.XZR, arm64.DReg(21)} {
		if IsReserved(r) {
			t.Errorf("IsReserved(%v) = true", r)
		}
	}
}

func TestAlwaysValidAddrSet(t *testing.T) {
	for _, r := range []arm64.Reg{RegScratch, RegHoist1, RegHoist2, arm64.SP, arm64.X30} {
		if !AlwaysValidAddr(r) {
			t.Errorf("AlwaysValidAddr(%v) = false", r)
		}
	}
	// x21 holds the base, not a dereference-with-any-immediate register
	// in the verifier's sense (only the call-table idiom may use it);
	// x22 holds a 32-bit value, not an address; w views never qualify.
	for _, r := range []arm64.Reg{RegBase, RegAddr32, arm64.X0,
		RegScratch.W(), arm64.WSP} {
		if AlwaysValidAddr(r) {
			t.Errorf("AlwaysValidAddr(%v) = true", r)
		}
	}
}

func TestGuardConstruction(t *testing.T) {
	g := GuardInto(RegScratch, arm64.X5)
	if g.String() != "add x18, x21, w5, uxtw" {
		t.Errorf("guard = %q", g.String())
	}
	if !IsGuard(&g, RegScratch) {
		t.Error("GuardInto output not recognized by IsGuard")
	}
	if IsGuard(&g, RegHoist1) {
		t.Error("IsGuard matched the wrong destination")
	}
	// Guards must encode (they reach the binary).
	if _, err := arm64.Encode(&g); err != nil {
		t.Errorf("guard does not encode: %v", err)
	}
	// Near-miss variants are not guards.
	for _, bad := range []string{
		"add x18, x21, x5",          // 64-bit index: no extension
		"add x18, x20, w5, uxtw",    // wrong base
		"add x18, x21, w5, sxtw",    // wrong extension
		"add x18, x21, w5, uxtw #2", // scaled
		"adds x18, x21, w5, uxtw",   // sets flags (different op)
		"sub x18, x21, w5, uxtw",
	} {
		inst, err := arm64.ParseInst(bad)
		if err != nil {
			t.Fatalf("parse %q: %v", bad, err)
		}
		if IsGuard(&inst, RegScratch) {
			t.Errorf("IsGuard accepted %q", bad)
		}
	}
}

func TestSPGuardSequence(t *testing.T) {
	seq := SPGuard()
	if len(seq) != 2 {
		t.Fatalf("sp guard is %d instructions, want 2", len(seq))
	}
	if seq[0].String() != "add w22, wsp, #0" {
		t.Errorf("sp guard[0] = %q", seq[0].String())
	}
	if seq[1].String() != "add sp, x21, x22" {
		t.Errorf("sp guard[1] = %q", seq[1].String())
	}
	for i := range seq {
		if _, err := arm64.Encode(&seq[i]); err != nil {
			t.Errorf("sp guard[%d] does not encode: %v", i, err)
		}
	}
}

func TestRuntimeCallTable(t *testing.T) {
	if NumRuntimeCalls <= 0 || MaxTableOffset != int64(NumRuntimeCalls)*8 {
		t.Error("table size arithmetic broken")
	}
	if uint64(MaxTableOffset) > CallTableSize {
		t.Error("call table does not fit in its page")
	}
	seen := map[string]bool{}
	for rc := RuntimeCall(0); rc < NumRuntimeCalls; rc++ {
		name := rc.String()
		if name == "" || seen[name] {
			t.Errorf("call %d has bad or duplicate name %q", rc, name)
		}
		seen[name] = true
		if rc.TableOffset() != int64(rc)*8 {
			t.Errorf("call %d offset %d", rc, rc.TableOffset())
		}
	}
	if RTExit.String() != "exit" || RTYield.String() != "yield" || RTVSubmit.String() != "vsubmit" {
		t.Error("canonical call names broken")
	}
	if RuntimeCall(999).String() == "" {
		t.Error("out-of-range call must still print")
	}
	// The declarative ABI table must be fully populated and self-indexed.
	for rc := RuntimeCall(0); rc < NumRuntimeCalls; rc++ {
		ci := CallTable[rc]
		if ci.Num != rc {
			t.Errorf("CallTable[%d].Num = %d (table not indexed by number)", rc, ci.Num)
		}
		if ci.Name == "" {
			t.Errorf("CallTable[%d] has no name", rc)
		}
		if ci.Args < 0 || ci.Args > 3 {
			t.Errorf("call %v takes %d args; the ABI passes at most x0..x2", rc, ci.Args)
		}
		if ci.Block < BlockNever || ci.Block > BlockExit {
			t.Errorf("call %v has invalid block class %d", rc, ci.Block)
		}
	}
	if CallTable[RTExit].Block != BlockExit {
		t.Error("exit must be BlockExit")
	}
	if CallTable[RTSend].Block != BlockSwitch || CallTable[RTVSubmit].Block != BlockSwitch {
		t.Error("send/vsubmit ride the direct-handoff path; must be BlockSwitch")
	}
	// The Wasm-baseline context words live in the call-table page but
	// beyond the dispatch entries.
	if CtxHeapBaseOff < uint64(MaxTableOffset) || CtxTypeTagOff >= CallTableSize {
		t.Error("context words collide with the dispatch table or page")
	}
}

func TestVSubmitRingLayout(t *testing.T) {
	// Every field must fit in its slot, status last among the defined
	// fields so hostile overlapping writes cannot corrupt already-parsed
	// inputs of the same op.
	offs := []uint64{VOffOp, VOffFD, VOffBuf, VOffLen, VOffFlags, VOffStatus}
	for i, off := range offs {
		if off%8 != 0 || off+8 > VSubmitSlotSize {
			t.Errorf("field %d at offset %d breaks slot layout", i, off)
		}
		for j := i + 1; j < len(offs); j++ {
			if off == offs[j] {
				t.Errorf("fields %d and %d overlap at %d", i, j, off)
			}
		}
	}
	// A maximal ring must be addressable with 32-bit sandbox offsets and
	// far smaller than the sandbox itself.
	if VSubmitMaxOps*VSubmitSlotSize >= SandboxSize {
		t.Error("maximal ring cannot fit in a sandbox")
	}
	if VSubmitMaxOps == 0 || VSubmitSlotSize == 0 {
		t.Error("degenerate ring constants")
	}
}

func TestOptLevelStrings(t *testing.T) {
	if O0.String() != "O0" || O1.String() != "O1" || O2.String() != "O2" {
		t.Error("OptLevel strings broken")
	}
	if OptLevel(7).String() != "O7" {
		t.Error("unknown level fallback broken")
	}
}
