package core

// Shared runtime memory-layout model. The runtime (internal/lfirt) lays
// sandboxes out with these constants, the fuzzing watchdog
// (internal/fuzz) builds its containment oracle from them, and the
// soundness prover (internal/prove) checks the verifier's acceptance
// conditions against them. Keeping one definition means the oracles
// cannot silently drift from the real layout.

const (
	// DefaultPageSize is the page granularity the runtime and watchdog
	// map memory at: the 16KiB Apple page size the paper targets.
	DefaultPageSize = uint64(16 * 1024)

	// HostCallStride is the byte stride between entries in the runtime's
	// host-call region. Call-table entry n holds hostBase + n*stride.
	HostCallStride = uint64(16)

	// StackTopOff is the sandbox offset of the initial stack pointer:
	// the top of the addressable slot, just below the trailing guard.
	StackTopOff = SandboxSize - GuardSize

	// SPMaxDrift is the headroom the verifier reserves on sp-based
	// immediate offsets: sp-based accesses are bounded by
	// GuardSize-16-SPMaxDrift above and GuardSize-SPMaxDrift below,
	// where plain always-valid bases (x18/x23/x24/x30, confined to
	// [slot, slot+SandboxSize)) get the full GuardSize-16 / GuardSize.
	//
	// The headroom is needed because sp is not confined to the slot:
	// the §4.2 elisions let one un-reguarded `add/sub sp, sp, #imm`
	// (imm < 1024) be outstanding, and index writeback moves sp by up
	// to ±1024 more. Chains of elided adjustments interleaved with
	// mapped accesses give the asymmetric at-access envelope
	//
	//	sp ∈ [slot - (offMax + 1023), slot + SandboxSize-1 + 2047]
	//
	// where offMax is the largest accepted positive sp offset: an
	// access only retires (letting the chain continue) if sp+offset is
	// mapped, which bounds sp below by -offset and above by the slot
	// top plus the widest encodable negative offset (1024). With
	// offMax = GuardSize-16-SPMaxDrift both envelope ends plus the
	// offset bounds stay inside the guard bands; internal/prove
	// recomputes this fixpoint from the swept encodings and
	// TestSPDriftFixpoint pins the arithmetic.
	SPMaxDrift = uint64(2048)
)

// HostCallRegionSize is the size of the runtime's host-call landing
// region: one stride per runtime call.
const HostCallRegionSize = uint64(NumRuntimeCalls) * HostCallStride

// DataWindow returns the half-open address window [lo, hi) that a data
// access issued by verified code in the slot based at base may touch.
// Signed immediates from a base at a slot edge land in the unmapped
// guard bands, so the window is the slot plus one guard band each side.
func DataWindow(base uint64) (lo, hi uint64) {
	return base - GuardSize, base + SandboxSize + GuardSize
}

// ExecWindow returns the half-open address window [lo, hi) that an
// instruction fetch in the slot based at base may touch. Direct
// branches reach at most ±128MiB, and code stops CodeMargin before the
// slot end, so fetches stay within one code margin below the slot.
func ExecWindow(base uint64) (lo, hi uint64) {
	return base - CodeMargin, base + SandboxSize
}
