package core

import "testing"

// TestLayoutConstants pins the shared layout numbers. The runtime, the
// fuzzing watchdog, and the soundness prover all consume these; a change
// here must be deliberate and reviewed against all three.
func TestLayoutConstants(t *testing.T) {
	if DefaultPageSize != 16*1024 {
		t.Errorf("DefaultPageSize = %d, want 16KiB", DefaultPageSize)
	}
	if HostCallStride != 16 {
		t.Errorf("HostCallStride = %d, want 16", HostCallStride)
	}
	if HostCallRegionSize != uint64(NumRuntimeCalls)*16 {
		t.Errorf("HostCallRegionSize = %d, want %d", HostCallRegionSize, uint64(NumRuntimeCalls)*16)
	}
	if StackTopOff != SandboxSize-GuardSize {
		t.Errorf("StackTopOff = %#x, want just below the trailing guard", StackTopOff)
	}
	if StackTopOff%DefaultPageSize != 0 {
		t.Errorf("StackTopOff = %#x is not page-aligned", StackTopOff)
	}
	if GuardSize%DefaultPageSize != 0 {
		t.Errorf("GuardSize = %d is not a whole number of pages", GuardSize)
	}
	if SPMaxDrift != 2048 {
		t.Errorf("SPMaxDrift = %d, want 2048", SPMaxDrift)
	}
}

// TestSPDriftFixpoint re-derives the sp at-access envelope from the
// verifier's acceptance conditions and checks that every sp-based access
// it admits stays inside the data window. sp is not confined to the
// slot: one add/sub sp,sp,#imm with imm < 1024 may be outstanding (the
// same-basic-block elision), index writeback moves sp by up to ±1024,
// and chains of elided adjustments interleaved with mapped accesses let
// sp drift as far as the offsets themselves reach. The fixpoint over
// "access retires only if sp+offset lands in the mapped slot" is:
//
//	sp_lo = -(offPosMax + elideMax)   // mapped access at +offPosMax, then one more elided sub
//	sp_hi = slotTop + max(offNegMax, writebackMax) + elideMax
//
// internal/prove recomputes the same fixpoint from the swept encodings;
// this test pins the arithmetic against the layout constants.
func TestSPDriftFixpoint(t *testing.T) {
	const elideMax = 1023     // verifier: add/sub sp, sp, #imm needs imm < 1024
	const writebackMax = 1024 // widest encodable pre/post-index immediate
	const offNegMax = 1024    // most negative encodable sp offset (q-pair imm7)
	const qLast = 15          // last byte of a 16-byte access

	offPosMax := int64(GuardSize) - 16 - int64(SPMaxDrift)
	spImmLo := -(int64(GuardSize) - int64(SPMaxDrift))
	if offNegMax > -spImmLo {
		t.Fatalf("encodable negative offset %d exceeds the verifier bound %d", offNegMax, -spImmLo)
	}

	slotTop := int64(SandboxSize) - 1 // slot-relative
	spLo := -(offPosMax + elideMax)
	spHi := slotTop + max(offNegMax, writebackMax) + elideMax

	// Data window, slot-relative and inclusive.
	winLo := -int64(GuardSize)
	winHi := int64(SandboxSize) + int64(GuardSize) - 1
	if worst := spLo - offNegMax; worst < winLo {
		t.Errorf("sp low reach escapes: worst %#x < window lo %#x", worst, winLo)
	}
	if worst := spHi + offPosMax + qLast; worst > winHi {
		t.Errorf("sp high reach escapes: worst %#x > window hi %#x", worst, winHi)
	}
}

// TestWindows pins the containment windows the watchdog and prover use.
func TestWindows(t *testing.T) {
	base := SlotBase(7)
	if lo, hi := DataWindow(base); lo != base-GuardSize || hi != base+SandboxSize+GuardSize {
		t.Errorf("DataWindow = [%#x, %#x)", lo, hi)
	}
	if lo, hi := ExecWindow(base); lo != base-CodeMargin || hi != base+SandboxSize {
		t.Errorf("ExecWindow = [%#x, %#x)", lo, hi)
	}
}
