package pool

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"lfi/internal/core"
	"lfi/internal/lfirt"
	"lfi/internal/progs"
)

// tenantSrc builds a program that writes a unique marker and exits with a
// unique status, so output or state bleed between sandboxes is detectable.
func tenantSrc(id int) string {
	msg := fmt.Sprintf("tenant-%02d says hello\n", id)
	return fmt.Sprintf(`
_start:
	mov x0, #1
	adrp x1, msg
	add x1, x1, :lo12:msg
	mov x2, #%d
%s%s
.rodata
msg:
	.ascii %q
`, len(msg), progs.RTCall(core.RTWrite), progs.ExitCode(id), msg)
}

func tenantOut(id int) string { return fmt.Sprintf("tenant-%02d says hello\n", id) }

const spinSrc = `
_start:
spin:
	b spin
`

func mustImage(t testing.TB, p *Pool, src string) *Image {
	t.Helper()
	img, err := p.BuildImage(src, core.Options{Opt: core.O2})
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestPoolServesJobs(t *testing.T) {
	p := New(Config{Workers: 2})
	defer p.Close()
	img := mustImage(t, p, tenantSrc(7))
	res, err := p.Do(Job{Image: img})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Status != 7 {
		t.Errorf("status = %d, want 7", res.Status)
	}
	if got := string(res.Stdout); got != tenantOut(7) {
		t.Errorf("stdout = %q", got)
	}
	if res.Instrs == 0 {
		t.Error("no instructions accounted")
	}
}

func TestImageCacheDeduplicates(t *testing.T) {
	p := New(Config{Workers: 1})
	defer p.Close()
	a := mustImage(t, p, tenantSrc(1))
	b := mustImage(t, p, tenantSrc(1))
	if a != b {
		t.Error("identical source built two images")
	}
	c := mustImage(t, p, tenantSrc(2))
	if a == c {
		t.Error("distinct sources shared an image")
	}
	hits, misses := p.Cache().HitRate()
	if hits != 1 || misses != 2 {
		t.Errorf("hits/misses = %d/%d, want 1/2", hits, misses)
	}
	// Different options produce a different key for the same source.
	d, err := p.BuildImage(tenantSrc(1), core.Options{Opt: core.O0})
	if err != nil {
		t.Fatal(err)
	}
	if d == a {
		t.Error("different options shared an image")
	}
}

func TestWarmHitAfterFirstServe(t *testing.T) {
	p := New(Config{Workers: 1})
	defer p.Close()
	img := mustImage(t, p, tenantSrc(3))
	r1, err := p.Do(Job{Image: img})
	if err != nil || r1.Err != nil {
		t.Fatal(err, r1)
	}
	if r1.WarmHit {
		t.Error("first serve cannot be a warm hit")
	}
	r2, err := p.Do(Job{Image: img})
	if err != nil || r2.Err != nil {
		t.Fatal(err, r2)
	}
	if !r2.WarmHit {
		t.Error("second serve should hit the warm pool")
	}
	if string(r2.Stdout) != tenantOut(3) || r2.Status != 3 {
		t.Errorf("warm serve: status=%d stdout=%q", r2.Status, r2.Stdout)
	}
	st := p.Stats()
	if st.WarmHits != 1 {
		t.Errorf("WarmHits = %d, want 1", st.WarmHits)
	}
}

func TestWarmPoolShrinksLRU(t *testing.T) {
	p := New(Config{Workers: 1, MaxWarm: 2, WarmPerImage: 1})
	defer p.Close()
	imgs := []*Image{
		mustImage(t, p, tenantSrc(1)),
		mustImage(t, p, tenantSrc(2)),
		mustImage(t, p, tenantSrc(3)),
	}
	// Serve 1, 2, 3: replenishing 3 pushes the warm count over MaxWarm,
	// evicting image 1 (least recently served).
	for _, img := range imgs {
		if res, err := p.Do(Job{Image: img}); err != nil || res.Err != nil {
			t.Fatal(err, res)
		}
	}
	res, err := p.Do(Job{Image: imgs[0]})
	if err != nil || res.Err != nil {
		t.Fatal(err, res)
	}
	if res.WarmHit {
		t.Error("evicted image should not warm-hit")
	}
	res, err = p.Do(Job{Image: imgs[2]})
	if err != nil || res.Err != nil {
		t.Fatal(err, res)
	}
	if !res.WarmHit {
		t.Error("recently served image should have stayed warm")
	}
}

func TestAdmissionControlRejects(t *testing.T) {
	p := New(Config{Workers: 1, QueueDepth: 1})
	defer p.Close()
	spin := mustImage(t, p, spinSrc)
	quick := mustImage(t, p, tenantSrc(1))

	// Occupy the single worker with a multi-million-instruction job, then
	// flood the depth-1 queue: admission control must reject rather than
	// grow a backlog.
	busy, err := p.Submit(Job{Image: spin, Budget: 3_000_000})
	if err != nil {
		t.Fatal(err)
	}
	var tickets []*Ticket
	sawReject := false
	for i := 0; i < 1000 && !sawReject; i++ {
		tk, err := p.Submit(Job{Image: quick})
		switch {
		case err == nil:
			tickets = append(tickets, tk)
		case errors.Is(err, ErrQueueFull):
			sawReject = true
		default:
			t.Fatal(err)
		}
	}
	if !sawReject {
		t.Error("queue never rejected under sustained overload")
	}
	if res := busy.Wait(); !errors.As(res.Err, new(*lfirt.ErrDeadline)) {
		t.Errorf("spin job: %v", res.Err)
	}
	for _, tk := range tickets {
		if res := tk.Wait(); res.Err != nil {
			t.Errorf("accepted job failed: %v", res.Err)
		}
	}
	if st := p.Stats(); st.Rejected == 0 {
		t.Error("Stats.Rejected not incremented")
	}
}

func TestDeadlineJobReported(t *testing.T) {
	p := New(Config{Workers: 1})
	defer p.Close()
	spin := mustImage(t, p, spinSrc)
	res, err := p.Do(Job{Image: spin, Budget: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	var de *lfirt.ErrDeadline
	if !errors.As(res.Err, &de) {
		t.Fatalf("err = %v, want ErrDeadline", res.Err)
	}
	// The worker survives the runaway: the next job runs normally.
	quick := mustImage(t, p, tenantSrc(5))
	res, err = p.Do(Job{Image: quick})
	if err != nil || res.Err != nil || res.Status != 5 {
		t.Fatalf("after deadline: res=%+v err=%v", res, err)
	}
	st := p.Stats()
	if st.Deadlines != 1 {
		t.Errorf("Deadlines = %d, want 1", st.Deadlines)
	}
}

func TestColdJobBypassesSnapshot(t *testing.T) {
	p := New(Config{Workers: 1})
	defer p.Close()
	img := mustImage(t, p, tenantSrc(4))
	res, err := p.Do(Job{Image: img, Cold: true})
	if err != nil || res.Err != nil {
		t.Fatal(err, res)
	}
	if res.WarmHit {
		t.Error("cold job reported a warm hit")
	}
	if res.Status != 4 || string(res.Stdout) != tenantOut(4) {
		t.Errorf("cold serve: status=%d stdout=%q", res.Status, res.Stdout)
	}
	if st := p.Stats(); st.ColdLoads != 1 {
		t.Errorf("ColdLoads = %d, want 1", st.ColdLoads)
	}
}

func TestSubmitAfterClose(t *testing.T) {
	p := New(Config{Workers: 1})
	img := mustImage(t, p, tenantSrc(1))
	p.Close()
	p.Close() // double close is safe
	if _, err := p.Submit(Job{Image: img}); !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v, want ErrClosed", err)
	}
}

// TestCloseSubmitRace hammers SubmitCtx against a racing Close (plus
// concurrent context cancellation). The contract under test: a job
// admitted just as the pool closes must resolve — with a real result,
// ErrClosed, ErrCanceled, or a deadline kill — and never hang; the queue
// accounting must settle at zero with no double decrements. Run with -race.
func TestCloseSubmitRace(t *testing.T) {
	const rounds = 6
	for round := 0; round < rounds; round++ {
		p := New(Config{Workers: 2, QueueDepth: 4})
		img := mustImage(t, p, tenantSrc(1))
		ctx, cancel := context.WithCancel(context.Background())

		var wg sync.WaitGroup
		tickets := make(chan *Ticket, 4*60)
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 60; i++ {
					c := context.Background()
					if g%2 == 0 {
						c = ctx // half the submitters race cancellation too
					}
					tk, err := p.SubmitCtx(c, Job{Image: img})
					if err != nil {
						if !errors.Is(err, ErrClosed) && !errors.Is(err, ErrQueueFull) &&
							!errors.Is(err, ErrCanceled) {
							t.Errorf("round %d: submit error %v", round, err)
						}
						continue
					}
					tickets <- tk
				}
			}(g)
		}
		// Fire the hostile events mid-stream.
		go cancel()
		closed := make(chan struct{})
		go func() { p.Close(); close(closed) }()

		wg.Wait()
		close(tickets)
		for tk := range tickets {
			select {
			case res := <-tk.ch:
				err := res.Err
				var de *lfirt.ErrDeadline
				if err != nil && !errors.Is(err, ErrClosed) && !errors.Is(err, ErrCanceled) &&
					!errors.As(err, &de) {
					t.Errorf("round %d: ticket resolved with %v", round, err)
				}
			case <-time.After(30 * time.Second):
				t.Fatalf("round %d: admitted ticket never resolved: job hung across Close", round)
			}
		}
		select {
		case <-closed:
		case <-time.After(30 * time.Second):
			t.Fatalf("round %d: Close hung", round)
		}
		p.Close() // idempotent
		if d := p.m.queueDepth.Value(); d != 0 {
			t.Fatalf("round %d: queue depth %d after close; accounting leaked", round, d)
		}
		if st := p.Stats(); st.Submitted != st.Completed {
			t.Fatalf("round %d: submitted %d != completed %d after close",
				round, st.Submitted, st.Completed)
		}
	}
}

// TestStressNoBleed is the concurrency gate: 8 workers serve hundreds of
// jobs over a mix of images (including runaways) from parallel
// submitters. Every result must carry exactly its own image's output and
// exit status — any cross-sandbox bleed of output or state fails the
// match. Run with -race.
func TestStressNoBleed(t *testing.T) {
	const (
		workers    = 8
		submitters = 4
		perSub     = 30
		nImages    = 8
	)
	p := New(Config{Workers: workers, QueueDepth: 16, MaxWarm: 4})
	defer p.Close()

	imgs := make([]*Image, nImages)
	for i := range imgs {
		imgs[i] = mustImage(t, p, tenantSrc(i))
	}
	spin := mustImage(t, p, spinSrc)

	var wg sync.WaitGroup
	errc := make(chan error, submitters*perSub)
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < perSub; i++ {
				id := (seed*perSub + i) % nImages
				job := Job{Image: imgs[id]}
				if i%10 == 9 {
					job = Job{Image: spin, Budget: 50_000} // runaway in the mix
				}
				// Retry on admission-control rejection: the queue is
				// bounded by design, so callers back off and resubmit.
				var tk *Ticket
				for {
					var err error
					tk, err = p.Submit(job)
					if err == nil {
						break
					}
					if !errors.Is(err, ErrQueueFull) {
						errc <- err
						return
					}
				}
				res := tk.Wait()
				if job.Image == spin {
					if !errors.As(res.Err, new(*lfirt.ErrDeadline)) {
						errc <- fmt.Errorf("spin job: err=%v", res.Err)
					}
					continue
				}
				if res.Err != nil {
					errc <- fmt.Errorf("image %d: %v", id, res.Err)
					continue
				}
				if res.Status != id {
					errc <- fmt.Errorf("image %d: exit status %d (state bleed?)", id, res.Status)
				}
				if got := string(res.Stdout); got != tenantOut(id) {
					errc <- fmt.Errorf("image %d: stdout %q (output bleed?)", id, got)
				}
				if len(res.Stderr) != 0 {
					errc <- fmt.Errorf("image %d: unexpected stderr %q", id, res.Stderr)
				}
			}
		}(s)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	st := p.Stats()
	total := uint64(submitters * perSub)
	if st.Completed != total {
		t.Errorf("Completed = %d, want %d", st.Completed, total)
	}
	wantDeadlines := uint64(submitters * (perSub / 10))
	if st.Deadlines != wantDeadlines {
		t.Errorf("Deadlines = %d, want %d", st.Deadlines, wantDeadlines)
	}
	if st.WarmHits == 0 {
		t.Error("stress run never hit the warm pool")
	}
	t.Logf("stats: %+v", st)
}

// bigTenantSrc pads the text segment with never-executed code so the
// verifier and loader have realistic work on the cold path, while the
// executed portion stays small — the serving regime the pool targets.
func bigTenantSrc(id, filler int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, `
_start:
	mov x0, #1
	adrp x1, msg
	add x1, x1, :lo12:msg
	mov x2, #%d
%s%s`, len(tenantOut(id)), progs.RTCall(core.RTWrite), progs.ExitCode(id))
	sb.WriteString("filler:\n")
	for i := 0; i < filler; i++ {
		fmt.Fprintf(&sb, "\tadd x9, x9, #%d\n\tldr x10, [x9]\n\tstr x10, [x9, #8]\n", i%1024)
	}
	fmt.Fprintf(&sb, "\tret\n.rodata\nmsg:\n\t.ascii %q\n", tenantOut(id))
	return sb.String()
}

// TestSnapshotRestoreSpeedup pins the acceptance criterion: per-request
// instantiation by snapshot restore must be at least 2× faster than a
// cold ELF load (parse + verify + map), measured on the same image.
func TestSnapshotRestoreSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	cold, warm := measureInstantiation(t, 40)
	speedup := float64(cold) / float64(warm)
	t.Logf("cold load %v, snapshot restore %v, speedup %.1f×", cold, warm, speedup)
	if speedup < 2 {
		t.Errorf("snapshot restore only %.2f× faster than cold load, want ≥ 2×", speedup)
	}
}
