// Package pool is the sandbox serving subsystem: it turns the one-shot
// runtime into a multi-tenant execution service. Three pieces cooperate:
//
//   - an image cache (image.go) that runs the compile→verify→load
//     pipeline once per distinct program and keeps an immutable snapshot;
//   - a warm pool: each worker keeps pre-restored, parked sandboxes per
//     image, so serving a request is Start + run — no ELF parsing, no
//     verification, no page-by-page loading on the request path;
//   - a concurrent executor: N workers, each owning an independent
//     lfirt.Runtime, fed from a bounded submission queue with
//     reject-when-full admission control. Every job gets an instruction
//     budget; runaways are killed and reported as *lfirt.ErrDeadline
//     without disturbing the worker.
//
// This is the usage mode the paper's cheap instantiation enables (§3:
// 2^16 sandboxes per address space; §5.3: ~50-cycle switches): once
// transitions are cheap, instantiation and dispatch dominate serving
// cost, so both are taken off the request path.
package pool

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"lfi/internal/core"
	"lfi/internal/emu"
	"lfi/internal/lfirt"
)

// Config parameterizes a Pool.
type Config struct {
	// Workers is the number of executor goroutines, each with its own
	// runtime (0 = 4).
	Workers int
	// QueueDepth bounds the submission queue; Submit rejects with
	// ErrQueueFull beyond it (0 = 4×Workers).
	QueueDepth int
	// Budget is the default per-job instruction budget (0 = 50M).
	// Individual jobs may override it; a job budget of 0 uses this.
	Budget uint64
	// WarmPerImage is how many parked clones each worker keeps per image
	// (0 = 1).
	WarmPerImage int
	// MaxWarm caps the total parked clones per worker; beyond it the
	// least-recently-served image's clones are evicted (0 = 8).
	MaxWarm int
	// StackSize per sandbox (0 = 1MiB — serving workloads do not need the
	// 8MiB interactive default, and instantiation cost scales with
	// touched stack pages).
	StackSize uint64
	// Timeslice is the per-dispatch preemption budget (0 = lfirt default).
	Timeslice uint64
	// Machine selects a timing model for the worker runtimes (nil = none,
	// the fastest serving configuration).
	Machine *emu.CoreModel
	// DisableVerification skips load-time verification on image builds
	// and cold loads. Baseline measurements only — a serving pool runs
	// untrusted code, and its security argument is the verifier.
	DisableVerification bool
	// NoLoads verifies under the weaker store/jump-only policy.
	NoLoads bool
}

func (c Config) withDefaults() Config {
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.Budget == 0 {
		c.Budget = 50_000_000
	}
	if c.WarmPerImage == 0 {
		c.WarmPerImage = 1
	}
	if c.MaxWarm == 0 {
		c.MaxWarm = 8
	}
	if c.StackSize == 0 {
		c.StackSize = 1 << 20
	}
	return c
}

// runtimeConfig builds the lfirt configuration shared by the worker
// runtimes and the image cache's scratch runtime (snapshots only restore
// correctly into runtimes configured like the one that took them).
func (c Config) runtimeConfig() lfirt.Config {
	rc := lfirt.DefaultConfig()
	rc.StackSize = c.StackSize
	rc.Timeslice = c.Timeslice
	rc.Model = c.Machine
	rc.Verify = !c.DisableVerification
	rc.VerifierCfg.NoLoads = c.NoLoads
	// Workers capture per-process output; the runtime-wide buffer would
	// otherwise grow without bound on a long-lived serving runtime.
	rc.LocalOutput = true
	// One slot per parked clone, plus headroom for the running sandbox.
	if c.MaxWarm+2 > 64 {
		rc.MaxSlots = c.MaxWarm + 2
	}
	return rc
}

// Job is one execution request.
type Job struct {
	// Image is the program to run (required).
	Image *Image
	// Budget overrides the pool's default instruction budget (0 = use
	// the pool default).
	Budget uint64
	// Cold bypasses the snapshot path and loads the ELF from scratch,
	// re-verifying it — the baseline the warm path is measured against.
	Cold bool
}

// Result is the outcome of one job.
type Result struct {
	// Status is the sandbox exit status (meaningless if Err != nil).
	Status int
	// Stdout and Stderr are the job's own captured output.
	Stdout, Stderr []byte
	// Instrs is the number of instructions retired serving the job.
	Instrs uint64
	// Worker identifies the worker that served the job.
	Worker int
	// WarmHit reports that the job ran in a pre-restored sandbox.
	WarmHit bool
	// Err is nil on success; *lfirt.ErrDeadline if the job exceeded its
	// budget; otherwise a load/restore failure.
	Err error
}

// Errors returned by Submit.
var (
	// ErrQueueFull is the admission-control rejection: the bounded
	// submission queue is full. Callers should back off or shed load.
	ErrQueueFull = errors.New("pool: submission queue full")
	// ErrClosed reports a submission to a closed pool.
	ErrClosed = errors.New("pool: closed")
)

// Ticket is a pending job's handle.
type Ticket struct{ ch chan *Result }

// Wait blocks until the job completes and returns its result.
func (t *Ticket) Wait() *Result { return <-t.ch }

// Stats are cumulative pool counters (monotonic; read with Stats).
type Stats struct {
	Submitted uint64 // jobs accepted into the queue
	Rejected  uint64 // jobs refused by admission control
	Completed uint64 // jobs finished (any outcome)
	Deadlines uint64 // jobs killed for exceeding their budget
	Failures  uint64 // jobs that failed to load/restore
	WarmHits  uint64 // jobs served from a pre-restored sandbox
	Restores  uint64 // snapshot restores (warm misses + replenishment)
	ColdLoads uint64 // full ELF loads (Cold jobs)
	Instrs    uint64 // total instructions retired serving jobs
}

type task struct {
	job    Job
	ticket *Ticket
}

// Pool is the serving subsystem. Create with New, feed with Submit or
// Do, and Close when done.
type Pool struct {
	cfg   Config
	cache *Cache
	jobs  chan *task
	wg    sync.WaitGroup

	mu     sync.Mutex
	closed bool

	// counters, updated atomically by workers and Submit.
	submitted, rejected, completed        atomic.Uint64
	deadlines, failures                   atomic.Uint64
	warmHits, restores, coldLoads, instrs atomic.Uint64
}

// New creates a pool and starts its workers.
func New(cfg Config) *Pool {
	cfg = cfg.withDefaults()
	rc := cfg.runtimeConfig()
	p := &Pool{
		cfg:   cfg,
		cache: NewCache(rc),
		jobs:  make(chan *task, cfg.QueueDepth),
	}
	for i := 0; i < cfg.Workers; i++ {
		w := &worker{
			id:   i,
			pool: p,
			rt:   lfirt.New(rc),
			warm: make(map[string][]*lfirt.Proc),
		}
		p.wg.Add(1)
		go w.loop()
	}
	return p
}

// BuildImage compiles source through the cached pipeline.
func (p *Pool) BuildImage(src string, opts core.Options) (*Image, error) {
	return p.cache.Build(src, opts)
}

// ImageFromELF verifies and caches a prebuilt executable.
func (p *Pool) ImageFromELF(elfBytes []byte) (*Image, error) {
	return p.cache.FromELF(elfBytes)
}

// Cache exposes the image cache (for stats).
func (p *Pool) Cache() *Cache { return p.cache }

// Submit enqueues a job without blocking. It returns ErrQueueFull when
// the bounded queue is full (admission control: the pool never grows an
// unbounded backlog) and ErrClosed after Close.
func (p *Pool) Submit(j Job) (*Ticket, error) {
	if j.Image == nil {
		return nil, fmt.Errorf("pool: job has no image")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, ErrClosed
	}
	t := &Ticket{ch: make(chan *Result, 1)}
	select {
	case p.jobs <- &task{job: j, ticket: t}:
		p.submitted.Add(1)
		return t, nil
	default:
		p.rejected.Add(1)
		return nil, ErrQueueFull
	}
}

// Do submits a job and waits for its result.
func (p *Pool) Do(j Job) (*Result, error) {
	t, err := p.Submit(j)
	if err != nil {
		return nil, err
	}
	return t.Wait(), nil
}

// Close drains queued jobs, stops the workers, and waits for them to
// exit. Submissions after Close fail with ErrClosed.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.jobs)
	p.mu.Unlock()
	p.wg.Wait()
}

// Stats returns a snapshot of the cumulative counters.
func (p *Pool) Stats() Stats {
	return Stats{
		Submitted: p.submitted.Load(),
		Rejected:  p.rejected.Load(),
		Completed: p.completed.Load(),
		Deadlines: p.deadlines.Load(),
		Failures:  p.failures.Load(),
		WarmHits:  p.warmHits.Load(),
		Restores:  p.restores.Load(),
		ColdLoads: p.coldLoads.Load(),
		Instrs:    p.instrs.Load(),
	}
}

// worker owns one runtime and serves jobs sequentially. All of its state
// is goroutine-local; the only cross-goroutine traffic is the job channel
// and the pool's atomic counters.
type worker struct {
	id   int
	pool *Pool
	rt   *lfirt.Runtime

	// warm maps image key → parked pre-restored clones. lru orders keys
	// by last service, most recent last; evictions take from the front.
	warm      map[string][]*lfirt.Proc
	warmCount int
	lru       []string
}

func (w *worker) loop() {
	defer w.pool.wg.Done()
	for t := range w.pool.jobs {
		t.ticket.ch <- w.serve(t.job)
	}
}

func (w *worker) serve(j Job) *Result {
	p := w.pool
	res := &Result{Worker: w.id}
	budget := j.Budget
	if budget == 0 {
		budget = p.cfg.Budget
	}

	var proc *lfirt.Proc
	var err error
	switch {
	case j.Cold:
		// Baseline path: parse, verify, and load the ELF from scratch.
		proc, err = w.rt.Load(j.Image.ELF)
		p.coldLoads.Add(1)
	default:
		if clones := w.warm[j.Image.Key]; len(clones) > 0 {
			proc = clones[len(clones)-1]
			w.warm[j.Image.Key] = clones[:len(clones)-1]
			w.warmCount--
			res.WarmHit = true
			p.warmHits.Add(1)
		} else {
			proc, err = w.rt.Restore(j.Image.Snap)
			p.restores.Add(1)
		}
	}
	if err != nil {
		p.failures.Add(1)
		p.completed.Add(1)
		res.Err = err
		return res
	}

	w.rt.Start(proc)
	before := w.rt.CPU.Instrs
	status, err := w.rt.RunProcDeadline(proc, budget)
	res.Instrs = w.rt.CPU.Instrs - before
	p.instrs.Add(res.Instrs)
	res.Status = status
	res.Err = err
	var de *lfirt.ErrDeadline
	if errors.As(err, &de) {
		p.deadlines.Add(1)
	} else if err != nil {
		p.failures.Add(1)
	}
	// The proc's buffers survive the proc's death; copy them out so the
	// result owns its bytes.
	res.Stdout = append([]byte(nil), proc.Stdout()...)
	res.Stderr = append([]byte(nil), proc.Stderr()...)
	p.completed.Add(1)

	if !j.Cold {
		w.replenish(j.Image)
	}
	return res
}

// replenish grows this worker's warm set for img back to WarmPerImage and
// shrinks the pool if the total parked count exceeds MaxWarm, evicting
// the least-recently-served image's clones (slot recycling: evicted
// clones are killed, freeing their slots and memory).
func (w *worker) replenish(img *Image) {
	w.touch(img.Key)
	for len(w.warm[img.Key]) < w.pool.cfg.WarmPerImage {
		if w.warmCount >= w.pool.cfg.MaxWarm {
			before := w.warmCount
			w.evictOldest(img.Key)
			if w.warmCount == before {
				return // nothing evictable: stay at the cap
			}
		}
		proc, err := w.rt.Restore(img.Snap)
		if err != nil {
			return // out of slots: serve future requests by direct restore
		}
		w.pool.restores.Add(1)
		w.warm[img.Key] = append(w.warm[img.Key], proc)
		w.warmCount++
	}
}

func (w *worker) touch(key string) {
	for i, k := range w.lru {
		if k == key {
			w.lru = append(w.lru[:i], w.lru[i+1:]...)
			break
		}
	}
	w.lru = append(w.lru, key)
}

func (w *worker) evictOldest(keep string) {
	for i, k := range w.lru {
		if k == keep || len(w.warm[k]) == 0 {
			continue
		}
		clones := w.warm[k]
		victim := clones[len(clones)-1]
		w.warm[k] = clones[:len(clones)-1]
		w.warmCount--
		w.rt.KillProcess(victim, 0)
		if len(w.warm[k]) == 0 {
			delete(w.warm, k)
			w.lru = append(w.lru[:i], w.lru[i+1:]...)
		}
		return
	}
}
