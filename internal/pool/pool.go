// Package pool is the sandbox serving subsystem: it turns the one-shot
// runtime into a multi-tenant execution service. Three pieces cooperate:
//
//   - an image cache (image.go) that runs the compile→verify→load
//     pipeline once per distinct program and keeps an immutable snapshot;
//   - a warm pool: each worker keeps pre-restored, parked sandboxes per
//     image, so serving a request is Start + run — no ELF parsing, no
//     verification, no page-by-page loading on the request path;
//   - a concurrent executor: N workers, each owning an independent
//     lfirt.Runtime, fed from a bounded submission queue with
//     reject-when-full admission control. Every job gets an instruction
//     budget; runaways are killed and reported as *lfirt.ErrDeadline
//     without disturbing the worker.
//
// Submission is context-aware: SubmitCtx/DoCtx honor cancellation and
// deadlines. A context that fires before dispatch skips the job; one that
// fires mid-run kills the in-flight sandbox between scheduler dispatches
// (bounded by one timeslice) — either way the result satisfies
// errors.Is(err, ErrCanceled).
//
// Every pool carries an observability bundle (internal/obs): counters and
// latency histograms in a metrics registry, plus a bounded event trace
// with one Span per job recording where its latency went (queue wait,
// snapshot restore, sandbox run). See DESIGN.md for the metric schema.
//
// This is the usage mode the paper's cheap instantiation enables (§3:
// 2^16 sandboxes per address space; §5.3: ~50-cycle switches): once
// transitions are cheap, instantiation and dispatch dominate serving
// cost, so both are taken off the request path.
package pool

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"lfi/internal/core"
	"lfi/internal/emu"
	"lfi/internal/lfirt"
	"lfi/internal/obs"
)

// Config parameterizes a Pool.
type Config struct {
	// Workers is the number of executor goroutines, each with its own
	// runtime (0 = 4).
	Workers int
	// QueueDepth bounds the submission queue; Submit rejects with
	// ErrQueueFull beyond it (0 = 4×Workers).
	QueueDepth int
	// Budget is the default per-job instruction budget (0 = 50M).
	// Individual jobs may override it; a job budget of 0 uses this.
	Budget uint64
	// WarmPerImage is how many parked clones each worker keeps per image
	// (0 = 1).
	WarmPerImage int
	// MaxWarm caps the total parked clones per worker; beyond it the
	// least-recently-served image's clones are evicted (0 = 8).
	MaxWarm int
	// StackSize per sandbox (0 = 1MiB — serving workloads do not need the
	// 8MiB interactive default, and instantiation cost scales with
	// touched stack pages).
	StackSize uint64
	// Timeslice is the per-dispatch preemption budget (0 = lfirt default).
	Timeslice uint64
	// Machine selects a timing model for the worker runtimes (nil = none,
	// the fastest serving configuration).
	Machine *emu.CoreModel
	// DisableVerification skips load-time verification on image builds
	// and cold loads. Baseline measurements only — a serving pool runs
	// untrusted code, and its security argument is the verifier.
	DisableVerification bool
	// NoLoads verifies under the weaker store/jump-only policy.
	NoLoads bool
	// Obs supplies an external observability bundle; nil creates a
	// pool-private one (pool metrics are always collected — the recording
	// cost is per job, not per instruction).
	Obs *obs.Obs
	// SharedCache supplies an externally owned image cache instead of a
	// pool-private one, so several pools (the shards of a serving router)
	// deduplicate builds once and restore the same immutable snapshots.
	// The cache must have been created with this pool's RuntimeConfig —
	// snapshots only restore into runtimes configured like the one that
	// took them.
	SharedCache *Cache
	// OnJobDone, when set, is called by the serving worker after each
	// admitted job resolves — after its ticket is delivered, including
	// jobs dropped at shutdown. A sharded router uses it as the
	// backpressure signal that queue capacity has freed up; it runs on
	// the worker goroutine, so it must not block.
	OnJobDone func(*Result)
}

func (c Config) withDefaults() Config {
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.Budget == 0 {
		c.Budget = 50_000_000
	}
	if c.WarmPerImage == 0 {
		c.WarmPerImage = 1
	}
	if c.MaxWarm == 0 {
		c.MaxWarm = 8
	}
	if c.StackSize == 0 {
		c.StackSize = 1 << 20
	}
	if c.Obs == nil {
		c.Obs = obs.New()
	}
	return c
}

// RuntimeConfig builds the lfirt configuration shared by the worker
// runtimes and the image cache's scratch runtime (snapshots only restore
// correctly into runtimes configured like the one that took them).
// Callers sharing one image cache across several pools (Config.
// SharedCache) create the cache with this configuration.
func (c Config) RuntimeConfig() lfirt.Config {
	c = c.withDefaults()
	rc := lfirt.DefaultConfig()
	rc.StackSize = c.StackSize
	rc.Timeslice = c.Timeslice
	rc.Model = c.Machine
	rc.Verify = !c.DisableVerification
	rc.VerifierCfg.NoLoads = c.NoLoads
	// Workers capture per-process output; the runtime-wide buffer would
	// otherwise grow without bound on a long-lived serving runtime.
	rc.LocalOutput = true
	// One slot per parked clone, plus headroom for the running sandbox.
	if c.MaxWarm+2 > 64 {
		rc.MaxSlots = c.MaxWarm + 2
	}
	return rc
}

// Job is one execution request: either a single image (Image) or a
// multi-stage pipeline (Images). Exactly one of the two must be set.
type Job struct {
	// Image is the program to run (single-stage jobs).
	Image *Image
	// Images names a pipeline: the worker co-loads every stage into its
	// one runtime, wires stage N's stdout to stage N+1's stdin over an
	// in-runtime pipe, and the job's result is the final stage's. This
	// is the paper's cheap-transition story applied across a request:
	// all stages share one address space, so a byte moves between them
	// for the cost of a host call, not an IPC round-trip.
	Images []*Image
	// Input is fed to the first stage's stdin (EOF after the last byte).
	Input []byte
	// Budget overrides the pool's default instruction budget (0 = use
	// the pool default). For pipelines it covers all stages together.
	Budget uint64
	// Cold bypasses the snapshot path and loads the ELF from scratch,
	// re-verifying it — the baseline the warm path is measured against.
	Cold bool
}

// stages normalizes the two job forms to a stage list.
func (j Job) stages() []*Image {
	if len(j.Images) > 0 {
		return j.Images
	}
	return []*Image{j.Image}
}

// StageResult is one pipeline stage's outcome. Intermediate stages'
// stdout is consumed by the next stage, so only Stderr is captured per
// stage; the final stage's output is the job's Stdout.
type StageResult struct {
	// Image is the stage's short image tag.
	Image string
	// PID is the stage's process id in the worker runtime.
	PID int
	// Status is the stage's exit status; a stage still running when the
	// final stage finished is killed with a SIGPIPE-style 128+13.
	Status int
	// WarmHit reports the stage came from a pre-restored sandbox.
	WarmHit bool
	// Stderr is the stage's own captured stderr.
	Stderr []byte
}

// Result is the outcome of one job.
type Result struct {
	// Status is the sandbox exit status (meaningless if Err != nil).
	Status int
	// Stdout and Stderr are the job's own captured output.
	Stdout, Stderr []byte
	// Instrs is the number of instructions retired serving the job.
	Instrs uint64
	// Worker identifies the worker that served the job.
	Worker int
	// WarmHit reports that the job ran in a pre-restored sandbox (for
	// pipelines: every stage did).
	WarmHit bool
	// Stages is the per-stage breakdown, one entry per image in job
	// order (a single-image job has one entry).
	Stages []StageResult
	// Err is nil on success; *lfirt.ErrDeadline if the job exceeded its
	// budget; an error matching ErrCanceled if its context fired;
	// otherwise a load/restore failure.
	Err error
}

// Errors returned by the pool. Together with *lfirt.ErrDeadline (budget
// kills, errors.As) and lfirt.ErrVerify (verifier rejections, errors.Is)
// they form the full failure taxonomy of the serving API.
var (
	// ErrQueueFull is the admission-control rejection: the bounded
	// submission queue is full. Callers should back off or shed load.
	ErrQueueFull = errors.New("pool: submission queue full")
	// ErrClosed reports a submission to a closed pool, or a job that was
	// still queued when Close began: queued work is not run at shutdown,
	// its ticket resolves with this error instead.
	ErrClosed = errors.New("pool: closed")
	// ErrCanceled reports a job stopped by its context — either skipped
	// before dispatch or killed mid-run. The context's own error
	// (context.Canceled or context.DeadlineExceeded) is wrapped
	// alongside, so errors.Is works against both.
	ErrCanceled = errors.New("pool: job canceled")
)

// Ticket is a pending job's handle.
type Ticket struct{ ch chan *Result }

// Wait blocks until the job completes and returns its result.
func (t *Ticket) Wait() *Result { return <-t.ch }

// WorkerStats is one worker's cumulative breakdown, sourced from the
// pool's metrics registry.
type WorkerStats struct {
	Worker    int    `json:"worker"`
	Jobs      uint64 `json:"jobs"`       // jobs finished by this worker
	Instrs    uint64 `json:"instrs"`     // instructions retired serving them
	WarmHits  uint64 `json:"warm_hits"`  // jobs served from parked sandboxes
	Restores  uint64 `json:"restores"`   // snapshot restores performed
	ColdLoads uint64 `json:"cold_loads"` // full ELF loads performed
	Deadlines uint64 `json:"deadlines"`  // budget kills
	Failures  uint64 `json:"failures"`   // load/restore/trap failures
	Canceled  uint64 `json:"canceled"`   // context cancellations
	Evictions uint64 `json:"evictions"`  // warm clones evicted
	Parked    int64  `json:"parked"`     // currently parked clones
	Busy      bool   `json:"busy"`       // currently serving a job
}

// Stats are cumulative pool counters plus per-worker breakdowns, all
// sourced from the pool's metrics registry.
type Stats struct {
	Submitted  uint64        `json:"submitted"`   // jobs accepted into the queue
	Rejected   uint64        `json:"rejected"`    // jobs refused by admission control
	Shed       uint64        `json:"shed"`        // jobs a router shed on this pool's behalf
	Completed  uint64        `json:"completed"`   // jobs finished (any outcome)
	Canceled   uint64        `json:"canceled"`    // jobs stopped by their context
	Deadlines  uint64        `json:"deadlines"`   // jobs killed for exceeding their budget
	Failures   uint64        `json:"failures"`    // jobs that failed to load/restore
	WarmHits   uint64        `json:"warm_hits"`   // jobs served from a pre-restored sandbox
	WarmMisses uint64        `json:"warm_misses"` // warm-path jobs that had to restore inline
	Restores   uint64        `json:"restores"`    // snapshot restores (misses + replenishment)
	ColdLoads  uint64        `json:"cold_loads"`  // full ELF loads (Cold jobs)
	Evictions  uint64        `json:"evictions"`   // warm clones evicted under MaxWarm pressure
	Instrs     uint64        `json:"instrs"`      // total instructions retired serving jobs
	Pipelines  uint64        `json:"pipelines"`   // multi-stage jobs served
	Stages     uint64        `json:"stages"`      // total pipeline stages served
	QueueDepth int           `json:"queue_depth"` // jobs currently queued
	Workers    []WorkerStats `json:"workers"`
}

type task struct {
	job    Job
	ticket *Ticket
	ctx    context.Context
	id     uint64
	enq    time.Time
}

// poolMetrics are the pool-level registry handles (per-worker handles
// live in workerStats).
type poolMetrics struct {
	submitted, rejected, completed *obs.Counter
	shed                           *obs.Counter
	canceled, deadlines, failures  *obs.Counter
	warmHits, warmMisses           *obs.Counter
	restores, coldLoads, evictions *obs.Counter
	instrs                         *obs.Counter
	plJobs, plStages               *obs.Counter
	queueDepth, parked             *obs.Gauge
	queueWait, restore, run, total *obs.Histogram
}

func newPoolMetrics(reg *obs.Registry) poolMetrics {
	lat := obs.DurationBounds()
	return poolMetrics{
		submitted:  reg.Counter("pool.jobs.submitted"),
		rejected:   reg.Counter("pool.jobs.rejected"),
		shed:       reg.Counter("pool.jobs.shed"),
		completed:  reg.Counter("pool.jobs.completed"),
		canceled:   reg.Counter("pool.jobs.canceled"),
		deadlines:  reg.Counter("pool.jobs.deadline_kills"),
		failures:   reg.Counter("pool.jobs.failures"),
		warmHits:   reg.Counter("pool.warm.hits"),
		warmMisses: reg.Counter("pool.warm.misses"),
		restores:   reg.Counter("pool.restores"),
		coldLoads:  reg.Counter("pool.cold_loads"),
		evictions:  reg.Counter("pool.warm.evictions"),
		instrs:     reg.Counter("pool.instrs"),
		plJobs:     reg.Counter("pool.pipeline.jobs"),
		plStages:   reg.Counter("pool.pipeline.stages"),
		queueDepth: reg.Gauge("pool.queue.depth"),
		parked:     reg.Gauge("pool.warm.parked"),
		queueWait:  reg.Histogram("pool.latency.queue_wait_ns", lat),
		restore:    reg.Histogram("pool.latency.restore_ns", lat),
		run:        reg.Histogram("pool.latency.run_ns", lat),
		total:      reg.Histogram("pool.latency.total_ns", lat),
	}
}

// workerStats are one worker's registry handles plus its liveness bit.
type workerStats struct {
	jobs, instrs, warmHits         *obs.Counter
	restores, coldLoads, deadlines *obs.Counter
	failures, canceled, evictions  *obs.Counter
	parked                         *obs.Gauge
	busy                           atomic.Bool
}

func newWorkerStats(reg *obs.Registry, id int) *workerStats {
	n := func(field string) string { return fmt.Sprintf("pool.worker.%d.%s", id, field) }
	return &workerStats{
		jobs:      reg.Counter(n("jobs")),
		instrs:    reg.Counter(n("instrs")),
		warmHits:  reg.Counter(n("warm_hits")),
		restores:  reg.Counter(n("restores")),
		coldLoads: reg.Counter(n("cold_loads")),
		deadlines: reg.Counter(n("deadline_kills")),
		failures:  reg.Counter(n("failures")),
		canceled:  reg.Counter(n("canceled")),
		evictions: reg.Counter(n("evictions")),
		parked:    reg.Gauge(n("parked")),
	}
}

// Pool is the serving subsystem. Create with New, feed with Submit or
// Do, and Close when done.
type Pool struct {
	cfg    Config
	cache  *Cache
	jobs   chan *task
	wg     sync.WaitGroup
	obs    *obs.Obs
	m      poolMetrics
	wstats []*workerStats
	jobSeq atomic.Uint64

	mu     sync.Mutex
	closed bool

	// closing becomes true before the job channel is closed. Workers check
	// it at dequeue so a job admitted just as the pool closes resolves
	// deterministically with ErrClosed instead of racing the shutdown.
	closing atomic.Bool
}

// New creates a pool and starts its workers.
func New(cfg Config) *Pool {
	cfg = cfg.withDefaults()
	rc := cfg.RuntimeConfig()
	rc.Obs = cfg.Obs
	cache := cfg.SharedCache
	if cache == nil {
		cache = NewCache(rc)
		// A shared cache keeps the observability wiring of whoever built
		// it; only a pool-private cache reports into this pool's registry.
		cache.setObs(cfg.Obs)
	}
	p := &Pool{
		cfg:   cfg,
		cache: cache,
		jobs:  make(chan *task, cfg.QueueDepth),
		obs:   cfg.Obs,
		m:     newPoolMetrics(cfg.Obs.Registry()),
	}
	for i := 0; i < cfg.Workers; i++ {
		ws := newWorkerStats(cfg.Obs.Registry(), i)
		p.wstats = append(p.wstats, ws)
		wrc := rc
		wrc.ObsTag = i
		w := &worker{
			id:    i,
			pool:  p,
			rt:    lfirt.New(wrc),
			warm:  make(map[string][]*lfirt.Proc),
			stats: ws,
		}
		p.wg.Add(1)
		go w.loop()
	}
	return p
}

// Obs returns the pool's observability bundle.
func (p *Pool) Obs() *obs.Obs { return p.obs }

// Metrics returns a point-in-time snapshot of the pool's metrics
// registry (including worker-runtime and emulator counters).
func (p *Pool) Metrics() *obs.Snapshot { return p.obs.Registry().Snapshot() }

// Events returns the retained trace events, oldest first.
func (p *Pool) Events() []obs.Event { return p.obs.Trace().Events() }

// Spans returns the retained per-job spans, oldest first.
func (p *Pool) Spans() []obs.Span { return p.obs.Trace().Spans() }

// BuildImage compiles source through the cached pipeline.
func (p *Pool) BuildImage(src string, opts core.Options) (*Image, error) {
	return p.cache.Build(src, opts)
}

// ImageFromELF verifies and caches a prebuilt executable.
func (p *Pool) ImageFromELF(elfBytes []byte) (*Image, error) {
	return p.cache.FromELF(elfBytes)
}

// BuildWasmImage translates a WebAssembly module through the cached
// wasmfront pipeline.
func (p *Pool) BuildWasmImage(wasm []byte, opts core.Options) (*Image, error) {
	return p.cache.BuildWasm(wasm, opts)
}

// Cache exposes the image cache (for stats).
func (p *Pool) Cache() *Cache { return p.cache }

// Submit enqueues a job without blocking. It returns ErrQueueFull when
// the bounded queue is full (admission control: the pool never grows an
// unbounded backlog) and ErrClosed after Close.
func (p *Pool) Submit(j Job) (*Ticket, error) {
	return p.SubmitCtx(context.Background(), j)
}

// SubmitCtx enqueues a job bound to ctx. An already-done context is
// rejected immediately; one that fires while the job is queued skips it
// at dequeue; one that fires mid-run kills the in-flight sandbox. In
// every case the resulting error matches ErrCanceled and wraps ctx's own
// error.
func (p *Pool) SubmitCtx(ctx context.Context, j Job) (*Ticket, error) {
	switch {
	case j.Image == nil && len(j.Images) == 0:
		return nil, fmt.Errorf("pool: job has no image")
	case j.Image != nil && len(j.Images) > 0:
		return nil, fmt.Errorf("pool: job sets both Image and Images")
	}
	for i, img := range j.Images {
		if img == nil {
			return nil, fmt.Errorf("pool: pipeline stage %d has no image", i)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("%w before submit (%w)", ErrCanceled, err)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, ErrClosed
	}
	t := &Ticket{ch: make(chan *Result, 1)}
	tk := &task{job: j, ticket: t, ctx: ctx, id: p.jobSeq.Add(1), enq: time.Now()}
	select {
	case p.jobs <- tk:
		p.m.submitted.Inc()
		p.m.queueDepth.Add(1)
		p.obs.Trace().Record(obs.Event{Kind: obs.EvJobEnqueue, Job: tk.id})
		return t, nil
	default:
		p.m.rejected.Inc()
		return nil, ErrQueueFull
	}
}

// RecordShed counts a job that an upstream router refused on this pool's
// behalf — load-shedding before the job ever reached the submission
// queue. It only affects the "pool.jobs.shed" counter (Stats.Shed), so
// shedding decisions made outside the pool stay observable next to the
// pool's own ErrQueueFull rejections.
func (p *Pool) RecordShed() { p.m.shed.Inc() }

// QueueDepth reports the number of jobs currently queued (the
// "pool.queue.depth" gauge).
func (p *Pool) QueueDepth() int { return int(p.m.queueDepth.Value()) }

// Do submits a job and waits for its result.
func (p *Pool) Do(j Job) (*Result, error) {
	return p.DoCtx(context.Background(), j)
}

// DoCtx submits a job bound to ctx and waits for its result. The error
// is non-nil when submission failed or the job was canceled (matching
// ErrCanceled); a canceled job's partial result — captured output,
// retired instructions — is still returned alongside the error.
func (p *Pool) DoCtx(ctx context.Context, j Job) (*Result, error) {
	t, err := p.SubmitCtx(ctx, j)
	if err != nil {
		return nil, err
	}
	res := t.Wait()
	if res.Err != nil && errors.Is(res.Err, ErrCanceled) {
		return res, res.Err
	}
	return res, nil
}

// Close stops the workers and waits for them to exit. The job currently
// running on each worker completes normally; jobs still sitting in the
// queue resolve with ErrClosed (they are never silently dropped and their
// tickets never hang). Submissions after Close fail with ErrClosed.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait() // a concurrent first Close drains; wait for it too
		return
	}
	p.closed = true
	// Order matters: mark closing before closing the channel so a worker
	// that dequeues a drained task observes the flag. SubmitCtx holds mu
	// across its send, so no send can race the close itself.
	p.closing.Store(true)
	close(p.jobs)
	p.mu.Unlock()
	p.wg.Wait()
}

// Stats returns a snapshot of the cumulative counters, including the
// per-worker breakdown. Everything is sourced from the metrics registry.
func (p *Pool) Stats() Stats {
	st := Stats{
		Submitted:  p.m.submitted.Value(),
		Rejected:   p.m.rejected.Value(),
		Shed:       p.m.shed.Value(),
		Completed:  p.m.completed.Value(),
		Canceled:   p.m.canceled.Value(),
		Deadlines:  p.m.deadlines.Value(),
		Failures:   p.m.failures.Value(),
		WarmHits:   p.m.warmHits.Value(),
		WarmMisses: p.m.warmMisses.Value(),
		Restores:   p.m.restores.Value(),
		ColdLoads:  p.m.coldLoads.Value(),
		Evictions:  p.m.evictions.Value(),
		Instrs:     p.m.instrs.Value(),
		Pipelines:  p.m.plJobs.Value(),
		Stages:     p.m.plStages.Value(),
		QueueDepth: int(p.m.queueDepth.Value()),
	}
	for i, ws := range p.wstats {
		st.Workers = append(st.Workers, WorkerStats{
			Worker:    i,
			Jobs:      ws.jobs.Value(),
			Instrs:    ws.instrs.Value(),
			WarmHits:  ws.warmHits.Value(),
			Restores:  ws.restores.Value(),
			ColdLoads: ws.coldLoads.Value(),
			Deadlines: ws.deadlines.Value(),
			Failures:  ws.failures.Value(),
			Canceled:  ws.canceled.Value(),
			Evictions: ws.evictions.Value(),
			Parked:    ws.parked.Value(),
			Busy:      ws.busy.Load(),
		})
	}
	return st
}

// worker owns one runtime and serves jobs sequentially. All of its state
// is goroutine-local; the only cross-goroutine traffic is the job channel
// and the pool's registry instruments (atomic).
type worker struct {
	id    int
	pool  *Pool
	rt    *lfirt.Runtime
	stats *workerStats

	// warm maps image key → parked pre-restored clones. lru orders keys
	// by last service, most recent last; evictions take from the front.
	warm      map[string][]*lfirt.Proc
	warmCount int
	lru       []string
}

func (w *worker) loop() {
	defer w.pool.wg.Done()
	for t := range w.pool.jobs {
		var res *Result
		if w.pool.closing.Load() {
			res = w.drop(t)
			t.ticket.ch <- res
		} else {
			w.stats.busy.Store(true)
			res = w.serve(t)
			t.ticket.ch <- res
			w.stats.busy.Store(false)
		}
		if f := w.pool.cfg.OnJobDone; f != nil {
			f(res)
		}
	}
}

// drop resolves a task that was still queued when Close began. The queue
// accounting is settled exactly once and the ticket resolves with
// ErrClosed — admitted work never hangs across shutdown.
func (w *worker) drop(t *task) *Result {
	p := w.pool
	p.m.queueDepth.Add(-1)
	p.m.completed.Inc()
	w.stats.jobs.Inc()
	p.obs.Trace().Record(obs.Event{Kind: obs.EvJobFinish, Job: t.id, Worker: w.id})
	return &Result{Worker: w.id, Err: fmt.Errorf("%w: job dropped at shutdown", ErrClosed)}
}

// imageTag is the short image-key prefix stamped on spans.
func imageTag(img *Image) string {
	if len(img.Key) > 12 {
		return img.Key[:12]
	}
	return img.Key
}

func (w *worker) serve(t *task) *Result {
	p := w.pool
	tr := p.obs.Trace()
	j := t.job
	dequeued := time.Now()
	queueWait := dequeued.Sub(t.enq)
	p.m.queueDepth.Add(-1)
	p.m.queueWait.Observe(uint64(queueWait.Nanoseconds()))
	tr.Record(obs.Event{Kind: obs.EvJobDequeue, Job: t.id, Worker: w.id, DurNS: queueWait.Nanoseconds()})

	stages := j.stages()
	res := &Result{Worker: w.id}
	span := obs.Span{
		Job:         t.id,
		Image:       imageTag(stages[len(stages)-1]), // the stage whose output is the result
		Worker:      w.id,
		EnqueueNS:   t.enq.UnixNano(),
		QueueWaitNS: queueWait.Nanoseconds(),
		Cold:        j.Cold,
	}
	finish := func() *Result {
		span.TotalNS = time.Since(t.enq).Nanoseconds()
		span.Instrs = res.Instrs
		if res.Err != nil {
			span.Err = res.Err.Error()
		}
		p.m.total.Observe(uint64(span.TotalNS))
		tr.RecordSpan(span)
		tr.Record(obs.Event{Kind: obs.EvJobFinish, Job: t.id, Worker: w.id, Arg: res.Instrs,
			DurNS: span.TotalNS})
		p.m.completed.Inc()
		w.stats.jobs.Inc()
		return res
	}

	// A context that fired while the job sat in the queue: skip it.
	if err := t.ctx.Err(); err != nil {
		res.Err = fmt.Errorf("%w before dispatch (%w)", ErrCanceled, err)
		span.Canceled = true
		p.m.canceled.Inc()
		w.stats.canceled.Inc()
		tr.Record(obs.Event{Kind: obs.EvJobCancel, Job: t.id, Worker: w.id})
		return finish()
	}

	budget := j.Budget
	if budget == 0 {
		budget = p.cfg.Budget
	}

	// Acquire every stage up front; a pipeline that cannot be fully
	// staffed fails without running anything.
	if len(stages) > 1 {
		p.m.plJobs.Inc()
		p.m.plStages.Add(uint64(len(stages)))
	}
	procs := make([]*lfirt.Proc, 0, len(stages))
	allWarm := !j.Cold
	for _, img := range stages {
		proc, warm, err := w.acquire(t, &span, img, j.Cold)
		if err != nil {
			for _, pr := range procs {
				w.rt.KillProcess(pr, 128+9)
			}
			p.m.failures.Inc()
			w.stats.failures.Inc()
			res.Err = err
			return finish()
		}
		allWarm = allWarm && warm
		procs = append(procs, proc)
		span.Stages = append(span.Stages, obs.SpanStage{Image: imageTag(img), PID: proc.PID, WarmHit: warm})
	}
	res.WarmHit = allWarm
	span.WarmHit = allWarm

	// Wire the request through the stages: Input feeds stage 0's stdin,
	// stage N's stdout becomes stage N+1's stdin, and only the final
	// stage's stdout reaches the result.
	if len(j.Input) > 0 {
		w.rt.FeedInput(procs[0], j.Input)
	}
	for k := 0; k+1 < len(procs); k++ {
		w.rt.ConnectPipe(procs[k], procs[k+1])
	}
	for _, pr := range procs {
		w.rt.Start(pr)
		tr.Record(obs.Event{Kind: obs.EvJobStart, Job: t.id, Worker: w.id, PID: pr.PID})
	}
	last := procs[len(procs)-1]
	runStart := time.Now()
	before := w.rt.CPU.Instrs
	status, err := w.rt.RunProcCancel(last, budget, t.ctx.Done())
	span.RunNS = time.Since(runStart).Nanoseconds()
	p.m.run.Observe(uint64(span.RunNS))
	res.Instrs = w.rt.CPU.Instrs - before
	p.m.instrs.Add(res.Instrs)
	w.stats.instrs.Add(res.Instrs)
	res.Status = status
	res.Err = err
	var de *lfirt.ErrDeadline
	switch {
	case errors.Is(err, lfirt.ErrCanceled):
		res.Err = fmt.Errorf("%w mid-run (%w)", ErrCanceled, t.ctx.Err())
		span.Canceled = true
		p.m.canceled.Inc()
		w.stats.canceled.Inc()
		tr.Record(obs.Event{Kind: obs.EvJobCancel, Job: t.id, Worker: w.id, PID: last.PID})
	case errors.As(err, &de):
		p.m.deadlines.Inc()
		w.stats.deadlines.Inc()
	case err != nil:
		p.m.failures.Inc()
		w.stats.failures.Inc()
	}
	// Settle upstream stages. With the final stage gone the pipeline's
	// output sink no longer exists; anything still live is reaped with a
	// SIGPIPE-style status, mirroring what a shell pipeline does to a
	// producer whose consumer exited.
	for _, pr := range procs[:len(procs)-1] {
		if pr.State != lfirt.ProcZombie {
			w.rt.KillProcess(pr, 128+13)
		}
	}
	for k, pr := range procs {
		span.Stages[k].Status = pr.ExitStatus()
		res.Stages = append(res.Stages, StageResult{
			Image:   span.Stages[k].Image,
			PID:     pr.PID,
			Status:  pr.ExitStatus(),
			WarmHit: span.Stages[k].WarmHit,
			Stderr:  append([]byte(nil), pr.Stderr()...),
		})
	}
	// The proc's buffers survive the proc's death; copy them out so the
	// result owns its bytes.
	res.Stdout = append([]byte(nil), last.Stdout()...)
	res.Stderr = append([]byte(nil), last.Stderr()...)

	if !j.Cold {
		seen := make(map[string]bool, len(stages))
		for _, img := range stages {
			if !seen[img.Key] {
				seen[img.Key] = true
				w.replenish(img)
			}
		}
	}
	return finish()
}

// acquire materializes one stage's sandbox: a full ELF load for cold
// jobs, a parked warm clone when one is available, or an inline snapshot
// restore otherwise. The bool reports a warm hit.
func (w *worker) acquire(t *task, span *obs.Span, img *Image, cold bool) (*lfirt.Proc, bool, error) {
	p := w.pool
	tr := p.obs.Trace()
	start := time.Now()
	if cold {
		// Baseline path: parse, verify, and load the ELF from scratch.
		proc, err := w.rt.Load(img.ELF)
		d := time.Since(start).Nanoseconds()
		span.RestoreNS += d
		p.m.restore.Observe(uint64(d))
		p.m.coldLoads.Inc()
		w.stats.coldLoads.Inc()
		tr.Record(obs.Event{Kind: obs.EvColdLoad, Job: t.id, Worker: w.id, DurNS: d})
		return proc, false, err
	}
	if clones := w.warm[img.Key]; len(clones) > 0 {
		proc := clones[len(clones)-1]
		w.warm[img.Key] = clones[:len(clones)-1]
		w.warmCount--
		p.m.parked.Add(-1)
		w.stats.parked.Add(-1)
		p.m.warmHits.Inc()
		w.stats.warmHits.Inc()
		tr.Record(obs.Event{Kind: obs.EvWarmHit, Job: t.id, Worker: w.id})
		return proc, true, nil
	}
	p.m.warmMisses.Inc()
	tr.Record(obs.Event{Kind: obs.EvWarmMiss, Job: t.id, Worker: w.id})
	proc, err := w.rt.Restore(img.Snap)
	d := time.Since(start).Nanoseconds()
	span.RestoreNS += d
	p.m.restore.Observe(uint64(d))
	p.m.restores.Inc()
	w.stats.restores.Inc()
	tr.Record(obs.Event{Kind: obs.EvRestore, Job: t.id, Worker: w.id, DurNS: d})
	return proc, false, err
}

// replenish grows this worker's warm set for img back to WarmPerImage and
// shrinks the pool if the total parked count exceeds MaxWarm, evicting
// the least-recently-served image's clones (slot recycling: evicted
// clones are killed, freeing their slots and memory).
func (w *worker) replenish(img *Image) {
	w.touch(img.Key)
	for len(w.warm[img.Key]) < w.pool.cfg.WarmPerImage {
		if w.warmCount >= w.pool.cfg.MaxWarm {
			before := w.warmCount
			w.evictOldest(img.Key)
			if w.warmCount == before {
				return // nothing evictable: stay at the cap
			}
		}
		proc, err := w.rt.Restore(img.Snap)
		if err != nil {
			return // out of slots: serve future requests by direct restore
		}
		w.pool.m.restores.Inc()
		w.stats.restores.Inc()
		w.warm[img.Key] = append(w.warm[img.Key], proc)
		w.warmCount++
		w.pool.m.parked.Add(1)
		w.stats.parked.Add(1)
	}
}

func (w *worker) touch(key string) {
	for i, k := range w.lru {
		if k == key {
			w.lru = append(w.lru[:i], w.lru[i+1:]...)
			break
		}
	}
	w.lru = append(w.lru, key)
}

func (w *worker) evictOldest(keep string) {
	for i, k := range w.lru {
		if k == keep || len(w.warm[k]) == 0 {
			continue
		}
		clones := w.warm[k]
		victim := clones[len(clones)-1]
		w.warm[k] = clones[:len(clones)-1]
		w.warmCount--
		w.rt.KillProcess(victim, 0)
		w.pool.m.parked.Add(-1)
		w.stats.parked.Add(-1)
		w.pool.m.evictions.Inc()
		w.stats.evictions.Inc()
		w.pool.obs.Trace().Record(obs.Event{Kind: obs.EvEvict, Worker: w.id, PID: victim.PID})
		if len(w.warm[k]) == 0 {
			delete(w.warm, k)
			w.lru = append(w.lru[:i], w.lru[i+1:]...)
		}
		return
	}
}
