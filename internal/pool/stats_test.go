package pool

import (
	"testing"

	"lfi/internal/core"
)

// TestShedAndQueueDepthSurface pins the router-facing observability
// contract: RecordShed lands in Stats.Shed and the pool.jobs.shed
// counter, and queue depth is published as the pool.queue.depth gauge.
func TestShedAndQueueDepthSurface(t *testing.T) {
	p := New(Config{Workers: 1})
	defer p.Close()

	p.RecordShed()
	p.RecordShed()
	if got := p.Stats().Shed; got != 2 {
		t.Errorf("Stats().Shed = %d, want 2", got)
	}
	snap := p.Metrics()
	if got := snap.Counters["pool.jobs.shed"]; got != 2 {
		t.Errorf("pool.jobs.shed = %d, want 2", got)
	}
	if _, ok := snap.Gauges["pool.queue.depth"]; !ok {
		t.Error("pool.queue.depth gauge missing from metrics")
	}
	if got := p.QueueDepth(); got != 0 {
		t.Errorf("QueueDepth() = %d on an idle pool", got)
	}
}

// TestSharedCacheAcrossPools pins the shard-router contract: two pools
// built on one SharedCache deduplicate builds and serve each other's
// images (snapshots restore anywhere the runtime config matches).
func TestSharedCacheAcrossPools(t *testing.T) {
	cfg := Config{Workers: 1}
	cache := NewCache(cfg.RuntimeConfig())
	a := New(Config{Workers: 1, SharedCache: cache})
	defer a.Close()
	b := New(Config{Workers: 1, SharedCache: cache})
	defer b.Close()

	img, err := a.BuildImage(tenantSrc(11), core.Options{Opt: core.O2})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := cache.Lookup(img.Key)
	if !ok || got != img {
		t.Fatal("build did not land in the shared cache")
	}
	// Pool b serves the image a built, warm path included.
	for i := 0; i < 2; i++ {
		res, err := b.Do(Job{Image: img})
		if err != nil || res.Err != nil {
			t.Fatal(err, res)
		}
		if res.Status != 11 || string(res.Stdout) != tenantOut(11) {
			t.Errorf("cross-pool serve: %+v", res)
		}
	}
	if b.Stats().WarmHits == 0 {
		t.Error("no warm hit serving a shared-cache image")
	}
}
