package pool

import (
	"encoding/binary"
	"testing"

	"lfi/internal/core"
	"lfi/internal/wasmfront"
)

// wasmChecksum runs the module on the reference interpreter and returns
// the 8-byte little-endian checksum the sandboxed build must write.
func wasmChecksum(t testing.TB, wasm []byte) []byte {
	t.Helper()
	m, err := wasmfront.Decode(wasm)
	if err != nil {
		t.Fatal(err)
	}
	res, trap, err := wasmfront.NewInterp(m).Run()
	if err != nil || trap != wasmfront.TrapNone {
		t.Fatalf("interp: res=%#x trap=%v err=%v", res, trap, err)
	}
	out := make([]byte, 8)
	binary.LittleEndian.PutUint64(out, res)
	return out
}

// TestPoolServesWasm pushes a nontrivial module — recursive calls,
// indirect dispatch through a funcref table, and linear-memory traffic —
// through the content-hashed image cache and a worker, end to end.
func TestPoolServesWasm(t *testing.T) {
	p := New(Config{Workers: 2})
	defer p.Close()

	wasm := wasmfront.SampleCalls(200)
	want := wasmChecksum(t, wasm)

	img, err := p.BuildWasmImage(wasm, core.Options{Opt: core.O2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Do(Job{Image: img})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Status != 0 {
		t.Fatalf("status = %d, want 0", res.Status)
	}
	if string(res.Stdout) != string(want) {
		t.Errorf("checksum = %x, want %x", res.Stdout, want)
	}
}

// TestWasmImageCacheDeduplicates checks identical module bytes hit the
// cache while different options miss.
func TestWasmImageCacheDeduplicates(t *testing.T) {
	p := New(Config{Workers: 1})
	defer p.Close()

	wasm := wasmfront.SampleArithLoop(50)
	a, err := p.BuildWasmImage(wasm, core.Options{Opt: core.O2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.BuildWasmImage(wasm, core.Options{Opt: core.O2})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("identical wasm built two images")
	}
	c, err := p.BuildWasmImage(wasm, core.Options{Opt: core.O0})
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("different options shared an image")
	}

	// Wasm jobs run through the standard worker path.
	res, err := p.Do(Job{Image: a})
	if err != nil || res.Err != nil {
		t.Fatalf("run: %v / %v", err, res.Err)
	}
	if string(res.Stdout) != string(wasmChecksum(t, wasm)) {
		t.Errorf("checksum mismatch")
	}
}

// TestWasmBuildRejectsInvalid ensures malformed modules fail at build
// time, not at serve time.
func TestWasmBuildRejectsInvalid(t *testing.T) {
	p := New(Config{Workers: 1})
	defer p.Close()
	if _, err := p.BuildWasmImage([]byte("\x00asm junk"), core.Options{Opt: core.O2}); err == nil {
		t.Error("malformed wasm accepted")
	}
}
