package pool

import (
	"errors"
	"testing"

	"lfi/internal/core"
	"lfi/internal/lfirt"
	"lfi/internal/progs"
)

// filterSrc reads stdin byte by byte until EOF, incrementing each byte
// and copying it to stdout — the canonical pipeline stage.
var filterSrc = `
_start:
floop:
	mov x0, #0
	adrp x1, fbuf
	add x1, x1, :lo12:fbuf
	mov x2, #1
` + progs.RTCall(core.RTRead) + `
	cmp x0, #1
	b.ne fdone
	adrp x9, fbuf
	add x9, x9, :lo12:fbuf
	ldrb w10, [x9]
	add w10, w10, #1
	strb w10, [x9]
	mov x0, #1
	adrp x1, fbuf
	add x1, x1, :lo12:fbuf
	mov x2, #1
` + progs.RTCall(core.RTWrite) + `
	b floop
fdone:
	mov x0, #0
` + progs.Exit() + `
.bss
fbuf:
	.space 8
`

// sourceSrc writes "abc" to stdout and exits.
var sourceSrc = `
_start:
	mov x0, #1
	adrp x1, msg
	add x1, x1, :lo12:msg
	mov x2, #3
` + progs.RTCall(core.RTWrite) + `
	mov x0, #0
` + progs.Exit() + `
.rodata
msg:
	.ascii "abc"
`

func TestPipelineJob(t *testing.T) {
	p := New(Config{Workers: 1})
	defer p.Close()
	f := mustImage(t, p, filterSrc)

	res, err := p.Do(Job{Images: []*Image{f, f, f}, Input: []byte("abc")})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Status != 0 {
		t.Errorf("status = %d", res.Status)
	}
	if got := string(res.Stdout); got != "def" {
		t.Errorf("3-stage output = %q, want %q", got, "def")
	}
	if len(res.Stages) != 3 {
		t.Fatalf("got %d stage results, want 3", len(res.Stages))
	}
	for i, sr := range res.Stages {
		if sr.Status != 0 {
			t.Errorf("stage %d status = %d", i, sr.Status)
		}
	}

	st := p.Stats()
	if st.Pipelines != 1 || st.Stages != 3 {
		t.Errorf("pipeline stats = %d jobs / %d stages, want 1/3", st.Pipelines, st.Stages)
	}

	// The job's span must carry the per-stage breakdown.
	spans := p.Spans()
	if len(spans) == 0 {
		t.Fatal("no spans recorded")
	}
	last := spans[len(spans)-1]
	if len(last.Stages) != 3 {
		t.Fatalf("span has %d stages, want 3", len(last.Stages))
	}
	for i, ss := range last.Stages {
		if ss.Status != 0 || ss.PID == 0 || ss.Image == "" {
			t.Errorf("span stage %d = %+v", i, ss)
		}
	}
}

func TestPipelineDistinctImages(t *testing.T) {
	p := New(Config{Workers: 1})
	defer p.Close()
	src := mustImage(t, p, sourceSrc)
	f := mustImage(t, p, filterSrc)

	res, err := p.Do(Job{Images: []*Image{src, f, f}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if got := string(res.Stdout); got != "cde" {
		t.Errorf("source→filter→filter output = %q, want %q", got, "cde")
	}
}

func TestPipelineWarmHits(t *testing.T) {
	// Three stages of the same image need three parked clones for a
	// fully-warm pipeline.
	p := New(Config{Workers: 1, WarmPerImage: 3})
	defer p.Close()
	f := mustImage(t, p, filterSrc)
	job := Job{Images: []*Image{f, f, f}, Input: []byte("x")}

	first, err := p.Do(job)
	if err != nil || first.Err != nil {
		t.Fatalf("first: %v / %v", err, first.Err)
	}
	second, err := p.Do(job)
	if err != nil || second.Err != nil {
		t.Fatalf("second: %v / %v", err, second.Err)
	}
	if !second.WarmHit {
		t.Error("second pipeline run was not fully warm")
	}
	for i, sr := range second.Stages {
		if !sr.WarmHit {
			t.Errorf("stage %d of warmed pipeline missed", i)
		}
	}
	if got := string(second.Stdout); got != "{" { // 'x' + 3
		t.Errorf("output = %q, want %q", got, "{")
	}
}

func TestPipelineValidation(t *testing.T) {
	p := New(Config{Workers: 1})
	defer p.Close()
	f := mustImage(t, p, filterSrc)

	if _, err := p.Submit(Job{}); err == nil {
		t.Error("empty job accepted")
	}
	if _, err := p.Submit(Job{Image: f, Images: []*Image{f}}); err == nil {
		t.Error("job with both Image and Images accepted")
	}
	if _, err := p.Submit(Job{Images: []*Image{f, nil}}); err == nil {
		t.Error("pipeline with nil stage accepted")
	}
}

// TestPipelineBudgetKill runs a pipeline whose producer spins forever so
// the consumer never sees EOF: the job must die by instruction budget,
// the stuck producer must be reaped, and the worker must stay healthy.
func TestPipelineBudgetKill(t *testing.T) {
	p := New(Config{Workers: 1})
	defer p.Close()
	spin := mustImage(t, p, spinSrc)
	f := mustImage(t, p, filterSrc)

	res, err := p.Do(Job{Images: []*Image{spin, f}, Budget: 200_000})
	if err != nil {
		t.Fatal(err)
	}
	var de *lfirt.ErrDeadline
	if !errors.As(res.Err, &de) {
		t.Fatalf("err = %v, want deadline", res.Err)
	}
	if len(res.Stages) != 2 {
		t.Fatalf("got %d stage results", len(res.Stages))
	}
	if res.Stages[0].Status != 128+13 {
		t.Errorf("stuck producer status = %d, want %d", res.Stages[0].Status, 128+13)
	}
	if res.Stages[1].Status != 128+24 {
		t.Errorf("budget-killed consumer status = %d, want %d", res.Stages[1].Status, 128+24)
	}
	if got := p.Stats().Deadlines; got != 1 {
		t.Errorf("deadline kills = %d, want 1", got)
	}

	// The worker runtime must be clean: a normal job still serves.
	ok, err := p.Do(Job{Images: []*Image{f, f}, Input: []byte("a")})
	if err != nil || ok.Err != nil {
		t.Fatalf("post-kill job: %v / %v", err, ok.Err)
	}
	if got := string(ok.Stdout); got != "c" {
		t.Errorf("post-kill output = %q, want %q", got, "c")
	}
}
