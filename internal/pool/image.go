package pool

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"lfi/internal/core"
	"lfi/internal/elfobj"
	"lfi/internal/lfirt"
	"lfi/internal/obs"
	"lfi/internal/progs"
	"lfi/internal/wasmfront"
)

// An Image is a program prepared for serving: the verified ELF, its
// parsed segments, and a post-initialization snapshot of a loaded
// sandbox. Building an image runs the whole pipeline once —
// rewrite/assemble (for source), parse, verify, load, snapshot — so that
// serving a request costs only a snapshot restore. Images are immutable
// and safe to share across workers.
type Image struct {
	// Key identifies the image: a hash of the source and options (for
	// Build) or of the ELF bytes (for FromELF).
	Key string
	// ELF is the verified executable (kept for cold-load baselines).
	ELF []byte
	// Exe is the parsed executable.
	Exe *elfobj.Executable
	// Snap is the post-initialization sandbox snapshot workers restore.
	Snap *lfirt.Snapshot
}

// Cache deduplicates image builds by key: repeated submissions of the
// same program skip the compile/verify/load pipeline entirely. The cache
// holds a build lock, so concurrent requests for the same new program
// result in one build (single-flight by construction).
type Cache struct {
	cfg lfirt.Config // runtime configuration images are snapshotted under

	// Registry handles (nil-safe no-ops until setObs).
	mHits, mMisses *obs.Counter

	mu     sync.Mutex
	images map[string]*Image
	hits   uint64
	misses uint64
}

// setObs points the cache's hit/miss counters at a registry
// ("pool.image.hits"/"pool.image.misses").
func (c *Cache) setObs(o *obs.Obs) {
	c.mHits = o.Registry().Counter("pool.image.hits")
	c.mMisses = o.Registry().Counter("pool.image.misses")
}

// SetObs points the cache's hit/miss counters at an external
// observability bundle. Callers sharing one cache across several pools
// (Config.SharedCache) use this to report into the router-level registry
// instead of any one shard's.
func (c *Cache) SetObs(o *obs.Obs) { c.setObs(o) }

// Lookup returns the image already cached under key, if any. It never
// builds: serving front-ends use it to resolve client-supplied image
// keys to prepared images.
func (c *Cache) Lookup(key string) (*Image, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	img, ok := c.images[key]
	return img, ok
}

// NewCache creates an image cache whose snapshots are taken under cfg.
// The page size and stack size must match the runtimes that will restore
// them.
func NewCache(cfg lfirt.Config) *Cache {
	return &Cache{cfg: cfg, images: make(map[string]*Image)}
}

// Build compiles asm source through the LFI pipeline (rewrite → assemble
// → ELF → verify → load → snapshot) and caches the result keyed by
// (source, options).
func (c *Cache) Build(src string, opts core.Options) (*Image, error) {
	h := sha256.New()
	fmt.Fprintf(h, "src:%d:%v:%v:%v\n", opts.Opt, opts.NoLoads, opts.DisableSPOpts, c.cfg.VerifierCfg.NoLoads)
	h.Write([]byte(src))
	key := hex.EncodeToString(h.Sum(nil))

	c.mu.Lock()
	defer c.mu.Unlock()
	if img, ok := c.images[key]; ok {
		c.hits++
		c.mHits.Inc()
		return img, nil
	}
	c.misses++
	c.mMisses.Inc()
	res, err := progs.Build(src, opts)
	if err != nil {
		return nil, err
	}
	img, err := c.makeImage(key, res.ELF)
	if err != nil {
		return nil, err
	}
	c.images[key] = img
	return img, nil
}

// BuildWasm translates a WebAssembly module through the wasmfront
// pipeline (validate → decode → translate → rewrite → assemble → verify
// → load → snapshot) and caches the result keyed by the module's content
// hash and build options. Repeated submissions of the same module bytes
// reuse the prepared image just like asm-source builds.
func (c *Cache) BuildWasm(wasm []byte, opts core.Options) (*Image, error) {
	h := sha256.New()
	fmt.Fprintf(h, "wasm:%d:%v:%v:%v\n", opts.Opt, opts.NoLoads, opts.DisableSPOpts, c.cfg.VerifierCfg.NoLoads)
	h.Write(wasm)
	key := "wasm:" + hex.EncodeToString(h.Sum(nil))

	c.mu.Lock()
	defer c.mu.Unlock()
	if img, ok := c.images[key]; ok {
		c.hits++
		c.mHits.Inc()
		return img, nil
	}
	c.misses++
	c.mMisses.Inc()
	asm, _, err := wasmfront.Translate(wasm)
	if err != nil {
		return nil, err
	}
	res, err := progs.Build(asm, opts)
	if err != nil {
		return nil, err
	}
	img, err := c.makeImage(key, res.ELF)
	if err != nil {
		return nil, err
	}
	c.images[key] = img
	return img, nil
}

// FromELF caches an already-built executable keyed by its content hash.
// The ELF is verified (under the cache's runtime configuration) before an
// image is produced.
func (c *Cache) FromELF(elfBytes []byte) (*Image, error) {
	sum := sha256.Sum256(elfBytes)
	key := "elf:" + hex.EncodeToString(sum[:])

	c.mu.Lock()
	defer c.mu.Unlock()
	if img, ok := c.images[key]; ok {
		c.hits++
		c.mHits.Inc()
		return img, nil
	}
	c.misses++
	c.mMisses.Inc()
	img, err := c.makeImage(key, elfBytes)
	if err != nil {
		return nil, err
	}
	c.images[key] = img
	return img, nil
}

// makeImage verifies and loads the ELF into a scratch runtime and
// snapshots the initialized sandbox. The scratch runtime is discarded;
// only the immutable snapshot survives.
func (c *Cache) makeImage(key string, elfBytes []byte) (*Image, error) {
	exe, err := elfobj.Unmarshal(elfBytes)
	if err != nil {
		return nil, err
	}
	rt := lfirt.New(c.cfg)
	p, err := rt.LoadExecutable(exe)
	if err != nil {
		return nil, err
	}
	snap, err := rt.Snapshot(p)
	if err != nil {
		return nil, err
	}
	return &Image{Key: key, ELF: elfBytes, Exe: exe, Snap: snap}, nil
}

// Len reports how many images the cache holds.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.images)
}

// HitRate returns cache hits and misses so far.
func (c *Cache) HitRate() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
