package pool

import (
	"errors"
	"testing"
	"time"

	"lfi/internal/core"
	"lfi/internal/lfirt"
)

// measureInstantiation times per-request instantiation on one runtime:
// cold = parse + verify + load the ELF; warm = restore the snapshot. The
// sandbox is killed after each instantiation so slots recycle, exactly
// as a serving worker cycles them.
func measureInstantiation(t testing.TB, iters int) (cold, warm time.Duration) {
	cfg := Config{}.withDefaults().RuntimeConfig()
	cache := NewCache(cfg)
	img, err := cache.Build(bigTenantSrc(1, 1500), core.Options{Opt: core.O2})
	if err != nil {
		t.Fatal(err)
	}

	rt := lfirt.New(cfg)
	// Prime both paths once (first-touch allocations).
	if p, err := rt.Load(img.ELF); err != nil {
		t.Fatal(err)
	} else {
		rt.KillProcess(p, 0)
	}
	if p, err := rt.Restore(img.Snap); err != nil {
		t.Fatal(err)
	} else {
		rt.KillProcess(p, 0)
	}

	start := time.Now()
	for i := 0; i < iters; i++ {
		p, err := rt.Load(img.ELF)
		if err != nil {
			t.Fatal(err)
		}
		rt.KillProcess(p, 0)
	}
	cold = time.Since(start) / time.Duration(iters)

	start = time.Now()
	for i := 0; i < iters; i++ {
		p, err := rt.Restore(img.Snap)
		if err != nil {
			t.Fatal(err)
		}
		rt.KillProcess(p, 0)
	}
	warm = time.Since(start) / time.Duration(iters)
	return cold, warm
}

// BenchmarkInstantiateColdLoad measures per-request cold instantiation
// (ELF parse + verify + page-by-page load).
func BenchmarkInstantiateColdLoad(b *testing.B) {
	cfg := Config{}.withDefaults().RuntimeConfig()
	cache := NewCache(cfg)
	img, err := cache.Build(bigTenantSrc(1, 1500), core.Options{Opt: core.O2})
	if err != nil {
		b.Fatal(err)
	}
	rt := lfirt.New(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := rt.Load(img.ELF)
		if err != nil {
			b.Fatal(err)
		}
		rt.KillProcess(p, 0)
	}
}

// BenchmarkInstantiateRestore measures per-request warm instantiation
// (snapshot restore into a fresh slot).
func BenchmarkInstantiateRestore(b *testing.B) {
	cfg := Config{}.withDefaults().RuntimeConfig()
	cache := NewCache(cfg)
	img, err := cache.Build(bigTenantSrc(1, 1500), core.Options{Opt: core.O2})
	if err != nil {
		b.Fatal(err)
	}
	rt := lfirt.New(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := rt.Restore(img.Snap)
		if err != nil {
			b.Fatal(err)
		}
		rt.KillProcess(p, 0)
	}
}

// BenchmarkPoolThroughput serves jobs end to end (instantiate + execute +
// capture) through the full pool, comparing cold load-per-request against
// snapshot-restore-per-request. The jobs_per_sec metric is the aggregate
// serving throughput.
func BenchmarkPoolThroughput(b *testing.B) {
	for _, mode := range []struct {
		name string
		cold bool
	}{
		{"cold-load", true},
		{"snapshot-restore", false},
	} {
		b.Run(mode.name, func(b *testing.B) {
			p := New(Config{Workers: 4, QueueDepth: 64})
			defer p.Close()
			img, err := p.BuildImage(bigTenantSrc(1, 1500), core.Options{Opt: core.O2})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					for {
						res, err := p.Do(Job{Image: img, Cold: mode.cold})
						if errors.Is(err, ErrQueueFull) {
							continue // bounded queue: back off and resubmit
						}
						if err != nil {
							b.Fatal(err)
						}
						if res.Err != nil {
							b.Fatal(res.Err)
						}
						break
					}
				}
			})
			b.StopTimer()
			if b.Elapsed() > 0 {
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
			}
		})
	}
}
