package pool

import (
	"context"
	"errors"
	"testing"
	"time"

	"lfi/internal/obs"
)

// TestDoCtxCancelKillsSpinner proves the acceptance property: canceling
// the context of an in-flight job kills the spinning sandbox promptly
// and the error matches both ErrCanceled and the context's own error.
func TestDoCtxCancelKillsSpinner(t *testing.T) {
	p := New(Config{Workers: 1})
	defer p.Close()
	spin := mustImage(t, p, spinSrc)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()

	start := time.Now()
	// Huge budget: only cancellation can stop this job.
	res, err := p.DoCtx(ctx, Job{Image: spin, Budget: 1 << 60})
	elapsed := time.Since(start)

	if err == nil {
		t.Fatal("canceled job returned nil error")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("errors.Is(err, ErrCanceled) = false: %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("errors.Is(err, context.Canceled) = false: %v", err)
	}
	if res == nil {
		t.Fatal("canceled job returned nil result")
	}
	if !errors.Is(res.Err, ErrCanceled) {
		t.Errorf("result error does not match ErrCanceled: %v", res.Err)
	}
	// "Promptly": one timeslice is ~200k instructions — far under a
	// second even on a slow host.
	if elapsed > 5*time.Second {
		t.Errorf("cancellation took %v", elapsed)
	}
	// The worker survives: a normal job still runs afterwards.
	ok := mustImage(t, p, tenantSrc(4))
	r, err := p.Do(Job{Image: ok})
	if err != nil || r.Err != nil {
		t.Fatalf("worker unusable after cancellation: %v %v", err, r)
	}
	if got := p.Stats().Canceled; got != 1 {
		t.Errorf("Stats().Canceled = %d, want 1", got)
	}
}

func TestDoCtxDeadline(t *testing.T) {
	p := New(Config{Workers: 1})
	defer p.Close()
	spin := mustImage(t, p, spinSrc)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := p.DoCtx(ctx, Job{Image: spin, Budget: 1 << 60})
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("errors.Is(err, ErrCanceled) = false: %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("errors.Is(err, context.DeadlineExceeded) = false: %v", err)
	}
}

func TestSubmitCtxAlreadyDone(t *testing.T) {
	p := New(Config{Workers: 1})
	defer p.Close()
	img := mustImage(t, p, tenantSrc(1))

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.SubmitCtx(ctx, Job{Image: img}); !errors.Is(err, ErrCanceled) {
		t.Errorf("submit with done context: %v, want ErrCanceled", err)
	}
}

// TestCanceledBeforeDequeue parks a worker on a long job, queues a
// second job, cancels it while queued, and checks it is skipped with
// ctx.Err() — without the sandbox ever starting.
func TestCanceledBeforeDequeue(t *testing.T) {
	p := New(Config{Workers: 1, QueueDepth: 4})
	defer p.Close()
	spin := mustImage(t, p, spinSrc)
	quick := mustImage(t, p, tenantSrc(2))

	// Occupy the single worker (bounded by its budget).
	busy, err := p.Submit(Job{Image: spin, Budget: 5_000_000})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	queued, err := p.SubmitCtx(ctx, Job{Image: quick})
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	res := queued.Wait()
	if !errors.Is(res.Err, ErrCanceled) || !errors.Is(res.Err, context.Canceled) {
		t.Errorf("queued job error = %v, want ErrCanceled wrapping context.Canceled", res.Err)
	}
	if res.Instrs != 0 {
		t.Errorf("skipped job retired %d instructions", res.Instrs)
	}
	busy.Wait()
}

// TestObservabilityEndToEnd drives jobs through a pool and checks that
// the registry, per-worker stats, and per-job spans describe them: the
// end-to-end proof that queue-wait/restore/run latency and warm
// hit/miss counters are observable.
func TestObservabilityEndToEnd(t *testing.T) {
	p := New(Config{Workers: 1})
	defer p.Close()
	img := mustImage(t, p, tenantSrc(5))

	const jobs = 3
	for i := 0; i < jobs; i++ {
		res, err := p.Do(Job{Image: img})
		if err != nil || res.Err != nil {
			t.Fatal(err, res)
		}
	}

	snap := p.Metrics()
	if got := snap.Counters["pool.jobs.completed"]; got != jobs {
		t.Errorf("pool.jobs.completed = %d, want %d", got, jobs)
	}
	if got := snap.Counters["pool.warm.hits"]; got != jobs-1 {
		t.Errorf("pool.warm.hits = %d, want %d", got, jobs-1)
	}
	if got := snap.Counters["pool.warm.misses"]; got != 1 {
		t.Errorf("pool.warm.misses = %d, want 1", got)
	}
	if got := snap.Counters["pool.image.misses"]; got != 1 {
		t.Errorf("pool.image.misses = %d, want 1", got)
	}
	// Runtime-level and emulator-level counters flow into the same
	// registry via the worker runtimes.
	if got := snap.Counters["rt.host_calls"]; got < jobs {
		t.Errorf("rt.host_calls = %d, want >= %d", got, jobs)
	}
	if got := snap.Counters["rt.verifies"]; got == 0 {
		t.Error("rt.verifies = 0, want > 0 (image build verifies)")
	}
	for _, h := range []string{
		"pool.latency.queue_wait_ns", "pool.latency.restore_ns",
		"pool.latency.run_ns", "pool.latency.total_ns",
	} {
		hist, ok := snap.Histograms[h]
		if !ok || hist.Count == 0 {
			t.Errorf("histogram %s missing or empty", h)
		}
	}
	if got := snap.Histograms["pool.latency.restore_ns"].Count; got != 1 {
		t.Errorf("restore latency observations = %d, want 1 (one warm miss)", got)
	}

	// Per-worker breakdown.
	st := p.Stats()
	if len(st.Workers) != 1 {
		t.Fatalf("worker stats count = %d, want 1", len(st.Workers))
	}
	w := st.Workers[0]
	if w.Jobs != jobs || w.WarmHits != jobs-1 || w.Instrs == 0 {
		t.Errorf("worker stats = %+v", w)
	}
	if w.Parked == 0 {
		t.Error("no parked clones after replenishment")
	}

	// Spans: one per job, with the latency decomposition filled in.
	spans := p.Spans()
	if len(spans) != jobs {
		t.Fatalf("spans = %d, want %d", len(spans), jobs)
	}
	for i, s := range spans {
		if s.RunNS <= 0 || s.TotalNS < s.RunNS {
			t.Errorf("span %d: run=%d total=%d", i, s.RunNS, s.TotalNS)
		}
		if s.Instrs == 0 {
			t.Errorf("span %d: no instructions", i)
		}
		if i == 0 && (s.WarmHit || s.RestoreNS <= 0) {
			t.Errorf("first span should be a timed restore: %+v", s)
		}
		if i > 0 && !s.WarmHit {
			t.Errorf("span %d should be a warm hit", i)
		}
	}

	// Events cover the whole job lifecycle.
	kinds := map[obs.EventKind]int{}
	for _, e := range p.Events() {
		kinds[e.Kind]++
	}
	for _, k := range []obs.EventKind{
		obs.EvJobEnqueue, obs.EvJobDequeue, obs.EvJobStart, obs.EvJobFinish,
		obs.EvWarmHit, obs.EvWarmMiss, obs.EvRestore, obs.EvVerify, obs.EvHostCall,
	} {
		if kinds[k] == 0 {
			t.Errorf("no %v events recorded", k)
		}
	}
}

// TestExternalObs shares one registry between two pools.
func TestExternalObs(t *testing.T) {
	o := obs.New()
	p1 := New(Config{Workers: 1, Obs: o})
	defer p1.Close()
	p2 := New(Config{Workers: 1, Obs: o})
	defer p2.Close()
	img1 := mustImage(t, p1, tenantSrc(1))
	img2 := mustImage(t, p2, tenantSrc(1))
	if _, err := p1.Do(Job{Image: img1}); err != nil {
		t.Fatal(err)
	}
	if _, err := p2.Do(Job{Image: img2}); err != nil {
		t.Fatal(err)
	}
	if got := o.Reg.Snapshot().Counters["pool.jobs.completed"]; got != 2 {
		t.Errorf("shared registry completed = %d, want 2", got)
	}
}
