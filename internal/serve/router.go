package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"lfi/internal/pool"
)

// pending is one admitted job waiting for shard dispatch. The dispatcher
// resolves it exactly once: with a pool ticket (tkCh) once submitted, or
// with an admission-path error (errCh). Both channels are buffered so
// resolution never blocks on a waiter that already gave up.
type pending struct {
	spec *jobSpec
	ctx  context.Context
	enq  time.Time

	// start and finish are the job's weighted-fair-queueing virtual
	// tags: start = max(shard vtime, tenant's last finish), finish =
	// start + 1/weight. Dispatch order is ascending finish tag, which
	// serves tenants capacity proportional to their weights.
	start, finish float64

	tkCh  chan *pool.Ticket
	errCh chan error
}

// tenantQ is one tenant's bounded FIFO on one shard, plus its WFQ
// bookkeeping.
type tenantQ struct {
	t          *tenant
	q          []*pending
	lastFinish float64
}

// shard owns one pool and schedules admitted jobs onto it with weighted
// fair queueing across tenants. A single dispatcher goroutine drains the
// per-tenant queues in virtual-time order and submits to the pool,
// stalling on pool.ErrQueueFull until the pool's OnJobDone hook signals
// freed capacity — that stall is the backpressure that fills the tenant
// queues and ultimately triggers shedding at enqueue.
type shard struct {
	id     int
	server *Server
	pool   *pool.Pool

	mu      sync.Mutex
	queues  map[string]*tenantQ
	vtime   float64
	queued  int
	closing bool

	// wake (buffered 1) nudges the dispatcher when work arrives or the
	// shard starts closing; capCh (buffered 1) nudges it when a pool job
	// finishes and queue capacity may have freed.
	wake  chan struct{}
	capCh chan struct{}
	done  chan struct{}
}

func newShard(id int, s *Server) *shard {
	return &shard{
		id:     id,
		server: s,
		queues: make(map[string]*tenantQ),
		wake:   make(chan struct{}, 1),
		capCh:  make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
}

// onJobDone is this shard pool's OnJobDone hook: one non-blocking
// capacity signal per resolved job.
func (sh *shard) onJobDone(*pool.Result) {
	select {
	case sh.capCh <- struct{}{}:
	default:
	}
}

func signal(ch chan struct{}) {
	select {
	case ch <- struct{}{}:
	default:
	}
}

// enqueue admits a pending job to its tenant's queue, stamping its WFQ
// tags. It sheds with ErrOverloaded when the tenant queue is at its
// bound and rejects with ErrServerClosed while draining.
func (sh *shard) enqueue(pd *pending) error {
	t := pd.spec.tenant
	sh.mu.Lock()
	if sh.closing {
		sh.mu.Unlock()
		return ErrServerClosed
	}
	tq := sh.queues[t.cfg.Name]
	if tq == nil {
		tq = &tenantQ{t: t, lastFinish: sh.vtime}
		sh.queues[t.cfg.Name] = tq
	}
	if len(tq.q) >= t.cfg.MaxPending {
		sh.mu.Unlock()
		sh.pool.RecordShed()
		return fmt.Errorf("%w (tenant %s, shard %d: %d pending)",
			ErrOverloaded, t.cfg.Name, sh.id, t.cfg.MaxPending)
	}
	pd.start = sh.vtime
	if tq.lastFinish > pd.start {
		pd.start = tq.lastFinish
	}
	pd.finish = pd.start + 1/float64(t.cfg.Weight)
	tq.lastFinish = pd.finish
	tq.q = append(tq.q, pd)
	sh.queued++
	sh.mu.Unlock()
	signal(sh.wake)
	return nil
}

// next blocks until a job is dispatchable and returns the one with the
// minimum virtual finish tag, advancing the shard's virtual time. It
// returns nil once the shard is closing and empty.
func (sh *shard) next() *pending {
	for {
		sh.mu.Lock()
		var best *tenantQ
		for _, tq := range sh.queues {
			if len(tq.q) == 0 {
				continue
			}
			if best == nil || tq.q[0].finish < best.q[0].finish {
				best = tq
			}
		}
		if best != nil {
			pd := best.q[0]
			best.q = best.q[1:]
			sh.queued--
			if pd.start > sh.vtime {
				sh.vtime = pd.start
			}
			sh.mu.Unlock()
			return pd
		}
		closing := sh.closing
		sh.mu.Unlock()
		if closing {
			return nil
		}
		<-sh.wake
	}
}

// dispatch is the shard's scheduler loop: pick the WFQ-next job, submit
// it to the pool, and hand the ticket to the waiter. pool.ErrQueueFull
// stalls the loop (backpressure) until a completion signal.
func (sh *shard) dispatch() {
	defer close(sh.done)
	for {
		pd := sh.next()
		if pd == nil {
			return
		}
		if err := pd.ctx.Err(); err != nil {
			pd.errCh <- fmt.Errorf("%w before dispatch (%w)", pool.ErrCanceled, err)
			continue
		}
		sh.server.m.queueWait.Observe(uint64(sh.server.cfg.now().Sub(pd.enq).Nanoseconds()))
		job := pool.Job{Input: pd.spec.input, Budget: pd.spec.budget, Cold: pd.spec.cold}
		if len(pd.spec.images) == 1 {
			job.Image = pd.spec.images[0]
		} else {
			job.Images = pd.spec.images
		}
		for {
			tk, err := sh.pool.SubmitCtx(pd.ctx, job)
			if err == nil {
				pd.tkCh <- tk
				break
			}
			if !isQueueFull(err) {
				pd.errCh <- err
				break
			}
			// The pool queue is full: every in-flight job's completion
			// sends one capacity signal, and jobs always terminate (budget
			// kills bound runaways), so this wait always ends. The job's
			// own cancellation also unblocks it.
			select {
			case <-sh.capCh:
			case <-pd.ctx.Done():
			}
		}
	}
}

func isQueueFull(err error) bool {
	return errors.Is(err, pool.ErrQueueFull)
}

// queuedFor reports one tenant's queue depth on this shard.
func (sh *shard) queuedFor(tenant string) int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if tq := sh.queues[tenant]; tq != nil {
		return len(tq.q)
	}
	return 0
}

// queuedTotal reports the shard's total queued jobs.
func (sh *shard) queuedTotal() int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.queued
}

// close drains the shard: queued-but-unsubmitted jobs resolve with
// ErrServerClosed (mirroring the pool's own shutdown contract for queued
// work), the dispatcher exits, and the pool closes — completing every
// job it had accepted.
func (sh *shard) close() {
	sh.mu.Lock()
	sh.closing = true
	var dropped []*pending
	for _, tq := range sh.queues {
		dropped = append(dropped, tq.q...)
		tq.q = nil
	}
	sh.queued = 0
	sh.mu.Unlock()
	for _, pd := range dropped {
		pd.errCh <- fmt.Errorf("%w: job dropped at shutdown", ErrServerClosed)
	}
	signal(sh.wake)
	<-sh.done
	sh.pool.Close()
}
