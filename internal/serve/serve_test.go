package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"lfi/internal/core"
	"lfi/internal/lfirt"
	"lfi/internal/pool"
	"lfi/internal/progs"
)

// helloSrc builds a program writing a unique line and exiting with a
// unique status, so routing mixups are detectable.
func helloSrc(id int) string {
	msg := fmt.Sprintf("hello-%02d\n", id)
	return fmt.Sprintf(`
_start:
	mov x0, #1
	adrp x1, msg
	add x1, x1, :lo12:msg
	mov x2, #%d
%s%s
.rodata
msg:
	.ascii %q
`, len(msg), progs.RTCall(core.RTWrite), progs.ExitCode(id), msg)
}

func helloOut(id int) string { return fmt.Sprintf("hello-%02d\n", id) }

// spinSrc never exits on its own; only a budget kill or a cancellation
// terminates it.
const spinSrc = `
_start:
spin:
	b spin
`

func newTestServer(t testing.TB, cfg Config) *Server {
	t.Helper()
	if cfg.Pool.Workers == 0 {
		cfg.Pool.Workers = 2
	}
	s := New(cfg)
	t.Cleanup(s.Close)
	return s
}

func mustServeImage(t testing.TB, s *Server, name, src string) *pool.Image {
	t.Helper()
	img, err := s.BuildImage(name, src, core.Options{Opt: core.O2})
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func postJob(t testing.TB, ts *httptest.Server, req *JobRequest) (*JobResponse, int) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out JobResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return &out, resp.StatusCode
}

func TestHTTPSyncJob(t *testing.T) {
	s := newTestServer(t, Config{Shards: 2})
	mustServeImage(t, s, "hello", helloSrc(7))
	ts := httptest.NewServer(s.Mux())
	defer ts.Close()

	resp, code := postJob(t, ts, &JobRequest{Image: "hello"})
	if code != http.StatusOK {
		t.Fatalf("status = %d, body %+v", code, resp)
	}
	if resp.ErrorKind != "ok" || resp.Status != 7 || resp.Stdout != helloOut(7) {
		t.Errorf("response = %+v", resp)
	}

	// Inline source builds through the shared cache and runs the same way.
	resp, code = postJob(t, ts, &JobRequest{Source: helloSrc(3)})
	if code != http.StatusOK || resp.Status != 3 || resp.Stdout != helloOut(3) {
		t.Errorf("inline source: code=%d resp=%+v", code, resp)
	}
}

func TestHTTPImageRegistration(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Mux())
	defer ts.Close()

	body, _ := json.Marshal(&ImageRequest{Name: "greet", Source: helloSrc(5)})
	resp, err := http.Post(ts.URL+"/v1/images", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var ir ImageResponse
	json.NewDecoder(resp.Body).Decode(&ir)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || ir.Key == "" {
		t.Fatalf("register: code=%d resp=%+v", resp.StatusCode, ir)
	}

	// The image serves by alias and by raw cache key.
	for _, ref := range []string{"greet", ir.Key} {
		jr, code := postJob(t, ts, &JobRequest{Image: ref})
		if code != http.StatusOK || jr.Status != 5 {
			t.Errorf("serve by %q: code=%d resp=%+v", ref, code, jr)
		}
	}

	// And it shows up in the listing.
	lresp, err := http.Get(ts.URL + "/v1/images")
	if err != nil {
		t.Fatal(err)
	}
	var list []ImageResponse
	json.NewDecoder(lresp.Body).Decode(&list)
	lresp.Body.Close()
	if len(list) != 1 || list[0].Name != "greet" || list[0].Key != ir.Key {
		t.Errorf("image list = %+v", list)
	}
}

func TestHTTPErrorStatuses(t *testing.T) {
	s := newTestServer(t, Config{
		Tenants: []TenantConfig{{Name: "metered", Rate: 1, Burst: 1}},
	})
	s.cfg.now = func() time.Time { return time.Unix(5000, 0) } // freeze refill
	mustServeImage(t, s, "hello", helloSrc(1))
	mustServeImage(t, s, "spin", spinSrc)
	ts := httptest.NewServer(s.Mux())
	defer ts.Close()

	// Unknown image → 404 unknown_image.
	resp, code := postJob(t, ts, &JobRequest{Image: "no-such-image"})
	if code != http.StatusNotFound || resp.ErrorKind != "unknown_image" {
		t.Errorf("unknown image: code=%d resp=%+v", code, resp)
	}

	// Malformed JSON → 400 bad_request.
	hr, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON: code=%d", hr.StatusCode)
	}

	// Ambiguous spec (image AND source) → 400.
	resp, code = postJob(t, ts, &JobRequest{Image: "hello", Source: spinSrc})
	if code != http.StatusBadRequest || resp.ErrorKind != "bad_request" {
		t.Errorf("ambiguous spec: code=%d resp=%+v", code, resp)
	}

	// Over-quota tenant → 429 quota; the frozen clock never refills, so
	// the second request must be rejected while the first succeeds.
	resp, code = postJob(t, ts, &JobRequest{Image: "hello", Tenant: "metered"})
	if code != http.StatusOK {
		t.Fatalf("first metered request: code=%d resp=%+v", code, resp)
	}
	resp, code = postJob(t, ts, &JobRequest{Image: "hello", Tenant: "metered"})
	if code != http.StatusTooManyRequests || resp.ErrorKind != "quota" {
		t.Errorf("over quota: code=%d resp=%+v", code, resp)
	}
	st := s.Status()
	var metered *TenantStatus
	for i := range st.Tenants {
		if st.Tenants[i].Name == "metered" {
			metered = &st.Tenants[i]
		}
	}
	if metered == nil || metered.QuotaRejects != 1 {
		t.Errorf("metered tenant status = %+v", metered)
	}

	// Budget exhaustion inside the sandbox → 408 deadline.
	resp, code = postJob(t, ts, &JobRequest{Image: "spin", Budget: 100_000})
	if code != http.StatusRequestTimeout || resp.ErrorKind != "deadline" {
		t.Errorf("deadline: code=%d resp=%+v", code, resp)
	}
}

func TestErrorKindTaxonomy(t *testing.T) {
	cases := []struct {
		err    error
		kind   string
		status int
	}{
		{nil, "ok", 200},
		{ErrTenantQuota, "quota", 429},
		{fmt.Errorf("wrap: %w", ErrOverloaded), "overloaded", 503},
		{ErrServerClosed, "closed", 503},
		{pool.ErrClosed, "closed", 503},
		{pool.ErrQueueFull, "queue_full", 503},
		{ErrUnknownImage, "unknown_image", 404},
		{fmt.Errorf("%w: bad store", lfirt.ErrVerify), "verify", 400},
		{pool.ErrCanceled, "canceled", 499},
		{lfirt.ErrCanceled, "canceled", 499},
		{&lfirt.ErrDeadline{PID: 1, Budget: 5}, "deadline", 408},
		{errors.New("mystery"), "internal", 500},
	}
	for _, c := range cases {
		kind, status := ErrorKind(c.err)
		if kind != c.kind || status != c.status {
			t.Errorf("ErrorKind(%v) = %q/%d, want %q/%d", c.err, kind, status, c.kind, c.status)
		}
		// The response-document mapping must agree with the error mapping.
		if got := httpStatusFor(&JobResponse{ErrorKind: kind}); got != status {
			t.Errorf("httpStatusFor(%q) = %d, want %d", kind, got, status)
		}
	}
}

func TestAsyncLifecycle(t *testing.T) {
	s := newTestServer(t, Config{})
	mustServeImage(t, s, "hello", helloSrc(9))
	ts := httptest.NewServer(s.Mux())
	defer ts.Close()

	resp, code := postJob(t, ts, &JobRequest{Image: "hello", Async: true})
	if code != http.StatusAccepted || resp.ID == "" || resp.State != JobStatePending {
		t.Fatalf("async submit: code=%d resp=%+v", code, resp)
	}

	final := pollJob(t, ts, resp.ID, 5*time.Second)
	if final.ErrorKind != "ok" || final.Status != 9 || final.Stdout != helloOut(9) {
		t.Errorf("async result = %+v", final)
	}

	// Unknown id → 404.
	hr, err := http.Get(ts.URL + "/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: code=%d", hr.StatusCode)
	}
}

func pollJob(t testing.TB, ts *httptest.Server, id string, timeout time.Duration) *JobResponse {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		hr, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var jr JobResponse
		json.NewDecoder(hr.Body).Decode(&jr)
		hr.Body.Close()
		if jr.State == JobStateDone {
			return &jr
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish within %v", id, timeout)
	return nil
}

func TestAsyncCancel(t *testing.T) {
	s := newTestServer(t, Config{})
	mustServeImage(t, s, "spin", spinSrc)
	ts := httptest.NewServer(s.Mux())
	defer ts.Close()

	// A spin job with an enormous budget only terminates via cancel.
	resp, code := postJob(t, ts, &JobRequest{Image: "spin", Budget: 1 << 50, Async: true})
	if code != http.StatusAccepted {
		t.Fatalf("submit: code=%d resp=%+v", code, resp)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+resp.ID, nil)
	hr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()

	final := pollJob(t, ts, resp.ID, 10*time.Second)
	if final.ErrorKind != "canceled" {
		t.Errorf("canceled job resolved as %+v", final)
	}
}

func TestCancelMidFlight(t *testing.T) {
	s := newTestServer(t, Config{Pool: pool.Config{Workers: 1}})
	img := mustServeImage(t, s, "spin", spinSrc)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	spec := &jobSpec{tenant: s.tenantFor(""), images: []*pool.Image{img}, budget: 1 << 50}
	res, _, err := s.run(ctx, spec)
	// The cancel can land while queued (run returns the error) or mid-run
	// (the pool resolves the ticket with a canceled result); both must
	// classify as "canceled".
	outcome := err
	if err == nil {
		outcome = res.Err
	}
	if kind, _ := ErrorKind(outcome); kind != "canceled" {
		t.Errorf("outcome = %v (kind %s), want canceled", outcome, kind)
	}
}

func TestStreamingNDJSON(t *testing.T) {
	s := newTestServer(t, Config{})
	mustServeImage(t, s, "hello", helloSrc(4))
	ts := httptest.NewServer(s.Mux())
	defer ts.Close()

	body, _ := json.Marshal(&JobRequest{Image: "hello", Stream: true})
	hr, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("stream status = %d", hr.StatusCode)
	}
	if ct := hr.Header.Get("Content-Type"); !strings.Contains(ct, "ndjson") {
		t.Errorf("content type = %q", ct)
	}
	var events []streamEvent
	sc := bufio.NewScanner(hr.Body)
	for sc.Scan() {
		var ev streamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if len(events) < 3 {
		t.Fatalf("events = %+v", events)
	}
	if events[0].Event != "accepted" {
		t.Errorf("first event = %+v", events[0])
	}
	var stdout strings.Builder
	for _, ev := range events[1 : len(events)-1] {
		if ev.Event == "stdout" {
			stdout.WriteString(ev.Data)
		}
	}
	if stdout.String() != helloOut(4) {
		t.Errorf("streamed stdout = %q", stdout.String())
	}
	last := events[len(events)-1]
	if last.Event != "done" || last.Done == nil || last.Done.ErrorKind != "ok" ||
		last.Done.Status != 4 || last.Done.Stdout != "" {
		t.Errorf("done event = %+v (done doc %+v)", last, last.Done)
	}
}

// TestShedAndBackpressure drives one tiny shard far past capacity: the
// pool queue backs up, the dispatcher stalls, the tenant queue fills,
// and the excess must shed with ErrOverloaded — visible in the router's
// tenant counters AND the shard pool's shed counter. Everything that was
// admitted must resolve.
func TestShedAndBackpressure(t *testing.T) {
	s := newTestServer(t, Config{
		Shards:     1,
		Pool:       pool.Config{Workers: 1, QueueDepth: 1},
		MaxPending: 2,
	})
	img := mustServeImage(t, s, "spin", spinSrc)

	const n = 24
	var (
		start            = make(chan struct{})
		wg               sync.WaitGroup
		mu               sync.Mutex
		completed, sheds int
		unexpected       []error
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			spec := &jobSpec{tenant: s.tenantFor(""), images: []*pool.Image{img}, budget: 500_000}
			res, _, err := s.run(context.Background(), spec)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil && res != nil:
				completed++ // budget kill inside the sandbox still counts as served
			case errors.Is(err, ErrOverloaded):
				sheds++
			default:
				unexpected = append(unexpected, err)
			}
		}()
	}
	close(start)
	wg.Wait()

	if len(unexpected) > 0 {
		t.Fatalf("unexpected outcomes: %v", unexpected)
	}
	if completed+sheds != n {
		t.Errorf("completed %d + shed %d != %d", completed, sheds, n)
	}
	if sheds == 0 {
		t.Error("no sheds despite 24 jobs against a 2-slot tenant queue")
	}
	if completed == 0 {
		t.Error("no jobs completed")
	}

	// The shed is visible at both layers: the shard pool's stats/metrics
	// and the router's per-tenant counter.
	st := s.ShardStats(0)
	if st.Shed != uint64(sheds) {
		t.Errorf("pool stats shed = %d, want %d", st.Shed, sheds)
	}
	status := s.Status()
	if got := status.Tenants[0].Shed; got != uint64(sheds) {
		t.Errorf("tenant shed counter = %d, want %d", got, sheds)
	}
	if status.Tenants[0].Completed != uint64(completed) {
		t.Errorf("tenant completed = %d, want %d", status.Tenants[0].Completed, completed)
	}

	// After the storm: nothing left queued anywhere.
	if d := s.shards[0].queuedTotal(); d != 0 {
		t.Errorf("tenant queue depth = %d after drain", d)
	}
	if d := s.ShardStats(0).QueueDepth; d != 0 {
		t.Errorf("pool queue depth = %d after drain", d)
	}
}

// TestShutdownDrain closes the server while jobs are queued and running:
// every submission must resolve (served, closed, or shed) — none may
// hang — and post-close submissions are rejected.
func TestShutdownDrain(t *testing.T) {
	s := New(Config{
		Shards:     1,
		Pool:       pool.Config{Workers: 1, QueueDepth: 2},
		MaxPending: 64,
	})
	img, err := s.BuildImage("spin", spinSrc, core.Options{Opt: core.O2})
	if err != nil {
		t.Fatal(err)
	}

	const n = 16
	var wg sync.WaitGroup
	outcomes := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			spec := &jobSpec{tenant: s.tenantFor(""), images: []*pool.Image{img}, budget: 500_000}
			res, _, err := s.run(context.Background(), spec)
			if err == nil {
				// Terminal either way: a completed run, a deadline kill, a
				// cancellation, or the pool dropping its queued jobs at Close.
				err = res.Err
				if err != nil && !errors.Is(err, pool.ErrCanceled) && !errors.Is(err, pool.ErrClosed) {
					var dl *lfirt.ErrDeadline
					if !errors.As(err, &dl) {
						outcomes <- fmt.Errorf("unexpected result error: %w", err)
						return
					}
				}
				outcomes <- nil
				return
			}
			if errors.Is(err, ErrServerClosed) || errors.Is(err, pool.ErrClosed) ||
				errors.Is(err, ErrOverloaded) {
				outcomes <- nil
				return
			}
			outcomes <- fmt.Errorf("unexpected submit error: %w", err)
		}()
	}
	// Let some jobs reach the pool, then pull the plug.
	time.Sleep(10 * time.Millisecond)
	s.Close()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("jobs hung across shutdown")
	}
	close(outcomes)
	for err := range outcomes {
		if err != nil {
			t.Error(err)
		}
	}

	// The drained server rejects new work with the closed taxonomy error.
	spec := &jobSpec{tenant: s.tenantFor(""), images: []*pool.Image{img}}
	if _, _, err := s.run(context.Background(), spec); !errors.Is(err, ErrServerClosed) {
		t.Errorf("post-close run: %v, want ErrServerClosed", err)
	}
	if d := s.shards[0].queuedTotal(); d != 0 {
		t.Errorf("queue depth %d after close", d)
	}
}

func TestMetricsAndStatusEndpoints(t *testing.T) {
	s := newTestServer(t, Config{Shards: 2})
	mustServeImage(t, s, "hello", helloSrc(2))
	ts := httptest.NewServer(s.Mux())
	defer ts.Close()

	if _, code := postJob(t, ts, &JobRequest{Image: "hello"}); code != http.StatusOK {
		t.Fatal("job failed")
	}

	// /metrics merges the router registry with shard-prefixed pool
	// registries into one document.
	hr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters map[string]uint64 `json:"counters"`
		Gauges   map[string]int64  `json:"gauges"`
	}
	json.NewDecoder(hr.Body).Decode(&snap)
	hr.Body.Close()
	if snap.Counters["serve.http.requests"] == 0 {
		t.Error("router counter missing from /metrics")
	}
	served := snap.Counters["shard.0.pool.jobs.completed"] + snap.Counters["shard.1.pool.jobs.completed"]
	if served == 0 {
		t.Errorf("no shard-prefixed pool counters in /metrics: %v", snap.Counters)
	}
	if _, ok := snap.Gauges["shard.0.pool.queue.depth"]; !ok {
		t.Error("shard queue depth gauge missing from /metrics")
	}

	// /statusz reports tenants and shards.
	hr, err = http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	json.NewDecoder(hr.Body).Decode(&st)
	hr.Body.Close()
	if len(st.Shards) != 2 || len(st.Tenants) == 0 {
		t.Errorf("statusz = %+v", st)
	}

	// /healthz flips to 503 once draining.
	hr, _ = http.Get(ts.URL + "/healthz")
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d", hr.StatusCode)
	}
	s.Close()
	hr, _ = http.Get(ts.URL + "/healthz")
	hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining = %d", hr.StatusCode)
	}
	if _, code := postJob(t, ts, &JobRequest{Image: "hello"}); code != http.StatusServiceUnavailable {
		t.Errorf("submit while draining = %d", code)
	}
}

// --- binary protocol ---

type binClient struct {
	t  testing.TB
	c  net.Conn
	br *bufio.Reader
}

func dialBin(t testing.TB, s *Server) *binClient {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.ServeBinary(ln)
	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return &binClient{t: t, c: c, br: bufio.NewReader(c)}
}

func (bc *binClient) send(f frame) {
	bc.t.Helper()
	if err := writeFrame(bc.c, f); err != nil {
		bc.t.Fatal(err)
	}
}

func (bc *binClient) recv() frame {
	bc.t.Helper()
	bc.c.SetReadDeadline(time.Now().Add(30 * time.Second))
	f, err := readFrame(bc.br)
	if err != nil {
		bc.t.Fatal(err)
	}
	return f
}

func TestBinaryProtocolMultiplexing(t *testing.T) {
	s := newTestServer(t, Config{Shards: 2})
	mustServeImage(t, s, "hello", helloSrc(6))
	bc := dialBin(t, s)

	// Interleave a ping with several pipelined requests; responses are
	// matched by id, whatever their order.
	const n = 8
	for i := 1; i <= n; i++ {
		bc.send(frame{typ: frameReq, id: uint64(i), payload: (&binReq{image: "hello"}).marshal()})
	}
	bc.send(frame{typ: framePing, id: 999})

	got := map[uint64]*binRes{}
	pong := false
	for len(got) < n || !pong {
		f := bc.recv()
		switch f.typ {
		case framePong:
			if f.id != 999 {
				t.Errorf("pong id = %d", f.id)
			}
			pong = true
		case frameRes:
			r, err := parseBinRes(f.payload)
			if err != nil {
				t.Fatal(err)
			}
			got[f.id] = r
		default:
			t.Fatalf("unexpected frame type %d", f.typ)
		}
	}
	for id := uint64(1); id <= n; id++ {
		r := got[id]
		if r == nil || r.kind != kindOK || r.status != 6 || string(r.stdout) != helloOut(6) {
			t.Errorf("response %d = %+v", id, r)
		}
	}
}

func TestBinaryProtocolStreamAndErrors(t *testing.T) {
	s := newTestServer(t, Config{})
	mustServeImage(t, s, "hello", helloSrc(8))
	bc := dialBin(t, s)

	// Stream flag: stdout arrives in frameOut chunks before the terminal
	// response, which carries no inline output.
	bc.send(frame{typ: frameReq, id: 1, payload: (&binReq{image: "hello", flags: flagStream}).marshal()})
	var stdout []byte
	for {
		f := bc.recv()
		if f.typ == frameOut {
			stdout = append(stdout, f.payload...)
			continue
		}
		if f.typ == frameErrOut {
			continue
		}
		if f.typ != frameRes {
			t.Fatalf("unexpected frame type %d", f.typ)
		}
		r, err := parseBinRes(f.payload)
		if err != nil {
			t.Fatal(err)
		}
		if r.kind != kindOK || len(r.stdout) != 0 {
			t.Errorf("terminal response = %+v", r)
		}
		break
	}
	if string(stdout) != helloOut(8) {
		t.Errorf("streamed stdout = %q", stdout)
	}

	// Unknown image resolves to its taxonomy code.
	bc.send(frame{typ: frameReq, id: 2, payload: (&binReq{image: "nope"}).marshal()})
	f := bc.recv()
	r, err := parseBinRes(f.payload)
	if err != nil {
		t.Fatal(err)
	}
	if f.id != 2 || r.kind != kindUnknownImage {
		t.Errorf("unknown image response = %+v (id %d)", r, f.id)
	}

	// An unknown frame type is answered, not fatal to the connection.
	bc.send(frame{typ: 200, id: 3})
	f = bc.recv()
	r, err = parseBinRes(f.payload)
	if err != nil {
		t.Fatal(err)
	}
	if f.id != 3 || r.kind != kindBadRequest {
		t.Errorf("unknown frame type response = %+v (id %d)", r, f.id)
	}
}

// TestBinaryClientDisconnectCancels drops the connection mid-job; the
// server must cancel the orphaned work and still close cleanly.
func TestBinaryClientDisconnectCancels(t *testing.T) {
	s := newTestServer(t, Config{Pool: pool.Config{Workers: 1}})
	mustServeImage(t, s, "spin", spinSrc)
	bc := dialBin(t, s)

	bc.send(frame{typ: frameReq, id: 1, payload: (&binReq{image: "spin", budget: 1 << 50}).marshal()})
	time.Sleep(20 * time.Millisecond) // let the job start
	bc.c.Close()

	// Close drains: if the orphaned spin job were not canceled, this
	// would block on its astronomically large budget.
	done := make(chan struct{})
	go func() { s.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("server close hung on an orphaned job")
	}
}

// TestWarmAffinityRouting sends many jobs for one image: all must land
// on the image's home shard, where its warm clones concentrate.
func TestWarmAffinityRouting(t *testing.T) {
	s := newTestServer(t, Config{Shards: 4})
	img := mustServeImage(t, s, "hello", helloSrc(1))
	home := s.shardFor(&jobSpec{images: []*pool.Image{img}}).id
	for i := 0; i < 8; i++ {
		spec := &jobSpec{tenant: s.tenantFor(""), images: []*pool.Image{img}}
		res, shard, err := s.run(context.Background(), spec)
		if err != nil || res.Err != nil {
			t.Fatal(err, res)
		}
		if shard != home {
			t.Fatalf("job %d routed to shard %d, home is %d", i, shard, home)
		}
	}
	// With affinity, repeat serves hit the warm pool.
	st := s.ShardStats(home)
	if st.WarmHits == 0 {
		t.Errorf("no warm hits on the home shard: %+v", st)
	}
}
