package serve

import (
	"context"
	"fmt"
	"sync"
)

// Async job states reported by GET /v1/jobs/{id}.
const (
	// JobStatePending: admitted, queued or running; no result yet.
	JobStatePending = "pending"
	// JobStateDone: terminal; the stored response is final (it may still
	// describe a failed execution — see its error_kind).
	JobStateDone = "done"
)

// asyncJob is one async submission's lifecycle record.
type asyncJob struct {
	id     string
	cancel context.CancelFunc

	mu   sync.Mutex
	resp *JobResponse // nil until done
}

// jobTable tracks async jobs by id. Completed results are retained for
// polling and evicted oldest-first beyond the retain bound; jobs still
// running are never evicted.
type jobTable struct {
	mu     sync.Mutex
	seq    uint64
	jobs   map[string]*asyncJob
	doneQ  []string // completed ids, oldest first
	retain int
}

func newJobTable(retain int) *jobTable {
	return &jobTable{jobs: make(map[string]*asyncJob), retain: retain}
}

// add registers a new async job and returns its handle.
func (t *jobTable) add(cancel context.CancelFunc) *asyncJob {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	j := &asyncJob{id: fmt.Sprintf("j%08d", t.seq), cancel: cancel}
	t.jobs[j.id] = j
	return j
}

// complete stores a job's terminal response and evicts the oldest
// completed results beyond the retain bound.
func (t *jobTable) complete(j *asyncJob, resp *JobResponse) {
	j.mu.Lock()
	j.resp = resp
	j.mu.Unlock()
	t.mu.Lock()
	t.doneQ = append(t.doneQ, j.id)
	for len(t.doneQ) > t.retain {
		delete(t.jobs, t.doneQ[0])
		t.doneQ = t.doneQ[1:]
	}
	t.mu.Unlock()
}

// get returns a job's id, state, and (when done) its stored response.
func (t *jobTable) get(id string) (*asyncJob, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	j, ok := t.jobs[id]
	return j, ok
}

// counts reports (active, done) job totals.
func (t *jobTable) counts() (active, done int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.jobs) - len(t.doneQ), len(t.doneQ)
}

// state returns the job's current state and response (nil while pending).
func (j *asyncJob) state() (string, *JobResponse) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.resp != nil {
		return JobStateDone, j.resp
	}
	return JobStatePending, nil
}
