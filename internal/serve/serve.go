// Package serve is the network serving front-end: it puts the sandbox
// pool behind a wire protocol so jobs arrive over TCP instead of from a
// batch driver. Three layers cooperate, all stdlib-only:
//
//   - a wire protocol: HTTP JSON (POST /v1/jobs, sync, async, and
//     streaming; GET /v1/jobs/{id} for async results) plus a
//     length-prefixed binary framing for the hot path (frame.go,
//     binary.go), both mapping the full serving error taxonomy to
//     distinct status codes / error kinds;
//
//   - a sharded router: jobs are routed across several pool.Pools keyed
//     by image hash, so each image's warm snapshot clones concentrate on
//     one shard (warm-cache affinity). Within a shard, tenants compete
//     through weighted fair queueing over bounded per-tenant queues, and
//     a token bucket per tenant enforces rate quotas up front;
//
//   - backpressure and load shedding: the shard dispatcher feeds the
//     pool's bounded queue and stalls on pool.ErrQueueFull (resumed by
//     the pool's OnJobDone hook), so pressure backs up into the
//     per-tenant queues; when a tenant's queue is full the router sheds
//     the job with ErrOverloaded instead of queueing unboundedly, and
//     the shed is recorded on the target shard (pool.jobs.shed).
//
// The paper positions LFI as sandboxing practical enough for real
// services; "Isolation Without Taxation" argues the payoff comes when
// instantiation and transitions are amortized over many fine-grained
// requests. This package is where that amortization meets traffic: every
// downstream subsystem — warm pools, snapshots, pipelines, IPC,
// cancellation — already sits behind Pool.SubmitCtx and becomes
// network-reachable here at once.
package serve

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"lfi/internal/core"
	"lfi/internal/lfirt"
	"lfi/internal/obs"
	"lfi/internal/pool"
)

// Errors returned by the serving layer. Together with the pool taxonomy
// (pool.ErrCanceled, pool.ErrQueueFull, pool.ErrClosed, lfirt.ErrVerify,
// *lfirt.ErrDeadline) they form the complete set of terminal outcomes a
// request can observe; ErrorKind maps each to a wire code.
var (
	// ErrTenantQuota rejects a request that exceeded its tenant's
	// token-bucket rate quota (HTTP 429).
	ErrTenantQuota = errors.New("serve: tenant over rate quota")
	// ErrOverloaded sheds a request because the tenant's bounded queue on
	// the target shard is full — backpressure from the pool has stacked
	// up and admitting more would grow an unbounded backlog (HTTP 503).
	ErrOverloaded = errors.New("serve: overloaded, job shed")
	// ErrServerClosed rejects submissions to a closing server; jobs still
	// queued (not yet submitted to a pool) when Close begins also resolve
	// with it (HTTP 503).
	ErrServerClosed = errors.New("serve: server closed")
	// ErrUnknownImage rejects a job naming an image key or alias the
	// server does not hold (HTTP 404).
	ErrUnknownImage = errors.New("serve: unknown image")
)

// Config parameterizes a Server.
type Config struct {
	// Shards is the number of independent pools jobs are routed across
	// (0 = 1). Each shard owns Pool.Workers worker runtimes.
	Shards int
	// Pool configures each shard's pool. Obs, SharedCache, and OnJobDone
	// are owned by the server and must be left unset.
	Pool pool.Config
	// Tenants declares the known tenants. Requests from undeclared
	// tenants run under DefaultTenant.
	Tenants []TenantConfig
	// DefaultTenant is the QoS contract applied to undeclared tenants
	// (zero value: weight 1, no rate limit, server MaxPending).
	DefaultTenant TenantConfig
	// MaxPending is the default per-tenant per-shard queue bound; beyond
	// it requests are shed with ErrOverloaded (0 = 256).
	MaxPending int
	// AsyncRetain bounds how many completed async job results are kept
	// for GET /v1/jobs/{id}; older completed results are evicted
	// oldest-first (0 = 256).
	AsyncRetain int

	// now overrides the clock (tests).
	now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.MaxPending <= 0 {
		c.MaxPending = 256
	}
	if c.AsyncRetain <= 0 {
		c.AsyncRetain = 256
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// tenant is one tenant's runtime state: its QoS contract, rate bucket,
// and router-level counters.
type tenant struct {
	cfg    TenantConfig
	bucket *bucket

	requests  *obs.Counter // jobs that reached admission
	admitted  *obs.Counter // jobs enqueued on a shard
	completed *obs.Counter // jobs that resolved through a pool
	quota     *obs.Counter // rate-quota rejections
	shed      *obs.Counter // overload sheds
}

// Server routes wire-protocol jobs across sharded pools under tenant
// QoS. Create with New, expose Mux over HTTP and/or ServeBinary over a
// raw listener, and Close to drain.
type Server struct {
	cfg    Config
	obs    *obs.Obs
	cache  *pool.Cache
	shards []*shard
	jobs   *jobTable

	mu      sync.Mutex
	tenants map[string]*tenant
	aliases map[string]string // image name → cache key
	closed  bool

	// baseCtx parents async and binary job contexts; canceling it is NOT
	// part of Close (drain semantics: in-flight jobs finish), it exists so
	// tests can abandon everything.
	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup // async waiters + binary conns

	connMu    sync.Mutex
	conns     map[*binConn]struct{}
	listeners map[net.Listener]struct{}

	m serverMetrics
}

type serverMetrics struct {
	httpReqs  *obs.Counter
	binConns  *obs.Counter
	binFrames *obs.Counter
	syncJobs  *obs.Counter
	asyncJobs *obs.Counter
	e2e       *obs.Histogram // admission→resolution latency
	queueWait *obs.Histogram // admission→pool-submit latency
}

// New creates a serving front-end: one shared image cache, Shards pools,
// and a WFQ dispatcher per shard. Close it when done.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	o := obs.New()
	pc := cfg.Pool
	rc := pc.RuntimeConfig()
	cache := pool.NewCache(rc)
	cache.SetObs(o)

	ctx, stop := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		obs:     o,
		cache:   cache,
		jobs:    newJobTable(cfg.AsyncRetain),
		tenants: make(map[string]*tenant),
		aliases: make(map[string]string),
		baseCtx: ctx,
		stop:    stop,
		conns:   make(map[*binConn]struct{}),
	}
	reg := o.Registry()
	lat := obs.DurationBounds()
	s.m = serverMetrics{
		httpReqs:  reg.Counter("serve.http.requests"),
		binConns:  reg.Counter("serve.bin.conns"),
		binFrames: reg.Counter("serve.bin.frames"),
		syncJobs:  reg.Counter("serve.jobs.sync"),
		asyncJobs: reg.Counter("serve.jobs.async"),
		e2e:       reg.Histogram("serve.latency.e2e_ns", lat),
		queueWait: reg.Histogram("serve.latency.queue_wait_ns", lat),
	}
	for _, tc := range cfg.Tenants {
		s.addTenant(tc)
	}
	for i := 0; i < cfg.Shards; i++ {
		sh := newShard(i, s)
		spc := pc
		spc.Obs = obs.New()
		spc.SharedCache = cache
		spc.OnJobDone = sh.onJobDone
		sh.pool = pool.New(spc)
		s.shards = append(s.shards, sh)
		go sh.dispatch()
	}
	return s
}

func (s *Server) addTenant(tc TenantConfig) *tenant {
	tc = tc.withDefaults(s.cfg.MaxPending)
	reg := s.obs.Registry()
	n := func(field string) string { return "serve.tenant." + tc.Name + "." + field }
	t := &tenant{
		cfg:       tc,
		bucket:    newBucket(tc.Rate, tc.Burst, s.cfg.now()),
		requests:  reg.Counter(n("requests")),
		admitted:  reg.Counter(n("admitted")),
		completed: reg.Counter(n("completed")),
		quota:     reg.Counter(n("quota_rejects")),
		shed:      reg.Counter(n("shed")),
	}
	s.tenants[tc.Name] = t
	return t
}

// tenantFor resolves a wire tenant name, registering undeclared tenants
// under the default contract on first sight ("" is the tenant "default").
func (s *Server) tenantFor(name string) *tenant {
	if name == "" {
		name = "default"
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.tenants[name]; ok {
		return t
	}
	tc := s.cfg.DefaultTenant
	tc.Name = name
	return s.addTenant(tc)
}

// BuildImage compiles source through the shared cache and registers the
// result under name (and its content key). Safe before and during serving.
func (s *Server) BuildImage(name, src string, opts core.Options) (*pool.Image, error) {
	img, err := s.cache.Build(src, opts)
	if err != nil {
		return nil, err
	}
	s.registerAlias(name, img.Key)
	return img, nil
}

// BuildWasm translates a WebAssembly module through the shared cache's
// wasmfront pipeline and registers the result under name.
func (s *Server) BuildWasm(name string, wasm []byte, opts core.Options) (*pool.Image, error) {
	img, err := s.cache.BuildWasm(wasm, opts)
	if err != nil {
		return nil, err
	}
	s.registerAlias(name, img.Key)
	return img, nil
}

// ImageFromELF verifies and registers a prebuilt executable under name.
func (s *Server) ImageFromELF(name string, elfBytes []byte) (*pool.Image, error) {
	img, err := s.cache.FromELF(elfBytes)
	if err != nil {
		return nil, err
	}
	s.registerAlias(name, img.Key)
	return img, nil
}

func (s *Server) registerAlias(name, key string) {
	if name == "" {
		return
	}
	s.mu.Lock()
	s.aliases[name] = key
	s.mu.Unlock()
}

// Images returns the registered name → image-key aliases.
func (s *Server) Images() map[string]string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]string, len(s.aliases))
	for k, v := range s.aliases {
		out[k] = v
	}
	return out
}

// resolveImage maps a wire image reference (alias or cache key) to a
// prepared image.
func (s *Server) resolveImage(ref string) (*pool.Image, error) {
	s.mu.Lock()
	if key, ok := s.aliases[ref]; ok {
		ref = key
	}
	s.mu.Unlock()
	if img, ok := s.cache.Lookup(ref); ok {
		return img, nil
	}
	return nil, fmt.Errorf("%w: %q", ErrUnknownImage, ref)
}

// jobSpec is a fully resolved execution request, ready for a shard.
type jobSpec struct {
	tenant *tenant
	images []*pool.Image
	input  []byte
	budget uint64
	cold   bool
}

// shardFor picks the shard serving a spec: the image key hash, so
// repeated requests for one image land where its warm clones are parked.
func (s *Server) shardFor(spec *jobSpec) *shard {
	h := fnv.New32a()
	h.Write([]byte(spec.images[len(spec.images)-1].Key))
	return s.shards[h.Sum32()%uint32(len(s.shards))]
}

// run is the protocol-independent serving core: admission (rate quota),
// routing, fair queueing, pool execution. It returns the pool result
// (whose Err may itself be a taxonomy error such as *lfirt.ErrDeadline)
// or an admission/shed error, plus the shard that handled the job.
func (s *Server) run(ctx context.Context, spec *jobSpec) (*pool.Result, int, error) {
	t := spec.tenant
	t.requests.Inc()
	start := s.cfg.now()
	if !t.bucket.take(start) {
		t.quota.Inc()
		return nil, -1, ErrTenantQuota
	}
	sh := s.shardFor(spec)
	pd := &pending{
		spec: spec,
		ctx:  ctx,
		enq:  start,
		tkCh: make(chan *pool.Ticket, 1),
		// errCh is buffered so the dispatcher can resolve a pending whose
		// waiter already gave up (client gone) without blocking.
		errCh: make(chan error, 1),
	}
	if err := sh.enqueue(pd); err != nil {
		if errors.Is(err, ErrOverloaded) {
			t.shed.Inc()
		}
		return nil, sh.id, err
	}
	t.admitted.Inc()
	select {
	case tk := <-pd.tkCh:
		// Submitted to the pool under the request ctx: the pool guarantees
		// prompt resolution on cancellation, so waiting on the ticket alone
		// is safe.
		res := tk.Wait()
		t.completed.Inc()
		s.m.e2e.Observe(uint64(s.cfg.now().Sub(start).Nanoseconds()))
		return res, sh.id, nil
	case err := <-pd.errCh:
		if errors.Is(err, ErrOverloaded) {
			t.shed.Inc()
		}
		return nil, sh.id, err
	case <-ctx.Done():
		// Still queued when the client went away; the dispatcher will skip
		// it when it reaches the head.
		return nil, sh.id, fmt.Errorf("%w while queued (%w)", pool.ErrCanceled, ctx.Err())
	}
}

// Close drains the server: new submissions are rejected, jobs still in
// tenant queues resolve with ErrServerClosed, jobs already submitted to
// a pool run to completion, and every shard pool shuts down. Close does
// not stop HTTP listeners (the caller owns those); once it returns, all
// in-flight requests have terminal results.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	s.mu.Unlock()

	// Stop accepting new binary connections up front; in-flight work on
	// existing connections drains below.
	s.connMu.Lock()
	for ln := range s.listeners {
		ln.Close()
	}
	s.connMu.Unlock()

	var wg sync.WaitGroup
	for _, sh := range s.shards {
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			sh.close()
		}(sh)
	}
	wg.Wait()
	s.stop()
	s.connMu.Lock()
	for c := range s.conns {
		c.closeConn()
	}
	s.connMu.Unlock()
	s.wg.Wait()
}

func (s *Server) closing() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// MetricsSnapshot merges the router registry with every shard pool's
// registry (prefixed "shard.<i>.") into the one /metrics document.
func (s *Server) MetricsSnapshot() *obs.Snapshot {
	snap := s.obs.Registry().Snapshot()
	for _, sh := range s.shards {
		snap.Merge(fmt.Sprintf("shard.%d.", sh.id), sh.pool.Metrics())
	}
	return snap
}

// TenantStatus is one tenant's /statusz entry.
type TenantStatus struct {
	Name         string  `json:"name"`
	Weight       int     `json:"weight"`
	Rate         float64 `json:"rate,omitempty"`
	Requests     uint64  `json:"requests"`
	Admitted     uint64  `json:"admitted"`
	Completed    uint64  `json:"completed"`
	QuotaRejects uint64  `json:"quota_rejects"`
	Shed         uint64  `json:"shed"`
	Queued       int     `json:"queued"`
}

// ShardStatus is one shard's /statusz entry.
type ShardStatus struct {
	Shard  int        `json:"shard"`
	Queued int        `json:"queued"`
	Pool   pool.Stats `json:"pool"`
}

// Status is the /statusz document of a serving front-end.
type Status struct {
	Draining    bool           `json:"draining"`
	Tenants     []TenantStatus `json:"tenants"`
	Shards      []ShardStatus  `json:"shards"`
	AsyncActive int            `json:"async_active"`
	AsyncDone   int            `json:"async_done"`
}

// Status reports the router's serving state: per-tenant QoS counters and
// queue occupancy, per-shard pool stats, and the async job table.
func (s *Server) Status() Status {
	st := Status{Draining: s.closing()}
	s.mu.Lock()
	names := make([]string, 0, len(s.tenants))
	for name := range s.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	tenants := make([]*tenant, 0, len(names))
	for _, name := range names {
		tenants = append(tenants, s.tenants[name])
	}
	s.mu.Unlock()
	for _, t := range tenants {
		queued := 0
		for _, sh := range s.shards {
			queued += sh.queuedFor(t.cfg.Name)
		}
		st.Tenants = append(st.Tenants, TenantStatus{
			Name:         t.cfg.Name,
			Weight:       t.cfg.Weight,
			Rate:         t.cfg.Rate,
			Requests:     t.requests.Value(),
			Admitted:     t.admitted.Value(),
			Completed:    t.completed.Value(),
			QuotaRejects: t.quota.Value(),
			Shed:         t.shed.Value(),
			Queued:       queued,
		})
	}
	for _, sh := range s.shards {
		st.Shards = append(st.Shards, ShardStatus{Shard: sh.id, Queued: sh.queuedTotal(), Pool: sh.pool.Stats()})
	}
	st.AsyncActive, st.AsyncDone = s.jobs.counts()
	return st
}

// ShardStats returns the pool stats of one shard (tests, statusz).
func (s *Server) ShardStats(i int) pool.Stats { return s.shards[i].pool.Stats() }

// Shards returns the number of shards.
func (s *Server) Shards() int { return len(s.shards) }

// ErrorKind classifies any serving-layer error into its wire code and
// HTTP status. It understands the full taxonomy: admission errors from
// this package, pool errors, and runtime errors carried in Result.Err.
func ErrorKind(err error) (kind string, httpStatus int) {
	var dl *lfirt.ErrDeadline
	switch {
	case err == nil:
		return "ok", http.StatusOK
	case errors.Is(err, ErrTenantQuota):
		return "quota", http.StatusTooManyRequests
	case errors.Is(err, ErrOverloaded):
		return "overloaded", http.StatusServiceUnavailable
	case errors.Is(err, ErrServerClosed), errors.Is(err, pool.ErrClosed):
		return "closed", http.StatusServiceUnavailable
	case errors.Is(err, pool.ErrQueueFull):
		return "queue_full", http.StatusServiceUnavailable
	case errors.Is(err, ErrUnknownImage):
		return "unknown_image", http.StatusNotFound
	case errors.Is(err, lfirt.ErrVerify):
		return "verify", http.StatusBadRequest
	case errors.Is(err, pool.ErrCanceled), errors.Is(err, lfirt.ErrCanceled):
		return "canceled", statusClientClosedRequest
	case errors.As(err, &dl):
		return "deadline", http.StatusRequestTimeout
	default:
		return "internal", http.StatusInternalServerError
	}
}

// statusClientClosedRequest is nginx's convention for "the client went
// away before the response"; there is no standard code for it.
const statusClientClosedRequest = 499
