package serve

import (
	"bufio"
	"context"
	"net"
	"sync"

	"lfi/internal/pool"
)

// ServeBinary accepts binary-protocol connections on ln until the
// listener fails or the server closes. Each connection multiplexes any
// number of in-flight requests; responses are written as their jobs
// resolve, tagged with the request id. Call in its own goroutine.
func (s *Server) ServeBinary(ln net.Listener) error {
	s.connMu.Lock()
	if s.listeners == nil {
		s.listeners = make(map[net.Listener]struct{})
	}
	s.listeners[ln] = struct{}{}
	s.connMu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			if s.closing() {
				return nil
			}
			return err
		}
		bc := &binConn{s: s, c: c, out: make(chan frame, 256)}
		bc.ctx, bc.cancel = context.WithCancel(s.baseCtx)
		s.connMu.Lock()
		if s.closed {
			s.connMu.Unlock()
			c.Close()
			continue
		}
		s.conns[bc] = struct{}{}
		s.connMu.Unlock()
		s.m.binConns.Inc()
		s.wg.Add(1)
		go bc.serve()
	}
}

// binConn is one binary-protocol connection: a reader that decodes and
// dispatches request frames, a writer that serializes response frames,
// and one goroutine per in-flight request in between.
type binConn struct {
	s      *Server
	c      net.Conn
	out    chan frame
	ctx    context.Context
	cancel context.CancelFunc
	reqWG  sync.WaitGroup
	once   sync.Once
}

// closeConn forces the connection shut (server shutdown path); the
// reader unblocks with an error and tears the rest down.
func (bc *binConn) closeConn() { bc.once.Do(func() { bc.c.Close() }) }

func (bc *binConn) serve() {
	defer bc.s.wg.Done()
	writerDone := make(chan struct{})
	go bc.writer(writerDone)

	br := bufio.NewReaderSize(bc.c, 64<<10)
	for {
		f, err := readFrame(br)
		if err != nil {
			break // EOF, conn closed, or protocol violation: stop reading
		}
		bc.s.m.binFrames.Inc()
		switch f.typ {
		case framePing:
			bc.send(frame{typ: framePong, id: f.id})
		case frameReq:
			bc.handleReq(f)
		default:
			// Unknown frame type from a client: protocol violation.
			bc.send(frame{typ: frameRes, id: f.id, payload: (&binRes{
				kind: kindBadRequest, errmsg: "unknown frame type",
			}).marshal()})
		}
	}
	// Client went away (or shutdown closed the socket): cancel what it
	// was waiting for, then drain the machinery.
	bc.cancel()
	bc.reqWG.Wait()
	close(bc.out)
	<-writerDone
	bc.closeConn()
	bc.s.connMu.Lock()
	delete(bc.s.conns, bc)
	bc.s.connMu.Unlock()
}

// writer serializes frames onto the socket. On a write error it keeps
// draining the channel so request goroutines never block on a dead conn.
func (bc *binConn) writer(done chan<- struct{}) {
	defer close(done)
	bw := bufio.NewWriterSize(bc.c, 64<<10)
	broken := false
	for f := range bc.out {
		if broken {
			continue
		}
		if err := writeFrame(bw, f); err != nil {
			broken = true
			bc.cancel()
			continue
		}
		// Flush when the queue momentarily empties: batches bursts,
		// bounds latency.
		if len(bc.out) == 0 {
			if err := bw.Flush(); err != nil {
				broken = true
				bc.cancel()
			}
		}
	}
	if !broken {
		bw.Flush()
	}
}

func (bc *binConn) send(f frame) { bc.out <- f }

// handleReq decodes one request frame and serves it on its own
// goroutine, so a long job never blocks the read loop (pipelining).
func (bc *binConn) handleReq(f frame) {
	q, err := parseBinReq(f.payload)
	if err != nil {
		bc.send(frame{typ: frameRes, id: f.id, payload: (&binRes{
			kind: kindBadRequest, errmsg: err.Error(),
		}).marshal()})
		return
	}
	bc.s.wg.Add(1)
	bc.reqWG.Add(1)
	go func() {
		defer bc.s.wg.Done()
		defer bc.reqWG.Done()
		bc.runReq(f.id, q)
	}()
}

func (bc *binConn) runReq(id uint64, q *binReq) {
	s := bc.s
	if s.closing() {
		bc.send(frame{typ: frameRes, id: id, payload: (&binRes{
			kind: kindClosed, errmsg: ErrServerClosed.Error(),
		}).marshal()})
		return
	}
	img, err := s.resolveImage(q.image)
	if err != nil {
		kind, _ := ErrorKind(err)
		bc.send(frame{typ: frameRes, id: id, payload: (&binRes{
			kind: KindCode(kind), errmsg: err.Error(),
		}).marshal()})
		return
	}
	spec := &jobSpec{
		tenant: s.tenantFor(q.tenant),
		images: []*pool.Image{img},
		input:  q.input,
		budget: q.budget,
		cold:   q.flags&flagCold != 0,
	}
	res, shard, err := s.run(bc.ctx, spec)
	r := &binRes{shard: uint64(shard)}
	if err != nil {
		kind, _ := ErrorKind(err)
		r.kind = KindCode(kind)
		r.errmsg = err.Error()
	} else {
		kind, _ := ErrorKind(res.Err)
		r.kind = KindCode(kind)
		if res.Err != nil {
			r.errmsg = res.Err.Error()
		}
		r.status = int64(res.Status)
		r.instrs = res.Instrs
		r.worker = uint64(res.Worker)
		r.warm = res.WarmHit
		if q.flags&flagStream != 0 {
			// Hot-path streaming: output rides in chunk frames; the
			// terminal frame stays small.
			bc.sendChunks(id, frameOut, res.Stdout)
			bc.sendChunks(id, frameErrOut, res.Stderr)
		} else {
			r.stdout = res.Stdout
			r.stderr = res.Stderr
		}
	}
	bc.send(frame{typ: frameRes, id: id, payload: r.marshal()})
}

func (bc *binConn) sendChunks(id uint64, typ uint8, data []byte) {
	for off := 0; off < len(data); off += streamChunk {
		end := off + streamChunk
		if end > len(data) {
			end = len(data)
		}
		bc.send(frame{typ: typ, id: id, payload: data[off:end]})
	}
}
