package serve

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
)

func TestFrameRoundtrip(t *testing.T) {
	frames := []frame{
		{typ: frameReq, id: 1, payload: []byte("hello")},
		{typ: frameRes, id: 1<<63 + 7, payload: bytes.Repeat([]byte{0xAB}, 70000)},
		{typ: framePing, id: 0},
		{typ: frameOut, id: 42, payload: []byte{}},
	}
	var buf bytes.Buffer
	for _, f := range frames {
		if err := writeFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range frames {
		got, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.typ != want.typ || got.id != want.id || !bytes.Equal(got.payload, want.payload) {
			t.Errorf("frame %d: got %+v, want %+v", i, got, want)
		}
	}
	if _, err := readFrame(&buf); err != io.EOF {
		t.Errorf("read past end: %v, want EOF", err)
	}
}

func TestReadFrameRejectsBadHeader(t *testing.T) {
	good := func() []byte {
		var buf bytes.Buffer
		writeFrame(&buf, frame{typ: frameReq, id: 9, payload: []byte("x")})
		return buf.Bytes()
	}

	badMagic := good()
	badMagic[0] = 0xFF
	if _, err := readFrame(bytes.NewReader(badMagic)); err == nil {
		t.Error("bad magic accepted")
	}

	badVersion := good()
	badVersion[2] = 99
	if _, err := readFrame(bytes.NewReader(badVersion)); err == nil {
		t.Error("bad version accepted")
	}

	oversize := good()
	binary.BigEndian.PutUint32(oversize[4:], maxFramePayload+1)
	if _, err := readFrame(bytes.NewReader(oversize)); err == nil {
		t.Error("oversize payload length accepted")
	}

	truncated := good()
	if _, err := readFrame(bytes.NewReader(truncated[:len(truncated)-1])); err == nil {
		t.Error("truncated payload accepted")
	}
}

func TestWriteFrameRejectsOversizePayload(t *testing.T) {
	err := writeFrame(io.Discard, frame{typ: frameOut, payload: make([]byte, maxFramePayload+1)})
	if err == nil {
		t.Error("oversize payload written")
	}
}

func TestBinReqRoundtrip(t *testing.T) {
	want := &binReq{
		tenant: "pro",
		image:  "sha256:abcdef",
		budget: 1 << 40,
		flags:  flagCold | flagStream,
		input:  []byte("stdin bytes\x00\x01"),
	}
	got, err := parseBinReq(want.marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.tenant != want.tenant || got.image != want.image ||
		got.budget != want.budget || got.flags != want.flags ||
		!bytes.Equal(got.input, want.input) {
		t.Errorf("got %+v, want %+v", got, want)
	}
}

func TestBinResRoundtrip(t *testing.T) {
	want := &binRes{
		kind:   kindDeadline,
		status: -9,
		instrs: 123456789,
		shard:  3,
		worker: 7,
		warm:   true,
		errmsg: "budget exceeded",
		stdout: []byte("partial out"),
		stderr: []byte("partial err"),
	}
	got, err := parseBinRes(want.marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.kind != want.kind || got.status != want.status || got.instrs != want.instrs ||
		got.shard != want.shard || got.worker != want.worker || got.warm != want.warm ||
		got.errmsg != want.errmsg ||
		!bytes.Equal(got.stdout, want.stdout) || !bytes.Equal(got.stderr, want.stderr) {
		t.Errorf("got %+v, want %+v", got, want)
	}
}

func TestParseBinReqMalformed(t *testing.T) {
	full := (&binReq{tenant: "t", image: "img", input: []byte("in")}).marshal()
	// Every strict prefix of a valid payload must be rejected, never
	// panic or silently succeed.
	for n := 0; n < len(full); n++ {
		if _, err := parseBinReq(full[:n]); err == nil {
			t.Errorf("prefix of length %d accepted", n)
		}
	}
	// A length prefix pointing past the buffer must be rejected.
	bad := append(binary.AppendUvarint(nil, 1<<40), 'x')
	if _, err := parseBinReq(bad); err == nil {
		t.Error("runaway length prefix accepted")
	}
}

func TestKindCodesRoundtrip(t *testing.T) {
	for name, code := range kindCodes {
		if got := KindCode(name); got != code {
			t.Errorf("KindCode(%q) = %d, want %d", name, got, code)
		}
		if got := KindName(code); got != name {
			t.Errorf("KindName(%d) = %q, want %q", code, got, name)
		}
	}
	if KindCode("no-such-kind") != kindInternal {
		t.Error("unknown kind name should map to internal")
	}
	if KindName(250) != "internal" {
		t.Error("unknown kind code should map to internal")
	}
}
