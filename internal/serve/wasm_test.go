package serve

import (
	"bytes"
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"lfi/internal/core"
	"lfi/internal/wasmfront"
)

// lossy round-trips s the way a JSON string field does: stdout carries
// raw checksum bytes, and invalid UTF-8 is replaced during encoding.
func lossy(t *testing.T, s string) string {
	t.Helper()
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var out string
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestHTTPWasmImage registers a Wasm module through POST /v1/images and
// serves jobs against it — the module exercises calls, indirect
// dispatch, and linear memory.
func TestHTTPWasmImage(t *testing.T) {
	s := newTestServer(t, Config{Shards: 2})
	ts := httptest.NewServer(s.Mux())
	defer ts.Close()

	wasm := wasmfront.SampleCalls(100)
	m, err := wasmfront.Decode(wasm)
	if err != nil {
		t.Fatal(err)
	}
	res, trap, err := wasmfront.NewInterp(m).Run()
	if err != nil || trap != wasmfront.TrapNone {
		t.Fatalf("interp: %v %v", trap, err)
	}
	want := make([]byte, 8)
	binary.LittleEndian.PutUint64(want, res)

	body, _ := json.Marshal(&ImageRequest{
		Name: "wcalls",
		Wasm: base64.StdEncoding.EncodeToString(wasm),
	})
	resp, err := http.Post(ts.URL+"/v1/images", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var ir ImageResponse
	json.NewDecoder(resp.Body).Decode(&ir)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || ir.Key == "" {
		t.Fatalf("register: code=%d resp=%+v", resp.StatusCode, ir)
	}

	for _, ref := range []string{"wcalls", ir.Key} {
		jr, code := postJob(t, ts, &JobRequest{Image: ref})
		if code != http.StatusOK || jr.ErrorKind != "ok" || jr.Status != 0 {
			t.Fatalf("serve by %q: code=%d resp=%+v", ref, code, jr)
		}
		if jr.Stdout != lossy(t, string(want)) {
			t.Errorf("serve by %q: checksum %q, want %q", ref, jr.Stdout, lossy(t, string(want)))
		}
	}
}

// TestHTTPWasmImageErrors covers rejection paths: bad base64, malformed
// modules, and mixing wasm with other payload kinds.
func TestHTTPWasmImageErrors(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Mux())
	defer ts.Close()

	post := func(req *ImageRequest) int {
		t.Helper()
		body, _ := json.Marshal(req)
		resp, err := http.Post(ts.URL+"/v1/images", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := post(&ImageRequest{Wasm: "!!!not-base64"}); code != http.StatusBadRequest {
		t.Errorf("bad base64: code=%d", code)
	}
	junk := base64.StdEncoding.EncodeToString([]byte("\x00asm junk"))
	if code := post(&ImageRequest{Wasm: junk}); code != http.StatusBadRequest {
		t.Errorf("malformed module: code=%d", code)
	}
	good := base64.StdEncoding.EncodeToString(wasmfront.SampleArithLoop(5))
	if code := post(&ImageRequest{Wasm: good, Source: helloSrc(1)}); code != http.StatusBadRequest {
		t.Errorf("wasm+source: code=%d", code)
	}
}

// TestBuildWasmDirect exercises the non-HTTP server surface.
func TestBuildWasmDirect(t *testing.T) {
	s := newTestServer(t, Config{})
	img, err := s.BuildWasm("warith", wasmfront.SampleArithLoop(20), core.Options{Opt: core.O1})
	if err != nil {
		t.Fatal(err)
	}
	if got, err := s.resolveImage("warith"); err != nil || got != img {
		t.Fatalf("alias resolve: %v %v", got, err)
	}
}
