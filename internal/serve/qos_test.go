package serve

import (
	"context"
	"testing"
	"time"

	"lfi/internal/pool"
)

func TestParseTenants(t *testing.T) {
	got, err := ParseTenants("pro:4, standard:1:50 ,free:1:5:10,")
	if err != nil {
		t.Fatal(err)
	}
	want := []TenantConfig{
		{Name: "pro", Weight: 4},
		{Name: "standard", Weight: 1, Rate: 50},
		{Name: "free", Weight: 1, Rate: 5, Burst: 10},
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d tenants, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("tenant %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestParseTenantsErrors(t *testing.T) {
	for _, spec := range []string{
		":4",          // no name
		"a:x",         // bad weight
		"a:0",         // non-positive weight
		"a:1:nope",    // bad rate
		"a:1:-1",      // negative rate
		"a:1:5:0",     // non-positive burst
		"a:1:5:10:99", // too many fields
	} {
		if _, err := ParseTenants(spec); err == nil {
			t.Errorf("ParseTenants(%q) accepted", spec)
		}
	}
}

func TestTenantConfigDefaults(t *testing.T) {
	tc := TenantConfig{Name: "t"}.withDefaults(64)
	if tc.Weight != 1 || tc.MaxPending != 64 || tc.Burst != 0 {
		t.Errorf("zero-value defaults: %+v", tc)
	}
	tc = TenantConfig{Name: "t", Rate: 2.5}.withDefaults(64)
	if tc.Burst != 3 {
		t.Errorf("burst should default to ceil(rate): %+v", tc)
	}
}

func TestBucketRefill(t *testing.T) {
	t0 := time.Unix(1000, 0)
	b := newBucket(10, 2, t0) // 10 tokens/s, burst 2

	if !b.take(t0) || !b.take(t0) {
		t.Fatal("burst tokens not available")
	}
	if b.take(t0) {
		t.Fatal("empty bucket admitted a request")
	}
	// 100ms refills exactly one token at 10/s.
	t1 := t0.Add(100 * time.Millisecond)
	if !b.take(t1) {
		t.Fatal("refilled token not available")
	}
	if b.take(t1) {
		t.Fatal("second token admitted after a one-token refill")
	}
	// A long idle period caps at burst, not at elapsed×rate.
	t2 := t1.Add(time.Hour)
	if !b.take(t2) || !b.take(t2) {
		t.Fatal("burst not available after idle")
	}
	if b.take(t2) {
		t.Fatal("bucket exceeded burst cap")
	}
}

func TestNilBucketAdmitsEverything(t *testing.T) {
	var b *bucket
	for i := 0; i < 100; i++ {
		if !b.take(time.Unix(0, 0)) {
			t.Fatal("nil bucket rejected a request")
		}
	}
	if newBucket(0, 5, time.Unix(0, 0)) != nil {
		t.Error("rate 0 should produce a nil (unlimited) bucket")
	}
}

// TestWFQDispatchOrder drives a shard's queue directly (no pool, no
// dispatcher) and verifies that weighted fair queueing serves tenants in
// proportion to their weights: with A at weight 4 and B at weight 1, the
// first 50 dispatches of an 80-job backlog contain all 40 of A's jobs
// and B's share within 20% of proportional.
func TestWFQDispatchOrder(t *testing.T) {
	sh := newShard(0, nil)
	ta := &tenant{cfg: TenantConfig{Name: "a", Weight: 4}.withDefaults(256)}
	tb := &tenant{cfg: TenantConfig{Name: "b", Weight: 1}.withDefaults(256)}
	for i := 0; i < 40; i++ {
		for _, tn := range []*tenant{ta, tb} {
			pd := &pending{
				spec:  &jobSpec{tenant: tn},
				ctx:   context.Background(),
				tkCh:  make(chan *pool.Ticket, 1),
				errCh: make(chan error, 1),
			}
			if err := sh.enqueue(pd); err != nil {
				t.Fatal(err)
			}
		}
	}
	counts := map[string]int{}
	for i := 0; i < 50; i++ {
		pd := sh.next()
		if pd == nil {
			t.Fatal("next returned nil with jobs queued")
		}
		counts[pd.spec.tenant.cfg.Name]++
	}
	// Fair shares over the first 50 dispatches: A finishes its 40 within
	// virtual time 10, B completes ~10. Allow ±20% on B for tag ties.
	if counts["a"] < 38 {
		t.Errorf("weight-4 tenant got %d of 50 dispatches, want ~40", counts["a"])
	}
	if counts["b"] < 8 || counts["b"] > 12 {
		t.Errorf("weight-1 tenant got %d of 50 dispatches, want 10±2", counts["b"])
	}
}
