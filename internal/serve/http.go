package serve

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net/http"

	"lfi/internal/core"
	"lfi/internal/obs"
	"lfi/internal/pool"
)

// JobRequest is the POST /v1/jobs body (and, field-for-field, the
// binary-protocol request payload).
type JobRequest struct {
	// Tenant names the QoS identity; empty means the "default" tenant.
	Tenant string `json:"tenant,omitempty"`
	// Image names a prepared image by registered alias or cache key.
	Image string `json:"image,omitempty"`
	// Images names a multi-stage pipeline (stage order; stdout→stdin).
	Images []string `json:"images,omitempty"`
	// Source inlines assembly to build (and cache) on the fly; exactly
	// one of Image/Images/Source must be set.
	Source string `json:"source,omitempty"`
	// Input feeds the (first) stage's stdin.
	Input string `json:"input,omitempty"`
	// Budget overrides the pool's per-job instruction budget.
	Budget uint64 `json:"budget,omitempty"`
	// Cold bypasses the warm/snapshot path (baseline measurement).
	Cold bool `json:"cold,omitempty"`
	// Async returns 202 with a job id immediately; poll GET /v1/jobs/{id}.
	Async bool `json:"async,omitempty"`
	// Stream switches the sync response to NDJSON events (accepted,
	// stdout/stderr chunks, done).
	Stream bool `json:"stream,omitempty"`
}

// JobResponse is the job result document, shared by the sync response,
// the async GET, the stream "done" event, and the binary protocol.
type JobResponse struct {
	// ID and State are set for async jobs.
	ID    string `json:"id,omitempty"`
	State string `json:"state,omitempty"`
	// ErrorKind classifies the outcome ("ok", "deadline", "quota",
	// "overloaded", "canceled", "verify", "unknown_image", "closed",
	// "queue_full", "bad_request", "internal"); Error carries the detail.
	ErrorKind string `json:"error_kind,omitempty"`
	Error     string `json:"error,omitempty"`
	// Status is the sandbox exit status (valid when ErrorKind is "ok").
	Status int `json:"status"`
	// Stdout and Stderr are the job's captured output.
	Stdout string `json:"stdout,omitempty"`
	Stderr string `json:"stderr,omitempty"`
	// Instrs is the instructions retired serving the job.
	Instrs uint64 `json:"instrs,omitempty"`
	// Shard and Worker locate where the job ran.
	Shard  int  `json:"shard"`
	Worker int  `json:"worker"`
	Warm   bool `json:"warm,omitempty"`
}

// ImageRequest is the POST /v1/images body: either inline assembly
// source or a base64 ELF.
type ImageRequest struct {
	// Name optionally registers an alias for the built image.
	Name string `json:"name,omitempty"`
	// Source is assembly text run through the rewrite→verify pipeline.
	Source string `json:"source,omitempty"`
	// ELF is a prebuilt sandbox executable, base64-encoded; it is
	// verified before registration.
	ELF string `json:"elf,omitempty"`
	// Wasm is a WebAssembly module, base64-encoded; it is translated
	// through the wasmfront pipeline and verified like source builds.
	Wasm string `json:"wasm,omitempty"`
	// Opt is the rewriter optimization level for Source and Wasm
	// (0, 1, 2 = default 2).
	Opt *int `json:"opt,omitempty"`
}

// ImageResponse answers image registration and listing.
type ImageResponse struct {
	Name string `json:"name,omitempty"`
	Key  string `json:"key"`
}

// maxBodyBytes bounds request bodies: jobs are small control messages;
// images may carry an ELF.
const maxBodyBytes = 16 << 20

// Mux returns the server's HTTP API on one mux — the job endpoints and
// the observability endpoints share a single listener:
//
//	POST   /v1/jobs       submit (sync, async, or stream)
//	GET    /v1/jobs/{id}  poll an async job
//	DELETE /v1/jobs/{id}  cancel an async job
//	POST   /v1/images     register an image (source or base64 ELF)
//	GET    /v1/images     list registered aliases
//	GET    /healthz       liveness (503 while draining)
//	GET    /metrics       merged router+shard metrics registry snapshot
//	GET    /statusz       tenants, shards, async table
func (s *Server) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	mux.HandleFunc("POST /v1/images", s.handleImagePost)
	mux.HandleFunc("GET /v1/images", s.handleImageList)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.Handle("GET /metrics", obs.MetricsHandler(s.MetricsSnapshot))
	mux.Handle("GET /statusz", obs.StatusHandler(func() any { return s.Status() }))
	return mux
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(body)
}

func writeError(w http.ResponseWriter, err error) {
	kind, status := ErrorKind(err)
	writeJSON(w, status, &JobResponse{ErrorKind: kind, Error: err.Error()})
}

// resolveSpec turns a wire request into a routed jobSpec.
func (s *Server) resolveSpec(req *JobRequest) (*jobSpec, error) {
	set := 0
	for _, ok := range []bool{req.Image != "", len(req.Images) > 0, req.Source != ""} {
		if ok {
			set++
		}
	}
	if set != 1 {
		return nil, fmt.Errorf("request must set exactly one of image, images, source")
	}
	spec := &jobSpec{
		tenant: s.tenantFor(req.Tenant),
		input:  []byte(req.Input),
		budget: req.Budget,
		cold:   req.Cold,
	}
	switch {
	case req.Source != "":
		img, err := s.cache.Build(req.Source, core.Options{Opt: core.O2})
		if err != nil {
			return nil, err
		}
		spec.images = []*pool.Image{img}
	case req.Image != "":
		img, err := s.resolveImage(req.Image)
		if err != nil {
			return nil, err
		}
		spec.images = []*pool.Image{img}
	default:
		for _, ref := range req.Images {
			img, err := s.resolveImage(ref)
			if err != nil {
				return nil, err
			}
			spec.images = append(spec.images, img)
		}
	}
	return spec, nil
}

// respFromResult renders a pool result as the wire document. The pool
// result's own Err (deadline kill, mid-run cancel, load failure) is part
// of the taxonomy and is classified the same way as admission errors.
func respFromResult(res *pool.Result, shard int) *JobResponse {
	kind, _ := ErrorKind(res.Err)
	resp := &JobResponse{
		ErrorKind: kind,
		Status:    res.Status,
		Stdout:    string(res.Stdout),
		Stderr:    string(res.Stderr),
		Instrs:    res.Instrs,
		Shard:     shard,
		Worker:    res.Worker,
		Warm:      res.WarmHit,
	}
	if res.Err != nil {
		resp.Error = res.Err.Error()
	}
	return resp
}

// httpStatusFor maps a result document to its response code: execution
// outcomes carried inside an otherwise-successful job (deadline kills)
// surface as distinct statuses too, per the protocol contract.
func httpStatusFor(resp *JobResponse) int {
	if resp.ErrorKind == "ok" {
		return http.StatusOK
	}
	switch resp.ErrorKind {
	case "quota":
		return http.StatusTooManyRequests
	case "overloaded", "closed", "queue_full":
		return http.StatusServiceUnavailable
	case "unknown_image":
		return http.StatusNotFound
	case "verify", "bad_request":
		return http.StatusBadRequest
	case "canceled":
		return statusClientClosedRequest
	case "deadline":
		return http.StatusRequestTimeout
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	s.m.httpReqs.Inc()
	if s.closing() {
		writeError(w, ErrServerClosed)
		return
	}
	var req JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, &JobResponse{ErrorKind: "bad_request", Error: "bad JSON: " + err.Error()})
		return
	}
	if r.URL.Query().Get("stream") != "" {
		req.Stream = true
	}
	spec, err := s.resolveSpec(&req)
	if err != nil {
		if kind, _ := ErrorKind(err); kind == "internal" {
			// Malformed request, not a server fault.
			writeJSON(w, http.StatusBadRequest, &JobResponse{ErrorKind: "bad_request", Error: err.Error()})
			return
		}
		writeError(w, err)
		return
	}
	switch {
	case req.Async:
		s.m.asyncJobs.Inc()
		s.submitAsync(w, spec)
	case req.Stream:
		s.m.syncJobs.Inc()
		s.submitStream(w, r, spec)
	default:
		s.m.syncJobs.Inc()
		res, shard, err := s.run(r.Context(), spec)
		if err != nil {
			writeError(w, err)
			return
		}
		resp := respFromResult(res, shard)
		writeJSON(w, httpStatusFor(resp), resp)
	}
}

// submitAsync runs the job under a server-owned context and returns a
// pollable id immediately.
func (s *Server) submitAsync(w http.ResponseWriter, spec *jobSpec) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	j := s.jobs.add(cancel)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer cancel()
		res, shard, err := s.run(ctx, spec)
		var resp *JobResponse
		if err != nil {
			kind, _ := ErrorKind(err)
			resp = &JobResponse{ErrorKind: kind, Error: err.Error(), Shard: shard}
		} else {
			resp = respFromResult(res, shard)
		}
		resp.ID = j.id
		resp.State = JobStateDone
		s.jobs.complete(j, resp)
	}()
	writeJSON(w, http.StatusAccepted, &JobResponse{ID: j.id, State: JobStatePending})
}

// streamChunk bounds one stdout/stderr NDJSON event's payload.
const streamChunk = 32 << 10

// streamEvent is one NDJSON line of a streamed response.
type streamEvent struct {
	Event string `json:"event"` // accepted | stdout | stderr | done
	Data  string `json:"data,omitempty"`
	// Done carries the final result document on the "done" event.
	Done *JobResponse `json:"done,omitempty"`
}

// submitStream serves a sync job as chunked NDJSON: an immediate
// "accepted" event, the job's stdout/stderr in bounded chunks once
// available, and a terminal "done" event carrying the result document.
// The HTTP status is always 200; failures ride in done.error_kind.
func (s *Server) submitStream(w http.ResponseWriter, r *http.Request, spec *jobSpec) {
	w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flush := func() {
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
	}
	enc.Encode(streamEvent{Event: "accepted"})
	flush()

	res, shard, err := s.run(r.Context(), spec)
	var resp *JobResponse
	if err != nil {
		kind, _ := ErrorKind(err)
		resp = &JobResponse{ErrorKind: kind, Error: err.Error(), Shard: shard}
	} else {
		resp = respFromResult(res, shard)
		for _, stream := range []struct{ event, data string }{
			{"stdout", resp.Stdout}, {"stderr", resp.Stderr},
		} {
			for off := 0; off < len(stream.data); off += streamChunk {
				end := off + streamChunk
				if end > len(stream.data) {
					end = len(stream.data)
				}
				enc.Encode(streamEvent{Event: stream.event, Data: stream.data[off:end]})
				flush()
			}
		}
		// Output traveled in its own events; the done document stays lean.
		resp.Stdout, resp.Stderr = "", ""
	}
	enc.Encode(streamEvent{Event: "done", Done: resp})
	flush()
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	s.m.httpReqs.Inc()
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, &JobResponse{ErrorKind: "unknown_job", Error: "no such job"})
		return
	}
	state, resp := j.state()
	if state != JobStateDone {
		writeJSON(w, http.StatusOK, &JobResponse{ID: j.id, State: JobStatePending})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	s.m.httpReqs.Inc()
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, &JobResponse{ErrorKind: "unknown_job", Error: "no such job"})
		return
	}
	j.cancel()
	state, resp := j.state()
	if state == JobStateDone {
		writeJSON(w, http.StatusOK, resp)
		return
	}
	writeJSON(w, http.StatusAccepted, &JobResponse{ID: j.id, State: JobStatePending})
}

func (s *Server) handleImagePost(w http.ResponseWriter, r *http.Request) {
	s.m.httpReqs.Inc()
	if s.closing() {
		writeError(w, ErrServerClosed)
		return
	}
	var req ImageRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, &JobResponse{ErrorKind: "bad_request", Error: "bad JSON: " + err.Error()})
		return
	}
	var (
		img *pool.Image
		err error
	)
	opts := core.Options{Opt: core.O2}
	if req.Opt != nil {
		opts.Opt = core.OptLevel(*req.Opt)
	}
	switch {
	case req.Source != "" && req.ELF == "" && req.Wasm == "":
		img, err = s.BuildImage(req.Name, req.Source, opts)
	case req.ELF != "" && req.Source == "" && req.Wasm == "":
		var elf []byte
		if elf, err = base64.StdEncoding.DecodeString(req.ELF); err == nil {
			img, err = s.ImageFromELF(req.Name, elf)
		}
	case req.Wasm != "" && req.Source == "" && req.ELF == "":
		var wasm []byte
		if wasm, err = base64.StdEncoding.DecodeString(req.Wasm); err == nil {
			img, err = s.BuildWasm(req.Name, wasm, opts)
		}
	default:
		writeJSON(w, http.StatusBadRequest, &JobResponse{ErrorKind: "bad_request",
			Error: "exactly one of source, elf, wasm required"})
		return
	}
	if err != nil {
		if kind, _ := ErrorKind(err); kind == "verify" {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusBadRequest, &JobResponse{ErrorKind: "bad_request", Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusCreated, &ImageResponse{Name: req.Name, Key: img.Key})
}

func (s *Server) handleImageList(w http.ResponseWriter, r *http.Request) {
	s.m.httpReqs.Inc()
	aliases := s.Images()
	out := make([]ImageResponse, 0, len(aliases))
	for name, key := range aliases {
		out = append(out, ImageResponse{Name: name, Key: key})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.closing() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
