package serve

import (
	"encoding/binary"
	"fmt"
	"io"
)

// The binary protocol is the hot-path alternative to HTTP JSON: a
// length-prefixed frame stream over one TCP connection, multiplexed by a
// client-chosen request id. A client may pipeline any number of requests
// without waiting; responses carry the originating id and may arrive out
// of order. The framing is:
//
//	offset size field
//	0      2    magic 0x4C46 ("LF", big-endian)
//	2      1    version (1)
//	3      1    frame type
//	4      4    payload length (big-endian)
//	8      8    request id (big-endian)
//	16     n    payload
//
// Request payloads mirror JobRequest; response payloads mirror
// JobResponse. With the stream flag set, a response's stdout/stderr
// travel in dedicated chunk frames (frameOut/frameErrOut) preceding the
// terminal frameRes.
const (
	frameMagic   = 0x4C46
	frameVersion = 1

	// headerSize is the fixed frame header length.
	headerSize = 16
	// maxFramePayload bounds a single frame (and therefore a request's
	// input or one output chunk).
	maxFramePayload = 16 << 20
)

// Frame types.
const (
	frameReq    = 1 // client → server: job request
	frameRes    = 2 // server → client: terminal job response
	frameOut    = 3 // server → client: stdout chunk (stream flag)
	frameErrOut = 4 // server → client: stderr chunk (stream flag)
	framePing   = 5 // client → server: liveness probe
	framePong   = 6 // server → client: probe answer
)

// Request flag bits (binReq.flags).
const (
	flagCold   = 1 << 0 // bypass the warm/snapshot path
	flagStream = 1 << 1 // deliver output as chunk frames
)

// Error-kind wire codes, one per ErrorKind string. The binary protocol
// ships the code; binKindName maps it back for display.
const (
	kindOK = iota
	kindDeadline
	kindQuota
	kindOverloaded
	kindCanceled
	kindVerify
	kindUnknownImage
	kindClosed
	kindQueueFull
	kindBadRequest
	kindInternal
)

var kindCodes = map[string]uint8{
	"ok": kindOK, "deadline": kindDeadline, "quota": kindQuota,
	"overloaded": kindOverloaded, "canceled": kindCanceled,
	"verify": kindVerify, "unknown_image": kindUnknownImage,
	"closed": kindClosed, "queue_full": kindQueueFull,
	"bad_request": kindBadRequest, "internal": kindInternal,
}

var kindNames = func() map[uint8]string {
	m := make(map[uint8]string, len(kindCodes))
	for name, code := range kindCodes {
		m[code] = name
	}
	return m
}()

// KindCode maps an ErrorKind string to its binary wire code
// (kindInternal for unknown strings).
func KindCode(kind string) uint8 {
	if c, ok := kindCodes[kind]; ok {
		return c
	}
	return kindInternal
}

// KindName maps a binary wire code back to its ErrorKind string.
func KindName(code uint8) string {
	if n, ok := kindNames[code]; ok {
		return n
	}
	return "internal"
}

// frame is one decoded wire frame.
type frame struct {
	typ     uint8
	id      uint64
	payload []byte
}

// writeFrame emits one frame to w.
func writeFrame(w io.Writer, f frame) error {
	if len(f.payload) > maxFramePayload {
		return fmt.Errorf("serve: frame payload %d exceeds limit", len(f.payload))
	}
	var hdr [headerSize]byte
	binary.BigEndian.PutUint16(hdr[0:], frameMagic)
	hdr[2] = frameVersion
	hdr[3] = f.typ
	binary.BigEndian.PutUint32(hdr[4:], uint32(len(f.payload)))
	binary.BigEndian.PutUint64(hdr[8:], f.id)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(f.payload)
	return err
}

// readFrame reads one frame from r, validating magic, version, and
// payload bound.
func readFrame(r io.Reader) (frame, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return frame{}, err
	}
	if m := binary.BigEndian.Uint16(hdr[0:]); m != frameMagic {
		return frame{}, fmt.Errorf("serve: bad frame magic %#x", m)
	}
	if v := hdr[2]; v != frameVersion {
		return frame{}, fmt.Errorf("serve: unsupported protocol version %d", v)
	}
	n := binary.BigEndian.Uint32(hdr[4:])
	if n > maxFramePayload {
		return frame{}, fmt.Errorf("serve: frame payload %d exceeds limit", n)
	}
	f := frame{typ: hdr[3], id: binary.BigEndian.Uint64(hdr[8:])}
	if n > 0 {
		f.payload = make([]byte, n)
		if _, err := io.ReadFull(r, f.payload); err != nil {
			return frame{}, err
		}
	}
	return f, nil
}

// binReq is the binary request payload (the hot-path subset of
// JobRequest: prepared images only, no inline source).
type binReq struct {
	tenant string
	image  string
	budget uint64
	flags  uint8
	input  []byte
}

func (q *binReq) marshal() []byte {
	b := make([]byte, 0, 32+len(q.tenant)+len(q.image)+len(q.input))
	b = appendBytes(b, []byte(q.tenant))
	b = appendBytes(b, []byte(q.image))
	b = binary.AppendUvarint(b, q.budget)
	b = append(b, q.flags)
	b = appendBytes(b, q.input)
	return b
}

func parseBinReq(p []byte) (*binReq, error) {
	d := decoder{buf: p}
	q := &binReq{
		tenant: string(d.bytes()),
		image:  string(d.bytes()),
		budget: d.uvarint(),
		flags:  d.byte(),
		input:  d.bytes(),
	}
	if d.err != nil {
		return nil, fmt.Errorf("serve: bad request payload: %w", d.err)
	}
	return q, nil
}

// binRes is the binary response payload.
type binRes struct {
	kind   uint8
	status int64
	instrs uint64
	shard  uint64
	worker uint64
	warm   bool
	errmsg string
	stdout []byte
	stderr []byte
}

func (r *binRes) marshal() []byte {
	b := make([]byte, 0, 64+len(r.errmsg)+len(r.stdout)+len(r.stderr))
	b = append(b, r.kind)
	b = binary.AppendVarint(b, r.status)
	b = binary.AppendUvarint(b, r.instrs)
	b = binary.AppendUvarint(b, r.shard)
	b = binary.AppendUvarint(b, r.worker)
	b = append(b, boolByte(r.warm))
	b = appendBytes(b, []byte(r.errmsg))
	b = appendBytes(b, r.stdout)
	b = appendBytes(b, r.stderr)
	return b
}

func parseBinRes(p []byte) (*binRes, error) {
	d := decoder{buf: p}
	r := &binRes{
		kind:   d.byte(),
		status: d.varint(),
		instrs: d.uvarint(),
		shard:  d.uvarint(),
		worker: d.uvarint(),
		warm:   d.byte() != 0,
		errmsg: string(d.bytes()),
		stdout: d.bytes(),
		stderr: d.bytes(),
	}
	if d.err != nil {
		return nil, fmt.Errorf("serve: bad response payload: %w", d.err)
	}
	return r, nil
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// appendBytes writes a uvarint length prefix followed by the bytes.
func appendBytes(b, v []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(v)))
	return append(b, v...)
}

// decoder is a cursor over a payload; the first malformed field sticks
// in err and poisons the rest (callers check once at the end).
type decoder struct {
	buf []byte
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = io.ErrUnexpectedEOF
	}
}

func (d *decoder) byte() byte {
	if d.err != nil || len(d.buf) < 1 {
		d.fail()
		return 0
	}
	v := d.buf[0]
	d.buf = d.buf[1:]
	return v
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) bytes() []byte {
	n := d.uvarint()
	if d.err != nil || uint64(len(d.buf)) < n {
		d.fail()
		return nil
	}
	v := d.buf[:n]
	d.buf = d.buf[n:]
	return v
}
