package serve

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"time"
)

// TenantConfig declares one tenant's quality-of-service contract.
type TenantConfig struct {
	// Name identifies the tenant on the wire (the "tenant" request field).
	Name string
	// Weight is the tenant's fair-queueing weight: under contention a
	// tenant receives capacity proportional to its weight (0 = 1).
	Weight int
	// Rate is the token-bucket refill in requests per second; requests
	// beyond it are rejected with ErrTenantQuota (0 = unlimited).
	Rate float64
	// Burst is the bucket capacity — how far a tenant may run ahead of
	// its refill rate (0 = max(1, ceil(Rate))).
	Burst int
	// MaxPending bounds this tenant's queued jobs per shard; beyond it
	// the router sheds with ErrOverloaded (0 = the server default).
	MaxPending int
}

func (t TenantConfig) withDefaults(serverMaxPending int) TenantConfig {
	if t.Weight <= 0 {
		t.Weight = 1
	}
	if t.Burst <= 0 && t.Rate > 0 {
		t.Burst = int(math.Ceil(t.Rate))
		if t.Burst < 1 {
			t.Burst = 1
		}
	}
	if t.MaxPending <= 0 {
		t.MaxPending = serverMaxPending
	}
	return t
}

// ParseTenants parses the lfi-serve -tenants syntax: a comma-separated
// list of name[:weight[:rate[:burst]]] entries, e.g.
//
//	"pro:4,standard:1:50,free:1:5:10"
//
// declares a weight-4 unlimited tenant, a weight-1 tenant limited to 50
// req/s, and a weight-1 tenant at 5 req/s with bursts of 10.
func ParseTenants(spec string) ([]TenantConfig, error) {
	var out []TenantConfig
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		parts := strings.Split(entry, ":")
		tc := TenantConfig{Name: parts[0]}
		if tc.Name == "" {
			return nil, fmt.Errorf("serve: tenant entry %q has no name", entry)
		}
		if len(parts) > 4 {
			return nil, fmt.Errorf("serve: tenant entry %q: want name[:weight[:rate[:burst]]]", entry)
		}
		var err error
		if len(parts) > 1 {
			if tc.Weight, err = strconv.Atoi(parts[1]); err != nil || tc.Weight <= 0 {
				return nil, fmt.Errorf("serve: tenant %s: bad weight %q", tc.Name, parts[1])
			}
		}
		if len(parts) > 2 {
			if tc.Rate, err = strconv.ParseFloat(parts[2], 64); err != nil || tc.Rate < 0 {
				return nil, fmt.Errorf("serve: tenant %s: bad rate %q", tc.Name, parts[2])
			}
		}
		if len(parts) > 3 {
			if tc.Burst, err = strconv.Atoi(parts[3]); err != nil || tc.Burst <= 0 {
				return nil, fmt.Errorf("serve: tenant %s: bad burst %q", tc.Name, parts[3])
			}
		}
		out = append(out, tc)
	}
	return out, nil
}

// bucket is a token-bucket rate limiter: tokens refill continuously at
// rate per second up to burst, and each admitted request takes one. A
// nil bucket (rate 0) admits everything.
type bucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

func newBucket(rate float64, burst int, now time.Time) *bucket {
	if rate <= 0 {
		return nil
	}
	return &bucket{rate: rate, burst: float64(burst), tokens: float64(burst), last: now}
}

// take admits one request if a token is available at time now.
func (b *bucket) take(now time.Time) bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(b.burst, b.tokens+dt*b.rate)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}
