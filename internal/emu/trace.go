// Hot-trace superblocks.
//
// Chaining (block.go) removes the PC re-hash between hot blocks, but every
// block transfer still pays a budget check, successor bookkeeping, and a
// chain-link probe. For genuinely hot code — a pointer-chase loop retiring
// four instructions per iteration — that dispatch overhead is comparable
// to the work itself. Superblocks remove it: once a block has been entered
// traceThreshold times, the observed hot successor sequence is stitched
// into one flat slot array that executes with a single budget clip at
// entry. Tight loops are unrolled into the trace (the successor is allowed
// to revisit stitched blocks), so a 4-instruction loop becomes a ~512-slot
// superblock whose per-iteration dispatch cost is one slot-array step.
//
// Stitching follows: the fall-through for blocks ended by a page boundary
// or length cap, the static target for B/BL, and the recorded hot
// successor for conditional/indirect exits once it has stayed stable for
// traceStableMin consecutive transfers. It stops at SVC/BRK, at the
// host-call window, and at blocks not currently warm in the block cache —
// buildTrace never decodes new blocks, because decodeBlock could evict the
// head or an already-stitched entry mid-build.
//
// Exactness (the same invariants block.go documents):
//   - slots carry their real pc, so exec/retireWith see the same pc stream
//     as normal dispatch — the bimodal predictor and BTB indices, and
//     therefore Cycles, are bit-identical.
//   - entry clips the slot count to the remaining budget (splitting fused
//     pairs when the clip lands between them), so TrapBudget lands on the
//     exact instruction; c.PC is architecturally current after every slot,
//     so a snapshot taken at any trap mid-superblock resumes correctly.
//   - after a branch slot, execution continues only if the architectural
//     PC equals the next stitched slot's pc; otherwise the superblock side
//     exits to normal dispatch. A mispredicted stitch can only cost a side
//     exit, never a wrong path.
//   - superblocks hold copies of the decoded slots, so later eviction of a
//     constituent block cache entry cannot corrupt a built trace; epoch
//     flushes drop every superblock along with the block cache.
package emu

import "lfi/internal/arm64"

const (
	// traceStableMin is the consecutive-same-successor streak required
	// before a conditional or indirect block exit is stitched across.
	traceStableMin = 8
	// traceMaxInsts caps superblock length (and so the worst-case distance
	// between budget checks at one Run-loop dispatch).
	traceMaxInsts = 512
	// traceMaxBlocks caps how many block bodies one trace may stitch.
	traceMaxBlocks = 128
	// maxSuperblocks bounds live superblocks between flushes.
	maxSuperblocks = 128
	// sbMaxTries is how many failed stitch attempts a block gets before
	// trace formation is disabled for it. Each failure doubles the entry
	// count required for the next attempt (see runEntry), so early
	// failures from a not-yet-stable successor streak are retried cheaply
	// while genuinely unstitchable blocks stop consuming build attempts.
	sbMaxTries = 8
)

// sbSlot is one superblock instruction: the predecoded slot plus its real
// program counter (blocks know their slots' pcs implicitly; a stitched
// trace must carry them).
type sbSlot struct {
	instSlot
	pc uint64
}

type superblock struct {
	slots []sbSlot
}

// traceSucc picks the successor pc to stitch after block e, or ok=false
// to end the trace. endPC is the pc one past e's last slot.
func traceSucc(e *bcEntry, endPC uint64) (uint64, bool) {
	last := &e.insts[len(e.insts)-1]
	switch last.inst.Op {
	case arm64.SVC, arm64.BRK:
		// Always traps; nothing executes after it.
		return 0, false
	}
	switch last.meta.branch {
	case brNone:
		// Block ended at a page boundary or the length cap; execution
		// falls through.
		return endPC, true
	case brUncond:
		return endPC - 4 + uint64(last.inst.Imm), true
	default: // brCond, brIndirect
		if e.stable < traceStableMin {
			return 0, false
		}
		return e.lastNext, true
	}
}

// buildTrace stitches the hot path starting at head into head.sb, or
// records a failed attempt so formation retries after the next threshold's
// worth of entries (and gives up after sbMaxTries).
func (c *CPU) buildTrace(head *bcEntry) {
	if c.sbCount >= maxSuperblocks {
		head.sbFailed = true
		return
	}
	slots := make([]sbSlot, 0, traceMaxInsts)
	e := head
	for blocks := 0; blocks < traceMaxBlocks; blocks++ {
		if len(slots)+len(e.insts) > traceMaxInsts {
			break
		}
		pc := e.pc
		for k := range e.insts {
			slots = append(slots, sbSlot{instSlot: e.insts[k], pc: pc})
			pc += 4
		}
		succ, ok := traceSucc(e, pc)
		if !ok || succ%4 != 0 {
			break
		}
		// The outer dispatch loop checks the host-call window per pc; a
		// stitched transfer skips that check, so prove it here (the window
		// only changes via SetHostCallRegion, which flushes superblocks).
		if c.hostCallLen != 0 && succ-c.hostCallBase < c.hostCallLen {
			break
		}
		t := &c.bcache[(succ>>2)&(bcacheSize-1)]
		if t.pc != succ || len(t.insts) == 0 {
			break // cold successor; never decode during a build
		}
		e = t
	}
	if len(slots) <= len(head.insts) {
		// The trace never got past the head block; not worth a superblock.
		// Back off exponentially rather than resetting the entry counter:
		// a conditional exit only needs a longer stability streak, which
		// more entries will provide.
		head.sbTries++
		if head.sbTries >= sbMaxTries {
			head.sbFailed = true
		}
		return
	}
	head.sb = &superblock{slots: slots}
	c.sbCount++
	c.Stat.SBBuilds++
}

// runSuperblock executes sb, clipped to the remaining budget. Dispatch
// mirrors runSlots (block.go) plus the per-branch side-exit check.
func (c *CPU) runSuperblock(sb *superblock, end uint64) *Trap {
	c.Stat.SBEnters++
	slots := sb.slots
	n := len(slots)
	if rem := end - c.Instrs; rem < uint64(n) {
		n = int(rem)
	}
	for k := 0; k < n; k++ {
		s := &slots[k]
		switch s.fuse.kind {
		case fuseNone:
			if tr := c.exec(&s.inst, &s.meta); tr != nil {
				return tr
			}
		case fuseAccess:
			if tr := c.execFastMem(&s.instSlot); tr != nil {
				return tr
			}
		default: // pair head
			if k+1 < n {
				// execFusedPair counts the guard; the Instrs++ below
				// counts the access, which never branches — the side-exit
				// check below is a no-op for it.
				if tr := c.execFusedPair(&s.instSlot, &slots[k+1].instSlot); tr != nil {
					return tr
				}
				k++
				s = &slots[k]
			} else if tr := c.exec(&s.inst, &s.meta); tr != nil {
				// Partner clipped out: run the head alone, generically.
				return tr
			}
		}
		c.Instrs++
		if s.meta.branch != brNone && k+1 < n && c.PC != slots[k+1].pc {
			c.Stat.SBSideExits++
			return nil
		}
	}
	return nil
}
