package emu

import "os"

// Options is the consolidated emulator dispatch configuration: every
// layer toggle that used to live behind an individual setter and EMU_*
// environment variable. A CPU is created with the process-wide boot
// options (OptionsFromEnv, read once at startup) and reconfigured
// atomically with Apply — one flush, no ordering concerns between
// toggles.
type Options struct {
	// Fastpath selects the predecoded-block dispatch loop. Off selects
	// the per-step interpreter, the bit-identical differential-testing
	// reference (EMU_FASTPATH=off).
	Fastpath bool
	// Chaining links blocks directly so hot transfers skip the outer
	// dispatch (EMU_CHAIN=off disables).
	Chaining bool
	// Tracing stitches hot block sequences into superblocks
	// (EMU_TRACE=off disables).
	Tracing bool
	// Fusion executes guard+access idiom pairs as one fused step
	// (EMU_FUSE=off disables).
	Fusion bool
	// TraceThreshold is the number of block entries before a hot trace
	// is stitched (tests and fuzzing use low values to form superblocks
	// quickly). Apply clamps values below 1 to 1.
	TraceThreshold uint32
}

// DefaultOptions returns the full dispatch stack: every layer on, with
// the production trace threshold.
func DefaultOptions() Options {
	return Options{
		Fastpath:       true,
		Chaining:       true,
		Tracing:        true,
		Fusion:         true,
		TraceThreshold: defaultTraceThreshold,
	}
}

// OptionsFromEnv reads the EMU_* escape hatches: each layer is on unless
// its variable is the literal string "off" (EMU_FASTPATH, EMU_CHAIN,
// EMU_TRACE, EMU_FUSE). The environment is read at call time; New uses
// the value captured once at process start.
func OptionsFromEnv() Options {
	o := DefaultOptions()
	o.Fastpath = os.Getenv("EMU_FASTPATH") != "off"
	o.Chaining = os.Getenv("EMU_CHAIN") != "off"
	o.Tracing = os.Getenv("EMU_TRACE") != "off"
	o.Fusion = os.Getenv("EMU_FUSE") != "off"
	return o
}

// bootOptions seeds every new CPU; captured once so a test's Setenv
// cannot skew CPUs created later in the process.
var bootOptions = OptionsFromEnv()

// Apply reconfigures the dispatch stack in one step and drops all cached
// decodes — stale chain links, superblocks, and fusion marks from the
// previous configuration can never be reused.
func (c *CPU) Apply(o Options) {
	if o.TraceThreshold < 1 {
		o.TraceThreshold = 1
	}
	c.fastpath = o.Fastpath
	c.chaining = o.Chaining
	c.tracing = o.Tracing
	c.fusion = o.Fusion
	c.traceThreshold = o.TraceThreshold
	c.flushDecoded(c.Mem.Epoch())
}

// Options returns the CPU's current dispatch configuration.
func (c *CPU) Options() Options {
	return Options{
		Fastpath:       c.fastpath,
		Chaining:       c.chaining,
		Tracing:        c.tracing,
		Fusion:         c.fusion,
		TraceThreshold: c.traceThreshold,
	}
}
