package emu

// Differential tests: the predecoded-block fast path must be bit-identical
// to the per-step interpreter — registers, memory, Instrs, cycle count, and
// the exact instruction at which every trap (including TrapBudget) lands.

import (
	"os"
	"reflect"
	"testing"

	"lfi/internal/arm64"
	"lfi/internal/mem"
)

// loadProgram assembles src and builds a fresh machine around it, mirroring
// the run() harness but without executing, so two identical machines can be
// stepped in lockstep.
func loadProgram(t *testing.T, src string) *CPU {
	t.Helper()
	f, err := arm64.ParseFile(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	img, err := arm64.Assemble(f, arm64.Layout{TextBase: textBase, PageSize: 16384})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	as := mem.NewAddrSpace(16384)
	roundUp := func(v uint64) uint64 { return (v + 16383) &^ 16383 }
	if err := as.Map(img.TextAddr, roundUp(uint64(len(img.Text))+1), mem.PermRX); err != nil {
		t.Fatal(err)
	}
	if f := as.WriteForce(img.Text, img.TextAddr); f != nil {
		t.Fatal(f)
	}
	if len(img.Data) > 0 || img.BSSSize > 0 {
		end := roundUp(img.BSSAddr + img.BSSSize)
		if err := as.Map(img.DataAddr, end-img.DataAddr, mem.PermRW); err != nil {
			t.Fatal(err)
		}
		if f := as.WriteForce(img.Data, img.DataAddr); f != nil {
			t.Fatal(f)
		}
	}
	if len(img.ROData) > 0 {
		if err := as.Map(img.RODataAddr, roundUp(uint64(len(img.ROData))), mem.PermRead); err != nil {
			t.Fatal(err)
		}
		if f := as.WriteForce(img.ROData, img.RODataAddr); f != nil {
			t.Fatal(f)
		}
	}
	stackTop := uint64(0x800000)
	if err := as.Map(stackTop-64*1024, 64*1024, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	c := New(as)
	c.PC = img.Entry
	c.SP = stackTop
	c.Timing = NewTiming(ModelM1())
	return c
}

func compareCPUs(t *testing.T, slow, fast *CPU, when string) {
	t.Helper()
	if slow.X != fast.X {
		t.Fatalf("%s: X registers diverge:\nslow=%#x\nfast=%#x", when, slow.X, fast.X)
	}
	if slow.SP != fast.SP {
		t.Fatalf("%s: SP diverges: slow=%#x fast=%#x", when, slow.SP, fast.SP)
	}
	if slow.V != fast.V {
		t.Fatalf("%s: V registers diverge", when)
	}
	if slow.FlagN != fast.FlagN || slow.FlagZ != fast.FlagZ ||
		slow.FlagC != fast.FlagC || slow.FlagV != fast.FlagV {
		t.Fatalf("%s: flags diverge", when)
	}
	if slow.PC != fast.PC {
		t.Fatalf("%s: PC diverges: slow=%#x fast=%#x", when, slow.PC, fast.PC)
	}
	if slow.Instrs != fast.Instrs {
		t.Fatalf("%s: Instrs diverge: slow=%d fast=%d", when, slow.Instrs, fast.Instrs)
	}
	if sc, fc := slow.Timing.Cycles(), fast.Timing.Cycles(); sc != fc {
		t.Fatalf("%s: cycles diverge: slow=%v fast=%v", when, sc, fc)
	}
}

func compareTraps(t *testing.T, slow, fast *Trap, when string) {
	t.Helper()
	if (slow == nil) != (fast == nil) {
		t.Fatalf("%s: trap presence diverges: slow=%v fast=%v", when, slow, fast)
	}
	if slow == nil {
		return
	}
	if slow.Kind != fast.Kind || slow.PC != fast.PC || slow.Imm != fast.Imm {
		t.Fatalf("%s: traps diverge: slow=%v fast=%v", when, slow, fast)
	}
	if (slow.Fault == nil) != (fast.Fault == nil) {
		t.Fatalf("%s: fault presence diverges: slow=%v fast=%v", when, slow, fast)
	}
	if slow.Fault != nil && *slow.Fault != *fast.Fault {
		t.Fatalf("%s: faults diverge: slow=%v fast=%v", when, slow.Fault, fast.Fault)
	}
}

// lockstep runs the program on three identical machines — per-step
// reference, blocks-only fast path, and the full chained/traced/fused
// configuration (with a tiny trace threshold so superblocks actually form
// within short tests) — in deliberately awkward budget slices so
// TrapBudget lands mid-block and mid-superblock, comparing the complete
// architectural state after every slice and the final memory image at the
// end. Returns the final trap.
func lockstep(t *testing.T, src string) *Trap {
	t.Helper()
	slow := loadProgram(t, src)
	slow.SetFastpath(false)
	fast := loadProgram(t, src)
	fast.SetFastpath(true)
	fast.SetChaining(false)
	fast.SetTracing(false)
	fast.SetFusion(false)
	full := loadProgram(t, src)
	full.SetFastpath(true)
	full.SetChaining(true)
	full.SetTracing(true)
	full.SetFusion(true)
	full.SetTraceThreshold(2)

	// Prime slice sizes defeat any alignment with block boundaries.
	slices := []uint64{1, 2, 3, 5, 7, 11, 13, 17, 23, 97, 251, 1021}
	var final *Trap
	for i := 0; i < 100000; i++ {
		n := slices[i%len(slices)]
		str := slow.Run(n)
		ftr := fast.Run(n)
		ctr := full.Run(n)
		compareTraps(t, str, ftr, "mid-run (blocks)")
		compareCPUs(t, slow, fast, "mid-run (blocks)")
		compareTraps(t, str, ctr, "mid-run (chained)")
		compareCPUs(t, slow, full, "mid-run (chained)")
		if str.Kind != TrapBudget {
			final = str
			break
		}
	}
	if final == nil {
		t.Fatal("program did not finish within the lockstep budget")
	}

	sm, err := slow.Mem.SnapshotRange(0, 0x900000)
	if err != nil {
		t.Fatal(err)
	}
	fm, err := fast.Mem.SnapshotRange(0, 0x900000)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := full.Mem.SnapshotRange(0, 0x900000)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sm, fm) {
		t.Fatal("final memory snapshots diverge (blocks)")
	}
	if !reflect.DeepEqual(sm, cm) {
		t.Fatal("final memory snapshots diverge (chained)")
	}
	return final
}

func TestDiffArithmeticLoop(t *testing.T) {
	tr := lockstep(t, `
_start:
	mov x0, #0
	mov x1, #1
loop:
	add x0, x0, x1
	add x1, x1, #1
	cmp x1, #500
	b.ne loop
	brk #0
`)
	if tr.Kind != TrapBRK {
		t.Fatalf("trap = %v, want brk", tr)
	}
}

func TestDiffMemoryMix(t *testing.T) {
	tr := lockstep(t, `
_start:
	adrp x1, buf
	add x1, x1, :lo12:buf
	mov x2, #0
	mov x3, #200
fill:
	str x2, [x1, x2, lsl #3]
	strb w2, [x1, x2]
	strh w2, [x1, #2]
	add x2, x2, #1
	cmp x2, x3
	b.ne fill
	mov x2, #0
	mov x4, #0
sum:
	ldr x5, [x1, x2, lsl #3]
	ldrb w6, [x1, x2]
	ldrsw x7, [x1, #4]
	add x4, x4, x5
	add x4, x4, x6
	add x4, x4, x7
	add x2, x2, #1
	cmp x2, x3
	b.ne sum
	stp x4, x2, [sp, #-16]!
	ldp x8, x9, [sp], #16
	brk #0
.bss
buf:
	.space 4096
`)
	if tr.Kind != TrapBRK {
		t.Fatalf("trap = %v, want brk", tr)
	}
}

func TestDiffFPKernel(t *testing.T) {
	tr := lockstep(t, `
_start:
	mov x0, #300
	fmov d0, #1.0
	fmov d1, #2.0
	fmov d2, #0.5
loop:
	fmadd d0, d1, d2, d0
	fdiv d3, d0, d1
	fsqrt d4, d3
	fadd d1, d1, d2
	subs x0, x0, #1
	b.ne loop
	fcmp d0, d1
	brk #0
`)
	if tr.Kind != TrapBRK {
		t.Fatalf("trap = %v, want brk", tr)
	}
}

func TestDiffBranchy(t *testing.T) {
	tr := lockstep(t, `
_start:
	mov x0, #0
	mov x1, #12345
	mov x2, #600
loop:
	// xorshift-style mixing plus data-dependent branches
	eor x1, x1, x1, lsl #13
	eor x1, x1, x1, lsr #7
	tbz x1, #3, skip1
	add x0, x0, #1
skip1:
	cbz x1, skip2
	add x0, x0, #2
skip2:
	subs x2, x2, #1
	b.ne loop
	bl leaf
	brk #0
leaf:
	add x0, x0, #7
	ret
`)
	if tr.Kind != TrapBRK {
		t.Fatalf("trap = %v, want brk", tr)
	}
}

func TestDiffMemFault(t *testing.T) {
	tr := lockstep(t, `
_start:
	mov x0, #64
	movk x0, #0x4000, lsl #16
	str x1, [x0]
	brk #0
`)
	if tr.Kind != TrapMemFault {
		t.Fatalf("trap = %v, want memory fault", tr)
	}
}

func TestDiffSVC(t *testing.T) {
	tr := lockstep(t, `
_start:
	mov x8, #93
	svc #0
`)
	if tr.Kind != TrapSVC {
		t.Fatalf("trap = %v, want svc", tr)
	}
}

func TestDiffMisalignedJump(t *testing.T) {
	tr := lockstep(t, `
_start:
	adr x0, _start
	add x0, x0, #2
	br x0
`)
	if tr.Kind != TrapMemFault || tr.Fault == nil || tr.Fault.Access != mem.AccessExec {
		t.Fatalf("trap = %v, want exec fault", tr)
	}
}

// TestDiffHostCallWindow checks that both paths stop at the host-call
// window at the same instruction, and resume identically afterwards.
func TestDiffHostCallWindow(t *testing.T) {
	src := `
_start:
	mov x0, #0
	mov x2, #50
loop:
	add x0, x0, #3
	movz x1, #0x0030, lsl #16
	movk x1, #0x0040
	blr x1
	subs x2, x2, #1
	b.ne loop
	brk #0
`
	slow := loadProgram(t, src)
	slow.SetFastpath(false)
	fast := loadProgram(t, src)
	fast.SetFastpath(true)
	const hcBase, hcLen = 0x300000, 0x10000
	slow.SetHostCallRegion(hcBase, hcLen)
	fast.SetHostCallRegion(hcBase, hcLen)

	for hops := 0; ; hops++ {
		str := slow.Run(9)
		ftr := fast.Run(9)
		compareTraps(t, str, ftr, "hostcall lockstep")
		compareCPUs(t, slow, fast, "hostcall lockstep")
		if str.Kind == TrapBudget {
			continue
		}
		if str.Kind == TrapHostCall {
			// Emulate the host returning: jump back to the link register.
			slow.PC = slow.X[30]
			fast.PC = fast.X[30]
			continue
		}
		if str.Kind != TrapBRK {
			t.Fatalf("trap = %v, want brk", str)
		}
		if hops < 50 {
			t.Fatalf("expected at least 50 host-call stops, got %d iterations", hops)
		}
		break
	}
}

// TestDiffEpochInvalidation remaps the text page with different code and
// checks both paths pick up the new instructions with no manual flush.
func TestDiffEpochInvalidation(t *testing.T) {
	for _, fastpath := range []bool{false, true} {
		as := mem.NewAddrSpace(16384)
		if err := as.Map(textBase, 16384, mem.PermRX); err != nil {
			t.Fatal(err)
		}
		code1 := []byte{
			0x20, 0x00, 0x80, 0xd2, // mov x0, #1
			0x00, 0x00, 0x20, 0xd4, // brk #0
		}
		if f := as.WriteForce(code1, textBase); f != nil {
			t.Fatal(f)
		}
		c := New(as)
		c.SetFastpath(fastpath)
		c.PC = textBase
		if tr := c.Run(10); tr == nil || tr.Kind != TrapBRK {
			t.Fatalf("fastpath=%v: first run trap = %v, want brk", fastpath, tr)
		}
		if c.X[0] != 1 {
			t.Fatalf("fastpath=%v: x0 = %d, want 1", fastpath, c.X[0])
		}

		// Remap the same page with different code; the AddrSpace epoch
		// bump must invalidate every decode cache without FlushICache.
		if err := as.Unmap(textBase, 16384); err != nil {
			t.Fatal(err)
		}
		if err := as.Map(textBase, 16384, mem.PermRX); err != nil {
			t.Fatal(err)
		}
		code2 := []byte{
			0x40, 0x00, 0x80, 0xd2, // mov x0, #2
			0x00, 0x00, 0x20, 0xd4, // brk #0
		}
		if f := as.WriteForce(code2, textBase); f != nil {
			t.Fatal(f)
		}
		c.PC = textBase
		if tr := c.Run(10); tr == nil || tr.Kind != TrapBRK {
			t.Fatalf("fastpath=%v: second run trap = %v, want brk", fastpath, tr)
		}
		if c.X[0] != 2 {
			t.Fatalf("fastpath=%v: stale decode survived remap: x0 = %d, want 2", fastpath, c.X[0])
		}
	}
}

// assembleText assembles src with the standard test layout and returns the
// raw text bytes (for rewrite-in-place scenarios).
func assembleText(t *testing.T, src string) []byte {
	t.Helper()
	f, err := arm64.ParseFile(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	img, err := arm64.Assemble(f, arm64.Layout{TextBase: textBase, PageSize: 16384})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return img.Text
}

// TestDiffChainEpochInvalidation checks that chain links and superblocks —
// not just raw block decodes — are dropped when the address-space epoch
// bumps, in both mutation scenarios: remapping the text page, and
// rewriting text in place with WriteForce (which cannot change mappings
// but must still bump the epoch).
func TestDiffChainEpochInvalidation(t *testing.T) {
	const loop1 = `
_start:
	mov x0, #0
	mov x1, #200
loop:
	add x0, x0, #1
	subs x1, x1, #1
	b.ne loop
	brk #0
`
	const loop2 = `
_start:
	mov x0, #0
	mov x1, #200
loop:
	add x0, x0, #3
	subs x1, x1, #1
	b.ne loop
	brk #0
`
	for _, scenario := range []string{"remap", "rewrite-in-place"} {
		c := loadProgram(t, loop1)
		// Force every layer on regardless of EMU_* env knobs: this test is
		// about invalidating chains and superblocks, so they must exist.
		c.SetFastpath(true)
		c.SetChaining(true)
		c.SetTracing(true)
		c.SetFusion(true)
		c.SetTraceThreshold(2)
		entry := c.PC
		if tr := c.Run(0); tr == nil || tr.Kind != TrapBRK {
			t.Fatalf("%s: first run trap = %v, want brk", scenario, tr)
		}
		if c.X[0] != 200 {
			t.Fatalf("%s: x0 = %d, want 200", scenario, c.X[0])
		}
		// The run must actually have exercised the layers being tested.
		if c.Stat.ChainHits == 0 {
			t.Fatalf("%s: no chain hits recorded; chaining not exercised", scenario)
		}
		if c.Stat.SBEnters == 0 {
			t.Fatalf("%s: no superblock entries recorded; tracing not exercised", scenario)
		}

		text2 := assembleText(t, loop2)
		switch scenario {
		case "remap":
			if err := c.Mem.Unmap(textBase, 16384); err != nil {
				t.Fatal(err)
			}
			if err := c.Mem.Map(textBase, 16384, mem.PermRX); err != nil {
				t.Fatal(err)
			}
			if f := c.Mem.WriteForce(text2, textBase); f != nil {
				t.Fatal(f)
			}
		case "rewrite-in-place":
			// No mapping mutation at all: WriteForce alone must invalidate
			// the warm chains and superblocks.
			if f := c.Mem.WriteForce(text2, textBase); f != nil {
				t.Fatal(f)
			}
		}
		c.PC = entry
		if tr := c.Run(0); tr == nil || tr.Kind != TrapBRK {
			t.Fatalf("%s: second run trap = %v, want brk", scenario, tr)
		}
		if c.X[0] != 600 {
			t.Fatalf("%s: stale chained/traced code survived: x0 = %d, want 600", scenario, c.X[0])
		}
	}
}

// TestDiffSnapshotMidSuperblock stops a machine whose hot loop runs inside
// an unrolled superblock at a budget trap that necessarily lands mid-trace,
// snapshots memory and architectural state, rebuilds a machine from the
// snapshot, and runs both forward in lockstep: the restored machine must
// resume at the exact PC and stay bit-identical to the original.
func TestDiffSnapshotMidSuperblock(t *testing.T) {
	const src = `
_start:
	mov x0, #0
	mov x1, #20000
loop:
	add x0, x0, #1
	eor x2, x0, x1
	subs x1, x1, #1
	b.ne loop
	brk #0
`
	a := loadProgram(t, src)
	a.Timing = nil // timing scoreboards are not part of a snapshot
	// Force every layer on regardless of EMU_* env knobs: the point of the
	// test is to snapshot while executing inside a superblock.
	a.SetFastpath(true)
	a.SetChaining(true)
	a.SetTracing(true)
	a.SetFusion(true)
	a.SetTraceThreshold(2)
	// Warm up until the loop runs inside a superblock; the 4-instruction
	// loop unrolls far past the 97-instruction slices, so every budget trap
	// from here on lands mid-superblock.
	for i := 0; i < 20; i++ {
		if tr := a.Run(97); tr.Kind != TrapBudget {
			t.Fatalf("warmup trap = %v, want budget", tr)
		}
	}
	if a.Stat.SBEnters == 0 {
		t.Fatal("superblock never entered during warmup")
	}

	pages, err := a.Mem.SnapshotRange(0, 0x900000)
	if err != nil {
		t.Fatal(err)
	}
	as := mem.NewAddrSpace(16384)
	if err := as.RestoreRange(0, pages); err != nil {
		t.Fatal(err)
	}
	b := New(as)
	b.SetFastpath(true)
	b.SetChaining(true)
	b.SetTracing(true)
	b.SetFusion(true)
	b.SetTraceThreshold(2)
	b.X, b.SP, b.V = a.X, a.SP, a.V
	b.FlagN, b.FlagZ, b.FlagC, b.FlagV = a.FlagN, a.FlagZ, a.FlagC, a.FlagV
	b.PC = a.PC
	b.Instrs = a.Instrs

	for i := 0; ; i++ {
		atr := a.Run(97)
		btr := b.Run(97)
		compareTraps(t, atr, btr, "post-restore")
		if a.X != b.X || a.SP != b.SP || a.PC != b.PC || a.Instrs != b.Instrs {
			t.Fatalf("post-restore state diverges at slice %d: a.pc=%#x b.pc=%#x a.x0=%d b.x0=%d",
				i, a.PC, b.PC, a.X[0], b.X[0])
		}
		if atr.Kind == TrapBRK {
			break
		}
		if atr.Kind != TrapBudget {
			t.Fatalf("trap = %v, want budget or brk", atr)
		}
	}
	if a.X[0] != 20000 {
		t.Fatalf("x0 = %d, want 20000", a.X[0])
	}
}

// TestDispatchKnobs checks the per-layer escape hatches and their getters.
func TestDispatchKnobs(t *testing.T) {
	c := loadProgram(t, `
_start:
	brk #0
`)
	// Defaults follow the EMU_* env knobs: each layer is on unless its
	// knob is the literal string "off".
	wantFast := os.Getenv("EMU_FASTPATH") != "off"
	wantChain := os.Getenv("EMU_CHAIN") != "off"
	wantTrace := os.Getenv("EMU_TRACE") != "off"
	wantFuse := os.Getenv("EMU_FUSE") != "off"
	if c.Fastpath() != wantFast || c.Chaining() != wantChain || c.Tracing() != wantTrace || c.Fusion() != wantFuse {
		t.Fatalf("defaults: fastpath=%v chaining=%v tracing=%v fusion=%v, want %v %v %v %v (from EMU_* env)",
			c.Fastpath(), c.Chaining(), c.Tracing(), c.Fusion(),
			wantFast, wantChain, wantTrace, wantFuse)
	}
	c.SetChaining(false)
	c.SetTracing(false)
	c.SetFusion(false)
	if c.Chaining() || c.Tracing() || c.Fusion() {
		t.Fatal("setters did not disable layers")
	}
	c.SetTraceThreshold(0) // clamps to 1
	c.SetChaining(true)
	c.SetTracing(true)
	if tr := c.Run(10); tr == nil || tr.Kind != TrapBRK {
		t.Fatalf("trap = %v, want brk", tr)
	}

	// The consolidated entry point: Apply reconfigures every layer in one
	// step and Options reads the configuration back verbatim (modulo the
	// threshold clamp).
	want := Options{Fastpath: true, Chaining: false, Tracing: true, Fusion: false, TraceThreshold: 7}
	c.Apply(want)
	if got := c.Options(); got != want {
		t.Errorf("Options() = %+v after Apply(%+v)", got, want)
	}
	c.Apply(Options{}) // zero threshold clamps to 1
	if got := c.Options(); got.TraceThreshold != 1 {
		t.Errorf("Apply did not clamp TraceThreshold: %d", got.TraceThreshold)
	}
	c.Apply(DefaultOptions())
	if got := c.Options(); got != DefaultOptions() {
		t.Errorf("Options() = %+v after Apply(DefaultOptions())", got)
	}
	if tr := c.Run(10); tr == nil || tr.Kind != TrapBRK {
		t.Fatalf("trap after Apply = %v, want brk", tr)
	}

	// Env contract: each EMU_* variable disables its layer only when set
	// to the literal string "off", and OptionsFromEnv reads the
	// environment at call time.
	for _, k := range []string{"EMU_FASTPATH", "EMU_CHAIN", "EMU_TRACE", "EMU_FUSE"} {
		t.Setenv(k, "")
	}
	if got := OptionsFromEnv(); got != DefaultOptions() {
		t.Errorf("OptionsFromEnv() with empty env = %+v, want defaults", got)
	}
	t.Setenv("EMU_FASTPATH", "0") // not the literal "off": stays on
	if !OptionsFromEnv().Fastpath {
		t.Error(`EMU_FASTPATH="0" disabled the fastpath; only "off" should`)
	}
	envCases := []struct {
		key string
		get func(Options) bool
	}{
		{"EMU_FASTPATH", func(o Options) bool { return o.Fastpath }},
		{"EMU_CHAIN", func(o Options) bool { return o.Chaining }},
		{"EMU_TRACE", func(o Options) bool { return o.Tracing }},
		{"EMU_FUSE", func(o Options) bool { return o.Fusion }},
	}
	for _, ec := range envCases {
		t.Setenv(ec.key, "off")
		o := OptionsFromEnv()
		if ec.get(o) {
			t.Errorf("%s=off did not disable its layer", ec.key)
		}
		for _, other := range envCases {
			if other.key != ec.key && !other.get(o) {
				t.Errorf("%s=off also disabled %s's layer", ec.key, other.key)
			}
		}
		t.Setenv(ec.key, "")
	}
}

// TestHotTrapReuse checks Run's budget/host-call traps reuse per-CPU
// storage (no per-slice allocation) and stay correct slice over slice.
func TestHotTrapReuse(t *testing.T) {
	c := loadProgram(t, `
_start:
loop:
	add x0, x0, #1
	b loop
`)
	t1 := c.Run(10)
	t2 := c.Run(10)
	if t1 != t2 {
		t.Errorf("budget traps not reused: %p vs %p", t1, t2)
	}
	if t2.Kind != TrapBudget {
		t.Errorf("trap kind = %v, want budget", t2.Kind)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if tr := c.Run(64); tr.Kind != TrapBudget {
			t.Fatal("expected budget trap")
		}
	})
	if allocs != 0 {
		t.Errorf("Run budget slice allocates %v objects per run, want 0", allocs)
	}
}
