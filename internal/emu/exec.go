package emu

import (
	"math"
	"math/bits"

	"lfi/internal/arm64"
	"lfi/internal/mem"
)

// effects carries per-instruction facts from the functional interpreter to
// the timing model.
type effects struct {
	memAddr  uint64 // effective address of the (first) memory access
	hasMem   bool
	branched bool   // a branch redirected the PC
	target   uint64 // branch target if branched
}

// TPIDR is thread-local storage base (tpidr_el0), modeled as plain state.
// CNTVCT reads return the retired instruction count.
const (
	sysTPIDR   = 1<<14 | 3<<11 | 13<<7 | 0<<3 | 2
	sysNZCV    = 1<<14 | 3<<11 | 4<<7 | 2<<3 | 0
	sysCNTVCT  = 1<<14 | 3<<11 | 14<<7 | 0<<3 | 2
	sysSCXTNUM = 1<<14 | 3<<11 | 13<<7 | 0<<3 | 7
)

// TPIDREL0 is modeled TLS state for mrs/msr tpidr_el0.
var _ = sysSCXTNUM

func (c *CPU) memFault(pc uint64, f *mem.Fault) *Trap {
	return &Trap{Kind: TrapMemFault, PC: pc, Fault: f}
}

// operand2 computes the shifted/extended second operand for ALU ops.
func (c *CPU) operand2(i *arm64.Inst, is64 bool) uint64 {
	if i.Rm == arm64.RegNone {
		return uint64(i.Imm)
	}
	v := c.Reg(i.Rm)
	amt := uint(0)
	if i.Amount > 0 {
		amt = uint(i.Amount)
	}
	size := uint(64)
	if !is64 {
		size = 32
	}
	switch i.Ext {
	case arm64.ExtNone:
		return v
	case arm64.ExtLSL, arm64.ExtUXTX:
		return v << amt
	case arm64.ExtLSR:
		if !is64 {
			v &= 0xffffffff
		}
		return v >> amt
	case arm64.ExtASR:
		if is64 {
			return uint64(int64(v) >> amt)
		}
		return uint64(uint32(int32(uint32(v)) >> amt))
	case arm64.ExtROR:
		if is64 {
			return bits.RotateLeft64(v, -int(amt))
		}
		return uint64(bits.RotateLeft32(uint32(v), -int(amt)))
	case arm64.ExtUXTB:
		return (v & 0xff) << amt
	case arm64.ExtUXTH:
		return (v & 0xffff) << amt
	case arm64.ExtUXTW:
		return (v & 0xffffffff) << amt
	case arm64.ExtSXTB:
		return uint64(int64(int8(v))) << amt & sizeMask(size)
	case arm64.ExtSXTH:
		return uint64(int64(int16(v))) << amt & sizeMask(size)
	case arm64.ExtSXTW:
		return uint64(int64(int32(v))) << amt & sizeMask(size)
	case arm64.ExtSXTX:
		return v << amt
	}
	return v
}

func sizeMask(size uint) uint64 {
	if size >= 64 {
		return ^uint64(0)
	}
	return (1 << size) - 1
}

func (c *CPU) setNZ(v uint64, is64 bool) {
	if is64 {
		c.FlagN = int64(v) < 0
	} else {
		c.FlagN = int32(uint32(v)) < 0
	}
	if !is64 {
		v &= 0xffffffff
	}
	c.FlagZ = v == 0
}

// addWithCarry computes a+b+carry and the NZCV flags.
func (c *CPU) addWithCarry(a, b uint64, carry bool, is64 bool, setFlags bool) uint64 {
	var result uint64
	var cy, ov bool
	if is64 {
		s1, c1 := bits.Add64(a, b, 0)
		cin := uint64(0)
		if carry {
			cin = 1
		}
		s2, c2 := bits.Add64(s1, cin, 0)
		result = s2
		cy = c1+c2 != 0
		ov = (int64(a) >= 0) == (int64(b) >= 0) && (int64(result) >= 0) != (int64(a) >= 0)
	} else {
		a32, b32 := a&0xffffffff, b&0xffffffff
		cin := uint64(0)
		if carry {
			cin = 1
		}
		sum := a32 + b32 + cin
		result = sum & 0xffffffff
		cy = sum>>32 != 0
		ov = (int32(uint32(a32)) >= 0) == (int32(uint32(b32)) >= 0) &&
			(int32(uint32(result)) >= 0) != (int32(uint32(a32)) >= 0)
	}
	if setFlags {
		c.setNZ(result, is64)
		c.FlagC = cy
		c.FlagV = ov
	}
	return result
}

// memAccessSize returns the access size in bytes for a load/store op.
func memAccessSize(i *arm64.Inst) int {
	rt := i.Rd
	if rt.IsFP() {
		return rt.FPBits() / 8
	}
	switch i.Op {
	case arm64.LDRB, arm64.STRB, arm64.LDRSB:
		return 1
	case arm64.LDRH, arm64.STRH, arm64.LDRSH:
		return 2
	case arm64.LDRSW:
		return 4
	default:
		if rt.Is64() {
			return 8
		}
		return 4
	}
}

// effAddr computes the effective address of a memory operand and the
// post-execution base value if there is writeback.
func (c *CPU) effAddr(i *arm64.Inst) (addr uint64, wb bool, wbVal uint64) {
	m := &i.Mem
	base := c.Reg(m.Base)
	switch m.Mode {
	case arm64.AddrBase:
		return base, false, 0
	case arm64.AddrImm:
		return base + uint64(int64(m.Imm)), false, 0
	case arm64.AddrPre:
		a := base + uint64(int64(m.Imm))
		return a, true, a
	case arm64.AddrPost:
		return base, true, base + uint64(int64(m.Imm))
	case arm64.AddrLiteral:
		return c.PC + uint64(i.Imm), false, 0
	}
	idx := c.Reg(m.Index)
	amt := uint(0)
	if m.Amount > 0 {
		amt = uint(m.Amount)
	}
	switch m.Mode {
	case arm64.AddrReg:
		return base + (idx << amt), false, 0
	case arm64.AddrRegUXTW:
		return base + ((idx & 0xffffffff) << amt), false, 0
	case arm64.AddrRegSXTW:
		return base + (uint64(int64(int32(uint32(idx)))) << amt), false, 0
	case arm64.AddrRegSXTX:
		return base + (idx << amt), false, 0
	}
	return base, false, 0
}

// exec executes one instruction. md, when non-nil, is the predecoded
// retire metadata for i (block fast path); when nil the timing model
// derives it on the fly.
//
// Keep in sync with fuse.go: execFastMem replicates the load/store path
// below (effAddr subset, access ordering, fault-before-retire, sign
// extension, register write-back) and execFusedPair replicates the
// flagless ADD/SUB/AND/ORR/EOR register forms. Any semantic change to
// those paths here must be mirrored there, or the fused executors will
// diverge from this one — the fastdiff and fuzz lockstep suites compare
// them bit-for-bit.
func (c *CPU) exec(i *arm64.Inst, md *retireMeta) *Trap {
	pc := c.PC
	var eff effects

	switch i.Op {
	case arm64.ADR:
		c.SetReg(i.Rd, pc+uint64(i.Imm))
	case arm64.ADRP:
		c.SetReg(i.Rd, (pc&^0xfff)+uint64(i.Imm))

	case arm64.ADD, arm64.ADDS, arm64.SUB, arm64.SUBS:
		is64 := i.Rd.Is64() || (i.Rd.IsZR() && i.Rn.Is64())
		a := c.Reg(i.Rn)
		b := c.operand2(i, is64)
		sub := i.Op == arm64.SUB || i.Op == arm64.SUBS
		setf := i.Op.SetsFlags()
		var r uint64
		if sub {
			r = c.addWithCarry(a, ^b&sizeMask(boolSize(is64)), true, is64, setf)
		} else {
			r = c.addWithCarry(a, b, false, is64, setf)
		}
		c.SetReg(i.Rd, r)

	case arm64.AND, arm64.ANDS, arm64.ORR, arm64.ORN, arm64.EOR, arm64.EON, arm64.BIC, arm64.BICS:
		is64 := i.Rd.Is64() || (i.Rd.IsZR() && i.Rn.Is64())
		a := c.Reg(i.Rn)
		b := c.operand2(i, is64)
		var r uint64
		switch i.Op {
		case arm64.AND, arm64.ANDS:
			r = a & b
		case arm64.ORR:
			r = a | b
		case arm64.ORN:
			r = a | ^b
		case arm64.EOR:
			r = a ^ b
		case arm64.EON:
			r = a ^ ^b
		case arm64.BIC, arm64.BICS:
			r = a &^ b
		}
		r &= sizeMask(boolSize(is64))
		if i.Op.SetsFlags() {
			c.setNZ(r, is64)
			c.FlagC, c.FlagV = false, false
		}
		c.SetReg(i.Rd, r)

	case arm64.MOVZ:
		c.SetReg(i.Rd, uint64(i.Imm)<<uint(i.Amount))
	case arm64.MOVN:
		c.SetReg(i.Rd, ^(uint64(i.Imm) << uint(i.Amount)))
	case arm64.MOVK:
		old := c.Reg(i.Rd)
		sh := uint(i.Amount)
		c.SetReg(i.Rd, old&^(0xffff<<sh)|uint64(i.Imm)<<sh)

	case arm64.SBFM, arm64.BFM, arm64.UBFM:
		c.execBitfield(i)

	case arm64.EXTR:
		is64 := i.Rd.Is64()
		lsb := uint(i.Imm)
		if is64 {
			hi, lo := c.Reg(i.Rn), c.Reg(i.Rm)
			var r uint64
			if lsb == 0 {
				r = lo
			} else {
				r = lo>>lsb | hi<<(64-lsb)
			}
			c.SetReg(i.Rd, r)
		} else {
			hi, lo := uint32(c.Reg(i.Rn)), uint32(c.Reg(i.Rm))
			var r uint32
			if lsb == 0 {
				r = lo
			} else {
				r = lo>>lsb | hi<<(32-lsb)
			}
			c.SetReg(i.Rd, uint64(r))
		}

	case arm64.UDIV:
		n, m := c.Reg(i.Rn), c.Reg(i.Rm)
		if m == 0 {
			c.SetReg(i.Rd, 0)
		} else {
			c.SetReg(i.Rd, n/m)
		}
	case arm64.SDIV:
		if i.Rd.Is64() {
			n, m := int64(c.Reg(i.Rn)), int64(c.Reg(i.Rm))
			switch {
			case m == 0:
				c.SetReg(i.Rd, 0)
			case n == math.MinInt64 && m == -1:
				c.SetReg(i.Rd, uint64(n))
			default:
				c.SetReg(i.Rd, uint64(n/m))
			}
		} else {
			n, m := int32(uint32(c.Reg(i.Rn))), int32(uint32(c.Reg(i.Rm)))
			switch {
			case m == 0:
				c.SetReg(i.Rd, 0)
			case n == math.MinInt32 && m == -1:
				c.SetReg(i.Rd, uint64(uint32(n)))
			default:
				c.SetReg(i.Rd, uint64(uint32(n/m)))
			}
		}

	case arm64.LSLV, arm64.LSRV, arm64.ASRV, arm64.RORV:
		is64 := i.Rd.Is64()
		size := boolSize(is64)
		amt := uint(c.Reg(i.Rm) % uint64(size))
		v := c.Reg(i.Rn)
		var r uint64
		switch i.Op {
		case arm64.LSLV:
			r = v << amt
		case arm64.LSRV:
			r = v >> amt
		case arm64.ASRV:
			if is64 {
				r = uint64(int64(v) >> amt)
			} else {
				r = uint64(uint32(int32(uint32(v)) >> amt))
			}
		case arm64.RORV:
			if is64 {
				r = bits.RotateLeft64(v, -int(amt))
			} else {
				r = uint64(bits.RotateLeft32(uint32(v), -int(amt)))
			}
		}
		c.SetReg(i.Rd, r&sizeMask(size))

	case arm64.MADD, arm64.MSUB:
		is64 := i.Rd.Is64()
		n, m, a := c.Reg(i.Rn), c.Reg(i.Rm), c.Reg(i.Ra)
		var r uint64
		if i.Op == arm64.MADD {
			r = a + n*m
		} else {
			r = a - n*m
		}
		c.SetReg(i.Rd, r&sizeMask(boolSize(is64)))

	case arm64.SMADDL:
		c.SetReg(i.Rd, c.Reg(i.Ra)+uint64(int64(int32(uint32(c.Reg(i.Rn))))*int64(int32(uint32(c.Reg(i.Rm))))))
	case arm64.UMADDL:
		c.SetReg(i.Rd, c.Reg(i.Ra)+(c.Reg(i.Rn)&0xffffffff)*(c.Reg(i.Rm)&0xffffffff))
	case arm64.SMULH:
		hi, _ := bits.Mul64(c.Reg(i.Rn), c.Reg(i.Rm))
		// Convert unsigned high to signed high.
		n, m := int64(c.Reg(i.Rn)), int64(c.Reg(i.Rm))
		if n < 0 {
			hi -= uint64(m)
		}
		if m < 0 {
			hi -= uint64(n)
		}
		c.SetReg(i.Rd, hi)
	case arm64.UMULH:
		hi, _ := bits.Mul64(c.Reg(i.Rn), c.Reg(i.Rm))
		c.SetReg(i.Rd, hi)

	case arm64.CLZ:
		if i.Rd.Is64() {
			c.SetReg(i.Rd, uint64(bits.LeadingZeros64(c.Reg(i.Rn))))
		} else {
			c.SetReg(i.Rd, uint64(bits.LeadingZeros32(uint32(c.Reg(i.Rn)))))
		}
	case arm64.CLS:
		v := c.Reg(i.Rn)
		if i.Rd.Is64() {
			if int64(v) < 0 {
				v = ^v
			}
			c.SetReg(i.Rd, uint64(bits.LeadingZeros64(v))-1)
		} else {
			v32 := uint32(v)
			if int32(v32) < 0 {
				v32 = ^v32
			}
			c.SetReg(i.Rd, uint64(bits.LeadingZeros32(v32))-1)
		}
	case arm64.RBIT:
		if i.Rd.Is64() {
			c.SetReg(i.Rd, bits.Reverse64(c.Reg(i.Rn)))
		} else {
			c.SetReg(i.Rd, uint64(bits.Reverse32(uint32(c.Reg(i.Rn)))))
		}
	case arm64.REV:
		if i.Rd.Is64() {
			c.SetReg(i.Rd, bits.ReverseBytes64(c.Reg(i.Rn)))
		} else {
			c.SetReg(i.Rd, uint64(bits.ReverseBytes32(uint32(c.Reg(i.Rn)))))
		}
	case arm64.REV16:
		v := c.Reg(i.Rn)
		var r uint64
		n := 4
		if !i.Rd.Is64() {
			n = 2
		}
		for k := 0; k < n; k++ {
			h := (v >> (16 * k)) & 0xffff
			r |= uint64(bits.ReverseBytes16(uint16(h))) << (16 * k)
		}
		c.SetReg(i.Rd, r)
	case arm64.REV32:
		v := c.Reg(i.Rn)
		lo := uint64(bits.ReverseBytes32(uint32(v)))
		hi := uint64(bits.ReverseBytes32(uint32(v >> 32)))
		c.SetReg(i.Rd, hi<<32|lo)

	case arm64.CSEL, arm64.CSINC, arm64.CSINV, arm64.CSNEG:
		is64 := i.Rd.Is64()
		var r uint64
		if c.CondHolds(i.Cond) {
			r = c.Reg(i.Rn)
		} else {
			m := c.Reg(i.Rm)
			switch i.Op {
			case arm64.CSEL:
				r = m
			case arm64.CSINC:
				r = m + 1
			case arm64.CSINV:
				r = ^m
			case arm64.CSNEG:
				r = -m
			}
		}
		c.SetReg(i.Rd, r&sizeMask(boolSize(is64)))

	case arm64.CCMP, arm64.CCMN:
		is64 := i.Rn.Is64()
		if c.CondHolds(i.Cond) {
			a := c.Reg(i.Rn)
			var b uint64
			if i.Rm == arm64.RegNone {
				b = uint64(i.Imm)
			} else {
				b = c.Reg(i.Rm)
			}
			if i.Op == arm64.CCMP {
				c.addWithCarry(a, ^b&sizeMask(boolSize(is64)), true, is64, true)
			} else {
				c.addWithCarry(a, b, false, is64, true)
			}
		} else {
			nzcv := uint8(i.Amount)
			c.FlagN = nzcv&8 != 0
			c.FlagZ = nzcv&4 != 0
			c.FlagC = nzcv&2 != 0
			c.FlagV = nzcv&1 != 0
		}

	case arm64.B:
		eff.branched, eff.target = true, pc+uint64(i.Imm)
	case arm64.BL:
		c.X[30] = pc + 4
		eff.branched, eff.target = true, pc+uint64(i.Imm)
	case arm64.BCOND:
		if c.CondHolds(i.Cond) {
			eff.branched, eff.target = true, pc+uint64(i.Imm)
		}
	case arm64.CBZ:
		if c.Reg(i.Rd) == 0 {
			eff.branched, eff.target = true, pc+uint64(i.Imm)
		}
	case arm64.CBNZ:
		if c.Reg(i.Rd) != 0 {
			eff.branched, eff.target = true, pc+uint64(i.Imm)
		}
	case arm64.TBZ:
		if c.Reg(i.Rd)>>uint(i.Amount)&1 == 0 {
			eff.branched, eff.target = true, pc+uint64(i.Imm)
		}
	case arm64.TBNZ:
		if c.Reg(i.Rd)>>uint(i.Amount)&1 == 1 {
			eff.branched, eff.target = true, pc+uint64(i.Imm)
		}
	case arm64.BR:
		eff.branched, eff.target = true, c.Reg(i.Rn)
	case arm64.BLR:
		t := c.Reg(i.Rn)
		c.X[30] = pc + 4
		eff.branched, eff.target = true, t
	case arm64.RET:
		eff.branched, eff.target = true, c.Reg(i.Rn)

	case arm64.LDR, arm64.LDRB, arm64.LDRH, arm64.LDRSB, arm64.LDRSH, arm64.LDRSW,
		arm64.STR, arm64.STRB, arm64.STRH:
		if tr := c.execLoadStore(i, pc, &eff); tr != nil {
			return tr
		}

	case arm64.LDP, arm64.STP:
		if tr := c.execPair(i, pc, &eff); tr != nil {
			return tr
		}

	case arm64.LDXR, arm64.LDAXR, arm64.STXR, arm64.STLXR, arm64.LDAR, arm64.STLR:
		if tr := c.execExclusive(i, pc, &eff); tr != nil {
			return tr
		}

	case arm64.FMOV, arm64.FADD, arm64.FSUB, arm64.FMUL, arm64.FDIV, arm64.FNEG,
		arm64.FABS, arm64.FSQRT, arm64.FMADD, arm64.FMSUB, arm64.FCMP, arm64.FCSEL,
		arm64.FCVT, arm64.SCVTF, arm64.UCVTF, arm64.FCVTZS, arm64.FCVTZU:
		if tr := c.execFP(i, pc); tr != nil {
			return tr
		}

	case arm64.NOP, arm64.DMB, arm64.DSB, arm64.ISB:
		// Barriers have timing cost only.

	case arm64.SVC:
		return &Trap{Kind: TrapSVC, PC: pc, Imm: uint64(i.Imm)}
	case arm64.BRK:
		return &Trap{Kind: TrapBRK, PC: pc, Imm: uint64(i.Imm)}

	case arm64.MRS:
		switch i.Imm {
		case sysTPIDR:
			c.SetReg(i.Rd, c.tpidr)
		case sysNZCV:
			var v uint64
			if c.FlagN {
				v |= 1 << 31
			}
			if c.FlagZ {
				v |= 1 << 30
			}
			if c.FlagC {
				v |= 1 << 29
			}
			if c.FlagV {
				v |= 1 << 28
			}
			c.SetReg(i.Rd, v)
		case sysCNTVCT:
			c.SetReg(i.Rd, c.Instrs)
		default:
			return &Trap{Kind: TrapUndefined, PC: pc}
		}
	case arm64.MSR:
		switch i.Imm {
		case sysTPIDR:
			c.tpidr = c.Reg(i.Rd)
		case sysNZCV:
			v := c.Reg(i.Rd)
			c.FlagN = v&(1<<31) != 0
			c.FlagZ = v&(1<<30) != 0
			c.FlagC = v&(1<<29) != 0
			c.FlagV = v&(1<<28) != 0
		default:
			return &Trap{Kind: TrapUndefined, PC: pc}
		}

	default:
		return &Trap{Kind: TrapUndefined, PC: pc}
	}

	if c.Timing != nil {
		if md != nil {
			c.Timing.retireWith(pc, &eff, md)
		} else {
			c.Timing.retire(c, i, pc, &eff)
		}
	}
	if eff.branched {
		c.PC = eff.target
	} else {
		c.PC = pc + 4
	}
	return nil
}

func boolSize(is64 bool) uint {
	if is64 {
		return 64
	}
	return 32
}

func (c *CPU) execBitfield(i *arm64.Inst) {
	is64 := i.Rd.Is64()
	size := boolSize(is64)
	r := uint(i.Imm)
	s := uint(i.Amount)
	src := c.Reg(i.Rn) & sizeMask(size)
	dst := c.Reg(i.Rd) & sizeMask(size)
	var res uint64
	if s >= r {
		// Extract field src[s:r] into the low bits.
		width := s - r + 1
		fieldv := (src >> r) & sizeMask(width)
		switch i.Op {
		case arm64.UBFM:
			res = fieldv
		case arm64.SBFM:
			if fieldv>>(width-1)&1 == 1 {
				fieldv |= ^sizeMask(width)
			}
			res = fieldv & sizeMask(size)
		case arm64.BFM:
			res = dst&^sizeMask(width) | fieldv
		}
	} else {
		// Insert low bits of src at position size-r.
		width := s + 1
		pos := size - r
		fieldv := src & sizeMask(width)
		switch i.Op {
		case arm64.UBFM:
			res = fieldv << pos
		case arm64.SBFM:
			if fieldv>>(width-1)&1 == 1 {
				fieldv |= ^sizeMask(width)
			}
			res = (fieldv << pos) & sizeMask(size)
		case arm64.BFM:
			m := sizeMask(width) << pos
			res = dst&^m | (fieldv<<pos)&m
		}
	}
	c.SetReg(i.Rd, res&sizeMask(size))
}

func (c *CPU) execLoadStore(i *arm64.Inst, pc uint64, eff *effects) *Trap {
	addr, wb, wbVal := c.effAddr(i)
	size := memAccessSize(i)
	eff.hasMem, eff.memAddr = true, addr
	if i.Op.IsStore() {
		var v uint64
		if i.Rd.IsFP() {
			v = c.FP(i.Rd)
			if size == 16 {
				if f := c.memWrite(addr, c.V[i.Rd.Num()][0], 8); f != nil {
					return c.memFault(pc, f)
				}
				if f := c.memWrite(addr+8, c.V[i.Rd.Num()][1], 8); f != nil {
					return c.memFault(pc, f)
				}
				if wb {
					c.SetReg(i.Mem.Base, wbVal)
				}
				return nil
			}
		} else {
			v = c.Reg(i.Rd)
		}
		if f := c.memWrite(addr, v, size); f != nil {
			return c.memFault(pc, f)
		}
	} else {
		if i.Rd.IsFP() && size == 16 {
			lo, f := c.memRead(addr, 8)
			if f != nil {
				return c.memFault(pc, f)
			}
			hi, f := c.memRead(addr+8, 8)
			if f != nil {
				return c.memFault(pc, f)
			}
			c.V[i.Rd.Num()][0], c.V[i.Rd.Num()][1] = lo, hi
			if wb {
				c.SetReg(i.Mem.Base, wbVal)
			}
			return nil
		}
		v, f := c.memRead(addr, size)
		if f != nil {
			return c.memFault(pc, f)
		}
		switch i.Op {
		case arm64.LDRSB:
			v = uint64(int64(int8(v)))
		case arm64.LDRSH:
			v = uint64(int64(int16(v)))
		case arm64.LDRSW:
			v = uint64(int64(int32(uint32(v))))
		}
		if i.Rd.IsFP() {
			c.SetFP(i.Rd, v)
		} else {
			c.SetReg(i.Rd, v)
		}
	}
	if wb {
		c.SetReg(i.Mem.Base, wbVal)
	}
	return nil
}

func (c *CPU) execPair(i *arm64.Inst, pc uint64, eff *effects) *Trap {
	addr, wb, wbVal := c.effAddr(i)
	var size int
	if i.Rd.IsFP() {
		size = i.Rd.FPBits() / 8
	} else if i.Rd.Is64() {
		size = 8
	} else {
		size = 4
	}
	eff.hasMem, eff.memAddr = true, addr
	rw := func(r arm64.Reg, a uint64) *Trap {
		if i.Op == arm64.STP {
			if r.IsFP() && size == 16 {
				if f := c.memWrite(a, c.V[r.Num()][0], 8); f != nil {
					return c.memFault(pc, f)
				}
				if f := c.memWrite(a+8, c.V[r.Num()][1], 8); f != nil {
					return c.memFault(pc, f)
				}
				return nil
			}
			var v uint64
			if r.IsFP() {
				v = c.FP(r)
			} else {
				v = c.Reg(r)
			}
			if f := c.memWrite(a, v, size); f != nil {
				return c.memFault(pc, f)
			}
			return nil
		}
		if r.IsFP() && size == 16 {
			lo, f := c.memRead(a, 8)
			if f != nil {
				return c.memFault(pc, f)
			}
			hi, f := c.memRead(a+8, 8)
			if f != nil {
				return c.memFault(pc, f)
			}
			c.V[r.Num()][0], c.V[r.Num()][1] = lo, hi
			return nil
		}
		v, f := c.memRead(a, size)
		if f != nil {
			return c.memFault(pc, f)
		}
		if r.IsFP() {
			c.SetFP(r, v)
		} else {
			c.SetReg(r, v)
		}
		return nil
	}
	if tr := rw(i.Rd, addr); tr != nil {
		return tr
	}
	if tr := rw(i.Rm, addr+uint64(size)); tr != nil {
		return tr
	}
	if wb {
		c.SetReg(i.Mem.Base, wbVal)
	}
	return nil
}

func (c *CPU) execExclusive(i *arm64.Inst, pc uint64, eff *effects) *Trap {
	addr := c.Reg(i.Rn)
	size := 8
	if !i.Rd.Is64() {
		size = 4
	}
	eff.hasMem, eff.memAddr = true, addr
	switch i.Op {
	case arm64.LDXR, arm64.LDAXR:
		v, f := c.memRead(addr, size)
		if f != nil {
			return c.memFault(pc, f)
		}
		c.exclAddr, c.exclValid = addr, true
		c.SetReg(i.Rd, v)
	case arm64.STXR, arm64.STLXR:
		if c.exclValid && c.exclAddr == addr {
			if f := c.memWrite(addr, c.Reg(i.Rd), size); f != nil {
				return c.memFault(pc, f)
			}
			c.SetReg(i.Rm, 0) // success
		} else {
			c.SetReg(i.Rm, 1) // failure
		}
		c.exclValid = false
	case arm64.LDAR:
		v, f := c.memRead(addr, size)
		if f != nil {
			return c.memFault(pc, f)
		}
		c.SetReg(i.Rd, v)
	case arm64.STLR:
		if f := c.memWrite(addr, c.Reg(i.Rd), size); f != nil {
			return c.memFault(pc, f)
		}
	}
	return nil
}
