package emu

import (
	"math"

	"lfi/internal/arm64"
)

func fpIs64(r arm64.Reg) bool { return r.FPBits() == 64 }

// fpVal loads a register view as float64 (converting from float32 views).
func (c *CPU) fpVal(r arm64.Reg) float64 {
	b := c.FP(r)
	if fpIs64(r) {
		return math.Float64frombits(b)
	}
	return float64(math.Float32frombits(uint32(b)))
}

// setFPVal stores a float64 into a register view (converting to float32
// views as needed).
func (c *CPU) setFPVal(r arm64.Reg, v float64) {
	if fpIs64(r) {
		c.SetFP(r, math.Float64bits(v))
	} else {
		c.SetFP(r, uint64(math.Float32bits(float32(v))))
	}
}

func (c *CPU) execFP(i *arm64.Inst, pc uint64) *Trap {
	switch i.Op {
	case arm64.FMOV:
		switch {
		case i.Rn == arm64.RegNone: // immediate
			v := math.Float64frombits(uint64(i.Imm))
			c.setFPVal(i.Rd, v)
		case i.Rd.IsFP() && i.Rn.IsFP(): // bit move between equal views
			c.SetFP(i.Rd, c.FP(i.Rn))
		case i.Rd.IsGP(): // fp -> gpr: raw bits
			c.SetReg(i.Rd, c.FP(i.Rn))
		default: // gpr -> fp: raw bits
			c.SetFP(i.Rd, c.Reg(i.Rn))
		}

	case arm64.FADD, arm64.FSUB, arm64.FMUL, arm64.FDIV:
		a, b := c.fpVal(i.Rn), c.fpVal(i.Rm)
		var r float64
		switch i.Op {
		case arm64.FADD:
			r = a + b
		case arm64.FSUB:
			r = a - b
		case arm64.FMUL:
			r = a * b
		case arm64.FDIV:
			r = a / b
		}
		c.setFPVal(i.Rd, r)

	case arm64.FMADD:
		c.setFPVal(i.Rd, c.fpVal(i.Ra)+c.fpVal(i.Rn)*c.fpVal(i.Rm))
	case arm64.FMSUB:
		c.setFPVal(i.Rd, c.fpVal(i.Ra)-c.fpVal(i.Rn)*c.fpVal(i.Rm))

	case arm64.FNEG:
		c.setFPVal(i.Rd, -c.fpVal(i.Rn))
	case arm64.FABS:
		c.setFPVal(i.Rd, math.Abs(c.fpVal(i.Rn)))
	case arm64.FSQRT:
		c.setFPVal(i.Rd, math.Sqrt(c.fpVal(i.Rn)))

	case arm64.FCMP:
		a := c.fpVal(i.Rn)
		b := 0.0
		if i.Rm != arm64.RegNone {
			b = c.fpVal(i.Rm)
		}
		switch {
		case math.IsNaN(a) || math.IsNaN(b):
			c.FlagN, c.FlagZ, c.FlagC, c.FlagV = false, false, true, true
		case a == b:
			c.FlagN, c.FlagZ, c.FlagC, c.FlagV = false, true, true, false
		case a < b:
			c.FlagN, c.FlagZ, c.FlagC, c.FlagV = true, false, false, false
		default:
			c.FlagN, c.FlagZ, c.FlagC, c.FlagV = false, false, true, false
		}

	case arm64.FCSEL:
		if c.CondHolds(i.Cond) {
			c.SetFP(i.Rd, c.FP(i.Rn))
		} else {
			c.SetFP(i.Rd, c.FP(i.Rm))
		}

	case arm64.FCVT:
		if i.Rd.FPBits() == 16 || i.Rn.FPBits() == 16 {
			return &Trap{Kind: TrapUndefined, PC: pc}
		}
		c.setFPVal(i.Rd, c.fpVal(i.Rn))

	case arm64.SCVTF:
		c.setFPVal(i.Rd, float64(regSigned(c, i.Rn)))
	case arm64.UCVTF:
		c.setFPVal(i.Rd, float64(c.Reg(i.Rn)))

	case arm64.FCVTZS:
		v := c.fpVal(i.Rn)
		if i.Rd.Is64() {
			c.SetReg(i.Rd, uint64(satS64(v)))
		} else {
			c.SetReg(i.Rd, uint64(uint32(satS32(v))))
		}
	case arm64.FCVTZU:
		v := c.fpVal(i.Rn)
		if i.Rd.Is64() {
			c.SetReg(i.Rd, satU64(v))
		} else {
			c.SetReg(i.Rd, uint64(uint32(satU32(v))))
		}
	}
	return nil
}

func regSigned(c *CPU, r arm64.Reg) int64 {
	v := c.Reg(r)
	if r.Is32() {
		return int64(int32(uint32(v)))
	}
	return int64(v)
}

func satS64(v float64) int64 {
	switch {
	case math.IsNaN(v):
		return 0
	case v >= math.MaxInt64:
		return math.MaxInt64
	case v <= math.MinInt64:
		return math.MinInt64
	}
	return int64(v)
}

func satS32(v float64) int32 {
	switch {
	case math.IsNaN(v):
		return 0
	case v >= math.MaxInt32:
		return math.MaxInt32
	case v <= math.MinInt32:
		return math.MinInt32
	}
	return int32(v)
}

func satU64(v float64) uint64 {
	switch {
	case math.IsNaN(v) || v <= 0:
		return 0
	case v >= math.MaxUint64:
		return math.MaxUint64
	}
	return uint64(v)
}

func satU32(v float64) uint32 {
	switch {
	case math.IsNaN(v) || v <= 0:
		return 0
	case v >= math.MaxUint32:
		return math.MaxUint32
	}
	return uint32(v)
}
