package emu

import (
	"fmt"
	"testing"
)

// Table-driven semantics checks: each case sets up registers via mov/movk
// sequences, executes one instruction under test, and checks one result
// register. This systematically covers the ALU operand forms, bitfields,
// extensions, and conversions that the workload kernels rely on.

type semCase struct {
	name  string
	setup string // register setup assembly
	inst  string // the instruction under test
	reg   int    // x register to check
	want  uint64
}

func runSem(t *testing.T, c semCase) {
	t.Helper()
	src := "_start:\n" + c.setup + "\t" + c.inst + "\n\tbrk #0\n"
	cpu, tr := run(t, src)
	if tr.Kind != TrapBRK {
		t.Fatalf("%s: trap %v", c.name, tr)
	}
	if cpu.X[c.reg] != c.want {
		t.Errorf("%s: x%d = %#x, want %#x", c.name, c.reg, cpu.X[c.reg], c.want)
	}
}

func TestALUOperandForms(t *testing.T) {
	setup := "\tmov x1, #0x1234\n\tmov x2, #0xff\n\tmov x3, #-1\n"
	w := func(v uint64) uint64 { return v & 0xffffffff }
	cases := []semCase{
		{"add imm", setup, "add x0, x1, #0x10", 0, 0x1244},
		{"add imm lsl12", setup, "add x0, x1, #1, lsl #12", 0, 0x2234},
		{"sub imm", setup, "sub x0, x1, #4", 0, 0x1230},
		{"add lsl", setup, "add x0, x1, x2, lsl #4", 0, 0x1234 + 0xff0},
		{"add lsr", setup, "add x0, x1, x2, lsr #4", 0, 0x1234 + 0xf},
		{"add asr neg", setup, "add x0, x2, x3, asr #1", 0, 0xfe},
		{"sub shifted", setup, "sub x0, x1, x2, lsl #1", 0, 0x1234 - 0x1fe},
		{"add uxtb", setup, "add x0, x1, w3, uxtb", 0, 0x1234 + 0xff},
		{"add uxth", setup, "add x0, x1, w3, uxth", 0, 0x1234 + 0xffff},
		{"add uxtw", setup, "add x0, x1, w3, uxtw", 0, 0x1234 + 0xffffffff},
		{"add uxtw shift", setup, "add x0, x1, w2, uxtw #2", 0, 0x1234 + 0xff*4},
		{"add sxtb", setup, "add x0, x1, w3, sxtb", 0, 0x1233},
		{"add sxth", setup, "add x0, x1, w3, sxth", 0, 0x1233},
		{"add sxtw", setup, "add x0, x1, w3, sxtw", 0, 0x1233},
		{"add sxtw shift", setup, "add x0, x1, w3, sxtw #3", 0, 0x1234 - 8},
		{"and", setup, "and x0, x1, x2", 0, 0x34},
		{"orr ror", setup, "orr x0, xzr, x2, ror #4", 0, 0xf00000000000000f},
		{"eor", setup, "eor x0, x1, x1", 0, 0},
		{"bic", setup, "bic x0, x1, x2", 0, 0x1200},
		{"orn", setup, "orn x0, xzr, xzr", 0, ^uint64(0)},
		{"eon", setup, "eon x0, xzr, x3", 0, 0},
		{"and imm", setup, "and x0, x1, #0xf0", 0, 0x30},
		{"32-bit add wraps", setup, "add w0, w3, w3", 0, w(0xfffffffe)},
		{"neg", setup, "neg x0, x2", 0, ^uint64(0xff) + 1},
		{"mvn", setup, "mvn x0, x2", 0, ^uint64(0xff)},
	}
	for _, c := range cases {
		runSem(t, c)
	}
}

func TestBitfieldForms(t *testing.T) {
	setup := "\tmovz x1, #0xBEEF\n\tmovk x1, #0xDEAD, lsl #16\n"
	cases := []semCase{
		{"lsl imm", setup, "lsl x0, x1, #8", 0, 0xDEADBEEF00},
		{"lsr imm", setup, "lsr x0, x1, #8", 0, 0xDEADBE},
		{"asr keeps sign", "\tmov x1, #-256\n", "asr x0, x1, #4", 0, ^uint64(0xf)},
		{"ror imm", "\tmov x1, #0xf\n", "ror x0, x1, #4", 0, 0xf000000000000000},
		{"ubfx", setup, "ubfx x0, x1, #16, #16", 0, 0xDEAD},
		{"sbfx sign", setup, "sbfx x0, x1, #16, #16", 0, 0xffffffffffffDEAD},
		{"ubfiz", setup, "ubfiz x0, x1, #8, #8", 0, 0xEF00},
		{"uxtb", setup, "uxtb w0, w1", 0, 0xEF},
		{"uxth", setup, "uxth w0, w1", 0, 0xBEEF},
		{"sxtb", setup, "sxtb x0, w1", 0, ^uint64(0x10)},
		{"sxtw", "\tmov w1, #-2\n", "sxtw x0, w1", 0, ^uint64(1)},
		{"extr", "\tmov x1, #1\n\tmov x2, #0\n", "extr x0, x1, x2, #60", 0, 0x10},
	}
	for _, c := range cases {
		runSem(t, c)
	}
}

func TestVariableShifts(t *testing.T) {
	setup := "\tmov x1, #0xf0\n\tmov x2, #4\n\tmov x3, #68\n"
	cases := []semCase{
		{"lslv", setup, "lsl x0, x1, x2", 0, 0xf00},
		{"lsrv", setup, "lsr x0, x1, x2", 0, 0xf},
		{"asrv", setup, "asr x0, x1, x2", 0, 0xf},
		{"rorv", setup, "ror x0, x1, x2", 0, 0xf},
		{"lslv mod 64", setup, "lsl x0, x1, x3", 0, 0xf00}, // 68 % 64 = 4
		{"lslv w mod 32", "\tmov w1, #1\n\tmov w2, #33\n", "lsl w0, w1, w2", 0, 2},
	}
	for _, c := range cases {
		runSem(t, c)
	}
}

func TestMultiplyFamily(t *testing.T) {
	setup := "\tmov x1, #7\n\tmov x2, #-3\n\tmov x3, #100\n"
	cases := []semCase{
		{"madd", setup, "madd x0, x1, x1, x3", 0, 149},
		{"msub", setup, "msub x0, x1, x1, x3", 0, 51},
		{"mneg", setup, "mneg x0, x1, x1", 0, ^uint64(48)},
		{"smull", "\tmov w1, #-2\n\tmov w2, #3\n", "smull x0, w1, w2", 0, ^uint64(5)},
		{"umull", "\tmov w1, #-1\n\tmov w2, #2\n", "umull x0, w1, w2", 0, 0x1fffffffe},
		{"smulh neg", setup, "smulh x0, x2, x2", 0, 0}, // (-3)^2 = 9, high = 0
		{"umulh", "\tmov x1, #-1\n\tmov x2, #2\n", "umulh x0, x1, x2", 0, 1},
		{"smulh big", "\tmov x1, #-1\n\tmov x2, #2\n", "smulh x0, x1, x2", 0, ^uint64(0)},
	}
	for _, c := range cases {
		runSem(t, c)
	}
}

func TestBitCounting(t *testing.T) {
	cases := []semCase{
		{"clz", "\tmov x1, #0x10\n", "clz x0, x1", 0, 59},
		{"clz zero", "\tmov x1, #0\n", "clz x0, x1", 0, 64},
		{"clz w", "\tmov w1, #0x10\n", "clz w0, w1", 0, 27},
		{"cls", "\tmov x1, #-1\n", "cls x0, x1", 0, 63},
		{"rbit", "\tmov x1, #1\n", "rbit x0, x1", 0, 1 << 63},
		{"rev", "\tmov x1, #0x12\n", "rev x0, x1", 0, 0x1200000000000000},
		{"rev16", "\tmovz x1, #0x1234\n", "rev16 x0, x1", 0, 0x3412},
		{"rev32", "\tmovz x1, #0x1234\n", "rev32 x0, x1", 0, 0x34120000},
		{"rev w", "\tmov w1, #0x12\n", "rev w0, w1", 0, 0x12000000},
	}
	for _, c := range cases {
		runSem(t, c)
	}
}

func TestConditionCodes(t *testing.T) {
	// Exercise every condition code through cset after a fixed compare.
	conds := map[string][2]uint64{
		// Column 0: after cmp 5, 7  (N=1 Z=0 C=0 V=0).
		// Column 1: after cmp 7, 7  (N=0 Z=1 C=1 V=0).
		"eq": {0, 1}, "ne": {1, 0}, "hs": {0, 1}, "lo": {1, 0},
		"mi": {1, 0}, "pl": {0, 1}, "vs": {0, 0}, "vc": {1, 1},
		"hi": {0, 0}, "ls": {1, 1}, "ge": {0, 1}, "lt": {1, 0},
		"gt": {0, 0}, "le": {1, 1},
	}
	for cond, want := range conds {
		runSem(t, semCase{
			name:  "cset " + cond + " after 5<7",
			setup: "\tmov x1, #5\n\tcmp x1, #7\n",
			inst:  "cset x0, " + cond,
			reg:   0, want: want[0],
		})
		runSem(t, semCase{
			name:  "cset " + cond + " after 7==7",
			setup: "\tmov x1, #7\n\tcmp x1, #7\n",
			inst:  "cset x0, " + cond,
			reg:   0, want: want[1],
		})
	}
}

func TestFPConversionEdges(t *testing.T) {
	cases := []semCase{
		{"fcvtzs truncates", "\tfmov d1, #2.5\n", "fcvtzs x0, d1", 0, 2},
		{"fcvtzs negative", "\tfmov d1, #-2.5\n", "fcvtzs x0, d1", 0, ^uint64(1)},
		{"fcvtzu negative clamps", "\tfmov d1, #-2.5\n", "fcvtzu x0, d1", 0, 0},
		{"scvtf roundtrip", "\tmov x1, #-7\n\tscvtf d1, x1\n", "fcvtzs x0, d1", 0, ^uint64(6)},
		{"ucvtf roundtrip", "\tmov x1, #12\n\tucvtf d1, x1\n", "fcvtzs x0, d1", 0, 12},
		{"fmov bits", "\tfmov d1, #1.0\n", "fmov x0, d1", 0, 0x3ff0000000000000},
		{"fmov w<->s", "\tmov w1, #0x42\n\tfmov s1, w1\n", "fmov w0, s1", 0, 0x42},
		{"fcsel taken", "\tfmov d1, #2.0\n\tfmov d2, #3.0\n\tfcmp d1, d2\n\tfcsel d3, d1, d2, lt\n", "fcvtzs x0, d3", 0, 2},
		{"fabs", "\tfmov d1, #-4.0\n\tfabs d2, d1\n", "fcvtzs x0, d2", 0, 4},
		{"fmin via fcmp", "\tfmov d1, #5.0\n\tfsqrt d2, d1\n\tfmul d3, d2, d2\n", "fcvtzs x0, d3", 0, 5},
	}
	for _, c := range cases {
		runSem(t, c)
	}
}

// TestStoreLoadAllWidths writes then reads every access width at every
// alignment within a word, through the emulator and memory substrate.
func TestStoreLoadAllWidths(t *testing.T) {
	for _, width := range []struct {
		st, ld string
		mask   uint64
	}{
		{"strb w1", "ldrb w0", 0xff},
		{"strh w1", "ldrh w0", 0xffff},
		{"str w1", "ldr w0", 0xffffffff},
		{"str x1", "ldr x0", ^uint64(0)},
	} {
		for off := 0; off < 8; off++ {
			src := fmt.Sprintf(`
_start:
	adrp x2, buf
	add x2, x2, :lo12:buf
	movz x1, #0xBEEF
	movk x1, #0xDEAD, lsl #16
	movk x1, #0x5678, lsl #32
	%s, [x2, #%d]
	%s, [x2, #%d]
	brk #0
.bss
buf:
	.space 64
`, width.st, off, width.ld, off)
			cpu, tr := run(t, src)
			if tr.Kind != TrapBRK {
				t.Fatalf("%s off %d: %v", width.st, off, tr)
			}
			want := (0x5678DEADBEEF) & width.mask
			if cpu.X[0] != uint64(want) {
				t.Errorf("%s off %d: got %#x want %#x", width.st, off, cpu.X[0], want)
			}
		}
	}
}

// TestFPPairsAndQRegisters moves 128-bit values through q registers and
// d-register pairs, checking full-width preservation.
func TestFPPairsAndQRegisters(t *testing.T) {
	c, tr := run(t, `
_start:
	adrp x1, buf
	add x1, x1, :lo12:buf
	// Fill 16 bytes through two 64-bit stores, load as one q, store back
	// at +32, and reload halves.
	movz x2, #0x1111
	movk x2, #0x2222, lsl #48
	movz x3, #0x3333
	movk x3, #0x4444, lsl #48
	str x2, [x1]
	str x3, [x1, #8]
	ldr q0, [x1]
	str q0, [x1, #32]
	ldr x4, [x1, #32]
	ldr x5, [x1, #40]
	// d-register pairs
	fmov d1, #1.0
	fmov d2, #2.0
	stp d1, d2, [x1, #64]
	ldp d3, d4, [x1, #64]
	fadd d5, d3, d4
	fcvtzs x6, d5
	// q-register pairs
	stp q0, q0, [x1, #96]
	ldp q5, q6, [x1, #96]
	str q6, [x1, #128]
	ldr x7, [x1, #136]
	brk #0
.bss
buf:
	.space 256
`)
	if tr.Kind != TrapBRK {
		t.Fatal(tr)
	}
	if c.X[4] != c.X[2] || c.X[5] != c.X[3] {
		t.Errorf("q roundtrip: %#x/%#x want %#x/%#x", c.X[4], c.X[5], c.X[2], c.X[3])
	}
	if c.X[6] != 3 {
		t.Errorf("d pair arithmetic = %d", c.X[6])
	}
	if c.X[7] != c.X[3] {
		t.Errorf("q pair upper half = %#x, want %#x", c.X[7], c.X[3])
	}
}

// TestSetFPClearsUpperBits checks the AArch64 scalar-write rule: writing a
// d view zeroes the upper 64 bits of the vector register.
func TestSetFPClearsUpperBits(t *testing.T) {
	c, tr := run(t, `
_start:
	adrp x1, buf
	add x1, x1, :lo12:buf
	movz x2, #0xffff, lsl #48
	str x2, [x1, #8]
	str x2, [x1]
	ldr q0, [x1]          // v0 = {x2, x2}
	fmov d0, #1.0         // clears the top half
	str q0, [x1, #16]
	ldr x3, [x1, #24]     // upper half must be zero
	brk #0
.bss
buf:
	.space 64
`)
	if tr.Kind != TrapBRK {
		t.Fatal(tr)
	}
	if c.X[3] != 0 {
		t.Errorf("upper half after scalar write = %#x, want 0", c.X[3])
	}
}
