// Package emu executes ARM64 machine code over a mem.AddrSpace. It has two
// halves that run in lockstep: a functional interpreter (registers, flags,
// memory, traps) and a timing model (superscalar dependency scoreboard,
// branch predictor, TLB) that attributes a cycle cost to every retired
// instruction. LFI's evaluation is entirely about the *relative* cycle cost
// of guard instructions, which is exactly what the scoreboard captures.
package emu

import (
	"fmt"

	"lfi/internal/arm64"
	"lfi/internal/mem"
)

// TrapKind classifies why execution stopped.
type TrapKind uint8

const (
	TrapNone      TrapKind = iota
	TrapMemFault           // load/store/fetch permission or mapping fault
	TrapSVC                // svc instruction (forbidden inside sandboxes)
	TrapBRK                // brk instruction
	TrapUndefined          // undecodable or unsupported instruction
	TrapHostCall           // PC entered a registered host-call address
	TrapBudget             // instruction budget exhausted (preemption)
	TrapHalt               // wfi-style clean stop requested by the host
)

func (k TrapKind) String() string {
	switch k {
	case TrapNone:
		return "none"
	case TrapMemFault:
		return "memory fault"
	case TrapSVC:
		return "svc"
	case TrapBRK:
		return "brk"
	case TrapUndefined:
		return "undefined instruction"
	case TrapHostCall:
		return "host call"
	case TrapBudget:
		return "budget expired"
	case TrapHalt:
		return "halt"
	}
	return "unknown"
}

// Trap describes an execution stop. PC is the address of the trapping
// instruction (or the host-call target for TrapHostCall).
type Trap struct {
	Kind  TrapKind
	PC    uint64
	Imm   uint64 // svc/brk immediate
	Fault *mem.Fault
}

func (t *Trap) Error() string {
	if t.Fault != nil {
		return fmt.Sprintf("emu: trap %s at pc=%#x: %v", t.Kind, t.PC, t.Fault)
	}
	return fmt.Sprintf("emu: trap %s at pc=%#x (imm=%d)", t.Kind, t.PC, t.Imm)
}

// CPU is one hardware thread. The register file covers the 31 general
// purpose registers, SP, 32 vector registers, and NZCV.
type CPU struct {
	X  [31]uint64    // x0..x30
	SP uint64        // stack pointer
	V  [32][2]uint64 // v0..v31, little-endian 128-bit (lo, hi)

	// NZCV condition flags.
	FlagN, FlagZ, FlagC, FlagV bool

	PC  uint64
	Mem *mem.AddrSpace

	// Exclusive monitor for ldxr/stxr.
	exclAddr  uint64
	exclValid bool

	// tpidr models the tpidr_el0 thread pointer.
	tpidr uint64

	// Host-call region: jumping to an address with hostCallBase <= a <
	// hostCallBase+hostCallLen raises TrapHostCall instead of fetching.
	hostCallBase uint64
	hostCallLen  uint64

	// Decoded-instruction cache, keyed by page index. Pages are decoded
	// lazily. Coherence is by AddrSpace epoch: any Map/Unmap/Protect/
	// restore bumps the epoch and the next Step/Run flushes stale decodes,
	// so remapping text pages needs no manual flush call.
	icache    map[uint64][]cachedInst
	pageShift uint
	pageSize  uint64

	// Predecoded basic-block cache (fast path) and direct-mapped page
	// translation caches, all epoch-guarded like icache. See block.go.
	bcache   [bcacheSize]bcEntry
	tcRead   [tcacheSize]tcEntry
	tcWrite  [tcacheSize]tcEntry
	memEpoch uint64
	fastpath bool

	// Second-generation dispatch layers (see block.go/trace.go/fuse.go):
	// direct block chaining, hot-trace superblocks, and guard-idiom
	// fusion. Each has its own escape hatch so regressions can be
	// bisected layer by layer in production.
	chaining bool
	tracing  bool
	fusion   bool
	// traceThreshold is the number of block entries before a superblock
	// is stitched; sbCount bounds live superblocks between flushes.
	traceThreshold uint32
	sbCount        int

	// Reused storage for the hot TrapBudget/TrapHostCall results, so
	// budget-sliced scheduling does not allocate per slice. Traps of those
	// kinds returned by Run are valid only until the next Run/Step call.
	trap Trap

	// Scratch register buffers for block predecoding.
	mSrc, mDst []arm64.Reg

	// Timing, optional. When non-nil every retired instruction is charged.
	Timing *Timing

	// Trace, optional. When non-nil it is invoked before every executed
	// instruction (debug tooling; adds an indirect call per step and
	// disables the predecoded-block fast path).
	Trace func(pc uint64, inst *arm64.Inst)

	// Retired instruction count.
	Instrs uint64

	// Stat counts cache and dispatch activity. The fields are plain
	// uint64s owned by the CPU's executing goroutine — reading them
	// concurrently with execution is a data race; snapshot between runs
	// (the runtime does this per job).
	Stat Stats
}

// Stats are the emulator's cache and dispatch counters: how often the
// predecoded-block cache and the page-translation caches hit, and which
// dispatch loop served each Run call. Hit ratios here are the first
// thing to look at when simulator throughput regresses.
type Stats struct {
	BlockHits     uint64 `json:"block_hits"`      // block cache hits (per block, not per instr)
	BlockMisses   uint64 `json:"block_misses"`    // block decodes
	TCReadHits    uint64 `json:"tc_read_hits"`    // load translation-cache hits
	TCReadMisses  uint64 `json:"tc_read_misses"`  // load page-walk refills
	TCWriteHits   uint64 `json:"tc_write_hits"`   // store translation-cache hits
	TCWriteMisses uint64 `json:"tc_write_misses"` // store page-walk refills
	FastRuns      uint64 `json:"fast_runs"`       // Run calls served by the block loop
	SlowRuns      uint64 `json:"slow_runs"`       // Run calls served by the per-step loop
	Flushes       uint64 `json:"flushes"`         // epoch-driven decode/translation flushes
	ChainHits     uint64 `json:"chain_hits"`      // block transfers served by chain links
	ChainMisses   uint64 `json:"chain_misses"`    // chain exits resolved by the outer dispatch
	SBEnters      uint64 `json:"sb_enters"`       // superblock entries
	SBSideExits   uint64 `json:"sb_side_exits"`   // superblock side exits (biased branch missed)
	SBBuilds      uint64 `json:"sb_builds"`       // superblocks stitched
	FusedPairs    uint64 `json:"fused_pairs"`     // guard+access pairs executed fused
	FusedAccesses uint64 `json:"fused_accesses"`  // accesses served by the fused access path
}

// Add accumulates other into s (for aggregating across CPUs).
func (s *Stats) Add(other Stats) {
	s.BlockHits += other.BlockHits
	s.BlockMisses += other.BlockMisses
	s.TCReadHits += other.TCReadHits
	s.TCReadMisses += other.TCReadMisses
	s.TCWriteHits += other.TCWriteHits
	s.TCWriteMisses += other.TCWriteMisses
	s.FastRuns += other.FastRuns
	s.SlowRuns += other.SlowRuns
	s.Flushes += other.Flushes
	s.ChainHits += other.ChainHits
	s.ChainMisses += other.ChainMisses
	s.SBEnters += other.SBEnters
	s.SBSideExits += other.SBSideExits
	s.SBBuilds += other.SBBuilds
	s.FusedPairs += other.FusedPairs
	s.FusedAccesses += other.FusedAccesses
}

type cachedInst struct {
	inst arm64.Inst
	ok   bool
}

// New creates a CPU over the address space.
func New(m *mem.AddrSpace) *CPU {
	ps := m.PageSize()
	shift := uint(0)
	for s := ps; s > 1; s >>= 1 {
		shift++
	}
	return &CPU{
		Mem:            m,
		icache:         make(map[uint64][]cachedInst),
		pageShift:      shift,
		pageSize:       ps,
		memEpoch:       m.Epoch(),
		fastpath:       bootOptions.Fastpath,
		chaining:       bootOptions.Chaining,
		tracing:        bootOptions.Tracing,
		fusion:         bootOptions.Fusion,
		traceThreshold: bootOptions.TraceThreshold,
	}
}

// SetFastpath toggles the predecoded-block dispatch loop.
//
// Deprecated: use Apply with an Options struct; the individual setters
// remain as thin wrappers.
func (c *CPU) SetFastpath(on bool) { c.fastpath = on }

// Fastpath reports whether the block dispatch loop is enabled.
func (c *CPU) Fastpath() bool { return c.fastpath }

// SetChaining toggles direct block chaining. Decoded blocks are dropped
// so stale links from a previous setting can never be followed.
//
// Deprecated: use Apply with an Options struct.
func (c *CPU) SetChaining(on bool) {
	c.chaining = on
	c.flushDecoded(c.Mem.Epoch())
}

// Chaining reports whether direct block chaining is enabled.
func (c *CPU) Chaining() bool { return c.chaining }

// SetTracing toggles hot-trace superblocks. Decoded blocks and stitched
// superblocks are dropped.
//
// Deprecated: use Apply with an Options struct.
func (c *CPU) SetTracing(on bool) {
	c.tracing = on
	c.flushDecoded(c.Mem.Epoch())
}

// Tracing reports whether hot-trace superblocks are enabled.
func (c *CPU) Tracing() bool { return c.tracing }

// SetFusion toggles guard-idiom fusion. Fusion marks are applied at
// predecode time, so toggling drops decoded blocks.
//
// Deprecated: use Apply with an Options struct.
func (c *CPU) SetFusion(on bool) {
	c.fusion = on
	c.flushDecoded(c.Mem.Epoch())
}

// Fusion reports whether guard-idiom fusion is enabled.
func (c *CPU) Fusion() bool { return c.fusion }

// SetTraceThreshold overrides the number of block entries before a hot
// trace is stitched (tests and fuzzing use low values to form superblocks
// quickly). Values below 1 are clamped to 1.
//
// Deprecated: use Apply with an Options struct.
func (c *CPU) SetTraceThreshold(n uint32) {
	if n < 1 {
		n = 1
	}
	c.traceThreshold = n
	c.flushDecoded(c.Mem.Epoch())
}

// SetHostCallRegion registers [base, base+size) as host-call addresses.
// Cached blocks are dropped: block boundaries depend on the region.
func (c *CPU) SetHostCallRegion(base, size uint64) {
	c.hostCallBase, c.hostCallLen = base, size
	c.flushDecoded(c.Mem.Epoch())
}

// flushDecoded drops every decode- and translation-cache entry — including
// chain links and stitched superblocks, which hold pointers into the block
// cache — and marks the caches current as of epoch.
func (c *CPU) flushDecoded(epoch uint64) {
	c.Stat.Flushes++
	c.memEpoch = epoch
	clear(c.icache)
	for i := range c.bcache {
		c.bcache[i].reset(0)
	}
	c.sbCount = 0
	c.tcRead = [tcacheSize]tcEntry{}
	c.tcWrite = [tcacheSize]tcEntry{}
}

// Reg reads a register operand, honoring the zero register and 32-bit
// views. Reading SP through either view returns the stack pointer.
func (c *CPU) Reg(r arm64.Reg) uint64 {
	if r.IsZR() {
		return 0
	}
	if r.IsSP() {
		if r.Is32() {
			return c.SP & 0xffffffff
		}
		return c.SP
	}
	v := c.X[r.Num()]
	if r.Is32() {
		return v & 0xffffffff
	}
	return v
}

// SetReg writes a register operand. 32-bit views zero the upper bits.
func (c *CPU) SetReg(r arm64.Reg, v uint64) {
	if r.IsZR() {
		return
	}
	if r.Is32() {
		v &= 0xffffffff
	}
	if r.IsSP() {
		c.SP = v
		return
	}
	c.X[r.Num()] = v
}

// FP reads a floating point register view as raw bits.
func (c *CPU) FP(r arm64.Reg) uint64 {
	v := c.V[r.Num()][0]
	switch r.FPBits() {
	case 8:
		return v & 0xff
	case 16:
		return v & 0xffff
	case 32:
		return v & 0xffffffff
	}
	return v
}

// SetFP writes a floating point register view; writes clear the rest of
// the vector register, matching AArch64 scalar write semantics.
func (c *CPU) SetFP(r arm64.Reg, v uint64) {
	switch r.FPBits() {
	case 8:
		v &= 0xff
	case 16:
		v &= 0xffff
	case 32:
		v &= 0xffffffff
	}
	c.V[r.Num()][0] = v
	c.V[r.Num()][1] = 0
}

// CondHolds evaluates a condition code against the current flags.
func (c *CPU) CondHolds(cond arm64.Cond) bool {
	var r bool
	switch cond >> 1 {
	case 0: // EQ/NE
		r = c.FlagZ
	case 1: // CS/CC
		r = c.FlagC
	case 2: // MI/PL
		r = c.FlagN
	case 3: // VS/VC
		r = c.FlagV
	case 4: // HI/LS
		r = c.FlagC && !c.FlagZ
	case 5: // GE/LT
		r = c.FlagN == c.FlagV
	case 6: // GT/LE
		r = c.FlagN == c.FlagV && !c.FlagZ
	default: // AL/NV
		return true
	}
	if cond&1 == 1 && cond < arm64.AL {
		return !r
	}
	return r
}

// fetch returns the decoded instruction at PC.
func (c *CPU) fetch(pc uint64) (*arm64.Inst, *Trap) {
	idx := pc >> c.pageShift
	line, ok := c.icache[idx]
	if !ok {
		line = make([]cachedInst, c.pageSize/4)
		c.icache[idx] = line
	}
	slot := (pc & (c.pageSize - 1)) / 4
	ci := &line[slot]
	if !ci.ok {
		w, f := c.Mem.Fetch32(pc)
		if f != nil {
			return nil, &Trap{Kind: TrapMemFault, PC: pc, Fault: f}
		}
		inst, err := arm64.Decode(w)
		if err != nil {
			inst = arm64.Inst{Op: arm64.BAD}
		}
		ci.inst = inst
		ci.ok = true
	}
	if ci.inst.Op == arm64.BAD {
		return nil, &Trap{Kind: TrapUndefined, PC: pc}
	}
	return &ci.inst, nil
}

// Step executes one instruction. It returns nil on success or a Trap.
func (c *CPU) Step() *Trap {
	if e := c.Mem.Epoch(); e != c.memEpoch {
		c.flushDecoded(e)
	}
	if pc := c.PC; c.hostCallLen != 0 && pc-c.hostCallBase < c.hostCallLen {
		return &Trap{Kind: TrapHostCall, PC: pc}
	}
	if c.PC%4 != 0 {
		return &Trap{Kind: TrapMemFault, PC: c.PC,
			Fault: &mem.Fault{Addr: c.PC, Access: mem.AccessExec, Size: 4}}
	}
	inst, tr := c.fetch(c.PC)
	if tr != nil {
		return tr
	}
	if c.Trace != nil {
		c.Trace(c.PC, inst)
	}
	tr = c.exec(inst, nil)
	if tr != nil {
		return tr
	}
	c.Instrs++
	return nil
}

// hotTrap fills the CPU's reused trap storage. Only the allocation-heavy
// control-flow traps (budget, host call) go through it; fault traps carry
// detail and stay freshly allocated.
func (c *CPU) hotTrap(k TrapKind, pc uint64) *Trap {
	c.trap = Trap{Kind: k, PC: pc}
	return &c.trap
}

// Run executes until a trap occurs or maxInstrs instructions retire
// (maxInstrs 0 means no budget). It returns the trap that stopped it.
// TrapBudget and TrapHostCall results reuse per-CPU storage and are valid
// only until the next Run/Step call.
func (c *CPU) Run(maxInstrs uint64) *Trap {
	if c.fastpath && c.Trace == nil {
		c.Stat.FastRuns++
		return c.runBlocks(maxInstrs)
	}
	c.Stat.SlowRuns++
	if maxInstrs == 0 {
		for {
			if tr := c.Step(); tr != nil {
				return tr
			}
		}
	}
	end := c.Instrs + maxInstrs
	for c.Instrs < end {
		if tr := c.Step(); tr != nil {
			return tr
		}
	}
	return c.hotTrap(TrapBudget, c.PC)
}
