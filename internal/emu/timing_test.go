package emu

import (
	"strings"
	"testing"

	"lfi/internal/arm64"
	"lfi/internal/mem"
)

// runTimed executes src with a fresh timing context and returns the cycles.
func runTimed(t *testing.T, model *CoreModel, src string) (*CPU, *Timing) {
	t.Helper()
	f, err := arm64.ParseFile(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	img, err := arm64.Assemble(f, arm64.Layout{TextBase: textBase, PageSize: 16384})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	as := mem.NewAddrSpace(16384)
	if err := as.Map(textBase, 1<<20, mem.PermRX); err != nil {
		t.Fatal(err)
	}
	as.WriteForce(img.Text, textBase)
	dataBase := uint64(0x4000000)
	if err := as.Map(dataBase, 1<<22, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	c := New(as)
	c.PC = img.Entry
	c.SP = dataBase + 1<<22
	c.X[1] = dataBase
	tim := NewTiming(model)
	c.Timing = tim
	tr := c.Run(10_000_000)
	if tr.Kind != TrapBRK {
		t.Fatalf("trap = %v, want brk", tr)
	}
	return c, tim
}

// loop wraps a body in a 10k-iteration countdown loop.
func loop(body string) string {
	return `
_start:
	movz x9, #10000
outer:
` + body + `
	sub x9, x9, #1
	cbnz x9, outer
	brk #0
`
}

// TestGuardLatency verifies the microarchitectural premise of §4: a
// dependent chain of extended-register adds (the classic guard) runs at 2
// cycles per op while plain adds run at 1.
func TestGuardLatency(t *testing.T) {
	plain := loop(strings.Repeat("\tadd x0, x0, x2\n", 8))
	guard := loop(strings.Repeat("\tadd x0, x0, w2, uxtw\n", 8))
	_, tp := runTimed(t, ModelM1(), plain)
	_, tg := runTimed(t, ModelM1(), guard)
	ratio := tg.Cycles() / tp.Cycles()
	if ratio < 1.7 || ratio > 2.3 {
		t.Errorf("guard/plain cycle ratio = %.2f, want ~2", ratio)
	}
}

// TestZeroCostAddressing verifies §4.1: a register-offset load with uxtw
// extension costs the same as a plain base-register load.
func TestZeroCostAddressing(t *testing.T) {
	base := loop(strings.Repeat("\tldr x0, [x1]\n\tadd x0, x0, #1\n", 4))
	guarded := loop(strings.Repeat("\tldr x0, [x1, w10, uxtw]\n\tadd x0, x0, #1\n", 4))
	_, tb := runTimed(t, ModelM1(), base)
	_, tg := runTimed(t, ModelM1(), guarded)
	ratio := tg.Cycles() / tb.Cycles()
	if ratio < 0.95 || ratio > 1.05 {
		t.Errorf("guarded-addressing/base cycle ratio = %.3f, want ~1", ratio)
	}
}

// TestO0GuardOverhead verifies that the two-instruction O0 guard sequence
// before each load costs measurably more than the folded form.
func TestO0GuardOverhead(t *testing.T) {
	folded := loop(strings.Repeat("\tldr x0, [x1, w10, uxtw]\n\tadd x3, x0, x4\n", 4))
	o0 := loop(strings.Repeat("\tadd x18, x1, w10, uxtw\n\tldr x0, [x18]\n\tadd x3, x0, x4\n", 4))
	_, tf := runTimed(t, ModelM1(), folded)
	_, to := runTimed(t, ModelM1(), o0)
	if to.Cycles() <= tf.Cycles()*1.1 {
		t.Errorf("O0 guard %.0f cycles vs folded %.0f: expected clear overhead",
			to.Cycles(), tf.Cycles())
	}
}

func TestILPIsModeled(t *testing.T) {
	// Independent adds should run near issue width, dependent adds at 1/cycle.
	indep := loop("\tadd x0, x0, #1\n\tadd x2, x2, #1\n\tadd x3, x3, #1\n\tadd x4, x4, #1\n")
	dep := loop("\tadd x0, x0, #1\n\tadd x0, x0, #1\n\tadd x0, x0, #1\n\tadd x0, x0, #1\n")
	_, ti := runTimed(t, ModelM1(), indep)
	_, td := runTimed(t, ModelM1(), dep)
	if td.Cycles() < ti.Cycles()*1.5 {
		t.Errorf("dependent chain %.0f vs independent %.0f: ILP not modeled",
			td.Cycles(), ti.Cycles())
	}
}

func TestBranchPredictorCounts(t *testing.T) {
	// A data-dependent alternating branch mispredicts often; a loop branch
	// almost never.
	alternating := loop(`
	eor x5, x5, #1
	cbz x5, skip
	add x6, x6, #1
skip:
`)
	_, ta := runTimed(t, ModelM1(), alternating)
	stable := loop("\tadd x6, x6, #1\n")
	_, ts := runTimed(t, ModelM1(), stable)
	if ts.Mispredicts > ta.Mispredicts {
		t.Errorf("stable loop mispredicts (%d) exceed alternating (%d)",
			ts.Mispredicts, ta.Mispredicts)
	}
	if ta.Mispredicts < 100 {
		t.Errorf("alternating branch mispredicts = %d, expected many", ta.Mispredicts)
	}
}

func TestTLBModel(t *testing.T) {
	// Striding across many pages must miss the TLB; hitting one page must
	// not. Under nested paging the walks cost twice as much.
	strided := loop(`
	ldr x0, [x1]
	add x1, x1, #16384
	and x1, x1, #0x3fffff
	orr x1, x1, #0x4000000
`)
	m := ModelM1()
	_, tm := runTimed(t, m, strided)
	if tm.TLBMisses < 100 {
		t.Errorf("strided loads TLB misses = %d, expected many", tm.TLBMisses)
	}
	onePage := loop("\tldr x0, [x1]\n")
	_, tp := runTimed(t, m, onePage)
	if tp.TLBMisses > 10 {
		t.Errorf("single-page loads TLB misses = %d", tp.TLBMisses)
	}
	nested := ModelM1()
	nested.NestedPaging = true
	_, tn := runTimed(t, nested, strided)
	if tn.Cycles() <= tm.Cycles()*1.05 {
		t.Errorf("nested paging %.0f cycles vs native %.0f: walk doubling not visible",
			tn.Cycles(), tm.Cycles())
	}
}

func TestTimingAccounting(t *testing.T) {
	_, tim := runTimed(t, ModelT2A(), loop("\tadd x0, x0, #1\n"))
	if tim.Retired == 0 || tim.Cycles() <= 0 {
		t.Fatal("timing not accumulating")
	}
	if tim.Nanoseconds() <= 0 {
		t.Fatal("nanoseconds conversion broken")
	}
	before := tim.Cycles()
	tim.AddCycles(100)
	if tim.Cycles() < before+100 {
		t.Error("AddCycles did not advance the clock")
	}
	tim.Drain()
	if tim.Cycles() < before+100 {
		t.Error("Drain moved the clock backwards")
	}
}
