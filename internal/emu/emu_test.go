package emu

import (
	"testing"

	"lfi/internal/arm64"
	"lfi/internal/mem"
)

const textBase = 0x100000

// run assembles src, loads it at textBase, and executes until a trap.
// Programs end with "brk #0" by convention.
func run(t *testing.T, src string) (*CPU, *Trap) {
	t.Helper()
	f, err := arm64.ParseFile(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	img, err := arm64.Assemble(f, arm64.Layout{TextBase: textBase, PageSize: 16384})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	as := mem.NewAddrSpace(16384)
	roundUp := func(v uint64) uint64 { return (v + 16383) &^ 16383 }
	if err := as.Map(img.TextAddr, roundUp(uint64(len(img.Text))+1), mem.PermRX); err != nil {
		t.Fatal(err)
	}
	if f := as.WriteForce(img.Text, img.TextAddr); f != nil {
		t.Fatal(f)
	}
	if len(img.Data) > 0 || img.BSSSize > 0 {
		end := roundUp(img.BSSAddr + img.BSSSize)
		if err := as.Map(img.DataAddr, end-img.DataAddr, mem.PermRW); err != nil {
			t.Fatal(err)
		}
		if f := as.WriteForce(img.Data, img.DataAddr); f != nil {
			t.Fatal(f)
		}
	}
	if len(img.ROData) > 0 {
		if err := as.Map(img.RODataAddr, roundUp(uint64(len(img.ROData))), mem.PermRead); err != nil {
			t.Fatal(err)
		}
		if f := as.WriteForce(img.ROData, img.RODataAddr); f != nil {
			t.Fatal(f)
		}
	}
	// Stack.
	stackTop := uint64(0x800000)
	if err := as.Map(stackTop-64*1024, 64*1024, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	c := New(as)
	c.PC = img.Entry
	c.SP = stackTop
	tr := c.Run(1_000_000)
	return c, tr
}

func expectBRK(t *testing.T, tr *Trap) {
	t.Helper()
	if tr == nil || tr.Kind != TrapBRK {
		t.Fatalf("trap = %v, want brk", tr)
	}
}

func TestArithmeticLoop(t *testing.T) {
	c, tr := run(t, `
_start:
	mov x0, #0
	mov x1, #1
loop:
	add x0, x0, x1
	add x1, x1, #1
	cmp x1, #101
	b.ne loop
	brk #0
`)
	expectBRK(t, tr)
	if c.X[0] != 5050 {
		t.Errorf("sum = %d, want 5050", c.X[0])
	}
}

func TestWideArithmeticAndFlags(t *testing.T) {
	c, tr := run(t, `
_start:
	movz x0, #0xffff, lsl #48
	movk x0, #0xffff, lsl #32
	movk x0, #0xffff, lsl #16
	movk x0, #0xffff          // x0 = ~0
	adds x1, x0, #1            // 0, carry out
	cset x2, cs
	cset x3, eq
	mov w4, #-1
	adds w5, w4, #1            // 32-bit carry/zero
	cset x6, cs
	mov x10, #0
	subs x7, x10, #1           // -1: N set, borrow -> C clear
	cset x8, mi
	cset x9, cc
	brk #0
`)
	expectBRK(t, tr)
	if c.X[1] != 0 || c.X[2] != 1 || c.X[3] != 1 {
		t.Errorf("64-bit adds: x1=%d x2=%d x3=%d", c.X[1], c.X[2], c.X[3])
	}
	if c.X[5] != 0 || c.X[6] != 1 {
		t.Errorf("32-bit adds: x5=%#x x6=%d", c.X[5], c.X[6])
	}
	if c.X[8] != 1 || c.X[9] != 1 {
		t.Errorf("subs flags: mi=%d cc=%d", c.X[8], c.X[9])
	}
}

func TestSignedOverflowFlags(t *testing.T) {
	c, tr := run(t, `
_start:
	movz x0, #0x7fff, lsl #48
	movk x0, #0xffff, lsl #32
	movk x0, #0xffff, lsl #16
	movk x0, #0xffff          // INT64_MAX
	adds x1, x0, #1
	cset x2, vs
	cset x3, ge               // N==V (both set) after positive overflow
	cset x4, lt
	brk #0
`)
	expectBRK(t, tr)
	if c.X[2] != 1 {
		t.Error("overflow flag not set")
	}
	if c.X[3] != 1 || c.X[4] != 0 {
		t.Errorf("ge/lt after overflow: ge=%d lt=%d", c.X[3], c.X[4])
	}
}

func TestMulDivBitfield(t *testing.T) {
	c, tr := run(t, `
_start:
	mov x0, #7
	mov x1, #6
	mul x2, x0, x1          // 42
	mov x3, #100
	mov x4, #7
	udiv x5, x3, x4         // 14
	msub x6, x5, x4, x3     // 100 - 14*7 = 2 (remainder)
	mov x7, #-100
	mov x8, #7
	sdiv x9, x7, x8         // -14
	mov x10, #0
	udiv x11, x3, x10       // div by zero -> 0
	mov x12, #0xff00
	ubfx x13, x12, #8, #8   // 0xff
	sbfx x14, x12, #8, #8   // -1
	lsl x15, x13, #4        // 0xff0
	lsr x16, x12, #8        // 0xff
	mov w17, #0x80000000
	asr w18, w17, #31       // -1 (32-bit)
	brk #0
`)
	expectBRK(t, tr)
	checks := map[int]uint64{
		2: 42, 5: 14, 6: 2, 9: ^uint64(13), 11: 0,
		13: 0xff, 14: ^uint64(0), 15: 0xff0, 16: 0xff, 18: 0xffffffff,
	}
	for reg, want := range checks {
		if c.X[reg] != want {
			t.Errorf("x%d = %#x, want %#x", reg, c.X[reg], want)
		}
	}
}

func TestMemoryOps(t *testing.T) {
	c, tr := run(t, `
_start:
	adrp x1, buf
	add x1, x1, :lo12:buf
	mov x0, #0x1234
	str x0, [x1]
	ldr x2, [x1]
	strb w0, [x1, #8]
	ldrb w3, [x1, #8]       // 0x34
	strh w0, [x1, #10]
	ldrh w4, [x1, #10]      // 0x1234
	mov w5, #-1
	str w5, [x1, #12]
	ldrsw x6, [x1, #12]     // sign extended -1
	mov x7, #2
	str x0, [x1, x7, lsl #3] // buf+16
	ldr x8, [x1, #16]
	mov w9, #3
	str x0, [x1, w9, uxtw #3] // buf+24
	ldr x10, [x1, #24]
	// pre/post index
	add x11, x1, #32
	str x0, [x11, #8]!       // buf+40, x11=buf+40
	ldr x12, [x11], #8       // loads buf+40, x11=buf+48
	sub x13, x11, x1         // 48
	// pairs
	stp x0, x2, [x1, #64]
	ldp x14, x15, [x1, #64]
	brk #0
.bss
buf:
	.space 128
`)
	expectBRK(t, tr)
	checks := map[int]uint64{
		2: 0x1234, 3: 0x34, 4: 0x1234, 6: ^uint64(0),
		8: 0x1234, 10: 0x1234, 12: 0x1234, 13: 48, 14: 0x1234, 15: 0x1234,
	}
	for reg, want := range checks {
		if c.X[reg] != want {
			t.Errorf("x%d = %#x, want %#x", reg, c.X[reg], want)
		}
	}
}

func TestStackAndCalls(t *testing.T) {
	c, tr := run(t, `
_start:
	mov x0, #5
	bl fact
	brk #0
fact:
	cmp x0, #1
	b.le base
	stp x29, x30, [sp, #-16]!
	stp x19, x20, [sp, #-16]!
	mov x19, x0
	sub x0, x0, #1
	bl fact
	mul x0, x0, x19
	ldp x19, x20, [sp], #16
	ldp x29, x30, [sp], #16
	ret
base:
	mov x0, #1
	ret
`)
	expectBRK(t, tr)
	if c.X[0] != 120 {
		t.Errorf("5! = %d, want 120", c.X[0])
	}
}

func TestJumpTable(t *testing.T) {
	c, tr := run(t, `
_start:
	mov x19, #0
	mov x20, #2          // select case 2
	adrp x1, table
	add x1, x1, :lo12:table
	ldr x2, [x1, x20, lsl #3]
	br x2
case0:
	mov x19, #100
	b done
case1:
	mov x19, #200
	b done
case2:
	mov x19, #300
	b done
done:
	brk #0
.data
table:
	.quad case0, case1, case2
`)
	expectBRK(t, tr)
	if c.X[19] != 300 {
		t.Errorf("jump table selected %d, want 300", c.X[19])
	}
}

func TestFloatingPoint(t *testing.T) {
	c, tr := run(t, `
_start:
	fmov d0, #2.0
	fmov d1, #3.0
	fadd d2, d0, d1       // 5
	fmul d3, d2, d0       // 10
	fsub d4, d3, d1       // 7
	fdiv d5, d3, d0       // 5
	fcvtzs x0, d4         // 7
	mov x1, #9
	scvtf d6, x1
	fsqrt d7, d6          // 3
	fcvtzs x2, d7
	fcmp d0, d1
	cset x3, lt           // 2 < 3
	fneg d8, d0
	fabs d9, d8
	fcvtzs x4, d9         // 2
	fmadd d10, d0, d1, d2 // 2*3+5 = 11
	fcvtzs x5, d10
	// float32 path
	fmov s11, #1.5
	fadd s12, s11, s11
	fcvtzs w6, s12        // 3
	fcvt d13, s12
	fcvtzs x7, d13        // 3
	brk #0
`)
	expectBRK(t, tr)
	checks := map[int]uint64{0: 7, 2: 3, 3: 1, 4: 2, 5: 11, 6: 3, 7: 3}
	for reg, want := range checks {
		if c.X[reg] != want {
			t.Errorf("x%d = %d, want %d", reg, c.X[reg], want)
		}
	}
}

func TestExclusives(t *testing.T) {
	c, tr := run(t, `
_start:
	adrp x1, word
	add x1, x1, :lo12:word
retry:
	ldxr x2, [x1]
	add x2, x2, #1
	stxr w3, x2, [x1]
	cbnz w3, retry
	ldr x4, [x1]
	// stxr without monitor fails
	mov x5, #99
	stxr w6, x5, [x1]
	ldar x7, [x1]
	stlr x4, [x1]
	brk #0
.data
word:
	.quad 41
`)
	expectBRK(t, tr)
	if c.X[4] != 42 {
		t.Errorf("atomic increment = %d, want 42", c.X[4])
	}
	if c.X[6] != 1 {
		t.Errorf("stxr without reservation: status = %d, want 1", c.X[6])
	}
	if c.X[7] != 42 {
		t.Errorf("ldar = %d", c.X[7])
	}
}

func TestCSelAndCCmp(t *testing.T) {
	c, tr := run(t, `
_start:
	mov x0, #5
	mov x1, #7
	cmp x0, x1
	csel x2, x0, x1, lt    // 5
	csinc x3, x0, x1, gt   // not gt -> 7+1
	cmp x0, #5
	ccmp x1, #7, #0, eq    // eq holds -> compare x1,7 -> eq
	cset x4, eq
	cmp x0, #6
	ccmp x1, #7, #0, eq    // eq fails -> nzcv=0 -> ne
	cset x5, eq
	brk #0
`)
	expectBRK(t, tr)
	if c.X[2] != 5 || c.X[3] != 8 || c.X[4] != 1 || c.X[5] != 0 {
		t.Errorf("csel/ccmp: x2=%d x3=%d x4=%d x5=%d", c.X[2], c.X[3], c.X[4], c.X[5])
	}
}

func TestTrapKinds(t *testing.T) {
	_, tr := run(t, "_start:\n\tsvc #42\n")
	if tr.Kind != TrapSVC || tr.Imm != 42 {
		t.Errorf("svc trap = %+v", tr)
	}
	_, tr = run(t, "_start:\n\tmov x0, #0\n\tldr x1, [x0]\n")
	if tr.Kind != TrapMemFault || tr.Fault == nil || tr.Fault.Access != mem.AccessRead {
		t.Errorf("fault trap = %+v", tr)
	}
	_, tr = run(t, "_start:\n\tmov x0, #0\n\tstr x1, [x0]\n")
	if tr.Kind != TrapMemFault || tr.Fault.Access != mem.AccessWrite {
		t.Errorf("store fault trap = %+v", tr)
	}
	// Jump outside mapped code.
	_, tr = run(t, "_start:\n\tmov x0, #0x4000\n\tbr x0\n")
	if tr.Kind != TrapMemFault || tr.Fault.Access != mem.AccessExec {
		t.Errorf("exec fault trap = %+v", tr)
	}
	// Running past the nop hits zeroed page bytes, which do not decode.
	_, tr = run(t, "_start:\n\tnop\n")
	if tr.Kind != TrapUndefined {
		t.Errorf("fallthrough trap = %+v", tr)
	}
}

func TestHostCallRegion(t *testing.T) {
	as := mem.NewAddrSpace(16384)
	f, _ := arm64.ParseFile("_start:\n\tmov x0, #7\n\tbr x1\n")
	img, err := arm64.Assemble(f, arm64.Layout{TextBase: textBase, PageSize: 16384})
	if err != nil {
		t.Fatal(err)
	}
	if err := as.Map(textBase, 16384, mem.PermRX); err != nil {
		t.Fatal(err)
	}
	as.WriteForce(img.Text, textBase)
	c := New(as)
	c.PC = textBase
	c.X[1] = 0xdead0000
	c.SetHostCallRegion(0xdead0000, 0x1000)
	tr := c.Run(100)
	if tr.Kind != TrapHostCall || tr.PC != 0xdead0000 {
		t.Fatalf("trap = %+v, want host call at 0xdead0000", tr)
	}
	if c.X[0] != 7 {
		t.Error("state before host call lost")
	}
}

func TestBudget(t *testing.T) {
	as := mem.NewAddrSpace(16384)
	f, _ := arm64.ParseFile("_start:\n\tb _start\n")
	img, _ := arm64.Assemble(f, arm64.Layout{TextBase: textBase, PageSize: 16384})
	if err := as.Map(textBase, 16384, mem.PermRX); err != nil {
		t.Fatal(err)
	}
	as.WriteForce(img.Text, textBase)
	c := New(as)
	c.PC = textBase
	tr := c.Run(1000)
	if tr.Kind != TrapBudget {
		t.Fatalf("trap = %+v, want budget", tr)
	}
	if c.Instrs != 1000 {
		t.Errorf("retired %d, want 1000", c.Instrs)
	}
}

func TestRegViews(t *testing.T) {
	c, tr := run(t, `
_start:
	movz x0, #0xffff, lsl #48
	movk x0, #0x1234
	mov w1, w0              // zeroes upper bits
	add w2, w0, #0          // 32-bit op zero-extends
	brk #0
`)
	expectBRK(t, tr)
	if c.X[1] != 0x1234 || c.X[2] != 0x1234 {
		t.Errorf("w views: x1=%#x x2=%#x", c.X[1], c.X[2])
	}
}

func TestMrsMsrTpidr(t *testing.T) {
	c, tr := run(t, `
_start:
	mov x0, #0x1000
	msr tpidr_el0, x0
	mrs x1, tpidr_el0
	brk #0
`)
	expectBRK(t, tr)
	if c.X[1] != 0x1000 {
		t.Errorf("tpidr roundtrip = %#x", c.X[1])
	}
}
