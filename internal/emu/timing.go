package emu

import "lfi/internal/arm64"

// CoreModel parameterizes the timing model for one CPU design. Latencies
// and widths follow publicly documented microarchitectural behaviour: the
// design points that matter to LFI are that an extended-register add
// (the classic SFI guard) has 2-cycle latency and reduced throughput,
// while register-offset addressing in loads/stores is free (§4.1).
type CoreModel struct {
	Name    string
	FreqGHz float64

	IssueWidth        int     // sustained decode/issue width
	MispredictPenalty float64 // cycles to refill the front end

	ALULat      float64 // simple ALU op
	ShiftExtLat float64 // ALU op with shift or extend (the "add guard")
	LoadLat     float64 // L1 load-to-use
	MulLat      float64
	DivLat      float64
	FPLat       float64
	FDivLat     float64
	FMALat      float64
	BarrierLat  float64 // dmb/dsb/isb drain cost

	// TLB model. Walks cost TLBWalk cycles; under nested paging (the KVM
	// comparison in Fig. 5) each walk is multiplied by NestedWalkFactor.
	TLBEntries       int
	TLBWalk          float64
	NestedPaging     bool
	NestedWalkFactor float64
	PageShift        uint
}

// ModelM1 approximates an Apple M1 Firestorm core (3.2 GHz).
func ModelM1() *CoreModel {
	return &CoreModel{
		Name:              "apple-m1",
		FreqGHz:           3.2,
		IssueWidth:        8,
		MispredictPenalty: 13,
		ALULat:            1,
		ShiftExtLat:       2,
		LoadLat:           4,
		MulLat:            3,
		DivLat:            9,
		FPLat:             3,
		FDivLat:           10,
		FMALat:            4,
		BarrierLat:        8,
		TLBEntries:        160,
		TLBWalk:           16,
		NestedWalkFactor:  2,
		PageShift:         14, // 16KiB pages
	}
}

// ModelT2A approximates a Neoverse-N1-class GCP Tau T2A core (3.0 GHz).
func ModelT2A() *CoreModel {
	return &CoreModel{
		Name:              "gcp-t2a",
		FreqGHz:           3.0,
		IssueWidth:        4,
		MispredictPenalty: 11,
		ALULat:            1,
		ShiftExtLat:       2,
		LoadLat:           4,
		MulLat:            3,
		DivLat:            12,
		FPLat:             3,
		FDivLat:           12,
		FMALat:            4,
		BarrierLat:        12,
		TLBEntries:        48,
		TLBWalk:           20,
		NestedWalkFactor:  2,
		PageShift:         12, // 4KiB pages
	}
}

// Register scoreboard slots: x0..x30 (0..30), sp (31), v0..v31 (32..63),
// flags (64).
const (
	slotSP    = 31
	slotVBase = 32
	slotFlags = 64
	numSlots  = 65
)

func regSlot(r arm64.Reg) int {
	if r == arm64.RegNone || r.IsZR() {
		return -1
	}
	if r.IsSP() {
		return slotSP
	}
	if r.IsFP() {
		return slotVBase + r.Num()
	}
	return r.Num()
}

// Timing is the per-run scoreboard state.
type Timing struct {
	Model *CoreModel

	ready   [numSlots]float64
	issueAt float64 // next front-end issue slot
	horizon float64 // latest completion seen

	// 2-bit bimodal conditional predictor and a last-target BTB for
	// indirect branches.
	bimodal [1024]uint8
	btb     [512]uint64

	tlb        []uint64
	walkerFree float64 // page-table walker is not pipelined

	// Model-derived constants, precomputed by NewTiming so the per-retire
	// path does no divisions or switch dispatch. The values are the exact
	// doubles the direct expressions would produce, so cycle accounting is
	// unchanged.
	issueInc     float64                 // 1 / IssueWidth
	issueIncHalf float64                 // 0.5 / IssueWidth
	latTab       [latBarrier + 1]float64 // classLat by latClass
	sePenalize   bool                    // ShiftExtLat > ALULat

	// Statistics.
	Mispredicts uint64
	TLBMisses   uint64
	Retired     uint64

	// profile, optional: per-PC cycle attribution. Enable with
	// EnableProfile before running; read with TopPCs.
	profile map[uint64]float64

	srcbuf, dstbuf []arm64.Reg
}

// EnableProfile turns on per-PC cycle attribution.
func (t *Timing) EnableProfile() { t.profile = make(map[uint64]float64) }

// PCCost is one entry of the cycle profile.
type PCCost struct {
	PC     uint64
	Cycles float64
}

// TopPCs returns the n most expensive program counters, by attributed
// latency, most expensive first.
func (t *Timing) TopPCs(n int) []PCCost {
	out := make([]PCCost, 0, len(t.profile))
	for pc, c := range t.profile {
		out = append(out, PCCost{pc, c})
	}
	for i := 1; i < len(out); i++ { // insertion sort; profiles are small
		for j := i; j > 0 && out[j].Cycles > out[j-1].Cycles; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// NewTiming creates a fresh timing context for the model.
func NewTiming(m *CoreModel) *Timing {
	t := &Timing{Model: m}
	t.tlb = make([]uint64, m.TLBEntries)
	for i := range t.tlb {
		t.tlb[i] = ^uint64(0)
	}
	for i := range t.bimodal {
		t.bimodal[i] = 1 // weakly not-taken
	}
	t.issueInc = 1 / float64(m.IssueWidth)
	t.issueIncHalf = 0.5 / float64(m.IssueWidth)
	for cl := latClass(0); cl <= latBarrier; cl++ {
		t.latTab[cl] = t.classLat(cl)
	}
	t.sePenalize = m.ShiftExtLat > m.ALULat
	return t
}

// Cycles returns the elapsed cycle count so far.
func (t *Timing) Cycles() float64 {
	if t.issueAt > t.horizon {
		return t.issueAt
	}
	return t.horizon
}

// Nanoseconds converts the elapsed cycles to wall time on the model.
func (t *Timing) Nanoseconds() float64 { return t.Cycles() / t.Model.FreqGHz }

// AddCycles charges a flat cost (used by the runtime for host-side work).
func (t *Timing) AddCycles(c float64) {
	now := t.Cycles() + c
	t.issueAt = now
	t.horizon = now
}

// Drain waits for all in-flight results (context-switch boundary).
func (t *Timing) Drain() {
	now := t.Cycles()
	for i := range t.ready {
		if t.ready[i] > now {
			now = t.ready[i]
		}
	}
	t.issueAt, t.horizon = now, now
}

// latClass names an instruction's static latency bucket. Predecoded blocks
// cache the class rather than the cycle value, so cached metadata stays
// valid across timing models; classLat maps a class to the current model's
// latency, reproducing the per-instruction classification bit for bit.
type latClass uint8

const (
	latALU latClass = iota
	latShiftExt
	latMul
	latMulH
	latDiv
	latLoad
	latStore
	latFP
	latFDiv
	latFMA
	latBarrier
)

func (t *Timing) classLat(cl latClass) float64 {
	m := t.Model
	switch cl {
	case latShiftExt:
		return m.ShiftExtLat
	case latMul:
		return m.MulLat
	case latMulH:
		return m.MulLat + 2
	case latDiv:
		return m.DivLat
	case latLoad:
		return m.LoadLat
	case latStore:
		return 1
	case latFP:
		return m.FPLat
	case latFDiv:
		return m.FDivLat
	case latFMA:
		return m.FMALat
	case latBarrier:
		return m.BarrierLat
	}
	return m.ALULat
}

func latClassOf(i *arm64.Inst) latClass {
	switch i.Op {
	case arm64.ADD, arm64.ADDS, arm64.SUB, arm64.SUBS,
		arm64.AND, arm64.ANDS, arm64.ORR, arm64.ORN, arm64.EOR, arm64.EON,
		arm64.BIC, arm64.BICS:
		if i.Rm != arm64.RegNone && shiftExtCosts(i) {
			return latShiftExt
		}
		return latALU
	case arm64.MADD, arm64.MSUB, arm64.SMADDL, arm64.UMADDL:
		return latMul
	case arm64.SMULH, arm64.UMULH:
		return latMulH
	case arm64.UDIV, arm64.SDIV:
		return latDiv
	case arm64.LDR, arm64.LDRB, arm64.LDRH, arm64.LDRSB, arm64.LDRSH,
		arm64.LDRSW, arm64.LDP, arm64.LDXR, arm64.LDAXR, arm64.LDAR:
		return latLoad
	case arm64.STR, arm64.STRB, arm64.STRH, arm64.STP, arm64.STXR,
		arm64.STLXR, arm64.STLR:
		return latStore
	case arm64.FADD, arm64.FSUB, arm64.FMUL, arm64.FNEG, arm64.FABS,
		arm64.FCVT, arm64.SCVTF, arm64.UCVTF, arm64.FCVTZS, arm64.FCVTZU,
		arm64.FMOV, arm64.FCSEL, arm64.FCMP:
		return latFP
	case arm64.FDIV, arm64.FSQRT:
		return latFDiv
	case arm64.FMADD, arm64.FMSUB:
		return latFMA
	case arm64.DMB, arm64.DSB, arm64.ISB:
		return latBarrier
	}
	return latALU
}

// shiftExtCosts reports whether the operand-2 modifier makes the ALU op a
// 2-cycle operation. UXTX and LSL with zero amount are pure register moves
// into the adder and stay single-cycle; genuine extends and nonzero shifts
// take the slow path (per the optimization guides the paper cites).
func shiftExtCosts(i *arm64.Inst) bool {
	switch i.Ext {
	case arm64.ExtNone:
		return false
	case arm64.ExtUXTX, arm64.ExtLSL:
		return i.Amount > 0
	}
	return true
}

// Branch classes for retireMeta.
const (
	brNone uint8 = iota
	brUncond
	brCond
	brIndirect
)

// retireMeta is the static half of retiring one instruction: scoreboard
// slots, latency class, and flag/branch behaviour, all derivable from the
// instruction alone. The per-step path computes it on the fly; the
// predecoded-block fast path caches it alongside each decoded instruction
// so retiring becomes a handful of float compares. Both paths funnel into
// retireWith, so cycle attribution is bit-identical between them.
type retireMeta struct {
	src    [4]int8 // scoreboard slots of source registers
	dst    [3]int8 // scoreboard slots of destination registers
	nsrc   int8
	ndst   int8
	wbALU  uint8 // bit k set: dst[k] is a writeback address update
	class  latClass
	branch uint8
	reads  bool // reads NZCV
	sets   bool // writes NZCV
}

// buildMeta fills md from i, using (and returning) the scratch register
// buffers to stay allocation-free.
func buildMeta(i *arm64.Inst, md *retireMeta, srcbuf, dstbuf []arm64.Reg) ([]arm64.Reg, []arm64.Reg) {
	srcbuf = i.SrcRegs(srcbuf[:0])
	md.nsrc = 0
	for _, r := range srcbuf {
		if s := regSlot(r); s >= 0 {
			md.src[md.nsrc] = int8(s)
			md.nsrc++
		}
	}
	dstbuf = i.DestRegs(dstbuf[:0])
	md.ndst = 0
	md.wbALU = 0
	wbMem := i.Op.IsMemory() && i.Mem.WritesBack()
	for _, r := range dstbuf {
		if s := regSlot(r); s >= 0 {
			// Writeback address updates complete in one ALU cycle even on
			// long-latency loads.
			if wbMem && r == i.Mem.Base {
				md.wbALU |= 1 << uint(md.ndst)
			}
			md.dst[md.ndst] = int8(s)
			md.ndst++
		}
	}
	md.reads = i.Op.ReadsFlags()
	md.sets = i.Op.SetsFlags()
	md.class = latClassOf(i)
	switch {
	case !i.Op.IsBranch():
		md.branch = brNone
	case i.Op == arm64.B || i.Op == arm64.BL:
		md.branch = brUncond
	case i.Op == arm64.BR || i.Op == arm64.BLR || i.Op == arm64.RET:
		md.branch = brIndirect
	default: // b.cond, cbz, cbnz, tbz, tbnz
		md.branch = brCond
	}
	return srcbuf, dstbuf
}

// retire charges one instruction to the scoreboard (per-step path).
func (t *Timing) retire(c *CPU, i *arm64.Inst, pc uint64, eff *effects) {
	var md retireMeta
	t.srcbuf, t.dstbuf = buildMeta(i, &md, t.srcbuf, t.dstbuf)
	t.retireWith(pc, eff, &md)
}

// retireWith charges one instruction described by md to the scoreboard.
// Every dispatch generation retires through here — the per-step path (via
// retire), predecoded blocks, superblocks, and the fused executors in
// fuse.go all pass the instruction's real pc and predecoded metadata, so
// cycle accounting is bit-identical no matter which engine executed the
// instruction.
func (t *Timing) retireWith(pc uint64, eff *effects, md *retireMeta) {
	m := t.Model
	t.Retired++

	// Front-end issue slot.
	start := t.issueAt
	t.issueAt += t.issueInc

	// Wait for source operands.
	for k := int8(0); k < md.nsrc; k++ {
		if r := t.ready[md.src[k]]; r > start {
			start = r
		}
	}
	if md.reads && t.ready[slotFlags] > start {
		start = t.ready[slotFlags]
	}

	lat := t.latTab[md.class]

	// TLB lookup for memory operations.
	if eff.hasMem && len(t.tlb) > 0 {
		page := eff.memAddr >> m.PageShift
		slot := int(page) % len(t.tlb)
		if slot < 0 {
			slot = -slot
		}
		if t.tlb[slot] != page {
			t.tlb[slot] = page
			t.TLBMisses++
			walk := m.TLBWalk
			if m.NestedPaging {
				walk *= m.NestedWalkFactor
			}
			// Walks serialize on the (single, non-pipelined) table walker.
			ws := start
			if t.walkerFree > ws {
				ws = t.walkerFree
			}
			t.walkerFree = ws + walk
			lat += t.walkerFree - start
		}
	}

	// Extended-register guards execute on a subset of the ALU ports
	// (reduced throughput, per the optimization guides the paper cites):
	// charge half an extra issue slot.
	if t.sePenalize && lat == m.ShiftExtLat {
		t.issueAt += t.issueIncHalf
	}

	done := start + lat

	if t.profile != nil {
		t.profile[pc] += lat
	}

	// Destinations.
	for k := int8(0); k < md.ndst; k++ {
		if md.wbALU&(1<<uint(k)) != 0 {
			t.ready[md.dst[k]] = start + m.ALULat
		} else {
			t.ready[md.dst[k]] = done
		}
	}
	if md.sets {
		t.ready[slotFlags] = done
	}
	if done > t.horizon {
		t.horizon = done
	}

	// Branch prediction.
	if md.branch != brNone {
		resolve := start + 1
		switch md.branch {
		case brUncond:
			// Unconditional direct branches are effectively free.
		case brCond:
			idx := (pc >> 2) % uint64(len(t.bimodal))
			ctr := t.bimodal[idx]
			predTaken := ctr >= 2
			if predTaken != eff.branched {
				t.Mispredicts++
				if rt := resolve + m.MispredictPenalty; rt > t.issueAt {
					t.issueAt = rt
				}
			}
			if eff.branched && ctr < 3 {
				t.bimodal[idx] = ctr + 1
			} else if !eff.branched && ctr > 0 {
				t.bimodal[idx] = ctr - 1
			}
		case brIndirect:
			idx := (pc >> 2) % uint64(len(t.btb))
			if t.btb[idx] != eff.target {
				t.Mispredicts++
				if rt := resolve + m.MispredictPenalty; rt > t.issueAt {
					t.issueAt = rt
				}
				t.btb[idx] = eff.target
			}
		}
	}
}
