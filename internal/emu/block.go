// Predecoded basic-block fast path, second generation.
//
// The per-step interpreter (Step) pays for a host-call range check, a PC
// alignment check, an icache map lookup, and full timing-metadata
// classification on every instruction. The fast path amortises all of that
// to block boundaries and beyond, in three stacked layers:
//
//  1. Predecode (PR 2): straight-line runs are decoded once into flat
//     blocks whose slots carry the decoded instruction plus its cached
//     retire metadata, and a tight inner loop executes the slots back to
//     back. Blocks end at anything that can redirect or stop the flow:
//     branches, SVC, BRK, undecodable words, page boundaries (the next
//     page may be unmapped or remapped independently), and the host-call
//     window.
//
//  2. Direct block chaining: when a block exit leads to a block that is
//     already predecoded, a direct pointer is patched into the exiting
//     block's chain slots, keyed by the observed next PC. Dispatch then
//     jumps block-to-block without re-hashing the PC or re-running the
//     host-call/alignment checks — both were proven when the link was
//     installed (the window only changes via SetHostCallRegion, which
//     flushes; the target PC is a constant). Links are validated on use
//     by comparing the target's pc (conflict eviction refills entries),
//     so a stale link can only miss, never misdirect.
//
//  3. Hot-trace superblocks (trace.go): blocks entered more than
//     traceThreshold times get the observed hot path — across
//     unconditional and strongly biased conditional branches, with tight
//     loops unrolled — stitched into a single superblock that executes
//     with one budget check at entry and per-branch side-exit checks.
//
// Guard-idiom fusion (fuse.go) runs at predecode time inside layers 1 and
// 3: the rewriter's staged-address guard sequences are marked so the
// dispatch loops execute them through specialised accessors instead of the
// general exec switch.
//
// Equivalence with the slow path is exact, not approximate:
//   - exec() itself is shared (the fused executors replicate its
//     load/store semantics instruction for instruction and still write
//     every intermediate register), so architectural state transitions
//     are identical.
//   - retire metadata is model-independent (scoreboard slots + latency
//     class); retireWith runs the identical arithmetic in the identical
//     order as per-step retire, so Timing.Cycles() is bit-identical.
//   - the instruction budget is applied with exact carry-in: blocks and
//     superblocks are clipped to the remaining budget (fused pairs split
//     when the clip lands between them), so TrapBudget lands on the same
//     instruction as the slow loop.
//
// All caches here (block cache, chain links, superblocks, page-translation
// caches, the slow path's icache) are guarded by the AddrSpace epoch,
// which bumps on any mapping mutation or host-side forced write. The
// chained inner loop checks the epoch only at outer dispatches: mappings
// cannot mutate during a single Run call, because every mutation path
// (host calls, the scheduler, snapshot restore) first returns a trap out
// of Run.
package emu

import (
	"encoding/binary"

	"lfi/internal/arm64"
	"lfi/internal/mem"
)

const (
	// bcacheSize is the number of direct-mapped block cache entries.
	bcacheSize = 512
	// maxBlockInsts caps block length so one block cannot monopolise
	// a budget slice's granularity beyond a page of straight-line code.
	maxBlockInsts = 512
	// tcacheSize is the number of direct-mapped page-translation entries
	// per access kind. Sized to cover a multi-MiB working set of 16KiB
	// pages: pointer-chasing workloads (505.mcf) touch hundreds of pages
	// and previously thrashed a 64-entry cache straight into the
	// AddrSpace map lookup.
	tcacheSize = 512
	// chainWays is the number of chain links per block: two covers both
	// arms of a conditional branch (and memoizes up to two indirect
	// targets).
	chainWays = 2
	// defaultTraceThreshold is the number of block entries before the hot
	// successor sequence is stitched into a superblock.
	defaultTraceThreshold = 64
)

// instSlot is one predecoded instruction plus its cached retire metadata
// and fusion mark.
type instSlot struct {
	inst arm64.Inst
	meta retireMeta
	fuse fuseInfo
}

// bcEntry is a direct-mapped block cache entry; valid iff len(insts) > 0
// (pc alone cannot mark validity: 0 is a decodable address).
type bcEntry struct {
	pc    uint64
	insts []instSlot

	// Chain links: resolved successor blocks keyed by the next PC.
	// Validated on use (target pc + validity), so conflict eviction of
	// the target is detected, never followed.
	chainPC  [chainWays]uint64
	chainTo  [chainWays]*bcEntry
	chainClk uint8

	// Trace-formation state: entry counter, last observed successor PC
	// and its stability streak, and the stitched superblock (if any).
	enters   uint32
	stable   uint8
	sbTries  uint8
	sbFailed bool
	lastNext uint64
	sb       *superblock
}

// reset invalidates e and clears chain/trace state for reuse at pc.
func (e *bcEntry) reset(pc uint64) {
	e.pc = pc
	e.insts = e.insts[:0]
	e.chainPC = [chainWays]uint64{}
	e.chainTo = [chainWays]*bcEntry{}
	e.chainClk = 0
	e.enters, e.stable, e.sbTries = 0, 0, 0
	e.sbFailed = false
	e.lastNext = 0
	e.sb = nil
}

// chainNext returns the already-validated successor block for pc, or nil.
// A link whose target was evicted (pc mismatch) or flushed (empty) is
// dropped so the slot can be reused.
func (e *bcEntry) chainNext(pc uint64) *bcEntry {
	for i := range e.chainTo {
		if t := e.chainTo[i]; t != nil && e.chainPC[i] == pc {
			if t.pc == pc && len(t.insts) > 0 {
				return t
			}
			e.chainTo[i] = nil
		}
	}
	return nil
}

// chain installs t as the successor for pc, replacing round-robin when
// both ways are taken.
func (e *bcEntry) chain(pc uint64, t *bcEntry) {
	for i := range e.chainTo {
		if e.chainTo[i] == nil || e.chainPC[i] == pc {
			e.chainPC[i], e.chainTo[i] = pc, t
			return
		}
	}
	i := int(e.chainClk) % chainWays
	e.chainClk++
	e.chainPC[i], e.chainTo[i] = pc, t
}

// tcEntry caches the backing slice of one translated page for one access
// kind; valid iff data != nil (page index 0 is a real page).
type tcEntry struct {
	idx  uint64
	data []byte
}

// memRead is AddrSpace.Read with a direct-mapped translation cache in
// front: a hit turns the region walk into two compares plus a load.
func (c *CPU) memRead(addr uint64, size int) (uint64, *mem.Fault) {
	idx := addr >> c.pageShift
	e := &c.tcRead[idx&(tcacheSize-1)]
	if e.idx != idx || e.data == nil {
		c.Stat.TCReadMisses++
		data, f := c.Mem.PageSlice(addr, mem.AccessRead)
		if f != nil {
			f.Size = size
			return 0, f
		}
		e.idx, e.data = idx, data
	} else {
		c.Stat.TCReadHits++
	}
	off := addr & (c.pageSize - 1)
	if off+uint64(size) <= c.pageSize {
		d := e.data[off:]
		switch size {
		case 1:
			return uint64(d[0]), nil
		case 2:
			return uint64(binary.LittleEndian.Uint16(d)), nil
		case 4:
			return uint64(binary.LittleEndian.Uint32(d)), nil
		case 8:
			return binary.LittleEndian.Uint64(d), nil
		}
	}
	// Page-crossing access: defer to the general path.
	return c.Mem.Read(addr, size)
}

// memWrite is AddrSpace.Write behind the same translation cache.
func (c *CPU) memWrite(addr uint64, v uint64, size int) *mem.Fault {
	idx := addr >> c.pageShift
	e := &c.tcWrite[idx&(tcacheSize-1)]
	if e.idx != idx || e.data == nil {
		c.Stat.TCWriteMisses++
		data, f := c.Mem.PageSlice(addr, mem.AccessWrite)
		if f != nil {
			f.Size = size
			return f
		}
		e.idx, e.data = idx, data
	} else {
		c.Stat.TCWriteHits++
	}
	off := addr & (c.pageSize - 1)
	if off+uint64(size) <= c.pageSize {
		d := e.data[off:]
		switch size {
		case 1:
			d[0] = byte(v)
			return nil
		case 2:
			binary.LittleEndian.PutUint16(d, uint16(v))
			return nil
		case 4:
			binary.LittleEndian.PutUint32(d, uint32(v))
			return nil
		case 8:
			binary.LittleEndian.PutUint64(d, v)
			return nil
		}
	}
	return c.Mem.Write(addr, v, size)
}

// blockEnd reports whether the instruction terminates a block.
func blockEnd(i *arm64.Inst) bool {
	return i.Op.IsBranch() || i.Op == arm64.SVC || i.Op == arm64.BRK
}

// decodeBlock fills e with the straight-line run starting at pc. A fetch
// fault or undecodable word on the *first* instruction returns the trap the
// slow path would raise there; later ones just end the block early so the
// trap is raised when (and only if) execution actually reaches that pc.
func (c *CPU) decodeBlock(pc uint64, e *bcEntry) *Trap {
	e.reset(pc)
	for p := pc; len(e.insts) < maxBlockInsts; {
		w, f := c.Mem.Fetch32(p)
		if f != nil {
			if len(e.insts) == 0 {
				return &Trap{Kind: TrapMemFault, PC: p, Fault: f}
			}
			break
		}
		inst, err := arm64.Decode(w)
		if err != nil {
			if len(e.insts) == 0 {
				return &Trap{Kind: TrapUndefined, PC: p}
			}
			break
		}
		e.insts = append(e.insts, instSlot{inst: inst})
		s := &e.insts[len(e.insts)-1]
		c.mSrc, c.mDst = buildMeta(&s.inst, &s.meta, c.mSrc, c.mDst)
		if blockEnd(&s.inst) {
			break
		}
		p += 4
		// Stop at page boundaries and at the host-call window: the block
		// must not run past an address the outer loop has to re-check.
		if p&(c.pageSize-1) == 0 {
			break
		}
		if c.hostCallLen != 0 && p-c.hostCallBase < c.hostCallLen {
			break
		}
	}
	if c.fusion {
		annotateFusion(e.insts)
	}
	return nil
}

// runSlots executes a clipped run of predecoded slots back to back,
// dispatching fused idioms through their specialised executors. Fused
// pairs whose partner fell outside the clip execute the head generically,
// so a budget expiry between the two instructions still lands exactly.
func (c *CPU) runSlots(slots []instSlot) *Trap {
	n := len(slots)
	for k := 0; k < n; k++ {
		s := &slots[k]
		switch s.fuse.kind {
		case fuseNone:
			if tr := c.exec(&s.inst, &s.meta); tr != nil {
				return tr
			}
		case fuseAccess:
			if tr := c.execFastMem(s); tr != nil {
				return tr
			}
		default: // pair head
			if k+1 < n {
				// execFusedPair counts the guard itself; the Instrs++
				// below counts the access.
				if tr := c.execFusedPair(s, &slots[k+1]); tr != nil {
					return tr
				}
				k++
			} else if tr := c.exec(&s.inst, &s.meta); tr != nil {
				// Partner clipped out: run the head alone, generically.
				return tr
			}
		}
		c.Instrs++
	}
	return nil
}

// runBlocks is the fast-path Run loop. The outer loop's check order per
// iteration matches the slow path exactly: budget, then host-call window,
// then alignment. The inner loop follows chain links and enters
// superblocks, re-checking only the budget: chained targets were proven
// aligned and outside the host-call window when the link was installed,
// and the epoch cannot move mid-Run (see the package comment).
func (c *CPU) runBlocks(maxInstrs uint64) *Trap {
	end := ^uint64(0)
	if maxInstrs != 0 {
		end = c.Instrs + maxInstrs
	}
	var prev *bcEntry // block whose exit led here; chain install point
	for {
		if c.Instrs >= end {
			return c.hotTrap(TrapBudget, c.PC)
		}
		if e := c.Mem.Epoch(); e != c.memEpoch {
			c.flushDecoded(e)
			prev = nil
		}
		pc := c.PC
		if c.hostCallLen != 0 && pc-c.hostCallBase < c.hostCallLen {
			return c.hotTrap(TrapHostCall, pc)
		}
		if pc%4 != 0 {
			return &Trap{Kind: TrapMemFault, PC: pc,
				Fault: &mem.Fault{Addr: pc, Access: mem.AccessExec, Size: 4}}
		}
		e := &c.bcache[(pc>>2)&(bcacheSize-1)]
		if e.pc != pc || len(e.insts) == 0 {
			c.Stat.BlockMisses++
			if tr := c.decodeBlock(pc, e); tr != nil {
				return tr
			}
		} else {
			c.Stat.BlockHits++
		}
		if prev != nil {
			prev.chain(pc, e)
			prev = nil
		}
		for {
			if tr := c.runEntry(e, end); tr != nil {
				return tr
			}
			if c.Instrs >= end {
				return c.hotTrap(TrapBudget, c.PC)
			}
			npc := c.PC
			if e.sb == nil {
				// Successor statistics feed trace formation; frozen once
				// a superblock covers the block.
				if npc == e.lastNext {
					if e.stable < 255 {
						e.stable++
					}
				} else {
					e.lastNext, e.stable = npc, 0
				}
			}
			if !c.chaining {
				break
			}
			if next := e.chainNext(npc); next != nil {
				c.Stat.ChainHits++
				e = next
				continue
			}
			c.Stat.ChainMisses++
			prev = e
			break
		}
	}
}

// runEntry executes one dispatched block: its superblock when one is
// stitched (stitching it first if the block just crossed the threshold),
// otherwise its predecoded slots clipped to the remaining budget.
func (c *CPU) runEntry(e *bcEntry, end uint64) *Trap {
	if c.tracing {
		if e.sb != nil {
			return c.runSuperblock(e.sb, end)
		}
		e.enters++
		// Each failed stitch attempt doubles the entry count required for
		// the next one (conditional exits need a stability streak that
		// only more entries can provide).
		if !e.sbFailed && e.enters>>e.sbTries >= c.traceThreshold {
			c.buildTrace(e)
			if e.sb != nil {
				return c.runSuperblock(e.sb, end)
			}
		}
	}
	slots := e.insts
	if rem := end - c.Instrs; rem < uint64(len(slots)) {
		slots = slots[:rem]
	}
	return c.runSlots(slots)
}
