// Predecoded basic-block fast path.
//
// The per-step interpreter (Step) pays for a host-call range check, a PC
// alignment check, an icache map lookup, and full timing-metadata
// classification on every instruction. The fast path amortises all of that
// to block boundaries: straight-line runs are decoded once into flat
// superblocks whose slots carry the decoded instruction plus its cached
// retire metadata, and a tight inner loop executes the slots back to back.
// Blocks end at anything that can redirect or stop the flow: branches, SVC,
// BRK, undecodable words, page boundaries (the next page may be unmapped or
// remapped independently), and the host-call window.
//
// Equivalence with the slow path is exact, not approximate:
//   - exec() itself is shared, so architectural state transitions are the
//     same code in both paths.
//   - retire metadata is model-independent (scoreboard slots + latency
//     class); retireWith runs the identical arithmetic in the identical
//     order as per-step retire, so Timing.Cycles() is bit-identical.
//   - the instruction budget is applied with exact carry-in: a block is
//     clipped to the remaining budget, so TrapBudget lands on the same
//     instruction as the slow loop.
//
// All caches here (block cache, page-translation caches, the slow path's
// icache) are guarded by the AddrSpace epoch, which bumps on any mapping
// mutation.
package emu

import (
	"os"

	"lfi/internal/arm64"
	"lfi/internal/mem"
)

// defaultFastpath is the process-wide default for new CPUs; EMU_FASTPATH=off
// is the escape hatch back to the per-step interpreter.
var defaultFastpath = os.Getenv("EMU_FASTPATH") != "off"

const (
	// bcacheSize is the number of direct-mapped block cache entries.
	bcacheSize = 512
	// maxBlockInsts caps superblock length so one block cannot monopolise
	// a budget slice's granularity beyond a page of straight-line code.
	maxBlockInsts = 512
	// tcacheSize is the number of direct-mapped page-translation entries
	// per access kind.
	tcacheSize = 64
)

// instSlot is one predecoded instruction plus its cached retire metadata.
type instSlot struct {
	inst arm64.Inst
	meta retireMeta
}

// bcEntry is a direct-mapped block cache entry; valid iff len(insts) > 0
// (pc alone cannot mark validity: 0 is a decodable address).
type bcEntry struct {
	pc    uint64
	insts []instSlot
}

// tcEntry caches the backing slice of one translated page for one access
// kind; valid iff data != nil (page index 0 is a real page).
type tcEntry struct {
	idx  uint64
	data []byte
}

// memRead is AddrSpace.Read with a direct-mapped translation cache in
// front: a hit turns the region walk into two compares plus a load.
func (c *CPU) memRead(addr uint64, size int) (uint64, *mem.Fault) {
	idx := addr >> c.pageShift
	e := &c.tcRead[idx&(tcacheSize-1)]
	if e.idx != idx || e.data == nil {
		c.Stat.TCReadMisses++
		data, f := c.Mem.PageSlice(addr, mem.AccessRead)
		if f != nil {
			f.Size = size
			return 0, f
		}
		e.idx, e.data = idx, data
	} else {
		c.Stat.TCReadHits++
	}
	off := addr & (c.pageSize - 1)
	if off+uint64(size) <= c.pageSize {
		d := e.data[off:]
		switch size {
		case 1:
			return uint64(d[0]), nil
		case 2:
			return uint64(d[0]) | uint64(d[1])<<8, nil
		case 4:
			return uint64(d[0]) | uint64(d[1])<<8 | uint64(d[2])<<16 |
				uint64(d[3])<<24, nil
		case 8:
			return uint64(d[0]) | uint64(d[1])<<8 | uint64(d[2])<<16 |
				uint64(d[3])<<24 | uint64(d[4])<<32 | uint64(d[5])<<40 |
				uint64(d[6])<<48 | uint64(d[7])<<56, nil
		}
	}
	// Page-crossing access: defer to the general path.
	return c.Mem.Read(addr, size)
}

// memWrite is AddrSpace.Write behind the same translation cache.
func (c *CPU) memWrite(addr uint64, v uint64, size int) *mem.Fault {
	idx := addr >> c.pageShift
	e := &c.tcWrite[idx&(tcacheSize-1)]
	if e.idx != idx || e.data == nil {
		c.Stat.TCWriteMisses++
		data, f := c.Mem.PageSlice(addr, mem.AccessWrite)
		if f != nil {
			f.Size = size
			return f
		}
		e.idx, e.data = idx, data
	} else {
		c.Stat.TCWriteHits++
	}
	off := addr & (c.pageSize - 1)
	if off+uint64(size) <= c.pageSize {
		d := e.data[off:]
		switch size {
		case 1:
			d[0] = byte(v)
			return nil
		case 2:
			d[0], d[1] = byte(v), byte(v>>8)
			return nil
		case 4:
			d[0], d[1], d[2], d[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
			return nil
		case 8:
			d[0], d[1], d[2], d[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
			d[4], d[5], d[6], d[7] = byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56)
			return nil
		}
	}
	return c.Mem.Write(addr, v, size)
}

// blockEnd reports whether the instruction terminates a superblock.
func blockEnd(i *arm64.Inst) bool {
	return i.Op.IsBranch() || i.Op == arm64.SVC || i.Op == arm64.BRK
}

// decodeBlock fills e with the straight-line run starting at pc. A fetch
// fault or undecodable word on the *first* instruction returns the trap the
// slow path would raise there; later ones just end the block early so the
// trap is raised when (and only if) execution actually reaches that pc.
func (c *CPU) decodeBlock(pc uint64, e *bcEntry) *Trap {
	e.pc = pc
	e.insts = e.insts[:0]
	for p := pc; len(e.insts) < maxBlockInsts; {
		w, f := c.Mem.Fetch32(p)
		if f != nil {
			if len(e.insts) == 0 {
				return &Trap{Kind: TrapMemFault, PC: p, Fault: f}
			}
			break
		}
		inst, err := arm64.Decode(w)
		if err != nil {
			if len(e.insts) == 0 {
				return &Trap{Kind: TrapUndefined, PC: p}
			}
			break
		}
		e.insts = append(e.insts, instSlot{inst: inst})
		s := &e.insts[len(e.insts)-1]
		c.mSrc, c.mDst = buildMeta(&s.inst, &s.meta, c.mSrc, c.mDst)
		if blockEnd(&s.inst) {
			break
		}
		p += 4
		// Stop at page boundaries and at the host-call window: the block
		// must not run past an address the outer loop has to re-check.
		if p&(c.pageSize-1) == 0 {
			break
		}
		if c.hostCallLen != 0 && p-c.hostCallBase < c.hostCallLen {
			break
		}
	}
	return nil
}

// runBlocks is the fast-path Run loop. Check order per iteration matches
// the slow path exactly: budget, then host-call window, then alignment.
func (c *CPU) runBlocks(maxInstrs uint64) *Trap {
	end := ^uint64(0)
	if maxInstrs != 0 {
		end = c.Instrs + maxInstrs
	}
	for {
		if c.Instrs >= end {
			return c.hotTrap(TrapBudget, c.PC)
		}
		if e := c.Mem.Epoch(); e != c.memEpoch {
			c.flushDecoded(e)
		}
		pc := c.PC
		if c.hostCallLen != 0 && pc-c.hostCallBase < c.hostCallLen {
			return c.hotTrap(TrapHostCall, pc)
		}
		if pc%4 != 0 {
			return &Trap{Kind: TrapMemFault, PC: pc,
				Fault: &mem.Fault{Addr: pc, Access: mem.AccessExec, Size: 4}}
		}
		e := &c.bcache[(pc>>2)&(bcacheSize-1)]
		if e.pc != pc || len(e.insts) == 0 {
			c.Stat.BlockMisses++
			if tr := c.decodeBlock(pc, e); tr != nil {
				return tr
			}
		} else {
			c.Stat.BlockHits++
		}
		// Clip the block to the remaining budget (exact carry-in), then
		// execute slots back to back with per-step checks hoisted out.
		slots := e.insts
		if rem := end - c.Instrs; rem < uint64(len(slots)) {
			slots = slots[:rem]
		}
		for k := range slots {
			s := &slots[k]
			if tr := c.exec(&s.inst, &s.meta); tr != nil {
				return tr
			}
			c.Instrs++
		}
	}
}
