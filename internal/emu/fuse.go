// Guard-idiom fusion.
//
// The LFI rewriter materialises every sandboxed access as a short fixed
// idiom: an address guard (`add x22, x21, wN, uxtw`, or the staged-w22
// lowering that first moves the untrusted index into w22) immediately
// followed by the dependent load or store. Interpreting that pair costs
// two trips through the general exec switch, two operand decoders, and a
// general effective-address computation, even though the shapes are known
// at predecode time.
//
// annotateFusion marks two patterns on predecoded slots:
//
//   - fuseAccess: a single-register, non-writeback load/store whose
//     addressing mode needs no writeback bookkeeping. It executes through
//     execFastMem, which uses the size/extension facts cached at decode
//     time instead of re-deriving them per execution.
//
//   - fusePair: a flagless ALU staging op (the guard family: ADD/SUB/
//     AND/ORR/EOR with an integer destination) immediately followed by a
//     fuseAccess-eligible instruction. The pair executes as one dispatch
//     through execFusedPair: one retire slot handoff instead of two trips
//     around the dispatch loop.
//
// Fusion is strictly a dispatch optimisation — it MUST be architecturally
// invisible. The fused executors replicate exec()'s semantics (see the
// keep-in-sync notes in exec.go) instruction for instruction: the guard's
// intermediate register (x18/x22/...) is still written, both instructions
// retire separately with their own pc and metadata (so Timing cycles are
// bit-identical), Instrs advances once per instruction, and a fault in
// the access leaves the guard retired exactly as the unfused path would.
// Budget clipping may split a pair: the dispatch loops (block.go,
// trace.go) run the head generically when its partner falls outside the
// clip, so TrapBudget still lands on the exact instruction.
package emu

import "lfi/internal/arm64"

type fuseKind uint8

const (
	fuseNone fuseKind = iota
	fuseAccess
	fusePair // this slot is the ALU head; the next slot is its access
)

// fuseInfo caches the facts execFastMem needs about an access so they are
// derived once at predecode instead of per execution.
type fuseInfo struct {
	kind fuseKind
	size int8  // access size in bytes
	load bool  // load vs store
	fp   bool  // FP/SIMD register target
	sext uint8 // sign-extend width in bytes after load (0 = none)
}

// fastMemInfo reports whether i is a single-register, non-writeback
// load/store that execFastMem can run, and the cached facts if so.
// Excluded (handled by the general path): pairs, exclusives/acquire-
// release (monitor state), writeback modes, and 128-bit vector accesses.
func fastMemInfo(i *arm64.Inst) (fuseInfo, bool) {
	switch i.Op {
	case arm64.LDR, arm64.LDRB, arm64.LDRH, arm64.LDRSB, arm64.LDRSH,
		arm64.LDRSW, arm64.STR, arm64.STRB, arm64.STRH:
	default:
		return fuseInfo{}, false
	}
	switch i.Mem.Mode {
	case arm64.AddrBase, arm64.AddrImm, arm64.AddrLiteral,
		arm64.AddrReg, arm64.AddrRegUXTW, arm64.AddrRegSXTW, arm64.AddrRegSXTX:
	default:
		return fuseInfo{}, false
	}
	size := memAccessSize(i)
	if size > 8 {
		return fuseInfo{}, false
	}
	fi := fuseInfo{
		kind: fuseAccess,
		size: int8(size),
		load: !i.Op.IsStore(),
		fp:   i.Rd.IsFP(),
	}
	switch i.Op {
	case arm64.LDRSB:
		fi.sext = 1
	case arm64.LDRSH:
		fi.sext = 2
	case arm64.LDRSW:
		fi.sext = 4
	}
	return fi, true
}

// isStageALU reports whether i is a flagless ALU op the fused-pair
// executor can replicate: the guard adds themselves (`add x22, x21, wN,
// uxtw`, `add sp, x21, x22`) and the mov/and staging forms that feed
// them. Flag-setting ops are excluded (execFusedPair never touches NZCV)
// and so are ZR destinations (flagless ALU to ZR is dead anyway).
func isStageALU(i *arm64.Inst) bool {
	switch i.Op {
	case arm64.ADD, arm64.SUB, arm64.AND, arm64.ORR, arm64.EOR:
	default:
		return false
	}
	return !i.Rd.IsZR() && !i.Rd.IsFP()
}

// annotateFusion marks fusable slots in a freshly decoded block. Pair
// heads consume their access, so a slot is never both a pair tail and a
// pair head; an access that follows a non-fusable instruction still gets
// the standalone fuseAccess mark.
func annotateFusion(slots []instSlot) {
	for k := range slots {
		if fi, ok := fastMemInfo(&slots[k].inst); ok {
			slots[k].fuse = fi
		}
	}
	for k := 0; k+1 < len(slots); k++ {
		if slots[k].fuse.kind == fuseNone && isStageALU(&slots[k].inst) &&
			slots[k+1].fuse.kind == fuseAccess {
			slots[k].fuse.kind = fusePair
			k++ // the access is consumed by the head
		}
	}
}

// execFastMem executes one fuseAccess-marked load/store. It is
// execLoadStore (exec.go) specialised to the non-writeback single-register
// subset, using the facts cached in s.fuse; the state transitions, fault
// objects, retire arguments, and PC update are identical.
func (c *CPU) execFastMem(s *instSlot) *Trap {
	i := &s.inst
	pc := c.PC
	m := &i.Mem
	var addr uint64
	switch m.Mode {
	case arm64.AddrBase:
		addr = c.Reg(m.Base)
	case arm64.AddrImm:
		addr = c.Reg(m.Base) + uint64(int64(m.Imm))
	case arm64.AddrLiteral:
		addr = pc + uint64(i.Imm)
	default:
		base := c.Reg(m.Base)
		idx := c.Reg(m.Index)
		amt := uint(0)
		if m.Amount > 0 {
			amt = uint(m.Amount)
		}
		switch m.Mode {
		case arm64.AddrReg, arm64.AddrRegSXTX:
			addr = base + idx<<amt
		case arm64.AddrRegUXTW:
			addr = base + (idx&0xffffffff)<<amt
		default: // AddrRegSXTW
			addr = base + uint64(int64(int32(uint32(idx))))<<amt
		}
	}
	size := int(s.fuse.size)
	if s.fuse.load {
		v, f := c.memRead(addr, size)
		if f != nil {
			return c.memFault(pc, f)
		}
		switch s.fuse.sext {
		case 1:
			v = uint64(int64(int8(v)))
		case 2:
			v = uint64(int64(int16(v)))
		case 4:
			v = uint64(int64(int32(uint32(v))))
		}
		if s.fuse.fp {
			c.SetFP(i.Rd, v)
		} else {
			c.SetReg(i.Rd, v)
		}
	} else {
		var v uint64
		if s.fuse.fp {
			v = c.FP(i.Rd)
		} else {
			v = c.Reg(i.Rd)
		}
		if f := c.memWrite(addr, v, size); f != nil {
			return c.memFault(pc, f)
		}
	}
	c.Stat.FusedAccesses++
	if c.Timing != nil {
		eff := effects{hasMem: true, memAddr: addr}
		c.Timing.retireWith(pc, &eff, &s.meta)
	}
	c.PC = pc + 4
	return nil
}

// execFusedPair executes a fusePair head (g) and its access (a) as one
// dispatch. The guard is a flagless ALU op, so it can never trap: its
// result is architecturally committed (the intermediate register write is
// observable and preserved), it retires with its own pc and metadata, and
// c.Instrs counts it here — the caller's post-dispatch increment counts
// the access. The ALU replication matches exec()'s flagless ADD/SUB (sum
// and difference agree with addWithCarry modulo the register width) and
// logical paths; see the keep-in-sync note in exec.go.
func (c *CPU) execFusedPair(g, a *instSlot) *Trap {
	i := &g.inst
	pc := c.PC
	is64 := i.Rd.Is64()
	av := c.Reg(i.Rn)
	bv := c.operand2(i, is64)
	var r uint64
	switch i.Op {
	case arm64.ADD:
		r = av + bv
	case arm64.SUB:
		r = av - bv
	case arm64.AND:
		r = av & bv
	case arm64.ORR:
		r = av | bv
	default: // EOR
		r = av ^ bv
	}
	c.SetReg(i.Rd, r&sizeMask(boolSize(is64)))
	if c.Timing != nil {
		var eff effects
		c.Timing.retireWith(pc, &eff, &g.meta)
	}
	c.PC = pc + 4
	c.Instrs++
	c.Stat.FusedPairs++
	return c.execFastMem(a)
}
