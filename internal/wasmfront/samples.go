package wasmfront

// Sample modules shared by the benchmark harness (lfi-bench -wasm), the
// end-to-end pool/serve tests, and the quickstart example. Each is a
// self-contained module exporting "main" () -> i64 whose result doubles
// as the run's checksum, so every engine (reference interpreter,
// wasmfront-on-LFI, wasmbase engine models) must agree on it.

// SampleArithLoop runs iters rounds of a 64-bit LCG mixed with 32-bit
// shifts/rotates/divisions, accumulating a checksum.
func SampleArithLoop(iters uint32) []byte {
	mb := NewModBuilder()
	tMain := mb.Type(nil, []ValType{I64})
	var c Code
	// l0: i (i32), l1: state (i64), l2: acc (i64)
	c.I32Const(int32(iters)).Idx(OpLocalSet, 0)
	c.I64Const(0x243f6a8885a308d3&0x7fffffffffffffff).Idx(OpLocalSet, 1)
	c.Loop(0x40)
	//   state = state * 6364136223846793005 + 1442695040888963407
	c.Idx(OpLocalGet, 1).I64Const(6364136223846793005).Op(0x7e). // i64.mul
									I64Const(1442695040888963407).Op(0x7c). // i64.add
									Idx(OpLocalTee, 1)
	//   acc ^= rotl64(state, i & 63)
	c.Idx(OpLocalGet, 0).Op(OpI64ExtendU).I64Const(63).Op(0x83). // i64.and
									Op(0x89) // i64.rotl
	c.Idx(OpLocalGet, 2).Op(0x85).Idx(OpLocalSet, 2) // i64.xor
	//   acc += i32.div_u(wrap(state) | 1, (i|1)) extended
	c.Idx(OpLocalGet, 1).Op(OpI32WrapI64).I32Const(1).Op(0x72). // i32.or
									Idx(OpLocalGet, 0).I32Const(1).Op(0x72).
									Op(0x6e). // i32.div_u
									Op(OpI64ExtendU)
	c.Idx(OpLocalGet, 2).Op(0x7c).Idx(OpLocalSet, 2) // i64.add
	//   i--; br_if
	c.Idx(OpLocalGet, 0).I32Const(1).Op(0x6b).Idx(OpLocalTee, 0)
	c.Idx(OpBrIf, 0)
	c.End()
	c.Idx(OpLocalGet, 2).End()
	f := mb.Func(tMain, []ValType{I32, I64, I64}, c.Bytes())
	mb.Export("main", f)
	return mb.Bytes()
}

// SampleMemFill writes a strided pattern over a 256KiB linear memory,
// then sums it back with mixed-width loads. Exercises the bounds-check +
// guarded-access path heavily.
func SampleMemFill(iters uint32) []byte {
	mb := NewModBuilder()
	mb.Memory(4) // 4 pages = 256KiB
	tMain := mb.Type(nil, []ValType{I64})
	const mask = 4*PageBytes - 4
	var c Code
	// l0: i (i32), l1: acc (i64), l2: addr (i32)
	c.I32Const(int32(iters)).Idx(OpLocalSet, 0)
	c.Loop(0x40)
	//   addr = (i * 2654435761) & mask
	c.Idx(OpLocalGet, 0).I32Const(-1640531527).Op(0x6c). // i32.mul (knuth)
								I32Const(int32(mask)).Op(0x71). // i32.and
								Idx(OpLocalTee, 2)
	//   mem[addr] = i*i (i32 store)
	c.Idx(OpLocalGet, 0).Idx(OpLocalGet, 0).Op(0x6c).Mem(OpI32Store, 2, 0)
	//   acc += load8_u(addr) + load16_u(addr ^ 2) + i64(load(addr))
	c.Idx(OpLocalGet, 2).Mem(OpI32Load8U, 0, 0)
	c.Idx(OpLocalGet, 2).I32Const(2).Op(0x73).Mem(OpI32Load16U, 1, 0).Op(0x6a)
	c.Op(OpI64ExtendU)
	c.Idx(OpLocalGet, 2).Mem(OpI64Load32S, 2, 0).Op(0x7c)
	c.Idx(OpLocalGet, 1).Op(0x7c).Idx(OpLocalSet, 1)
	//   i--; br_if
	c.Idx(OpLocalGet, 0).I32Const(1).Op(0x6b).Idx(OpLocalTee, 0)
	c.Idx(OpBrIf, 0)
	c.End()
	c.Idx(OpLocalGet, 1).End()
	f := mb.Func(tMain, []ValType{I32, I64, I32}, c.Bytes())
	mb.Export("main", f)
	return mb.Bytes()
}

// SampleCalls combines recursive direct calls (memoized Fibonacci over
// linear memory) with an indirect-dispatch loop through a funcref table —
// the "loop + memory traffic + calls" acceptance module.
func SampleCalls(iters uint32) []byte {
	mb := NewModBuilder()
	mb.Memory(1)
	tMain := mb.Type(nil, []ValType{I64})
	tUn := mb.Type([]ValType{I32}, []ValType{I32})
	tBin := mb.Type([]ValType{I32, I32}, []ValType{I32})

	// fib(n): memoized in memory at 8*n (0 = unset, stored value+1).
	var fib Code
	fib.Idx(OpLocalGet, 0).I32Const(2).Op(0x48) // i32.lt_s
	fib.If(byte(I32)).Idx(OpLocalGet, 0)
	fib.Op(OpElse)
	fib.Idx(OpLocalGet, 0).I32Const(3).Op(0x74).Mem(OpI32Load, 2, 0).Idx(OpLocalTee, 1)
	fib.If(byte(I32)).Idx(OpLocalGet, 1).I32Const(1).Op(0x6b)
	fib.Op(OpElse)
	fib.Idx(OpLocalGet, 0).I32Const(1).Op(0x6b).Idx(OpCall, 0)
	fib.Idx(OpLocalGet, 0).I32Const(2).Op(0x6b).Idx(OpCall, 0)
	fib.Op(0x6a).Idx(OpLocalTee, 1).Op(OpDrop)
	fib.Idx(OpLocalGet, 0).I32Const(3).Op(0x74)
	fib.Idx(OpLocalGet, 1).I32Const(1).Op(0x6a).Mem(OpI32Store, 2, 0)
	fib.Idx(OpLocalGet, 1)
	fib.End() // inner if
	fib.End() // outer if
	fib.End()
	fibF := mb.Func(tUn, []ValType{I32}, fib.Bytes())

	// Three binary ops dispatched indirectly.
	var add, mul, xor Code
	add.Idx(OpLocalGet, 0).Idx(OpLocalGet, 1).Op(0x6a).End()
	mul.Idx(OpLocalGet, 0).Idx(OpLocalGet, 1).Op(0x6c).End()
	xor.Idx(OpLocalGet, 0).Idx(OpLocalGet, 1).Op(0x73).End()
	addF := mb.Func(tBin, nil, add.Bytes())
	mulF := mb.Func(tBin, nil, mul.Bytes())
	xorF := mb.Func(tBin, nil, xor.Bytes())

	// main: acc = fib(24); then iters rounds of acc = op[i%3](acc, i).
	var c Code
	// l0: i (i32), l1: acc (i32)
	c.I32Const(24).Idx(OpCall, fibF).Idx(OpLocalSet, 1)
	c.I32Const(int32(iters)).Idx(OpLocalSet, 0)
	c.Loop(0x40)
	c.Idx(OpLocalGet, 1).Idx(OpLocalGet, 0)
	c.Idx(OpLocalGet, 0).I32Const(3).Op(0x70) // i32.rem_u
	c.CallIndirect(tBin)
	c.Idx(OpLocalSet, 1)
	c.Idx(OpLocalGet, 0).I32Const(1).Op(0x6b).Idx(OpLocalTee, 0)
	c.Idx(OpBrIf, 0)
	c.End()
	c.Idx(OpLocalGet, 1).Op(OpI64ExtendU).End()
	mainF := mb.Func(tMain, []ValType{I32, I32}, c.Bytes())

	mb.Table(3)
	mb.Elem(0, addF, mulF, xorF)
	mb.Export("main", mainF)
	return mb.Bytes()
}

// SampleWorkload names one benchmark workload.
type SampleWorkload struct {
	Name  string
	Build func(iters uint32) []byte
	Iters uint32 // default iteration count at scale 1.0
}

// SampleWorkloads returns the standard three-workload benchmark set.
func SampleWorkloads() []SampleWorkload {
	return []SampleWorkload{
		{Name: "wasm-arith", Build: SampleArithLoop, Iters: 60000},
		{Name: "wasm-memfill", Build: SampleMemFill, Iters: 40000},
		{Name: "wasm-calls", Build: SampleCalls, Iters: 50000},
	}
}
