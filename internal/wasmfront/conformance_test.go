package wasmfront

import (
	"encoding/binary"
	"testing"

	"lfi/internal/core"
	"lfi/internal/lfirt"
	"lfi/internal/progs"
)

// The differential conformance suite: every program runs through the
// in-package reference interpreter AND the full translate → rewrite →
// verify → load → emulate path at O0/O1/O2, asserting identical results
// and identical traps. This is the fastdiff pattern from internal/emu
// applied to the Wasm frontend.

// runSandboxed compiles wasm through the full pipeline at opts and runs
// it under a fresh verified runtime, returning exit status and stdout.
func runSandboxed(t *testing.T, wasm []byte, opts core.Options) (int, []byte) {
	t.Helper()
	asm, _, err := Translate(wasm)
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	res, err := progs.Build(asm, opts)
	if err != nil {
		t.Fatalf("build (opt %v): %v\nasm:\n%s", opts.Opt, err, asm)
	}
	rt := lfirt.New(lfirt.DefaultConfig())
	p, err := rt.Load(res.ELF)
	if err != nil {
		t.Fatalf("load (opt %v): %v", opts.Opt, err)
	}
	status, err := rt.RunProc(p)
	if err != nil {
		t.Fatalf("run (opt %v): %v", opts.Opt, err)
	}
	return status, rt.Stdout()
}

// checkConformance runs wasm on the interpreter and on the sandbox at
// every opt level and requires identical outcomes.
func checkConformance(t *testing.T, wasm []byte) {
	t.Helper()
	m, err := Decode(wasm)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	want, wantTrap, err := NewInterp(m).Run()
	if err != nil {
		t.Fatalf("interp: %v", err)
	}
	for _, opt := range []core.OptLevel{core.O0, core.O1, core.O2} {
		status, out := runSandboxed(t, wasm, core.Options{Opt: opt})
		if wantTrap != TrapNone {
			if status != TrapExitStatus(wantTrap) {
				t.Errorf("opt %v: status %#x, want trap %v (%#x)", opt, status, wantTrap, TrapExitStatus(wantTrap))
			}
			continue
		}
		if status != 0 {
			gotTrap, _ := TrapFromStatus(status)
			t.Errorf("opt %v: trapped %v (status %#x), want result %#x", opt, gotTrap, status, want)
			continue
		}
		if len(out) != 8 {
			t.Errorf("opt %v: stdout %d bytes, want 8", opt, len(out))
			continue
		}
		if got := binary.LittleEndian.Uint64(out); got != want {
			t.Errorf("opt %v: result %#x, want %#x", opt, got, want)
		}
	}
}

// mainI32 wraps body (which must leave one i32 and End) in a module whose
// exported main extends it to the i64 checksum.
func mainI32(body *Code, build func(mb *ModBuilder)) []byte {
	mb := NewModBuilder()
	if build != nil {
		build(mb)
	}
	t := mb.Type(nil, []ValType{I64})
	code := append([]byte(nil), body.b[:len(body.b)-1]...) // strip End
	code = append(code, OpI64ExtendU, OpEnd)
	f := mb.Func(t, []ValType{I32, I32, I32, I64}, code)
	mb.Export("main", f)
	return mb.Bytes()
}

// mainI64 wraps a body leaving one i64.
func mainI64(body *Code, build func(mb *ModBuilder)) []byte {
	mb := NewModBuilder()
	if build != nil {
		build(mb)
	}
	t := mb.Type(nil, []ValType{I64})
	f := mb.Func(t, []ValType{I32, I32, I32, I64}, body.Bytes())
	mb.Export("main", f)
	return mb.Bytes()
}

func withMem(pages uint32) func(*ModBuilder) {
	return func(mb *ModBuilder) { mb.Memory(pages) }
}

func TestConformanceArith(t *testing.T) {
	const (
		iAdd, iSub, iMul = 0x6a, 0x6b, 0x6c
		iDivS, iDivU     = 0x6d, 0x6e
		iRemS, iRemU     = 0x6f, 0x70
		iAnd, iOr, iXor  = 0x71, 0x72, 0x73
		iShl, iShrS      = 0x74, 0x75
		iShrU            = 0x76
		iRotl, iRotr     = 0x77, 0x78
	)
	cases := []struct {
		name string
		body func() *Code
	}{
		{"basic-chain", func() *Code {
			var c Code
			return c.I32Const(1).I32Const(2).Op(iAdd).I32Const(3).Op(iMul).I32Const(4).Op(iSub).End()
		}},
		{"div-s-intmin-neg1", func() *Code { // must trap: overflow
			var c Code
			return c.I32Const(-0x80000000).I32Const(-1).Op(iDivS).End()
		}},
		{"div-s-intmin-1", func() *Code {
			var c Code
			return c.I32Const(-0x80000000).I32Const(1).Op(iDivS).End()
		}},
		{"div-s-zero", func() *Code { // must trap: div by zero
			var c Code
			return c.I32Const(7).I32Const(0).Op(iDivS).End()
		}},
		{"rem-s-intmin-neg1", func() *Code { // defined: 0
			var c Code
			return c.I32Const(-0x80000000).I32Const(-1).Op(iRemS).End()
		}},
		{"rem-u-zero", func() *Code { // must trap
			var c Code
			return c.I32Const(7).I32Const(0).Op(iRemU).End()
		}},
		{"div-u-wraparound", func() *Code {
			var c Code
			return c.I32Const(-1).I32Const(16).Op(iDivU).End() // 0xffffffff/16
		}},
		{"rem-s-negative", func() *Code {
			var c Code
			return c.I32Const(-7).I32Const(3).Op(iRemS).End() // -1 (u32 0xffffffff)
		}},
		{"shift-mod-32", func() *Code {
			var c Code
			return c.I32Const(1).I32Const(33).Op(iShl).End() // 1<<33 == 2 (mod 32)
		}},
		{"shr-s-sign", func() *Code {
			var c Code
			return c.I32Const(-16).I32Const(2).Op(iShrS).End()
		}},
		{"shr-u-high", func() *Code {
			var c Code
			return c.I32Const(-16).I32Const(2).Op(iShrU).End()
		}},
		{"rot-pair", func() *Code {
			var c Code
			return c.I32Const(0x12345678).I32Const(8).Op(iRotl).
				I32Const(0x12345678).I32Const(8).Op(iRotr).Op(iXor).End()
		}},
		{"rot-count-zero", func() *Code {
			var c Code
			return c.I32Const(0x12345678).I32Const(32).Op(iRotl).End()
		}},
		{"bitwise", func() *Code {
			var c Code
			return c.I32Const(0x0ff0).I32Const(0x1234).Op(iAnd).
				I32Const(0x4000).Op(iOr).I32Const(0x5555).Op(iXor).End()
		}},
		{"deep-stack-spill", func() *Code {
			var c Code
			for i := int32(1); i <= 12; i++ {
				c.I32Const(i * i)
			}
			for i := 0; i < 11; i++ {
				c.Op(iAdd)
			}
			return c.End()
		}},
		{"cmp-battery", func() *Code {
			var c Code
			c.I32Const(-5).I32Const(3).Op(0x48) // lt_s = 1
			c.I32Const(-5).I32Const(3).Op(0x49) // lt_u = 0
			c.Op(iAdd)
			c.I32Const(7).I32Const(7).Op(0x4d) // le_u = 1
			c.Op(iAdd)
			c.I32Const(-1).I32Const(0).Op(0x4b) // gt_u = 1
			c.Op(iAdd)
			c.I32Const(4).Op(OpI32Eqz) // 0
			c.Op(iAdd)
			c.I32Const(0).Op(OpI32Eqz) // 1
			c.Op(iAdd)
			return c.End()
		}},
		{"select", func() *Code {
			var c Code
			c.I32Const(111).I32Const(222).I32Const(1).Op(OpSelect)
			c.I32Const(333).I32Const(444).I32Const(0).Op(OpSelect)
			return c.Op(iAdd).End()
		}},
		{"unreachable", func() *Code {
			var c Code
			return c.Op(OpUnreachable).I32Const(1).End()
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			checkConformance(t, mainI32(tc.body(), nil))
		})
	}
}

func TestConformanceI64(t *testing.T) {
	cases := []struct {
		name string
		body func() *Code
	}{
		{"mul-add-large", func() *Code {
			var c Code
			return c.I64Const(0x123456789abcdef0).I64Const(-3).Op(0x7e).
				I64Const(0x1111111111111111).Op(0x7c).End()
		}},
		{"div-s-i64min-neg1", func() *Code { // trap
			var c Code
			return c.I64Const(-0x8000000000000000).I64Const(-1).Op(0x7f).End()
		}},
		{"rem-s-i64min-neg1", func() *Code { // defined 0
			var c Code
			return c.I64Const(-0x8000000000000000).I64Const(-1).Op(0x81).End()
		}},
		{"div-zero-i64", func() *Code {
			var c Code
			return c.I64Const(5).I64Const(0).Op(0x80).End()
		}},
		{"shift-rot-64", func() *Code {
			var c Code
			c.I64Const(1).I64Const(65).Op(0x86)                   // shl mod 64 = 2
			c.I64Const(-0x8000000000000000).I64Const(63).Op(0x87) // shr_s = -1
			c.I64Const(0x00ff00ff00ff00ff).I64Const(16).Op(0x89)  // rotl
			c.Op(0x85)                                            // xor
			c.Op(0x7c)                                            // add
			return c.End()
		}},
		{"wrap-extend", func() *Code {
			var c Code
			c.I64Const(0x1_0000_0005).Op(OpI32WrapI64).Op(OpI64ExtendU) // 5
			c.I32Const(-0x80000000).Op(OpI64ExtendS)                    // sign-extends
			c.Op(0x7c)
			return c.End()
		}},
		{"extend-u-zero-high", func() *Code {
			var c Code
			return c.I32Const(-1).Op(OpI64ExtendU).End() // 0xffffffff
		}},
		{"cmp-i64", func() *Code {
			var c Code
			c.I64Const(-1).I64Const(1).Op(0x53).Op(OpI64ExtendU) // lt_s = 1
			c.I64Const(-1).I64Const(1).Op(0x54).Op(OpI64ExtendU) // lt_u = 0
			c.Op(0x7c)
			c.I64Const(9).Op(OpI64Eqz).Op(OpI64ExtendU).Op(0x7c)
			return c.End()
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			checkConformance(t, mainI64(tc.body(), nil))
		})
	}
}

func TestConformanceControl(t *testing.T) {
	cases := []struct {
		name string
		wasm []byte
	}{
		{"loop-sum", mainI32(func() *Code {
			var c Code
			c.I32Const(10).Idx(OpLocalSet, 0)
			c.Loop(0x40)
			c.Idx(OpLocalGet, 1).Idx(OpLocalGet, 0).Op(0x6a).Idx(OpLocalSet, 1)
			c.Idx(OpLocalGet, 0).I32Const(1).Op(0x6b).Idx(OpLocalTee, 0)
			c.Idx(OpBrIf, 0)
			c.End()
			return c.Idx(OpLocalGet, 1).End()
		}(), nil)},
		{"block-result-br", mainI32(func() *Code {
			var c Code
			c.Block(byte(I32))
			c.I32Const(42).Idx(OpBr, 0)
			c.I32Const(7) // dead
			c.End()
			return c.End()
		}(), nil)},
		{"nested-br-outer", mainI32(func() *Code {
			var c Code
			c.Block(byte(I32))
			c.Block(0x40)
			c.I32Const(5).Idx(OpBr, 1)
			c.End()
			c.I32Const(9)
			c.End()
			return c.End()
		}(), nil)},
		{"if-else-result", mainI32(func() *Code {
			var c Code
			c.I32Const(3).I32Const(2).Op(0x4a) // gt_s → 1
			c.If(byte(I32)).I32Const(100).Op(OpElse).I32Const(200).End()
			return c.End()
		}(), nil)},
		{"if-no-else", mainI32(func() *Code {
			var c Code
			c.I32Const(0).Idx(OpLocalSet, 0)
			c.I32Const(1).If(0x40).I32Const(77).Idx(OpLocalSet, 0).End()
			c.I32Const(0).If(0x40).I32Const(88).Idx(OpLocalSet, 0).End()
			return c.Idx(OpLocalGet, 0).End()
		}(), nil)},
		{"early-return", mainI64(func() *Code {
			var c Code
			c.I32Const(1).If(0x40).I64Const(31).Op(OpReturn).End()
			return c.I64Const(99).End()
		}(), nil)},
		{"br-table-cases", mainI64(func() *Code {
			// Sum f(i) for i in 5..0 where f dispatches through br_table:
			// index 0/1/2 → 10/20/30, everything else → default 99.
			var c Code
			c.I32Const(6).Idx(OpLocalSet, 0) // countdown 6..1, idx = l0-1
			c.Loop(0x40)
			c.I32Const(99).Idx(OpLocalSet, 1) // default case value
			c.Block(0x40)                     // done
			c.Block(0x40).Block(0x40).Block(0x40)
			c.Idx(OpLocalGet, 0).I32Const(1).Op(0x6b)
			c.BrTable([]uint32{0, 1, 2}, 3)
			c.End() // case 0
			c.I32Const(10).Idx(OpLocalSet, 1).Idx(OpBr, 2)
			c.End() // case 1
			c.I32Const(20).Idx(OpLocalSet, 1).Idx(OpBr, 1)
			c.End() // case 2
			c.I32Const(30).Idx(OpLocalSet, 1)
			c.End() // done
			c.Idx(OpLocalGet, 1).Op(OpI64ExtendU)
			c.Idx(OpLocalGet, 3).Op(0x7c).Idx(OpLocalSet, 3)
			c.Idx(OpLocalGet, 0).I32Const(1).Op(0x6b).Idx(OpLocalTee, 0)
			c.Idx(OpBrIf, 0)
			c.End()
			return c.Idx(OpLocalGet, 3).End()
		}(), nil)},
		{"br-table-negative-index", mainI32(func() *Code {
			var c Code
			c.Block(byte(I32))
			c.Block(0x40)
			c.I32Const(-1).BrTable([]uint32{0}, 0) // u32 huge → default (same label)
			c.End()
			c.I32Const(64).Idx(OpBr, 0)
			c.End()
			return c.End()
		}(), nil)},
		{"br-if-value-preserved", mainI32(func() *Code {
			var c Code
			c.Block(byte(I32))
			c.I32Const(5) // block result candidate
			c.I32Const(1).Idx(OpBrIf, 0)
			c.I32Const(3).Op(0x6a)
			c.End()
			return c.End()
		}(), nil)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			checkConformance(t, tc.wasm)
		})
	}
}

func TestConformanceMemory(t *testing.T) {
	const memBytes = PageBytes // 1 page in all cases below
	cases := []struct {
		name string
		body func() *Code
	}{
		{"roundtrip-i32", func() *Code {
			var c Code
			c.I32Const(64).I32Const(-123456789).Mem(OpI32Store, 2, 0)
			return c.I32Const(64).Mem(OpI32Load, 2, 0).End()
		}},
		{"subword-sign", func() *Code {
			var c Code
			c.I32Const(0).I32Const(0x80).Mem(OpI32Store8, 0, 0)
			c.I32Const(0).Mem(OpI32Load8S, 0, 0)          // -128
			c.I32Const(0).Mem(OpI32Load8U, 0, 0).Op(0x6a) // +128
			return c.End()
		}},
		{"load16-mix", func() *Code {
			var c Code
			c.I32Const(8).I32Const(-2).Mem(OpI32Store16, 1, 0)
			c.I32Const(8).Mem(OpI32Load16S, 1, 0)
			c.I32Const(8).Mem(OpI32Load16U, 1, 0).Op(0x73)
			return c.End()
		}},
		{"offset-immediate", func() *Code {
			var c Code
			c.I32Const(100).I32Const(7777).Mem(OpI32Store, 2, 28)
			return c.I32Const(96).Mem(OpI32Load, 2, 32).End()
		}},
		{"oob-load-at-size", func() *Code { // memBytes-4 is the last valid i32 addr
			var c Code
			return c.I32Const(int32(memBytes-3)).Mem(OpI32Load, 2, 0).End()
		}},
		{"in-bounds-last-word", func() *Code {
			var c Code
			c.I32Const(int32(memBytes-4)).I32Const(11).Mem(OpI32Store, 2, 0)
			return c.I32Const(int32(memBytes-4)).Mem(OpI32Load, 2, 0).End()
		}},
		{"oob-store-one-past", func() *Code {
			var c Code
			c.I32Const(int32(memBytes)).I32Const(1).Mem(OpI32Store8, 0, 0)
			return c.I32Const(0).End()
		}},
		{"in-bounds-last-byte", func() *Code {
			var c Code
			c.I32Const(int32(memBytes-1)).I32Const(0xab).Mem(OpI32Store8, 0, 0)
			return c.I32Const(int32(memBytes-1)).Mem(OpI32Load8U, 0, 0).End()
		}},
		{"oob-huge-offset", func() *Code {
			var c Code
			return c.I32Const(4).Mem(OpI32Load, 2, 0x7fffffff).End()
		}},
		{"oob-addr-plus-offset-overflow", func() *Code {
			var c Code
			return c.I32Const(-4).Mem(OpI32Load, 2, 8).End() // 0xfffffffc + 8
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			checkConformance(t, mainI32(tc.body(), withMem(1)))
		})
	}

	t.Run("i64-widths", func(t *testing.T) {
		var c Code
		c.I32Const(16).I64Const(-0x1122334455667788).Mem(OpI64Store, 3, 0)
		c.I32Const(16).Mem(OpI64Load, 3, 0)
		c.I32Const(16).Mem(OpI64Load32U, 2, 0).Op(0x7c)
		c.I32Const(16).Mem(OpI64Load32S, 2, 0).Op(0x85)
		c.I32Const(20).Mem(OpI64Load8S, 0, 0).Op(0x7c)
		c.I32Const(40).I64Const(-2).Mem(OpI64Store32, 2, 0)
		c.I32Const(40).Mem(OpI64Load32U, 2, 0).Op(0x85)
		checkConformance(t, mainI64(c.End(), withMem(1)))
	})

	t.Run("data-segment", func(t *testing.T) {
		var c Code
		c.I32Const(3).Mem(OpI32Load8U, 0, 0)
		c.I32Const(0).Mem(OpI32Load, 2, 0).Op(0x6a)
		checkConformance(t, mainI32(c.End(), func(mb *ModBuilder) {
			mb.Memory(1)
			mb.Data(0, []byte{1, 2, 3, 4, 5, 6})
			mb.Data(100, []byte{0xff})
		}))
	})
}

func TestConformanceCalls(t *testing.T) {
	t.Run("fib-recursive", func(t *testing.T) {
		mb := NewModBuilder()
		tMain := mb.Type(nil, []ValType{I64})
		tUn := mb.Type([]ValType{I32}, []ValType{I32})
		var fib Code
		fib.Idx(OpLocalGet, 0).I32Const(2).Op(0x48)
		fib.If(byte(I32)).Idx(OpLocalGet, 0)
		fib.Op(OpElse)
		fib.Idx(OpLocalGet, 0).I32Const(1).Op(0x6b).Idx(OpCall, 0)
		fib.Idx(OpLocalGet, 0).I32Const(2).Op(0x6b).Idx(OpCall, 0)
		fib.Op(0x6a)
		fib.End()
		fib.End()
		fibF := mb.Func(tUn, nil, fib.Bytes())
		var c Code
		c.I32Const(15).Idx(OpCall, fibF).Op(OpI64ExtendU).End()
		mainF := mb.Func(tMain, nil, c.Bytes())
		mb.Export("main", mainF)
		checkConformance(t, mb.Bytes())
	})

	t.Run("multi-arg-args-on-stack", func(t *testing.T) {
		mb := NewModBuilder()
		tMain := mb.Type(nil, []ValType{I64})
		t6 := mb.Type([]ValType{I32, I32, I32, I32, I32, I32}, []ValType{I32})
		var h Code
		h.Idx(OpLocalGet, 0).Idx(OpLocalGet, 1).Op(0x6b)
		h.Idx(OpLocalGet, 2).Op(0x6c)
		h.Idx(OpLocalGet, 3).Op(0x6a)
		h.Idx(OpLocalGet, 4).Op(0x73)
		h.Idx(OpLocalGet, 5).Op(0x6b)
		h.End()
		hF := mb.Func(t6, nil, h.Bytes())
		var c Code
		// Push padding so the call's arguments straddle the spill boundary.
		c.I32Const(1000).I32Const(2000).I32Const(3000)
		c.I32Const(9).I32Const(4).I32Const(7).I32Const(11).I32Const(5).I32Const(3)
		c.Idx(OpCall, hF)
		c.Op(0x6a).Op(0x6a).Op(0x6a)
		c.Op(OpI64ExtendU).End()
		mainF := mb.Func(tMain, nil, c.Bytes())
		mb.Export("main", mainF)
		checkConformance(t, mb.Bytes())
	})

	t.Run("indirect-dispatch", func(t *testing.T) {
		checkConformance(t, SampleCalls(50))
	})

	t.Run("indirect-type-mismatch", func(t *testing.T) {
		mb := NewModBuilder()
		tMain := mb.Type(nil, []ValType{I64})
		tUn := mb.Type([]ValType{I32}, []ValType{I32})
		tBin := mb.Type([]ValType{I32, I32}, []ValType{I32})
		var un Code
		un.Idx(OpLocalGet, 0).End()
		unF := mb.Func(tUn, nil, un.Bytes())
		var c Code
		c.I32Const(1).I32Const(2).I32Const(0).CallIndirect(tBin) // entry 0 has type tUn
		c.Op(OpI64ExtendU).End()
		mainF := mb.Func(tMain, nil, c.Bytes())
		mb.Table(2)
		mb.Elem(0, unF)
		mb.Export("main", mainF)
		checkConformance(t, mb.Bytes())
	})

	t.Run("indirect-null-entry", func(t *testing.T) {
		mb := NewModBuilder()
		tMain := mb.Type(nil, []ValType{I64})
		tUn := mb.Type([]ValType{I32}, []ValType{I32})
		var un Code
		un.Idx(OpLocalGet, 0).End()
		unF := mb.Func(tUn, nil, un.Bytes())
		var c Code
		c.I32Const(5).I32Const(1).CallIndirect(tUn) // entry 1 is null
		c.Op(OpI64ExtendU).End()
		mainF := mb.Func(tMain, nil, c.Bytes())
		mb.Table(2)
		mb.Elem(0, unF)
		mb.Export("main", mainF)
		checkConformance(t, mb.Bytes())
	})

	t.Run("indirect-high-type-index", func(t *testing.T) {
		// Regression: with a type index >= 4095 the signature tag ti+1 no
		// longer fits a cmp immediate and must be materialized in a
		// register that is not x17, which still holds the table-entry
		// address for the target load.
		mb := NewModBuilder()
		tMain := mb.Type(nil, []ValType{I64})
		for i := 0; i < 4096; i++ {
			params := make([]ValType, 12)
			for j := range params {
				if i&(1<<j) != 0 {
					params[j] = I64
				} else {
					params[j] = I32
				}
			}
			mb.Type(params, nil)
		}
		tUn := mb.Type([]ValType{I32}, []ValType{I32})
		if tUn <= 4095 {
			t.Fatalf("type index %d does not exercise the wide-immediate path", tUn)
		}
		var un Code
		un.Idx(OpLocalGet, 0).I32Const(2).Op(0x6c)
		un.End()
		unF := mb.Func(tUn, nil, un.Bytes())
		var c Code
		c.I32Const(21).I32Const(0).CallIndirect(tUn)
		c.Op(OpI64ExtendU).End()
		mainF := mb.Func(tMain, nil, c.Bytes())
		mb.Table(2)
		mb.Elem(0, unF)
		mb.Export("main", mainF)
		checkConformance(t, mb.Bytes())
	})

	t.Run("indirect-out-of-bounds", func(t *testing.T) {
		mb := NewModBuilder()
		tMain := mb.Type(nil, []ValType{I64})
		tUn := mb.Type([]ValType{I32}, []ValType{I32})
		var un Code
		un.Idx(OpLocalGet, 0).End()
		unF := mb.Func(tUn, nil, un.Bytes())
		var c Code
		c.I32Const(5).I32Const(99).CallIndirect(tUn)
		c.Op(OpI64ExtendU).End()
		mainF := mb.Func(tMain, nil, c.Bytes())
		mb.Table(2)
		mb.Elem(0, unF)
		mb.Export("main", mainF)
		checkConformance(t, mb.Bytes())
	})
}

func TestConformanceGlobals(t *testing.T) {
	mb := NewModBuilder()
	tMain := mb.Type(nil, []ValType{I64})
	g0 := mb.Global(I32, true, 5)
	g1 := mb.Global(I64, true, -0x100000000)
	g2 := mb.Global(I32, false, 1000)
	var c Code
	c.Idx(OpGlobalGet, g0).I32Const(37).Op(0x6a).Idx(OpGlobalSet, g0)
	c.Idx(OpGlobalGet, g1).I64Const(3).Op(0x7e).Idx(OpGlobalSet, g1)
	c.Idx(OpGlobalGet, g0).Idx(OpGlobalGet, g2).Op(0x6a).Op(OpI64ExtendU)
	c.Idx(OpGlobalGet, g1).Op(0x7c)
	c.End()
	mainF := mb.Func(tMain, nil, c.Bytes())
	mb.Export("main", mainF)
	checkConformance(t, mb.Bytes())
}

// TestConformanceSamples runs the three benchmark workloads (scaled
// down) through the full differential check.
func TestConformanceSamples(t *testing.T) {
	for _, w := range SampleWorkloads() {
		t.Run(w.Name, func(t *testing.T) {
			checkConformance(t, w.Build(200))
		})
	}
}
