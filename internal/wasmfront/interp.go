package wasmfront

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Interp is the reference interpreter the conformance suite diffs the
// translated code against. It executes the same decoded []Instr the
// translator consumes, with value semantics chosen to match the
// translation exactly: every value is a uint64, i32 values zero-extended.
type Interp struct {
	m       *Module
	mem     []byte
	globals []uint64
	table   []tableEntry

	// Fuel bounds total instructions executed; MaxCallDepth bounds
	// recursion. Both produce errors, not traps: the translated code has
	// no such limits, so the conformance harness sizes programs to fit.
	Fuel         int64
	MaxCallDepth int

	ends  map[int]map[int]int // per function: block/loop/if ip -> end ip
	elses map[int]map[int]int // per function: if ip -> else ip
	depth int
}

type tableEntry struct {
	fn  uint32
	tag uint32 // type index + 1; 0 = null
}

// NewInterp instantiates the module: zeroed linear memory with data
// segments applied, initialized globals, and the populated call table.
func NewInterp(m *Module) *Interp {
	it := &Interp{
		m:            m,
		mem:          make([]byte, m.MemBytes()),
		globals:      make([]uint64, len(m.Globals)),
		table:        make([]tableEntry, m.TableSize),
		Fuel:         100_000_000,
		MaxCallDepth: 4096,
		ends:         map[int]map[int]int{},
		elses:        map[int]map[int]int{},
	}
	for i, g := range m.Globals {
		it.globals[i] = uint64(g.Init)
	}
	for _, seg := range m.Data {
		copy(it.mem[seg.Offset:], seg.Bytes)
	}
	for _, seg := range m.Elems {
		for i, fi := range seg.Funcs {
			it.table[seg.Offset+uint32(i)] = tableEntry{fn: fi, tag: m.Funcs[fi].Type + 1}
		}
	}
	return it
}

// Run executes the module's entry function and returns its result (0 for
// a void entry) or the trap it raised. err reports resource exhaustion or
// a missing entry, never a Wasm-level fault.
func (it *Interp) Run() (result uint64, trap Trap, err error) {
	entry, err := it.m.EntryFunc()
	if err != nil {
		return 0, TrapNone, err
	}
	res, trap, err := it.invoke(uint32(entry), nil)
	if err != nil || trap != TrapNone {
		return 0, trap, err
	}
	if len(res) == 1 {
		return res[0], TrapNone, nil
	}
	return 0, TrapNone, nil
}

// matchCtrl precomputes the else/end indices for one function body.
func (it *Interp) matchCtrl(fi int) (map[int]int, map[int]int) {
	if e, ok := it.ends[fi]; ok {
		return e, it.elses[fi]
	}
	ends := map[int]int{}
	elses := map[int]int{}
	var stack []int
	body := it.m.Funcs[fi].Body
	for ip, in := range body {
		switch in.Op {
		case OpBlock, OpLoop, OpIf:
			stack = append(stack, ip)
		case OpElse:
			elses[stack[len(stack)-1]] = ip
		case OpEnd:
			if len(stack) > 0 {
				ends[stack[len(stack)-1]] = ip
				stack = stack[:len(stack)-1]
			}
		}
	}
	it.ends[fi] = ends
	it.elses[fi] = elses
	return ends, elses
}

type iframe struct {
	isLoop bool
	headIP int
	endIP  int
	height int
	arity  int
}

func (it *Interp) invoke(fi uint32, args []uint64) ([]uint64, Trap, error) {
	it.depth++
	defer func() { it.depth-- }()
	if it.depth > it.MaxCallDepth {
		return nil, TrapNone, fmt.Errorf("wasmfront: interpreter call depth exceeded")
	}
	fn := &it.m.Funcs[fi]
	ft := it.m.Types[fn.Type]
	locals := make([]uint64, len(ft.Params)+len(fn.Locals))
	copy(locals, args)
	ends, elses := it.matchCtrl(int(fi))
	body := fn.Body

	var stack []uint64
	var frames []iframe
	push := func(v uint64) { stack = append(stack, v) }
	pop := func() uint64 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return v
	}
	bool32 := func(b bool) {
		if b {
			push(1)
		} else {
			push(0)
		}
	}

	ip := 0
	for ip < len(body) {
		if it.Fuel--; it.Fuel < 0 {
			return nil, TrapNone, fmt.Errorf("wasmfront: interpreter fuel exhausted")
		}
		in := body[ip]
		next := ip + 1

		// branch transfers control to relative frame depth d.
		branch := func(d int) {
			fr := frames[len(frames)-1-d]
			arity := fr.arity
			if fr.isLoop {
				arity = 0 // a branch to a loop carries no values (MVP)
			}
			kept := append([]uint64(nil), stack[len(stack)-arity:]...)
			stack = append(stack[:fr.height], kept...)
			if fr.isLoop {
				frames = frames[:len(frames)-1-d]
				next = fr.headIP // re-executes OpLoop, which re-pushes the frame
			} else {
				frames = frames[:len(frames)-d]
				next = fr.endIP // OpEnd pops the frame
			}
		}

		switch in.Op {
		case OpNop:
		case OpUnreachable:
			return nil, TrapUnreachable, nil
		case OpBlock:
			frames = append(frames, iframe{
				headIP: ip, endIP: ends[ip], height: len(stack), arity: blockArity(in.Val),
			})
		case OpLoop:
			frames = append(frames, iframe{
				isLoop: true, headIP: ip, endIP: ends[ip], height: len(stack),
				arity: blockArity(in.Val),
			})
		case OpIf:
			cond := pop()
			frames = append(frames, iframe{
				headIP: ip, endIP: ends[ip], height: len(stack), arity: blockArity(in.Val),
			})
			if cond == 0 {
				if elseIP, ok := elses[ip]; ok {
					next = elseIP + 1
				} else {
					next = ends[ip]
				}
			}
		case OpElse:
			// Reached only by falling out of the then-arm: skip to end.
			next = frames[len(frames)-1].endIP
		case OpEnd:
			if len(frames) > 0 {
				frames = frames[:len(frames)-1]
			}
		case OpBr:
			branch(int(in.Val))
		case OpBrIf:
			if pop() != 0 {
				branch(int(in.Val))
			}
		case OpBrTable:
			idx := uint32(pop())
			n := len(in.Targets)
			if int(idx) < n-1 {
				branch(int(in.Targets[idx]))
			} else {
				branch(int(in.Targets[n-1]))
			}
		case OpReturn:
			return stack[len(stack)-len(ft.Results):], TrapNone, nil

		case OpCall:
			res, trap, err := it.callFunc(uint32(in.Val), &stack)
			if trap != TrapNone || err != nil {
				return nil, trap, err
			}
			stack = append(stack, res...)
		case OpCallIndirect:
			idx := uint32(pop())
			if int(idx) >= len(it.table) {
				return nil, TrapBadIndirect, nil
			}
			ent := it.table[idx]
			if ent.tag == 0 {
				return nil, TrapBadIndirect, nil
			}
			if ent.tag != uint32(in.Val)+1 {
				return nil, TrapSigMismatch, nil
			}
			res, trap, err := it.callFunc(ent.fn, &stack)
			if trap != TrapNone || err != nil {
				return nil, trap, err
			}
			stack = append(stack, res...)

		case OpDrop:
			pop()
		case OpSelect:
			c, b, a := pop(), pop(), pop()
			if c != 0 {
				push(a)
			} else {
				push(b)
			}

		case OpLocalGet:
			push(locals[in.Val])
		case OpLocalSet:
			locals[in.Val] = pop()
		case OpLocalTee:
			locals[in.Val] = stack[len(stack)-1]
		case OpGlobalGet:
			push(it.globals[in.Val])
		case OpGlobalSet:
			it.globals[in.Val] = pop()

		case OpI32Const:
			push(uint64(uint32(in.Val)))
		case OpI64Const:
			push(uint64(in.Val))

		case OpI32Eqz:
			bool32(uint32(pop()) == 0)
		case OpI64Eqz:
			bool32(pop() == 0)
		case OpI32WrapI64:
			push(uint64(uint32(pop())))
		case OpI64ExtendS:
			push(uint64(int64(int32(uint32(pop())))))
		case OpI64ExtendU:
			// already zero-extended

		default:
			switch {
			case isMemOp(in.Op):
				trap := it.memOp(in, pop, push)
				if trap != TrapNone {
					return nil, trap, nil
				}
			case isCmpOp(in.Op):
				b, a := pop(), pop()
				bool32(evalCmp(in.Op, a, b))
			case isBinOp(in.Op):
				b, a := pop(), pop()
				v, trap := evalBin(in.Op, a, b)
				if trap != TrapNone {
					return nil, trap, nil
				}
				push(v)
			default:
				return nil, TrapNone, fmt.Errorf("wasmfront: interpreter: unsupported opcode %#x", in.Op)
			}
		}
		ip = next
	}
	return stack[len(stack)-len(ft.Results):], TrapNone, nil
}

// callFunc pops arguments for fi off the caller's stack and invokes it.
func (it *Interp) callFunc(fi uint32, stack *[]uint64) ([]uint64, Trap, error) {
	ft := it.m.Types[it.m.Funcs[fi].Type]
	n := len(ft.Params)
	args := (*stack)[len(*stack)-n:]
	res, trap, err := it.invoke(fi, args)
	if trap != TrapNone || err != nil {
		return nil, trap, err
	}
	*stack = (*stack)[:len(*stack)-n]
	return append([]uint64(nil), res...), TrapNone, nil
}

func (it *Interp) memOp(in Instr, pop func() uint64, push func(uint64)) Trap {
	size := uint64(MemOpSize(in.Op))
	if IsStoreOp(in.Op) {
		val := pop()
		addr := uint64(uint32(pop())) + uint64(in.Off)
		if addr+size > uint64(len(it.mem)) {
			return TrapOOB
		}
		b := it.mem[addr:]
		switch in.Op {
		case OpI32Store8, OpI64Store8:
			b[0] = byte(val)
		case OpI32Store16, OpI64Store16:
			binary.LittleEndian.PutUint16(b, uint16(val))
		case OpI32Store, OpI64Store32:
			binary.LittleEndian.PutUint32(b, uint32(val))
		case OpI64Store:
			binary.LittleEndian.PutUint64(b, val)
		}
		return TrapNone
	}
	addr := uint64(uint32(pop())) + uint64(in.Off)
	if addr+size > uint64(len(it.mem)) {
		return TrapOOB
	}
	b := it.mem[addr:]
	var v uint64
	switch in.Op {
	case OpI32Load:
		v = uint64(binary.LittleEndian.Uint32(b))
	case OpI32Load8S:
		v = uint64(uint32(int32(int8(b[0]))))
	case OpI32Load8U, OpI64Load8U:
		v = uint64(b[0])
	case OpI32Load16S:
		v = uint64(uint32(int32(int16(binary.LittleEndian.Uint16(b)))))
	case OpI32Load16U, OpI64Load16U:
		v = uint64(binary.LittleEndian.Uint16(b))
	case OpI64Load:
		v = binary.LittleEndian.Uint64(b)
	case OpI64Load8S:
		v = uint64(int64(int8(b[0])))
	case OpI64Load16S:
		v = uint64(int64(int16(binary.LittleEndian.Uint16(b))))
	case OpI64Load32S:
		v = uint64(int64(int32(binary.LittleEndian.Uint32(b))))
	case OpI64Load32U:
		v = uint64(binary.LittleEndian.Uint32(b))
	}
	push(v)
	return TrapNone
}

func evalCmp(op byte, a, b uint64) bool {
	if op >= 0x51 { // i64 family
		sa, sb := int64(a), int64(b)
		switch op {
		case 0x51:
			return a == b
		case 0x52:
			return a != b
		case 0x53:
			return sa < sb
		case 0x54:
			return a < b
		case 0x55:
			return sa > sb
		case 0x56:
			return a > b
		case 0x57:
			return sa <= sb
		case 0x58:
			return a <= b
		case 0x59:
			return sa >= sb
		case 0x5a:
			return a >= b
		}
		return false
	}
	ua, ub := uint32(a), uint32(b)
	sa, sb := int32(ua), int32(ub)
	switch op {
	case 0x46:
		return ua == ub
	case 0x47:
		return ua != ub
	case 0x48:
		return sa < sb
	case 0x49:
		return ua < ub
	case 0x4a:
		return sa > sb
	case 0x4b:
		return ua > ub
	case 0x4c:
		return sa <= sb
	case 0x4d:
		return ua <= ub
	case 0x4e:
		return sa >= sb
	case 0x4f:
		return ua >= ub
	}
	return false
}

func evalBin(op byte, a, b uint64) (uint64, Trap) {
	if op >= 0x7c { // i64 family
		sa, sb := int64(a), int64(b)
		switch op - 0x7c {
		case binAdd:
			return a + b, TrapNone
		case binSub:
			return a - b, TrapNone
		case binMul:
			return a * b, TrapNone
		case binDivS:
			if b == 0 {
				return 0, TrapDivZero
			}
			if sa == -1<<63 && sb == -1 {
				return 0, TrapOverflow
			}
			return uint64(sa / sb), TrapNone
		case binDivU:
			if b == 0 {
				return 0, TrapDivZero
			}
			return a / b, TrapNone
		case binRemS:
			if b == 0 {
				return 0, TrapDivZero
			}
			if sa == -1<<63 && sb == -1 {
				return 0, TrapNone
			}
			return uint64(sa % sb), TrapNone
		case binRemU:
			if b == 0 {
				return 0, TrapDivZero
			}
			return a % b, TrapNone
		case binAnd:
			return a & b, TrapNone
		case binOr:
			return a | b, TrapNone
		case binXor:
			return a ^ b, TrapNone
		case binShl:
			return a << (b & 63), TrapNone
		case binShrS:
			return uint64(sa >> (b & 63)), TrapNone
		case binShrU:
			return a >> (b & 63), TrapNone
		case binRotl:
			return bits.RotateLeft64(a, int(b&63)), TrapNone
		case binRotr:
			return bits.RotateLeft64(a, -int(b&63)), TrapNone
		}
		return 0, TrapNone
	}
	ua, ub := uint32(a), uint32(b)
	sa, sb := int32(ua), int32(ub)
	r32 := func(v uint32) (uint64, Trap) { return uint64(v), TrapNone }
	switch op - 0x6a {
	case binAdd:
		return r32(ua + ub)
	case binSub:
		return r32(ua - ub)
	case binMul:
		return r32(ua * ub)
	case binDivS:
		if ub == 0 {
			return 0, TrapDivZero
		}
		if sa == -1<<31 && sb == -1 {
			return 0, TrapOverflow
		}
		return r32(uint32(sa / sb))
	case binDivU:
		if ub == 0 {
			return 0, TrapDivZero
		}
		return r32(ua / ub)
	case binRemS:
		if ub == 0 {
			return 0, TrapDivZero
		}
		if sa == -1<<31 && sb == -1 {
			return 0, TrapNone
		}
		return r32(uint32(sa % sb))
	case binRemU:
		if ub == 0 {
			return 0, TrapDivZero
		}
		return r32(ua % ub)
	case binAnd:
		return r32(ua & ub)
	case binOr:
		return r32(ua | ub)
	case binXor:
		return r32(ua ^ ub)
	case binShl:
		return r32(ua << (ub & 31))
	case binShrS:
		return r32(uint32(sa >> (ub & 31)))
	case binShrU:
		return r32(ua >> (ub & 31))
	case binRotl:
		return r32(bits.RotateLeft32(ua, int(ub&31)))
	case binRotr:
		return r32(bits.RotateLeft32(ua, -int(ub&31)))
	}
	return 0, TrapNone
}
