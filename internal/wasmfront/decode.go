package wasmfront

import (
	"encoding/binary"
	"fmt"
)

// This file decodes a Wasm binary into the shared Module/Instr
// representation. The structural surface (sections parsed, leb128 rules,
// opcode set) deliberately mirrors wasmbase.ValidateModule: Translate
// runs the validator first, so anything that decodes here must have
// validated there, and the decoder may not be laxer anywhere. Features
// that are valid Wasm but outside the subset (imports, floats) surface
// as LimitError so callers can tell "invalid" from "unsupported".

type reader struct {
	b   []byte
	pos int
}

func (r *reader) errf(format string, args ...any) error {
	return &DecodeError{Offset: r.pos, Msg: fmt.Sprintf(format, args...)}
}

func (r *reader) byte() (byte, error) {
	if r.pos >= len(r.b) {
		return 0, r.errf("unexpected end")
	}
	v := r.b[r.pos]
	r.pos++
	return v, nil
}

// u32 decodes an unsigned leb128 u32. Bits at and above 32 must be zero.
func (r *reader) u32() (uint32, error) {
	var v uint32
	var shift uint
	for {
		b, err := r.byte()
		if err != nil {
			return 0, err
		}
		if shift == 28 && b&0x70 != 0 {
			return 0, r.errf("leb128 u32 overflow")
		}
		v |= uint32(b&0x7f) << shift
		if b&0x80 == 0 {
			return v, nil
		}
		shift += 7
		if shift >= 35 {
			return 0, r.errf("leb128 too long")
		}
	}
}

// s64 decodes a signed leb128 of up to 10 bytes.
func (r *reader) s64() (int64, error) {
	var v uint64
	var shift uint
	for i := 0; i < 10; i++ {
		b, err := r.byte()
		if err != nil {
			return 0, err
		}
		v |= uint64(b&0x7f) << shift
		shift += 7
		if b&0x80 == 0 {
			if shift < 64 && b&0x40 != 0 {
				v |= ^uint64(0) << shift
			}
			return int64(v), nil
		}
	}
	return 0, r.errf("leb128 too long")
}

func (r *reader) name() (string, error) {
	n, err := r.u32()
	if err != nil {
		return "", err
	}
	if r.pos+int(n) > len(r.b) {
		return "", r.errf("name overruns module")
	}
	s := string(r.b[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s, nil
}

func (r *reader) valtype() (ValType, error) {
	t, err := r.byte()
	if err != nil {
		return 0, err
	}
	switch ValType(t) {
	case I32, I64:
		return ValType(t), nil
	}
	return 0, r.errf("unsupported value type %#x", t)
}

// constExpr decodes an `i32.const`/`i64.const` initializer expression
// terminated by end, returning the value and the const's type.
func (r *reader) constExpr() (int64, ValType, error) {
	op, err := r.byte()
	if err != nil {
		return 0, 0, err
	}
	var t ValType
	switch op {
	case OpI32Const:
		t = I32
	case OpI64Const:
		t = I64
	default:
		return 0, 0, r.errf("unsupported init expression opcode %#x", op)
	}
	v, err := r.s64()
	if err != nil {
		return 0, 0, err
	}
	endOp, err := r.byte()
	if err != nil {
		return 0, 0, err
	}
	if endOp != OpEnd {
		return 0, 0, r.errf("init expression not terminated by end")
	}
	if t == I32 {
		v = int64(uint32(v)) // keep the zero-extended invariant
	}
	return v, t, nil
}

// Decode parses a Wasm binary into the supported-subset Module. The
// returned error is a *DecodeError for malformed input and a *LimitError
// for valid-but-unsupported features.
func Decode(b []byte) (*Module, error) {
	r := &reader{b: b}
	if len(b) < 8 || string(b[:4]) != "\x00asm" || binary.LittleEndian.Uint32(b[4:]) != 1 {
		return nil, &DecodeError{Msg: "bad magic or version"}
	}
	r.pos = 8

	m := &Module{Exports: map[string]uint32{}, Start: -1}
	var funcTypes []uint32
	sawCode := false

	for r.pos < len(b) {
		id, err := r.byte()
		if err != nil {
			return nil, err
		}
		size, err := r.u32()
		if err != nil {
			return nil, err
		}
		end := r.pos + int(size)
		if end > len(b) || end < r.pos {
			return nil, r.errf("section overruns module")
		}
		switch id {
		case 1:
			err = r.typeSection(m)
		case 2:
			err = r.importSection()
		case 3:
			err = r.funcSection(m, &funcTypes)
		case 4:
			err = r.tableSection(m)
		case 5:
			err = r.memorySection(m)
		case 6:
			err = r.globalSection(m)
		case 7:
			err = r.exportSection(m, funcTypes)
		case 8:
			err = r.startSection(m, funcTypes)
		case 9:
			err = r.elemSection(m, funcTypes)
		case 10:
			sawCode = true
			err = r.codeSection(m, funcTypes)
		case 11:
			err = r.dataSection(m)
		default:
			r.pos = end // custom/unknown sections are skipped structurally
		}
		if err != nil {
			return nil, err
		}
		if r.pos != end {
			return nil, r.errf("section size mismatch (section %d)", id)
		}
	}
	if len(funcTypes) > 0 && !sawCode {
		return nil, r.errf("missing code section")
	}
	return m, nil
}

func (r *reader) typeSection(m *Module) error {
	n, err := r.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		form, err := r.byte()
		if err != nil {
			return err
		}
		if form != 0x60 {
			return r.errf("bad functype form %#x", form)
		}
		var ft FuncType
		np, err := r.u32()
		if err != nil {
			return err
		}
		for j := uint32(0); j < np; j++ {
			t, err := r.valtype()
			if err != nil {
				return err
			}
			ft.Params = append(ft.Params, t)
		}
		nr, err := r.u32()
		if err != nil {
			return err
		}
		if nr > 1 {
			return r.errf("multi-value results unsupported")
		}
		for j := uint32(0); j < nr; j++ {
			t, err := r.valtype()
			if err != nil {
				return err
			}
			ft.Results = append(ft.Results, t)
		}
		m.Types = append(m.Types, ft)
	}
	return nil
}

func (r *reader) importSection() error {
	n, err := r.u32()
	if err != nil {
		return err
	}
	if n > 0 {
		return limitf("imports unsupported")
	}
	return nil
}

func (r *reader) funcSection(m *Module, funcTypes *[]uint32) error {
	n, err := r.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		ti, err := r.u32()
		if err != nil {
			return err
		}
		if int(ti) >= len(m.Types) {
			return r.errf("function type index %d out of range", ti)
		}
		*funcTypes = append(*funcTypes, ti)
	}
	return nil
}

func (r *reader) tableSection(m *Module) error {
	n, err := r.u32()
	if err != nil {
		return err
	}
	if n > 1 {
		return r.errf("at most one table")
	}
	for i := uint32(0); i < n; i++ {
		et, err := r.byte()
		if err != nil {
			return err
		}
		if et != 0x70 { // funcref
			return r.errf("unsupported table element type %#x", et)
		}
		min, _, err := r.limits()
		if err != nil {
			return err
		}
		m.TableSize = min
	}
	return nil
}

func (r *reader) limits() (min, max uint32, err error) {
	flag, err := r.byte()
	if err != nil {
		return 0, 0, err
	}
	if flag > 1 {
		return 0, 0, r.errf("bad limits flag %#x", flag)
	}
	min, err = r.u32()
	if err != nil {
		return 0, 0, err
	}
	max = min
	if flag == 1 {
		max, err = r.u32()
		if err != nil {
			return 0, 0, err
		}
		if max < min {
			return 0, 0, r.errf("limits max %d < min %d", max, min)
		}
	}
	return min, max, nil
}

func (r *reader) memorySection(m *Module) error {
	n, err := r.u32()
	if err != nil {
		return err
	}
	if n > 1 {
		return r.errf("at most one memory")
	}
	for i := uint32(0); i < n; i++ {
		min, _, err := r.limits()
		if err != nil {
			return err
		}
		if min > 1<<16 {
			return r.errf("memory min %d pages exceeds 4GiB", min)
		}
		m.MemPages = min
	}
	return nil
}

func (r *reader) globalSection(m *Module) error {
	n, err := r.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		t, err := r.valtype()
		if err != nil {
			return err
		}
		mut, err := r.byte()
		if err != nil {
			return err
		}
		if mut > 1 {
			return r.errf("bad global mutability %#x", mut)
		}
		v, vt, err := r.constExpr()
		if err != nil {
			return err
		}
		if vt != t {
			return r.errf("global init type %v != declared %v", vt, t)
		}
		m.Globals = append(m.Globals, Global{Type: t, Mut: mut == 1, Init: v})
	}
	return nil
}

func (r *reader) exportSection(m *Module, funcTypes []uint32) error {
	n, err := r.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		name, err := r.name()
		if err != nil {
			return err
		}
		kind, err := r.byte()
		if err != nil {
			return err
		}
		idx, err := r.u32()
		if err != nil {
			return err
		}
		switch kind {
		case 0:
			if int(idx) >= len(funcTypes) {
				return r.errf("export %q: function %d out of range", name, idx)
			}
			if _, dup := m.Exports[name]; dup {
				return r.errf("duplicate export %q", name)
			}
			m.Exports[name] = idx
		case 1, 2, 3: // table/memory/global exports are allowed and ignored
		default:
			return r.errf("bad export kind %#x", kind)
		}
	}
	return nil
}

func (r *reader) startSection(m *Module, funcTypes []uint32) error {
	idx, err := r.u32()
	if err != nil {
		return err
	}
	if int(idx) >= len(funcTypes) {
		return r.errf("start function %d out of range", idx)
	}
	ft := m.Types[funcTypes[idx]]
	if len(ft.Params) != 0 || len(ft.Results) != 0 {
		return r.errf("start function must have type [] -> []")
	}
	m.Start = int(idx)
	return nil
}

func (r *reader) elemSection(m *Module, funcTypes []uint32) error {
	n, err := r.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		ti, err := r.u32()
		if err != nil {
			return err
		}
		if ti != 0 {
			return r.errf("element segment table %d out of range", ti)
		}
		off, t, err := r.constExpr()
		if err != nil {
			return err
		}
		if t != I32 {
			return r.errf("element offset must be i32")
		}
		cnt, err := r.u32()
		if err != nil {
			return err
		}
		seg := ElemSeg{Offset: uint32(off)}
		for j := uint32(0); j < cnt; j++ {
			fi, err := r.u32()
			if err != nil {
				return err
			}
			if int(fi) >= len(funcTypes) {
				return r.errf("element function %d out of range", fi)
			}
			seg.Funcs = append(seg.Funcs, fi)
		}
		if uint64(seg.Offset)+uint64(len(seg.Funcs)) > uint64(m.TableSize) {
			return r.errf("element segment [%d,%d) exceeds table size %d",
				seg.Offset, int(seg.Offset)+len(seg.Funcs), m.TableSize)
		}
		m.Elems = append(m.Elems, seg)
	}
	return nil
}

func (r *reader) dataSection(m *Module) error {
	n, err := r.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		mi, err := r.u32()
		if err != nil {
			return err
		}
		if mi != 0 {
			return r.errf("data segment memory %d out of range", mi)
		}
		off, t, err := r.constExpr()
		if err != nil {
			return err
		}
		if t != I32 {
			return r.errf("data offset must be i32")
		}
		cnt, err := r.u32()
		if err != nil {
			return err
		}
		if r.pos+int(cnt) > len(r.b) {
			return r.errf("data segment overruns module")
		}
		seg := DataSeg{Offset: uint32(off), Bytes: append([]byte(nil), r.b[r.pos:r.pos+int(cnt)]...)}
		r.pos += int(cnt)
		if uint64(seg.Offset)+uint64(len(seg.Bytes)) > uint64(m.MemBytes()) {
			return r.errf("data segment [%d,%d) exceeds memory size %d",
				seg.Offset, int(seg.Offset)+len(seg.Bytes), m.MemBytes())
		}
		m.Data = append(m.Data, seg)
	}
	return nil
}

func (r *reader) codeSection(m *Module, funcTypes []uint32) error {
	n, err := r.u32()
	if err != nil {
		return err
	}
	if int(n) != len(funcTypes) {
		return r.errf("code count %d != function count %d", n, len(funcTypes))
	}
	for i := uint32(0); i < n; i++ {
		bodySize, err := r.u32()
		if err != nil {
			return err
		}
		bodyEnd := r.pos + int(bodySize)
		if bodyEnd > len(r.b) || bodyEnd < r.pos {
			return r.errf("body overruns module")
		}
		fn := Func{Type: funcTypes[i]}
		nGroups, err := r.u32()
		if err != nil {
			return err
		}
		for g := uint32(0); g < nGroups; g++ {
			count, err := r.u32()
			if err != nil {
				return err
			}
			t, err := r.valtype()
			if err != nil {
				return err
			}
			// Cumulative cap across groups, matching wasmbase's
			// validator: unbounded group counts must not grow Locals.
			if uint64(len(fn.Locals))+uint64(count) > 1<<16 {
				return r.errf("too many locals")
			}
			for j := uint32(0); j < count; j++ {
				fn.Locals = append(fn.Locals, t)
			}
		}
		body, err := r.decodeBody(bodyEnd)
		if err != nil {
			return err
		}
		if r.pos != bodyEnd {
			return r.errf("body has trailing bytes")
		}
		fn.Body = body
		m.Funcs = append(m.Funcs, fn)
	}
	return nil
}

// decodeBody decodes one function body's instruction stream up to (and
// including) the End that closes the function.
func (r *reader) decodeBody(end int) ([]Instr, error) {
	var out []Instr
	depth := 1 // the implicit function block
	for r.pos < end {
		op, err := r.byte()
		if err != nil {
			return nil, err
		}
		in := Instr{Op: op}
		switch op {
		case OpUnreachable, OpNop, OpReturn, OpDrop, OpSelect,
			OpI32Eqz, OpI64Eqz, OpI32WrapI64, OpI64ExtendS, OpI64ExtendU:
		case OpElse:
			in.Val = 0
		case OpEnd:
			depth--
			out = append(out, in)
			if depth == 0 {
				return out, nil
			}
			continue
		case OpBlock, OpLoop, OpIf:
			bt, err := r.byte()
			if err != nil {
				return nil, err
			}
			switch {
			case bt == 0x40:
			case ValType(bt) == I32 || ValType(bt) == I64:
			default:
				return nil, r.errf("unsupported block type %#x", bt)
			}
			in.Val = int64(bt)
			depth++
		case OpBr, OpBrIf, OpCall, OpLocalGet, OpLocalSet, OpLocalTee,
			OpGlobalGet, OpGlobalSet:
			v, err := r.u32()
			if err != nil {
				return nil, err
			}
			in.Val = int64(v)
		case OpBrTable:
			cnt, err := r.u32()
			if err != nil {
				return nil, err
			}
			if int(cnt) > end-r.pos { // each target is at least one byte
				return nil, r.errf("br_table overruns body")
			}
			for j := uint32(0); j <= cnt; j++ { // targets plus default
				d, err := r.u32()
				if err != nil {
					return nil, err
				}
				in.Targets = append(in.Targets, d)
			}
		case OpCallIndirect:
			ti, err := r.u32()
			if err != nil {
				return nil, err
			}
			tbl, err := r.byte()
			if err != nil {
				return nil, err
			}
			if tbl != 0 {
				return nil, r.errf("call_indirect table %d out of range", tbl)
			}
			in.Val = int64(ti)
		case OpI32Const:
			v, err := r.s64()
			if err != nil {
				return nil, err
			}
			in.Val = int64(uint32(v))
		case OpI64Const:
			v, err := r.s64()
			if err != nil {
				return nil, err
			}
			in.Val = v
		default:
			switch {
			case isMemOp(op):
				if _, err := r.u32(); err != nil { // align (hint, unchecked)
					return nil, err
				}
				off, err := r.u32()
				if err != nil {
					return nil, err
				}
				in.Off = off
			case isBinOp(op) || isCmpOp(op):
			default:
				return nil, r.errf("unsupported opcode %#x", op)
			}
		}
		out = append(out, in)
	}
	return nil, r.errf("function body not terminated by end")
}

func isMemOp(op byte) bool {
	return (op >= OpI32Load && op <= OpI64Load) ||
		(op >= OpI32Load8S && op <= OpI64Load32U) ||
		op == OpI32Store || op == OpI64Store ||
		(op >= OpI32Store8 && op <= OpI64Store32)
}

func isCmpOp(op byte) bool {
	return (op >= 0x46 && op <= 0x4f) || (op >= 0x51 && op <= 0x5a)
}

func isBinOp(op byte) bool {
	return (op >= 0x6a && op <= 0x78) || (op >= 0x7c && op <= 0x8a)
}

// MemOpSize returns the access width in bytes of a load/store opcode.
func MemOpSize(op byte) int {
	switch op {
	case OpI32Load8S, OpI32Load8U, OpI64Load8S, OpI64Load8U, OpI32Store8, OpI64Store8:
		return 1
	case OpI32Load16S, OpI32Load16U, OpI64Load16S, OpI64Load16U, OpI32Store16, OpI64Store16:
		return 2
	case OpI32Load, OpI64Load32S, OpI64Load32U, OpI32Store, OpI64Store32:
		return 4
	case OpI64Load, OpI64Store:
		return 8
	}
	return 0
}

// IsStoreOp reports whether op writes memory.
func IsStoreOp(op byte) bool {
	return op == OpI32Store || op == OpI64Store || (op >= OpI32Store8 && op <= OpI64Store32)
}
