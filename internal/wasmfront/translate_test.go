package wasmfront

import (
	"errors"
	"strings"
	"testing"
)

// corrupt returns a copy of b with the byte at off replaced.
func corrupt(b []byte, off int, v byte) []byte {
	out := append([]byte(nil), b...)
	out[off] = v
	return out
}

func TestDecodeNegative(t *testing.T) {
	good := SampleArithLoop(10)
	cases := []struct {
		name string
		wasm []byte
	}{
		{"empty", nil},
		{"short-magic", []byte("\x00as")},
		{"bad-magic", []byte("\x00asX\x01\x00\x00\x00")},
		{"bad-version", []byte("\x00asm\x02\x00\x00\x00")},
		{"truncated-module", good[:len(good)-3]},
		{"truncated-leb", append(append([]byte{}, good[:8]...), 0x01, 0x85)}, // section size leb cut off
		{"section-len-overflow", append(append([]byte{}, good[:8]...),
			0x01, 0xff, 0xff, 0xff, 0xff, 0x7f)}, // claims 0xffffffff-byte section
		{"leb-u32-high-bits", append(append([]byte{}, good[:8]...),
			0x01, 0x85, 0x80, 0x80, 0x80, 0x78)}, // u32 with bits >= 32 set
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Decode(tc.wasm); err == nil {
				t.Fatalf("Decode accepted malformed module")
			} else {
				var de *DecodeError
				if !errors.As(err, &de) {
					t.Fatalf("want *DecodeError, got %T: %v", err, err)
				}
			}
		})
	}
}

func TestDecodeBodyPastSectionEnd(t *testing.T) {
	// A code section whose single body's declared size runs past the
	// section boundary must be rejected, not read into the next section.
	mb := NewModBuilder()
	ty := mb.Type(nil, []ValType{I32})
	var c Code
	c.I32Const(1).End()
	f := mb.Func(ty, nil, c.Bytes())
	mb.Export("main", f)
	wasm := mb.Bytes()

	// Find the code section (id 10) and inflate the body-size leb.
	idx := -1
	for i := 8; i < len(wasm); i++ {
		if wasm[i] == 10 {
			idx = i
			break
		}
	}
	if idx < 0 {
		t.Fatal("no code section")
	}
	// layout: id, secLen, count, bodyLen, ...
	bad := corrupt(wasm, idx+3, wasm[idx+3]+20)
	if _, err := Decode(bad); err == nil {
		t.Fatal("Decode accepted body running past section end")
	}
}

func TestDecodeCumulativeLocalsOverflow(t *testing.T) {
	// 2^16+1 single-local groups: each group is under any per-group cap,
	// but the cumulative count must be rejected at decode time, before
	// the Locals slice is grown.
	mb := NewModBuilder()
	tm := mb.Type(nil, []ValType{I64})
	locals := make([]ValType, 1<<16+1)
	for i := range locals {
		locals[i] = I64
	}
	var m Code
	m.I64Const(0).End()
	mf := mb.Func(tm, locals, m.Bytes())
	mb.Export("main", mf)
	if _, err := Decode(mb.Bytes()); err == nil {
		t.Fatal("Decode accepted 2^16+1 cumulative locals")
	}
}

func TestTranslateLimits(t *testing.T) {
	t.Run("too-many-params", func(t *testing.T) {
		mb := NewModBuilder()
		params := make([]ValType, MaxParams+1)
		for i := range params {
			params[i] = I32
		}
		ty := mb.Type(params, []ValType{I32})
		var c Code
		c.Idx(OpLocalGet, 0).End()
		mb.Func(ty, nil, c.Bytes())
		tm := mb.Type(nil, []ValType{I64})
		var m Code
		m.I64Const(0).End()
		mf := mb.Func(tm, nil, m.Bytes())
		mb.Export("main", mf)
		wantLimitError(t, mb.Bytes())
	})

	t.Run("too-many-mem-pages", func(t *testing.T) {
		mb := NewModBuilder()
		mb.Memory(MaxMemPages + 1)
		tm := mb.Type(nil, []ValType{I64})
		var m Code
		m.I64Const(0).End()
		mf := mb.Func(tm, nil, m.Bytes())
		mb.Export("main", mf)
		wantLimitError(t, mb.Bytes())
	})

	t.Run("too-many-locals", func(t *testing.T) {
		mb := NewModBuilder()
		tm := mb.Type(nil, []ValType{I64})
		locals := make([]ValType, MaxFrameSlots+1)
		for i := range locals {
			locals[i] = I64
		}
		var m Code
		m.I64Const(0).End()
		mf := mb.Func(tm, locals, m.Bytes())
		mb.Export("main", mf)
		wantLimitError(t, mb.Bytes())
	})

	t.Run("br-table-too-wide", func(t *testing.T) {
		mb := NewModBuilder()
		tm := mb.Type(nil, []ValType{I64})
		var m Code
		m.Block(0x40)
		targets := make([]uint32, MaxBrTableTargets+1)
		m.I32Const(0).BrTable(targets, 0)
		m.End()
		m.I64Const(0).End()
		mf := mb.Func(tm, nil, m.Bytes())
		mb.Export("main", mf)
		wantLimitError(t, mb.Bytes())
	})

	t.Run("table-too-big", func(t *testing.T) {
		mb := NewModBuilder()
		mb.Table(MaxTableSize + 1)
		tm := mb.Type(nil, []ValType{I64})
		var m Code
		m.I64Const(0).End()
		mf := mb.Func(tm, nil, m.Bytes())
		mb.Export("main", mf)
		wantLimitError(t, mb.Bytes())
	})
}

func wantLimitError(t *testing.T, wasm []byte) {
	t.Helper()
	_, _, err := Translate(wasm)
	if err == nil {
		t.Fatal("Translate accepted over-limit module")
	}
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("want *LimitError, got %T: %v", err, err)
	}
}

func TestEntryFunc(t *testing.T) {
	t.Run("no-entry", func(t *testing.T) {
		mb := NewModBuilder()
		tm := mb.Type(nil, []ValType{I64})
		var m Code
		m.I64Const(0).End()
		mb.Func(tm, nil, m.Bytes())
		_, _, err := Translate(mb.Bytes())
		if err == nil {
			t.Fatal("Translate accepted module with no entry point")
		}
	})

	t.Run("start-section", func(t *testing.T) {
		mb := NewModBuilder()
		tv := mb.Type(nil, nil)
		var m Code
		m.End()
		f := mb.Func(tv, nil, m.Bytes())
		mb.Start(f)
		asm, mod, err := Translate(mb.Bytes())
		if err != nil {
			t.Fatalf("translate: %v", err)
		}
		if ef, err := mod.EntryFunc(); err != nil || ef != int(f) {
			t.Fatalf("EntryFunc = %d, %v; want %d", ef, err, f)
		}
		if !strings.Contains(asm, "bl __wf0") {
			t.Fatal("start entry not called from _start")
		}
	})

	t.Run("export-wins-over-start", func(t *testing.T) {
		mb := NewModBuilder()
		tv := mb.Type(nil, nil)
		var a, b Code
		a.End()
		b.End()
		fa := mb.Func(tv, nil, a.Bytes())
		fb := mb.Func(tv, nil, b.Bytes())
		mb.Start(fa)
		mb.Export("main", fb)
		_, mod, err := Translate(mb.Bytes())
		if err != nil {
			t.Fatalf("translate: %v", err)
		}
		if ef, _ := mod.EntryFunc(); ef != int(fb) {
			t.Fatalf("EntryFunc = %d, want exported main %d", ef, fb)
		}
	})

	t.Run("entry-with-params-rejected", func(t *testing.T) {
		mb := NewModBuilder()
		tp := mb.Type([]ValType{I32}, nil)
		var m Code
		m.End()
		f := mb.Func(tp, nil, m.Bytes())
		mb.Export("main", f)
		if _, _, err := Translate(mb.Bytes()); err == nil {
			t.Fatal("Translate accepted entry with parameters")
		}
	})
}
