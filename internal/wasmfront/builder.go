package wasmfront

import "encoding/binary"

// ModBuilder assembles Wasm binaries for tests, samples, and benchmarks —
// a programmatic stand-in for a .wat assembler. Instruction bytes are
// written with the Leb/Op helpers below.
type ModBuilder struct {
	types   []FuncType
	funcs   []uint32 // type index per function
	bodies  [][]byte // locals+code per function, without the size prefix
	table   uint32
	hasTab  bool
	elems   [][]byte
	mem     uint32
	hasMem  bool
	globals [][]byte
	exports [][]byte
	start   int
	data    [][]byte
}

// NewModBuilder returns an empty builder with no start function.
func NewModBuilder() *ModBuilder { return &ModBuilder{start: -1} }

// LebU encodes an unsigned leb128.
func LebU(v uint64) []byte {
	var out []byte
	for {
		b := byte(v & 0x7f)
		v >>= 7
		if v != 0 {
			b |= 0x80
		}
		out = append(out, b)
		if v == 0 {
			return out
		}
	}
}

// LebS encodes a signed leb128.
func LebS(v int64) []byte {
	var out []byte
	for {
		b := byte(v & 0x7f)
		v >>= 7
		done := (v == 0 && b&0x40 == 0) || (v == -1 && b&0x40 != 0)
		if !done {
			b |= 0x80
		}
		out = append(out, b)
		if done {
			return out
		}
	}
}

// Type interns a function signature and returns its index.
func (mb *ModBuilder) Type(params, results []ValType) uint32 {
	for i, t := range mb.types {
		if typeEq(t.Params, params) && typeEq(t.Results, results) {
			return uint32(i)
		}
	}
	mb.types = append(mb.types, FuncType{
		Params:  append([]ValType(nil), params...),
		Results: append([]ValType(nil), results...),
	})
	return uint32(len(mb.types) - 1)
}

func typeEq(a, b []ValType) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Func adds a function and returns its index. locals declares extra
// locals beyond the parameters; code is the body instruction stream and
// must end with OpEnd.
func (mb *ModBuilder) Func(typeIdx uint32, locals []ValType, code []byte) uint32 {
	var body []byte
	body = append(body, LebU(uint64(len(locals)))...)
	for _, l := range locals {
		body = append(body, 1, byte(l))
	}
	body = append(body, code...)
	mb.funcs = append(mb.funcs, typeIdx)
	mb.bodies = append(mb.bodies, body)
	return uint32(len(mb.funcs) - 1)
}

// Memory declares a linear memory of min pages.
func (mb *ModBuilder) Memory(pages uint32) {
	mb.mem = pages
	mb.hasMem = true
}

// Table declares a funcref table of the given size.
func (mb *ModBuilder) Table(size uint32) {
	mb.table = size
	mb.hasTab = true
}

// Elem adds an active element segment at offset.
func (mb *ModBuilder) Elem(offset uint32, funcs ...uint32) {
	seg := []byte{0, OpI32Const}
	seg = append(seg, LebS(int64(offset))...)
	seg = append(seg, OpEnd)
	seg = append(seg, LebU(uint64(len(funcs)))...)
	for _, f := range funcs {
		seg = append(seg, LebU(uint64(f))...)
	}
	mb.elems = append(mb.elems, seg)
}

// Global adds a global and returns its index.
func (mb *ModBuilder) Global(t ValType, mut bool, init int64) uint32 {
	g := []byte{byte(t), 0}
	if mut {
		g[1] = 1
	}
	if t == I32 {
		g = append(g, OpI32Const)
	} else {
		g = append(g, OpI64Const)
	}
	g = append(g, LebS(init)...)
	g = append(g, OpEnd)
	mb.globals = append(mb.globals, g)
	return uint32(len(mb.globals) - 1)
}

// Export exports function fi under name.
func (mb *ModBuilder) Export(name string, fi uint32) {
	e := LebU(uint64(len(name)))
	e = append(e, name...)
	e = append(e, 0)
	e = append(e, LebU(uint64(fi))...)
	mb.exports = append(mb.exports, e)
}

// Start sets the start-section function.
func (mb *ModBuilder) Start(fi uint32) { mb.start = int(fi) }

// Data adds an active data segment.
func (mb *ModBuilder) Data(offset uint32, bytes []byte) {
	seg := []byte{0, OpI32Const}
	seg = append(seg, LebS(int64(offset))...)
	seg = append(seg, OpEnd)
	seg = append(seg, LebU(uint64(len(bytes)))...)
	seg = append(seg, bytes...)
	mb.data = append(mb.data, seg)
}

func section(id byte, payload []byte) []byte {
	out := []byte{id}
	out = append(out, LebU(uint64(len(payload)))...)
	return append(out, payload...)
}

func vec(items [][]byte) []byte {
	out := LebU(uint64(len(items)))
	for _, it := range items {
		out = append(out, it...)
	}
	return out
}

// Bytes serializes the module.
func (mb *ModBuilder) Bytes() []byte {
	out := make([]byte, 8)
	copy(out, "\x00asm")
	binary.LittleEndian.PutUint32(out[4:], 1)

	if len(mb.types) > 0 {
		var items [][]byte
		for _, t := range mb.types {
			ft := []byte{0x60}
			ft = append(ft, LebU(uint64(len(t.Params)))...)
			for _, p := range t.Params {
				ft = append(ft, byte(p))
			}
			ft = append(ft, LebU(uint64(len(t.Results)))...)
			for _, r := range t.Results {
				ft = append(ft, byte(r))
			}
			items = append(items, ft)
		}
		out = append(out, section(1, vec(items))...)
	}
	if len(mb.funcs) > 0 {
		var items [][]byte
		for _, ti := range mb.funcs {
			items = append(items, LebU(uint64(ti)))
		}
		out = append(out, section(3, vec(items))...)
	}
	if mb.hasTab {
		tab := []byte{0x70, 0}
		tab = append(tab, LebU(uint64(mb.table))...)
		out = append(out, section(4, vec([][]byte{tab}))...)
	}
	if mb.hasMem {
		memEnt := []byte{0}
		memEnt = append(memEnt, LebU(uint64(mb.mem))...)
		out = append(out, section(5, vec([][]byte{memEnt}))...)
	}
	if len(mb.globals) > 0 {
		out = append(out, section(6, vec(mb.globals))...)
	}
	if len(mb.exports) > 0 {
		out = append(out, section(7, vec(mb.exports))...)
	}
	if mb.start >= 0 {
		out = append(out, section(8, LebU(uint64(mb.start)))...)
	}
	if len(mb.elems) > 0 {
		out = append(out, section(9, vec(mb.elems))...)
	}
	if len(mb.bodies) > 0 {
		var items [][]byte
		for _, b := range mb.bodies {
			item := LebU(uint64(len(b)))
			items = append(items, append(item, b...))
		}
		out = append(out, section(10, vec(items))...)
	}
	if len(mb.data) > 0 {
		out = append(out, section(11, vec(mb.data))...)
	}
	return out
}

// Code is a small helper for building instruction streams.
type Code struct{ b []byte }

func (c *Code) Op(ops ...byte) *Code { c.b = append(c.b, ops...); return c }

func (c *Code) I32Const(v int32) *Code {
	c.b = append(c.b, OpI32Const)
	c.b = append(c.b, LebS(int64(v))...)
	return c
}

func (c *Code) I64Const(v int64) *Code {
	c.b = append(c.b, OpI64Const)
	c.b = append(c.b, LebS(v)...)
	return c
}

// Idx appends an opcode with one leb-u32 immediate (local.get, call,
// br, block-less uses).
func (c *Code) Idx(op byte, v uint32) *Code {
	c.b = append(c.b, op)
	c.b = append(c.b, LebU(uint64(v))...)
	return c
}

// Block/Loop/If append a structured opcode with a block type (0x40 for
// empty, or a ValType byte).
func (c *Code) Block(bt byte) *Code { c.b = append(c.b, OpBlock, bt); return c }
func (c *Code) Loop(bt byte) *Code  { c.b = append(c.b, OpLoop, bt); return c }
func (c *Code) If(bt byte) *Code    { c.b = append(c.b, OpIf, bt); return c }

// Mem appends a memory instruction with align and offset immediates.
func (c *Code) Mem(op byte, align, off uint32) *Code {
	c.b = append(c.b, op)
	c.b = append(c.b, LebU(uint64(align))...)
	c.b = append(c.b, LebU(uint64(off))...)
	return c
}

// BrTable appends a br_table with the given targets and default.
func (c *Code) BrTable(targets []uint32, def uint32) *Code {
	c.b = append(c.b, OpBrTable)
	c.b = append(c.b, LebU(uint64(len(targets)))...)
	for _, t := range targets {
		c.b = append(c.b, LebU(uint64(t))...)
	}
	c.b = append(c.b, LebU(uint64(def))...)
	return c
}

// CallIndirect appends a call_indirect with type index ti (table 0).
func (c *Code) CallIndirect(ti uint32) *Code {
	c.b = append(c.b, OpCallIndirect)
	c.b = append(c.b, LebU(uint64(ti))...)
	c.b = append(c.b, 0)
	return c
}

// End appends OpEnd.
func (c *Code) End() *Code { c.b = append(c.b, OpEnd); return c }

// Bytes returns the instruction stream.
func (c *Code) Bytes() []byte { return c.b }
