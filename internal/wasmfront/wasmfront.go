// Package wasmfront compiles a WebAssembly MVP subset into the
// GNU-assembly dialect the LFI rewriter consumes, so real Wasm modules
// run inside verified LFI sandboxes (the Gobi direction: WebAssembly as a
// path to library sandboxing, with LFI as the backend instead of native
// compilation).
//
// The subset is the integer core: i32/i64 arithmetic and comparisons,
// locals and globals, one linear memory with (sub-word) loads and stores,
// structured control flow (block/loop/if/br/br_if/br_table), and direct
// plus indirect calls through one funcref table. Floats, imports, and
// multi-value are out of scope — a module using them is rejected.
//
// Lowering contract (see DESIGN.md "Wasm frontend"):
//
//   - Linear memory is a .bss region whose sandbox offset is materialized
//     once into x28; every access computes a 32-bit offset and issues the
//     load/store through a plain base register, which the rewriter turns
//     into the zero-cost [x21, wN, uxtw] guarded form at O1/O2. Explicit
//     bounds checks against the memory size precede every access, so an
//     out-of-range address traps deterministically *before* the guard
//     would have wrapped it into the sandbox.
//   - The Wasm value stack is register-allocated: depths 0..6 live in
//     x9..x15, deeper values spill to a shadow region in the native stack
//     frame. Every depth also owns a frame slot, flushed around calls.
//   - Locals and the saved link register live in the same sp-based frame;
//     sp-relative accesses pass the rewriter unguarded (§4.2 elision).
//   - Traps (unreachable, division by zero, signed-overflow division,
//     out-of-bounds access, bad indirect call) exit the sandbox through
//     the runtime-call table with distinct statuses (TrapExitStatus).
//
// Translate validates the module with wasmbase.ValidateModule first, so
// every module this frontend accepts also validates — the two front-end
// surfaces cannot disagree in the dangerous direction.
package wasmfront

import "fmt"

// ValType is a WebAssembly value type. Only the integer types exist in
// this subset.
type ValType byte

const (
	I32 ValType = 0x7f
	I64 ValType = 0x7e
)

func (t ValType) String() string {
	switch t {
	case I32:
		return "i32"
	case I64:
		return "i64"
	}
	return fmt.Sprintf("valtype(%#x)", byte(t))
}

// FuncType is a function signature.
type FuncType struct {
	Params  []ValType
	Results []ValType // 0 or 1 entries
}

// Func is one decoded function: its type index, declared locals (params
// excluded), and the decoded instruction sequence of its body, terminated
// by an End at nesting depth 0.
type Func struct {
	Type   uint32
	Locals []ValType
	Body   []Instr
}

// Global is one module global with its constant initializer.
type Global struct {
	Type ValType
	Mut  bool
	Init int64
}

// ElemSeg is one active element segment: function indices written into
// the table starting at Offset.
type ElemSeg struct {
	Offset uint32
	Funcs  []uint32
}

// DataSeg is one active data segment copied into linear memory at load.
type DataSeg struct {
	Offset uint32
	Bytes  []byte
}

// Module is a decoded WebAssembly module restricted to the supported
// subset.
type Module struct {
	Types     []FuncType
	Funcs     []Func
	TableSize uint32
	Elems     []ElemSeg
	MemPages  uint32 // minimum pages; the translated memory is exactly this size
	Globals   []Global
	Exports   map[string]uint32 // function exports only
	Start     int               // start function index, -1 if absent
	Data      []DataSeg
}

// MemBytes returns the linear memory size in bytes.
func (m *Module) MemBytes() uint32 { return m.MemPages * PageBytes }

// PageBytes is the WebAssembly page size.
const PageBytes = 64 * 1024

// Instr is one decoded instruction. Operands are pre-decoded so the
// translator and the reference interpreter share one representation:
//
//	Val:     constant value, local/global/function/type index, branch
//	         depth, or block type byte
//	Off:     memarg offset
//	Targets: br_table targets (the last entry is the default)
type Instr struct {
	Op      byte
	Val     int64
	Off     uint32
	Targets []uint32
}

// Wasm opcodes of the supported subset, named where the translator or
// interpreter refers to them directly.
const (
	OpUnreachable  = 0x00
	OpNop          = 0x01
	OpBlock        = 0x02
	OpLoop         = 0x03
	OpIf           = 0x04
	OpElse         = 0x05
	OpEnd          = 0x0b
	OpBr           = 0x0c
	OpBrIf         = 0x0d
	OpBrTable      = 0x0e
	OpReturn       = 0x0f
	OpCall         = 0x10
	OpCallIndirect = 0x11
	OpDrop         = 0x1a
	OpSelect       = 0x1b
	OpLocalGet     = 0x20
	OpLocalSet     = 0x21
	OpLocalTee     = 0x22
	OpGlobalGet    = 0x23
	OpGlobalSet    = 0x24
	OpI32Load      = 0x28
	OpI64Load      = 0x29
	OpI32Load8S    = 0x2c
	OpI32Load8U    = 0x2d
	OpI32Load16S   = 0x2e
	OpI32Load16U   = 0x2f
	OpI64Load8S    = 0x30
	OpI64Load8U    = 0x31
	OpI64Load16S   = 0x32
	OpI64Load16U   = 0x33
	OpI64Load32S   = 0x34
	OpI64Load32U   = 0x35
	OpI32Store     = 0x36
	OpI64Store     = 0x37
	OpI32Store8    = 0x3a
	OpI32Store16   = 0x3b
	OpI64Store8    = 0x3c
	OpI64Store16   = 0x3d
	OpI64Store32   = 0x3e
	OpI32Const     = 0x41
	OpI64Const     = 0x42
	OpI32Eqz       = 0x45
	OpI64Eqz       = 0x50
	OpI32WrapI64   = 0xa7
	OpI64ExtendS   = 0xac
	OpI64ExtendU   = 0xad
)

// Trap identifies a defined trap cause. The translated program exits the
// sandbox with TrapExitStatus(trap); the reference interpreter returns
// the same value, so the conformance suite can diff traps exactly.
type Trap int

const (
	TrapNone Trap = iota
	// TrapUnreachable: the unreachable instruction executed.
	TrapUnreachable
	// TrapDivZero: integer division or remainder by zero.
	TrapDivZero
	// TrapOverflow: signed division overflow (INT_MIN / -1).
	TrapOverflow
	// TrapOOB: a linear-memory access past the memory size.
	TrapOOB
	// TrapBadIndirect: call_indirect index out of table bounds or a null
	// table entry.
	TrapBadIndirect
	// TrapSigMismatch: call_indirect type-signature mismatch.
	TrapSigMismatch
)

func (t Trap) String() string {
	switch t {
	case TrapNone:
		return "no trap"
	case TrapUnreachable:
		return "unreachable"
	case TrapDivZero:
		return "integer divide by zero"
	case TrapOverflow:
		return "integer overflow"
	case TrapOOB:
		return "out of bounds memory access"
	case TrapBadIndirect:
		return "undefined element"
	case TrapSigMismatch:
		return "indirect call type mismatch"
	}
	return fmt.Sprintf("trap(%d)", int(t))
}

// TrapExitStatus maps a trap to the sandbox exit status the translated
// code uses. Statuses stay clear of the 0..127 range ordinary programs
// use.
func TrapExitStatus(t Trap) int { return 0xE0 + int(t) }

// TrapFromStatus inverts TrapExitStatus; ok is false for statuses that
// are not trap exits.
func TrapFromStatus(status int) (Trap, bool) {
	if status > 0xE0 && status <= 0xE0+int(TrapSigMismatch) {
		return Trap(status - 0xE0), true
	}
	return TrapNone, false
}

// LimitError reports a module that is valid WebAssembly (it passes
// wasmbase.ValidateModule) but exceeds an implementation limit of this
// translator. The differential fuzz oracle treats LimitError as an
// acceptable outcome; any other failure on a validated module is a bug.
type LimitError struct{ Msg string }

func (e *LimitError) Error() string { return "wasmfront: limit: " + e.Msg }

func limitf(format string, args ...any) error {
	return &LimitError{Msg: fmt.Sprintf(format, args...)}
}

// DecodeError reports a structurally invalid module.
type DecodeError struct {
	Offset int
	Msg    string
}

func (e *DecodeError) Error() string {
	return fmt.Sprintf("wasmfront: invalid module at +%#x: %s", e.Offset, e.Msg)
}

// Translator implementation limits. A module beyond these is rejected
// with LimitError. They exist to keep every emitted immediate inside the
// encodable (and sp-elision-safe) ranges; see translate.go.
const (
	// MaxParams: arguments pass in x0..x7.
	MaxParams = 8
	// MaxFrameSlots bounds locals + spill slots so the frame fits one
	// `sub sp, sp, #imm` (imm <= 4095) and every slot offset stays a
	// valid unscaled immediate.
	MaxFrameSlots = 500
	// MaxGlobals keeps every global's byte offset an encodable immediate.
	MaxGlobals = 256
	// MaxTableSize keeps every 16-byte table entry offset encodable.
	MaxTableSize = 256
	// MaxBrTableTargets bounds the compare chain br_table lowers to.
	MaxBrTableTargets = 64
	// MaxMemPages bounds the .bss linear memory (512 * 64KiB = 32MiB).
	MaxMemPages = 512
	// MaxFuncs bounds the emitted function count.
	MaxFuncs = 1024
)
